//! End-to-end telemetry: run a real (Tiny-scale) study with logging
//! enabled and check the `RUN_*.jsonl` it produces — every line valid
//! against the event schema, spans and counters from the instrumented
//! pipeline present, and the closing manifest carrying the right config
//! hash and seed.
//!
//! Telemetry level and sink are process-global, so everything lives in
//! one `#[test]` (this file is its own test binary; other integration
//! tests never see the raised level).

use leo_core::experiments::latency::latency_study;
use leo_core::experiments::throughput::throughput;
use leo_core::{ExperimentScale, Mode, StudyContext};
use leo_util::telemetry::{self, fnv1a_64, validate_event_line, Json, Level, RunManifest};

#[test]
fn tiny_study_produces_valid_run_log_with_manifest() {
    let dir = std::env::temp_dir().join("leo_telemetry_e2e");
    let _ = std::fs::remove_dir_all(&dir);

    telemetry::set_level(Level::Info);
    let path = telemetry::init_at(&dir, "e2e_tiny").expect("open run log");

    let cfg = ExperimentScale::Tiny.config();
    let config_hash = fnv1a_64(cfg.to_kv_string().as_bytes());
    let seed = cfg.seed;
    let ctx = StudyContext::build(cfg);
    let bp = latency_study(&ctx, Mode::BpOnly, 2);
    let hy = latency_study(&ctx, Mode::Hybrid, 2);
    assert_eq!(bp.len(), hy.len(), "studies must cover the same pairs");
    let th = throughput(&ctx, 0.0, Mode::Hybrid, 1);
    assert!(th.aggregate_gbps > 0.0);

    let manifest = RunManifest::new("e2e_tiny", config_hash, seed, 2);
    let finished = telemetry::finish_run(&manifest).expect("close run log");
    telemetry::set_level(Level::Off);
    assert_eq!(finished, path);

    let text = std::fs::read_to_string(&path).expect("run log readable");
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 4, "run log too short:\n{text}");

    // Every line validates; first is run_start, last is the manifest.
    let types: Vec<&str> = lines
        .iter()
        .enumerate()
        .map(|(i, l)| {
            validate_event_line(l).unwrap_or_else(|e| panic!("line {}: {e}\n  {l}", i + 1))
        })
        .collect();
    assert_eq!(types[0], "run_start");
    assert_eq!(*types.last().unwrap(), "manifest");
    assert_eq!(
        types.iter().filter(|t| **t == "manifest").count(),
        1,
        "exactly one manifest"
    );

    // The instrumented pipeline must have shown up: study spans and the
    // Dijkstra / snapshot counters.
    let span_names: Vec<String> = lines
        .iter()
        .filter_map(|l| {
            let v = Json::parse(l).unwrap();
            (v.get("type").and_then(Json::as_str) == Some("span"))
                .then(|| v.get("name").and_then(Json::as_str).unwrap().to_string())
        })
        .collect();
    assert!(
        span_names.iter().any(|n| n == "latency_study"),
        "missing latency_study span in {span_names:?}"
    );
    assert!(span_names.iter().any(|n| n == "throughput"));
    assert!(span_names.iter().any(|n| n == "study_context_build"));

    // Manifest provenance: config hash, seed, per-phase totals, counters.
    let m = Json::parse(lines.last().unwrap()).unwrap();
    assert_eq!(
        m.get("config_hash").and_then(Json::as_str),
        Some(format!("0x{config_hash:016x}")).as_deref()
    );
    assert_eq!(m.get("seed").and_then(Json::as_num), Some(seed as f64));
    assert_eq!(m.get("label").and_then(Json::as_str), Some("e2e_tiny"));
    let phases = m.get("phases").expect("manifest has phases");
    let latency_phase = phases.get("latency_study").expect("latency_study phase");
    assert_eq!(latency_phase.get("count").and_then(Json::as_num), Some(2.0));
    assert!(
        latency_phase
            .get("total_ns")
            .and_then(Json::as_num)
            .unwrap()
            > 0.0
    );
    let counters = m.get("counters").expect("manifest has counters");
    assert!(
        counters
            .get("dijkstra_calls")
            .and_then(Json::as_num)
            .unwrap()
            > 0.0
    );
    assert!(
        counters
            .get("snapshots_built")
            .and_then(Json::as_num)
            .unwrap()
            >= 4.0
    );
    assert!(
        counters
            .get("maxmin_solves")
            .and_then(Json::as_num)
            .unwrap()
            >= 1.0
    );

    // Every timestamp falls inside the run window: at or after the
    // run_start stamp, at or before the manifest's wall clock. (Span
    // events carry their *enter* time, so file order alone is not
    // monotone — but the window always bounds them.)
    let wall_ns = m.get("wall_ns").and_then(Json::as_num).unwrap();
    let t_ns: Vec<f64> = lines
        .iter()
        .filter_map(|l| Json::parse(l).unwrap().get("t_ns").and_then(Json::as_num))
        .collect();
    let start = t_ns[0];
    assert!(
        t_ns.iter().all(|&t| t >= start && t <= wall_ns),
        "timestamp outside run window [{start}, {wall_ns}]: {t_ns:?}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
