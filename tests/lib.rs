//! Cross-crate integration tests for the leo-isl workspace.
//!
//! The tests live in sibling files declared as `[[test]]` targets:
//! `pipeline` (end-to-end construction), `paper_claims` (the paper's
//! qualitative results), `determinism` (seeded reproducibility), and
//! `failure_injection` (robustness under link loss).
