//! End-to-end pipeline test: every substrate participates in building and
//! querying a network snapshot.

use leo_core::{ExperimentScale, Mode, NodeKind, StudyContext};
use leo_graph::{dijkstra, extract_path};

fn ctx() -> StudyContext {
    StudyContext::build(ExperimentScale::Tiny.config())
}

#[test]
fn full_stack_builds_and_routes() {
    let ctx = ctx();
    // Substrates present:
    assert_eq!(ctx.num_satellites(), 1584); // leo-orbit
    assert_eq!(ctx.ground.cities.len(), 60); // leo-data cities
    assert!(!ctx.ground.relays.is_empty()); // land mask + grid
    assert!(!ctx.pairs.is_empty()); // traffic matrix

    let snap = ctx.snapshot(0.0, Mode::Hybrid);
    assert!(snap.graph.num_edges() > 3000);

    // Route every sampled pair; most must be reachable under hybrid.
    let mut reachable = 0;
    for p in &ctx.pairs {
        let sp = dijkstra(&snap.graph, snap.city_node(p.src as usize));
        if sp.reached(snap.city_node(p.dst as usize)) {
            reachable += 1;
        }
    }
    assert!(
        reachable * 10 >= ctx.pairs.len() * 9,
        "{reachable}/{} pairs reachable under hybrid",
        ctx.pairs.len()
    );
}

#[test]
fn bp_paths_alternate_ground_and_satellite() {
    // Structural invariant of bent-pipe connectivity: with no ISLs, a
    // path must alternate ground ↔ satellite at every hop.
    let ctx = ctx();
    let snap = ctx.snapshot(0.0, Mode::BpOnly);
    let mut checked = 0;
    for p in ctx.pairs.iter().take(20) {
        let sp = dijkstra(&snap.graph, snap.city_node(p.src as usize));
        if let Some(path) = extract_path(&sp, snap.city_node(p.dst as usize)) {
            for w in path.nodes.windows(2) {
                let a_ground = snap.nodes[w[0] as usize].is_ground();
                let b_ground = snap.nodes[w[1] as usize].is_ground();
                assert_ne!(
                    a_ground, b_ground,
                    "BP hop must cross ground/space boundary"
                );
            }
            // Odd hop count: up, (down,up)*, down.
            assert_eq!(
                path.num_hops() % 2,
                0,
                "BP path has even hops (up+down pairs)"
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "no BP-reachable pairs to check");
}

#[test]
fn hybrid_paths_may_stay_in_space() {
    let ctx = ctx();
    let snap = ctx.snapshot(0.0, Mode::Hybrid);
    // At least one long pair should route with exactly 2 radio hops
    // (up, lasers, down) — i.e. satellite-only intermediates.
    let mut space_only = 0;
    for p in &ctx.pairs {
        let sp = dijkstra(&snap.graph, snap.city_node(p.src as usize));
        if let Some(path) = extract_path(&sp, snap.city_node(p.dst as usize)) {
            let ground_intermediates = path.nodes[1..path.nodes.len() - 1]
                .iter()
                .filter(|&&n| snap.nodes[n as usize].is_ground())
                .count();
            if ground_intermediates == 0 && path.num_hops() > 2 {
                space_only += 1;
            }
        }
    }
    assert!(space_only > 0, "no pair routed purely through ISLs");
}

#[test]
fn aircraft_participate_in_bp_routing() {
    // Over a day, transoceanic BP paths should touch aircraft relays.
    let mut cfg = ExperimentScale::Tiny.config();
    cfg.num_cities = 340;
    cfg.flight_density = 1.0;
    let ctx = StudyContext::build(cfg);
    let ts =
        leo_core::experiments::latency::pair_timeseries(&ctx, "Maceió", "Durban", Mode::BpOnly, 0);
    let with_aircraft = ts.iter().filter(|p| p.aircraft_hops > 0).count();
    assert!(
        with_aircraft > 0,
        "South-Atlantic pair should use aircraft at least once"
    );
}

#[test]
fn snapshot_node_kinds_partition() {
    let ctx = ctx();
    let snap = ctx.snapshot(7200.0, Mode::BpOnly);
    let mut sats = 0;
    let mut cities = 0;
    let mut relays = 0;
    let mut aircraft = 0;
    for n in &snap.nodes {
        match n {
            NodeKind::Satellite(_) => sats += 1,
            NodeKind::City(_) => cities += 1,
            NodeKind::Relay(_) => relays += 1,
            NodeKind::Aircraft(_) => aircraft += 1,
        }
    }
    assert_eq!(sats, ctx.num_satellites());
    assert_eq!(cities, ctx.ground.cities.len());
    assert_eq!(relays, ctx.ground.relays.len());
    assert_eq!(aircraft, snap.num_aircraft);
    assert_eq!(
        sats + cities + relays + aircraft,
        snap.graph.num_nodes(),
        "node table must cover the graph exactly"
    );
}
