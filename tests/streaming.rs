//! Streaming-telemetry pipeline, end to end (PR 7's tentpole):
//!
//! * The `series` events a bench-scale fig2 run emits reconstruct the
//!   exact RTT distribution within the sketch's documented rank-error
//!   bound (`QuantileSketch::RELATIVE_ERROR`).
//! * The streamed drivers are thread-count invariant: `sweep_fold`'s
//!   chunk merges are exact, so results are bit-identical however the
//!   sweep is split.
//!
//! Telemetry level and sink are process-global, so the sketch-vs-exact
//! check lives in one `#[test]`; the thread-invariance checks never
//! raise the level.

use leo_core::experiments::latency::{latency_studies, snapshot_rtts};
use leo_core::experiments::weather::weather_study;
use leo_core::{ExperimentScale, Mode, StudyContext};
use leo_util::sketch::QuantileSketch;
use leo_util::telemetry::{self, Json, Level};

/// Merge every `series` event named `name` from a run log back into one
/// run-level sketch (exactly what `leo-report` does).
fn merged_series(lines: &[&str], name: &str) -> QuantileSketch {
    let mut merged = QuantileSketch::new();
    let mut events = 0;
    for l in lines {
        let v = Json::parse(l).unwrap();
        if v.get("type").and_then(Json::as_str) == Some("series")
            && v.get("name").and_then(Json::as_str) == Some(name)
        {
            merged.merge(&QuantileSketch::from_json(&v).expect("valid sketch"));
            events += 1;
        }
    }
    assert!(events > 0, "no `{name}` series events in the run log");
    merged
}

#[test]
fn bench_scale_fig2_sketches_match_exact_pipeline_within_bound() {
    let dir = std::env::temp_dir().join("leo_streaming_fig2");
    let _ = std::fs::remove_dir_all(&dir);

    telemetry::set_level(Level::Info);
    let path = telemetry::init_at(&dir, "streaming_fig2").expect("open run log");
    let ctx = StudyContext::build(ExperimentScale::Bench.config());
    let modes = [Mode::BpOnly, Mode::Hybrid];
    let studies = latency_studies(&ctx, &modes, 0);
    let manifest = telemetry::RunManifest::new("streaming_fig2", 0, ctx.config.seed, 0);
    telemetry::finish_run(&manifest).expect("close run log");
    telemetry::set_level(Level::Off);

    let text = std::fs::read_to_string(&path).expect("run log readable");
    let lines: Vec<&str> = text.lines().collect();

    for (mode, series_name, stats) in [
        (Mode::BpOnly, "rtt_ms_bp", &studies[0]),
        (Mode::Hybrid, "rtt_ms_hybrid", &studies[1]),
    ] {
        let sketch = merged_series(&lines, series_name);

        // The exact sample stream the driver folded: every reachable
        // (pair, snapshot) RTT, recomputed via the non-streaming path.
        let mut exact: Vec<f64> = Vec::new();
        for &t in &ctx.config.snapshot_times_s {
            exact.extend(snapshot_rtts(&ctx, t, mode).into_iter().flatten());
        }
        exact.sort_by(f64::total_cmp);
        assert!(!exact.is_empty());

        // Count / extremes are exact, not merely bounded.
        assert_eq!(sketch.count(), exact.len() as u64, "{series_name}");
        assert_eq!(sketch.min().to_bits(), exact[0].to_bits());
        assert_eq!(sketch.max().to_bits(), exact[exact.len() - 1].to_bits());

        // Every quantile of the reconstructed CDF lands within the
        // documented relative rank-error bound of the exact pipeline.
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let rank = ((q * exact.len() as f64).ceil() as usize).max(1) - 1;
            let truth = exact[rank];
            let est = sketch.quantile(q);
            assert!(
                (est - truth).abs() <= truth * QuantileSketch::RELATIVE_ERROR,
                "{series_name} q={q}: sketch {est} vs exact {truth}"
            );
        }

        // CDF points: each reported fraction is exact for a value within
        // the bucket-width bound, so evaluating the exact empirical CDF
        // at v*(1 ± RELATIVE_ERROR) must bracket the reported fraction.
        for (v, frac) in sketch.cdf_points(200) {
            let lo_frac =
                exact.partition_point(|&x| x <= v * (1.0 - QuantileSketch::RELATIVE_ERROR)) as f64
                    / exact.len() as f64;
            let hi_frac =
                exact.partition_point(|&x| x <= v * (1.0 + QuantileSketch::RELATIVE_ERROR)) as f64
                    / exact.len() as f64;
            assert!(
                (lo_frac..=hi_frac).contains(&frac),
                "{series_name}: cdf point ({v}, {frac}) outside exact band [{lo_frac}, {hi_frac}]"
            );
        }

        // And the streamed per-pair aggregates agree with the sketch's
        // extremes (the driver's two outputs are views of one stream).
        let driver_min = stats
            .iter()
            .filter_map(|s| s.min_rtt_ms)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(driver_min.to_bits(), sketch.min().to_bits());
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn latency_studies_are_thread_count_invariant() {
    let ctx = StudyContext::build(ExperimentScale::Tiny.config());
    let modes = [Mode::BpOnly, Mode::Hybrid];
    let base = latency_studies(&ctx, &modes, 1);
    for threads in [2, 3, 5] {
        let other = latency_studies(&ctx, &modes, threads);
        for (a_mode, b_mode) in base.iter().zip(&other) {
            for (a, b) in a_mode.iter().zip(b_mode) {
                assert_eq!(a.pair, b.pair);
                assert_eq!(a.reachable, b.reachable);
                assert_eq!(a.total, b.total);
                assert_eq!(
                    a.min_rtt_ms.map(f64::to_bits),
                    b.min_rtt_ms.map(f64::to_bits),
                    "threads={threads}"
                );
                assert_eq!(
                    a.max_rtt_ms.map(f64::to_bits),
                    b.max_rtt_ms.map(f64::to_bits),
                    "threads={threads}"
                );
            }
        }
    }
}

#[test]
fn weather_study_is_thread_count_invariant() {
    // Per-pair TailQuantile keepers merge exactly across chunk splits, so
    // the 99.5th-percentile outputs are bit-identical for any thread
    // count.
    let ctx = StudyContext::build(ExperimentScale::Tiny.config());
    let base = weather_study(&ctx, 7, 1);
    for threads in [2, 4] {
        let other = weather_study(&ctx, 7, threads);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&base.bp_db), bits(&other.bp_db), "threads={threads}");
        assert_eq!(bits(&base.isl_db), bits(&other.isl_db), "threads={threads}");
    }
}
