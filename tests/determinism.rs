//! Seeded reproducibility: identical configs produce bit-identical
//! results; different seeds differ.

use leo_core::experiments::latency::latency_study;
use leo_core::experiments::throughput::throughput;
use leo_core::{ExperimentScale, Mode, StudyContext};

#[test]
fn study_context_is_deterministic() {
    let a = StudyContext::build(ExperimentScale::Tiny.config());
    let b = StudyContext::build(ExperimentScale::Tiny.config());
    assert_eq!(a.pairs, b.pairs);
    assert_eq!(a.ground.cities.len(), b.ground.cities.len());
    for (x, y) in a.ground.cities.iter().zip(&b.ground.cities) {
        assert_eq!(x, y);
    }
}

#[test]
fn seeds_change_the_traffic_matrix() {
    let mut cfg = ExperimentScale::Tiny.config();
    let a = StudyContext::build(cfg.clone());
    cfg.seed = 43;
    let b = StudyContext::build(cfg);
    assert_ne!(a.pairs, b.pairs);
}

#[test]
fn latency_study_reproducible_across_thread_counts() {
    let ctx = StudyContext::build(ExperimentScale::Tiny.config());
    let serial = latency_study(&ctx, Mode::Hybrid, 1);
    let parallel = latency_study(&ctx, Mode::Hybrid, 4);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.min_rtt_ms, p.min_rtt_ms);
        assert_eq!(s.max_rtt_ms, p.max_rtt_ms);
        assert_eq!(s.reachable, p.reachable);
    }
}

#[test]
fn throughput_reproducible() {
    let ctx = StudyContext::build(ExperimentScale::Tiny.config());
    let a = throughput(&ctx, 0.0, Mode::Hybrid, 4);
    let b = throughput(&ctx, 0.0, Mode::Hybrid, 4);
    assert_eq!(a.aggregate_gbps, b.aggregate_gbps);
    assert_eq!(a.flows, b.flows);
}

#[test]
fn snapshots_identical_for_same_time() {
    let ctx = StudyContext::build(ExperimentScale::Tiny.config());
    let a = ctx.snapshot(4242.0, Mode::Hybrid);
    let b = ctx.snapshot(4242.0, Mode::Hybrid);
    assert_eq!(a.graph.num_nodes(), b.graph.num_nodes());
    assert_eq!(a.graph.num_edges(), b.graph.num_edges());
    for e in 0..a.graph.num_edges() as u32 {
        assert_eq!(a.graph.edge(e), b.graph.edge(e));
    }
}
