//! Seeded reproducibility: identical configs produce bit-identical
//! results; different seeds differ; and key seeded outputs match pinned
//! golden values so an accidental PRNG-stream change cannot slip in.

use leo_core::experiments::latency::latency_study;
use leo_core::experiments::throughput::throughput;
use leo_core::output::{cdf_to_csv, CsvWriter};
use leo_core::{ExperimentScale, Mode, StudyContext};

#[test]
fn study_context_is_deterministic() {
    let a = StudyContext::build(ExperimentScale::Tiny.config());
    let b = StudyContext::build(ExperimentScale::Tiny.config());
    assert_eq!(a.pairs, b.pairs);
    assert_eq!(a.ground.cities.len(), b.ground.cities.len());
    for (x, y) in a.ground.cities.iter().zip(&b.ground.cities) {
        assert_eq!(x, y);
    }
}

#[test]
fn seeds_change_the_traffic_matrix() {
    let mut cfg = ExperimentScale::Tiny.config();
    let a = StudyContext::build(cfg.clone());
    cfg.seed = 43;
    let b = StudyContext::build(cfg);
    assert_ne!(a.pairs, b.pairs);
}

/// Golden values for the Tiny-scale seeded sample.
///
/// Pinned against the `leo_util::rng` xoshiro256++ streams that replaced
/// `rand::StdRng` (ChaCha12) in the hermetic-core refactor — the seeded
/// pair sample legitimately changed at that point and these are the new
/// values. The xoshiro output stream itself is pinned by golden tests in
/// `leo_util::rng`, so a failure here means the *derivation* (seed mixing
/// or sampling logic) changed, not the generator.
#[test]
fn tiny_pair_sample_matches_goldens() {
    let ctx = StudyContext::build(ExperimentScale::Tiny.config());
    assert_eq!(ctx.pairs.len(), 40);
    let first: Vec<(u32, u32)> = ctx.pairs.iter().take(4).map(|p| (p.src, p.dst)).collect();
    assert_eq!(first, vec![(0, 39), (16, 27), (46, 59), (36, 59)]);
}

/// Golden end-to-end figures at Tiny scale (same pin rationale as
/// above: re-pinned once for the xoshiro256++ streams). The tolerance
/// covers float summation only — the pipeline is deterministic, so any
/// drift beyond 1e-9 is a real behaviour change.
#[test]
fn tiny_figures_match_goldens() {
    let ctx = StudyContext::build(ExperimentScale::Tiny.config());
    let lat = latency_study(&ctx, Mode::Hybrid, 0);
    let min0 = lat[0].min_rtt_ms.expect("pair 0 reachable");
    let max0 = lat[0].max_rtt_ms.expect("pair 0 reachable");
    assert!((min0 - 30.773586783653947).abs() < 1e-9, "min_rtt {min0}");
    assert!((max0 - 31.51297608470644).abs() < 1e-9, "max_rtt {max0}");
    let th = throughput(&ctx, 0.0, Mode::Hybrid, 1);
    assert_eq!(th.flows, 40);
    assert!(
        (th.aggregate_gbps - 496.6666666666667).abs() < 1e-9,
        "aggregate {}",
        th.aggregate_gbps
    );
}

#[test]
fn latency_study_reproducible_across_thread_counts() {
    let ctx = StudyContext::build(ExperimentScale::Tiny.config());
    let serial = latency_study(&ctx, Mode::Hybrid, 1);
    let parallel = latency_study(&ctx, Mode::Hybrid, 4);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.min_rtt_ms, p.min_rtt_ms);
        assert_eq!(s.max_rtt_ms, p.max_rtt_ms);
        assert_eq!(s.reachable, p.reachable);
    }
}

#[test]
fn throughput_reproducible() {
    let ctx = StudyContext::build(ExperimentScale::Tiny.config());
    let a = throughput(&ctx, 0.0, Mode::Hybrid, 4);
    let b = throughput(&ctx, 0.0, Mode::Hybrid, 4);
    assert_eq!(a.aggregate_gbps, b.aggregate_gbps);
    assert_eq!(a.flows, b.flows);
}

#[test]
fn snapshots_identical_for_same_time() {
    let ctx = StudyContext::build(ExperimentScale::Tiny.config());
    let a = ctx.snapshot(4242.0, Mode::Hybrid);
    let b = ctx.snapshot(4242.0, Mode::Hybrid);
    assert_eq!(a.graph.num_nodes(), b.graph.num_nodes());
    assert_eq!(a.graph.num_edges(), b.graph.num_edges());
    for e in 0..a.graph.num_edges() as u32 {
        assert_eq!(a.graph.edge(e), b.graph.edge(e));
    }
}

/// The full experiment → CSV path is byte-deterministic: running the
/// same study twice and serializing both ways must produce identical
/// bytes, both through `CsvWriter` rows and the `cdf_to_csv` formatter.
/// (This is what lets committed `results/*.csv` files act as goldens.)
#[test]
fn repeat_csv_output_is_byte_identical() {
    let render = || {
        let ctx = StudyContext::build(ExperimentScale::Tiny.config());
        let lat = latency_study(&ctx, Mode::Hybrid, 4);
        let mut buf = Vec::new();
        {
            let mut w = CsvWriter::new(&mut buf);
            w.row(&["pair", "min_rtt_ms", "max_rtt_ms"]).unwrap();
            for (i, s) in lat.iter().enumerate() {
                w.num_row(&[
                    i as f64,
                    s.min_rtt_ms.unwrap_or(f64::NAN),
                    s.max_rtt_ms.unwrap_or(f64::NAN),
                ])
                .unwrap();
            }
        }
        let mut rtts: Vec<f64> = lat.iter().filter_map(|s| s.min_rtt_ms).collect();
        rtts.sort_by(f64::total_cmp);
        let n = rtts.len();
        let cdf: Vec<(f64, f64)> = rtts
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n as f64))
            .collect();
        (buf, cdf_to_csv("rtt_ms", &cdf))
    };
    let (rows_a, cdf_a) = render();
    let (rows_b, cdf_b) = render();
    assert_eq!(rows_a, rows_b, "CsvWriter output differed between runs");
    assert_eq!(cdf_a.into_bytes(), cdf_b.into_bytes());
    assert!(!rows_a.is_empty());
}
