//! Property test: a [`TimeSweep`] stepped through *random* time
//! sequences is indistinguishable — down to edge-weight bits — from
//! building every snapshot from scratch with `snapshot_bundle`.
//!
//! The leo-core unit tests pin a handful of hand-picked instants; this
//! suite drives the incremental engine with randomized times, step
//! sizes (including backwards jumps), mode subsets, and two different
//! constellation geometries, so any drift the delta path could
//! accumulate — stale cell membership, missed transitions, reused link
//! buffers — shows up as a bit-level mismatch.

use leo_core::{ExperimentScale, Mode, NetworkSnapshot, StudyContext, TimeSweep};
use leo_util::check::check_with;
use leo_util::{check_assert, check_assert_eq};

/// Tiny-scale context with the requested constellation swapped in.
fn ctx(kind: leo_core::ConstellationKind) -> StudyContext {
    let mut cfg = ExperimentScale::Tiny.config();
    cfg.constellation = kind;
    StudyContext::build(cfg)
}

/// Bit-exact snapshot comparison (graph topology, weights, metadata).
fn assert_identical(
    a: &NetworkSnapshot,
    b: &NetworkSnapshot,
    what: &str,
) -> Result<(), leo_util::check::CaseError> {
    check_assert_eq!(a.t_s.to_bits(), b.t_s.to_bits(), "{what}: t_s");
    check_assert_eq!(a.mode, b.mode, "{what}: mode");
    check_assert_eq!(a.nodes, b.nodes, "{what}: node table");
    check_assert_eq!(a.edges, b.edges, "{what}: edge metadata");
    check_assert_eq!(a.num_satellites, b.num_satellites, "{what}: num_satellites");
    check_assert_eq!(a.num_aircraft, b.num_aircraft, "{what}: num_aircraft");
    check_assert_eq!(
        a.graph.num_nodes(),
        b.graph.num_nodes(),
        "{what}: node count"
    );
    check_assert_eq!(
        a.graph.num_edges(),
        b.graph.num_edges(),
        "{what}: edge count"
    );
    for e in 0..a.graph.num_edges() as u32 {
        let (u1, v1, w1) = a.graph.edge(e);
        let (u2, v2, w2) = b.graph.edge(e);
        check_assert_eq!((u1, v1), (u2, v2), "{what}: edge {e} endpoints");
        check_assert_eq!(
            w1.to_bits(),
            w2.to_bits(),
            "{what}: edge {e} weight ({w1} vs {w2})"
        );
    }
    Ok(())
}

fn random_sweep_property(c: &StudyContext, name: &str, cases: usize) {
    const MODES: [Mode; 3] = [Mode::BpOnly, Mode::Hybrid, Mode::IslOnly];
    check_with(name, cases, |g| {
        // Random non-empty mode subset, in fixed canonical order.
        let mask = g.u32(1..8);
        let modes: Vec<Mode> = MODES
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &m)| m)
            .collect();
        // Random walk over the day: mixed step sizes, occasionally
        // stepping backwards (the sweep contract allows any order).
        let mut t = g.f64(0.0..86_400.0);
        let steps = g.usize(2..5);
        let mut sweep = TimeSweep::new(c, &modes);
        for s in 0..steps {
            let inc = sweep.step(t);
            let fresh = c.snapshot_bundle(t, &modes);
            check_assert!(inc.len() == fresh.len(), "bundle length");
            for (i, (a, b)) in inc.iter().zip(&fresh).enumerate() {
                assert_identical(a, b, &format!("step {s} t={t} mode #{i}"))?;
            }
            let dt = if g.bool() {
                g.f64(0.1..120.0) // sub-cell to few-cell motion
            } else {
                g.f64(120.0..20_000.0) // crosses many cells
            };
            t = if g.u32(0..8) == 0 { t - dt } else { t + dt };
        }
        Ok(())
    });
}

#[test]
fn random_sweeps_match_fresh_bundles_starlink() {
    let c = ctx(leo_core::ConstellationKind::Starlink);
    random_sweep_property(&c, "random_sweeps_match_fresh_bundles_starlink", 12);
}

#[test]
fn random_sweeps_match_fresh_bundles_kuiper() {
    // Different shell geometry (34×34 at 630 km, 51.9°) exercises
    // different cell-transition patterns and visibility radii.
    let c = ctx(leo_core::ConstellationKind::Kuiper);
    random_sweep_property(&c, "random_sweeps_match_fresh_bundles_kuiper", 8);
}
