//! Property test: a [`TimeSweep`] stepped through *random* time
//! sequences is indistinguishable — down to edge-weight bits — from
//! building every snapshot from scratch with `snapshot_bundle`.
//!
//! The leo-core unit tests pin a handful of hand-picked instants; this
//! suite drives the incremental engine with randomized times, step
//! sizes (including backwards jumps), mode subsets, and two different
//! constellation geometries, so any drift the delta path could
//! accumulate — stale cell membership, missed transitions, reused link
//! buffers — shows up as a bit-level mismatch.

use leo_core::{ExperimentScale, Mode, NetworkSnapshot, StudyContext, TimeSweep};
use leo_graph::SptWorkspace;
use leo_util::check::check_with;
use leo_util::{check_assert, check_assert_eq};

/// Tiny-scale context with the requested constellation swapped in.
fn ctx(kind: leo_core::ConstellationKind) -> StudyContext {
    let mut cfg = ExperimentScale::Tiny.config();
    cfg.constellation = kind;
    StudyContext::build(cfg)
}

/// Bit-exact snapshot comparison (graph topology, weights, metadata).
fn assert_identical(
    a: &NetworkSnapshot,
    b: &NetworkSnapshot,
    what: &str,
) -> Result<(), leo_util::check::CaseError> {
    check_assert_eq!(a.t_s.to_bits(), b.t_s.to_bits(), "{what}: t_s");
    check_assert_eq!(a.mode, b.mode, "{what}: mode");
    check_assert_eq!(a.nodes, b.nodes, "{what}: node table");
    check_assert_eq!(a.edges, b.edges, "{what}: edge metadata");
    check_assert_eq!(a.num_satellites, b.num_satellites, "{what}: num_satellites");
    check_assert_eq!(a.num_aircraft, b.num_aircraft, "{what}: num_aircraft");
    check_assert_eq!(
        a.graph.num_nodes(),
        b.graph.num_nodes(),
        "{what}: node count"
    );
    check_assert_eq!(
        a.graph.num_edges(),
        b.graph.num_edges(),
        "{what}: edge count"
    );
    for e in 0..a.graph.num_edges() as u32 {
        let (u1, v1, w1) = a.graph.edge(e);
        let (u2, v2, w2) = b.graph.edge(e);
        check_assert_eq!((u1, v1), (u2, v2), "{what}: edge {e} endpoints");
        check_assert_eq!(
            w1.to_bits(),
            w2.to_bits(),
            "{what}: edge {e} weight ({w1} vs {w2})"
        );
    }
    Ok(())
}

fn random_sweep_property(c: &StudyContext, name: &str, cases: usize) {
    const MODES: [Mode; 3] = [Mode::BpOnly, Mode::Hybrid, Mode::IslOnly];
    check_with(name, cases, |g| {
        // Random non-empty mode subset, in fixed canonical order.
        let mask = g.u32(1..8);
        let modes: Vec<Mode> = MODES
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &m)| m)
            .collect();
        // Random walk over the day: mixed step sizes, occasionally
        // stepping backwards (the sweep contract allows any order).
        let mut t = g.f64(0.0..86_400.0);
        let steps = g.usize(2..5);
        let mut sweep = TimeSweep::new(c, &modes);
        for s in 0..steps {
            let inc = sweep.step(t);
            let fresh = c.snapshot_bundle(t, &modes);
            check_assert!(inc.len() == fresh.len(), "bundle length");
            for (i, (a, b)) in inc.iter().zip(&fresh).enumerate() {
                assert_identical(a, b, &format!("step {s} t={t} mode #{i}"))?;
            }
            let dt = if g.bool() {
                g.f64(0.1..120.0) // sub-cell to few-cell motion
            } else {
                g.f64(120.0..20_000.0) // crosses many cells
            };
            t = if g.u32(0..8) == 0 { t - dt } else { t + dt };
        }
        Ok(())
    });
}

#[test]
fn random_sweeps_match_fresh_bundles_starlink() {
    let c = ctx(leo_core::ConstellationKind::Starlink);
    random_sweep_property(&c, "random_sweeps_match_fresh_bundles_starlink", 12);
}

#[test]
fn random_sweeps_match_fresh_bundles_kuiper() {
    // Different shell geometry (34×34 at 630 km, 51.9°) exercises
    // different cell-transition patterns and visibility radii.
    let c = ctx(leo_core::ConstellationKind::Kuiper);
    random_sweep_property(&c, "random_sweeps_match_fresh_bundles_kuiper", 8);
}

/// The incremental-SPT equivalence contract, driven end-to-end through
/// real sweep deltas: a [`SptWorkspace`] repaired with
/// `TimeSweep::step_with_deltas`'s per-mode [`EdgeDelta`]s must stay
/// bit-identical to a fresh Dijkstra on every step — distances AND
/// deterministic tie-broken parents — for every mode and across random
/// walks with forward, backward, sub-cell, and many-cell jumps.
///
/// [`EdgeDelta`]: leo_core::EdgeDelta
#[test]
fn spt_repairs_match_fresh_dijkstra_through_sweep_deltas() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    const MODES: [Mode; 3] = [Mode::BpOnly, Mode::Hybrid, Mode::IslOnly];
    // 24 cases × 8 incremental steps × 3 modes × 2 sources ≥ 1000
    // delta repairs (`apply` invocations), each verified bitwise.
    const CASES: usize = 24;
    const STEPS: usize = 9;
    static APPLIES: AtomicUsize = AtomicUsize::new(0);
    let c = ctx(leo_core::ConstellationKind::Starlink);
    let num_cities = c.ground.cities.len();
    check_with("spt_repairs_match_fresh_dijkstra", CASES, |g| {
        let srcs = [
            g.usize(0..num_cities / 2),
            g.usize(num_cities / 2..num_cities),
        ];
        let mut spts: Vec<Vec<SptWorkspace>> = (0..MODES.len())
            .map(|_| srcs.iter().map(|_| SptWorkspace::new()).collect())
            .collect();
        let mut sweep = TimeSweep::new(&c, &MODES);
        let mut t = g.f64(0.0..86_400.0);
        for s in 0..STEPS {
            let (snaps, deltas) = sweep.step_with_deltas(t);
            check_assert_eq!(deltas.len(), MODES.len(), "delta count");
            for (mi, (snap, delta)) in snaps.iter().zip(deltas).enumerate() {
                for (si, &src) in srcs.iter().enumerate() {
                    let spt = &mut spts[mi][si];
                    let source = snap.city_node(src);
                    if delta.full || !spt.is_ready() {
                        spt.rebuild(&snap.graph, source);
                    } else {
                        spt.apply(&snap.graph, &delta.removed, &delta.reweighted);
                        APPLIES.fetch_add(1, Ordering::Relaxed);
                    }
                    let fresh = leo_graph::dijkstra(&snap.graph, source);
                    let n = snap.graph.num_nodes();
                    check_assert_eq!(spt.num_nodes(), n, "step {s} node count");
                    for v in 0..n {
                        let what = format!("step {s} t={t} mode #{mi} src {src} node {v}");
                        check_assert_eq!(
                            spt.dist(v as u32).to_bits(),
                            fresh.dist[v].to_bits(),
                            "{what}: dist"
                        );
                        check_assert_eq!(
                            spt.parent_nodes()[v],
                            fresh.parent_node[v],
                            "{what}: parent node"
                        );
                        check_assert_eq!(
                            spt.parent_edges()[v],
                            fresh.parent_edge[v],
                            "{what}: parent edge"
                        );
                    }
                    // Paths read off the repaired tree (the churn driver's
                    // access pattern) must match the fresh tree's too.
                    let target = snap.city_node(g.usize(0..num_cities));
                    let a = spt.extract_path(target);
                    let b = leo_graph::extract_path(&fresh, target);
                    check_assert_eq!(
                        a.is_some(),
                        b.is_some(),
                        "step {s} mode #{mi} target reachability"
                    );
                    if let (Some(pa), Some(pb)) = (a, b) {
                        check_assert_eq!(pa.nodes, pb.nodes, "step {s} path nodes");
                        check_assert_eq!(pa.edges, pb.edges, "step {s} path edges");
                        check_assert_eq!(
                            pa.total_weight.to_bits(),
                            pb.total_weight.to_bits(),
                            "step {s} path weight"
                        );
                    }
                }
            }
            let dt = if g.bool() {
                g.f64(0.1..120.0)
            } else {
                g.f64(120.0..20_000.0)
            };
            t = if g.u32(0..8) == 0 { t - dt } else { t + dt };
        }
        Ok(())
    });
    assert!(
        APPLIES.load(Ordering::Relaxed) >= 1000,
        "property suite must exercise >= 1000 delta repairs, got {}",
        APPLIES.load(Ordering::Relaxed)
    );
}
