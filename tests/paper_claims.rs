//! The paper's qualitative claims, re-verified end-to-end on a reduced
//! configuration. Absolute numbers differ from the paper (synthetic
//! substrates, reduced scale); the *shape* — who wins and roughly how —
//! must hold. EXPERIMENTS.md records full-scale paper-vs-measured values.

use leo_core::experiments::latency::{latency_study, summarize};
use leo_core::experiments::throughput::{
    disconnected_satellite_fraction, lax_maxflow_gbps, throughput,
};
use leo_core::experiments::weather::{exceedance_curve, weather_study};
use leo_core::{ExperimentScale, Mode, StudyConfig, StudyContext};

fn small() -> StudyContext {
    // Slightly larger than Tiny so distributions are meaningful, but
    // still debug-mode friendly.
    let mut cfg = ExperimentScale::Tiny.config();
    cfg.num_cities = 340;
    cfg.num_pairs = 120;
    cfg.snapshot_times_s = StudyConfig::day_snapshots(4);
    StudyContext::build(cfg)
}

/// §4 / Fig. 2: hybrid RTTs are lower and, above all, more stable.
#[test]
fn claim_latency_stability() {
    let ctx = small();
    let bp = latency_study(&ctx, Mode::BpOnly, 0);
    let hy = latency_study(&ctx, Mode::Hybrid, 0);
    let s = summarize(&bp, &hy);
    assert!(
        s.bp_median_variation_ms >= s.hybrid_median_variation_ms,
        "BP median variation ({}) must be at least hybrid's ({})",
        s.bp_median_variation_ms,
        s.hybrid_median_variation_ms
    );
    assert!(
        s.bp_max_variation_ms > s.hybrid_max_variation_ms,
        "BP worst-case variation must exceed hybrid's"
    );
    assert!(
        s.max_min_rtt_gap_ms > 0.0,
        "some pair must benefit from ISLs"
    );
}

/// §5 / Fig. 4: hybrid throughput beats BP substantially (paper ≥2.5×
/// at k=1; we require ≥1.5× at reduced scale), and k=4 helps hybrid.
#[test]
fn claim_throughput_advantage() {
    let ctx = small();
    let bp1 = throughput(&ctx, 0.0, Mode::BpOnly, 1);
    let hy1 = throughput(&ctx, 0.0, Mode::Hybrid, 1);
    let hy4 = throughput(&ctx, 0.0, Mode::Hybrid, 4);
    assert!(
        hy1.aggregate_gbps > 1.5 * bp1.aggregate_gbps,
        "hybrid k=1 {} vs BP k=1 {}",
        hy1.aggregate_gbps,
        bp1.aggregate_gbps
    );
    assert!(
        hy4.aggregate_gbps > hy1.aggregate_gbps,
        "multipath must help hybrid"
    );
}

/// §5 in-text: a sizable fraction of satellites is disconnected under
/// BP (paper: 25.1–31.5 % with the densest relay grid); with ISLs, none.
#[test]
fn claim_disconnected_satellites() {
    let ctx = small();
    let bp = disconnected_satellite_fraction(&ctx, Mode::BpOnly, 0);
    for f in &bp {
        assert!(
            (0.05..0.8).contains(f),
            "BP disconnected fraction {f} out of plausible band"
        );
    }
    let hy = disconnected_satellite_fraction(&ctx, Mode::Hybrid, 0);
    // lint: allow(float-fastmath) exact-zero is the "never disconnected" sentinel, not a computed value
    assert!(hy.iter().all(|&f| f == 0.0));
}

/// §3 critique: the lax one-sink max-flow model overstates throughput.
#[test]
fn claim_lax_model_overstates() {
    let ctx = small();
    let strict = throughput(&ctx, 0.0, Mode::Hybrid, 4);
    let lax = lax_maxflow_gbps(&ctx, 0.0, Mode::Hybrid);
    assert!(
        lax > 1.2 * strict.aggregate_gbps,
        "lax {} should exceed per-pair {} clearly",
        lax,
        strict.aggregate_gbps
    );
}

/// §6 / Fig. 6: BP suffers more attenuation in distribution.
#[test]
fn claim_weather_resilience() {
    let ctx = small();
    let w = weather_study(&ctx, 7, 0);
    let bm = w.bp_median();
    let im = w.isl_median();
    assert!(
        bm >= im,
        "BP median 99.5th-pct attenuation ({bm} dB) must be ≥ ISL's ({im} dB)"
    );
}

/// §6 / Fig. 8: Delhi–Sydney, BP ≫ ISL at the 1% exceedance level
/// (paper: 5 dB vs 2.2 dB).
#[test]
fn claim_delhi_sydney_exceedance() {
    let ctx = small();
    let c = exceedance_curve(&ctx, "Delhi", "Sydney", 0.0).expect("path at t=0");
    let i = c
        .p_percent
        .iter()
        .position(|&p| p.to_bits() == 1.0f64.to_bits())
        .unwrap();
    assert!(
        c.bp_db[i] > 1.5 * c.isl_db[i],
        "BP {} dB vs ISL {} dB at 1%",
        c.bp_db[i],
        c.isl_db[i]
    );
}

/// §7 / Fig. 9: GSO-arc avoidance constrains the Equator far more than
/// mid-latitudes.
#[test]
fn claim_gso_equator_pain() {
    let ctx = small();
    let rows = leo_core::experiments::gso_arc::gso_sweep(&ctx, &[0.0, 45.0], 40.0, 22.0, 0.0);
    assert!(rows[0].usable_sky_fraction + 0.2 < rows[1].usable_sky_fraction);
}
