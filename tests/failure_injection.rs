//! Robustness under failures: killing links must degrade gracefully and
//! monotonically, and the k-disjoint routing must tolerate single-path
//! loss by construction.

use leo_core::{ExperimentScale, Mode, StudyContext};
use leo_graph::{dijkstra, dijkstra_with_mask, extract_path, k_edge_disjoint_paths};
use leo_util::check::check_with;
use leo_util::{check_assert, check_assume};

fn ctx() -> StudyContext {
    StudyContext::build(ExperimentScale::Tiny.config())
}

#[test]
fn killing_the_shortest_path_leaves_alternatives() {
    let ctx = ctx();
    let snap = ctx.snapshot(0.0, Mode::Hybrid);
    let mut tested = 0;
    for p in ctx.pairs.iter().take(10) {
        let (s, d) = (
            snap.city_node(p.src as usize),
            snap.city_node(p.dst as usize),
        );
        let sp = dijkstra(&snap.graph, s);
        let Some(best) = extract_path(&sp, d) else {
            continue;
        };
        // Disable every edge of the best path.
        let mut disabled = vec![false; snap.graph.num_edges()];
        for &e in &best.edges {
            disabled[e as usize] = true;
        }
        let sp2 = dijkstra_with_mask(&snap.graph, s, &disabled, Some(d));
        if let Some(alt) = extract_path(&sp2, d) {
            assert!(
                alt.total_weight >= best.total_weight - 1e-12,
                "detour cannot be shorter than the shortest path"
            );
            tested += 1;
        }
    }
    assert!(tested > 0, "no pair had a surviving alternative");
}

#[test]
fn progressive_link_loss_is_monotone() {
    // Killing progressively more ISLs can only lengthen (or sever) the
    // hybrid path.
    let ctx = ctx();
    let snap = ctx.snapshot(0.0, Mode::Hybrid);
    let p = ctx.pairs[0];
    let (s, d) = (
        snap.city_node(p.src as usize),
        snap.city_node(p.dst as usize),
    );
    let mut disabled = vec![false; snap.graph.num_edges()];
    let mut prev = 0.0f64;
    for kill_round in 0..4 {
        let sp = dijkstra_with_mask(&snap.graph, s, &disabled, Some(d));
        match extract_path(&sp, d) {
            Some(path) => {
                assert!(
                    path.total_weight >= prev - 1e-12,
                    "round {kill_round}: path got shorter after failures"
                );
                prev = path.total_weight;
                for &e in &path.edges {
                    disabled[e as usize] = true;
                }
            }
            None => break, // severed: acceptable terminal state
        }
    }
}

#[test]
fn k_disjoint_survives_single_path_failure() {
    let ctx = ctx();
    let snap = ctx.snapshot(0.0, Mode::Hybrid);
    for p in ctx.pairs.iter().take(10) {
        let (s, d) = (
            snap.city_node(p.src as usize),
            snap.city_node(p.dst as usize),
        );
        let paths = k_edge_disjoint_paths(&snap.graph, s, d, 4, None);
        if paths.len() >= 2 {
            // Kill all edges of path 0; every other path must still be
            // intact because they are edge-disjoint.
            let mut disabled = vec![false; snap.graph.num_edges()];
            for &e in &paths[0].edges {
                disabled[e as usize] = true;
            }
            for alt in &paths[1..] {
                for &e in &alt.edges {
                    assert!(!disabled[e as usize], "disjointness violated");
                }
            }
            return;
        }
    }
    panic!("no pair with ≥2 disjoint paths found");
}

/// Random edge failures never *reduce* shortest-path delay, for any
/// pair and failure set. 16 cases (the proptest original ran 8): the
/// snapshot is built once and shared, each case draws its own kill set.
#[test]
fn random_failures_never_speed_up() {
    let ctx = ctx();
    let snap = ctx.snapshot(0.0, Mode::Hybrid);
    check_with("random_failures_never_speed_up", 16, |g| {
        let kill_seed = g.u64(0..1000);
        let p = ctx.pairs[(kill_seed % ctx.pairs.len() as u64) as usize];
        let (s, d) = (
            snap.city_node(p.src as usize),
            snap.city_node(p.dst as usize),
        );
        let base = dijkstra(&snap.graph, s).dist[d as usize];
        check_assume!(base.is_finite());
        // Deterministically kill ~5% of edges keyed on the seed.
        let disabled: Vec<bool> = (0..snap.graph.num_edges())
            .map(|e| (e as u64).wrapping_mul(2654435761).wrapping_add(kill_seed) % 20 == 0)
            .collect();
        let after = dijkstra_with_mask(&snap.graph, s, &disabled, Some(d)).dist[d as usize];
        check_assert!(after >= base - 1e-12, "failures produced a faster path");
        Ok(())
    });
}
