#!/usr/bin/env bash
# Tier-1 verification, fully offline.
#
# 1. Hermeticity guard: [workspace.dependencies] may only name in-tree
#    path crates. Any crates-io (version) dependency fails the build
#    before cargo even runs, so a registry dep can't sneak back in.
# 2. Offline release build + full test suite (`--offline` makes cargo
#    error out instead of touching the network).
# 3. Telemetry schema guard: one Tiny figure run with LEO_LOG=info must
#    produce a RUN_*.jsonl in which every line is a known event type and
#    the final record is the run manifest (validate_run checks both).
#
# Usage: scripts/ci.sh   (from anywhere; cd's to the repo root)

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== hermeticity guard: [workspace.dependencies] must be path-only =="
violations=$(
    awk '
        /^\[workspace.dependencies\]/ { in_deps = 1; next }
        /^\[/                         { in_deps = 0 }
        in_deps && NF && $0 !~ /^#/ && $0 !~ /path *=/ { print }
    ' Cargo.toml
)
if [ -n "$violations" ]; then
    echo "ERROR: non-path entries in [workspace.dependencies]:" >&2
    echo "$violations" >&2
    echo "The workspace must build offline; fold the dependency into crates/util instead." >&2
    exit 1
fi
echo "ok: all workspace dependencies are path deps"

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo test -q --offline =="
cargo test -q --offline

echo "== telemetry schema: Tiny fig2 run under LEO_LOG=info =="
log_dir=$(mktemp -d)
trap 'rm -rf "$log_dir"' EXIT
LEO_LOG=info LEO_LOG_DIR="$log_dir" \
    cargo run -q --release --offline -p leo-bench --bin fig2_latency -- --scale tiny \
    > /dev/null
cargo run -q --release --offline -p leo-bench --bin validate_run -- \
    "$log_dir/RUN_fig2_latency.jsonl"

echo "tier-1 verify passed"
