#!/usr/bin/env bash
# Tier-1 verification, fully offline.
#
# 1. Hermeticity guard: [workspace.dependencies] may only name in-tree
#    path crates. Any crates-io (version) dependency fails the build
#    before cargo even runs, so a registry dep can't sneak back in.
# 2. Offline release build + full test suite (`--offline` makes cargo
#    error out instead of touching the network).
# 3. Style gates: rustfmt (check mode) and clippy with -D warnings —
#    the tree must be lint-clean, not just compiling.
# 4. Static invariants: `leo-lint --deny` must pass — the source-level
#    rules (determinism, panic-free libs, zero-alloc hot paths, the
#    call-graph reachability rules, and the stale-suppression audit; see
#    DESIGN.md "Static invariants") with every suppression reasoned.
#    The run persists the workspace symbol graph to
#    target/lint-symgraph.jsonl for post-hoc queries (jq/grep over
#    lint_symbol/lint_edge records).
#    4b. Sanitizer lane (opt-in: LEO_CI_SANITIZE=1, needs a nightly
#    toolchain): re-runs the lock-free fan-out (leo-core par), telemetry
#    sink, and sketch suites under ThreadSanitizer. Skips gracefully
#    with a notice when nightly is not installed, so the default lane
#    stays stable-only and offline.
# 5. Doc gate: `cargo doc` with warnings denied — broken intra-doc links
#    and malformed doc comments fail the build.
# 6. Telemetry schema guard: one Tiny figure run with LEO_LOG=info must
#    produce a RUN_*.jsonl in which every line is a known event type and
#    the final record is the run manifest (validate_run checks both).
#    The run inherits LEO_LINT_CLEAN=1 from the lint lane, and
#    validate_run --require-lint-clean rejects manifests that don't
#    carry lint_clean="true".
# 7. leo-report lane: run the Tiny fig2 a second time into the same
#    log dir (exercising the RUN_*.jsonl collision suffix — the second
#    run must land in RUN_fig2_latency-01.jsonl), then A/B-diff the two
#    runs with leo-report. Identical configs ⇒ every deterministic
#    quantity (counters, series stats) must match exactly; only wall
#    times may drift, and those are informational. The lane also
#    exercises --assert-peak-rss-mb on the second run with a generous
#    Tiny budget.
# 8. Paper-scale RSS smoke (opt-in: LEO_CI_PAPER_SMOKE=1, ~40 min on
#    one core): run the full 96-snapshot paper-scale fig2 under
#    heartbeats and require peak RSS under a fixed 512 MiB budget.
#    The streaming drivers hold per-snapshot samples only inside
#    fixed-size sketches, so memory is O(1) in snapshot count —
#    observed peak is ~140 MiB (dominated by the constellation and
#    visibility state, not by samples); the budget is loose for
#    machine-to-machine noise but fails loudly if anyone reintroduces
#    per-sample Vec accumulation.
# 9. Routing-bench smoke: run benches/routing.rs and require the
#    workspace+bundle inner loop to beat the seed path by >= 1.1x
#    (the committed BENCH_routing.json shows ~1.7x; the smoke threshold
#    is loose to tolerate CI noise but loud when the optimisation
#    regresses to parity).
# 10. Snapshot-bench smoke: run benches/snapshot.rs and require a
#    consecutive-instant TimeSweep step to beat the per-instant
#    snapshot_bundle rebuild by >= 1.5x (committed BENCH_snapshot.json
#    shows ~2.2x; same loose-floor rationale as the routing gate).
# 11. Shard identity lane: bench-scale fig2 run unsharded and as 4
#    spawned OS shard workers (spill + merge); stdout and the CSV must
#    be byte-identical. This is the out-of-core contract — sharding is
#    an execution strategy, never a result change.
# 12. Shard-bench smoke: run benches/shard.rs and require the 4-shard
#    merge (decode + validate + concatenate + sketch merges) to cost
#    <= 5% of one unsharded latency fold (committed BENCH_shard.json
#    shows ~0.3%; the loose ceiling is loud if the merge ever turns
#    into a per-pair recompute).
# 13. Million-pair smoke (opt-in: LEO_CI_MILLION_PAIRS=1, ~1 min):
#    ext_million_pairs at full scale — 1,000,000 pairs over 4 workers,
#    each asserted under a 512 MiB peak-RSS budget via its manifest.
#
# Usage: scripts/ci.sh   (from anywhere; cd's to the repo root)

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== hermeticity guard: [workspace.dependencies] must be path-only =="
violations=$(
    awk '
        /^\[workspace.dependencies\]/ { in_deps = 1; next }
        /^\[/                         { in_deps = 0 }
        in_deps && NF && $0 !~ /^#/ && $0 !~ /path *=/ { print }
    ' Cargo.toml
)
if [ -n "$violations" ]; then
    echo "ERROR: non-path entries in [workspace.dependencies]:" >&2
    echo "$violations" >&2
    echo "The workspace must build offline; fold the dependency into crates/util instead." >&2
    exit 1
fi
echo "ok: all workspace dependencies are path deps"

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo test -q --offline =="
cargo test -q --offline

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --offline --all-targets -- -D warnings =="
cargo clippy -q --offline --all-targets -- -D warnings

echo "== static invariants: leo-lint --deny =="
cargo run -q --release --offline -p leo-lint -- --deny --graph-out target/lint-symgraph.jsonl
export LEO_LINT_CLEAN=1

if [ "${LEO_CI_SANITIZE:-0}" = "1" ]; then
    echo "== sanitize lane (opt-in): ThreadSanitizer on par/telemetry/sketch =="
    # TSan needs an instrumented std (-Zbuild-std): without it, the
    # happens-before edges inside std (thread::scope joins, channel
    # sends) are invisible and every cross-thread handoff is a false
    # positive. That in turn needs nightly + the rust-src component.
    std_lock=""
    if cargo +nightly --version >/dev/null 2>&1; then
        std_lock="$(rustc +nightly --print sysroot)/lib/rustlib/src/rust/library/Cargo.lock"
    fi
    if [ -n "$std_lock" ] && [ -f "$std_lock" ]; then
        host=$(rustc -vV | sed -n 's/^host: //p')
        # A separate target dir keeps instrumented artifacts out of the
        # stable cache; --target scopes -Zsanitizer to test binaries so
        # build scripts stay uninstrumented.
        RUSTFLAGS="-Zsanitizer=thread" CARGO_TARGET_DIR=target/tsan \
            cargo +nightly test -q --offline -Zbuild-std --target "$host" \
            -p leo-core --lib par::
        RUSTFLAGS="-Zsanitizer=thread" CARGO_TARGET_DIR=target/tsan \
            cargo +nightly test -q --offline -Zbuild-std --target "$host" \
            -p leo-util --lib telemetry::
        RUSTFLAGS="-Zsanitizer=thread" CARGO_TARGET_DIR=target/tsan \
            cargo +nightly test -q --offline -Zbuild-std --target "$host" \
            -p leo-util --lib sketch::
    else
        echo "skip: needs nightly with rust-src (rustup toolchain install nightly && rustup component add rust-src --toolchain nightly)"
    fi
fi

echo "== doc gate: cargo doc --no-deps with warnings denied =="
RUSTDOCFLAGS="-D warnings" cargo doc -q --no-deps --offline

echo "== telemetry schema: Tiny fig2 run under LEO_LOG=info =="
log_dir=$(mktemp -d)
trap 'rm -rf "$log_dir" "${paper_dir:-}" "${shard_a:-}" "${shard_b:-}" "${million_dir:-}"' EXIT
LEO_LOG=info LEO_LOG_DIR="$log_dir" \
    cargo run -q --release --offline -p leo-bench --bin fig2_latency -- --scale tiny \
    > /dev/null
cargo run -q --release --offline -p leo-bench --bin validate_run -- \
    --require-lint-clean "$log_dir/RUN_fig2_latency.jsonl"

echo "== leo-report: second Tiny fig2 run, collision suffix, empty self-diff =="
LEO_LOG=info LEO_LOG_DIR="$log_dir" \
    cargo run -q --release --offline -p leo-bench --bin fig2_latency -- --scale tiny \
    > /dev/null
if [ ! -f "$log_dir/RUN_fig2_latency-01.jsonl" ]; then
    echo "ERROR: second run did not land in RUN_fig2_latency-01.jsonl" >&2
    ls "$log_dir" >&2
    exit 1
fi
cargo run -q --release --offline -p leo-bench --bin leo-report -- \
    --assert-peak-rss-mb 64 \
    "$log_dir/RUN_fig2_latency.jsonl" "$log_dir/RUN_fig2_latency-01.jsonl"

if [ "${LEO_CI_PAPER_SMOKE:-0}" = "1" ]; then
    echo "== paper-scale fig2 RSS smoke: peak RSS must stay under 512 MiB =="
    paper_dir=$(mktemp -d)
    LEO_LOG=info LEO_LOG_HEARTBEAT=30 LEO_LOG_DIR="$paper_dir" \
        cargo run -q --release --offline -p leo-bench --bin fig2_latency -- --scale paper \
        > /dev/null
    cargo run -q --release --offline -p leo-bench --bin leo-report -- \
        --assert-peak-rss-mb 512 "$paper_dir/RUN_fig2_latency.jsonl"
    rm -rf "$paper_dir"
fi

echo "== routing bench smoke: workspace inner loop must beat seed path =="
LEO_LOG=off LEO_BENCH_DIR="$log_dir" \
    cargo bench -q --offline -p leo-bench --bench routing > /dev/null
awk -F'"median_ns":' '
    /"bench":"inner_loop_seed"/      { split($2, a, /[,}]/); seed = a[1] }
    /"bench":"inner_loop_workspace"/ { split($2, a, /[,}]/); ws = a[1] }
    END {
        if (seed == "" || ws == "" || ws <= 0) {
            print "ERROR: inner_loop benches missing from BENCH_routing.json" > "/dev/stderr"
            exit 1
        }
        ratio = seed / ws
        printf "inner loop: seed %d ns vs workspace %d ns  (%.2fx)\n", seed, ws, ratio
        if (ratio < 1.1) {
            printf "ERROR: workspace speedup %.2fx below 1.1x smoke floor\n", ratio > "/dev/stderr"
            exit 1
        }
    }
' "$log_dir/BENCH_routing.json"

echo "== delta lane: Tiny delta-vs-full equivalence (>= 1000 bitwise-verified repairs) =="
cargo test -q --offline -p leo-integration-tests --test sweep \
    spt_repairs_match_fresh_dijkstra_through_sweep_deltas -- --exact

echo "== delta bench smoke: delta step must beat full per-instant Dijkstra =="
LEO_LOG=off LEO_BENCH_DIR="$log_dir" \
    cargo bench -q --offline -p leo-bench --bench delta > /dev/null
awk -F'"median_ns":' '
    /"bench":"fig2_inner_full_dijkstra"/ { split($2, a, /[,}]/); full = a[1] }
    /"bench":"fig2_inner_delta_spt"/     { split($2, a, /[,}]/); delta = a[1] }
    END {
        if (full == "" || delta == "" || delta <= 0) {
            print "ERROR: fig2_inner benches missing from BENCH_delta.json" > "/dev/stderr"
            exit 1
        }
        ratio = full / delta
        printf "fig2 inner loop: full %d ns vs delta %d ns  (%.2fx)\n", full, delta, ratio
        if (ratio < 1.2) {
            printf "ERROR: delta speedup %.2fx below 1.2x smoke floor\n", ratio > "/dev/stderr"
            exit 1
        }
    }
' "$log_dir/BENCH_delta.json"

echo "== snapshot bench smoke: sweep step must beat per-instant rebuild =="
LEO_LOG=off LEO_BENCH_DIR="$log_dir" \
    cargo bench -q --offline -p leo-bench --bench snapshot > /dev/null
awk -F'"median_ns":' '
    /"bench":"bundle_per_instant_rebuild"/ { split($2, a, /[,}]/); rebuild = a[1] }
    /"bench":"sweep_consecutive"/          { split($2, a, /[,}]/); sweep = a[1] }
    END {
        if (rebuild == "" || sweep == "" || sweep <= 0) {
            print "ERROR: snapshot benches missing from BENCH_snapshot.json" > "/dev/stderr"
            exit 1
        }
        ratio = rebuild / sweep
        printf "snapshot: rebuild %d ns vs sweep step %d ns  (%.2fx)\n", rebuild, sweep, ratio
        if (ratio < 1.5) {
            printf "ERROR: sweep speedup %.2fx below 1.5x smoke floor\n", ratio > "/dev/stderr"
            exit 1
        }
    }
' "$log_dir/BENCH_snapshot.json"

echo "== shard identity: bench-scale fig2, unsharded vs 4 spawned shards =="
repo_root=$(pwd)
shard_a=$(mktemp -d)
shard_b=$(mktemp -d)
(cd "$shard_a" && "$repo_root/target/release/fig2_latency" --scale bench > stdout.txt)
(cd "$shard_b" && "$repo_root/target/release/fig2_latency" --scale bench \
    --shards 4 --spawn > stdout.txt)
if ! diff -q "$shard_a/stdout.txt" "$shard_b/stdout.txt" ||
    ! diff -q "$shard_a/results/fig2_latency.csv" "$shard_b/results/fig2_latency.csv"; then
    echo "ERROR: sharded fig2 output differs from the unsharded run" >&2
    diff "$shard_a/stdout.txt" "$shard_b/stdout.txt" >&2 || true
    exit 1
fi
echo "ok: stdout and CSV byte-identical across execution strategies"
rm -rf "$shard_a" "$shard_b"

echo "== shard bench smoke: merge must stay a tiny fraction of the fold =="
LEO_LOG=off LEO_BENCH_DIR="$log_dir" \
    cargo bench -q --offline -p leo-bench --bench shard > /dev/null
awk -F'"median_ns":' '
    /"bench":"latency_unsharded"/ { split($2, a, /[,}]/); fold = a[1] }
    /"bench":"merge_4_shards"/    { split($2, a, /[,}]/); merge = a[1] }
    END {
        if (fold == "" || merge == "" || fold <= 0) {
            print "ERROR: shard benches missing from BENCH_shard.json" > "/dev/stderr"
            exit 1
        }
        ratio = merge / fold
        printf "shard: fold %d ns vs 4-shard merge %d ns  (overhead %.4fx)\n", fold, merge, ratio
        if (ratio > 0.05) {
            printf "ERROR: merge overhead %.4fx above the 0.05x ceiling\n", ratio > "/dev/stderr"
            exit 1
        }
    }
' "$log_dir/BENCH_shard.json"

if [ "${LEO_CI_MILLION_PAIRS:-0}" = "1" ]; then
    echo "== million-pair smoke: 1M pairs, 4 workers, 512 MiB/worker budget =="
    million_dir=$(mktemp -d)
    (cd "$million_dir" && "$repo_root/target/release/ext_million_pairs")
    rm -rf "$million_dir"
fi

echo "tier-1 verify passed"
