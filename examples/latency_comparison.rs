//! Scenario: an operator comparing BP-only and hybrid service quality on
//! flagship intercontinental routes — the workloads the paper's
//! introduction motivates (low-latency long-distance paths that beat
//! terrestrial fiber).
//!
//! ```sh
//! cargo run -p leo-examples --release --bin latency_comparison
//! ```

use leo_core::experiments::latency::pair_timeseries;
use leo_core::{ExperimentScale, Mode, StudyContext};
use leo_geo::{great_circle_distance_m, SPEED_OF_LIGHT_M_S};

/// Flagship routes: finance and content corridors.
const ROUTES: &[(&str, &str)] = &[
    ("New York", "London"),
    ("London", "Singapore"),
    ("Tokyo", "Los Angeles"),
    ("São Paulo", "Lagos"),
    ("Delhi", "Sydney"),
];

fn main() {
    let mut cfg = ExperimentScale::Tiny.config();
    cfg.num_cities = 340; // all real cities
    cfg.snapshot_times_s = leo_core::StudyConfig::day_snapshots(6);
    let ctx = StudyContext::build(cfg);

    println!(
        "{:<24} {:>9} {:>12} {:>12} {:>12}",
        "route", "geo (km)", "c-limit (ms)", "BP min (ms)", "hybrid (ms)"
    );
    for (a, b) in ROUTES {
        let ia = ctx.ground.city_index(a).expect("city");
        let ib = ctx.ground.city_index(b).expect("city");
        let d = great_circle_distance_m(ctx.ground.cities[ia].pos, ctx.ground.cities[ib].pos);
        // The physical floor: RTT along the geodesic at c in vacuum.
        let c_limit_ms = 2.0 * d / SPEED_OF_LIGHT_M_S * 1000.0;
        let min_rtt = |mode| {
            pair_timeseries(&ctx, a, b, mode, 0)
                .iter()
                .filter_map(|p| p.rtt_ms)
                .fold(f64::INFINITY, f64::min)
        };
        let bp = min_rtt(Mode::BpOnly);
        let hy = min_rtt(Mode::Hybrid);
        println!(
            "{:<24} {:>9.0} {:>12.1} {:>12} {:>12}",
            format!("{a} -> {b}"),
            d / 1000.0,
            c_limit_ms,
            if bp.is_finite() {
                format!("{bp:.1}")
            } else {
                "-".into()
            },
            if hy.is_finite() {
                format!("{hy:.1}")
            } else {
                "-".into()
            },
        );
    }
    println!("\nhybrid paths ride ISLs near the geodesic at c; BP zig-zags through whatever relays exist.");
}
