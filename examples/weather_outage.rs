//! Scenario: a link-budget engineer sizing fade margin for a tropical
//! ground station. Plays one realized weather day over a Singapore
//! Ku-band uplink and reports fade events against common MODCOD margins.
//!
//! ```sh
//! cargo run -p leo-examples --bin weather_outage
//! ```

use leo_atmo::{AttenuationModel, Climatology, SlantPath, WeatherProcess};
use leo_geo::{deg_to_rad, GeoPoint};

fn main() {
    let model = AttenuationModel::new(Climatology::synthetic());
    let weather = WeatherProcess::new(2024);
    let site = GeoPoint::from_degrees(1.35, 103.82); // Singapore
    let path = SlantPath {
        site,
        elevation_rad: deg_to_rad(40.0),
        frequency_ghz: 14.25,
    };

    // The statistical design points first.
    println!("analytic exceedance curve (Singapore, Ku up, 40 deg):");
    for p in [5.0, 1.0, 0.5, 0.1, 0.01] {
        println!(
            "  exceeded {:>5}% of the year: {:>6.2} dB",
            p,
            model.total_attenuation_db(&path, p)
        );
    }

    // One realized day, minute by minute.
    let margins = [3.0f64, 6.0, 10.0]; // dB of link margin per MODCOD step
    let mut minutes_over = [0usize; 3];
    let mut worst: f64 = 0.0;
    let mut events = 0usize;
    let mut in_fade = false;
    for minute in 0..(24 * 60) {
        let t = minute as f64 * 60.0;
        let a = weather.attenuation_db(&model, &path, t);
        worst = worst.max(a);
        for (i, m) in margins.iter().enumerate() {
            if a > *m {
                minutes_over[i] += 1;
            }
        }
        let fading = a > margins[0];
        if fading && !in_fade {
            events += 1;
        }
        in_fade = fading;
    }
    println!("\none realized day (seed 2024): worst fade {worst:.2} dB, {events} fade event(s) over 3 dB");
    for (i, m) in margins.iter().enumerate() {
        println!(
            "  margin {:>4.1} dB exceeded for {:>3} minutes ({:.2}% of the day)",
            m,
            minutes_over[i],
            minutes_over[i] as f64 / (24.0 * 60.0) * 100.0
        );
    }
    println!("\nhigher-margin MODCOD trades bandwidth for availability (paper §6).");
}
