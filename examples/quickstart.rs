//! Quickstart: build a study context, freeze a snapshot, and route one
//! city pair under bent-pipe and hybrid connectivity.
//!
//! ```sh
//! cargo run -p leo-examples --bin quickstart
//! ```

use leo_core::{ExperimentScale, Mode, StudyContext};
use leo_graph::{dijkstra, extract_path};

fn main() {
    // A small-but-real configuration: the Starlink phase-1 shell, 60
    // cities, a 5° relay grid, synthetic oceanic air traffic.
    let ctx = StudyContext::build(ExperimentScale::Tiny.config());
    println!(
        "constellation: {} satellites | ground: {} cities + {} relays",
        ctx.num_satellites(),
        ctx.ground.cities.len(),
        ctx.ground.relays.len()
    );

    let src = ctx.ground.city_index("New York").expect("city loaded");
    let dst = ctx.ground.city_index("London").expect("city loaded");

    for mode in [Mode::BpOnly, Mode::Hybrid] {
        // Freeze the network at t = 0 under this connectivity mode.
        let snap = ctx.snapshot(0.0, mode);
        let sp = dijkstra(&snap.graph, snap.city_node(src));
        match extract_path(&sp, snap.city_node(dst)) {
            Some(path) => println!(
                "{mode:?}: New York -> London RTT {:.1} ms over {} hops ({} nodes, {} edges in snapshot)",
                leo_core::rtt_ms(path.total_weight),
                path.num_hops(),
                snap.graph.num_nodes(),
                snap.graph.num_edges(),
            ),
            None => println!("{mode:?}: unreachable at t=0"),
        }
    }
}
