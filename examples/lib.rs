//! Runnable example binaries exercising the public leo-isl API.
//!
//! * `quickstart` — build a context, freeze a snapshot, route a pair.
//! * `latency_comparison` — BP vs hybrid RTT distributions for sample routes.
//! * `weather_outage` — a realized weather day on a tropical link, with
//!   fade margin / MODCOD implications.
//! * `constellation_explorer` — orbital geometry and visibility from a city.
