//! Scenario: exploring constellation geometry — orbital periods, coverage
//! footprints, and what a user terminal in a given city actually sees
//! over an hour.
//!
//! ```sh
//! cargo run -p leo-examples --bin constellation_explorer -- "New York"
//! ```

use leo_geo::{coverage_radius_m, deg_to_rad, GeoPoint};
use leo_orbit::visibility::subpoint_index;
use leo_orbit::{orbital_period_s, visible_satellites, Constellation, VisibilityParams};

fn main() {
    let city = std::env::args().nth(1).unwrap_or_else(|| "Zurich".into());
    let cities = leo_data::load_cities(340, 42);
    let gt = leo_data::city_by_name(&cities, &city)
        .map(|c| c.pos)
        .unwrap_or_else(|| {
            eprintln!("unknown city {city}; using Zurich");
            GeoPoint::from_degrees(47.38, 8.54)
        });

    for (name, c, alt, elev) in [
        ("Starlink", Constellation::starlink(), 550_000.0, 25.0),
        ("Kuiper", Constellation::kuiper(), 630_000.0, 30.0),
    ] {
        println!(
            "\n{name}: {} satellites, period {:.1} min, coverage radius {:.0} km at e={elev} deg",
            c.num_satellites(),
            orbital_period_s(alt) / 60.0,
            coverage_radius_m(alt, deg_to_rad(elev)) / 1000.0,
        );
        let params = VisibilityParams {
            min_elevation_rad: c.min_elevation_rad(),
            max_altitude_m: alt,
        };
        let (mut scratch, mut vis) = (Vec::new(), Vec::new());
        print!("visible from {city} ({gt}) over 1 h: ");
        let mut counts = Vec::new();
        for minute in (0..60).step_by(5) {
            let snap = c.positions_at(minute as f64 * 60.0);
            let index = subpoint_index(&snap);
            visible_satellites(gt, &snap, &index, &params, &mut scratch, &mut vis);
            counts.push(vis.len());
        }
        println!(
            "{counts:?} (min {}, max {})",
            counts.iter().min().unwrap(),
            counts.iter().max().unwrap()
        );
    }
}
