//! A compact seeded property-testing harness (replaces `proptest` for
//! this workspace).
//!
//! Shape of a property:
//!
//! ```
//! use leo_util::check::{check, Gen};
//! use leo_util::{check_assert, check_assume};
//!
//! check("addition_commutes", |g: &mut Gen| {
//!     let a = g.u32(0..1000);
//!     let b = g.u32(0..1000);
//!     check_assume!(a != b); // skipped cases don't count
//!     check_assert!(a + b == b + a, "a={a} b={b}");
//!     Ok(())
//! });
//! ```
//!
//! * Cases are generated from a seeded [`Rng64`] stream; the base seed is
//!   derived from the property name, so every property is deterministic
//!   run-to-run but decorrelated from its neighbours.
//! * On failure the harness panics with the property name, case number,
//!   and the **failing case seed**; rerun just that case by setting
//!   `LEO_CHECK_SEED=0x<seed>`.
//! * [`check_assume!`](crate::check_assume) skips a case (like proptest's `prop_assume!`);
//!   skipped cases are regenerated so the configured case count is the
//!   number of cases actually *executed*. A runaway skip rate (> 95 %)
//!   fails loudly instead of looping forever.
//! * No shrinking: cases are small by construction here, and the
//!   reported seed reproduces the exact failing input.

use crate::rng::{mix64, Rng64};
use std::ops::Range;

/// Default number of executed cases per property (≥ proptest's 256
/// default, which the ported suites were written against).
pub const DEFAULT_CASES: usize = 256;

/// Why a case did not pass.
#[derive(Debug, Clone)]
pub struct CaseError {
    /// Human-readable description (empty for skips).
    pub message: String,
    /// True when the case was vetoed by [`check_assume!`](crate::check_assume), not failed.
    pub skip: bool,
}

impl CaseError {
    /// A genuine failure.
    pub fn fail(message: impl Into<String>) -> Self {
        CaseError {
            message: message.into(),
            skip: false,
        }
    }

    /// A vetoed (skipped) case.
    pub fn skip() -> Self {
        CaseError {
            message: String::new(),
            skip: true,
        }
    }
}

/// Result of one property case.
pub type CaseResult = Result<(), CaseError>;

/// Input generator handed to each property case.
#[derive(Debug)]
pub struct Gen {
    rng: Rng64,
}

impl Gen {
    /// Generator for a specific case seed (what `LEO_CHECK_SEED` replays).
    pub fn from_seed(seed: u64) -> Self {
        Gen {
            rng: Rng64::seed_from_u64(seed),
        }
    }

    /// Uniform `u32` in `[range.start, range.end)`.
    pub fn u32(&mut self, range: Range<u32>) -> u32 {
        self.rng.random_range(range)
    }

    /// Uniform `u64` in `[range.start, range.end)`.
    pub fn u64(&mut self, range: Range<u64>) -> u64 {
        self.rng.random_range(range)
    }

    /// Uniform `usize` in `[range.start, range.end)`.
    pub fn usize(&mut self, range: Range<usize>) -> usize {
        self.rng.random_range(range)
    }

    /// Uniform `f64` in `[range.start, range.end)`.
    pub fn f64(&mut self, range: Range<f64>) -> f64 {
        self.rng.random_range(range)
    }

    /// Fair coin.
    pub fn bool(&mut self) -> bool {
        self.rng.random_bool(0.5)
    }

    /// Vector with a uniform length in `len` whose elements are drawn by
    /// `f`.
    pub fn vec<T>(&mut self, len: Range<usize>, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let n = if len.start + 1 == len.end {
            len.start
        } else {
            self.usize(len)
        };
        (0..n).map(|_| f(self)).collect()
    }

    /// Access the underlying PRNG for bespoke distributions.
    pub fn rng(&mut self) -> &mut Rng64 {
        &mut self.rng
    }
}

/// Run `f` for [`DEFAULT_CASES`] executed cases.
///
/// # Panics
/// Panics (with the failing seed) if any case fails.
pub fn check(name: &str, f: impl FnMut(&mut Gen) -> CaseResult) {
    check_with(name, DEFAULT_CASES, f);
}

/// Run `f` for `cases` executed cases.
///
/// # Panics
/// Panics (with the failing seed) if any case fails, or if more than 95 %
/// of generated cases are skipped.
pub fn check_with(name: &str, cases: usize, mut f: impl FnMut(&mut Gen) -> CaseResult) {
    // Replay mode: run exactly the requested case.
    if let Ok(v) = std::env::var("LEO_CHECK_SEED") {
        let seed =
            parse_seed(&v).unwrap_or_else(|| panic!("LEO_CHECK_SEED `{v}` is not a (hex) integer"));
        let mut gen = Gen::from_seed(seed);
        match f(&mut gen) {
            Ok(()) => return,
            Err(e) if e.skip => panic!("property `{name}`: seed {seed:#018X} is a skipped case"),
            Err(e) => panic!(
                "property `{name}` failed (replayed seed {seed:#018X}): {}",
                e.message
            ),
        }
    }

    let base = name_seed(name);
    let max_attempts = cases.saturating_mul(20).max(1000);
    let mut executed = 0usize;
    let mut attempt = 0usize;
    while executed < cases {
        assert!(
            attempt < max_attempts,
            "property `{name}`: skipped {} of {attempt} generated cases — \
             the assumptions veto almost everything",
            attempt - executed
        );
        let case_seed = mix64(base ^ attempt as u64);
        let mut gen = Gen::from_seed(case_seed);
        match f(&mut gen) {
            Ok(()) => executed += 1,
            Err(e) if e.skip => {}
            Err(e) => panic!(
                "property `{name}` failed at case {executed} (seed {case_seed:#018X}): {}\n\
                 rerun just this case with LEO_CHECK_SEED={case_seed:#X}",
                e.message
            ),
        }
        attempt += 1;
    }
}

/// Deterministic per-property base seed (FNV-1a of the name, mixed).
fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    mix64(h)
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Assert inside a property case: on failure the case (not the process)
/// fails, and the harness reports the failing seed.
#[macro_export]
macro_rules! check_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::check::CaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::check::CaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Equality assert with both values in the failure message. An optional
/// trailing format string adds case context (like `assert_eq!`'s).
#[macro_export]
macro_rules! check_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::check::CaseError::fail(format!(
                "assertion failed: {} == {}: {:?} vs {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::check::CaseError::fail(format!(
                "assertion failed: {} == {}: {:?} vs {:?}: {}",
                stringify!($a),
                stringify!($b),
                a,
                b,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Veto a case (it is skipped and regenerated, like `prop_assume!`).
#[macro_export]
macro_rules! check_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::check::CaseError::skip());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let count = std::cell::Cell::new(0usize);
        check_with("always_passes", 50, |g| {
            let _ = g.u32(0..10);
            count.set(count.get() + 1);
            Ok(())
        });
        assert_eq!(count.get(), 50);
    }

    #[test]
    fn deterministic_case_streams() {
        let mut first = Vec::new();
        check_with("stream_a", 10, |g| {
            first.push(g.u64(0..1_000_000));
            Ok(())
        });
        let mut second = Vec::new();
        check_with("stream_a", 10, |g| {
            second.push(g.u64(0..1_000_000));
            Ok(())
        });
        assert_eq!(first, second);
        let mut other = Vec::new();
        check_with("stream_b", 10, |g| {
            other.push(g.u64(0..1_000_000));
            Ok(())
        });
        assert_ne!(first, other, "different properties get different streams");
    }

    #[test]
    fn failure_reports_seed_and_name() {
        let result = std::panic::catch_unwind(|| {
            check_with("doomed", 20, |g| {
                let x = g.u32(0..100);
                check_assert!(x < 1000, "x = {x}"); // passes
                check_assert!(false, "always fails");
                Ok(())
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("doomed"), "{msg}");
        assert!(msg.contains("LEO_CHECK_SEED"), "{msg}");
        assert!(msg.contains("always fails"), "{msg}");
    }

    #[test]
    fn assume_skips_but_executes_requested_count() {
        let executed = std::cell::Cell::new(0usize);
        check_with("half_skipped", 40, |g| {
            let x = g.u32(0..100);
            check_assume!(x % 2 == 0);
            executed.set(executed.get() + 1);
            Ok(())
        });
        assert_eq!(executed.get(), 40);
    }

    #[test]
    fn runaway_skip_rate_fails() {
        let result = std::panic::catch_unwind(|| {
            check_with("all_skipped", 50, |_g| Err(CaseError::skip()));
        });
        assert!(result.is_err());
    }

    #[test]
    fn gen_vec_respects_length_range() {
        check_with("vec_lengths", 50, |g| {
            let v = g.vec(2..7, |g| g.f64(0.0..1.0));
            check_assert!(v.len() >= 2 && v.len() < 7, "len {}", v.len());
            Ok(())
        });
    }

    #[test]
    fn seed_parsing() {
        assert_eq!(parse_seed("0x10"), Some(16));
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(
            parse_seed("0xDEADBEEFDEADBEEF"),
            Some(0xDEAD_BEEF_DEAD_BEEF)
        );
        assert_eq!(parse_seed("nope"), None);
    }
}
