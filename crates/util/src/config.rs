//! Hand-rolled sectioned `key = value` config text (replaces `serde`
//! derive for the handful of config structs the workspace serializes).
//!
//! Format, by example:
//!
//! ```text
//! # comment
//! [network]
//! gt_link_gbps = 20
//! isl_gbps = 100
//!
//! [study]
//! constellation = starlink
//! snapshot_times_s = 0,21600,43200,64800
//! relay_grid_deg = none
//! ```
//!
//! * Sections are `[name]` headers; keys before any header live in the
//!   `""` (root) section.
//! * Values are everything after the first `=`, trimmed. Lists are
//!   comma-separated. Optional values use the literal `none`.
//! * `#` starts a comment only at the beginning of a line (values never
//!   contain `#` in practice, and this keeps parsing trivial).
//! * Duplicate keys within a section: last one wins (documented, tested).

use std::fmt::Display;

/// Errors from [`KvDoc::parse`] and the typed getters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// A non-empty, non-comment line had no `=` and was not a `[section]`.
    Malformed {
        /// 1-based line number.
        line: usize,
    },
    /// A `[section` header was not closed with `]`.
    UnclosedSection {
        /// 1-based line number.
        line: usize,
    },
    /// A required key was absent.
    Missing {
        /// Section name.
        section: String,
        /// Key name.
        key: String,
    },
    /// A value failed to parse as the requested type.
    BadValue {
        /// Section name.
        section: String,
        /// Key name.
        key: String,
        /// The offending raw value.
        value: String,
    },
}

impl Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::Malformed { line } => write!(f, "line {line}: expected `key = value`"),
            KvError::UnclosedSection { line } => write!(f, "line {line}: unclosed [section"),
            KvError::Missing { section, key } => {
                write!(f, "missing key `{key}` in section [{section}]")
            }
            KvError::BadValue {
                section,
                key,
                value,
            } => {
                write!(f, "bad value `{value}` for `{key}` in section [{section}]")
            }
        }
    }
}

impl std::error::Error for KvError {}

/// A parsed config document: ordered `(section, key, value)` triples.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KvDoc {
    entries: Vec<(String, String, String)>,
}

impl KvDoc {
    /// Parse config text.
    pub fn parse(text: &str) -> Result<KvDoc, KvError> {
        let mut entries = Vec::new();
        let mut section = String::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                match rest.strip_suffix(']') {
                    Some(name) => section = name.trim().to_string(),
                    None => return Err(KvError::UnclosedSection { line: i + 1 }),
                }
                continue;
            }
            let Some((k, v)) = line.split_once('=') else {
                return Err(KvError::Malformed { line: i + 1 });
            };
            entries.push((section.clone(), k.trim().to_string(), v.trim().to_string()));
        }
        Ok(KvDoc { entries })
    }

    /// Raw string lookup; last duplicate wins.
    pub fn get(&self, section: &str, key: &str) -> Option<&str> {
        self.entries
            .iter()
            .rev()
            .find(|(s, k, _)| s == section && k == key)
            .map(|(_, _, v)| v.as_str())
    }

    /// Required string value.
    pub fn require(&self, section: &str, key: &str) -> Result<&str, KvError> {
        self.get(section, key).ok_or_else(|| KvError::Missing {
            section: section.to_string(),
            key: key.to_string(),
        })
    }

    fn typed<T: std::str::FromStr>(&self, section: &str, key: &str) -> Result<T, KvError> {
        let v = self.require(section, key)?;
        v.parse().map_err(|_| KvError::BadValue {
            section: section.to_string(),
            key: key.to_string(),
            value: v.to_string(),
        })
    }

    /// Required `f64` value.
    pub fn get_f64(&self, section: &str, key: &str) -> Result<f64, KvError> {
        self.typed(section, key)
    }

    /// Required `u64` value.
    pub fn get_u64(&self, section: &str, key: &str) -> Result<u64, KvError> {
        self.typed(section, key)
    }

    /// Required `usize` value.
    pub fn get_usize(&self, section: &str, key: &str) -> Result<usize, KvError> {
        self.typed(section, key)
    }

    /// Required comma-separated `f64` list (empty string = empty list).
    pub fn get_f64_list(&self, section: &str, key: &str) -> Result<Vec<f64>, KvError> {
        let v = self.require(section, key)?;
        if v.is_empty() {
            return Ok(Vec::new());
        }
        v.split(',')
            .map(|s| {
                s.trim().parse().map_err(|_| KvError::BadValue {
                    section: section.to_string(),
                    key: key.to_string(),
                    value: v.to_string(),
                })
            })
            .collect()
    }

    /// Required optional-`f64`: the literal `none` maps to `None`.
    pub fn get_opt_f64(&self, section: &str, key: &str) -> Result<Option<f64>, KvError> {
        let v = self.require(section, key)?;
        if v.eq_ignore_ascii_case("none") {
            return Ok(None);
        }
        v.parse().map(Some).map_err(|_| KvError::BadValue {
            section: section.to_string(),
            key: key.to_string(),
            value: v.to_string(),
        })
    }
}

/// Builder for config text in the [`KvDoc`] format.
#[derive(Debug, Default)]
pub struct KvWriter {
    out: String,
}

impl KvWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a `[name]` section.
    pub fn section(&mut self, name: &str) -> &mut Self {
        if !self.out.is_empty() {
            self.out.push('\n');
        }
        self.out.push('[');
        self.out.push_str(name);
        self.out.push_str("]\n");
        self
    }

    /// Write `key = value`.
    pub fn field(&mut self, key: &str, value: impl Display) -> &mut Self {
        self.out.push_str(key);
        self.out.push_str(" = ");
        self.out.push_str(&value.to_string());
        self.out.push('\n');
        self
    }

    /// Write a comma-separated `f64` list.
    pub fn field_f64_list(&mut self, key: &str, values: &[f64]) -> &mut Self {
        let joined = values
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(",");
        self.field(key, joined)
    }

    /// Write an optional `f64` (`none` when absent).
    pub fn field_opt_f64(&mut self, key: &str, value: Option<f64>) -> &mut Self {
        match value {
            Some(v) => self.field(key, v),
            None => self.field(key, "none"),
        }
    }

    /// Finish and take the text.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let doc = KvDoc::parse("a = 1\n[s]\nb = two\nc=3.5\n").unwrap();
        assert_eq!(doc.get("", "a"), Some("1"));
        assert_eq!(doc.get("s", "b"), Some("two"));
        assert_eq!(doc.get_f64("s", "c").unwrap(), 3.5);
        assert_eq!(doc.get("s", "nope"), None);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let doc = KvDoc::parse("# header\n\n  \nx = 1\n# trailing\n").unwrap();
        assert_eq!(doc.get_u64("", "x").unwrap(), 1);
    }

    #[test]
    fn duplicate_last_wins() {
        let doc = KvDoc::parse("x = 1\nx = 2\n").unwrap();
        assert_eq!(doc.get("", "x"), Some("2"));
    }

    #[test]
    fn malformed_line_errors() {
        assert_eq!(
            KvDoc::parse("just words\n").unwrap_err(),
            KvError::Malformed { line: 1 }
        );
        assert_eq!(
            KvDoc::parse("a = 1\n[oops\n").unwrap_err(),
            KvError::UnclosedSection { line: 2 }
        );
    }

    #[test]
    fn typed_getters_and_errors() {
        let doc = KvDoc::parse("[s]\nn = 42\nf = 1.5\nlist = 1, 2,3\nopt = none\n").unwrap();
        assert_eq!(doc.get_usize("s", "n").unwrap(), 42);
        assert_eq!(doc.get_f64("s", "f").unwrap(), 1.5);
        assert_eq!(doc.get_f64_list("s", "list").unwrap(), vec![1.0, 2.0, 3.0]);
        assert_eq!(doc.get_opt_f64("s", "opt").unwrap(), None);
        assert!(matches!(
            doc.get_u64("s", "f").unwrap_err(),
            KvError::BadValue { .. }
        ));
        assert!(matches!(
            doc.get_f64("s", "missing").unwrap_err(),
            KvError::Missing { .. }
        ));
    }

    #[test]
    fn writer_parses_back() {
        let mut w = KvWriter::new();
        w.section("net")
            .field("cap", 20.5)
            .field("name", "starlink")
            .field_f64_list("times", &[0.0, 900.0])
            .field_opt_f64("grid", None);
        let text = w.finish();
        let doc = KvDoc::parse(&text).unwrap();
        assert_eq!(doc.get_f64("net", "cap").unwrap(), 20.5);
        assert_eq!(doc.get("net", "name"), Some("starlink"));
        assert_eq!(doc.get_f64_list("net", "times").unwrap(), vec![0.0, 900.0]);
        assert_eq!(doc.get_opt_f64("net", "grid").unwrap(), None);
    }

    #[test]
    fn values_may_contain_equals() {
        let doc = KvDoc::parse("k = a=b\n").unwrap();
        assert_eq!(doc.get("", "k"), Some("a=b"));
    }

    #[test]
    fn error_display() {
        let e = KvError::Missing {
            section: "s".into(),
            key: "k".into(),
        };
        assert!(e.to_string().contains("`k`"));
    }
}
