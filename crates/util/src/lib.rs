//! # leo-util — the hermetic foundation layer
//!
//! Everything the rest of the workspace previously pulled from crates.io
//! lives here as a small, documented, dependency-free implementation:
//!
//! * [`rng`] — seedable SplitMix64 + xoshiro256++ PRNG (replaces `rand`)
//! * [`buf`] — little-endian byte reader/writer (replaces `bytes`)
//! * [`config`] — `key = value` sectioned config text (replaces `serde`)
//! * [`check`] — seeded property-testing harness (replaces `proptest`)
//! * [`mod@bench`] — warmup + median/p95 timing harness (replaces `criterion`)
//! * [`telemetry`] — spans/counters/histograms + JSONL run manifests
//!   (replaces `tracing`/`metrics`-style observability stacks)
//! * [`sketch`] — mergeable log-bucket quantile sketch + exact
//!   fixed-point sums for bounded-memory streaming aggregation
//!   (replaces `hdrhistogram`-style crates)
//!
//! The workspace policy (see DESIGN.md "Hermetic build") is that
//! `[workspace.dependencies]` names only `path` crates, so
//! `cargo build --offline` works from a clean checkout with no registry.
//! `scripts/ci.sh` enforces this.
//!
//! This crate depends on nothing but `std`, and every other crate in the
//! workspace may depend on it (it is the bottom of the layer diagram).

pub mod bench;
pub mod buf;
pub mod check;
pub mod config;
pub mod rng;
pub mod sketch;
pub mod telemetry;

pub use rng::Rng64;
