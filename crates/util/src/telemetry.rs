//! Zero-dependency tracing / metrics / run-manifest layer (std-only,
//! per the hermetic-build policy — see DESIGN.md).
//!
//! The pipeline's long multi-phase runs (96 snapshots × thousands of
//! Dijkstra runs, iterative water-filling, stochastic weather sweeps)
//! need provenance and per-phase timing without giving up the "stdout is
//! data" discipline of the figure harnesses. This module provides:
//!
//! * **structured spans** — [`span!`](crate::span) RAII guards recording wall-time
//!   (ns), nesting depth, and thread id, aggregated into per-phase
//!   totals for the final manifest;
//! * **counters & histograms** — lock-free `static` [`Counter`]s and
//!   fixed-bucket log₂-scale [`Histogram`]s (Dijkstra calls, max-min
//!   rounds, packetsim events, codec bytes, …);
//! * **a JSON-lines sink** — [`init`] opens `RUN_<label>.jsonl` (in
//!   `LEO_LOG_DIR`, default cwd) and [`finish_run`] appends counter and
//!   histogram records plus a final **manifest** record (config hash,
//!   RNG seed, thread count, per-phase wall-time totals);
//! * **streaming metric series** — [`MetricSeries`] wraps a mergeable
//!   [`QuantileSketch`](crate::sketch::QuantileSketch) and emits one
//!   `series` event per snapshot, so sweep drivers hold O(1) state
//!   instead of every per-pair sample (see DESIGN.md "Streaming
//!   telemetry");
//! * **live heartbeats** — [`Heartbeat`] periodically emits progress
//!   (items/s, ETA), current/peak RSS from `/proc/self/statm`, and a
//!   counter snapshot, cadence-gated by `LEO_LOG_HEARTBEAT`;
//! * **an env-controlled level** — `LEO_LOG=off|info|debug` (default
//!   `off`). When disabled, every hot-path operation costs exactly one
//!   relaxed atomic load and a predictable branch (pinned by the
//!   `telemetry` microbench, `BENCH_telemetry.json`).
//!
//! ## Event schema (one JSON object per line)
//!
//! | `type` | required fields |
//! |---|---|
//! | `run_start` | `label`, `level`, `t_ns` |
//! | `log` | `t_ns`, `msg` |
//! | `span` | `t_ns`, `name`, `dur_ns`, `depth`, `thread` (+optional `kv`) |
//! | `series` | `t_ns`, `name`, `index`, `t_s`, `count`, `low`, `sum`, `min`, `max`, `sub`, `buckets` |
//! | `heartbeat` | `t_ns`, `label`, `done`, `total`, `rate_per_s`, `eta_s`, `rss_kb`, `peak_rss_kb`, `counters` |
//! | `counter` | `name`, `value` |
//! | `hist` | `name`, `count`, `sum`, `min`, `max`, `buckets` |
//! | `manifest` | `label`, `config_hash`, `seed`, `threads`, `wall_ns`, `phases`, `counters` |
//!
//! The manifest is always the **last** line of a run file.
//! [`validate_event_line`] checks a single line against this schema (the
//! `validate_run` bin in `leo-bench` checks whole files; `scripts/ci.sh`
//! runs it on a fresh Tiny-scale run).
//!
//! Library code may record spans/counters without any setup: if the
//! level is enabled but no sink was [`init`]ialized, events go to
//! stderr, so unit tests and ad-hoc runs still see them.

use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Level

/// Telemetry verbosity, set via `LEO_LOG=off|info|debug`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Nothing is recorded; every probe is one relaxed load.
    Off = 0,
    /// Spans, counters, histograms, logs, and the run manifest.
    Info = 1,
    /// Everything in `Info` plus high-volume debug spans/events.
    Debug = 2,
}

impl Level {
    /// Parse an `LEO_LOG` value; unknown strings map to `Off`.
    pub fn parse(s: &str) -> Level {
        match s.trim().to_ascii_lowercase().as_str() {
            "info" | "1" | "on" | "true" => Level::Info,
            "debug" | "2" | "trace" => Level::Debug,
            _ => Level::Off,
        }
    }

    /// Stable lower-case name (`off`/`info`/`debug`).
    pub fn name(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// 0xFF = "not yet read from the environment".
const LEVEL_UNSET: u8 = 0xFF;
static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

#[cold]
fn level_slow() -> u8 {
    let l = std::env::var("LEO_LOG").map_or(Level::Off, |v| Level::parse(&v)) as u8;
    LEVEL.store(l, Ordering::Relaxed);
    l
}

/// The current level (reads `LEO_LOG` once, lazily).
#[inline]
pub fn level() -> Level {
    let raw = LEVEL.load(Ordering::Relaxed);
    let raw = if raw == LEVEL_UNSET {
        level_slow()
    } else {
        raw
    };
    match raw {
        1 => Level::Info,
        2 => Level::Debug,
        _ => Level::Off,
    }
}

/// Is `l` currently enabled? The disabled path is one relaxed load plus
/// a compare (the claim `BENCH_telemetry.json` pins).
#[inline]
pub fn enabled(l: Level) -> bool {
    let raw = LEVEL.load(Ordering::Relaxed);
    if raw == LEVEL_UNSET {
        return level_slow() >= l as u8;
    }
    raw >= l as u8
}

/// Override the level programmatically (tests, benches). Takes
/// precedence over the lazily-read `LEO_LOG` value.
pub fn set_level(l: Level) {
    LEVEL.store(l as u8, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Clock, thread ids, sink

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Monotonic nanoseconds since the first telemetry probe of the process.
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);
thread_local! {
    static THREAD_ID: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    static SPAN_DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// Small dense id of the calling thread (assigned on first use).
pub fn thread_id() -> usize {
    THREAD_ID.with(|t| *t)
}

struct Sink {
    out: std::io::BufWriter<std::fs::File>,
    path: PathBuf,
}

static SINK: Mutex<Option<Sink>> = Mutex::new(None);

/// Poison-tolerant locking for the telemetry registries: when an
/// experiment thread panics while holding (or after having held) one of
/// these locks, the guarded state is still a coherent set of counters —
/// telemetry must keep accepting events and flush what it has rather
/// than compound the failure with a second panic.
trait LockRecover<T> {
    fn lock_recover(&self) -> std::sync::MutexGuard<'_, T>;
}

impl<T> LockRecover<T> for Mutex<T> {
    fn lock_recover(&self) -> std::sync::MutexGuard<'_, T> {
        match self.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Write one already-formatted JSON line to the sink (or stderr if no
/// sink is installed). Callers must pass a complete JSON object.
fn emit(line: &str) {
    let mut guard = SINK.lock_recover();
    match guard.as_mut() {
        Some(sink) => {
            let _ = writeln!(sink.out, "{line}");
        }
        None => eprintln!("{line}"),
    }
}

/// Open the JSONL sink `RUN_<label>.jsonl` for this run.
///
/// Directory: `LEO_LOG_DIR` env var, else the current directory. Returns
/// `None` (and creates nothing) when the level is `Off`. A `run_start`
/// record is written immediately. Re-initializing replaces the sink.
pub fn init(label: &str) -> Option<PathBuf> {
    if !enabled(Level::Info) {
        return None;
    }
    let dir = std::env::var_os("LEO_LOG_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    init_at(&dir, label)
}

/// [`init`] with an explicit directory (tests; `LEO_LOG_DIR` ignored).
///
/// Re-running the same label in one directory must not clobber the
/// earlier run file, so the name is collision-suffixed deterministically:
/// `RUN_<label>.jsonl`, then `RUN_<label>-01.jsonl`, `-02`, … (a counter,
/// not wall-clock, so reruns sort and diff predictably). Files are opened
/// with `create_new`, so concurrent runs race safely on the counter.
pub fn init_at(dir: &std::path::Path, label: &str) -> Option<PathBuf> {
    if !enabled(Level::Info) {
        return None;
    }
    std::fs::create_dir_all(dir).ok()?;
    let (file, path) = (0u32..100)
        .map(|n| {
            if n == 0 {
                dir.join(format!("RUN_{label}.jsonl"))
            } else {
                dir.join(format!("RUN_{label}-{n:02}.jsonl"))
            }
        })
        .find_map(|p| {
            match std::fs::File::options()
                .write(true)
                .create_new(true)
                .open(&p)
            {
                Ok(f) => Some(Some((f, p))),
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => None,
                // Directory unwritable etc.: give up (matches the old
                // `.ok()?` behaviour).
                Err(_) => Some(None),
            }
        })
        // 100 collisions: recycle the base name rather than refusing to
        // log at all.
        .unwrap_or_else(|| {
            let p = dir.join(format!("RUN_{label}.jsonl"));
            std::fs::File::create(&p).ok().map(|f| (f, p))
        })?;
    let mut guard = SINK.lock_recover();
    *guard = Some(Sink {
        out: std::io::BufWriter::new(file),
        path: path.clone(),
    });
    drop(guard);
    emit(&format!(
        "{{\"type\":\"run_start\",\"t_ns\":{},\"label\":{},\"level\":\"{}\"}}",
        now_ns(),
        json_string(label),
        level().name()
    ));
    Some(path)
}

/// Path of the currently-open sink, if any.
pub fn sink_path() -> Option<PathBuf> {
    SINK.lock_recover().as_ref().map(|s| s.path.clone())
}

// ---------------------------------------------------------------------------
// JSON helpers (writing)

/// JSON-escape and quote a string.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One `"key":"value"` fragment (both sides escaped) for [`span!`](crate::span) kv
/// lists. Values are always JSON strings, keeping the schema uniform.
pub fn json_kv(key: &str, value: &str) -> String {
    format!("{}:{}", json_string(key), json_string(value))
}

// ---------------------------------------------------------------------------
// Spans

/// Aggregated per-phase totals: `name → (count, total_ns, max_ns)`.
static PHASES: Mutex<Vec<(&'static str, u64, u64, u64)>> = Mutex::new(Vec::new());

/// RAII span guard; create via [`span!`](crate::span) (or [`Span::enter`]).
///
/// On drop (when the telemetry level is enabled) it emits a `span`
/// event carrying wall-time ns, nesting depth, and thread id, and folds
/// the duration into the per-phase totals reported by the manifest.
#[must_use = "a span measures the scope it is bound to; binding to _ drops it immediately"]
pub struct Span {
    /// `None` when telemetry was disabled at entry (zero-cost drop).
    armed: Option<SpanInner>,
}

struct SpanInner {
    name: &'static str,
    kv: String,
    start: Instant,
    start_ns: u64,
    depth: u32,
}

impl Span {
    /// Enter a span. `kv` is only evaluated when the level is enabled;
    /// it must return a comma-joined list of [`json_kv`] fragments (or
    /// an empty string). `min_level` lets hot call sites demand `Debug`.
    pub fn enter(name: &'static str, min_level: Level, kv: impl FnOnce() -> String) -> Span {
        if !enabled(min_level) {
            return Span { armed: None };
        }
        let depth = SPAN_DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        Span {
            armed: Some(SpanInner {
                name,
                kv: kv(),
                start: Instant::now(),
                start_ns: now_ns(),
                depth,
            }),
        }
    }

    /// Name of the span (`""` for a disabled span).
    pub fn name(&self) -> &'static str {
        self.armed.as_ref().map_or("", |s| s.name)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.armed.take() else {
            return;
        };
        let dur_ns = inner.start.elapsed().as_nanos() as u64;
        SPAN_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        {
            let mut phases = PHASES.lock_recover();
            match phases.iter_mut().find(|(n, ..)| *n == inner.name) {
                Some(entry) => {
                    entry.1 += 1;
                    entry.2 += dur_ns;
                    entry.3 = entry.3.max(dur_ns);
                }
                None => phases.push((inner.name, 1, dur_ns, dur_ns)),
            }
        }
        let kv = if inner.kv.is_empty() {
            String::new()
        } else {
            format!(",\"kv\":{{{}}}", inner.kv)
        };
        emit(&format!(
            "{{\"type\":\"span\",\"t_ns\":{},\"name\":{},\"dur_ns\":{},\"depth\":{},\"thread\":{}{}}}",
            inner.start_ns,
            json_string(inner.name),
            dur_ns,
            inner.depth,
            thread_id(),
            kv
        ));
    }
}

/// Enter an `Info`-level span: `let _s = span!("latency_study");` or
/// `let _s = span!("latency_study", mode = "bp", snapshots = n);`.
/// Key/value arguments are formatted with `Display` and only evaluated
/// when telemetry is enabled.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::telemetry::Span::enter($name, $crate::telemetry::Level::Info, String::new)
    };
    ($name:expr, $($k:ident = $v:expr),+ $(,)?) => {
        $crate::telemetry::Span::enter($name, $crate::telemetry::Level::Info, || {
            let mut kv = String::new();
            $(
                if !kv.is_empty() { kv.push(','); }
                kv.push_str(&$crate::telemetry::json_kv(stringify!($k), &format!("{}", $v)));
            )+
            kv
        })
    };
}

/// [`span!`](crate::span) at `Debug` level, for per-snapshot / per-item scopes that
/// would flood an `info` run.
#[macro_export]
macro_rules! debug_span {
    ($name:expr) => {
        $crate::telemetry::Span::enter($name, $crate::telemetry::Level::Debug, String::new)
    };
    ($name:expr, $($k:ident = $v:expr),+ $(,)?) => {
        $crate::telemetry::Span::enter($name, $crate::telemetry::Level::Debug, || {
            let mut kv = String::new();
            $(
                if !kv.is_empty() { kv.push(','); }
                kv.push_str(&$crate::telemetry::json_kv(stringify!($k), &format!("{}", $v)));
            )+
            kv
        })
    };
}

// ---------------------------------------------------------------------------
// Diagnostics channel

/// Human-readable diagnostics: always printed to **stderr** (stdout is
/// reserved for figure data), and additionally recorded as a `log`
/// JSONL event when the level is enabled. Use via [`diag!`](crate::diag).
pub fn diag_str(msg: &str) {
    eprintln!("{msg}");
    if enabled(Level::Info) {
        emit(&format!(
            "{{\"type\":\"log\",\"t_ns\":{},\"msg\":{}}}",
            now_ns(),
            json_string(msg)
        ));
    }
}

/// `eprintln!`-style diagnostics through the telemetry logger: stderr
/// plus a `log` event when enabled. Keeps stdout machine-parseable.
#[macro_export]
macro_rules! diag {
    ($($arg:tt)*) => {
        $crate::telemetry::diag_str(&format!($($arg)*))
    };
}

/// A `log` JSONL event at `Debug` level only — no stderr echo. For
/// high-volume markers (per-fan-out, per-snapshot) that would drown an
/// interactive run.
pub fn debug_log(msg: impl FnOnce() -> String) {
    if enabled(Level::Debug) {
        emit(&format!(
            "{{\"type\":\"log\",\"t_ns\":{},\"msg\":{}}}",
            now_ns(),
            json_string(&msg())
        ));
    }
}

// ---------------------------------------------------------------------------
// Counters

static COUNTERS: Mutex<Vec<&'static Counter>> = Mutex::new(Vec::new());

/// A named lock-free event counter, declared as a `static`:
///
/// ```
/// use leo_util::telemetry::Counter;
/// static DIJKSTRA_CALLS: Counter = Counter::new("dijkstra_calls");
/// DIJKSTRA_CALLS.add(1);
/// ```
///
/// Disabled cost: one relaxed load. Enabled cost: one relaxed
/// `fetch_add` (plus a one-time registration on first use, so the run
/// manifest can enumerate every counter the run touched).
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// A new counter; use in a `static`.
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Add `n` (no-op when telemetry is off).
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !enabled(Level::Info) {
            return;
        }
        self.value.fetch_add(n, Ordering::Relaxed);
        if !self.registered.load(Ordering::Relaxed) {
            self.register();
        }
    }

    #[cold]
    fn register(&'static self) {
        let mut reg = COUNTERS.lock_recover();
        if !self.registered.swap(true, Ordering::Relaxed) {
            reg.push(self);
        }
    }

    /// Counter name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Histograms

/// Bucket count: value `v` lands in bucket `⌈log₂(v+1)⌉` (bucket 0 holds
/// zeros, bucket `i ≥ 1` holds `[2^(i-1), 2^i)`), up to `u64::MAX`.
pub const HIST_BUCKETS: usize = 65;

static HISTOGRAMS: Mutex<Vec<&'static Histogram>> = Mutex::new(Vec::new());

/// A named lock-free fixed-bucket log₂-scale histogram, declared as a
/// `static` like [`Counter`]. Records `u64` samples (ns, bytes, queue
/// depths, …); disabled cost is one relaxed load.
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    registered: AtomicBool,
}

/// Lower bound of bucket `i` (inclusive).
pub fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Bucket index for a value.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

impl Histogram {
    /// A new histogram; use in a `static`.
    pub const fn new(name: &'static str) -> Histogram {
        // An inline-const repeat element: each array slot gets its own
        // fresh AtomicU64 (a named const here would trip
        // `declare_interior_mutable_const`).
        Histogram {
            name,
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Record one sample (no-op when telemetry is off).
    #[inline]
    pub fn record(&'static self, v: u64) {
        if !enabled(Level::Info) {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        if !self.registered.load(Ordering::Relaxed) {
            self.register();
        }
    }

    #[cold]
    fn register(&'static self) {
        let mut reg = HISTOGRAMS.lock_recover();
        if !self.registered.swap(true, Ordering::Relaxed) {
            reg.push(self);
        }
    }

    /// Histogram name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Smallest sample (`u64::MAX` when empty).
    pub fn min(&self) -> u64 {
        self.min.load(Ordering::Relaxed)
    }

    /// Approximate quantile: the lower bound of the bucket where the
    /// cumulative count crosses `q` (0.0–1.0). 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= target {
                return bucket_lo(i);
            }
        }
        self.max()
    }

    /// `[bucket_lo, count]` pairs for non-empty buckets.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then(|| (bucket_lo(i), c))
            })
            .collect()
    }

    fn json_event(&self) -> String {
        let buckets: Vec<String> = self
            .nonzero_buckets()
            .iter()
            .map(|(lo, c)| format!("[{lo},{c}]"))
            .collect();
        format!(
            "{{\"type\":\"hist\",\"name\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{}]}}",
            json_string(self.name),
            self.count(),
            self.sum(),
            if self.count() == 0 { 0 } else { self.min() },
            self.max(),
            buckets.join(",")
        )
    }
}

// ---------------------------------------------------------------------------
// Streaming metric series

/// A named streaming metric: fixed-size sketch state that replaces
/// "collect every per-pair sample into a `Vec`" in the experiment
/// sweeps.
///
/// Usage inside a sweep fold: [`MetricSeries::record`] each sample while
/// a snapshot is being processed, then [`MetricSeries::snapshot_done`]
/// once per snapshot — this emits one `series` JSONL event (the
/// snapshot's count/sum/min/max plus the inline
/// [`QuantileSketch`](crate::sketch::QuantileSketch) buckets) and folds
/// the snapshot into a run-level sketch. Memory is O(1) in both the
/// sample count and the snapshot count.
///
/// Worker threads each own a `MetricSeries` for their chunk of the
/// sweep; [`MetricSeries::merge`] folds chunks together exactly (sketch
/// merge is associative and commutative), so the merged run sketch is
/// bit-identical for every thread count.
///
/// When the level is `Off`, [`MetricSeries::record`] is one relaxed
/// atomic load — the sketch is never touched.
#[derive(Debug, Clone)]
pub struct MetricSeries {
    name: &'static str,
    snap: crate::sketch::QuantileSketch,
    run: crate::sketch::QuantileSketch,
}

impl MetricSeries {
    /// A new, empty series.
    pub fn new(name: &'static str) -> MetricSeries {
        MetricSeries {
            name,
            snap: crate::sketch::QuantileSketch::new(),
            run: crate::sketch::QuantileSketch::new(),
        }
    }

    /// Series name (the `name` field of emitted `series` events).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Record one sample into the current snapshot (no-op when telemetry
    /// is off; non-finite samples are dropped by the sketch).
    #[inline]
    pub fn record(&mut self, v: f64) {
        if !enabled(Level::Info) {
            return;
        }
        self.snap.record(v);
    }

    /// Close the current snapshot: emit one `series` event tagged with
    /// the sweep `index` and simulation time `t_s`, fold the snapshot
    /// sketch into the run sketch, and reset the snapshot sketch.
    /// No-op when telemetry is off or no samples were recorded.
    pub fn snapshot_done(&mut self, index: usize, t_s: f64) {
        if !enabled(Level::Info) || self.snap.is_empty() {
            return;
        }
        emit(&format!(
            "{{\"type\":\"series\",\"t_ns\":{},\"name\":{},\"index\":{},\"t_s\":{},{}}}",
            now_ns(),
            json_string(self.name),
            index,
            t_s,
            self.snap.to_json_fragment()
        ));
        self.run.merge(&self.snap);
        self.snap = crate::sketch::QuantileSketch::new();
    }

    /// Fold another chunk's series in (exact; both run sketches merge,
    /// and any un-closed snapshot samples merge too).
    pub fn merge(&mut self, other: &MetricSeries) {
        self.run.merge(&other.run);
        self.snap.merge(&other.snap);
    }

    /// The run-level sketch (all snapshots closed so far).
    pub fn run_sketch(&self) -> &crate::sketch::QuantileSketch {
        &self.run
    }
}

// ---------------------------------------------------------------------------
// Heartbeats & RSS

/// Peak resident set size observed by any [`rss_kb`] call, in KiB.
static PEAK_RSS_KB: AtomicU64 = AtomicU64::new(0);

/// Current resident set size in KiB from `/proc/self/statm` (Linux);
/// `None` where procfs is unavailable. Every successful read also
/// updates [`peak_rss_kb`].
pub fn rss_kb() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/statm").ok()?;
    // statm fields are in pages; field 1 (0-based) is resident.
    let pages: u64 = text.split_whitespace().nth(1)?.parse().ok()?;
    let kb = pages * (page_size_bytes() / 1024);
    PEAK_RSS_KB.fetch_max(kb, Ordering::Relaxed);
    Some(kb)
}

/// Largest RSS seen by any [`rss_kb`] call so far (KiB; 0 if never read).
pub fn peak_rss_kb() -> u64 {
    PEAK_RSS_KB.load(Ordering::Relaxed)
}

fn page_size_bytes() -> u64 {
    // The kernels this workspace targets use 4 KiB pages; procfs offers
    // no portable page-size file and we avoid libc, so this is fixed.
    4096
}

/// Default heartbeat cadence when `LEO_LOG_HEARTBEAT` is unset, seconds.
const HEARTBEAT_DEFAULT_S: f64 = 10.0;

/// A progress heartbeat for long sweeps: emits periodic `heartbeat`
/// JSONL events carrying throughput (items/s), ETA, current and peak
/// RSS, and a snapshot of every registered [`Counter`] (so sweep-cache
/// counters like `sweep_edges_reused` are visible mid-run).
///
/// Cadence comes from the `LEO_LOG_HEARTBEAT` env var: seconds between
/// events (fractions allowed), `0` = every tick, `off` = never. Unset
/// defaults to 10 s. Heartbeats also require `LEO_LOG` at `info` or
/// higher — with telemetry off, [`Heartbeat::tick`] is one relaxed load.
///
/// The handle is cheaply cloneable (`Arc` inside) so parallel sweep
/// chunks share one progress count.
#[derive(Clone)]
pub struct Heartbeat {
    inner: std::sync::Arc<HeartbeatInner>,
}

struct HeartbeatInner {
    label: String,
    total: u64,
    done: AtomicU64,
    start_ns: u64,
    last_emit_ns: AtomicU64,
    /// Nanoseconds between events; `None` = disabled.
    cadence_ns: Option<u64>,
}

impl Heartbeat {
    /// A heartbeat for a sweep of `total` items (0 = unknown; ETA is
    /// then reported as 0).
    pub fn new(label: &str, total: u64) -> Heartbeat {
        let cadence_ns = if enabled(Level::Info) {
            match std::env::var("LEO_LOG_HEARTBEAT") {
                Err(_) => Some((HEARTBEAT_DEFAULT_S * 1e9) as u64),
                Ok(v) if v.trim().eq_ignore_ascii_case("off") => None,
                Ok(v) => v
                    .trim()
                    .parse::<f64>()
                    .ok()
                    .filter(|s| s.is_finite() && *s >= 0.0)
                    .map(|s| (s * 1e9) as u64),
            }
        } else {
            None
        };
        let now = now_ns();
        Heartbeat {
            inner: std::sync::Arc::new(HeartbeatInner {
                label: label.to_string(),
                total,
                done: AtomicU64::new(0),
                start_ns: now,
                last_emit_ns: AtomicU64::new(now),
                cadence_ns,
            }),
        }
    }

    /// Report `n` items finished; emits a `heartbeat` event when the
    /// cadence has elapsed (first tick past each cadence boundary wins
    /// via compare-exchange, so concurrent chunks emit exactly once).
    #[inline]
    pub fn tick(&self, n: u64) {
        if !enabled(Level::Info) {
            return;
        }
        let done = self.inner.done.fetch_add(n, Ordering::Relaxed) + n;
        let Some(cadence) = self.inner.cadence_ns else {
            return;
        };
        let now = now_ns();
        let last = self.inner.last_emit_ns.load(Ordering::Relaxed);
        if now.saturating_sub(last) >= cadence
            && self
                .inner
                .last_emit_ns
                .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            self.emit_event(done, now);
        }
    }

    /// Items reported done so far.
    pub fn done(&self) -> u64 {
        self.inner.done.load(Ordering::Relaxed)
    }

    #[cold]
    fn emit_event(&self, done: u64, now: u64) {
        let elapsed_s = now.saturating_sub(self.inner.start_ns) as f64 / 1e9;
        let rate = if elapsed_s > 0.0 {
            done as f64 / elapsed_s
        } else {
            0.0
        };
        let eta_s = if rate > 0.0 && self.inner.total > done {
            (self.inner.total - done) as f64 / rate
        } else {
            0.0
        };
        let rss = rss_kb().unwrap_or(0);
        let counters: Vec<String> = COUNTERS
            .lock_recover()
            .iter()
            .map(|c| format!("{}:{}", json_string(c.name()), c.get()))
            .collect();
        emit(&format!(
            "{{\"type\":\"heartbeat\",\"t_ns\":{now},\"label\":{},\"done\":{done},\"total\":{},\
             \"rate_per_s\":{rate},\"eta_s\":{eta_s},\"rss_kb\":{rss},\"peak_rss_kb\":{},\
             \"counters\":{{{}}}}}",
            json_string(&self.inner.label),
            self.inner.total,
            peak_rss_kb(),
            counters.join(",")
        ));
    }
}

// ---------------------------------------------------------------------------
// Run manifest

/// Provenance of one run, written as the final JSONL record by
/// [`finish_run`].
#[derive(Debug, Clone)]
pub struct RunManifest {
    /// Run label (normally the bin name; matches `RUN_<label>.jsonl`).
    pub label: String,
    /// FNV-1a 64 hash of the config text (see [`fnv1a_64`] and
    /// `StudyConfig::to_kv_string`), formatted `0x…` in the record.
    pub config_hash: u64,
    /// Master RNG seed of the run.
    pub seed: u64,
    /// Worker thread count (0 = auto was requested; record the resolved
    /// number).
    pub threads: usize,
    /// Extra free-form provenance fields (`key`, `value`).
    pub extra: Vec<(String, String)>,
}

impl RunManifest {
    /// A manifest with the mandatory fields.
    pub fn new(label: &str, config_hash: u64, seed: u64, threads: usize) -> RunManifest {
        RunManifest {
            label: label.to_string(),
            config_hash,
            seed,
            threads,
            extra: Vec::new(),
        }
    }

    /// Attach an extra provenance field.
    pub fn with(mut self, key: &str, value: impl std::fmt::Display) -> RunManifest {
        self.extra.push((key.to_string(), value.to_string()));
        self
    }
}

/// FNV-1a 64-bit hash — the workspace's stable config fingerprint.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Emit every registered counter and histogram, then the final
/// `manifest` record, flush, and close the sink. No-op when disabled.
///
/// Returns the path of the closed run file, if a sink was open.
pub fn finish_run(manifest: &RunManifest) -> Option<PathBuf> {
    if !enabled(Level::Info) {
        return None;
    }
    for c in COUNTERS.lock_recover().iter() {
        emit(&format!(
            "{{\"type\":\"counter\",\"name\":{},\"value\":{}}}",
            json_string(c.name()),
            c.get()
        ));
    }
    for h in HISTOGRAMS.lock_recover().iter() {
        emit(&h.json_event());
    }

    let phases = PHASES.lock_recover();
    let phases_json: Vec<String> = phases
        .iter()
        .map(|(name, count, total_ns, max_ns)| {
            format!(
                "{}:{{\"count\":{count},\"total_ns\":{total_ns},\"max_ns\":{max_ns}}}",
                json_string(name)
            )
        })
        .collect();
    drop(phases);
    let counters_json: Vec<String> = COUNTERS
        .lock_recover()
        .iter()
        .map(|c| format!("{}:{}", json_string(c.name()), c.get()))
        .collect();
    let hists_json: Vec<String> = HISTOGRAMS
        .lock_recover()
        .iter()
        .map(|h| {
            format!(
                "{}:{{\"count\":{},\"max\":{},\"p95\":{}}}",
                json_string(h.name()),
                h.count(),
                h.max(),
                h.quantile(0.95)
            )
        })
        .collect();
    let extra_json: String = manifest
        .extra
        .iter()
        .map(|(k, v)| format!(",{}", json_kv(k, v)))
        .collect();
    emit(&format!(
        "{{\"type\":\"manifest\",\"label\":{},\"config_hash\":\"{:#018x}\",\"seed\":{},\
         \"threads\":{},\"wall_ns\":{},\"level\":\"{}\",\"phases\":{{{}}},\"counters\":{{{}}},\
         \"hists\":{{{}}}{}}}",
        json_string(&manifest.label),
        manifest.config_hash,
        manifest.seed,
        manifest.threads,
        now_ns(),
        level().name(),
        phases_json.join(","),
        counters_json.join(","),
        hists_json.join(","),
        extra_json,
    ));

    let mut guard = SINK.lock_recover();
    if let Some(mut sink) = guard.take() {
        let _ = sink.out.flush();
        Some(sink.path)
    } else {
        None
    }
}

/// Reset per-run aggregation state (phases; counters and histograms are
/// zeroed in place). For tests and multi-run processes.
pub fn reset_for_tests() {
    PHASES.lock_recover().clear();
    for c in COUNTERS.lock_recover().iter() {
        c.value.store(0, Ordering::Relaxed);
    }
    for h in HISTOGRAMS.lock_recover().iter() {
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
        h.count.store(0, Ordering::Relaxed);
        h.sum.store(0, Ordering::Relaxed);
        h.min.store(u64::MAX, Ordering::Relaxed);
        h.max.store(0, Ordering::Relaxed);
    }
    *SINK.lock_recover() = None;
}

// ---------------------------------------------------------------------------
// Schema validation (reading side)

/// Minimal JSON value, produced by the in-tree validator parser.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as f64; integers round-trip to 2^53).
    Num(f64),
    /// String (unescaped).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (no trailing garbage allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Number, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    s.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{s}` at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // SAFETY: `b` is the byte view of a `&str`, so it is valid
                // UTF-8, and `utf8_len` derives the scalar's exact byte
                // length from its lead byte — the slice is one whole scalar
                // on a char boundary (continuation bytes never equal '"' or
                // '\\', so the escape scanner cannot split a scalar).
                out.push_str(unsafe {
                    std::str::from_utf8_unchecked(&b[*pos..*pos + utf8_len(b[*pos])])
                });
                *pos += utf8_len(b[*pos]);
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected , or ] at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected : at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected , or }} at byte {}", *pos)),
        }
    }
}

/// Every event type a `RUN_*.jsonl` file may contain.
pub const EVENT_TYPES: &[&str] = &[
    "run_start",
    "log",
    "span",
    "series",
    "heartbeat",
    "counter",
    "hist",
    "manifest",
];

/// Validate one JSONL event line against the documented schema.
///
/// Returns the event type on success. Fails on malformed JSON, unknown
/// event types, or missing/mistyped required fields.
pub fn validate_event_line(line: &str) -> Result<&'static str, String> {
    let v = Json::parse(line)?;
    let ty = v
        .get("type")
        .and_then(Json::as_str)
        .ok_or("missing string field `type`")?;
    let require_num = |keys: &[&str]| -> Result<(), String> {
        for k in keys {
            v.get(k)
                .and_then(Json::as_num)
                .ok_or(format!("{ty}: missing number field `{k}`"))?;
        }
        Ok(())
    };
    let require_str = |keys: &[&str]| -> Result<(), String> {
        for k in keys {
            v.get(k)
                .and_then(Json::as_str)
                .ok_or(format!("{ty}: missing string field `{k}`"))?;
        }
        Ok(())
    };
    let require_obj = |keys: &[&str]| -> Result<(), String> {
        for k in keys {
            match v.get(k) {
                Some(Json::Obj(_)) => {}
                _ => return Err(format!("{ty}: missing object field `{k}`")),
            }
        }
        Ok(())
    };
    match ty {
        "run_start" => {
            require_str(&["label", "level"])?;
            require_num(&["t_ns"])?;
            Ok("run_start")
        }
        "log" => {
            require_str(&["msg"])?;
            require_num(&["t_ns"])?;
            Ok("log")
        }
        "span" => {
            require_str(&["name"])?;
            require_num(&["t_ns", "dur_ns", "depth", "thread"])?;
            Ok("span")
        }
        "series" => {
            require_str(&["name"])?;
            require_num(&[
                "t_ns", "index", "t_s", "count", "low", "sum", "min", "max", "sub",
            ])?;
            match v.get("buckets") {
                Some(Json::Arr(_)) => Ok("series"),
                _ => Err("series: missing array field `buckets`".into()),
            }
        }
        "heartbeat" => {
            require_str(&["label"])?;
            require_num(&[
                "t_ns",
                "done",
                "total",
                "rate_per_s",
                "eta_s",
                "rss_kb",
                "peak_rss_kb",
            ])?;
            require_obj(&["counters"])?;
            Ok("heartbeat")
        }
        "counter" => {
            require_str(&["name"])?;
            require_num(&["value"])?;
            Ok("counter")
        }
        "hist" => {
            require_str(&["name"])?;
            require_num(&["count", "sum", "min", "max"])?;
            match v.get("buckets") {
                Some(Json::Arr(_)) => Ok("hist"),
                _ => Err("hist: missing array field `buckets`".into()),
            }
        }
        "manifest" => {
            require_str(&["label", "config_hash", "level"])?;
            require_num(&["seed", "threads", "wall_ns"])?;
            require_obj(&["phases", "counters", "hists"])?;
            Ok("manifest")
        }
        other => Err(format!("unknown event type `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global-state tests must not interleave.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse("info"), Level::Info);
        assert_eq!(Level::parse("DEBUG"), Level::Debug);
        assert_eq!(Level::parse("off"), Level::Off);
        assert_eq!(Level::parse("garbage"), Level::Off);
        assert_eq!(Level::parse(" 1 "), Level::Info);
        assert!(Level::Debug > Level::Info && Level::Info > Level::Off);
    }

    #[test]
    fn bucket_boundaries() {
        // Bucket 0: zeros. Bucket i (i ≥ 1): [2^(i-1), 2^i).
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 1..HIST_BUCKETS {
            // Lower bound of a bucket maps back into that bucket; the
            // value just below maps into the previous one.
            assert_eq!(bucket_index(bucket_lo(i)), i, "lo of bucket {i}");
            assert_eq!(bucket_index(bucket_lo(i) - 1), i - 1, "below bucket {i}");
        }
    }

    #[test]
    fn histogram_records_and_quantiles() {
        let _g = lock();
        set_level(Level::Info);
        static H: Histogram = Histogram::new("test_hist_records");
        H.record(0);
        H.record(1);
        H.record(100);
        H.record(1000);
        assert_eq!(H.count(), 4);
        assert_eq!(H.sum(), 1101);
        assert_eq!(H.min(), 0);
        assert_eq!(H.max(), 1000);
        // p50 lands in the bucket of the 2nd sample (value 1).
        assert_eq!(H.quantile(0.5), 1);
        // p100 lands in the bucket containing 1000: [512, 1024).
        assert_eq!(H.quantile(1.0), 512);
        let nz = H.nonzero_buckets();
        assert_eq!(nz.iter().map(|&(_, c)| c).sum::<u64>(), 4);
        set_level(Level::Off);
        reset_for_tests();
    }

    #[test]
    fn disabled_mode_emits_zero_events_and_costs_nothing() {
        let _g = lock();
        set_level(Level::Off);
        reset_for_tests();
        static C: Counter = Counter::new("test_disabled_counter");
        static H: Histogram = Histogram::new("test_disabled_hist");
        C.add(5);
        H.record(5);
        {
            let _s = span!("disabled_span", detail = 42);
        }
        assert_eq!(C.get(), 0, "disabled counter must not accumulate");
        assert_eq!(H.count(), 0, "disabled histogram must not accumulate");
        assert!(
            PHASES.lock_recover().is_empty(),
            "disabled span must not aggregate"
        );
        // init refuses to create a file when off.
        let dir = std::env::temp_dir().join("leo_telemetry_disabled");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(init_at(&dir, "nope").is_none());
        assert!(!dir.join("RUN_nope.jsonl").exists());
        let m = RunManifest::new("nope", 0, 0, 1);
        assert!(finish_run(&m).is_none());
    }

    #[test]
    fn span_nesting_and_timing_monotonicity() {
        let _g = lock();
        set_level(Level::Info);
        reset_for_tests();
        let dir = std::env::temp_dir().join("leo_telemetry_spans");
        let _ = std::fs::remove_dir_all(&dir);
        init_at(&dir, "spans").expect("sink");
        {
            let outer = span!("outer_phase");
            assert_eq!(outer.name(), "outer_phase");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span!("inner_phase", step = 1);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let path = finish_run(&RunManifest::new("spans", 0xabc, 7, 2)).expect("path");
        set_level(Level::Off);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // Every line validates; first is run_start, last is manifest.
        for l in &lines {
            validate_event_line(l).unwrap_or_else(|e| panic!("line failed: {e}\n{l}"));
        }
        assert_eq!(validate_event_line(lines[0]).unwrap(), "run_start");
        assert_eq!(
            validate_event_line(lines.last().unwrap()).unwrap(),
            "manifest"
        );
        // Inner span closes before outer and nests one deeper; the outer
        // duration dominates the inner.
        let spans: Vec<Json> = lines
            .iter()
            .filter_map(|l| {
                let v = Json::parse(l).unwrap();
                (v.get("type").and_then(Json::as_str) == Some("span")).then_some(v)
            })
            .collect();
        assert_eq!(spans.len(), 2);
        let inner = &spans[0];
        let outer = &spans[1];
        assert_eq!(inner.get("name").unwrap().as_str(), Some("inner_phase"));
        assert_eq!(outer.get("name").unwrap().as_str(), Some("outer_phase"));
        assert_eq!(inner.get("depth").unwrap().as_num(), Some(1.0));
        assert_eq!(outer.get("depth").unwrap().as_num(), Some(0.0));
        let d_in = inner.get("dur_ns").unwrap().as_num().unwrap();
        let d_out = outer.get("dur_ns").unwrap().as_num().unwrap();
        assert!(d_out >= d_in, "outer {d_out} must cover inner {d_in}");
        assert!(d_in >= 1_000_000.0, "inner slept ≥ 1 ms");
        // kv payload survived.
        assert_eq!(
            inner.get("kv").unwrap().get("step").unwrap().as_str(),
            Some("1")
        );
        // Manifest carries the phase totals and the config hash.
        let manifest = Json::parse(lines.last().unwrap()).unwrap();
        assert_eq!(
            manifest.get("config_hash").unwrap().as_str(),
            Some("0x0000000000000abc")
        );
        assert_eq!(manifest.get("seed").unwrap().as_num(), Some(7.0));
        let phases = manifest.get("phases").unwrap();
        assert!(phases.get("outer_phase").is_some());
        assert!(phases.get("inner_phase").is_some());
        let _ = std::fs::remove_dir_all(&dir);
        reset_for_tests();
    }

    #[test]
    fn counters_accumulate_when_enabled() {
        let _g = lock();
        set_level(Level::Info);
        static C: Counter = Counter::new("test_enabled_counter");
        let before = C.get();
        C.add(3);
        C.add(4);
        assert_eq!(C.get(), before + 7);
        assert_eq!(C.name(), "test_enabled_counter");
        set_level(Level::Off);
        reset_for_tests();
    }

    #[test]
    fn fnv_hash_stable_and_sensitive() {
        // Pinned reference values (FNV-1a 64).
        assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
        assert_ne!(fnv1a_64(b"seed = 42"), fnv1a_64(b"seed = 43"));
    }

    #[test]
    fn json_escaping_roundtrips() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let quoted = json_string(nasty);
        let back = Json::parse(&quoted).unwrap();
        assert_eq!(back.as_str(), Some(nasty));
    }

    #[test]
    fn json_parser_handles_documents() {
        let v = Json::parse(r#"{"a":1,"b":[true,null,-2.5e3],"c":{"d":"x"}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_num(), Some(1.0));
        match v.get("b").unwrap() {
            Json::Arr(items) => {
                assert_eq!(items[0], Json::Bool(true));
                assert_eq!(items[1], Json::Null);
                assert_eq!(items[2], Json::Num(-2500.0));
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_str(), Some("x"));
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse(r#"{"k":}"#).is_err());
    }

    #[test]
    fn validator_rejects_unknown_and_malformed() {
        assert!(validate_event_line("not json").is_err());
        assert!(validate_event_line(r#"{"type":"mystery"}"#).is_err());
        assert!(validate_event_line(r#"{"no_type":1}"#).is_err());
        // span missing dur_ns.
        assert!(
            validate_event_line(r#"{"type":"span","t_ns":1,"name":"x","depth":0,"thread":0}"#)
                .is_err()
        );
        // Good lines of each type pass.
        assert_eq!(
            validate_event_line(r#"{"type":"counter","name":"c","value":3}"#).unwrap(),
            "counter"
        );
        assert_eq!(
            validate_event_line(
                r#"{"type":"hist","name":"h","count":1,"sum":2,"min":2,"max":2,"buckets":[[2,1]]}"#
            )
            .unwrap(),
            "hist"
        );
        assert_eq!(
            validate_event_line(r#"{"type":"log","t_ns":5,"msg":"hello"}"#).unwrap(),
            "log"
        );
    }

    #[test]
    fn init_at_suffixes_instead_of_clobbering() {
        let _g = lock();
        set_level(Level::Info);
        reset_for_tests();
        let dir = std::env::temp_dir().join("leo_telemetry_collide");
        let _ = std::fs::remove_dir_all(&dir);
        let first = init_at(&dir, "clash").expect("first sink");
        assert!(first.ends_with("RUN_clash.jsonl"));
        finish_run(&RunManifest::new("clash", 0, 0, 1));
        let first_len = std::fs::metadata(&first).unwrap().len();
        assert!(first_len > 0);
        // Second run in the same dir: new file, first untouched.
        let second = init_at(&dir, "clash").expect("second sink");
        assert!(second.ends_with("RUN_clash-01.jsonl"), "{second:?}");
        finish_run(&RunManifest::new("clash", 0, 0, 1));
        assert_eq!(std::fs::metadata(&first).unwrap().len(), first_len);
        let third = init_at(&dir, "clash").expect("third sink");
        assert!(third.ends_with("RUN_clash-02.jsonl"), "{third:?}");
        finish_run(&RunManifest::new("clash", 0, 0, 1));
        set_level(Level::Off);
        let _ = std::fs::remove_dir_all(&dir);
        reset_for_tests();
    }

    #[test]
    fn metric_series_emits_valid_events_and_merges() {
        let _g = lock();
        set_level(Level::Info);
        reset_for_tests();
        let dir = std::env::temp_dir().join("leo_telemetry_series");
        let _ = std::fs::remove_dir_all(&dir);
        init_at(&dir, "series").expect("sink");
        let mut a = MetricSeries::new("rtt_ms");
        let mut b = MetricSeries::new("rtt_ms");
        for v in [10.0, 20.0, 30.0] {
            a.record(v);
        }
        a.snapshot_done(0, 0.0);
        for v in [40.0, 50.0] {
            b.record(v);
        }
        b.snapshot_done(1, 900.0);
        a.merge(&b);
        assert_eq!(a.run_sketch().count(), 5);
        assert_eq!(a.run_sketch().min(), 10.0);
        assert_eq!(a.run_sketch().max(), 50.0);
        let path = finish_run(&RunManifest::new("series", 0, 0, 1)).expect("path");
        set_level(Level::Off);
        let text = std::fs::read_to_string(&path).unwrap();
        let mut series_lines = 0;
        let mut rebuilt = crate::sketch::QuantileSketch::new();
        for l in text.lines() {
            if validate_event_line(l).unwrap() == "series" {
                series_lines += 1;
                let v = Json::parse(l).unwrap();
                assert_eq!(v.get("name").unwrap().as_str(), Some("rtt_ms"));
                rebuilt.merge(&crate::sketch::QuantileSketch::from_json(&v).unwrap());
            }
        }
        assert_eq!(series_lines, 2);
        // The file's merged series matches the in-process run sketch.
        assert_eq!(rebuilt.count(), 5);
        assert_eq!(rebuilt.min().to_bits(), a.run_sketch().min().to_bits());
        assert_eq!(rebuilt.max().to_bits(), a.run_sketch().max().to_bits());
        assert_eq!(rebuilt.nonzero_buckets(), a.run_sketch().nonzero_buckets());
        let _ = std::fs::remove_dir_all(&dir);
        reset_for_tests();
    }

    #[test]
    fn metric_series_disabled_records_nothing() {
        let _g = lock();
        set_level(Level::Off);
        let mut s = MetricSeries::new("noop");
        s.record(1.0);
        s.snapshot_done(0, 0.0);
        assert!(s.run_sketch().is_empty());
    }

    #[test]
    fn heartbeat_emits_on_every_tick_at_zero_cadence() {
        let _g = lock();
        set_level(Level::Info);
        reset_for_tests();
        let dir = std::env::temp_dir().join("leo_telemetry_heartbeat");
        let _ = std::fs::remove_dir_all(&dir);
        init_at(&dir, "hb").expect("sink");
        std::env::set_var("LEO_LOG_HEARTBEAT", "0");
        let hb = Heartbeat::new("hb_test", 10);
        std::env::remove_var("LEO_LOG_HEARTBEAT");
        for _ in 0..4 {
            hb.tick(1);
        }
        assert_eq!(hb.done(), 4);
        let path = finish_run(&RunManifest::new("hb", 0, 0, 1)).expect("path");
        set_level(Level::Off);
        let text = std::fs::read_to_string(&path).unwrap();
        let beats: Vec<Json> = text
            .lines()
            .filter(|l| validate_event_line(l).unwrap() == "heartbeat")
            .map(|l| Json::parse(l).unwrap())
            .collect();
        assert!(!beats.is_empty(), "zero cadence must emit heartbeats");
        let last = beats.last().unwrap();
        assert_eq!(last.get("label").unwrap().as_str(), Some("hb_test"));
        assert_eq!(last.get("total").unwrap().as_num(), Some(10.0));
        // On Linux the statm read works and peak tracks current.
        if rss_kb().is_some() {
            let rss = last.get("rss_kb").unwrap().as_num().unwrap();
            assert!(rss > 0.0);
            assert!(peak_rss_kb() as f64 >= rss);
        }
        let _ = std::fs::remove_dir_all(&dir);
        reset_for_tests();
    }

    #[test]
    fn heartbeat_off_cadence_never_emits() {
        let _g = lock();
        set_level(Level::Info);
        reset_for_tests();
        std::env::set_var("LEO_LOG_HEARTBEAT", "off");
        let hb = Heartbeat::new("silent", 5);
        std::env::remove_var("LEO_LOG_HEARTBEAT");
        assert!(hb.inner.cadence_ns.is_none());
        hb.tick(5);
        assert_eq!(hb.done(), 5);
        set_level(Level::Off);
        reset_for_tests();
    }

    #[test]
    fn validator_accepts_series_and_heartbeat() {
        assert_eq!(
            validate_event_line(
                r#"{"type":"series","t_ns":1,"name":"m","index":0,"t_s":0,"count":2,"low":0,"sum":3,"min":1,"max":2,"sub":32,"buckets":[[2048,2]]}"#
            )
            .unwrap(),
            "series"
        );
        assert_eq!(
            validate_event_line(
                r#"{"type":"heartbeat","t_ns":1,"label":"x","done":1,"total":2,"rate_per_s":0.5,"eta_s":2,"rss_kb":100,"peak_rss_kb":100,"counters":{"c":1}}"#
            )
            .unwrap(),
            "heartbeat"
        );
        // Missing sketch payload fields fail.
        assert!(
            validate_event_line(r#"{"type":"series","t_ns":1,"name":"m","index":0,"t_s":0}"#)
                .is_err()
        );
        assert!(validate_event_line(r#"{"type":"heartbeat","t_ns":1,"label":"x"}"#).is_err());
    }

    #[test]
    fn thread_ids_are_distinct() {
        let main_id = thread_id();
        let other = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(main_id, other);
        // Stable within a thread.
        assert_eq!(main_id, thread_id());
    }
}
