//! A no-dependency timing harness (replaces `criterion` for this
//! workspace's benches).
//!
//! Protocol per benchmark: the closure is auto-calibrated so one sample
//! takes a measurable chunk of time, warmed up, then timed for a fixed
//! number of samples; the harness records min/mean/median/p95 across
//! samples (per-iteration nanoseconds) and appends one JSON line per
//! benchmark to `BENCH_<label>.json`:
//!
//! ```json
//! {"label":"seed","bench":"fig2_latency","median_ns":123456.0,...}
//! ```
//!
//! * Output directory: `LEO_BENCH_DIR` env var, else the current
//!   directory. The file is truncated per harness run, so each
//!   `BENCH_*.json` holds the latest run of that suite — the perf
//!   trajectory across PRs is the git history of these files.
//! * A human-readable line per benchmark is printed to stdout.

use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

/// Samples taken per benchmark (after warmup).
const SAMPLES: usize = 12;
/// Warmup samples (discarded).
const WARMUP_SAMPLES: usize = 3;
/// Target wall-clock time for one sample, in nanoseconds.
const TARGET_SAMPLE_NS: f64 = 20_000_000.0;
/// Hard cap on iterations per sample (cheap closures would otherwise
/// calibrate into the millions and make suites slow).
const MAX_ITERS: u64 = 100_000;

/// Summary statistics of one benchmark, in per-iteration nanoseconds.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Iterations per sample after calibration.
    pub iters_per_sample: u64,
    /// Number of measured samples.
    pub samples: usize,
    /// Minimum per-iteration time, ns.
    pub min_ns: f64,
    /// Mean per-iteration time, ns.
    pub mean_ns: f64,
    /// Median per-iteration time, ns.
    pub median_ns: f64,
    /// 95th-percentile per-iteration time, ns.
    pub p95_ns: f64,
}

impl BenchResult {
    fn json_line(&self, label: &str) -> String {
        format!(
            "{{\"label\":\"{}\",\"bench\":\"{}\",\"iters_per_sample\":{},\"samples\":{},\
             \"min_ns\":{:.1},\"mean_ns\":{:.1},\"median_ns\":{:.1},\"p95_ns\":{:.1}}}",
            label,
            self.name,
            self.iters_per_sample,
            self.samples,
            self.min_ns,
            self.mean_ns,
            self.median_ns,
            self.p95_ns,
        )
    }
}

/// A benchmark suite writing `BENCH_<label>.json`.
#[derive(Debug)]
pub struct Harness {
    label: String,
    results: Vec<BenchResult>,
}

impl Harness {
    /// New suite with the given label (used in the output filename).
    pub fn new(label: &str) -> Self {
        Harness {
            label: label.to_string(),
            results: Vec::new(),
        }
    }

    /// Time `f`, recording per-iteration statistics under `name`.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        // Calibrate: run once to estimate cost, then pick an iteration
        // count that fills the target sample time.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once_ns = t0.elapsed().as_nanos().max(1) as f64;
        let iters = ((TARGET_SAMPLE_NS / once_ns).ceil() as u64).clamp(1, MAX_ITERS);

        let mut per_iter_ns = Vec::with_capacity(SAMPLES);
        for sample in 0..WARMUP_SAMPLES + SAMPLES {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let ns = t.elapsed().as_nanos() as f64 / iters as f64;
            if sample >= WARMUP_SAMPLES {
                per_iter_ns.push(ns);
            }
        }
        per_iter_ns.sort_by(f64::total_cmp);
        let n = per_iter_ns.len();
        let result = BenchResult {
            name: name.to_string(),
            iters_per_sample: iters,
            samples: n,
            min_ns: per_iter_ns[0],
            mean_ns: per_iter_ns.iter().sum::<f64>() / n as f64,
            median_ns: median_sorted(&per_iter_ns),
            p95_ns: percentile_sorted(&per_iter_ns, 0.95),
        };
        println!(
            "bench {:<40} median {:>12.1} ns/iter  p95 {:>12.1} ns/iter  ({} iters × {} samples)",
            result.name, result.median_ns, result.p95_ns, iters, n
        );
        self.results.push(result);
    }

    /// Results recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Write `BENCH_<label>.json` (JSON lines) and return its path.
    pub fn finish(self) -> std::io::Result<PathBuf> {
        let dir = std::env::var_os("LEO_BENCH_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."));
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.label));
        let mut out = std::io::BufWriter::new(std::fs::File::create(&path)?);
        for r in &self.results {
            writeln!(out, "{}", r.json_line(&self.label))?;
        }
        out.flush()?;
        println!("wrote {}", path.display());
        Ok(path)
    }
}

/// Median of an ascending-sorted slice.
fn median_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Percentile (nearest-rank interpolation) of an ascending-sorted slice.
fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_percentile() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(median_sorted(&v), 2.5);
        assert_eq!(median_sorted(&v[..3]), 2.0);
        assert_eq!(percentile_sorted(&v, 1.0), 4.0);
        assert_eq!(percentile_sorted(&v, 0.0), 1.0);
        assert!((percentile_sorted(&v, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn bench_records_sane_stats() {
        let mut h = Harness::new("util_selftest");
        h.bench("noop_sum", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(i);
            }
            acc
        });
        let r = &h.results()[0];
        assert!(r.min_ns > 0.0);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.p95_ns);
        assert_eq!(r.samples, SAMPLES);
    }

    #[test]
    fn json_line_shape() {
        let r = BenchResult {
            name: "x".into(),
            iters_per_sample: 10,
            samples: 12,
            min_ns: 1.0,
            mean_ns: 2.0,
            median_ns: 1.5,
            p95_ns: 3.0,
        };
        let line = r.json_line("seed");
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"bench\":\"x\""));
        assert!(line.contains("\"label\":\"seed\""));
        assert!(line.contains("\"median_ns\":1.5"));
    }

    #[test]
    fn finish_writes_json_lines() {
        let dir = std::env::temp_dir().join("leo_util_bench_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("LEO_BENCH_DIR", &dir);
        let mut h = Harness::new("selftest_io");
        h.bench("tiny", || 1 + 1);
        let path = h.finish().unwrap();
        std::env::remove_var("LEO_BENCH_DIR");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"bench\":\"tiny\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
