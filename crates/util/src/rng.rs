//! Seedable, documented PRNG: SplitMix64 seeding + xoshiro256++ streams.
//!
//! # Stream format (pinned — do not change)
//!
//! Golden values elsewhere in the workspace (`tests/determinism.rs`, the
//! synthetic city tail, the traffic matrix) are pinned against these exact
//! streams, so the algorithms below are part of the repo's compatibility
//! surface:
//!
//! * **Seeding.** `Rng64::seed_from_u64(seed)` fills the four 64-bit
//!   xoshiro256++ state words with four consecutive outputs of SplitMix64
//!   initialized at `seed` (the standard Blackman–Vigna recipe).
//! * **Output.** `next_u64` is xoshiro256++:
//!   `rotl(s0 + s3, 23) + s0`, then the linear state transition.
//! * **Floats.** `next_f64` takes the top 53 bits of `next_u64` and
//!   scales by 2⁻⁵³, giving uniforms in `[0, 1)`.
//! * **Integer ranges.** `random_range(lo..hi)` over integers uses the
//!   widening multiply-shift `(next_u64 as u128 * span) >> 64` — the
//!   tiny modulo bias (< 2⁻⁶⁴ per value) is irrelevant here and the
//!   mapping is branch-free and deterministic.
//! * **Float ranges.** `random_range(lo..hi)` over `f64` is
//!   `lo + next_f64() * (hi - lo)`.
//!
//! The one-shot mixer [`mix64`] (SplitMix64's finalizer) is also exported
//! for stateless counter-based hashing (e.g. the weather process in
//! `leo-atmo`, which must evaluate any `(site, t)` key independently).

use std::ops::Range;

/// SplitMix64 finalizer: a tiny, high-quality, stateless 64-bit mixer.
///
/// Constants are the canonical ones from Steele, Lea & Flood's SplitMix64;
/// `mix64(counter)` is a perfectly usable stateless random stream.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Advance a SplitMix64 state and return the next output.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable xoshiro256++ PRNG (Blackman & Vigna).
///
/// Fast, 256-bit state, passes BigCrush; more than enough statistical
/// quality for synthetic-city placement, traffic sampling, and property
/// testing. Not cryptographic.
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Seed the generator from a single `u64` via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng64 { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        self.s = [s0, s1, s2, s3.rotate_left(45)];
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform sample from a half-open range. Implemented for
    /// `Range<u32>`, `Range<u64>`, `Range<usize>`, and `Range<f64>`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    pub fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// A range type [`Rng64::random_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample.
    fn sample(self, rng: &mut Rng64) -> Self::Output;
}

#[inline]
fn sample_span(rng: &mut Rng64, span: u64) -> u64 {
    // Widening multiply-shift: maps next_u64 uniformly onto [0, span).
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

impl SampleRange for Range<u64> {
    type Output = u64;
    #[inline]
    fn sample(self, rng: &mut Rng64) -> u64 {
        // lint: allow(panic-reachable) an empty range has no sample; panicking beats feeding a bogus value into a deterministic stream
        assert!(self.start < self.end, "empty range");
        self.start + sample_span(rng, self.end - self.start)
    }
}

impl SampleRange for Range<u32> {
    type Output = u32;
    #[inline]
    fn sample(self, rng: &mut Rng64) -> u32 {
        // lint: allow(panic-reachable) an empty range has no sample; panicking beats feeding a bogus value into a deterministic stream
        assert!(self.start < self.end, "empty range");
        self.start + sample_span(rng, (self.end - self.start) as u64) as u32
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    #[inline]
    fn sample(self, rng: &mut Rng64) -> usize {
        // lint: allow(panic-reachable) an empty range has no sample; panicking beats feeding a bogus value into a deterministic stream
        assert!(self.start < self.end, "empty range");
        self.start + sample_span(rng, (self.end - self.start) as u64) as usize
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Rng64) -> f64 {
        // lint: allow(panic-reachable) an empty range has no sample; panicking beats feeding a bogus value into a deterministic stream
        assert!(self.start < self.end, "empty range");
        let x = self.start + rng.next_f64() * (self.end - self.start);
        // Guard the (theoretical) rounding-up edge so the range stays
        // half-open.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::seed_from_u64(43);
        assert_ne!(Rng64::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn stream_golden_values() {
        // Pin the exact stream: these are part of the documented format
        // (see module docs). If this test ever fails, seeded experiment
        // outputs across the workspace have silently changed.
        let mut r = Rng64::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                5987356902031041503,
                7051070477665621255,
                6633766593972829180,
                211316841551650330
            ]
        );
    }

    #[test]
    fn splitmix_golden() {
        // Reference values for SplitMix64 from seed 0.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut r = Rng64::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng64::seed_from_u64(3);
        for _ in 0..10_000 {
            let a = r.random_range(10u32..20);
            assert!((10..20).contains(&a));
            let b = r.random_range(5usize..6);
            assert_eq!(b, 5);
            let c = r.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&c));
            let d = r.random_range(0u64..u64::MAX);
            assert!(d < u64::MAX);
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut r = Rng64::seed_from_u64(9);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.random_range(0usize..10)] += 1;
        }
        for c in counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.1).abs() < 0.01, "bucket fraction {frac}");
        }
    }

    #[test]
    fn bool_probability() {
        let mut r = Rng64::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| r.random_bool(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng64::seed_from_u64(0).random_range(5u32..5);
    }

    #[test]
    fn mix64_matches_splitmix_step() {
        // mix64(x) must equal one splitmix64 step starting at state x.
        let mut s = 12345u64;
        assert_eq!(mix64(12345), splitmix64(&mut s));
    }
}
