//! Minimal little-endian byte reader/writer (the `bytes` crate's `Buf` /
//! `BufMut` surface that the snapshot codec actually uses, and nothing
//! more).
//!
//! * [`ByteBuf`] is a growable write buffer over `Vec<u8>` with
//!   `put_*_le` methods.
//! * [`ReadBytes`] is implemented for `&[u8]`, advancing the slice in
//!   place exactly like `bytes::Buf` does, with the same contract: the
//!   caller checks [`ReadBytes::remaining`] first, and a short read
//!   panics (decoders guard with their own truncation checks).

/// Growable little-endian write buffer.
#[derive(Debug, Clone, Default)]
pub struct ByteBuf {
    data: Vec<u8>,
}

impl ByteBuf {
    /// New empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// New empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        ByteBuf {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append raw bytes.
    #[inline]
    pub fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    /// Append one byte.
    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    /// Append a little-endian `u16`.
    #[inline]
    pub fn put_u16_le(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    #[inline]
    pub fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    #[inline]
    pub fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64` (IEEE-754 bit pattern).
    #[inline]
    pub fn put_f64_le(&mut self, v: f64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Finish writing and take the underlying bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }

    /// View the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

/// In-place reader over a byte slice: each `get_*` consumes from the
/// front.
///
/// # Panics
/// All `get_*`/`copy_to_slice` methods panic if fewer than the required
/// bytes remain — check [`ReadBytes::remaining`] first, exactly as with
/// `bytes::Buf`.
pub trait ReadBytes {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Consume `dst.len()` bytes into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Consume a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Consume a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl ReadBytes for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        // lint: allow(panic-reachable) decode underflow means truncated or corrupt snapshot bytes; decoding must stop, not fabricate zeros
        assert!(self.len() >= dst.len(), "byte slice underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = ByteBuf::with_capacity(32);
        w.put_u8(0xAB);
        w.put_u16_le(0x1234);
        w.put_u32_le(0xDEADBEEF);
        w.put_u64_le(0x0102030405060708);
        w.put_f64_le(-1234.5678);
        w.put_slice(b"xyz");
        let v = w.into_vec();
        let mut r: &[u8] = &v;
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xDEADBEEF);
        assert_eq!(r.get_u64_le(), 0x0102030405060708);
        assert_eq!(r.get_f64_le(), -1234.5678);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn encoding_is_little_endian() {
        let mut w = ByteBuf::new();
        w.put_u32_le(1);
        assert_eq!(w.as_slice(), &[1, 0, 0, 0]);
    }

    #[test]
    fn remaining_tracks_reads() {
        let v = vec![0u8; 10];
        let mut r: &[u8] = &v;
        assert_eq!(r.remaining(), 10);
        r.get_u32_le();
        assert_eq!(r.remaining(), 6);
        r.get_u16_le();
        assert_eq!(r.remaining(), 4);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn short_read_panics() {
        let v = vec![0u8; 3];
        let mut r: &[u8] = &v;
        r.get_u32_le();
    }

    #[test]
    fn f64_bit_exact() {
        for x in [0.0, -0.0, f64::MIN_POSITIVE, 1.0e300, f64::INFINITY] {
            let mut w = ByteBuf::new();
            w.put_f64_le(x);
            let mut r: &[u8] = w.as_slice();
            assert_eq!(r.get_f64_le().to_bits(), x.to_bits());
        }
    }
}
