//! Bounded-memory, mergeable streaming aggregates for metric series.
//!
//! The experiment drivers sweep hundreds of snapshots and record
//! thousands of per-pair samples at each one; materializing every sample
//! before aggregating makes a run's memory O(snapshots × pairs). This
//! module provides the fixed-size state those loops accumulate into
//! instead:
//!
//! * [`QuantileSketch`] — a log-bucket quantile sketch over non-negative
//!   `f64` samples. Bucket boundaries come straight from the IEEE-754
//!   bit pattern (32 linear subbuckets per power of two), so indexing is
//!   a shift — no `log` calls — and fully deterministic. Any quantile is
//!   answered within a **relative value error of at most 1/64**
//!   ([`QuantileSketch::RELATIVE_ERROR`]) for samples in the trackable
//!   range `[2⁻⁶⁴, 2⁶⁴)`; smaller samples collapse into an underflow
//!   bucket whose representative is exact to within `2⁻⁶⁴` absolute.
//! * [`FixedSum`] — an exactly-associative fixed-point accumulator for
//!   `f64` sums. Merging partial sums is integer addition, so a sum
//!   chunked across worker threads is bit-identical for every thread
//!   count — the property the sweep-fold drivers rely on.
//!
//! Both types merge: `merge(a, merge(b, c)) == merge(merge(a, b), c)`
//! **exactly** (bucket counts, count, min, max, and the fixed-point sum
//! are all integers or exact folds), which is what lets
//! `StudyContext::sweep_fold` split a time series into per-thread chunks
//! without changing any output bit. The property suite in
//! `crates/util/tests/sketch_proptests.rs` pins both guarantees.
//!
//! Serialized form (the `series` telemetry event inlines it):
//! `"count":N,"low":N,"sum":S,"min":M,"max":X,"sub":32,"buckets":[[k,c],…]`
//! where `k` is the bucket index and `c` its occupancy; only non-empty
//! buckets are listed, so a snapshot with `s` distinct sample magnitudes
//! costs O(min(s, 4096)) bytes.

use crate::telemetry::Json;

/// log₂ of the number of linear subbuckets per octave (power of two).
const SUB_BITS: u32 = 5;
/// Linear subbuckets per octave.
pub const SUBBUCKETS: usize = 1 << SUB_BITS;
/// Smallest exponent tracked: values below `2^MIN_EXP` collapse into the
/// underflow (`low`) bucket.
const MIN_EXP: i32 = -64;
/// Number of octaves tracked: `[2^-64, 2^64)`.
const OCTAVES: usize = 128;
/// Total bucket count (128 octaves × 32 subbuckets).
pub const NUM_BUCKETS: usize = OCTAVES * SUBBUCKETS;
/// Biased-exponent offset of bucket 0 in the `f64` bit pattern.
const BIAS_OFFSET: u64 = ((1023 + MIN_EXP as i64) as u64) << SUB_BITS;

/// Smallest trackable sample; anything below lands in the underflow
/// bucket.
pub const MIN_TRACKABLE: f64 = 5.421010862427522e-20; // 2^-64

/// Bucket index of a finite sample `v ≥ MIN_TRACKABLE`.
///
/// The top 12 + [`SUB_BITS`] bits of the IEEE-754 pattern (sign 0,
/// 11-bit exponent, top 5 mantissa bits) increase monotonically with the
/// value, so the index is one shift and one subtract. Values at or above
/// `2^64` clamp into the last bucket (their exact `max` is tracked
/// separately, and quantiles clamp to it).
#[inline]
fn bucket_of(v: f64) -> usize {
    let top = v.to_bits() >> (52 - SUB_BITS);
    let idx = top.saturating_sub(BIAS_OFFSET) as usize;
    idx.min(NUM_BUCKETS - 1)
}

/// Midpoint representative of bucket `k`: `2^e · (1 + (j + ½)/32)` for
/// `e = k/32 − 64`, `j = k mod 32`. Constructed from bits (no `exp2`),
/// so it is deterministic across platforms.
fn bucket_mid(k: usize) -> f64 {
    let e = (k >> SUB_BITS) as i64 + 1023 + MIN_EXP as i64;
    let pow = f64::from_bits((e as u64) << 52);
    pow * (1.0 + ((k & (SUBBUCKETS - 1)) as f64 + 0.5) / SUBBUCKETS as f64)
}

/// Exclusive upper bound of bucket `k` (the value where the next bucket
/// starts).
fn bucket_hi(k: usize) -> f64 {
    let e = (k >> SUB_BITS) as i64 + 1023 + MIN_EXP as i64;
    let pow = f64::from_bits((e as u64) << 52);
    pow * (1.0 + ((k & (SUBBUCKETS - 1)) as f64 + 1.0) / SUBBUCKETS as f64)
}

// ---------------------------------------------------------------------------
// FixedSum

/// Binary point of the fixed-point accumulator: sums carry `2⁻⁷⁵`
/// resolution.
const FIX_FRAC_BITS: i32 = 75;
/// `2⁻⁷⁵` as an `f64` (exact power of two: multiplying by it only
/// rescales the exponent).
const FIX_SCALE_INV: f64 = 2.6469779601696886e-23;

/// An exactly-associative streaming sum of `f64` samples.
///
/// Each sample is truncated onto a `2⁻⁷⁵` fixed-point grid and
/// accumulated in an `i128`, so addition order — and therefore thread
/// count and chunk boundaries — cannot change the result by even one
/// bit. The truncation error is at most `2⁻⁷⁵` per sample (zero for
/// samples whose lowest mantissa bit is ≥ `2⁻⁷⁵`, i.e. all values ≥
/// ~`2⁻²³`), and the capacity is ±`2⁵¹` in value units before
/// saturation — far beyond any metric this workspace sums.
///
/// Non-finite samples are ignored (mirroring how the exact pipeline
/// drops NaNs before aggregating).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FixedSum {
    acc: i128,
}

impl FixedSum {
    /// An empty (zero) sum.
    pub const fn new() -> FixedSum {
        FixedSum { acc: 0 }
    }

    /// Add one sample (non-finite samples are ignored).
    #[inline]
    pub fn add(&mut self, v: f64) {
        self.acc = self.acc.saturating_add(to_fixed(v));
    }

    /// Fold another sum in. Integer addition: exact, associative,
    /// commutative.
    pub fn merge(&mut self, other: &FixedSum) {
        self.acc = self.acc.saturating_add(other.acc);
    }

    /// The accumulated sum, rounded once to `f64`.
    pub fn value(&self) -> f64 {
        (self.acc as f64) * FIX_SCALE_INV
    }

    /// True when nothing (or only zeros) has been added.
    pub fn is_zero(&self) -> bool {
        self.acc == 0
    }

    /// The raw fixed-point accumulator (grid units of `2⁻⁷⁵`).
    ///
    /// This is the *lossless* form: [`FixedSum::value`] rounds the
    /// accumulator once to `f64`, which can drop low-order grid units
    /// for large sums. Serializers that need bit-exact round-trips
    /// (the shard codec, the `fsum` field of `series` events) persist
    /// this integer instead.
    pub fn raw(&self) -> i128 {
        self.acc
    }

    /// Rebuild a sum from its raw accumulator (inverse of
    /// [`FixedSum::raw`]). Exact: no rounding anywhere.
    pub const fn from_raw(acc: i128) -> FixedSum {
        FixedSum { acc }
    }
}

/// `v` on the `2⁻⁷⁵` grid (truncated toward zero). Non-finite → 0.
#[inline]
fn to_fixed(v: f64) -> i128 {
    if !v.is_finite() {
        return 0;
    }
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i32;
    if exp == 0 {
        // Subnormal: |v| < 2^-1022, far below the grid.
        return 0;
    }
    let mant = ((bits & ((1u64 << 52) - 1)) | (1u64 << 52)) as i128;
    // v = mant · 2^(exp − 1075); scaled = v · 2^75 = mant · 2^shift.
    let shift = exp - 1075 + FIX_FRAC_BITS;
    let mag = if shift >= 0 {
        if shift > 74 {
            // |v| ≥ 2^51: saturate (no workspace metric sums get here).
            i128::MAX
        } else {
            mant << shift
        }
    } else if shift < -53 {
        0
    } else {
        mant >> (-shift)
    };
    if bits >> 63 == 1 {
        -mag
    } else {
        mag
    }
}

// ---------------------------------------------------------------------------
// QuantileSketch

/// A fixed-size, exactly-mergeable log-bucket quantile sketch.
///
/// Designed for the workspace's non-negative metric streams (RTT ms,
/// attenuation dB, Gbps, fractions). Memory is O(1) in the sample count:
/// 4096 `u64` buckets (lazily allocated on the first trackable sample)
/// plus scalar count/sum/min/max state.
///
/// * Non-finite samples are dropped (NaN mirrors
///   `Distribution::from_samples`; infinities have no JSON form).
/// * Samples below [`MIN_TRACKABLE`] (including zero and any negatives)
///   collapse into an underflow count; quantiles falling there report
///   the exact minimum.
/// * Quantile answers are bucket midpoints clamped to the exact
///   `[min, max]`, so the relative value error is at most
///   [`QuantileSketch::RELATIVE_ERROR`] in the trackable range.
#[derive(Debug, Clone, Default)]
pub struct QuantileSketch {
    count: u64,
    low: u64,
    sum: FixedSum,
    min: f64,
    max: f64,
    /// Empty until the first trackable sample; then `NUM_BUCKETS` long.
    buckets: Vec<u64>,
}

impl QuantileSketch {
    /// Documented error bound: any quantile of trackable samples is
    /// within `true_value · RELATIVE_ERROR` of the corresponding exact
    /// order statistic's bucket (half a subbucket's relative width).
    pub const RELATIVE_ERROR: f64 = 1.0 / 64.0;

    /// An empty sketch.
    pub fn new() -> QuantileSketch {
        QuantileSketch {
            count: 0,
            low: 0,
            sum: FixedSum::new(),
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: Vec::new(),
        }
    }

    /// Record one sample (non-finite samples are dropped: NaN mirrors
    /// `Distribution::from_samples`, and ±∞ would break the JSON
    /// serialization of `min`/`max`).
    #[inline]
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.count += 1;
        self.sum.add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v < MIN_TRACKABLE {
            self.low += 1;
            return;
        }
        if self.buckets.is_empty() {
            self.buckets = vec![0u64; NUM_BUCKETS];
        }
        self.buckets[bucket_of(v)] += 1;
    }

    /// Fold `other` in. Exact and associative: bucket counts, counts,
    /// and the fixed-point sum add; min/max fold.
    pub fn merge(&mut self, other: &QuantileSketch) {
        self.count += other.count;
        self.low += other.low;
        self.sum.merge(&other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        if !other.buckets.is_empty() {
            if self.buckets.is_empty() {
                self.buckets = other.buckets.clone();
            } else {
                for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
                    *a += *b;
                }
            }
        }
    }

    /// Samples recorded (excluding dropped NaNs).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Samples that fell below [`MIN_TRACKABLE`].
    pub fn low_count(&self) -> u64 {
        self.low
    }

    /// Sum of samples (deterministic under any merge order).
    pub fn sum(&self) -> f64 {
        self.sum.value()
    }

    /// The sum as its exact fixed-point accumulator (see
    /// [`FixedSum::raw`]); the lossless form serializers persist.
    pub fn sum_fixed(&self) -> FixedSum {
        self.sum
    }

    /// Exact minimum (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Exact maximum (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Arithmetic mean (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum() / self.count as f64
        }
    }

    /// The sample at quantile `q ∈ [0, 1]`, within the documented error
    /// bound. NaN when empty. The boundary quantiles are exact: `q = 0`
    /// returns the tracked minimum and `q = 1` the tracked maximum
    /// (never a bucket representative), so `quantile(0.0)` /
    /// `quantile(1.0)` agree bitwise with [`QuantileSketch::min`] /
    /// [`QuantileSketch::max`] — including single-sample and
    /// all-equal-sample sketches.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        if target <= self.low {
            return self.min;
        }
        let mut cum = self.low;
        for (k, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return bucket_mid(k).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// [`QuantileSketch::quantile`] with `p ∈ [0, 100]`, mirroring
    /// `Distribution::percentile`.
    pub fn percentile(&self, p: f64) -> f64 {
        self.quantile(p / 100.0)
    }

    /// CDF points `(value, fraction ≤ value)`, decimated to at most
    /// `max_points` (the last point always closes at 1.0). Values are
    /// bucket upper bounds clamped to the exact max, so each point's
    /// fraction is exact and its value is within the bucket-width bound.
    pub fn cdf_points(&self, max_points: usize) -> Vec<(f64, f64)> {
        if self.count == 0 || max_points == 0 {
            return Vec::new();
        }
        let mut pts = Vec::new();
        let mut cum = 0u64;
        if self.low > 0 {
            cum = self.low;
            pts.push((self.min, cum as f64 / self.count as f64));
        }
        for (k, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            pts.push((bucket_hi(k).min(self.max), cum as f64 / self.count as f64));
        }
        if pts.len() <= max_points {
            return pts;
        }
        // Decimate, always keeping the final (fraction 1.0) point.
        let step = pts.len() as f64 / max_points as f64;
        let mut out = Vec::with_capacity(max_points + 1);
        let mut i = 0.0;
        while (i as usize) < pts.len() {
            out.push(pts[i as usize]);
            i += step;
        }
        let last = pts[pts.len() - 1];
        if out.last() != Some(&last) {
            out.push(last);
        }
        out
    }

    /// Non-empty buckets as `(index, occupancy)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(k, &c)| (c > 0).then_some((k, c)))
            .collect()
    }

    /// Reassemble a sketch from raw parts (the inverse of reading
    /// [`QuantileSketch::count`] / [`QuantileSketch::low_count`] /
    /// [`QuantileSketch::sum_fixed`] / [`QuantileSketch::min`] /
    /// [`QuantileSketch::max`] / [`QuantileSketch::nonzero_buckets`]).
    ///
    /// Bit-exact: the rebuilt sketch merges and answers quantiles
    /// identically to the original — this is the constructor binary
    /// codecs (the shard file format) decode into. Rejects internally
    /// inconsistent parts so corrupted payloads cannot build a sketch
    /// that later panics or silently mis-merges:
    /// * `count == 0` requires `low == 0` and no buckets;
    /// * `count > 0` requires finite `min ≤ max`;
    /// * bucket indices must be `< NUM_BUCKETS` and strictly increasing;
    /// * `low` plus bucket occupancies must equal `count`.
    pub fn from_raw_parts(
        count: u64,
        low: u64,
        sum: FixedSum,
        min: f64,
        max: f64,
        buckets: &[(usize, u64)],
    ) -> Result<QuantileSketch, String> {
        if count == 0 {
            if low != 0 || !buckets.is_empty() {
                return Err("sketch: empty sketch with nonzero low/buckets".into());
            }
            let mut s = QuantileSketch::new();
            s.sum = sum;
            return Ok(s);
        }
        if !(min.is_finite() && max.is_finite() && min <= max) {
            return Err(format!("sketch: invalid min/max {min}/{max}"));
        }
        let mut occupancy = low;
        let mut s = QuantileSketch {
            count,
            low,
            sum,
            min,
            max,
            buckets: Vec::new(),
        };
        if !buckets.is_empty() {
            s.buckets = vec![0u64; NUM_BUCKETS];
            let mut prev: Option<usize> = None;
            for &(k, c) in buckets {
                if k >= NUM_BUCKETS {
                    return Err(format!("sketch: bucket index {k} out of range"));
                }
                if prev.is_some_and(|p| k <= p) {
                    return Err("sketch: bucket indices not strictly increasing".into());
                }
                prev = Some(k);
                s.buckets[k] = c;
                occupancy = occupancy
                    .checked_add(c)
                    .ok_or("sketch: bucket occupancy overflow")?;
            }
        }
        if occupancy != count {
            return Err(format!(
                "sketch: occupancy {occupancy} does not match count {count}"
            ));
        }
        Ok(s)
    }

    /// Serialize as a JSON object *fragment* (no surrounding braces):
    /// the `series` telemetry event embeds this inline.
    pub fn to_json_fragment(&self) -> String {
        let buckets: Vec<String> = self
            .nonzero_buckets()
            .iter()
            .map(|&(k, c)| format!("[{k},{c}]"))
            .collect();
        let (min, max) = if self.count == 0 {
            (0.0, 0.0)
        } else {
            (self.min, self.max)
        };
        format!(
            "\"count\":{},\"low\":{},\"sum\":{},\"fsum\":\"{}\",\"min\":{},\"max\":{},\"sub\":{},\"buckets\":[{}]",
            self.count,
            self.low,
            self.sum(),
            self.sum.raw(),
            min,
            max,
            SUBBUCKETS,
            buckets.join(",")
        )
    }

    /// Rebuild a sketch from a parsed `series` event object (the inverse
    /// of [`QuantileSketch::to_json_fragment`]). The rebuilt sketch
    /// merges and answers quantiles exactly like the original; only the
    /// fixed-point sub-`2⁻⁷⁵` residue of `sum` is lost to the decimal
    /// round-trip.
    pub fn from_json(v: &Json) -> Result<QuantileSketch, String> {
        let num = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("sketch: missing number field `{key}`"))
        };
        let sub = num("sub")? as usize;
        if sub != SUBBUCKETS {
            return Err(format!(
                "sketch: resolution {sub} subbuckets, this build expects {SUBBUCKETS}"
            ));
        }
        let count = num("count")? as u64;
        let low = num("low")? as u64;
        let mut s = QuantileSketch::new();
        s.count = count;
        s.low = low;
        // Prefer the exact fixed-point accumulator (`fsum`, emitted
        // since the shard-merge work): re-fixing the rounded decimal
        // `sum` of several partial sketches can disagree with the
        // single-stream accumulator in the last grid units, and shard
        // merges must be bit-exact. Older logs without `fsum` fall back
        // to the decimal field.
        s.sum = match v.get("fsum").and_then(Json::as_str) {
            Some(raw) => FixedSum::from_raw(
                raw.parse::<i128>()
                    .map_err(|_| format!("sketch: malformed fsum `{raw}`"))?,
            ),
            None => {
                let mut sum = FixedSum::new();
                sum.add(num("sum")?);
                sum
            }
        };
        if count > 0 {
            s.min = num("min")?;
            s.max = num("max")?;
        }
        let Some(Json::Arr(pairs)) = v.get("buckets") else {
            return Err("sketch: missing array field `buckets`".into());
        };
        if !pairs.is_empty() {
            s.buckets = vec![0u64; NUM_BUCKETS];
            for p in pairs {
                let Json::Arr(kc) = p else {
                    return Err("sketch: bucket entry is not a [k,c] pair".into());
                };
                let (Some(k), Some(c)) = (
                    kc.first().and_then(Json::as_num),
                    kc.get(1).and_then(Json::as_num),
                ) else {
                    return Err("sketch: bucket entry is not a [k,c] pair".into());
                };
                let k = k as usize;
                if k >= NUM_BUCKETS {
                    return Err(format!("sketch: bucket index {k} out of range"));
                }
                s.buckets[k] += c as u64;
            }
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_monotone_and_in_range() {
        let vals = [
            MIN_TRACKABLE,
            1e-12,
            0.001,
            0.5,
            1.0,
            1.03,
            2.0,
            3.7,
            1e6,
            1e18,
        ];
        let mut last = 0usize;
        for (i, &v) in vals.iter().enumerate() {
            let k = bucket_of(v);
            assert!(k < NUM_BUCKETS, "{v} -> {k}");
            if i > 0 {
                assert!(k >= last, "bucket index must be monotone in value");
            }
            last = k;
            // The bucket's own bounds contain the value.
            assert!(v < bucket_hi(k) || v >= bucket_hi(NUM_BUCKETS - 1));
            assert!(bucket_mid(k) < bucket_hi(k));
        }
        assert_eq!(bucket_of(MIN_TRACKABLE), 0);
        assert_eq!(bucket_of(1.0), 64 * SUBBUCKETS);
    }

    #[test]
    fn quantiles_within_documented_bound() {
        let mut s = QuantileSketch::new();
        let mut exact: Vec<f64> = Vec::new();
        for i in 0..10_000u32 {
            // A spread of magnitudes: 0.01 .. ~1e3.
            let v = 0.01 * (1.0 + (i as f64 % 997.0)) * (1.0 + (i as f64 / 5000.0));
            s.record(v);
            exact.push(v);
        }
        exact.sort_by(f64::total_cmp);
        for &q in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let est = s.quantile(q);
            let rank = ((q * exact.len() as f64).ceil() as usize).max(1) - 1;
            let truth = exact[rank];
            assert!(
                (est - truth).abs() <= truth * QuantileSketch::RELATIVE_ERROR,
                "q={q}: est {est} vs exact {truth}"
            );
        }
        assert_eq!(s.count(), 10_000);
        assert_eq!(s.min(), exact[0]);
        assert_eq!(s.max(), exact[exact.len() - 1]);
        let exact_sum: f64 = exact.iter().sum();
        assert!((s.sum() - exact_sum).abs() <= exact_sum * 1e-12);
    }

    #[test]
    fn zeros_and_tiny_values_collapse_to_underflow() {
        let mut s = QuantileSketch::new();
        s.record(0.0);
        s.record(1e-30);
        s.record(2.0);
        assert_eq!(s.count(), 3);
        assert_eq!(s.low_count(), 2);
        assert_eq!(s.min(), 0.0);
        // q targeting the underflow region reports the exact min.
        assert_eq!(s.quantile(0.3), 0.0);
        assert!((s.quantile(1.0) - 2.0).abs() <= 2.0 * QuantileSketch::RELATIVE_ERROR);
    }

    #[test]
    fn nan_dropped_empty_is_nan() {
        let mut s = QuantileSketch::new();
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        s.record(f64::NEG_INFINITY);
        assert!(s.is_empty());
        assert!(s.quantile(0.5).is_nan());
        assert!(s.min().is_nan() && s.max().is_nan() && s.mean().is_nan());
        assert!(s.cdf_points(10).is_empty());
    }

    #[test]
    fn merge_matches_single_stream() {
        let vals: Vec<f64> = (1..500).map(|i| (i as f64) * 0.37).collect();
        let mut whole = QuantileSketch::new();
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        for (i, &v) in vals.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        assert_eq!(a.sum().to_bits(), whole.sum().to_bits());
        assert_eq!(a.nonzero_buckets(), whole.nonzero_buckets());
    }

    #[test]
    fn cdf_points_monotone_and_close_at_one() {
        let mut s = QuantileSketch::new();
        for i in 0..1000u32 {
            s.record(1.0 + (i as f64 * 37.0) % 101.0);
        }
        let pts = s.cdf_points(20);
        assert!(pts.len() <= 21);
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0, "values monotone: {pts:?}");
            assert!(w[1].1 >= w[0].1, "fractions monotone");
        }
        // lint: allow(float-fastmath) the closing CDF fraction is exactly count/count == 1.0 by construction
        assert!(pts.last().is_some_and(|&(v, f)| f == 1.0 && v == s.max()));
    }

    #[test]
    fn json_roundtrip_preserves_quantiles() {
        let mut s = QuantileSketch::new();
        for i in 0..300u32 {
            s.record(0.25 + i as f64 * 1.5);
        }
        s.record(0.0);
        let text = format!("{{{}}}", s.to_json_fragment());
        let back = QuantileSketch::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.count(), s.count());
        assert_eq!(back.low_count(), s.low_count());
        assert_eq!(back.min().to_bits(), s.min().to_bits());
        assert_eq!(back.max().to_bits(), s.max().to_bits());
        assert_eq!(back.nonzero_buckets(), s.nonzero_buckets());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(back.quantile(q).to_bits(), s.quantile(q).to_bits());
        }
        // Display round-trips f64 exactly, so even the sum survives.
        assert_eq!(back.sum().to_bits(), s.sum().to_bits());
    }

    #[test]
    fn fixed_sum_is_order_independent() {
        let vals: Vec<f64> = (0..2000).map(|i| 0.001 + (i as f64) * 0.013).collect();
        let mut fwd = FixedSum::new();
        for &v in &vals {
            fwd.add(v);
        }
        let mut rev = FixedSum::new();
        for &v in vals.iter().rev() {
            rev.add(v);
        }
        // Chunked merge in a third order.
        let mut chunks = FixedSum::new();
        for chunk in vals.chunks(7) {
            let mut part = FixedSum::new();
            for &v in chunk {
                part.add(v);
            }
            chunks.merge(&part);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd, chunks);
        let exact: f64 = vals.iter().sum();
        assert!((fwd.value() - exact).abs() <= exact.abs() * 1e-12);
    }

    #[test]
    fn json_fsum_restores_exact_accumulator() {
        // Large accumulators lose sub-grid residue through the decimal
        // `sum` field; the `fsum` string must restore them bit-exactly
        // so shard merges of partial sketches stay associative.
        let mut s = QuantileSketch::new();
        for i in 0..5000u32 {
            s.record(1e9 + i as f64 * 0.0137);
        }
        let text = format!("{{{}}}", s.to_json_fragment());
        let back = QuantileSketch::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.sum_fixed(), s.sum_fixed());
        assert_eq!(back.sum_fixed().raw(), s.sum_fixed().raw());
        // The legacy path (no fsum) still parses, with decimal fidelity.
        let legacy = text.replacen(&format!(",\"fsum\":\"{}\"", s.sum_fixed().raw()), "", 1);
        assert_ne!(legacy, text);
        let old = QuantileSketch::from_json(&Json::parse(&legacy).unwrap()).unwrap();
        assert_eq!(old.count(), s.count());
        // A malformed fsum is a hard error, not a silent fallback.
        let bad = text.replacen(&format!("\"{}\"", s.sum_fixed().raw()), "\"12x\"", 1);
        assert!(QuantileSketch::from_json(&Json::parse(&bad).unwrap()).is_err());
    }

    #[test]
    fn from_raw_parts_roundtrips_and_rejects_corruption() {
        let mut s = QuantileSketch::new();
        s.record(0.0);
        for i in 0..400u32 {
            s.record(0.5 + i as f64 * 2.3);
        }
        let parts = s.nonzero_buckets();
        let back = QuantileSketch::from_raw_parts(
            s.count(),
            s.low_count(),
            s.sum_fixed(),
            s.min(),
            s.max(),
            &parts,
        )
        .unwrap();
        assert_eq!(back.count(), s.count());
        assert_eq!(back.min().to_bits(), s.min().to_bits());
        assert_eq!(back.max().to_bits(), s.max().to_bits());
        assert_eq!(back.sum_fixed(), s.sum_fixed());
        assert_eq!(back.nonzero_buckets(), s.nonzero_buckets());
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(back.quantile(q).to_bits(), s.quantile(q).to_bits());
        }

        // Empty sketch: fine, but nonzero low/buckets are rejected.
        let zero = FixedSum::new();
        assert!(QuantileSketch::from_raw_parts(0, 0, zero, f64::NAN, f64::NAN, &[]).is_ok());
        assert!(QuantileSketch::from_raw_parts(0, 1, zero, f64::NAN, f64::NAN, &[]).is_err());
        // Occupancy must reconcile with count.
        assert!(QuantileSketch::from_raw_parts(
            s.count() + 1,
            s.low_count(),
            zero,
            0.0,
            1.0,
            &parts
        )
        .is_err());
        // Non-finite or inverted min/max.
        assert!(QuantileSketch::from_raw_parts(1, 1, zero, f64::NAN, 1.0, &[]).is_err());
        assert!(QuantileSketch::from_raw_parts(1, 1, zero, 2.0, 1.0, &[]).is_err());
        // Out-of-range / non-increasing bucket indices.
        assert!(QuantileSketch::from_raw_parts(1, 0, zero, 1.0, 1.0, &[(NUM_BUCKETS, 1)]).is_err());
        assert!(QuantileSketch::from_raw_parts(4, 0, zero, 1.0, 2.0, &[(7, 2), (7, 2)]).is_err());
    }

    #[test]
    fn fixed_sum_raw_roundtrip_is_exact() {
        let mut s = FixedSum::new();
        s.add(1.0e12);
        s.add(-0.625);
        s.add(3.0e-20);
        let back = FixedSum::from_raw(s.raw());
        assert_eq!(back, s);
        assert_eq!(back.value().to_bits(), s.value().to_bits());
    }

    #[test]
    fn fixed_sum_handles_signs_and_ignores_non_finite() {
        let mut s = FixedSum::new();
        s.add(5.0);
        s.add(-3.0);
        s.add(f64::NAN);
        s.add(f64::INFINITY);
        assert_eq!(s.value(), 2.0);
        assert!(!s.is_zero());
    }
}
