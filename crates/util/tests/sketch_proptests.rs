//! Property tests for `leo_util::sketch` on the in-tree `check` harness
//! (referenced by the module docs of `crates/util/src/sketch.rs`).
//!
//! The two load-bearing guarantees of the streaming telemetry pipeline:
//!
//! 1. **Merge is exact and associative** — folding per-chunk sketches in
//!    any grouping (and any order) produces the same sketch as a single
//!    sequential stream, so `sweep_fold` results cannot depend on thread
//!    count.
//! 2. **Rank error is bounded** — any quantile read off a sketch is
//!    within `QuantileSketch::RELATIVE_ERROR` (1/64, relative) of the
//!    exact order statistic of the recorded samples.

use leo_util::check::{check, Gen};
use leo_util::sketch::{FixedSum, QuantileSketch, MIN_TRACKABLE};
use leo_util::telemetry::Json;
use leo_util::{check_assert, check_assert_eq, check_assume};

/// A positive sample spanning ~12 decades, always comfortably above the
/// sketch's underflow threshold.
fn positive_sample(g: &mut Gen) -> f64 {
    let mantissa = g.f64(0.1..10.0);
    let exponent = g.u32(0..13) as i32 - 6;
    mantissa * 10f64.powi(exponent)
}

/// A sample that may also be zero, negative, or sub-trackable (all of
/// which land in the underflow `low` count).
fn any_sample(g: &mut Gen) -> f64 {
    match g.u32(0..10) {
        0 => 0.0,
        1 => -positive_sample(g),
        2 => MIN_TRACKABLE / 2.0,
        _ => positive_sample(g),
    }
}

fn sketch_of(vals: &[f64]) -> QuantileSketch {
    let mut s = QuantileSketch::new();
    for &v in vals {
        s.record(v);
    }
    s
}

/// Serialized fragments are bit-exact (count, low, sum, min, max, every
/// bucket), so string equality is the strongest possible sketch equality.
fn frag(s: &QuantileSketch) -> String {
    s.to_json_fragment()
}

#[test]
fn merge_is_associative_and_matches_single_stream() {
    check("sketch_merge_associative", |g| {
        let a = g.vec(0..40, any_sample);
        let b = g.vec(0..40, any_sample);
        let c = g.vec(0..40, any_sample);
        let whole: Vec<f64> = a.iter().chain(&b).chain(&c).copied().collect();

        // (a ∪ b) ∪ c
        let mut left = sketch_of(&a);
        left.merge(&sketch_of(&b));
        left.merge(&sketch_of(&c));
        // a ∪ (b ∪ c)
        let mut right_tail = sketch_of(&b);
        right_tail.merge(&sketch_of(&c));
        let mut right = sketch_of(&a);
        right.merge(&right_tail);

        check_assert_eq!(frag(&left), frag(&right));
        check_assert_eq!(frag(&left), frag(&sketch_of(&whole)));
        Ok(())
    });
}

#[test]
fn merge_commutes_on_distribution() {
    // min/max/count/low/buckets are fully order-independent; the fixed-
    // point sum makes even `sum` exact under reordering.
    check("sketch_merge_commutes", |g| {
        let a = g.vec(1..50, any_sample);
        let b = g.vec(1..50, any_sample);
        let mut ab = sketch_of(&a);
        ab.merge(&sketch_of(&b));
        let mut ba = sketch_of(&b);
        ba.merge(&sketch_of(&a));
        check_assert_eq!(frag(&ab), frag(&ba));
        Ok(())
    });
}

#[test]
fn quantiles_stay_within_rank_error_bound() {
    check("sketch_rank_error_bound", |g| {
        let mut vals = g.vec(1..300, positive_sample);
        let q = g.f64(0.0..1.0);
        let s = sketch_of(&vals);
        vals.sort_by(f64::total_cmp);

        let n = vals.len();
        let rank = ((q * n as f64).ceil() as usize).max(1) - 1;
        let truth = vals[rank];
        let est = s.quantile(q);
        check_assert!(
            (est - truth).abs() <= truth * QuantileSketch::RELATIVE_ERROR,
            "n={n} q={q}: est {est} vs exact {truth}"
        );
        // Exact invariants, not just bounded ones.
        check_assert_eq!(s.count(), n as u64);
        check_assert_eq!(s.min().to_bits(), vals[0].to_bits());
        check_assert_eq!(s.max().to_bits(), vals[n - 1].to_bits());
        Ok(())
    });
}

#[test]
fn merged_quantiles_match_sequential_sketch_exactly() {
    // Split a stream at an arbitrary point: the merged sketch must give
    // bit-identical quantiles to the sequential sketch (this is the
    // thread-count-invariance guarantee of the streaming drivers).
    check("sketch_split_invariant_quantiles", |g| {
        let vals = g.vec(2..200, positive_sample);
        let cut = g.usize(1..vals.len());
        let mut split = sketch_of(&vals[..cut]);
        split.merge(&sketch_of(&vals[cut..]));
        let seq = sketch_of(&vals);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            check_assert_eq!(
                split.quantile(q).to_bits(),
                seq.quantile(q).to_bits(),
                "q={q}"
            );
        }
        Ok(())
    });
}

#[test]
fn json_roundtrip_is_lossless() {
    check("sketch_json_roundtrip", |g| {
        let vals = g.vec(0..60, any_sample);
        let s = sketch_of(&vals);
        let json = format!("{{{}}}", s.to_json_fragment());
        let parsed = Json::parse(&json).map_err(leo_util::check::CaseError::fail)?;
        let back = QuantileSketch::from_json(&parsed).map_err(leo_util::check::CaseError::fail)?;
        check_assert_eq!(frag(&s), frag(&back));
        Ok(())
    });
}

#[test]
fn fixed_sum_is_order_and_split_invariant() {
    check("fixed_sum_invariance", |g| {
        let vals = g.vec(1..100, |g| {
            let v = positive_sample(g);
            if g.bool() {
                -v
            } else {
                v
            }
        });
        let mut forward = FixedSum::new();
        for &v in &vals {
            forward.add(v);
        }
        let mut reverse = FixedSum::new();
        for &v in vals.iter().rev() {
            reverse.add(v);
        }
        let cut = g.usize(0..vals.len());
        let mut split = FixedSum::new();
        for &v in &vals[..cut] {
            split.add(v);
        }
        let mut tail = FixedSum::new();
        for &v in &vals[cut..] {
            tail.add(v);
        }
        split.merge(&tail);
        check_assert_eq!(forward.value().to_bits(), reverse.value().to_bits());
        check_assert_eq!(forward.value().to_bits(), split.value().to_bits());
        Ok(())
    });
}

#[test]
fn cdf_points_are_monotone_and_consistent_with_quantiles() {
    check("sketch_cdf_monotone", |g| {
        let vals = g.vec(1..150, positive_sample);
        let s = sketch_of(&vals);
        let pts = s.cdf_points(50);
        check_assume!(!pts.is_empty());
        for w in pts.windows(2) {
            check_assert!(w[0].0 <= w[1].0, "values must be nondecreasing");
            check_assert!(w[0].1 <= w[1].1, "fractions must be nondecreasing");
        }
        let last = pts[pts.len() - 1];
        check_assert_eq!(last.1.to_bits(), 1.0f64.to_bits());
        check_assert!(last.0 >= s.max() * (1.0 - QuantileSketch::RELATIVE_ERROR));
        Ok(())
    });
}

#[test]
fn boundary_quantiles_are_exact_min_and_max() {
    // Regression: quantile(0)/quantile(1) used to return the (clamped)
    // log-bucket representative of the extreme sample's bucket — up to
    // ~1% off the exact tracked min/max the sketch already stores. The
    // boundaries must agree *bitwise* with min()/max().
    check("sketch_boundary_quantiles_exact", |g| {
        let vals = g.vec(1..150, positive_sample);
        let s = sketch_of(&vals);
        check_assert_eq!(
            s.quantile(0.0).to_bits(),
            s.min().to_bits(),
            "quantile(0) vs exact min"
        );
        check_assert_eq!(
            s.quantile(1.0).to_bits(),
            s.max().to_bits(),
            "quantile(1) vs exact max"
        );
        // And they bound every interior quantile.
        for q in [0.01, 0.25, 0.5, 0.75, 0.99] {
            let v = s.quantile(q);
            check_assert!(v >= s.min() && v <= s.max(), "q={q} inside [min, max]");
        }
        Ok(())
    });
}

#[test]
fn boundary_quantiles_single_sample_and_all_equal() {
    // 1.0 sits exactly on a 2^(k/32) bucket boundary, so its bucket
    // representative differs from the sample — the sharpest version of
    // the boundary-quantile regression.
    let one = sketch_of(&[1.0]);
    for q in [0.0, 1.0] {
        assert_eq!(one.quantile(q).to_bits(), 1.0f64.to_bits(), "single, q={q}");
    }
    let equal = sketch_of(&[3.7; 25]);
    assert_eq!(equal.quantile(0.0).to_bits(), 3.7f64.to_bits());
    assert_eq!(equal.quantile(1.0).to_bits(), 3.7f64.to_bits());
    // Out-of-range q clamps to the exact boundaries too.
    assert_eq!(equal.quantile(-0.5).to_bits(), 3.7f64.to_bits());
    assert_eq!(equal.quantile(1.5).to_bits(), 3.7f64.to_bits());
}
