// Fixture: bare float equality in test code (presented as a tests/
// file, so the whole file is test code).

fn check(x: f64, p: f64) {
    assert!(x == 0.5);
    assert!(p != -1.0);
}
