// Fixture: exactness intent made explicit — bit comparison (assert_eq!
// is equally fine; it prints both operands on failure).

fn check(x: f64, n: u32) {
    assert!(x.to_bits() == 0.5f64.to_bits());
    assert!(n == 3);
}
