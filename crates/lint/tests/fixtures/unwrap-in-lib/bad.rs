// Fixture: panicking library code. Presented as Lib.

pub fn first_city(cities: &[City]) -> &City {
    cities.first().unwrap()
}

pub fn parse_alt(s: &str) -> f64 {
    s.parse().expect("altitude must be numeric")
}
