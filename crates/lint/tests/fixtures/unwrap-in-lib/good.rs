// Fixture: contextful errors instead of panics; the same code is also
// fine in a bin (kind-scoping is part of the rule's contract, exercised
// by the corpus test presenting this file as both kinds).

pub fn first_city(cities: &[City]) -> Result<&City, String> {
    cities.first().ok_or_else(|| "empty city list".to_string())
}

pub fn parse_alt(s: &str) -> Result<f64, String> {
    s.parse().map_err(|e| format!("altitude {s:?}: {e}"))
}
