// Fixture: library code reading the wall clock outside the allowlist.
// Presented to the linter as crates/x/src/lib.rs (Lib).

pub fn timestamped_result() -> (f64, u64) {
    let t0 = Instant::now();
    let stamp = SystemTime::now();
    let _ = stamp;
    (compute(), t0.elapsed().as_nanos() as u64)
}

fn compute() -> f64 {
    42.0
}
