// Fixture: deterministic library code — timing belongs to telemetry
// spans, which live in the allowlisted files.

pub fn pure_result(input: f64) -> f64 {
    let _span = span!("compute", input = input);
    input * 2.0
}
