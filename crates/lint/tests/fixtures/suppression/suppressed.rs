// Fixture: a violation silenced by an allow *with a reason* — the
// suppression applies and is counted, leaving zero diagnostics.

pub fn head(xs: &[u32]) -> u32 {
    // lint: allow(unwrap-in-lib) caller guarantees non-empty input per the public contract
    *xs.first().unwrap()
}
