// Fixture: an allow without a reason — it must NOT suppress, and is
// itself a `bare-allow` diagnostic.

pub fn head(xs: &[u32]) -> u32 {
    *xs.first().unwrap() // lint: allow(unwrap-in-lib)
}
