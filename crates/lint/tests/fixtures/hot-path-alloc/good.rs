// Fixture: a hot path working entirely in the pre-allocated workspace —
// and an unannotated sibling that may allocate freely.

// lint: hot-path
pub fn relax_all(ws: &mut Ws, g: &Graph) {
    for e in 0..g.num_edges() {
        ws.dist[e] = ws.dist[e].min(g.weight(e));
    }
}

pub fn setup(g: &Graph) -> Vec<f64> {
    let mut dist = Vec::with_capacity(g.num_edges());
    dist.resize(g.num_edges(), 0.0);
    dist
}
