// Fixture: allocation inside an annotated hot path.

// lint: hot-path
pub fn relax_all(ws: &mut Ws, g: &Graph) -> Vec<f64> {
    let mut extra = Vec::new();
    for e in 0..g.num_edges() {
        extra.push(g.weight(e));
    }
    let copy = extra.to_vec();
    let label = format!("{} edges", copy.len());
    drop(label);
    copy
}
