// Fixture: library code writing to stdio.

pub fn report(x: f64) {
    println!("value = {x}");
    eprintln!("warning: {x}");
    let _ = dbg!(x);
}
