// Fixture: library-side reporting through telemetry instead of stdio.

pub fn report(x: f64) {
    diag!("value", x = x);
}
