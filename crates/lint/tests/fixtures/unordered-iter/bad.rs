// Fixture: hash-order iteration on a result path. Presented as
// crates/core/src/fixture.rs (inside the configured result-path
// prefixes).

pub fn emit_rows(rows: &HashMap<u32, f64>, w: &mut CsvWriter) {
    for (k, v) in rows.iter() {
        w.row(&[k.to_string(), v.to_string()]);
    }
}

pub fn drain_seen() {
    let mut seen: HashSet<u32> = HashSet::new();
    seen.insert(3);
    for s in &seen {
        emit(*s);
    }
}
