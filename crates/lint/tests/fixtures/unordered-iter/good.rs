// Fixture: sorted-before-emitting — the sanctioned shape for result
// paths. Presented as crates/core/src/fixture.rs.

pub fn emit_rows(rows: &HashMap<u32, f64>, w: &mut CsvWriter) {
    let mut keys: Vec<u32> = Vec::new();
    rows.len();
    for k in 0..10u32 {
        if rows.contains_key(&k) {
            keys.push(k);
        }
    }
    keys.sort_unstable();
    for k in keys {
        w.row(&[k.to_string(), rows[&k].to_string()]);
    }
}
