// stale-allow: both forms of a suppression that no longer suppresses
// anything — a trailing allow on a clean line and a standalone allow
// above clean code.
pub fn double(x: u32) -> u32 {
    x * 2 // lint: allow(wall-clock) left behind after the timing call was removed
}

// lint: allow(unwrap-in-lib) the unwrap below was refactored away
pub fn triple(x: u32) -> u32 {
    x * 3
}
