// stale-allow good case: the allow genuinely suppresses a finding, so
// the audit keeps quiet (checked by a dedicated corpus test — a used
// allow is counted as a suppression, never as stale).
pub fn first(v: &[u32]) -> u32 {
    // lint: allow(unwrap-in-lib) caller contract: slice is non-empty
    *v.first().unwrap()
}
