// hot-path-alloc (workspace half): the default config roots include
// `SptWorkspace::apply`; an allocation two private hops below it must
// be reported with the chain from the root.
pub struct SptWorkspace;

impl SptWorkspace {
    pub fn apply(&mut self) {
        relax();
    }
}

fn relax() {
    settle();
}

fn settle() {
    let scratch: Vec<u32> = Vec::new();
    drop(scratch);
}
