// hot-path-reach good case: the same call shape, but the leaf only
// pushes into a caller-recycled buffer — the sanctioned idiom.
pub struct SptWorkspace;

impl SptWorkspace {
    pub fn apply(&mut self, buf: &mut Vec<u32>) {
        relax(buf);
    }
}

fn relax(buf: &mut Vec<u32>) {
    settle(buf);
}

fn settle(buf: &mut Vec<u32>) {
    buf.push(1);
}
