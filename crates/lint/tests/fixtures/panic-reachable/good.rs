// panic-reachable good case: the only panic sites are in a private fn
// no public API reaches, and in test code — both out of scope.
pub fn api(x: u32) -> u32 {
    x * 2
}

fn orphan() {
    panic!("kept for a bench harness; no public path reaches this");
}

#[cfg(test)]
mod tests {
    #[test]
    fn asserts_are_fine_in_tests() {
        assert_eq!(super::api(2), 4);
    }
}
