// panic-reachable: a panic three calls deep behind a public API. The
// diagnostic must land on the panic line and name the full chain.
pub fn api(x: u32) -> u32 {
    mid(x)
}

fn mid(x: u32) -> u32 {
    deep(x)
}

fn deep(x: u32) -> u32 {
    if x > 100 {
        panic!("x out of range");
    }
    x * 2
}
