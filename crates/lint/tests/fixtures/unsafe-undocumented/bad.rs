// Fixture: unsafe with no written invariant.

pub fn first_byte(b: &[u8]) -> u8 {
    unsafe { *b.get_unchecked(0) }
}
