// Fixture: unsafe with its invariant written where the block is, in a
// SAFETY comment that may span several lines.

pub fn first_byte(b: &[u8]) -> u8 {
    // SAFETY: callers pass non-empty slices only — enforced by the
    // assert in the public wrapper — so index 0 is in bounds.
    unsafe { *b.get_unchecked(0) }
}
