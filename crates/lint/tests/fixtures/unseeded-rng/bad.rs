// Fixture: entropy-seeded randomness — unreplayable runs.

pub fn jitter() -> f64 {
    let mut rng = thread_rng();
    rng.gen_range(0.0..1.0)
}

pub fn other() -> u64 {
    StdRng::from_entropy().next_u64()
}
