// Fixture: seed-derived randomness via the workspace RNG.

pub fn jitter(seed: u64) -> f64 {
    let mut rng = Rng64::seed_from_u64(seed);
    rng.next_f64()
}
