//! Fixture corpus: one good/bad file pair per rule, run through the
//! library API with the file kind forced (fixtures live under `tests/`
//! on disk but pose as lib/bin/test files).

use leo_lint::config::LintConfig;
use leo_lint::source::FileKind;
use leo_lint::{FileOutcome, Linter};

fn fixture(rel: &str) -> String {
    let path = format!("{}/tests/fixtures/{rel}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

fn check(rel: &str, presented_path: &str, kind: FileKind) -> FileOutcome {
    Linter::new(LintConfig::default()).check_source(presented_path, &fixture(rel), Some(kind))
}

/// (rule, fixture dir, presented path, forced kind, expected bad hits)
const CASES: &[(&str, &str, &str, FileKind, usize)] = &[
    (
        "wall-clock",
        "wall-clock",
        "crates/x/src/lib.rs",
        FileKind::Lib,
        2,
    ),
    (
        "unordered-iter",
        "unordered-iter",
        "crates/core/src/fixture.rs",
        FileKind::Lib,
        2,
    ),
    (
        "unseeded-rng",
        "unseeded-rng",
        "crates/x/src/lib.rs",
        FileKind::Lib,
        3,
    ),
    (
        "unwrap-in-lib",
        "unwrap-in-lib",
        "crates/x/src/lib.rs",
        FileKind::Lib,
        2,
    ),
    (
        "hot-path-alloc",
        "hot-path-alloc",
        "crates/graph/src/fixture.rs",
        FileKind::Lib,
        3,
    ),
    (
        "unsafe-undocumented",
        "unsafe-undocumented",
        "crates/x/src/lib.rs",
        FileKind::Lib,
        1,
    ),
    (
        "float-fastmath",
        "float-fastmath",
        "crates/x/tests/fixture.rs",
        FileKind::Test,
        2,
    ),
    (
        "print-in-lib",
        "print-in-lib",
        "crates/x/src/lib.rs",
        FileKind::Lib,
        3,
    ),
    (
        "panic-reachable",
        "panic-reachable",
        "crates/x/src/lib.rs",
        FileKind::Lib,
        1,
    ),
    // The workspace half of hot-path-alloc: the fixture defines an
    // `SptWorkspace::apply`, which the default config lists as a root.
    (
        "hot-path-alloc",
        "hot-path-reach",
        "crates/x/src/lib.rs",
        FileKind::Lib,
        1,
    ),
];

#[test]
fn every_rule_fires_on_its_bad_fixture() {
    for &(rule, dir, path, kind, expected) in CASES {
        let out = check(&format!("{dir}/bad.rs"), path, kind);
        let hits = out.diagnostics.iter().filter(|d| d.rule == rule).count();
        assert_eq!(
            hits, expected,
            "rule {rule}: expected {expected} hits on bad.rs, got {hits}: {:#?}",
            out.diagnostics
        );
        // The bad fixture must not trip unrelated rules — diagnostics
        // stay attributable.
        assert!(
            out.diagnostics.iter().all(|d| d.rule == rule),
            "rule {rule}: bad.rs tripped other rules: {:#?}",
            out.diagnostics
        );
    }
}

#[test]
fn every_good_fixture_is_clean() {
    for &(rule, dir, path, kind, _) in CASES {
        let out = check(&format!("{dir}/good.rs"), path, kind);
        assert!(
            out.diagnostics.is_empty(),
            "rule {rule}: good.rs should be clean, got {:#?}",
            out.diagnostics
        );
        assert!(
            out.suppressed.is_empty(),
            "rule {rule}: good.rs needs no allows"
        );
    }
}

#[test]
fn kind_scoping_is_part_of_the_contract() {
    // unwrap-in-lib's bad fixture is fine when presented as a bin…
    let out = check(
        "unwrap-in-lib/bad.rs",
        "crates/x/src/bin/t.rs",
        FileKind::Bin,
    );
    assert!(out.diagnostics.is_empty());
    // …and float-fastmath's bad fixture is out of scope outside tests.
    let out = check(
        "float-fastmath/bad.rs",
        "crates/x/src/lib.rs",
        FileKind::Lib,
    );
    assert!(out.diagnostics.is_empty());
    // wall-clock is exempt in benches (timing is their job).
    let out = check(
        "wall-clock/bad.rs",
        "crates/x/benches/b.rs",
        FileKind::Bench,
    );
    assert!(out.diagnostics.is_empty());
}

#[test]
fn reasoned_allow_suppresses_and_is_counted() {
    let out = check(
        "suppression/suppressed.rs",
        "crates/x/src/lib.rs",
        FileKind::Lib,
    );
    assert!(out.diagnostics.is_empty(), "{:#?}", out.diagnostics);
    assert_eq!(out.suppressed.len(), 1);
    assert_eq!(out.suppressed[0].0, "unwrap-in-lib");
}

#[test]
fn reachability_diagnostics_carry_multi_hop_chains() {
    let out = check(
        "panic-reachable/bad.rs",
        "crates/x/src/lib.rs",
        FileKind::Lib,
    );
    assert!(
        out.diagnostics[0].msg.contains("api → mid → deep"),
        "{}",
        out.diagnostics[0].msg
    );
    let out = check(
        "hot-path-reach/bad.rs",
        "crates/x/src/lib.rs",
        FileKind::Lib,
    );
    assert!(
        out.diagnostics[0]
            .msg
            .contains("SptWorkspace::apply → relax → settle"),
        "{}",
        out.diagnostics[0].msg
    );
}

#[test]
fn stale_allows_are_errors_in_both_comment_positions() {
    let out = check("stale-allow/bad.rs", "crates/x/src/lib.rs", FileKind::Lib);
    let rules: Vec<&str> = out.diagnostics.iter().map(|d| d.rule).collect();
    assert_eq!(
        rules,
        ["stale-allow", "stale-allow"],
        "{:#?}",
        out.diagnostics
    );
    assert_eq!(out.diagnostics[0].line, 5, "trailing form");
    assert_eq!(out.diagnostics[1].line, 8, "standalone form");
    assert!(out.suppressed.is_empty());
}

#[test]
fn used_allow_is_a_suppression_not_a_stale_allow() {
    let out = check("stale-allow/good.rs", "crates/x/src/lib.rs", FileKind::Lib);
    assert!(out.diagnostics.is_empty(), "{:#?}", out.diagnostics);
    assert_eq!(out.suppressed.len(), 1);
    assert_eq!(out.suppressed[0].0, "unwrap-in-lib");
}

#[test]
fn bare_allow_is_flagged_and_does_not_suppress() {
    let out = check("suppression/bare.rs", "crates/x/src/lib.rs", FileKind::Lib);
    let rules: Vec<&str> = out.diagnostics.iter().map(|d| d.rule).collect();
    assert!(rules.contains(&"bare-allow"), "{rules:?}");
    assert!(rules.contains(&"unwrap-in-lib"), "{rules:?}");
    assert!(out.suppressed.is_empty());
}
