//! End-to-end tests of the `leo-lint` binary: exit codes, output
//! forms, suppression accounting, and the real workspace staying clean
//! under `--deny`.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_leo-lint"))
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

fn run(args: &[&str]) -> Output {
    let mut cmd = bin();
    cmd.args(args);
    cmd.output().expect("spawn leo-lint")
}

/// A throwaway tree with one violating lib file.
fn bad_tree(name: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let src = root.join("crates/x/src");
    std::fs::create_dir_all(&src).expect("mkdir");
    std::fs::write(
        src.join("lib.rs"),
        "pub fn f(v: &[u32]) -> u32 {\n    println!(\"{}\", v.len());\n    *v.first().unwrap()\n}\n",
    )
    .expect("write fixture");
    root
}

#[test]
fn findings_exit_zero_without_deny_and_one_with() {
    let root = bad_tree("cli_exit_codes");
    let rootarg = root.to_str().expect("utf8 tmpdir");

    let out = run(&["--root", rootarg]);
    assert!(out.status.success(), "no --deny must exit 0");
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        text.contains("crates/x/src/lib.rs:2: [print-in-lib]"),
        "{text}"
    );
    assert!(
        text.contains("crates/x/src/lib.rs:3: [unwrap-in-lib]"),
        "{text}"
    );
    assert!(text.contains("checked 1 files: 2 diagnostics"), "{text}");

    let out = run(&["--root", rootarg, "--deny"]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "--deny with findings must exit 1"
    );
}

#[test]
fn jsonl_output_parses_with_the_shared_parser() {
    let root = bad_tree("cli_jsonl");
    let out = run(&["--root", root.to_str().expect("utf8"), "--jsonl"]);
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "{text}"); // 2 diagnostics + summary
    for l in &lines {
        let v = leo_util::telemetry::Json::parse(l).expect("valid JSONL");
        let ty = v.get("type").and_then(|t| t.as_str()).expect("type field");
        assert!(ty == "diagnostic" || ty == "lint_summary");
    }
    let summary = leo_util::telemetry::Json::parse(lines[2]).expect("summary");
    assert_eq!(
        summary.get("diagnostics").and_then(|n| n.as_num()),
        Some(2.0)
    );
}

#[test]
fn suppression_counting_reaches_the_cli_summary() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("cli_suppression");
    let src = root.join("crates/x/src");
    std::fs::create_dir_all(&src).expect("mkdir");
    std::fs::write(
        src.join("lib.rs"),
        "pub fn f(v: &[u32]) -> u32 {\n    // lint: allow(unwrap-in-lib) caller contract: non-empty\n    *v.first().unwrap()\n}\n",
    )
    .expect("write fixture");

    let out = run(&["--root", root.to_str().expect("utf8"), "--deny"]);
    assert!(out.status.success(), "suppressed finding must pass --deny");
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        text.contains("suppressions applied: 1 (unwrap-in-lib×1)"),
        "{text}"
    );
    assert!(text.contains("checked 1 files: 0 diagnostics"), "{text}");
}

#[test]
fn unknown_flag_and_bad_root_exit_two() {
    let out = run(&["--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["--root", "/nonexistent/definitely/missing"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn rules_listing_names_local_workspace_and_audit_rules() {
    let out = run(&["--rules"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    for rule in [
        "wall-clock",
        "unordered-iter",
        "unseeded-rng",
        "unwrap-in-lib",
        "hot-path-alloc",
        "unsafe-undocumented",
        "float-fastmath",
        "print-in-lib",
        "panic-reachable",
        "stale-allow",
    ] {
        assert!(text.contains(rule), "missing {rule} in:\n{text}");
    }
    assert!(text.contains("[workspace]"), "{text}");
    assert!(text.contains("[audit]"), "{text}");
}

/// A tree exercising all three v2 rules: a panic chain behind a public
/// API, an allocation below a default hot-path root, and a stale allow.
fn v2_tree(name: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let src = root.join("crates/x/src");
    std::fs::create_dir_all(&src).expect("mkdir");
    std::fs::write(
        src.join("lib.rs"),
        "pub fn api(x: u32) -> u32 { mid(x) }\n\
         fn mid(x: u32) -> u32 { deep(x) }\n\
         fn deep(x: u32) -> u32 { if x > 9 { panic!(\"x\"); } x }\n",
    )
    .expect("write lib.rs");
    std::fs::write(
        src.join("spt.rs"),
        "pub struct SptWorkspace;\n\
         impl SptWorkspace { pub fn apply(&mut self) { relax(); } }\n\
         fn relax() { let v: Vec<u32> = Vec::new(); drop(v); }\n",
    )
    .expect("write spt.rs");
    std::fs::write(
        src.join("stale.rs"),
        "pub fn double(x: u32) -> u32 {\n    x * 2 // lint: allow(wall-clock) timing call was removed\n}\n",
    )
    .expect("write stale.rs");
    root
}

#[test]
fn v2_rules_reach_jsonl_with_chains() {
    let root = v2_tree("cli_v2_jsonl");
    let out = run(&["--root", root.to_str().expect("utf8"), "--jsonl"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    let mut rules = Vec::new();
    for l in text.lines() {
        let v = leo_util::telemetry::Json::parse(l).expect("valid JSONL");
        if v.get("type").and_then(|t| t.as_str()) == Some("diagnostic") {
            let rule = v
                .get("rule")
                .and_then(|r| r.as_str())
                .expect("rule")
                .to_string();
            let msg = v
                .get("msg")
                .and_then(|m| m.as_str())
                .expect("msg")
                .to_string();
            match rule.as_str() {
                "panic-reachable" => {
                    assert!(msg.contains("api → mid → deep"), "{msg}");
                }
                "hot-path-alloc" => {
                    assert!(msg.contains("SptWorkspace::apply → relax"), "{msg}");
                }
                _ => {}
            }
            rules.push(rule);
        }
    }
    rules.sort();
    assert_eq!(
        rules,
        ["hot-path-alloc", "panic-reachable", "stale-allow"],
        "{text}"
    );
}

/// Satellite contract: the parallel per-file pass must not leak thread
/// count into output — byte-identical at 1 and 8 workers.
#[test]
fn output_is_byte_identical_across_thread_counts() {
    let root = v2_tree("cli_threads");
    let rootarg = root.to_str().expect("utf8");
    let one = run(&["--root", rootarg, "--threads", "1"]);
    let eight = run(&["--root", rootarg, "--threads", "8"]);
    assert_eq!(one.status.code(), eight.status.code());
    assert_eq!(one.stdout, eight.stdout, "thread count leaked into output");
    let one_j = run(&["--root", rootarg, "--threads", "1", "--jsonl"]);
    let eight_j = run(&["--root", rootarg, "--threads", "8", "--jsonl"]);
    assert_eq!(
        one_j.stdout, eight_j.stdout,
        "thread count leaked into JSONL"
    );
}

#[test]
fn graph_out_persists_the_symbol_graph() {
    let root = v2_tree("cli_graph_out");
    let graph_path = root.join("symgraph.jsonl");
    let out = run(&[
        "--root",
        root.to_str().expect("utf8"),
        "--graph-out",
        graph_path.to_str().expect("utf8"),
    ]);
    assert!(
        out.status.success() || out.status.code() == Some(0),
        "{out:?}"
    );
    let text = std::fs::read_to_string(&graph_path).expect("graph file written");
    let mut types = std::collections::BTreeSet::new();
    for l in text.lines() {
        let v = leo_util::telemetry::Json::parse(l).expect("valid graph JSONL");
        types.insert(
            v.get("type")
                .and_then(|t| t.as_str())
                .expect("type")
                .to_string(),
        );
    }
    assert!(types.contains("lint_symbol"), "{types:?}");
    assert!(types.contains("lint_edge"), "{types:?}");
    assert!(types.contains("lint_graph_summary"), "{types:?}");
    // The summary counts must match the emitted records.
    let summary = text
        .lines()
        .find(|l| l.contains("lint_graph_summary"))
        .expect("summary line");
    let v = leo_util::telemetry::Json::parse(summary).expect("summary json");
    let symbols = v.get("symbols").and_then(|n| n.as_num()).expect("symbols");
    let n_sym = text
        .lines()
        .filter(|l| l.contains("\"lint_symbol\""))
        .count();
    assert_eq!(symbols as usize, n_sym);
}

/// The acceptance criterion made executable: the real workspace passes
/// `--deny`, so CI's lint lane cannot rot silently.
#[test]
fn real_workspace_is_lint_clean_under_deny() {
    let root = workspace_root();
    let out = run(&["--root", root.to_str().expect("utf8 root"), "--deny"]);
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        out.status.success(),
        "workspace must be lint-clean under --deny:\n{text}"
    );
    assert!(text.contains("0 diagnostics"), "{text}");
}
