//! Lexer edge cases and properties, on the in-tree `check` harness.
//!
//! The item parser and every rule sit on `lexer::lex`, so its two
//! load-bearing guarantees get property coverage:
//!
//! 1. **Total**: `lex` never panics, on any input — including byte
//!    soup that is nowhere near valid Rust (unterminated literals,
//!    stray quotes, multi-byte UTF-8 in and around literals).
//! 2. **Spans are ordered**: `Tok::pos` is strictly increasing and
//!    in-bounds, and token line numbers are non-decreasing — the item
//!    parser's slicing and the diagnostics' line anchoring both lean
//!    on this.

use leo_lint::lexer::{lex, TokKind};
use leo_util::check::{check, Gen};
use leo_util::{check_assert, check_assert_eq};

fn toks(src: &str) -> Vec<(TokKind, String)> {
    lex(src)
        .toks
        .into_iter()
        .map(|t| (t.kind, t.text))
        .collect()
}

#[test]
fn raw_strings_with_hash_guards_swallow_quotes_and_hashes() {
    // Content contains `"` and `"#`; only the `"##` terminator ends it.
    let src = "let a = r##\"has \"quote\" and \"# inside\"##; done";
    let l = lex(src);
    assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    assert!(l.toks.iter().any(|t| t.text == "done"));
    assert!(!l.toks.iter().any(|t| t.text == "quote"));

    // Byte raw strings take the same path.
    let l = lex("let b = br#\"bytes \"q\" unwrap()\"#; tail");
    assert!(!l.toks.iter().any(|t| t.text == "unwrap"));
    assert!(l.toks.iter().any(|t| t.text == "tail"));
}

#[test]
fn deeply_nested_block_comments_balance() {
    let l = lex("/* 1 /* 2 /* 3 */ 2 */ 1 */ x /* /* */ */ y");
    let idents: Vec<&str> = l.toks.iter().map(|t| t.text.as_str()).collect();
    assert_eq!(idents, ["x", "y"]);
    // Unterminated nesting must not panic and must not emit tokens
    // from inside the comment.
    let l = lex("/* open /* deeper */ still open a b c");
    assert!(l.toks.is_empty());
}

#[test]
fn lifetimes_vs_char_literals_disambiguate() {
    // `'a` (lifetime) vs `'a'` (char) vs `'static` vs loop labels.
    let ts = toks("&'a str, 'a', &'static str, b'z', 'x: loop {}");
    let lifetimes: Vec<&str> = ts
        .iter()
        .filter(|t| t.0 == TokKind::Lifetime)
        .map(|t| t.1.as_str())
        .collect();
    assert_eq!(lifetimes, ["'a", "'static", "'x"], "{ts:?}");
    // `'a'` and the `z` in `b'z'` are char literals (the lexer keeps
    // `b` as an ident — close enough for rules, which never read byte
    // chars), and char content is dropped like string content.
    let chars = ts.iter().filter(|t| t.0 == TokKind::Char).count();
    assert_eq!(chars, 2, "{ts:?}");
    // An escaped quote inside a char literal does not end it early.
    let ts = toks("'\\'' x");
    assert_eq!(ts[0].0, TokKind::Char);
    assert!(ts.iter().any(|t| t.1 == "x"), "{ts:?}");
}

#[test]
fn macro_rules_bodies_lex_as_plain_tokens() {
    let src = "macro_rules! m {\n    ($x:expr, $($rest:tt)*) => {\n        $x.unwrap()\n    };\n}\nfn after() {}";
    let l = lex(src);
    // The body is token soup, not swallowed: `$`, the fragment
    // specifiers, and the `unwrap` ident all surface, and lexing
    // continues cleanly past the macro.
    assert!(l.toks.iter().any(|t| t.text == "$"));
    assert!(l.toks.iter().any(|t| t.text == "expr"));
    assert!(l.toks.iter().any(|t| t.text == "unwrap"));
    assert!(l.toks.iter().any(|t| t.text == "after"));
}

/// Fragments chosen to hit lexer mode switches: literal openers and
/// closers, comment markers, multi-byte UTF-8, and plain code.
const FRAGMENTS: &[&str] = &[
    "fn f() {}",
    "r#\"",
    "\"#",
    "r##\"x\"##",
    "\"",
    "\\\"",
    "'",
    "'a",
    "'a'",
    "b'q'",
    "b\"",
    "/*",
    "*/",
    "//",
    "///",
    "\n",
    "macro_rules! m { () => {} }",
    "0xff_u32",
    "1.5e-9",
    "0..=5",
    "x.0",
    "::<>",
    "..=",
    "->",
    "é∀🌍",
    "ident_é",
    "# ",
    "$crate",
];

fn random_source(g: &mut Gen) -> String {
    let n = g.usize(0..40);
    let mut s = String::new();
    for _ in 0..n {
        s.push_str(FRAGMENTS[g.usize(0..FRAGMENTS.len())]);
        if g.bool() {
            s.push(' ');
        }
    }
    s
}

#[test]
fn lexing_never_panics_and_spans_increase() {
    check("lexer_total_and_ordered", |g| {
        let src = random_source(g);
        // Totality: any panic here fails the case with the seed printed.
        let l = lex(&src);
        let mut prev_pos: Option<u32> = None;
        let mut prev_line = 0u32;
        for t in &l.toks {
            check_assert!(
                (t.pos as usize) < src.len(),
                "pos {} out of bounds for len {}",
                t.pos,
                src.len()
            );
            if let Some(p) = prev_pos {
                check_assert!(
                    t.pos > p,
                    "positions not strictly increasing: {} then {}",
                    p,
                    t.pos
                );
            }
            check_assert!(
                t.line >= prev_line,
                "line numbers went backwards: {} then {}",
                prev_line,
                t.line
            );
            check_assert!(t.line >= 1, "lines are 1-based");
            // Str/Char drop their content (rules never read it); all
            // other kinds must carry their exact source text.
            check_assert!(
                !t.text.is_empty() || matches!(t.kind, TokKind::Str | TokKind::Char),
                "empty text on a {:?} token",
                t.kind
            );
            prev_pos = Some(t.pos);
            prev_line = t.line;
        }
        // Lexing is deterministic: same input, same stream.
        let l2 = lex(&src);
        check_assert_eq!(l.toks.len(), l2.toks.len());
        Ok(())
    });
}
