//! `lint.toml` — per-rule path scoping in the workspace's hermetic
//! `key = value` config dialect (parsed with [`leo_util::config::KvDoc`],
//! not actual TOML; the name keeps the conventional spelling).
//!
//! ```text
//! [run]
//! exclude = crates/lint/tests/fixtures
//!
//! [wall-clock]
//! allow = crates/util/src/bench.rs,crates/util/src/telemetry.rs
//!
//! [unordered-iter]
//! paths = crates/core/src,crates/graph/src
//! ```
//!
//! All paths are workspace-relative prefixes with forward slashes.
//! Every key is optional; compiled-in defaults (matching this repo's
//! layout) apply when the file or a key is absent.

use leo_util::config::KvDoc;

/// Parsed lint configuration.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Path prefixes excluded from all linting (fixture corpora).
    pub exclude: Vec<String>,
    /// Files allowed to read the wall clock (the telemetry/bench core).
    pub wall_clock_allow: Vec<String>,
    /// Result-path prefixes where `unordered-iter` applies.
    pub unordered_iter_paths: Vec<String>,
    /// Files allowed to print from library code (the telemetry sink and
    /// bench reporter).
    pub print_allow: Vec<String>,
    /// Hot-path root fn patterns (`Type::name`, `Type::*`, or a free-fn
    /// `name`) — everything reachable from these must be alloc-free.
    pub hot_path_roots: Vec<String>,
    /// Path prefixes exempt from reachability `hot-path-alloc` findings
    /// (cold code dragged in by over-approximate method resolution).
    pub hot_path_allow: Vec<String>,
    /// Cold-boundary fn patterns: reachability stops at (and does not
    /// report inside) these fns — declared setup/teardown/debug paths
    /// that hot roots invoke once per run, not once per step. The list
    /// is config, so the hot/cold boundary is auditable in one place.
    pub hot_path_cold: Vec<String>,
    /// Path prefixes exempt from `panic-reachable` (files whose job is
    /// panicking, e.g. the property-test assertion harness).
    pub panic_allow: Vec<String>,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            exclude: vec!["crates/lint/tests/fixtures".into()],
            wall_clock_allow: vec![
                "crates/util/src/bench.rs".into(),
                "crates/util/src/telemetry.rs".into(),
            ],
            unordered_iter_paths: vec![
                "crates/core/src".into(),
                "crates/graph/src".into(),
                "crates/flow/src".into(),
                "crates/data/src".into(),
                "crates/orbit/src".into(),
                "crates/packetsim/src".into(),
                "crates/bench/src".into(),
            ],
            print_allow: vec![
                "crates/util/src/bench.rs".into(),
                "crates/util/src/telemetry.rs".into(),
            ],
            // The inner loops the paper's artifact timings stand on
            // (`// lint: hot-path`-marked fns are roots implicitly).
            hot_path_roots: vec![
                "SptWorkspace::apply".into(),
                "SptWorkspace::rebuild".into(),
                "DijkstraWorkspace::run".into(),
                "DijkstraWorkspace::run_multi".into(),
                "TimeSweep::step_with_deltas".into(),
                "VisibilityScan::*".into(),
                "StudyContext::sweep_fold".into(),
                "StudyContext::sweep_fold_deltas".into(),
            ],
            // The analyzer itself is offline tooling — never on the
            // pipeline's hot paths; edges into it are method-name
            // resolution artifacts (`build`, `chain` are common names).
            hot_path_allow: vec!["crates/lint/".into()],
            hot_path_cold: vec![
                // Per-sweep setup: builds the constellation, cities,
                // grids, and link tables once, then the per-instant
                // stepping takes over.
                "TimeSweep::new".into(),
                "StudyContext::build".into(),
                // Debug-gated telemetry rendering: only runs under
                // LEO_LOG=debug, which is outside the timing contract.
                "debug_log".into(),
                // Property-test harness error path (allocates a report
                // string after a case already failed/skipped).
                "CaseError::skip".into(),
                // Fan-out scaffolding: one thread-spawn + result-vec
                // round per sweep, amortised over every snapshot the
                // fan-out computes. The per-item closures it runs are
                // still attributed to their *defining* fns and patrolled.
                "parallel_map_stats".into(),
                "record_fanout".into(),
                // One-time lazy inits behind a boolean: delta tracking
                // (first `step_with_deltas`) and the land-mask bbox
                // cache (first point test).
                "TimeSweep::start_delta_tracking".into(),
                "poly_bboxes".into(),
                // Full-rebuild fallback for the first step of a sweep;
                // every later step takes the incremental `advance_to` /
                // `relocate` path.
                "Constellation::positions_at".into(),
                "CellGrid::new".into(),
            ],
            // leo_util::check asserts by panicking — that *is* its API.
            panic_allow: vec!["crates/util/src/check.rs".into()],
        }
    }
}

impl LintConfig {
    /// Parse config text; absent keys keep their defaults.
    pub fn parse(text: &str) -> Result<LintConfig, String> {
        let doc = KvDoc::parse(text).map_err(|e| format!("lint config: {e}"))?;
        let mut cfg = LintConfig::default();
        let list = |section: &str, key: &str, into: &mut Vec<String>| {
            if let Some(v) = doc.get(section, key) {
                *into = v
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
        };
        list("run", "exclude", &mut cfg.exclude);
        list("wall-clock", "allow", &mut cfg.wall_clock_allow);
        list("unordered-iter", "paths", &mut cfg.unordered_iter_paths);
        list("print-in-lib", "allow", &mut cfg.print_allow);
        list("hot-path-alloc", "roots", &mut cfg.hot_path_roots);
        list("hot-path-alloc", "allow", &mut cfg.hot_path_allow);
        list("hot-path-alloc", "cold", &mut cfg.hot_path_cold);
        list("panic-reachable", "allow", &mut cfg.panic_allow);
        Ok(cfg)
    }

    /// Does `path` fall under any prefix in `prefixes`?
    pub fn path_matches(path: &str, prefixes: &[String]) -> bool {
        prefixes.iter().any(|p| path.starts_with(p.as_str()))
    }

    /// Is `path` excluded from linting entirely?
    pub fn is_excluded(&self, path: &str) -> bool {
        Self::path_matches(path, &self.exclude)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_repo_layout() {
        let cfg = LintConfig::default();
        assert!(cfg.is_excluded("crates/lint/tests/fixtures/wall-clock/bad.rs"));
        assert!(LintConfig::path_matches(
            "crates/util/src/telemetry.rs",
            &cfg.wall_clock_allow
        ));
        assert!(LintConfig::path_matches(
            "crates/core/src/experiments/latency.rs",
            &cfg.unordered_iter_paths
        ));
        assert!(!LintConfig::path_matches(
            "crates/geo/src/ecef.rs",
            &cfg.unordered_iter_paths
        ));
    }

    #[test]
    fn parse_overrides_and_keeps_defaults() {
        let cfg =
            LintConfig::parse("[run]\nexclude = a/b , c/d\n[unordered-iter]\npaths = only/here\n")
                .unwrap();
        assert_eq!(cfg.exclude, vec!["a/b", "c/d"]);
        assert_eq!(cfg.unordered_iter_paths, vec!["only/here"]);
        // Untouched section keeps its default.
        assert_eq!(cfg.wall_clock_allow.len(), 2);
    }

    #[test]
    fn reachability_sections_parse() {
        let cfg = LintConfig::parse(
            "[hot-path-alloc]\nroots = W::apply, W::*\nallow = crates/cold\ncold = W::setup\n\
             [panic-reachable]\nallow = crates/util/src/check.rs\n",
        )
        .unwrap();
        assert_eq!(cfg.hot_path_roots, vec!["W::apply", "W::*"]);
        assert_eq!(cfg.hot_path_allow, vec!["crates/cold"]);
        assert_eq!(cfg.hot_path_cold, vec!["W::setup"]);
        assert_eq!(cfg.panic_allow, vec!["crates/util/src/check.rs"]);
        // Defaults name the real inner-loop roots.
        let d = LintConfig::default();
        assert!(d.hot_path_roots.iter().any(|r| r == "SptWorkspace::apply"));
        assert!(d.panic_allow.iter().any(|p| p.ends_with("check.rs")));
    }

    #[test]
    fn malformed_config_errors() {
        assert!(LintConfig::parse("not a kv line\n").is_err());
    }
}
