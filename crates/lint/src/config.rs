//! `lint.toml` — per-rule path scoping in the workspace's hermetic
//! `key = value` config dialect (parsed with [`leo_util::config::KvDoc`],
//! not actual TOML; the name keeps the conventional spelling).
//!
//! ```text
//! [run]
//! exclude = crates/lint/tests/fixtures
//!
//! [wall-clock]
//! allow = crates/util/src/bench.rs,crates/util/src/telemetry.rs
//!
//! [unordered-iter]
//! paths = crates/core/src,crates/graph/src
//! ```
//!
//! All paths are workspace-relative prefixes with forward slashes.
//! Every key is optional; compiled-in defaults (matching this repo's
//! layout) apply when the file or a key is absent.

use leo_util::config::KvDoc;

/// Parsed lint configuration.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Path prefixes excluded from all linting (fixture corpora).
    pub exclude: Vec<String>,
    /// Files allowed to read the wall clock (the telemetry/bench core).
    pub wall_clock_allow: Vec<String>,
    /// Result-path prefixes where `unordered-iter` applies.
    pub unordered_iter_paths: Vec<String>,
    /// Files allowed to print from library code (the telemetry sink and
    /// bench reporter).
    pub print_allow: Vec<String>,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            exclude: vec!["crates/lint/tests/fixtures".into()],
            wall_clock_allow: vec![
                "crates/util/src/bench.rs".into(),
                "crates/util/src/telemetry.rs".into(),
            ],
            unordered_iter_paths: vec![
                "crates/core/src".into(),
                "crates/graph/src".into(),
                "crates/flow/src".into(),
                "crates/data/src".into(),
                "crates/orbit/src".into(),
                "crates/packetsim/src".into(),
                "crates/bench/src".into(),
            ],
            print_allow: vec![
                "crates/util/src/bench.rs".into(),
                "crates/util/src/telemetry.rs".into(),
            ],
        }
    }
}

impl LintConfig {
    /// Parse config text; absent keys keep their defaults.
    pub fn parse(text: &str) -> Result<LintConfig, String> {
        let doc = KvDoc::parse(text).map_err(|e| format!("lint config: {e}"))?;
        let mut cfg = LintConfig::default();
        let list = |section: &str, key: &str, into: &mut Vec<String>| {
            if let Some(v) = doc.get(section, key) {
                *into = v
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
        };
        list("run", "exclude", &mut cfg.exclude);
        list("wall-clock", "allow", &mut cfg.wall_clock_allow);
        list("unordered-iter", "paths", &mut cfg.unordered_iter_paths);
        list("print-in-lib", "allow", &mut cfg.print_allow);
        Ok(cfg)
    }

    /// Does `path` fall under any prefix in `prefixes`?
    pub fn path_matches(path: &str, prefixes: &[String]) -> bool {
        prefixes.iter().any(|p| path.starts_with(p.as_str()))
    }

    /// Is `path` excluded from linting entirely?
    pub fn is_excluded(&self, path: &str) -> bool {
        Self::path_matches(path, &self.exclude)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_repo_layout() {
        let cfg = LintConfig::default();
        assert!(cfg.is_excluded("crates/lint/tests/fixtures/wall-clock/bad.rs"));
        assert!(LintConfig::path_matches(
            "crates/util/src/telemetry.rs",
            &cfg.wall_clock_allow
        ));
        assert!(LintConfig::path_matches(
            "crates/core/src/experiments/latency.rs",
            &cfg.unordered_iter_paths
        ));
        assert!(!LintConfig::path_matches(
            "crates/geo/src/ecef.rs",
            &cfg.unordered_iter_paths
        ));
    }

    #[test]
    fn parse_overrides_and_keeps_defaults() {
        let cfg =
            LintConfig::parse("[run]\nexclude = a/b , c/d\n[unordered-iter]\npaths = only/here\n")
                .unwrap();
        assert_eq!(cfg.exclude, vec!["a/b", "c/d"]);
        assert_eq!(cfg.unordered_iter_paths, vec!["only/here"]);
        // Untouched section keeps its default.
        assert_eq!(cfg.wall_clock_allow.len(), 2);
    }

    #[test]
    fn malformed_config_errors() {
        assert!(LintConfig::parse("not a kv line\n").is_err());
    }
}
