//! Deterministic workspace walker: every `.rs` file under the root,
//! sorted by relative path, skipping build output and VCS internals.
//!
//! Robustness contract: the walker never errors on what it can safely
//! ignore. Symlinked directories are skipped (a link into `target/` or
//! out of the workspace must not be followed — and a cyclic link must
//! not hang the walk), and entries whose names are not valid UTF-8 are
//! skipped (a lint path must be printable and comparable; such files
//! cannot be workspace sources).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "results", "node_modules"];

/// Collect workspace-relative (forward-slash) paths of all `.rs` files
/// under `root`, sorted.
pub fn rs_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack: Vec<PathBuf> = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            // Non-UTF-8 names can't be workspace-relative lint paths;
            // skip rather than lossily mangling (a mangled path would
            // neither open nor match config prefixes).
            let Ok(name) = entry.file_name().into_string() else {
                continue;
            };
            // file_type() reports the symlink itself (no follow):
            // symlinked dirs are pruned here, and a symlink to a file
            // is not a workspace source either.
            let Ok(ftype) = entry.file_type() else {
                continue;
            };
            if ftype.is_dir() {
                if !SKIP_DIRS.contains(&name.as_str()) && !name.starts_with('.') {
                    stack.push(entry.path());
                }
            } else if ftype.is_file() && name.ends_with(".rs") {
                if let Ok(rel) = entry.path().strip_prefix(root) {
                    out.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    out.sort_unstable();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_crate_sorted_and_skips_target() {
        // The test runs with CWD = crates/lint; its own sources are a
        // stable corpus.
        let files = rs_files(Path::new("src")).unwrap();
        assert!(files.contains(&"lexer.rs".to_string()));
        assert!(files.contains(&"rules/mod.rs".to_string()));
        let mut sorted = files.clone();
        sorted.sort_unstable();
        assert_eq!(files, sorted);
        assert!(files.iter().all(|f| !f.starts_with("target/")));
    }

    #[cfg(unix)]
    #[test]
    fn symlinked_dirs_and_files_are_skipped_not_errors() {
        use std::os::unix::ffi::OsStrExt;
        use std::os::unix::fs::symlink;

        let tmp = std::env::temp_dir().join(format!("leo_lint_walk_{}", std::process::id()));
        let _ = fs::remove_dir_all(&tmp);
        fs::create_dir_all(tmp.join("real")).unwrap();
        fs::write(tmp.join("real/keep.rs"), "fn k() {}").unwrap();
        // A cyclic symlink (dir → its own parent) must not hang or
        // error; a symlinked file must not be reported.
        symlink(&tmp, tmp.join("cycle")).unwrap();
        symlink(tmp.join("real/keep.rs"), tmp.join("alias.rs")).unwrap();
        // A non-UTF-8 filename must be skipped, not lossily reported.
        let bad = std::ffi::OsStr::from_bytes(b"bad\xff.rs");
        fs::write(tmp.join(bad), "fn b() {}").unwrap();

        let files = rs_files(&tmp).unwrap();
        assert_eq!(files, vec!["real/keep.rs".to_string()]);
        fs::remove_dir_all(&tmp).unwrap();
    }
}
