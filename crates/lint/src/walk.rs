//! Deterministic workspace walker: every `.rs` file under the root,
//! sorted by relative path, skipping build output and VCS internals.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "results", "node_modules"];

/// Collect workspace-relative (forward-slash) paths of all `.rs` files
/// under `root`, sorted.
pub fn rs_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack: Vec<PathBuf> = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    out.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    out.sort_unstable();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_crate_sorted_and_skips_target() {
        // The test runs with CWD = crates/lint; its own sources are a
        // stable corpus.
        let files = rs_files(Path::new("src")).unwrap();
        assert!(files.contains(&"lexer.rs".to_string()));
        assert!(files.contains(&"rules/mod.rs".to_string()));
        let mut sorted = files.clone();
        sorted.sort_unstable();
        assert_eq!(files, sorted);
        assert!(files.iter().all(|f| !f.starts_with("target/")));
    }
}
