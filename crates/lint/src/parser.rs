//! Item-level parser on top of the lexer: extracts every `fn` in a file
//! with its module/impl context, visibility, and the three site lists
//! the workspace rules consume — call sites (for the over-approximate
//! call graph), explicit panic sites, and allocation sites.
//!
//! This is *not* a Rust grammar. It is a single pass over the token
//! stream with a scope stack (`mod`/`impl`/`trait`/`fn`/plain blocks),
//! deliberately over-approximate where full resolution would need type
//! information:
//!
//! * a bare call `foo(…)` may resolve to any free fn named `foo`;
//! * a method call `x.foo(…)` may resolve to any impl fn named `foo`
//!   (with `self.foo(…)` resolved precisely to the enclosing impl type
//!   when that type defines `foo`);
//! * a qualified call `Type::foo(…)` resolves within `impl Type` blocks
//!   only — unknown qualifiers (std types, external modules) produce no
//!   edge, so `Vec::new(…)` never aliases the workspace's `new` fns.
//!
//! `macro_rules!` bodies are skipped entirely (their token soup is not
//! item syntax), and calls *through* macros are invisible — both are
//! documented limitations of the over-approximation, bounded by the
//! fact that this workspace's macros (`diag!`, telemetry probes) do not
//! route hot-path calls.

use crate::lexer::Tok;

/// Where a `fn` is visible from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// Bare `pub` — part of the crate's public API surface.
    Public,
    /// `pub(crate)` / `pub(super)` / `pub(in …)` — internal.
    Restricted,
    /// No `pub` at all.
    Private,
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Receiver {
    /// `foo(…)` — a free-function call.
    Bare,
    /// `x.foo(…)` — a method call on an arbitrary receiver.
    Method,
    /// `self.foo(…)` — a method call on `self` (resolved precisely to
    /// the enclosing impl type when possible).
    SelfMethod,
    /// `Seg::foo(…)` — qualified by the last path segment before `::`.
    Qualified(String),
}

/// One call site inside a fn body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Callee-name resolution hint.
    pub receiver: Receiver,
    /// Callee name as written.
    pub name: String,
    /// 1-based source line.
    pub line: u32,
}

/// One explicit panic site (`panic!`, `assert!`, `.unwrap()`, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicSite {
    /// Display form: `panic!`, `assert_eq!`, `.unwrap()`, `.expect()`.
    pub what: String,
    /// 1-based source line.
    pub line: u32,
    /// True for `.unwrap()`/`.expect()` — those stay under
    /// `unwrap-in-lib`'s per-site proof regime, not `panic-reachable`.
    pub is_unwrap: bool,
}

/// One allocation site (constructor, allocating adapter, growth call,
/// or alloc macro).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocSite {
    /// Display form: `Vec::new`, `.collect()`, `format!`, `.extend()`.
    pub what: String,
    /// 1-based source line.
    pub line: u32,
}

/// One parsed `fn` item.
#[derive(Debug, Clone)]
pub struct FnSym {
    /// Name as written.
    pub name: String,
    /// Enclosing `impl`/`trait` target type, if any.
    pub impl_type: Option<String>,
    /// Enclosing in-file `mod` path (outermost first).
    pub modules: Vec<String>,
    /// 1-based line of the fn name.
    pub line: u32,
    /// Visibility of the `fn` token itself.
    pub vis: Visibility,
    /// True when the fn lives under `#[cfg(test)]` (or the whole file
    /// is test/bench code).
    pub is_test: bool,
    /// False for bodyless trait-method declarations.
    pub has_body: bool,
    /// Call sites in the body (closures included — a closure's tokens
    /// belong to the innermost enclosing fn).
    pub calls: Vec<CallSite>,
    /// Explicit panic sites in the body.
    pub panics: Vec<PanicSite>,
    /// Allocation sites in the body.
    pub allocs: Vec<AllocSite>,
}

impl FnSym {
    /// `Type::name` or plain `name` — the display/matching form used by
    /// diagnostics and `lint.toml` root patterns.
    pub fn qualified(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Types whose associated constructors allocate.
pub const CTOR_TYPES: &[&str] = &[
    "Vec", "String", "Box", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "VecDeque",
];
/// Allocating associated-fn names (checked after `Type::`).
pub const CTOR_FNS: &[&str] = &["new", "with_capacity", "from"];
/// Allocating adapter methods (`.collect()`, `.to_vec()`, …).
pub const ALLOC_METHODS: &[&str] = &[
    "collect",
    "clone",
    "cloned",
    "to_vec",
    "to_owned",
    "to_string",
];
/// Growth methods — the `push`-growth class the hot paths must not hit.
/// Bare `.push(…)` onto a recycled workspace buffer (cleared, capacity
/// retained) is the sanctioned zero-alloc idiom and is *not* flagged;
/// growth is caught where buffers are created or resized.
pub const GROWTH_METHODS: &[&str] = &["extend", "resize", "resize_with", "reserve", "append"];
/// Allocating macros.
pub const ALLOC_MACROS: &[&str] = &["vec", "format"];
/// Panic-family macros (`debug_assert*` deliberately absent — it
/// vanishes in release builds, where the reproducibility contract
/// lives).
pub const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Keywords that look like `ident (` but are never calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "unsafe", "else", "let",
    "mut", "ref", "fn", "use", "pub", "impl", "where", "async", "dyn", "crate", "super", "self",
    "Self",
];

/// Modifier idents that may sit between `pub` and `fn`.
const FN_MODIFIERS: &[&str] = &["unsafe", "const", "async", "extern"];

#[derive(Debug)]
enum ScopeKind {
    Block,
    Module(String),
    Type(Option<String>),
    Fn(usize),
}

#[derive(Debug)]
enum Pending {
    Module(String),
    Type(Option<String>),
    Fn(FnSym),
}

/// Parse every `fn` item out of a token stream. `in_test(i)` reports
/// whether token `i` sits under `#[cfg(test)]` (supplied by
/// [`crate::source::SourceFile`], which owns the test ranges).
pub fn parse_fns(toks: &[Tok], in_test: &dyn Fn(usize) -> bool) -> Vec<FnSym> {
    let mut fns: Vec<FnSym> = Vec::new();
    let mut scopes: Vec<ScopeKind> = Vec::new();
    let mut pending: Option<Pending> = None;
    // Paren/bracket depth inside a pending item header, so `;` inside
    // `[u8; 3]` does not cancel the pending fn.
    let mut pdepth = 0usize;
    let mut i = 0usize;

    while i < toks.len() {
        let t = &toks[i];
        let text = t.text.as_str();

        // `macro_rules! name { … }` — skip the body wholesale.
        if text == "macro_rules"
            && t.is_ident()
            && toks.get(i + 1).map(|n| n.text.as_str()) == Some("!")
        {
            i = skip_macro_rules(toks, i);
            continue;
        }

        match text {
            "mod" if t.is_ident() && pending.is_none() => {
                if let Some(name) = toks.get(i + 1).filter(|n| n.is_ident()) {
                    pending = Some(Pending::Module(name.text.clone()));
                    pdepth = 0;
                }
            }
            "impl" | "trait" if t.is_ident() && pending.is_none() => {
                pending = Some(Pending::Type(extract_type_name(toks, i)));
                pdepth = 0;
            }
            "fn" if t.is_ident() => {
                // `fn` as a pointer-type (`fn(u32) -> u32`) has no name
                // ident after it; only named fns become items. A nested
                // fn replaces any stale pending state.
                if let Some(name) = toks.get(i + 1).filter(|n| n.is_ident()) {
                    let impl_type = scopes.iter().rev().find_map(|s| match s {
                        ScopeKind::Type(t) => Some(t.clone()),
                        _ => None,
                    });
                    let modules = scopes
                        .iter()
                        .filter_map(|s| match s {
                            ScopeKind::Module(m) => Some(m.clone()),
                            _ => None,
                        })
                        .collect();
                    pending = Some(Pending::Fn(FnSym {
                        name: name.text.clone(),
                        impl_type: impl_type.flatten(),
                        modules,
                        line: name.line,
                        vis: visibility_of(toks, i),
                        is_test: in_test(i),
                        has_body: false,
                        calls: Vec::new(),
                        panics: Vec::new(),
                        allocs: Vec::new(),
                    }));
                    pdepth = 0;
                    i += 2;
                    continue;
                }
            }
            "(" | "[" if pending.is_some() => pdepth += 1,
            ")" | "]" if pending.is_some() => pdepth = pdepth.saturating_sub(1),
            ";" if pdepth == 0 => {
                // Bodyless item: `mod x;` vanishes, a trait-method
                // declaration is still a symbol (callable via the
                // trait), just with nothing to scan.
                if let Some(Pending::Fn(sym)) = pending.take() {
                    fns.push(sym);
                }
                pending = None;
            }
            "{" => {
                let kind = match pending.take() {
                    Some(Pending::Module(m)) => ScopeKind::Module(m),
                    Some(Pending::Type(t)) => ScopeKind::Type(t),
                    Some(Pending::Fn(mut sym)) => {
                        sym.has_body = true;
                        fns.push(sym);
                        ScopeKind::Fn(fns.len() - 1)
                    }
                    None => ScopeKind::Block,
                };
                scopes.push(kind);
            }
            "}" => {
                scopes.pop();
            }
            _ => {
                // Body-site detection: only inside a fn, and never while
                // a nested item header (signature) is pending — types
                // like `F: Fn(&T) -> R` must not read as calls.
                if pending.is_none() {
                    if let Some(fn_id) = scopes.iter().rev().find_map(|s| match s {
                        ScopeKind::Fn(id) => Some(*id),
                        _ => None,
                    }) {
                        detect_sites(toks, i, &mut fns[fn_id]);
                    }
                }
            }
        }
        i += 1;
    }
    fns
}

/// Skip `macro_rules! name { … }` starting at the `macro_rules` token;
/// returns the index just past the closing brace.
fn skip_macro_rules(toks: &[Tok], i: usize) -> usize {
    let mut j = i;
    while j < toks.len() && toks[j].text != "{" {
        j += 1;
    }
    let mut depth = 0usize;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Extract the target type name from an `impl`/`trait` header starting
/// at the keyword: the last path segment of the implemented-for type
/// (`impl Trait for Type` → `Type`; `impl Type` → `Type`;
/// `trait Name` → `Name`).
fn extract_type_name(toks: &[Tok], kw: usize) -> Option<String> {
    let mut j = kw + 1;
    // Skip the generic parameter list directly after the keyword.
    j = skip_angles(toks, j);
    let mut ty: Option<String> = None;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "{" | "where" | ";" => break,
            // `for<'a>` (HRTB) keeps the collected trait; a real
            // `Trait for Type` resets so the type wins.
            "for"
                if toks[j].is_ident() && toks.get(j + 1).map(|n| n.text.as_str()) != Some("<") =>
            {
                ty = None;
            }
            "dyn" | "mut" | "ref" | "&" | "*" | "const" | "unsafe" | "extern" => {}
            _ if toks[j].is_ident() => {
                ty = Some(toks[j].text.clone());
                // Generic args on the name (`Iter<'a>`) are noise.
                if toks.get(j + 1).map(|n| n.text.as_str()) == Some("<") {
                    j = skip_angles(toks, j + 1);
                    continue;
                }
            }
            _ => {}
        }
        j += 1;
    }
    ty
}

/// If `toks[j]` opens an angle-bracket group, return the index just
/// past its close (treating `<<`/`>>` as two); otherwise return `j`.
/// Bails at `{` so an unbalanced header cannot swallow the file.
fn skip_angles(toks: &[Tok], j: usize) -> usize {
    if toks.get(j).map(|t| t.text.as_str()) != Some("<") {
        return j;
    }
    let mut depth = 0isize;
    let mut k = j;
    while k < toks.len() {
        match toks[k].text.as_str() {
            "<" => depth += 1,
            "<<" => depth += 2,
            ">" => depth -= 1,
            ">>" => depth -= 2,
            "{" => return k,
            _ => {}
        }
        if depth <= 0 {
            return k + 1;
        }
        k += 1;
    }
    k
}

/// Visibility of the fn whose `fn` keyword is at `fn_i`: scan back over
/// modifiers (`unsafe`, `const`, `async`, `extern "C"`) to the optional
/// `pub` / `pub(…)`.
fn visibility_of(toks: &[Tok], fn_i: usize) -> Visibility {
    let mut k = fn_i;
    while k > 0 {
        k -= 1;
        let t = &toks[k];
        if t.is_ident() && FN_MODIFIERS.contains(&t.text.as_str()) {
            continue;
        }
        if t.kind == crate::lexer::TokKind::Str {
            continue; // the "C" of extern "C"
        }
        if t.text == "pub" {
            return Visibility::Public;
        }
        if t.text == ")" {
            // `pub(crate) fn` — walk back to the `(` and check for pub.
            let mut depth = 1usize;
            while k > 0 && depth > 0 {
                k -= 1;
                match toks[k].text.as_str() {
                    ")" => depth += 1,
                    "(" => depth -= 1,
                    _ => {}
                }
            }
            if k > 0 && toks[k - 1].text == "pub" {
                return Visibility::Restricted;
            }
            return Visibility::Private;
        }
        return Visibility::Private;
    }
    Visibility::Private
}

/// Detect call/panic/alloc sites anchored at token `i` inside `f`'s
/// body. Patterns deliberately mirror the v1 `hot-path-alloc` token
/// heuristics so existing suppressions stay live.
fn detect_sites(toks: &[Tok], i: usize, f: &mut FnSym) {
    let t = &toks[i];
    if !t.is_ident() {
        return;
    }
    let name = t.text.as_str();
    let next = toks.get(i + 1).map(|n| n.text.as_str());
    let prev = if i > 0 { toks[i - 1].text.as_str() } else { "" };

    // Macros: panic family and alloc macros; no call edges through
    // macros (documented limitation).
    if next == Some("!") {
        if PANIC_MACROS.contains(&name) {
            f.panics.push(PanicSite {
                what: format!("{name}!"),
                line: t.line,
                is_unwrap: false,
            });
        } else if ALLOC_MACROS.contains(&name) {
            f.allocs.push(AllocSite {
                what: format!("{name}!"),
                line: t.line,
            });
        }
        return;
    }

    // `Vec::new`-style constructors — with or without a following `(`
    // (bare `Vec::new` passed to `resize_with` still allocates).
    if CTOR_TYPES.contains(&name)
        && next == Some("::")
        && toks
            .get(i + 2)
            .is_some_and(|n| CTOR_FNS.contains(&n.text.as_str()))
    {
        f.allocs.push(AllocSite {
            what: format!("{}::{}", name, toks[i + 2].text),
            line: t.line,
        });
        return;
    }

    // Method position: `.name(` or `.name::<…>(`.
    if prev == "." && matches!(next, Some("(") | Some("::")) {
        if ALLOC_METHODS.contains(&name) || GROWTH_METHODS.contains(&name) {
            f.allocs.push(AllocSite {
                what: format!(".{name}()"),
                line: t.line,
            });
        }
        if (name == "unwrap" || name == "expect") && next == Some("(") {
            f.panics.push(PanicSite {
                what: format!(".{name}()"),
                line: t.line,
                is_unwrap: true,
            });
        }
        if call_follows(toks, i + 1) {
            let receiver = if i >= 2 && toks[i - 2].text == "self" {
                Receiver::SelfMethod
            } else {
                Receiver::Method
            };
            f.calls.push(CallSite {
                receiver,
                name: name.to_string(),
                line: t.line,
            });
        }
        return;
    }

    // Free or qualified call: `name(`, `Seg::name(`, `name::<T>(`.
    if call_follows(toks, i + 1) && !NON_CALL_KEYWORDS.contains(&name) {
        let receiver = if prev == "::" && i >= 2 && toks[i - 2].is_ident() {
            Receiver::Qualified(toks[i - 2].text.clone())
        } else if prev == "::" || prev == "." || prev == "fn" {
            return;
        } else {
            Receiver::Bare
        };
        f.calls.push(CallSite {
            receiver,
            name: name.to_string(),
            line: t.line,
        });
    }
}

/// Does a call argument list start at `toks[j]` — `(`, or a turbofish
/// `::<…>(`?
fn call_follows(toks: &[Tok], j: usize) -> bool {
    match toks.get(j).map(|t| t.text.as_str()) {
        Some("(") => true,
        Some("::") if toks.get(j + 1).map(|t| t.text.as_str()) == Some("<") => {
            let end = skip_angles(toks, j + 1);
            toks.get(end).map(|t| t.text.as_str()) == Some("(")
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<FnSym> {
        parse_fns(&lex(src).toks, &|_| false)
    }

    #[test]
    fn fns_with_modules_impls_and_visibility() {
        let src = r#"
pub fn free() {}
pub(crate) fn internal() {}
fn private() {}
mod inner {
    pub fn nested() {}
}
struct S;
impl S {
    pub fn method(&self) {}
    fn helper() {}
}
impl Clone for S {
    fn clone(&self) -> S { S }
}
trait T {
    fn decl(&self);
    fn defaulted(&self) {}
}
"#;
        let fns = parse(src);
        let by_name = |n: &str| fns.iter().find(|f| f.name == n).unwrap();
        assert_eq!(by_name("free").vis, Visibility::Public);
        assert_eq!(by_name("internal").vis, Visibility::Restricted);
        assert_eq!(by_name("private").vis, Visibility::Private);
        assert_eq!(by_name("nested").modules, vec!["inner".to_string()]);
        assert_eq!(by_name("method").impl_type.as_deref(), Some("S"));
        assert_eq!(by_name("helper").impl_type.as_deref(), Some("S"));
        assert_eq!(by_name("clone").impl_type.as_deref(), Some("S"));
        assert_eq!(by_name("decl").impl_type.as_deref(), Some("T"));
        assert!(!by_name("decl").has_body);
        assert!(by_name("defaulted").has_body);
        assert_eq!(fns.len(), 9);
    }

    #[test]
    fn generic_impl_headers_resolve_the_type() {
        let src = "
impl<'a, T: Ord> Stack<'a, T> {
    fn push_it(&mut self) {}
}
impl<T> Iterator for Windows<T> where T: Copy {
    fn next(&mut self) -> Option<T> { None }
}
";
        let fns = parse(src);
        assert_eq!(fns[0].impl_type.as_deref(), Some("Stack"));
        assert_eq!(fns[1].impl_type.as_deref(), Some("Windows"));
    }

    #[test]
    fn calls_classified_by_receiver() {
        let src = "
fn caller(&self) {
    helper(1);
    self.own_method();
    other.method_call();
    Worker::assoc();
    deep::path::free_fn();
    turbo::<u32>(1);
}
";
        let fns = parse(src);
        let calls = &fns[0].calls;
        let find = |n: &str| calls.iter().find(|c| c.name == n).unwrap();
        assert_eq!(find("helper").receiver, Receiver::Bare);
        assert_eq!(find("own_method").receiver, Receiver::SelfMethod);
        assert_eq!(find("method_call").receiver, Receiver::Method);
        assert_eq!(find("assoc").receiver, Receiver::Qualified("Worker".into()));
        assert_eq!(find("free_fn").receiver, Receiver::Qualified("path".into()));
        assert_eq!(find("turbo").receiver, Receiver::Bare);
    }

    #[test]
    fn signatures_do_not_leak_calls() {
        // `Fn(&T) -> R` in a signature is a type, not a call.
        let src = "fn apply<F: Fn(u32) -> u32>(f: F, g: fn(u32) -> u32) { f(1); }";
        let fns = parse(src);
        assert!(
            fns[0].calls.iter().all(|c| c.name == "f"),
            "{:?}",
            fns[0].calls
        );
    }

    #[test]
    fn panic_and_alloc_sites() {
        let src = r#"
fn risky(x: Option<u32>) {
    panic!("boom");
    assert!(x.is_some());
    assert_eq!(1, 1);
    debug_assert!(true);
    let v = x.unwrap();
    let w = x.expect("msg");
    let a: Vec<u32> = Vec::new();
    let b = vec![1];
    let c = format!("x");
    let d = items.collect::<Vec<_>>();
    buf.extend(other);
    buf.resize_with(10, Vec::new);
    buf.push(1);
}
"#;
        let fns = parse(src);
        let panics: Vec<&str> = fns[0].panics.iter().map(|p| p.what.as_str()).collect();
        assert_eq!(
            panics,
            vec!["panic!", "assert!", "assert_eq!", ".unwrap()", ".expect()"]
        );
        assert!(fns[0].panics[3].is_unwrap && fns[0].panics[4].is_unwrap);
        let allocs: Vec<&str> = fns[0].allocs.iter().map(|a| a.what.as_str()).collect();
        assert_eq!(
            allocs,
            vec![
                "Vec::new",
                "vec!",
                "format!",
                ".collect()",
                ".extend()",
                ".resize_with()",
                "Vec::new",
            ],
            "push is sanctioned; resize_with flags both the growth call and its ctor arg"
        );
    }

    #[test]
    fn closure_sites_belong_to_the_enclosing_fn() {
        let src = "fn outer() { let f = |x: u32| { inner_call(x); panic!() }; }";
        let fns = parse(src);
        assert_eq!(fns.len(), 1);
        assert!(fns[0].calls.iter().any(|c| c.name == "inner_call"));
        assert_eq!(fns[0].panics.len(), 1);
    }

    #[test]
    fn nested_fn_owns_its_body() {
        let src = "fn outer() { fn inner() { panic!() } inner(); }";
        let fns = parse(src);
        let outer = fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = fns.iter().find(|f| f.name == "inner").unwrap();
        assert!(outer.panics.is_empty());
        assert_eq!(inner.panics.len(), 1);
        assert!(outer.calls.iter().any(|c| c.name == "inner"));
    }

    #[test]
    fn macro_rules_bodies_are_skipped() {
        let src = "
macro_rules! gen {
    ($n:ident) => { fn $n() { panic!() } };
}
fn real() {}
";
        let fns = parse(src);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "real");
    }

    #[test]
    fn array_len_semicolon_does_not_cancel_a_pending_fn() {
        let src = "fn f(x: [u8; 3]) { g(); }";
        let fns = parse(src);
        assert_eq!(fns.len(), 1);
        assert!(fns[0].has_body);
        assert_eq!(fns[0].calls.len(), 1);
    }

    #[test]
    fn test_flag_follows_cfg_ranges() {
        let toks = lex("fn a() {} fn b() {}").toks;
        let b_start = toks.iter().position(|t| t.text == "b").unwrap();
        let fns = parse_fns(&toks, &|i| i >= b_start - 1);
        assert!(!fns[0].is_test);
        assert!(fns[1].is_test);
    }
}
