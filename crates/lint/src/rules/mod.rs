//! The rule framework and registry.
//!
//! A rule is a pure function over one analyzed [`SourceFile`]: it
//! appends [`Diagnostic`]s and never does IO. Suppression handling
//! lives in the runner ([`crate::Linter`]), not in rules — every rule
//! stays suppressible by the same `// lint: allow(<rule>) <reason>`
//! mechanism without per-rule code.

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::source::SourceFile;

mod float_fastmath;
mod hot_path_alloc;
mod print_in_lib;
mod unordered_iter;
mod unsafe_undocumented;
mod unseeded_rng;
mod unwrap_in_lib;
mod wall_clock;

pub use float_fastmath::FloatFastmath;
pub use hot_path_alloc::HotPathAlloc;
pub use print_in_lib::PrintInLib;
pub use unordered_iter::UnorderedIter;
pub use unsafe_undocumented::UnsafeUndocumented;
pub use unseeded_rng::UnseededRng;
pub use unwrap_in_lib::UnwrapInLib;
pub use wall_clock::WallClock;

/// A source-level invariant check.
pub trait Rule {
    /// Kebab-case rule name — the key used in `lint: allow(<name>)`
    /// suppressions and `lint.toml` sections.
    fn name(&self) -> &'static str;
    /// One line on what the rule enforces and why (shown by `--rules`).
    fn rationale(&self) -> &'static str;
    /// Append diagnostics for `file` to `out`.
    fn check(&self, file: &SourceFile, cfg: &LintConfig, out: &mut Vec<Diagnostic>);
}

/// Every shipped rule, in stable order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(WallClock),
        Box::new(UnorderedIter),
        Box::new(UnseededRng),
        Box::new(UnwrapInLib),
        Box::new(HotPathAlloc),
        Box::new(UnsafeUndocumented),
        Box::new(FloatFastmath),
        Box::new(PrintInLib),
    ]
}

/// Names of every shipped rule plus the two meta-diagnostics the runner
/// itself can emit (`bare-allow`, `bad-directive`). Used to reject
/// `allow(...)` of rules that do not exist.
pub fn known_rule_names() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = all_rules().iter().map(|r| r.name()).collect();
    names.push("bare-allow");
    names.push("bad-directive");
    names
}

/// Do tokens starting at `i` match `texts` exactly?
pub(crate) fn seq_matches(file: &SourceFile, i: usize, texts: &[&str]) -> bool {
    file.toks.len() >= i + texts.len()
        && texts
            .iter()
            .enumerate()
            .all(|(k, t)| file.toks[i + k].text == *t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_kebab() {
        let rules = all_rules();
        let mut names: Vec<&str> = rules.iter().map(|r| r.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate rule names");
        for n in names {
            assert!(
                n.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "rule name `{n}` is not kebab-case"
            );
        }
        assert_eq!(rules.len(), 8, "the shipped rule set");
        for r in rules {
            assert!(!r.rationale().is_empty());
        }
    }
}
