//! The rule framework and registry.
//!
//! Two rule shapes:
//!
//! * [`Rule`] — a pure function over one analyzed [`SourceFile`]; runs
//!   in parallel across files (hence the `Sync` bound) and never does
//!   IO.
//! * [`WorkspaceRule`] — a pure function over the whole-workspace
//!   [`crate::symgraph::SymbolGraph`]; runs once after
//!   every file is parsed, for invariants (reachability) no single
//!   file can prove.
//!
//! Suppression handling lives in the runner ([`crate::Linter`]), not in
//! rules — every rule of either shape stays suppressible by the same
//! `// lint: allow(<rule>) <reason>` mechanism without per-rule code.
//! The one exception is `stale-allow` (also runner logic): it fires on
//! the suppression machinery itself, so allowing it would be circular —
//! an `allow(stale-allow)` never suppresses anything and is therefore
//! itself stale.

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::source::SourceFile;
use crate::symgraph::SymbolGraph;

mod float_fastmath;
mod hot_path_alloc;
mod hot_path_reach;
mod panic_reachable;
mod print_in_lib;
mod unordered_iter;
mod unsafe_undocumented;
mod unseeded_rng;
mod unwrap_in_lib;
mod wall_clock;

pub use float_fastmath::FloatFastmath;
pub use hot_path_alloc::HotPathAlloc;
pub use hot_path_reach::HotPathReach;
pub use panic_reachable::PanicReachable;
pub use print_in_lib::PrintInLib;
pub use unordered_iter::UnorderedIter;
pub use unsafe_undocumented::UnsafeUndocumented;
pub use unseeded_rng::UnseededRng;
pub use unwrap_in_lib::UnwrapInLib;
pub use wall_clock::WallClock;

/// A file-local invariant check.
pub trait Rule: Sync {
    /// Kebab-case rule name — the key used in `lint: allow(<name>)`
    /// suppressions and `lint.toml` sections.
    fn name(&self) -> &'static str;
    /// One line on what the rule enforces and why (shown by `--rules`).
    fn rationale(&self) -> &'static str;
    /// Append diagnostics for `file` to `out`.
    fn check(&self, file: &SourceFile, cfg: &LintConfig, out: &mut Vec<Diagnostic>);
}

/// A workspace-level invariant check over the symbol graph.
pub trait WorkspaceRule: Sync {
    /// Kebab-case rule name (may coincide with a file-local rule when
    /// the two are halves of one invariant — `hot-path-alloc`).
    fn name(&self) -> &'static str;
    /// One line on what the rule enforces and why (shown by `--rules`).
    fn rationale(&self) -> &'static str;
    /// Append diagnostics over the whole graph to `out`.
    fn check(&self, graph: &SymbolGraph, cfg: &LintConfig, out: &mut Vec<Diagnostic>);
}

/// Every shipped file-local rule, in stable order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(WallClock),
        Box::new(UnorderedIter),
        Box::new(UnseededRng),
        Box::new(UnwrapInLib),
        Box::new(HotPathAlloc),
        Box::new(UnsafeUndocumented),
        Box::new(FloatFastmath),
        Box::new(PrintInLib),
    ]
}

/// Every shipped workspace rule, in stable order.
pub fn workspace_rules() -> Vec<Box<dyn WorkspaceRule>> {
    vec![Box::new(PanicReachable), Box::new(HotPathReach)]
}

/// Names of every shipped rule (both shapes) plus the meta-diagnostics
/// the runner itself can emit (`bare-allow`, `bad-directive`,
/// `stale-allow`). Used to reject `allow(...)` of rules that do not
/// exist.
pub fn known_rule_names() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = all_rules().iter().map(|r| r.name()).collect();
    for r in workspace_rules() {
        if !names.contains(&r.name()) {
            names.push(r.name());
        }
    }
    names.push("bare-allow");
    names.push("bad-directive");
    names.push("stale-allow");
    names
}

/// Do tokens starting at `i` match `texts` exactly?
pub(crate) fn seq_matches(file: &SourceFile, i: usize, texts: &[&str]) -> bool {
    file.toks.len() >= i + texts.len()
        && texts
            .iter()
            .enumerate()
            .all(|(k, t)| file.toks[i + k].text == *t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_kebab() {
        let rules = all_rules();
        let mut names: Vec<&str> = rules.iter().map(|r| r.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate rule names");
        for n in names {
            assert!(
                n.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "rule name `{n}` is not kebab-case"
            );
        }
        assert_eq!(rules.len(), 8, "the shipped file-local rule set");
        for r in rules {
            assert!(!r.rationale().is_empty());
        }
    }

    #[test]
    fn workspace_registry_and_known_names() {
        let ws = workspace_rules();
        assert_eq!(ws.len(), 2);
        let known = known_rule_names();
        for want in [
            "panic-reachable",
            "hot-path-alloc",
            "stale-allow",
            "bare-allow",
            "bad-directive",
        ] {
            assert!(known.contains(&want), "missing {want}");
        }
        // hot-path-alloc appears in both shapes but only once in the
        // known set.
        assert_eq!(known.iter().filter(|n| **n == "hot-path-alloc").count(), 1);
    }
}
