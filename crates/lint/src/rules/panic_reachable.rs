//! `panic-reachable`: explicit panic-family macros (`panic!`,
//! `unreachable!`, `todo!`, `unimplemented!`, `assert!`, `assert_eq!`,
//! `assert_ne!`) in non-test library code, transitively reachable from
//! a public library API, are errors — reported with the shortest call
//! chain from the API to the panic site.
//!
//! Division of labour with `unwrap-in-lib`: `.unwrap()`/`.expect()`
//! stay under that rule's per-site proof regime (they are value-level
//! and near-always local); this rule owns the *macro* family, whose
//! reachability from a public entry point is exactly what a caller of
//! the library cannot see. `debug_assert*` is deliberately out of
//! scope — it vanishes in release builds, where the reproducibility
//! contract lives.
//!
//! `lint.toml` `[panic-reachable] allow = <path prefixes>` exempts
//! files whose *job* is panicking (the `leo_util::check` property-test
//! harness asserts by panicking).

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::source::FileKind;
use crate::symgraph::SymbolGraph;

use super::WorkspaceRule;

/// See the module docs.
pub struct PanicReachable;

impl WorkspaceRule for PanicReachable {
    fn name(&self) -> &'static str {
        "panic-reachable"
    }

    fn rationale(&self) -> &'static str {
        "panic! family reachable from a public library API aborts the pipeline mid-artifact; \
         return errors or justify each site"
    }

    fn check(&self, graph: &SymbolGraph, cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        // Roots: every `pub fn` in non-test library code. Traversal is
        // restricted to the same stratum — a lib API never executes
        // bin/test/bench code, so edges into it are resolution noise.
        let lib = |n: &crate::symgraph::SymNode| n.kind == FileKind::Lib && !n.sym.is_test;
        let roots: Vec<u32> = (0..graph.nodes.len() as u32)
            .filter(|&i| {
                let n = &graph.nodes[i as usize];
                lib(n) && n.sym.vis == crate::parser::Visibility::Public
            })
            .collect();
        let reach = graph.reach(&roots, &|_, n| lib(n));

        for (i, n) in graph.nodes.iter().enumerate() {
            if !lib(n)
                || !reach.reached(i as u32)
                || LintConfig::path_matches(&n.path, &cfg.panic_allow)
            {
                continue;
            }
            for site in &n.sym.panics {
                if site.is_unwrap {
                    continue; // unwrap-in-lib's jurisdiction
                }
                let chain = reach.chain(i as u32);
                out.push(Diagnostic {
                    rule: "panic-reachable",
                    path: n.path.clone(),
                    line: site.line,
                    msg: format!(
                        "`{}` reachable from public API `{}` (chain: {})",
                        site.what,
                        graph.nodes[chain[0] as usize].sym.qualified(),
                        graph.chain_display(&chain),
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let parsed: Vec<SourceFile> = files.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
        let graph = SymbolGraph::build(&parsed);
        let mut out = Vec::new();
        PanicReachable.check(&graph, &LintConfig::default(), &mut out);
        out
    }

    #[test]
    fn multi_hop_chain_reported_at_the_panic_site() {
        let out = run(&[(
            "crates/a/src/lib.rs",
            "pub fn api() { mid(); }\nfn mid() { deep(); }\nfn deep() { panic!(\"x\"); }",
        )]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 3);
        assert!(out[0].msg.contains("api → mid → deep"), "{}", out[0].msg);
    }

    #[test]
    fn unreachable_private_panic_is_silent() {
        let out = run(&[(
            "crates/a/src/lib.rs",
            "pub fn api() {}\nfn orphan() { panic!(\"never called\"); }",
        )]);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn test_code_and_unwraps_are_out_of_scope() {
        let out = run(&[(
            "crates/a/src/lib.rs",
            "pub fn api(x: Option<u32>) { let _ = x.unwrap(); }\n\
             #[cfg(test)]\nmod tests { pub fn t() { assert!(true); } }",
        )]);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn allow_paths_exempt_whole_files() {
        let files = [
            (
                "crates/util/src/check.rs",
                "pub fn assert_prop() { assert!(true); }",
            ),
            ("crates/a/src/lib.rs", "pub fn api() { assert_eq!(1, 1); }"),
        ];
        let out = run(&files);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].path, "crates/a/src/lib.rs");
    }

    #[test]
    fn cross_file_reachability() {
        let out = run(&[
            ("crates/a/src/lib.rs", "pub fn api() { helper(); }"),
            ("crates/b/src/lib.rs", "pub fn helper() { unreachable!(); }"),
        ]);
        // helper is itself pub, so the shortest chain is length 1.
        assert_eq!(out.len(), 1);
        assert!(out[0].msg.contains("chain: helper"), "{}", out[0].msg);
    }
}
