//! `wall-clock`: `Instant::now()` / `SystemTime` outside the
//! telemetry/bench allowlist.
//!
//! Experiment code must be a pure function of its inputs so reruns are
//! reproducible; the only legitimate clock readers are the telemetry
//! span/bench layers, which feed measurement fields that are explicitly
//! excluded from determinism comparisons.

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::rules::{seq_matches, Rule};
use crate::source::{FileKind, SourceFile};

/// See module docs.
pub struct WallClock;

impl Rule for WallClock {
    fn name(&self) -> &'static str {
        "wall-clock"
    }

    fn rationale(&self) -> &'static str {
        "wall-clock reads outside telemetry/bench make runs irreproducible"
    }

    fn check(&self, file: &SourceFile, cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        // Benches exist to time things; allowlisted files are the clock's home.
        if file.kind == FileKind::Bench
            || LintConfig::path_matches(&file.path, &cfg.wall_clock_allow)
        {
            return;
        }
        for (i, t) in file.toks.iter().enumerate() {
            if file.in_test_code(i) {
                continue;
            }
            if seq_matches(file, i, &["Instant", "::", "now"]) {
                out.push(Diagnostic {
                    rule: self.name(),
                    path: file.path.clone(),
                    line: t.line,
                    msg: "`Instant::now()` outside the telemetry/bench allowlist — \
                          route timing through `leo_util::telemetry` spans"
                        .into(),
                });
            } else if t.text == "SystemTime" {
                out.push(Diagnostic {
                    rule: self.name(),
                    path: file.path.clone(),
                    line: t.line,
                    msg: "`SystemTime` outside the telemetry/bench allowlist — \
                          wall-clock time must not influence results"
                        .into(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse(path, src);
        let mut out = Vec::new();
        WallClock.check(&f, &LintConfig::default(), &mut out);
        out
    }

    #[test]
    fn flags_instant_and_systemtime_in_lib() {
        let d = run(
            "crates/x/src/lib.rs",
            "fn f() { let t = Instant::now(); let s = SystemTime::now(); }",
        );
        assert_eq!(d.len(), 2);
        assert!(d[0].msg.contains("Instant::now"));
    }

    #[test]
    fn allowlist_and_benches_and_tests_exempt() {
        assert!(run("crates/util/src/telemetry.rs", "fn f() { Instant::now(); }").is_empty());
        assert!(run(
            "crates/bench/benches/routing.rs",
            "fn f() { Instant::now(); }"
        )
        .is_empty());
        assert!(run(
            "crates/x/src/lib.rs",
            "#[cfg(test)]\nmod tests { fn t() { Instant::now(); } }"
        )
        .is_empty());
    }
}
