//! `unseeded-rng`: randomness not routed through the workspace's
//! seeded constructors.
//!
//! Every random draw in this codebase must come from
//! `leo_util::rng::Rng64::seed_from_u64` (or a stream split from it) so
//! a run is fully determined by its `--seed`. Entropy-based
//! constructors — and the `rand` crate itself, which the hermetic
//! policy excludes — break replayability.

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::rules::Rule;
use crate::source::SourceFile;

/// See module docs.
pub struct UnseededRng;

/// Identifiers whose presence means entropy-seeded randomness.
const BANNED_IDENTS: &[&str] = &[
    "thread_rng",
    "ThreadRng",
    "from_entropy",
    "from_os_rng",
    "OsRng",
    "StdRng",
    "SmallRng",
    "RandomState",
    "getrandom",
];

impl Rule for UnseededRng {
    fn name(&self) -> &'static str {
        "unseeded-rng"
    }

    fn rationale(&self) -> &'static str {
        "all randomness must flow from the run seed via leo_util::rng"
    }

    fn check(&self, file: &SourceFile, _cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        // Applies everywhere, tests included: a test drawing entropy is
        // a flaky test.
        for (i, t) in file.toks.iter().enumerate() {
            if !t.is_ident() {
                continue;
            }
            if BANNED_IDENTS.contains(&t.text.as_str()) {
                out.push(Diagnostic {
                    rule: self.name(),
                    path: file.path.clone(),
                    line: t.line,
                    msg: format!(
                        "`{}` draws entropy-seeded randomness — construct RNGs with \
                         `leo_util::rng::Rng64::seed_from_u64` so runs replay from the seed",
                        t.text
                    ),
                });
            } else if t.text == "rand"
                && file.toks.get(i + 1).map(|n| n.text.as_str()) == Some("::")
            {
                out.push(Diagnostic {
                    rule: self.name(),
                    path: file.path.clone(),
                    line: t.line,
                    msg: "`rand::` path — the hermetic workspace bans the rand crate; \
                          use `leo_util::rng`"
                        .into(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let mut out = Vec::new();
        UnseededRng.check(&f, &LintConfig::default(), &mut out);
        out
    }

    #[test]
    fn flags_entropy_constructors_even_in_tests() {
        let d = run("fn f() { let r = thread_rng(); }");
        assert_eq!(d.len(), 1);
        let d = run("#[cfg(test)]\nmod t { fn g() { StdRng::from_entropy(); } }");
        assert_eq!(d.len(), 2); // StdRng and from_entropy both flagged
    }

    #[test]
    fn flags_rand_paths_but_not_the_word_random() {
        assert_eq!(run("use rand::Rng;").len(), 1);
        assert!(run("fn f() { let randomize = 1; let rand_like = 2; }").is_empty());
        assert!(run("fn f() { let r = Rng64::seed_from_u64(42); }").is_empty());
    }
}
