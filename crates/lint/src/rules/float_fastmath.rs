//! `float-fastmath`: bare `==`/`!=` against a float literal in test
//! code.
//!
//! Determinism tests in this workspace compare floats *exactly* — by
//! design — but a bare `x == 0.5` silently loses that intent the day
//! someone builds with non-default float semantics, and gives no
//! diagnostic output when it fails. Compare bit patterns
//! (`x.to_bits() == 0.5f64.to_bits()`), use `assert_eq!` (which prints
//! both sides), or document the exactness invariant with a suppression.
//!
//! Scope note: `assert_eq!(x, 0.5)` is deliberately *not* flagged —
//! the golden-value determinism suites pin exact values on purpose and
//! the macro reports both operands on failure.

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::rules::Rule;
use crate::source::SourceFile;

/// See module docs.
pub struct FloatFastmath;

impl Rule for FloatFastmath {
    fn name(&self) -> &'static str {
        "float-fastmath"
    }

    fn rationale(&self) -> &'static str {
        "bare float equality in tests hides exactness intent; compare bits or assert_eq"
    }

    fn check(&self, file: &SourceFile, _cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        let toks = &file.toks;
        for i in 1..toks.len() {
            let t = &toks[i];
            if (t.text != "==" && t.text != "!=") || !file.in_test_code(i) {
                continue;
            }
            let lhs_float = toks[i - 1].kind == TokKind::Float;
            // RHS may be negated: `x == -1.0`.
            let mut r = i + 1;
            if toks.get(r).map(|n| n.text.as_str()) == Some("-") {
                r += 1;
            }
            // A float literal used as a method receiver
            // (`1.0f64.to_bits()`) is not a bare comparison operand.
            let rhs_float = toks.get(r).map(|n| n.kind) == Some(TokKind::Float)
                && toks.get(r + 1).map(|n| n.text.as_str()) != Some(".");
            if lhs_float || rhs_float {
                out.push(Diagnostic {
                    rule: self.name(),
                    path: file.path.clone(),
                    line: t.line,
                    msg: format!(
                        "bare `{}` against a float literal in test code — compare \
                         `.to_bits()`, use `assert_eq!`, or document the exactness invariant",
                        t.text
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse(path, src);
        let mut out = Vec::new();
        FloatFastmath.check(&f, &LintConfig::default(), &mut out);
        out
    }

    #[test]
    fn flags_bare_float_eq_in_tests_only() {
        let src = "fn t() { assert!(x == 0.5); assert!(y != -1.0); }";
        assert_eq!(run("crates/x/tests/it.rs", src).len(), 2);
        // Same code in lib (non-test) is out of scope for this rule.
        assert!(run("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn to_bits_and_int_eq_are_fine() {
        assert!(run(
            "crates/x/tests/it.rs",
            "fn t() { assert!(x.to_bits() == y.to_bits()); \
             assert!(p.to_bits() == 1.0f64.to_bits()); assert!(n == 3); }"
        )
        .is_empty());
    }

    #[test]
    fn cfg_test_mod_in_lib_is_in_scope() {
        let d = run(
            "crates/x/src/lib.rs",
            "#[cfg(test)]\nmod t { fn g() { assert!(p == 1.0); } }",
        );
        assert_eq!(d.len(), 1);
    }
}
