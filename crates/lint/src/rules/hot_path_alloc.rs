//! `hot-path-alloc`: allocation inside functions annotated
//! `// lint: hot-path`.
//!
//! The routing/flow inner loops (Dijkstra's `run_core`, progressive
//! filling) are pre-allocated-workspace code: one allocation per call
//! multiplied by thousands of snapshot×pair invocations is exactly the
//! regression class PR 3 eliminated. The annotation makes the contract
//! machine-checked instead of a comment that silently rots.
//!
//! Flagged inside an annotated fn body: `Vec::new`, `Vec::with_capacity`,
//! `String::new`/`with_capacity`, `Box::new`, `HashMap`/`HashSet`/
//! `BTreeMap`/`BTreeSet` constructors, `vec![…]`, `format!`, and the
//! allocating adapters `.collect()`, `.clone()`, `.cloned()`,
//! `.to_vec()`, `.to_owned()`, `.to_string()`.

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::rules::Rule;
use crate::source::{Directive, SourceFile};

/// See module docs.
pub struct HotPathAlloc;

const CTOR_TYPES: &[&str] = &[
    "Vec", "String", "Box", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "VecDeque",
];
const CTOR_FNS: &[&str] = &["new", "with_capacity", "from"];
const ALLOC_METHODS: &[&str] = &[
    "collect",
    "clone",
    "cloned",
    "to_vec",
    "to_owned",
    "to_string",
];
const ALLOC_MACROS: &[&str] = &["vec", "format"];

impl Rule for HotPathAlloc {
    fn name(&self) -> &'static str {
        "hot-path-alloc"
    }

    fn rationale(&self) -> &'static str {
        "fns marked `lint: hot-path` are zero-alloc inner loops; keep them that way"
    }

    fn check(&self, file: &SourceFile, _cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        for d in &file.directives {
            let Directive::HotPath { line } = d else {
                continue;
            };
            let Some((body_start, body_end)) = fn_body_after(file, *line) else {
                out.push(Diagnostic {
                    rule: self.name(),
                    path: file.path.clone(),
                    line: *line,
                    msg: "`lint: hot-path` directive is not followed by a `fn`".into(),
                });
                continue;
            };
            scan_body(self, file, body_start, body_end, out);
        }
    }
}

/// Token range `(start, end)` of the body of the first `fn` after
/// `line`, exclusive of the outer braces.
fn fn_body_after(file: &SourceFile, line: u32) -> Option<(usize, usize)> {
    let toks = &file.toks;
    let fn_idx = toks
        .iter()
        .position(|t| t.line > line && t.text == "fn" && t.is_ident())?;
    let mut depth = 0usize;
    let mut start = None;
    for (k, t) in toks.iter().enumerate().skip(fn_idx) {
        match t.text.as_str() {
            "{" => {
                if depth == 0 {
                    start = Some(k + 1);
                }
                depth += 1;
            }
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some((start?, k));
                }
            }
            // `fn f();` (trait method) has no body to patrol.
            ";" if depth == 0 => return None,
            _ => {}
        }
    }
    None
}

fn scan_body(
    rule: &HotPathAlloc,
    file: &SourceFile,
    start: usize,
    end: usize,
    out: &mut Vec<Diagnostic>,
) {
    let toks = &file.toks;
    let mut diag = |line: u32, what: String| {
        out.push(Diagnostic {
            rule: rule.name(),
            path: file.path.clone(),
            line,
            msg: format!(
                "{what} allocates inside a `lint: hot-path` fn — hoist into the \
                          pre-allocated workspace"
            ),
        });
    };
    let mut i = start;
    while i < end {
        let t = &toks[i];
        // `Vec::new(`-style constructors.
        if CTOR_TYPES.contains(&t.text.as_str())
            && i + 2 < end
            && toks[i + 1].text == "::"
            && CTOR_FNS.contains(&toks[i + 2].text.as_str())
        {
            diag(t.line, format!("`{}::{}`", t.text, toks[i + 2].text));
            i += 3;
            continue;
        }
        // `vec![…]` / `format!(…)`.
        if ALLOC_MACROS.contains(&t.text.as_str())
            && t.is_ident()
            && i + 1 < end
            && toks[i + 1].text == "!"
        {
            diag(t.line, format!("`{}!`", t.text));
            i += 2;
            continue;
        }
        // `.collect(` / `.collect::<…>(` / `.clone(` etc.
        if t.text == "."
            && i + 1 < end
            && ALLOC_METHODS.contains(&toks[i + 1].text.as_str())
            && matches!(
                toks.get(i + 2).map(|n| n.text.as_str()),
                Some("(") | Some("::")
            )
        {
            diag(toks[i + 1].line, format!("`.{}()`", toks[i + 1].text));
            i += 2;
            continue;
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse("crates/graph/src/hot.rs", src);
        let mut out = Vec::new();
        HotPathAlloc.check(&f, &LintConfig::default(), &mut out);
        out
    }

    #[test]
    fn flags_allocs_only_inside_annotated_fn() {
        let src = "
fn cold() { let v = Vec::new(); }
// lint: hot-path
fn hot(ws: &mut Ws) {
    let v: Vec<u32> = Vec::new();
    let s = x.to_vec();
    let c: Vec<_> = it.collect::<Vec<_>>();
    let m = format!(\"x\");
}
fn also_cold() { let v = vec![1]; }
";
        let d = run(src);
        assert_eq!(d.len(), 4, "{d:#?}");
        assert!(d.iter().all(|x| (5..=8).contains(&x.line)));
    }

    #[test]
    fn zero_alloc_body_is_clean_and_dangling_directive_flagged() {
        assert!(run("// lint: hot-path\nfn hot(ws: &mut Ws) { ws.dist[0] = 0.0; }").is_empty());
        let d = run("// lint: hot-path\nconst X: u32 = 1;");
        assert_eq!(d.len(), 1);
        assert!(d[0].msg.contains("not followed by a `fn`"));
    }
}
