//! `unordered-iter`: iterating a `HashMap`/`HashSet` in a module on a
//! result path (CSV/JSONL-producing crates).
//!
//! Hash iteration order is randomized per process; anything it feeds —
//! output rows, adjacency lists, accumulation order of floats — can
//! differ run to run. On result paths, collect keys and sort first, or
//! use a `BTreeMap`/sorted `Vec`.

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::rules::Rule;
use crate::source::SourceFile;

/// See module docs.
pub struct UnorderedIter;

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

impl Rule for UnorderedIter {
    fn name(&self) -> &'static str {
        "unordered-iter"
    }

    fn rationale(&self) -> &'static str {
        "hash iteration order is nondeterministic and must not reach result paths"
    }

    fn check(&self, file: &SourceFile, cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        if !LintConfig::path_matches(&file.path, &cfg.unordered_iter_paths) {
            return;
        }
        let toks = &file.toks;
        // Pass 1: names bound to a HashMap/HashSet by `let` or a
        // `name: [&][mut] path::HashMap<…>` type ascription.
        let mut tracked: Vec<String> = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if t.text != "HashMap" && t.text != "HashSet" {
                continue;
            }
            // `let [mut] name … = … HashMap::new()` — scan back for `let`.
            let lo = i.saturating_sub(12);
            for j in (lo..i).rev() {
                if toks[j].text == ";" || toks[j].text == "{" || toks[j].text == "}" {
                    break;
                }
                if toks[j].text == "let" {
                    let mut k = j + 1;
                    if k < toks.len() && toks[k].text == "mut" {
                        k += 1;
                    }
                    if k < toks.len() && toks[k].is_ident() {
                        tracked.push(toks[k].text.clone());
                    }
                    break;
                }
            }
            // `name : [&]['a] [mut] [seg ::]* HashMap` — walk back over
            // the type prefix to the `:`.
            let mut j = i;
            let mut steps = 0;
            while j > 0 && steps < 8 {
                let prev = &toks[j - 1];
                if prev.text == "::"
                    || prev.text == "&"
                    || prev.text == "mut"
                    || prev.is_lifetime()
                    || (prev.is_ident() && toks[j].text == "::")
                {
                    j -= 1;
                    steps += 1;
                } else {
                    break;
                }
            }
            if j >= 2 && toks[j - 1].text == ":" && toks[j - 2].is_ident() {
                tracked.push(toks[j - 2].text.clone());
            }
        }
        tracked.sort_unstable();
        tracked.dedup();
        if tracked.is_empty() {
            return;
        }

        // Pass 2: iteration over tracked names.
        for i in 0..toks.len() {
            if file.in_test_code(i) {
                continue;
            }
            let t = &toks[i];
            // `name.iter()` and friends.
            if t.is_ident()
                && tracked.iter().any(|n| n == &t.text)
                && i + 3 < toks.len()
                && toks[i + 1].text == "."
                && ITER_METHODS.contains(&toks[i + 2].text.as_str())
                && toks[i + 3].text == "("
            {
                out.push(self.diag(file, t.line, &t.text, &toks[i + 2].text));
            }
            // `for pat in [&][mut] name {`.
            if t.text == "for" {
                let hi = (i + 16).min(toks.len());
                let Some(j) = (i + 1..hi).find(|&j| toks[j].text == "in") else {
                    continue;
                };
                let mut k = j + 1;
                while k < toks.len() && (toks[k].text == "&" || toks[k].text == "mut") {
                    k += 1;
                }
                if k + 1 < toks.len()
                    && toks[k].is_ident()
                    && tracked.iter().any(|n| n == &toks[k].text)
                    && toks[k + 1].text == "{"
                    && !file.in_test_code(k)
                {
                    out.push(self.diag(file, toks[k].line, &toks[k].text, "for"));
                }
            }
        }
    }
}

impl UnorderedIter {
    fn diag(&self, file: &SourceFile, line: u32, name: &str, how: &str) -> Diagnostic {
        Diagnostic {
            rule: self.name(),
            path: file.path.clone(),
            line,
            msg: format!(
                "iteration (`{how}`) over unordered hash collection `{name}` on a \
                 result path — collect and sort keys before consuming"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        let mut out = Vec::new();
        UnorderedIter.check(&f, &LintConfig::default(), &mut out);
        out
    }

    #[test]
    fn flags_let_bound_map_iteration() {
        let d = run("fn f() { let mut m: HashMap<u32, u32> = HashMap::new(); \
                     for (k, v) in &m { emit(k, v); } }");
        assert_eq!(d.len(), 1);
        assert!(d[0].msg.contains("`m`"));
    }

    #[test]
    fn flags_param_typed_set_methods() {
        let d = run("fn f(seen: &HashSet<u32>) -> Vec<u32> { seen.iter().copied().collect() }");
        assert_eq!(d.len(), 1);
        assert!(d[0].msg.contains("`seen`"));
    }

    #[test]
    fn ignores_insert_len_and_out_of_scope_paths() {
        assert!(run("fn f() { let mut m = HashMap::new(); m.insert(1, 2); m.len(); }").is_empty());
        let f = SourceFile::parse(
            "crates/geo/src/x.rs",
            "fn f(m: &HashMap<u32, u32>) { for (k, v) in m.iter() {} }",
        );
        let mut out = Vec::new();
        UnorderedIter.check(&f, &LintConfig::default(), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn fully_qualified_type_still_tracks() {
        let d = run("fn f(m: &std::collections::HashMap<u32, u32>) { for x in &m {} }");
        assert_eq!(d.len(), 1);
    }
}
