//! `hot-path-alloc` v2 — the workspace half of the rule: allocation in
//! any fn *transitively reachable* from a configured hot-path root
//! (`lint.toml` `[hot-path-alloc] roots = …`) or from a
//! `// lint: hot-path`-marked fn, reported with the shortest call
//! chain from the root.
//!
//! The file-local half ([`super::HotPathAlloc`]) patrols the *bodies*
//! of marked fns; this half patrols everything those bodies (and the
//! configured roots) call. Marked fns are therefore used as roots but
//! their own sites are skipped here — one site, one rule, one allow.
//!
//! Beyond the v1 site set, the reachability pass also flags the buffer
//! *growth* methods (`.extend()`, `.resize()`, `.resize_with()`,
//! `.reserve()`, `.append()`). Bare `.push(…)` is deliberately not in
//! the set: pushing into a recycled workspace buffer (cleared each
//! round, capacity retained) is the sanctioned zero-alloc idiom, and
//! growth is caught where buffers are created or resized instead.
//!
//! `[hot-path-alloc] allow = <path prefixes>` exempts files wholesale
//! (e.g. cold-path config loaders dragged in by over-approximate
//! method resolution).

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::source::FileKind;
use crate::symgraph::SymbolGraph;

use super::WorkspaceRule;

/// See the module docs.
pub struct HotPathReach;

impl WorkspaceRule for HotPathReach {
    fn name(&self) -> &'static str {
        "hot-path-alloc"
    }

    fn rationale(&self) -> &'static str {
        "allocation reachable from a hot-path root multiplies by snapshot×pair counts; \
         hoist into pre-allocated workspaces"
    }

    fn check(&self, graph: &SymbolGraph, cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        let mut roots: Vec<u32> = Vec::new();
        for pat in &cfg.hot_path_roots {
            roots.extend(graph.match_pattern(pat));
        }
        roots.extend((0..graph.nodes.len() as u32).filter(|&i| graph.nodes[i as usize].hot_marked));
        roots.sort_unstable();
        roots.dedup();

        // The declared cold boundary: traversal stops at these fns.
        let mut cold = vec![false; graph.nodes.len()];
        for pat in &cfg.hot_path_cold {
            for i in graph.match_pattern(pat) {
                cold[i as usize] = true;
            }
        }

        // Hot paths live in library code; edges into bins/tests are
        // method-name resolution noise, not execution paths.
        let allowed = |i: u32, n: &crate::symgraph::SymNode| {
            n.kind == FileKind::Lib && !n.sym.is_test && !cold[i as usize]
        };
        let reach = graph.reach(&roots, &allowed);

        for (i, n) in graph.nodes.iter().enumerate() {
            if !reach.reached(i as u32)
                || n.hot_marked // body patrolled by the file-local half
                || LintConfig::path_matches(&n.path, &cfg.hot_path_allow)
            {
                continue;
            }
            for site in &n.sym.allocs {
                let chain = reach.chain(i as u32);
                out.push(Diagnostic {
                    rule: "hot-path-alloc",
                    path: n.path.clone(),
                    line: site.line,
                    msg: format!(
                        "`{}` allocates on a hot path (reached via {})",
                        site.what,
                        graph.chain_display(&chain),
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run_cfg(files: &[(&str, &str)], cfg: &LintConfig) -> Vec<Diagnostic> {
        let parsed: Vec<SourceFile> = files.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
        let graph = SymbolGraph::build(&parsed);
        let mut out = Vec::new();
        HotPathReach.check(&graph, cfg, &mut out);
        out
    }

    fn cfg_with_root(root: &str) -> LintConfig {
        LintConfig {
            hot_path_roots: vec![root.to_string()],
            ..LintConfig::default()
        }
    }

    #[test]
    fn configured_root_reaches_through_two_hops() {
        let out = run_cfg(
            &[(
                "crates/a/src/lib.rs",
                "struct W;\n\
                 impl W { pub fn apply(&self) { relax(); } }\n\
                 fn relax() { settle(); }\n\
                 fn settle() { let v: Vec<u32> = Vec::new(); }",
            )],
            &cfg_with_root("W::apply"),
        );
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].line, 4);
        assert!(
            out[0].msg.contains("W::apply → relax → settle"),
            "{}",
            out[0].msg
        );
    }

    #[test]
    fn marked_fns_are_roots_but_their_bodies_are_v1_territory() {
        let out = run_cfg(
            &[(
                "crates/a/src/lib.rs",
                "// lint: hot-path\n\
                 fn hot() { let v = vec![1]; helper(); }\n\
                 fn helper() { let s = x.to_vec(); }",
            )],
            &LintConfig::default(),
        );
        // Only helper's site: hot()'s own vec! belongs to the local rule.
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn growth_methods_flagged_but_push_sanctioned() {
        let out = run_cfg(
            &[(
                "crates/a/src/lib.rs",
                "struct W;\n\
                 impl W { pub fn apply(&self) { fill(); } }\n\
                 fn fill() { buf.push(1); buf.extend(other); }",
            )],
            &cfg_with_root("W::apply"),
        );
        assert_eq!(out.len(), 1, "{out:#?}");
        assert!(out[0].msg.contains(".extend()"), "{}", out[0].msg);
    }

    #[test]
    fn cold_code_is_untouched() {
        let out = run_cfg(
            &[(
                "crates/a/src/lib.rs",
                "pub fn cold_setup() { let v: Vec<u32> = Vec::new(); }",
            )],
            &cfg_with_root("W::apply"),
        );
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn cold_boundary_stops_traversal() {
        let mut cfg = cfg_with_root("W::apply");
        cfg.hot_path_cold = vec!["W::setup".into()];
        let out = run_cfg(
            &[(
                "crates/a/src/lib.rs",
                "struct W;\n\
                 impl W {\n\
                     pub fn apply(&self) { self.setup(); relax(); }\n\
                     fn setup(&self) { let v = vec![1]; init_tables(); }\n\
                 }\n\
                 fn init_tables() { let t: Vec<u32> = Vec::new(); }\n\
                 fn relax() { buf.extend(x); }",
            )],
            &cfg,
        );
        // setup and everything only-reachable-through-it is cold;
        // relax stays hot.
        assert_eq!(out.len(), 1, "{out:#?}");
        assert!(out[0].msg.contains(".extend()"), "{}", out[0].msg);
    }

    #[test]
    fn allow_paths_exempt_files() {
        let mut cfg = cfg_with_root("entry");
        cfg.hot_path_allow = vec!["crates/b/".into()];
        let out = run_cfg(
            &[
                ("crates/a/src/lib.rs", "pub fn entry() { load(); }"),
                ("crates/b/src/lib.rs", "pub fn load() { let v = vec![1]; }"),
            ],
            &cfg,
        );
        assert!(out.is_empty(), "{out:#?}");
    }
}
