//! `print-in-lib`: `println!`/`eprintln!`/`print!`/`eprint!`/`dbg!` in
//! library code.
//!
//! Bins own stdout (it is often the data channel — CSV to a pipe);
//! libraries writing to it corrupt that stream, and stray `dbg!` is
//! debug residue. Library-side reporting goes through
//! `leo_util::telemetry` (levelled, sink-controlled) instead. The
//! telemetry/bench reporter files themselves are allowlisted — printing
//! is their job.

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::rules::Rule;
use crate::source::{FileKind, SourceFile};

/// See module docs.
pub struct PrintInLib;

const PRINT_MACROS: &[&str] = &["println", "print", "eprintln", "eprint", "dbg"];

impl Rule for PrintInLib {
    fn name(&self) -> &'static str {
        "print-in-lib"
    }

    fn rationale(&self) -> &'static str {
        "libraries must not write to stdio; that belongs to bins and telemetry"
    }

    fn check(&self, file: &SourceFile, cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        if file.kind != FileKind::Lib || LintConfig::path_matches(&file.path, &cfg.print_allow) {
            return;
        }
        for (i, t) in file.toks.iter().enumerate() {
            if PRINT_MACROS.contains(&t.text.as_str())
                && t.is_ident()
                && file.toks.get(i + 1).map(|n| n.text.as_str()) == Some("!")
                && !file.in_test_code(i)
            {
                out.push(Diagnostic {
                    rule: self.name(),
                    path: file.path.clone(),
                    line: t.line,
                    msg: format!(
                        "`{}!` in library code — route through `leo_util::telemetry` \
                         (or move the printing into the bin)",
                        t.text
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse(path, src);
        let mut out = Vec::new();
        PrintInLib.check(&f, &LintConfig::default(), &mut out);
        out
    }

    #[test]
    fn flags_prints_in_lib_not_bin() {
        let src = "fn f() { println!(\"x\"); eprintln!(\"y\"); dbg!(z); }";
        assert_eq!(run("crates/x/src/lib.rs", src).len(), 3);
        assert!(run("crates/x/src/bin/tool.rs", src).is_empty());
        assert!(run("crates/x/src/main.rs", src).is_empty());
    }

    #[test]
    fn allowlist_and_tests_exempt() {
        let src = "fn f() { println!(\"x\"); }";
        assert!(run("crates/util/src/bench.rs", src).is_empty());
        assert!(run(
            "crates/x/src/lib.rs",
            "#[cfg(test)]\nmod t { fn g() { println!(\"x\"); } }"
        )
        .is_empty());
    }
}
