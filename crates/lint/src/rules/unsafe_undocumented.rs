//! `unsafe-undocumented`: every `unsafe` must carry a `// SAFETY:`
//! comment on its line or one of the few lines above it.
//!
//! The workspace is almost entirely safe Rust; the rare `unsafe` (UTF-8
//! byte-wise scanning in the telemetry JSON parser) is only auditable
//! if the invariant it relies on is written down where the block is.

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::rules::Rule;
use crate::source::SourceFile;

/// See module docs.
pub struct UnsafeUndocumented;

/// How many lines above the `unsafe` token the *end* of the comment run
/// may sit (allows an attribute or signature line in between).
const LOOKBACK_LINES: u32 = 2;

impl Rule for UnsafeUndocumented {
    fn name(&self) -> &'static str {
        "unsafe-undocumented"
    }

    fn rationale(&self) -> &'static str {
        "every unsafe block needs its invariant written down as `// SAFETY:`"
    }

    fn check(&self, file: &SourceFile, _cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        for t in &file.toks {
            if t.text != "unsafe" || !t.is_ident() {
                continue;
            }
            // Walk up through the contiguous comment run above the
            // `unsafe` line (a SAFETY block may be many lines long), with
            // a small slack so an attribute line does not break it.
            let mut lo = t.line.saturating_sub(LOOKBACK_LINES);
            while lo > 1
                && file
                    .comments
                    .iter()
                    .any(|c| c.line == lo - 1 && !c.trailing)
            {
                lo -= 1;
            }
            let documented = file.comments.iter().any(|c| {
                c.line >= lo && c.line <= t.line && c.text.trim_start().starts_with("SAFETY:")
            });
            if !documented {
                out.push(Diagnostic {
                    rule: self.name(),
                    path: file.path.clone(),
                    line: t.line,
                    msg: "`unsafe` without a preceding `// SAFETY:` comment stating the \
                          invariant it relies on"
                        .into(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let mut out = Vec::new();
        UnsafeUndocumented.check(&f, &LintConfig::default(), &mut out);
        out
    }

    #[test]
    fn undocumented_unsafe_flagged() {
        let d = run("fn f(b: &[u8]) { let x = unsafe { *b.get_unchecked(0) }; }");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn safety_comment_satisfies_nearby_or_trailing() {
        assert!(
            run("// SAFETY: index bounds checked by caller\nfn f() { unsafe { g() } }").is_empty()
        );
        assert!(run("fn f() { unsafe { g() } } // SAFETY: g has no preconditions").is_empty());
        // Comment too far above does not count.
        let src = "// SAFETY: stale\n\n\n\n\n\nfn f() { unsafe { g() } }";
        assert_eq!(run(src).len(), 1);
    }
}
