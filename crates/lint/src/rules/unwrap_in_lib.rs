//! `unwrap-in-lib`: `.unwrap()` / `.expect(…)` in library code.
//!
//! Library crates are the reusable substrate under every figure bin and
//! the future service layer; a panic there takes down whatever embeds
//! it with no context. Return a typed/contextful error instead, or —
//! where the invariant is locally provable — document it with
//! `// lint: allow(unwrap-in-lib) <why it cannot fail>`.
//!
//! Bins may unwrap (fail-fast CLIs), and test code is exempt (panics
//! are the assertion mechanism).

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::rules::Rule;
use crate::source::{FileKind, SourceFile};

/// See module docs.
pub struct UnwrapInLib;

impl Rule for UnwrapInLib {
    fn name(&self) -> &'static str {
        "unwrap-in-lib"
    }

    fn rationale(&self) -> &'static str {
        "library code must not panic without context; bins and tests may"
    }

    fn check(&self, file: &SourceFile, _cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        if file.kind != FileKind::Lib {
            return;
        }
        let toks = &file.toks;
        for i in 1..toks.len() {
            let t = &toks[i];
            if (t.text == "unwrap" || t.text == "expect")
                && t.is_ident()
                && toks[i - 1].text == "."
                && toks.get(i + 1).map(|n| n.text.as_str()) == Some("(")
                && !file.in_test_code(i)
            {
                out.push(Diagnostic {
                    rule: self.name(),
                    path: file.path.clone(),
                    line: t.line,
                    msg: format!(
                        "`.{}()` in library code — return a contextful error, or prove \
                         the invariant and document with `lint: allow(unwrap-in-lib)`",
                        t.text
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse(path, src);
        let mut out = Vec::new();
        UnwrapInLib.check(&f, &LintConfig::default(), &mut out);
        out
    }

    #[test]
    fn flags_unwrap_and_expect_in_lib_only() {
        let src = "fn f() { x.unwrap(); y.expect(\"msg\"); }";
        assert_eq!(run("crates/x/src/lib.rs", src).len(), 2);
        assert!(run("crates/x/src/bin/tool.rs", src).is_empty());
        assert!(run("crates/x/tests/it.rs", src).is_empty());
    }

    #[test]
    fn test_mod_and_non_method_uses_exempt() {
        assert!(run(
            "crates/x/src/lib.rs",
            "#[cfg(test)]\nmod t { fn g() { x.unwrap(); } }"
        )
        .is_empty());
        // A fn named unwrap being *defined* is not a call site.
        assert!(run("crates/x/src/lib.rs", "fn unwrap() {}").is_empty());
        assert!(run("crates/x/src/lib.rs", "fn f() { x.unwrap_or(0); }").is_empty());
    }
}
