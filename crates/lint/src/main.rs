//! `leo-lint` — workspace static analysis driver.
//!
//! ```text
//! leo-lint [--deny] [--jsonl] [--root DIR] [--config FILE] [--rules]
//!          [--threads N] [--graph-out FILE] [PATH…]
//! ```
//!
//! Walks `--root` (default: the current directory) for `.rs` files,
//! applies every rule, prints `file:line` diagnostics (human form, or
//! one JSON object per line with `--jsonl`) plus a summary that counts
//! applied suppressions. `PATH…` arguments restrict *reporting* to
//! files under those workspace-relative prefixes; the symbol graph is
//! always built from the whole workspace so reachability findings
//! don't change with the filter. `--threads N` pins the file-parse
//! pool (0 = hardware default; output is bytewise identical either
//! way). `--graph-out FILE` persists the symbol/call graph as JSONL.
//!
//! Exit codes: `0` clean (or findings without `--deny`), `1` findings
//! under `--deny` (the CI lane), `2` usage or IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use leo_lint::config::LintConfig;
use leo_lint::rules::{all_rules, workspace_rules};
use leo_lint::Linter;

struct Args {
    deny: bool,
    jsonl: bool,
    list_rules: bool,
    root: PathBuf,
    config: Option<PathBuf>,
    threads: usize,
    graph_out: Option<PathBuf>,
    filters: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny: false,
        jsonl: false,
        list_rules: false,
        root: PathBuf::from("."),
        config: None,
        threads: 0,
        graph_out: None,
        filters: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny" => args.deny = true,
            "--jsonl" => args.jsonl = true,
            "--rules" => args.list_rules = true,
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config needs a file")?));
            }
            "--threads" => {
                let n = it.next().ok_or("--threads needs a count")?;
                args.threads = n
                    .parse()
                    .map_err(|_| format!("--threads: `{n}` is not a count"))?;
            }
            "--graph-out" => {
                args.graph_out = Some(PathBuf::from(it.next().ok_or("--graph-out needs a file")?));
            }
            "--help" | "-h" => {
                println!(
                    "usage: leo-lint [--deny] [--jsonl] [--root DIR] [--config FILE] \
                     [--rules] [--threads N] [--graph-out FILE] [PATH...]"
                );
                std::process::exit(0);
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            path => args.filters.push(path.to_string()),
        }
    }
    Ok(args)
}

fn load_config(args: &Args) -> Result<LintConfig, String> {
    let path = match &args.config {
        Some(p) => p.clone(),
        None => {
            let default = args.root.join("lint.toml");
            if !default.is_file() {
                return Ok(LintConfig::default());
            }
            default
        }
    };
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    LintConfig::parse(&text)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("leo-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for rule in all_rules() {
            println!("{:<20} {}", rule.name(), rule.rationale());
        }
        for rule in workspace_rules() {
            println!("{:<20} [workspace] {}", rule.name(), rule.rationale());
        }
        println!(
            "{:<20} [audit] a `lint: allow` that suppresses nothing is itself an error",
            "stale-allow"
        );
        return ExitCode::SUCCESS;
    }
    let cfg = match load_config(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("leo-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let linter = Linter::new(cfg);
    let (report, graph) = match linter.run(&args.root, &args.filters, args.threads) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("leo-lint: walking {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &args.graph_out {
        if let Err(e) = std::fs::write(path, graph.to_jsonl()) {
            eprintln!("leo-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if args.jsonl {
        for d in &report.diagnostics {
            println!("{}", d.jsonl());
        }
        println!("{}", report.summary_jsonl());
    } else {
        for d in &report.diagnostics {
            println!("{}", d.human());
        }
        println!("{}", report.summary_human());
    }

    if args.deny && !report.diagnostics.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
