//! leo-lint: source-level static analysis for the workspace's
//! determinism and hygiene invariants.
//!
//! A hand-rolled lexer ([`lexer`]) feeds per-file analysis
//! ([`source::SourceFile`]) to eight rules ([`rules`]) that enforce
//! what `rustc` cannot see: no wall-clock reads outside telemetry, no
//! hash-order-dependent output, seeded RNG only, panic-free library
//! crates, zero-alloc hot paths, documented `unsafe`, explicit float
//! comparisons in tests, and stdio-free libraries. Hermetic like the
//! rest of the workspace: depends only on `leo-util`.
//!
//! Suppressions are inline — `// lint: allow(<rule>) <reason>` — with
//! the reason mandatory, and every suppression is counted in the
//! report so the escape hatch stays visible. `// lint: hot-path` marks
//! the next `fn` as a zero-alloc region for `hot-path-alloc`.

pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod walk;

use std::fs;
use std::io;
use std::path::Path;

use config::LintConfig;
use diag::{Diagnostic, LintReport};
use source::{Directive, FileKind, SourceFile};

/// Lint outcome for one file.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Surviving (unsuppressed) diagnostics.
    pub diagnostics: Vec<Diagnostic>,
    /// `(rule, line)` of each applied suppression.
    pub suppressed: Vec<(String, u32)>,
    /// Lines of valid `allow` directives that matched nothing.
    pub unused_allows: Vec<u32>,
}

/// The rule runner: applies every rule, then the suppression pass.
pub struct Linter {
    cfg: LintConfig,
    rules: Vec<Box<dyn rules::Rule>>,
    known: Vec<&'static str>,
}

impl Linter {
    /// Build a runner over the full rule registry.
    pub fn new(cfg: LintConfig) -> Linter {
        Linter {
            cfg,
            rules: rules::all_rules(),
            known: rules::known_rule_names(),
        }
    }

    /// The active configuration.
    pub fn cfg(&self) -> &LintConfig {
        &self.cfg
    }

    /// Lint one parsed file.
    pub fn check_file(&self, file: &SourceFile) -> FileOutcome {
        let mut raw = Vec::new();
        for rule in &self.rules {
            rule.check(file, &self.cfg, &mut raw);
        }

        let mut outcome = FileOutcome::default();
        // Directive hygiene: malformed comments and bare allows are
        // diagnostics themselves (and bare/unknown allows never
        // suppress — the reason is the price of the escape hatch).
        let mut allows: Vec<(&str, u32, bool, bool)> = Vec::new(); // (rule, line, trailing, used)
        for d in &file.directives {
            match d {
                Directive::Malformed { line } => raw.push(Diagnostic {
                    rule: "bad-directive",
                    path: file.path.clone(),
                    line: *line,
                    msg: "unparseable `// lint:` directive — expected `allow(<rule>) <reason>` \
                          or `hot-path`"
                        .into(),
                }),
                Directive::Allow {
                    rule,
                    reason,
                    line,
                    trailing,
                } => {
                    if !self.known.contains(&rule.as_str()) {
                        raw.push(Diagnostic {
                            rule: "bad-directive",
                            path: file.path.clone(),
                            line: *line,
                            msg: format!("`lint: allow({rule})` names an unknown rule"),
                        });
                    } else if reason.is_empty() {
                        raw.push(Diagnostic {
                            rule: "bare-allow",
                            path: file.path.clone(),
                            line: *line,
                            msg: format!(
                                "`lint: allow({rule})` without a written reason — say why \
                                 the invariant holds here"
                            ),
                        });
                    } else {
                        allows.push((rule, *line, *trailing, false));
                    }
                }
                Directive::HotPath { .. } => {}
            }
        }

        // Suppression pass: a trailing allow covers its own line; a
        // standalone allow covers itself and the next line.
        for d in raw {
            let hit = allows.iter_mut().find(|(rule, line, trailing, _)| {
                *rule == d.rule
                    && if *trailing {
                        d.line == *line
                    } else {
                        d.line == *line || d.line == *line + 1
                    }
            });
            match hit {
                Some(entry) => {
                    entry.3 = true;
                    outcome.suppressed.push((d.rule.to_string(), d.line));
                }
                None => outcome.diagnostics.push(d),
            }
        }
        for (_, line, _, used) in &allows {
            if !used {
                outcome.unused_allows.push(*line);
            }
        }
        outcome
    }

    /// Lint source text as the file at `rel_path`, optionally forcing
    /// the [`FileKind`] (fixture corpora live under `tests/` but pose
    /// as lib/bin files).
    pub fn check_source(&self, rel_path: &str, text: &str, kind: Option<FileKind>) -> FileOutcome {
        let file = match kind {
            Some(k) => SourceFile::parse_as(rel_path, text, k),
            None => SourceFile::parse(rel_path, text),
        };
        self.check_file(&file)
    }

    /// Walk `root`, lint every non-excluded `.rs` file (restricted to
    /// `filters` prefixes when non-empty), and aggregate the report.
    pub fn run(&self, root: &Path, filters: &[String]) -> io::Result<LintReport> {
        let mut report = LintReport::default();
        let mut counts: Vec<(String, usize)> = Vec::new();
        for rel in walk::rs_files(root)? {
            if self.cfg.is_excluded(&rel) {
                continue;
            }
            if !filters.is_empty() && !filters.iter().any(|f| rel.starts_with(f.as_str())) {
                continue;
            }
            let text = fs::read_to_string(root.join(&rel))?;
            let outcome = self.check_source(&rel, &text, None);
            report.files += 1;
            report.diagnostics.extend(outcome.diagnostics);
            for (rule, _) in outcome.suppressed {
                match counts.iter_mut().find(|(r, _)| *r == rule) {
                    Some((_, n)) => *n += 1,
                    None => counts.push((rule, 1)),
                }
            }
            for line in outcome.unused_allows {
                report.unused_allows.push(format!("{rel}:{line}"));
            }
        }
        report
            .diagnostics
            .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        counts.sort_unstable();
        report.suppressed = counts;
        report.unused_allows.sort_unstable();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linter() -> Linter {
        Linter::new(LintConfig::default())
    }

    #[test]
    fn suppression_with_reason_applies_and_counts() {
        let src =
            "fn f() {\n    x.unwrap(); // lint: allow(unwrap-in-lib) index proven in bounds\n}";
        let out = linter().check_source("crates/x/src/lib.rs", src, None);
        assert!(out.diagnostics.is_empty(), "{:#?}", out.diagnostics);
        assert_eq!(out.suppressed, vec![("unwrap-in-lib".to_string(), 2)]);
    }

    #[test]
    fn standalone_allow_covers_next_line() {
        let src = "fn f() {\n    // lint: allow(unwrap-in-lib) checked above\n    x.unwrap();\n}";
        let out = linter().check_source("crates/x/src/lib.rs", src, None);
        assert!(out.diagnostics.is_empty());
        assert_eq!(out.suppressed.len(), 1);
    }

    #[test]
    fn bare_allow_is_a_diagnostic_and_does_not_suppress() {
        let src = "fn f() {\n    x.unwrap(); // lint: allow(unwrap-in-lib)\n}";
        let out = linter().check_source("crates/x/src/lib.rs", src, None);
        let rules: Vec<&str> = out.diagnostics.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"bare-allow"), "{rules:?}");
        assert!(rules.contains(&"unwrap-in-lib"), "{rules:?}");
        assert!(out.suppressed.is_empty());
    }

    #[test]
    fn unknown_rule_and_malformed_directive_flagged() {
        let src = "// lint: allow(no-such-rule) because\n// lint: wat\nfn f() {}";
        let out = linter().check_source("crates/x/src/lib.rs", src, None);
        assert_eq!(out.diagnostics.len(), 2);
        assert!(out.diagnostics.iter().all(|d| d.rule == "bad-directive"));
    }

    #[test]
    fn unused_allow_reported() {
        let src = "// lint: allow(wall-clock) nothing here actually\nfn f() {}";
        let out = linter().check_source("crates/x/src/lib.rs", src, None);
        assert!(out.diagnostics.is_empty());
        assert_eq!(out.unused_allows, vec![1]);
    }

    #[test]
    fn forced_kind_overrides_path() {
        // Under tests/ this would be exempt from unwrap-in-lib; forcing
        // Lib makes it fire — the mechanism fixture corpora rely on.
        let src = "fn f() { x.unwrap(); }";
        let out =
            linter().check_source("crates/lint/tests/fixtures/u.rs", src, Some(FileKind::Lib));
        assert_eq!(out.diagnostics.len(), 1);
    }
}
