//! leo-lint: source-level static analysis for the workspace's
//! determinism and hygiene invariants.
//!
//! A hand-rolled lexer ([`lexer`]) feeds per-file analysis
//! ([`source::SourceFile`]) to eight file-local rules ([`rules`]) that
//! enforce what `rustc` cannot see: no wall-clock reads outside
//! telemetry, no hash-order-dependent output, seeded RNG only,
//! panic-free library crates, zero-alloc hot paths, documented
//! `unsafe`, explicit float comparisons in tests, and stdio-free
//! libraries. On top of the lexer, an item parser ([`parser`]) builds a
//! workspace symbol graph ([`symgraph`]) for the reachability rules —
//! `panic-reachable` and the workspace half of `hot-path-alloc` — that
//! check invariants *across* files along the over-approximate call
//! graph. Hermetic like the rest of the workspace: depends only on
//! `leo-util` and `leo-core` (for the parallel map).
//!
//! Suppressions are inline — `// lint: allow(<rule>) <reason>` — with
//! the reason mandatory, and every suppression is counted in the
//! report so the escape hatch stays visible. A suppression that
//! suppresses nothing is itself an error (`stale-allow`): the audit
//! trail must describe the tree as it is, not as it once was.
//! `// lint: hot-path` marks the next `fn` as a zero-alloc region for
//! `hot-path-alloc` (body checked file-locally, callees checked via
//! the graph).
//!
//! The run pipeline is two-phase: files parse and run file-local rules
//! in parallel ([`leo_core::par::parallel_map`], order-preserving),
//! then the symbol graph builds single-pass and workspace rules,
//! suppression, and `stale-allow` auditing run deterministically.
//! Output is bytewise independent of the thread count.

pub mod config;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod source;
pub mod symgraph;
pub mod walk;

use std::fs;
use std::io;
use std::path::Path;

use config::LintConfig;
use diag::{Diagnostic, LintReport};
use source::{Directive, FileKind, SourceFile};
use symgraph::SymbolGraph;

/// Current analyzer version, recorded in run manifests so a
/// `lint_clean` flag certifies against a known rule set (an old log
/// cannot silently pass a newer, stricter bar).
pub const LINT_VERSION: u32 = 2;

/// One file to lint: its workspace-relative path, full text, and an
/// optional forced [`FileKind`] (fixture corpora live under `tests/`
/// but pose as lib/bin files).
pub struct FileSpec {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Full source text.
    pub text: String,
    /// Forced kind, or `None` to classify from the path.
    pub kind: Option<FileKind>,
}

/// Lint outcome for one file.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Surviving (unsuppressed) diagnostics, including any
    /// `stale-allow` findings for this file.
    pub diagnostics: Vec<Diagnostic>,
    /// `(rule, line)` of each applied suppression.
    pub suppressed: Vec<(String, u32)>,
}

/// Outcome of linting a set of files as one workspace.
pub struct WorkspaceOutcome {
    /// Per-file outcomes, sorted by path.
    pub outcomes: Vec<(String, FileOutcome)>,
    /// The symbol graph the workspace rules ran over.
    pub graph: SymbolGraph,
}

/// The rule runner: applies every rule, then the suppression pass.
pub struct Linter {
    cfg: LintConfig,
    rules: Vec<Box<dyn rules::Rule>>,
    ws_rules: Vec<Box<dyn rules::WorkspaceRule>>,
    known: Vec<&'static str>,
}

impl Linter {
    /// Build a runner over the full rule registry.
    pub fn new(cfg: LintConfig) -> Linter {
        Linter {
            cfg,
            rules: rules::all_rules(),
            ws_rules: rules::workspace_rules(),
            known: rules::known_rule_names(),
        }
    }

    /// The active configuration.
    pub fn cfg(&self) -> &LintConfig {
        &self.cfg
    }

    /// Lint `specs` as one workspace: parallel per-file parse + local
    /// rules, then graph build, workspace rules, suppression, and the
    /// stale-allow audit. `threads = 0` picks the hardware default;
    /// the result is bytewise identical at any thread count (files are
    /// sorted by path and [`leo_core::par::parallel_map`] preserves
    /// order).
    pub fn check_sources(&self, mut specs: Vec<FileSpec>, threads: usize) -> WorkspaceOutcome {
        specs.sort_by(|a, b| a.path.cmp(&b.path));

        // Phase A (parallel): parse + file-local rules.
        let mut parsed: Vec<(SourceFile, Vec<Diagnostic>)> =
            leo_core::par::parallel_map(&specs, threads, |spec| {
                let file = match spec.kind {
                    Some(k) => SourceFile::parse_as(&spec.path, &spec.text, k),
                    None => SourceFile::parse(&spec.path, &spec.text),
                };
                let mut raw = Vec::new();
                for rule in &self.rules {
                    rule.check(&file, &self.cfg, &mut raw);
                }
                (file, raw)
            });

        // Phase B (serial): symbol graph + workspace rules.
        let graph = SymbolGraph::build(parsed.iter().map(|(f, _)| f));
        let mut ws_raw: Vec<Diagnostic> = Vec::new();
        for rule in &self.ws_rules {
            rule.check(&graph, &self.cfg, &mut ws_raw);
        }
        // Route workspace diagnostics to their file (paths are sorted,
        // so binary search keeps this deterministic and O(log n)).
        for d in ws_raw {
            if let Ok(idx) = parsed.binary_search_by(|(f, _)| f.path.as_str().cmp(&d.path)) {
                parsed[idx].1.push(d);
            }
        }

        // Phase C: per-file suppression + stale-allow.
        let outcomes = parsed
            .into_iter()
            .map(|(file, raw)| {
                let out = self.suppress(&file, raw);
                (file.path, out)
            })
            .collect();
        WorkspaceOutcome { outcomes, graph }
    }

    /// Directive hygiene + the suppression pass for one file's raw
    /// diagnostics, then the stale-allow audit over its directives.
    fn suppress(&self, file: &SourceFile, mut raw: Vec<Diagnostic>) -> FileOutcome {
        let mut outcome = FileOutcome::default();
        // Directive hygiene: malformed comments and bare allows are
        // diagnostics themselves (and bare/unknown allows never
        // suppress — the reason is the price of the escape hatch).
        let mut allows: Vec<(&str, u32, bool, bool)> = Vec::new(); // (rule, line, trailing, used)
        for d in &file.directives {
            match d {
                Directive::Malformed { line } => raw.push(Diagnostic {
                    rule: "bad-directive",
                    path: file.path.clone(),
                    line: *line,
                    msg: "unparseable `// lint:` directive — expected `allow(<rule>) <reason>` \
                          or `hot-path`"
                        .into(),
                }),
                Directive::Allow {
                    rule,
                    reason,
                    line,
                    trailing,
                } => {
                    if !self.known.contains(&rule.as_str()) {
                        raw.push(Diagnostic {
                            rule: "bad-directive",
                            path: file.path.clone(),
                            line: *line,
                            msg: format!("`lint: allow({rule})` names an unknown rule"),
                        });
                    } else if reason.is_empty() {
                        raw.push(Diagnostic {
                            rule: "bare-allow",
                            path: file.path.clone(),
                            line: *line,
                            msg: format!(
                                "`lint: allow({rule})` without a written reason — say why \
                                 the invariant holds here"
                            ),
                        });
                    } else {
                        allows.push((rule, *line, *trailing, false));
                    }
                }
                Directive::HotPath { .. } => {}
            }
        }

        // Suppression pass: a trailing allow covers its own line; a
        // standalone allow covers itself and the next line.
        for d in raw {
            let hit = allows.iter_mut().find(|(rule, line, trailing, _)| {
                *rule == d.rule
                    && if *trailing {
                        d.line == *line
                    } else {
                        d.line == *line || d.line == *line + 1
                    }
            });
            match hit {
                Some(entry) => {
                    entry.3 = true;
                    outcome.suppressed.push((d.rule.to_string(), d.line));
                }
                None => outcome.diagnostics.push(d),
            }
        }
        // Stale-allow audit: a reasoned allow that suppressed nothing
        // is an error in its own right — and deliberately not
        // suppressible (allowing the audit would be circular).
        for (rule, line, _, used) in &allows {
            if !used {
                outcome.diagnostics.push(Diagnostic {
                    rule: "stale-allow",
                    path: file.path.clone(),
                    line: *line,
                    msg: format!(
                        "`lint: allow({rule})` suppresses nothing — remove it (stale \
                         suppressions rot the audit trail)"
                    ),
                });
            }
        }
        outcome
            .diagnostics
            .sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
        outcome
    }

    /// Lint source text as the file at `rel_path` (a one-file
    /// workspace: the reachability rules see this file's symbols only),
    /// optionally forcing the [`FileKind`].
    pub fn check_source(&self, rel_path: &str, text: &str, kind: Option<FileKind>) -> FileOutcome {
        let spec = FileSpec {
            path: rel_path.to_string(),
            text: text.to_string(),
            kind,
        };
        let mut ws = self.check_sources(vec![spec], 1);
        ws.outcomes.pop().map(|(_, o)| o).unwrap_or_default()
    }

    /// Walk `root`, lint every non-excluded `.rs` file, and aggregate
    /// the report. The symbol graph is always built from the *whole*
    /// workspace; `filters` (path prefixes) restrict which files'
    /// diagnostics are reported, not what the reachability rules see.
    pub fn run(
        &self,
        root: &Path,
        filters: &[String],
        threads: usize,
    ) -> io::Result<(LintReport, SymbolGraph)> {
        let mut specs = Vec::new();
        for rel in walk::rs_files(root)? {
            if self.cfg.is_excluded(&rel) {
                continue;
            }
            let text = fs::read_to_string(root.join(&rel))?;
            specs.push(FileSpec {
                path: rel,
                text,
                kind: None,
            });
        }
        let ws = self.check_sources(specs, threads);

        let mut report = LintReport::default();
        let mut counts: Vec<(String, usize)> = Vec::new();
        for (path, outcome) in ws.outcomes {
            if !filters.is_empty() && !filters.iter().any(|f| path.starts_with(f.as_str())) {
                continue;
            }
            report.files += 1;
            report.diagnostics.extend(outcome.diagnostics);
            for (rule, _) in outcome.suppressed {
                match counts.iter_mut().find(|(r, _)| *r == rule) {
                    Some((_, n)) => *n += 1,
                    None => counts.push((rule, 1)),
                }
            }
        }
        report
            .diagnostics
            .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        counts.sort_unstable();
        report.suppressed = counts;
        Ok((report, ws.graph))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linter() -> Linter {
        Linter::new(LintConfig::default())
    }

    #[test]
    fn suppression_with_reason_applies_and_counts() {
        let src =
            "fn f() {\n    x.unwrap(); // lint: allow(unwrap-in-lib) index proven in bounds\n}";
        let out = linter().check_source("crates/x/src/lib.rs", src, None);
        assert!(out.diagnostics.is_empty(), "{:#?}", out.diagnostics);
        assert_eq!(out.suppressed, vec![("unwrap-in-lib".to_string(), 2)]);
    }

    #[test]
    fn standalone_allow_covers_next_line() {
        let src = "fn f() {\n    // lint: allow(unwrap-in-lib) checked above\n    x.unwrap();\n}";
        let out = linter().check_source("crates/x/src/lib.rs", src, None);
        assert!(out.diagnostics.is_empty());
        assert_eq!(out.suppressed.len(), 1);
    }

    #[test]
    fn bare_allow_is_a_diagnostic_and_does_not_suppress() {
        let src = "fn f() {\n    x.unwrap(); // lint: allow(unwrap-in-lib)\n}";
        let out = linter().check_source("crates/x/src/lib.rs", src, None);
        let rules: Vec<&str> = out.diagnostics.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"bare-allow"), "{rules:?}");
        assert!(rules.contains(&"unwrap-in-lib"), "{rules:?}");
        assert!(out.suppressed.is_empty());
    }

    #[test]
    fn unknown_rule_and_malformed_directive_flagged() {
        let src = "// lint: allow(no-such-rule) because\n// lint: wat\nfn f() {}";
        let out = linter().check_source("crates/x/src/lib.rs", src, None);
        assert_eq!(out.diagnostics.len(), 2);
        assert!(out.diagnostics.iter().all(|d| d.rule == "bad-directive"));
    }

    #[test]
    fn stale_allow_is_an_error() {
        let src = "// lint: allow(wall-clock) nothing here actually\nfn f() {}";
        let out = linter().check_source("crates/x/src/lib.rs", src, None);
        assert_eq!(out.diagnostics.len(), 1, "{:#?}", out.diagnostics);
        assert_eq!(out.diagnostics[0].rule, "stale-allow");
        assert_eq!(out.diagnostics[0].line, 1);
    }

    #[test]
    fn allowing_the_stale_allow_audit_is_circular_and_fails() {
        // `allow(stale-allow)` can never suppress anything (the audit
        // runs after suppression), so it is always itself stale.
        let src = "// lint: allow(stale-allow) trying to dodge the audit\nfn f() {}";
        let out = linter().check_source("crates/x/src/lib.rs", src, None);
        assert_eq!(out.diagnostics.len(), 1);
        assert_eq!(out.diagnostics[0].rule, "stale-allow");
    }

    #[test]
    fn forced_kind_overrides_path() {
        // Under tests/ this would be exempt from unwrap-in-lib; forcing
        // Lib makes it fire — the mechanism fixture corpora rely on.
        let src = "fn f() { x.unwrap(); }";
        let out =
            linter().check_source("crates/lint/tests/fixtures/u.rs", src, Some(FileKind::Lib));
        assert_eq!(out.diagnostics.len(), 1);
    }

    #[test]
    fn workspace_rules_fire_through_check_source() {
        let src = "pub fn api() { helper(); }\nfn helper() { panic!(\"boom\"); }";
        let out = linter().check_source("crates/x/src/lib.rs", src, None);
        assert_eq!(out.diagnostics.len(), 1, "{:#?}", out.diagnostics);
        assert_eq!(out.diagnostics[0].rule, "panic-reachable");
        assert!(out.diagnostics[0].msg.contains("api → helper"));
    }

    #[test]
    fn workspace_diagnostics_are_suppressible_and_allows_count_as_used() {
        let src = "pub fn api() { helper(); }\n\
                   fn helper() {\n\
                       panic!(\"boom\"); // lint: allow(panic-reachable) unreachable: api guards\n\
                   }";
        let out = linter().check_source("crates/x/src/lib.rs", src, None);
        assert!(out.diagnostics.is_empty(), "{:#?}", out.diagnostics);
        assert_eq!(out.suppressed, vec![("panic-reachable".to_string(), 3)]);
    }

    #[test]
    fn cross_file_reachability_via_check_sources() {
        let specs = vec![
            FileSpec {
                path: "crates/a/src/lib.rs".into(),
                text: "pub fn api() { helper(); }".into(),
                kind: None,
            },
            FileSpec {
                path: "crates/b/src/lib.rs".into(),
                text: "pub(crate) fn helper() { todo!() }".into(),
                kind: None,
            },
        ];
        let ws = Linter::new(LintConfig::default()).check_sources(specs, 1);
        let all: Vec<&Diagnostic> = ws
            .outcomes
            .iter()
            .flat_map(|(_, o)| o.diagnostics.iter())
            .collect();
        assert_eq!(all.len(), 1, "{all:#?}");
        assert_eq!(all[0].path, "crates/b/src/lib.rs");
        assert!(all[0].msg.contains("api → helper"), "{}", all[0].msg);
    }
}
