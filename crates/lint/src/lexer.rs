//! A small hand-rolled Rust lexer — just enough token fidelity for the
//! source-level rules in this crate (see `rules/`), hermetic per the
//! workspace policy (no syn/proc-macro2).
//!
//! Produces a flat token stream with line numbers, plus the line
//! comments as a separate channel (rules read `// SAFETY:` and
//! `// lint:` directives from it). It is *not* a full Rust grammar:
//! no macro expansion, no type resolution. Rules that need more than
//! tokens (e.g. "which identifiers hold a `HashMap`") use documented
//! lexical heuristics with the inline-suppression escape hatch.
//!
//! Handled faithfully, because getting them wrong corrupts every rule
//! downstream: line/block comments (nested), string/raw-string/byte-
//! string literals, char literals vs lifetimes, numeric literals with
//! int/float distinction, and multi-character operators (`::`, `==`,
//! `..=`, …) as single tokens.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (keywords are not distinguished).
    Ident,
    /// `'a` lifetime (or loop label).
    Lifetime,
    /// Integer literal (any base, with or without suffix).
    Int,
    /// Float literal (`1.5`, `1e9`, `2f64`, …).
    Float,
    /// String, raw-string, or byte-string literal (content dropped).
    Str,
    /// Char or byte-char literal.
    Char,
    /// Operator or delimiter; multi-char operators are one token.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Kind of token.
    pub kind: TokKind,
    /// Exact source text. `Str`/`Char` tokens carry an empty string —
    /// literal content is dropped so it can never leak tokens into
    /// rules (property-tested in `tests/lexer_proptests.rs`).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
    /// Byte offset of the token start in the source — the span anchor
    /// the item parser sorts and slices by. Strictly increasing across
    /// the token stream (property-tested).
    pub pos: u32,
}

impl Tok {
    /// Is this an identifier/keyword token?
    pub fn is_ident(&self) -> bool {
        self.kind == TokKind::Ident
    }

    /// Is this a lifetime (or loop-label) token?
    pub fn is_lifetime(&self) -> bool {
        self.kind == TokKind::Lifetime
    }
}

/// One `//` comment: its 1-based line, whether any non-comment token
/// precedes it on that line (trailing), and its text after the slashes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line.
    pub line: u32,
    /// True when code precedes the comment on the same line.
    pub trailing: bool,
    /// Text after `//`, `///`, or `//!` (untrimmed).
    pub text: String,
}

/// Lexer output: the token stream plus the comment channel.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub toks: Vec<Tok>,
    /// All line comments in source order (block comments are skipped —
    /// directives and SAFETY markers are line comments by convention).
    pub comments: Vec<Comment>,
}

/// Multi-character operators recognized as single `Punct` tokens,
/// longest first so greedy matching is correct.
const MULTI_OPS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Tokenize Rust source text. Unterminated literals are tolerated (the
/// rest of the file becomes one literal token) — a linter must not
/// panic on odd input.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Tracks whether any token was produced on the current line, to
    // classify trailing comments.
    let mut code_on_line = false;

    let is_ident_start = |c: u8| c.is_ascii_alphabetic() || c == b'_' || c >= 0x80;
    let is_ident_cont = |c: u8| c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                code_on_line = false;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                // Skip the doc-comment marker char for the text, but keep
                // the full remainder of the line either way.
                let mut j = start;
                while j < b.len() && b[j] != b'\n' {
                    j += 1;
                }
                let mut text = &src[start..j];
                if let Some(rest) = text.strip_prefix('/').or_else(|| text.strip_prefix('!')) {
                    text = rest;
                }
                out.comments.push(Comment {
                    line,
                    trailing: code_on_line,
                    text: text.to_string(),
                });
                i = j;
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Nested block comment; count newlines inside.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < b.len() && depth > 0 {
                    if b[j] == b'\n' {
                        line += 1;
                        code_on_line = false;
                        j += 1;
                    } else if b[j] == b'/' && b.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && b.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            b'r' | b'b'
                if matches!(b.get(i + 1), Some(&b'"') | Some(&b'#') | Some(&b'r'))
                    && starts_raw_or_byte_literal(b, i) =>
            {
                let (j, newlines) = scan_string_like(b, i);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                    pos: i as u32,
                });
                line += newlines;
                code_on_line = true;
                i = j;
            }
            b'"' => {
                let (j, newlines) = scan_plain_string(b, i);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                    pos: i as u32,
                });
                line += newlines;
                code_on_line = true;
                i = j;
            }
            b'\'' => {
                // Char literal vs lifetime. `'a'` is a char; `'a` (no
                // closing quote after one ident) is a lifetime.
                if let Some(j) = scan_char_literal(b, i) {
                    out.toks.push(Tok {
                        kind: TokKind::Char,
                        text: String::new(),
                        line,
                        pos: i as u32,
                    });
                    i = j;
                } else {
                    let mut j = i + 1;
                    while j < b.len() && is_ident_cont(b[j]) {
                        j += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: src[i..j].to_string(),
                        line,
                        pos: i as u32,
                    });
                    i = j;
                }
                code_on_line = true;
            }
            c if c.is_ascii_digit() => {
                let (j, is_float) = scan_number(b, i);
                out.toks.push(Tok {
                    kind: if is_float {
                        TokKind::Float
                    } else {
                        TokKind::Int
                    },
                    text: src[i..j].to_string(),
                    line,
                    pos: i as u32,
                });
                code_on_line = true;
                i = j;
            }
            c if is_ident_start(c) => {
                let mut j = i + 1;
                while j < b.len() && is_ident_cont(b[j]) {
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[i..j].to_string(),
                    line,
                    pos: i as u32,
                });
                code_on_line = true;
                i = j;
            }
            _ => {
                let rest = &src[i..];
                let op = MULTI_OPS.iter().find(|op| rest.starts_with(**op));
                let text = match op {
                    Some(op) => (*op).to_string(),
                    None => src[i..i + 1].to_string(),
                };
                let pos = i as u32;
                i += text.len();
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text,
                    line,
                    pos,
                });
                code_on_line = true;
            }
        }
    }
    out
}

/// Does `b[i..]` start a raw/byte string literal (`r"`, `r#"`, `b"`,
/// `br#"`, …) as opposed to an identifier beginning with r/b?
fn starts_raw_or_byte_literal(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'r' {
        j += 1;
        while j < b.len() && b[j] == b'#' {
            j += 1;
        }
    }
    j < b.len() && b[j] == b'"' && j > i
}

/// Scan a raw/byte/plain string starting at a `r`/`b` prefix; returns
/// (end index, newline count).
fn scan_string_like(b: &[u8], i: usize) -> (usize, u32) {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    let raw = j < b.len() && b[j] == b'r';
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= b.len() || b[j] != b'"' {
        return (j, 0); // tolerated malformed input
    }
    if raw {
        j += 1;
        let mut newlines = 0u32;
        while j < b.len() {
            if b[j] == b'\n' {
                newlines += 1;
                j += 1;
            } else if b[j] == b'"' {
                let mut k = j + 1;
                let mut seen = 0usize;
                while k < b.len() && b[k] == b'#' && seen < hashes {
                    seen += 1;
                    k += 1;
                }
                if seen == hashes {
                    return (k, newlines);
                }
                j += 1;
            } else {
                j += 1;
            }
        }
        (j, newlines)
    } else {
        let (end, newlines) = scan_plain_string(b, j);
        (end, newlines)
    }
}

/// Scan a `"…"` string with escapes starting at the opening quote.
fn scan_plain_string(b: &[u8], i: usize) -> (usize, u32) {
    let mut j = i + 1;
    let mut newlines = 0u32;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\n' => {
                newlines += 1;
                j += 1;
            }
            b'"' => return (j + 1, newlines),
            _ => j += 1,
        }
    }
    (j, newlines)
}

/// Try to scan a char literal at a `'`; `None` means it is a lifetime.
fn scan_char_literal(b: &[u8], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if j >= b.len() {
        return None;
    }
    if b[j] == b'\\' {
        // Escape: consume to the closing quote (handles \u{…}).
        j += 1;
        while j < b.len() && b[j] != b'\'' {
            j += 1;
        }
        return (j < b.len()).then_some(j + 1);
    }
    // One scalar then a closing quote → char literal ('a', '�', '0').
    let len = match b[j] {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    };
    if b.get(j + len) == Some(&b'\'') {
        Some(j + len + 1)
    } else {
        None
    }
}

/// Scan a numeric literal; returns (end index, is_float).
fn scan_number(b: &[u8], i: usize) -> (usize, bool) {
    let mut j = i;
    let mut is_float = false;
    if b[j] == b'0' && matches!(b.get(j + 1), Some(&b'x') | Some(&b'o') | Some(&b'b')) {
        j += 2;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        return (j, false);
    }
    while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
        j += 1;
    }
    // Fractional part only when a digit follows the dot (so `0..5` and
    // tuple access `x.0` stay integer + punct).
    if j + 1 < b.len() && b[j] == b'.' && b[j + 1].is_ascii_digit() {
        is_float = true;
        j += 1;
        while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
            j += 1;
        }
    }
    // Exponent.
    if j < b.len() && (b[j] == b'e' || b[j] == b'E') {
        let mut k = j + 1;
        if k < b.len() && (b[k] == b'+' || b[k] == b'-') {
            k += 1;
        }
        if k < b.len() && b[k].is_ascii_digit() {
            is_float = true;
            j = k;
            while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
                j += 1;
            }
        }
    }
    // Suffix (u32, f64, usize, …).
    let suffix_start = j;
    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
        j += 1;
    }
    if b[suffix_start..j].starts_with(b"f32") || b[suffix_start..j].starts_with(b"f64") {
        is_float = true;
    }
    (j, is_float)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .toks
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let ts = kinds("let x = a::b(1);");
        assert_eq!(ts[0], (TokKind::Ident, "let".into()));
        assert_eq!(ts[1], (TokKind::Ident, "x".into()));
        assert_eq!(ts[2], (TokKind::Punct, "=".into()));
        assert_eq!(ts[4], (TokKind::Punct, "::".into()));
        assert_eq!(ts[6], (TokKind::Punct, "(".into()));
        assert_eq!(ts[7], (TokKind::Int, "1".into()));
    }

    #[test]
    fn float_vs_int_vs_range() {
        assert_eq!(kinds("1.5")[0].0, TokKind::Float);
        assert_eq!(kinds("2e9")[0].0, TokKind::Float);
        assert_eq!(kinds("3f64")[0].0, TokKind::Float);
        assert_eq!(kinds("7")[0].0, TokKind::Int);
        assert_eq!(kinds("0xff")[0].0, TokKind::Int);
        // `0..5` is Int, `..`, Int — the dot is not a fraction.
        let ts = kinds("0..5");
        assert_eq!(ts[0].0, TokKind::Int);
        assert_eq!(ts[1], (TokKind::Punct, "..".into()));
        assert_eq!(ts[2].0, TokKind::Int);
        // Tuple access stays integer.
        let ts = kinds("x.0");
        assert_eq!(ts[2].0, TokKind::Int);
        // Underscored literals.
        assert_eq!(kinds("630_000.0")[0].0, TokKind::Float);
        assert_eq!(kinds("1_000")[0].0, TokKind::Int);
    }

    #[test]
    fn comments_and_strings_do_not_leak_tokens() {
        let src = r#"
// a comment with Instant::now() inside
let s = "Instant::now() in a string";
/* block with unwrap() */
let t = 1; // trailing HashMap
"#;
        let l = lex(src);
        assert!(!l.toks.iter().any(|t| t.text == "Instant"));
        assert!(!l.toks.iter().any(|t| t.text == "unwrap"));
        assert!(!l.toks.iter().any(|t| t.text == "HashMap"));
        assert_eq!(l.comments.len(), 2);
        assert!(!l.comments[0].trailing);
        assert!(l.comments[1].trailing);
        assert!(l.comments[1].text.contains("HashMap"));
    }

    #[test]
    fn raw_and_byte_strings() {
        let src = r##"let a = r#"raw "quoted" unwrap()"#; let b = b"bytes"; let c = r"plain";"##;
        let l = lex(src);
        assert!(!l.toks.iter().any(|t| t.text == "unwrap"));
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Str).count(), 3);
        // Identifiers starting with r/b are not eaten as strings.
        let ts = kinds("radius + brightness");
        assert_eq!(ts[0], (TokKind::Ident, "radius".into()));
        assert_eq!(ts[2], (TokKind::Ident, "brightness".into()));
    }

    #[test]
    fn char_vs_lifetime() {
        let ts = kinds("'a' 'x: &'a str '\\n'");
        assert_eq!(ts[0].0, TokKind::Char);
        assert_eq!(ts[1], (TokKind::Lifetime, "'x".into()));
        let lifetimes: Vec<_> = ts.iter().filter(|t| t.0 == TokKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(ts.last().unwrap().0, TokKind::Char);
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"two\nline string\"\nb\n/* block\ncomment */ c";
        let l = lex(src);
        let find = |name: &str| l.toks.iter().find(|t| t.text == name).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 4);
        assert_eq!(find("c"), 6);
    }

    #[test]
    fn multi_char_operators_are_single_tokens() {
        let ts = kinds("a == b != c <= d >= e => f -> g ..= h");
        let ops: Vec<_> = ts
            .iter()
            .filter(|t| t.0 == TokKind::Punct)
            .map(|t| t.1.as_str())
            .collect();
        assert_eq!(ops, vec!["==", "!=", "<=", ">=", "=>", "->", "..="]);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ x");
        assert_eq!(l.toks.len(), 1);
        assert_eq!(l.toks[0].text, "x");
    }

    #[test]
    fn doc_comment_markers_stripped() {
        let l = lex("/// doc text\n//! inner doc\n// plain");
        assert_eq!(l.comments[0].text, " doc text");
        assert_eq!(l.comments[1].text, " inner doc");
        assert_eq!(l.comments[2].text, " plain");
    }
}
