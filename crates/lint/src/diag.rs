//! Diagnostics: the unit of lint output, with human and JSONL
//! rendering (JSONL reuses the telemetry escaping helper so downstream
//! tooling can share a parser with `RUN_*.jsonl` files).

use leo_util::telemetry::json_string;

/// One finding at a `file:line` location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule that produced the finding (kebab-case, e.g. `wall-clock`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human message.
    pub msg: String,
}

impl Diagnostic {
    /// `path:line: [rule] msg` — the greppable human form.
    pub fn human(&self) -> String {
        format!("{}:{}: [{}] {}", self.path, self.line, self.rule, self.msg)
    }

    /// One JSONL object (`type = "diagnostic"`).
    pub fn jsonl(&self) -> String {
        format!(
            "{{\"type\":\"diagnostic\",\"rule\":{},\"path\":{},\"line\":{},\"msg\":{}}}",
            json_string(self.rule),
            json_string(&self.path),
            self.line,
            json_string(&self.msg)
        )
    }
}

/// Outcome of a whole lint run: surviving diagnostics plus suppression
/// accounting (the tool *counts and prints* every suppression so the
/// escape hatch stays visible).
#[derive(Debug, Default)]
pub struct LintReport {
    /// Diagnostics that were not suppressed, in (path, line) order.
    pub diagnostics: Vec<Diagnostic>,
    /// `(rule, count)` of applied suppressions, sorted by rule.
    /// Suppressions that apply to nothing are not counted here — they
    /// surface as `stale-allow` diagnostics instead.
    pub suppressed: Vec<(String, usize)>,
    /// Files checked.
    pub files: usize,
}

impl LintReport {
    /// Total applied suppressions.
    pub fn suppressed_total(&self) -> usize {
        self.suppressed.iter().map(|(_, n)| n).sum()
    }

    /// Summary JSONL object (`type = "lint_summary"`), the last line of
    /// `--jsonl` output.
    pub fn summary_jsonl(&self) -> String {
        let sup: Vec<String> = self
            .suppressed
            .iter()
            .map(|(r, n)| format!("{}:{}", json_string(r), n))
            .collect();
        format!(
            "{{\"type\":\"lint_summary\",\"files\":{},\"diagnostics\":{},\"suppressed\":{},\"suppressions\":{{{}}}}}",
            self.files,
            self.diagnostics.len(),
            self.suppressed_total(),
            sup.join(",")
        )
    }

    /// Human summary lines (suppression counts, unused allows, totals).
    pub fn summary_human(&self) -> String {
        let mut out = String::new();
        if !self.suppressed.is_empty() {
            let parts: Vec<String> = self
                .suppressed
                .iter()
                .map(|(r, n)| format!("{r}×{n}"))
                .collect();
            out.push_str(&format!(
                "suppressions applied: {} ({})\n",
                self.suppressed_total(),
                parts.join(", ")
            ));
        }
        out.push_str(&format!(
            "checked {} files: {} diagnostic{}",
            self.files,
            self.diagnostics.len(),
            if self.diagnostics.len() == 1 { "" } else { "s" }
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_both_forms() {
        let d = Diagnostic {
            rule: "wall-clock",
            path: "crates/x/src/a.rs".into(),
            line: 7,
            msg: "Instant::now() outside the telemetry allowlist".into(),
        };
        assert_eq!(
            d.human(),
            "crates/x/src/a.rs:7: [wall-clock] Instant::now() outside the telemetry allowlist"
        );
        let j = d.jsonl();
        assert!(j.starts_with("{\"type\":\"diagnostic\""));
        assert!(j.contains("\"line\":7"));
        // The JSONL line parses back with the shared parser.
        let v = leo_util::telemetry::Json::parse(&j).unwrap();
        assert_eq!(v.get("rule").and_then(|r| r.as_str()), Some("wall-clock"));
    }

    #[test]
    fn summary_accounts_suppressions() {
        let mut rep = LintReport {
            files: 3,
            ..Default::default()
        };
        rep.suppressed.push(("wall-clock".into(), 2));
        rep.suppressed.push(("print-in-lib".into(), 1));
        assert_eq!(rep.suppressed_total(), 3);
        let s = rep.summary_human();
        assert!(s.contains("wall-clock×2"));
        assert!(s.contains("checked 3 files: 0 diagnostics"));
        let v = leo_util::telemetry::Json::parse(&rep.summary_jsonl()).unwrap();
        assert_eq!(v.get("suppressed").and_then(|n| n.as_num()), Some(3.0));
    }
}
