//! Per-file analysis context shared by every rule: file classification,
//! `#[cfg(test)]` region detection, and `// lint:` directive parsing.

use crate::lexer::{lex, Comment, Lexed, Tok};
use crate::parser::{parse_fns, FnSym};

/// How a file participates in the build — rules scope themselves by
/// kind (e.g. `unwrap-in-lib` fires only in `Lib`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source (`crates/*/src/**`, excluding `src/bin`).
    Lib,
    /// Binary source (`src/bin/**`, `src/main.rs`, `examples/*.rs`).
    Bin,
    /// Integration-test source (`tests/**`).
    Test,
    /// Bench source (`benches/**`) — timing is its job.
    Bench,
}

impl FileKind {
    /// Classify a workspace-relative path (forward slashes).
    pub fn classify(rel_path: &str) -> FileKind {
        if rel_path.contains("/benches/") {
            FileKind::Bench
        } else if rel_path.contains("/tests/") || rel_path.starts_with("tests/") {
            FileKind::Test
        } else if rel_path.contains("/src/bin/")
            || rel_path.ends_with("/main.rs")
            || (rel_path.starts_with("examples/") && !rel_path.ends_with("lib.rs"))
        {
            FileKind::Bin
        } else {
            FileKind::Lib
        }
    }
}

/// An inline `// lint: …` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// `// lint: allow(<rule>) <reason>` — suppress `<rule>` on this
    /// line (trailing comment) or the next line (standalone comment).
    /// The reason is mandatory; a bare allow is itself a diagnostic.
    Allow {
        /// Rule name being suppressed.
        rule: String,
        /// Written justification (empty = `bare-allow` diagnostic).
        reason: String,
        /// Line of the directive comment.
        line: u32,
        /// True when the comment trails code on its line.
        trailing: bool,
    },
    /// `// lint: hot-path` — the next `fn` is a zero-alloc hot path;
    /// `hot-path-alloc` patrols its body.
    HotPath {
        /// Line of the directive comment.
        line: u32,
    },
    /// A `// lint:` comment that parses as neither of the above.
    Malformed {
        /// Line of the directive comment.
        line: u32,
    },
}

/// A fully-analyzed source file, ready for rules.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Build role of the file.
    pub kind: FileKind,
    /// Token stream.
    pub toks: Vec<Tok>,
    /// Line-comment channel.
    pub comments: Vec<Comment>,
    /// Parsed `// lint:` directives.
    pub directives: Vec<Directive>,
    /// Every `fn` item in the file, in declaration order (the symbol
    /// graph's raw material).
    pub fns: Vec<FnSym>,
    /// Parallel to [`SourceFile::fns`]: true when a `// lint: hot-path`
    /// directive marks that fn.
    pub hot_marked: Vec<bool>,
    /// Token-index ranges `[start, end)` under `#[cfg(test)]` items.
    test_ranges: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Lex and analyze `text` as the file at `rel_path`.
    pub fn parse(rel_path: &str, text: &str) -> SourceFile {
        Self::parse_as(rel_path, text, FileKind::classify(rel_path))
    }

    /// [`SourceFile::parse`] with an explicit kind (fixture tests force
    /// kinds independent of where the fixture file happens to live).
    pub fn parse_as(rel_path: &str, text: &str, kind: FileKind) -> SourceFile {
        let Lexed { toks, comments } = lex(text);
        let test_ranges = find_cfg_test_ranges(&toks);
        let directives = parse_directives(&comments);
        let whole_file_test = matches!(kind, FileKind::Test | FileKind::Bench);
        let fns = parse_fns(&toks, &|i| {
            whole_file_test || test_ranges.iter().any(|&(s, e)| i >= s && i < e)
        });
        // A `// lint: hot-path` directive marks the nearest fn declared
        // after it (attributes in between are fine — matching is by
        // line, same as the file-local rule's next-fn-token scan).
        let hot_marked = fns
            .iter()
            .map(|f| {
                directives.iter().any(|d| match d {
                    Directive::HotPath { line } => {
                        *line < f.line && !fns.iter().any(|g| g.line > *line && g.line < f.line)
                    }
                    _ => false,
                })
            })
            .collect();
        SourceFile {
            path: rel_path.to_string(),
            kind,
            toks,
            comments,
            directives,
            fns,
            hot_marked,
            test_ranges,
        }
    }

    /// Is token `i` inside a `#[cfg(test)]` item (or is the whole file
    /// test/bench code)?
    pub fn in_test_code(&self, i: usize) -> bool {
        matches!(self.kind, FileKind::Test | FileKind::Bench)
            || self.test_ranges.iter().any(|&(s, e)| i >= s && i < e)
    }

    /// Comments on `line` (usually zero or one).
    pub fn comments_on_line(&self, line: u32) -> impl Iterator<Item = &Comment> {
        self.comments.iter().filter(move |c| c.line == line)
    }
}

/// Find `[start, end)` token ranges of items annotated `#[cfg(test)]`.
///
/// Heuristic, but exact for this workspace's idiom (`#[cfg(test)]` on a
/// `mod`/`fn`/`impl` item): match the attribute token sequence, then
/// brace-match the item body that follows.
fn find_cfg_test_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i + 5 < toks.len() {
        let is_attr = toks[i].text == "#"
            && toks[i + 1].text == "["
            && toks[i + 2].text == "cfg"
            && toks[i + 3].text == "("
            && toks[i + 4].text == "test";
        if !is_attr {
            i += 1;
            continue;
        }
        // Find the closing `]` of the attribute, then the item's `{`.
        let mut j = i + 5;
        while j < toks.len() && toks[j].text != "]" {
            j += 1;
        }
        let mut depth = 0usize;
        let start = i;
        let mut end = None;
        for (k, t) in toks.iter().enumerate().skip(j) {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end = Some(k + 1);
                        break;
                    }
                }
                // An item ending before any `{` (e.g. `use …;` under
                // cfg(test)) terminates at the `;`.
                ";" if depth == 0 => {
                    end = Some(k + 1);
                    break;
                }
                _ => {}
            }
        }
        let end = end.unwrap_or(toks.len());
        ranges.push((start, end));
        i = end.max(i + 1);
    }
    ranges
}

/// Parse `// lint: …` comments into [`Directive`]s.
fn parse_directives(comments: &[Comment]) -> Vec<Directive> {
    let mut out = Vec::new();
    for c in comments {
        let Some(rest) = c.text.trim_start().strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim();
        if rest == "hot-path" {
            out.push(Directive::HotPath { line: c.line });
        } else if let Some(args) = rest.strip_prefix("allow(") {
            match args.split_once(')') {
                Some((rule, reason)) => out.push(Directive::Allow {
                    rule: rule.trim().to_string(),
                    reason: reason.trim().to_string(),
                    line: c.line,
                    trailing: c.trailing,
                }),
                None => out.push(Directive::Malformed { line: c.line }),
            }
        } else {
            out.push(Directive::Malformed { line: c.line });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        assert_eq!(FileKind::classify("crates/graph/src/yen.rs"), FileKind::Lib);
        assert_eq!(
            FileKind::classify("crates/bench/src/bin/fig2_latency.rs"),
            FileKind::Bin
        );
        assert_eq!(
            FileKind::classify("crates/graph/tests/proptests.rs"),
            FileKind::Test
        );
        assert_eq!(FileKind::classify("tests/determinism.rs"), FileKind::Test);
        assert_eq!(
            FileKind::classify("crates/bench/benches/routing.rs"),
            FileKind::Bench
        );
        assert_eq!(FileKind::classify("examples/quickstart.rs"), FileKind::Bin);
        assert_eq!(FileKind::classify("examples/lib.rs"), FileKind::Lib);
    }

    #[test]
    fn cfg_test_region_covers_mod_body() {
        let src = r#"
fn lib_code() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); }
}
fn more_lib() {}
"#;
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let idx = |name: &str| f.toks.iter().position(|t| t.text == name).unwrap();
        assert!(!f.in_test_code(idx("lib_code")));
        assert!(f.in_test_code(idx("t")));
        assert!(!f.in_test_code(idx("more_lib")));
    }

    #[test]
    fn test_files_are_all_test_code() {
        let f = SourceFile::parse("crates/x/tests/it.rs", "fn a() {}");
        assert!(f.in_test_code(0));
    }

    #[test]
    fn directives_parse() {
        let src = "
// lint: hot-path
fn hot() {}
let x = 1; // lint: allow(wall-clock) bench timing only
// lint: allow(unwrap-in-lib)
// lint: gibberish
";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert_eq!(f.directives.len(), 4);
        assert_eq!(f.directives[0], Directive::HotPath { line: 2 });
        match &f.directives[1] {
            Directive::Allow {
                rule,
                reason,
                line,
                trailing,
            } => {
                assert_eq!(rule, "wall-clock");
                assert_eq!(reason, "bench timing only");
                assert_eq!(*line, 4);
                assert!(*trailing);
            }
            other => panic!("expected Allow, got {other:?}"),
        }
        match &f.directives[2] {
            Directive::Allow { reason, .. } => assert!(reason.is_empty()),
            other => panic!("expected bare Allow, got {other:?}"),
        }
        assert_eq!(f.directives[3], Directive::Malformed { line: 6 });
    }

    #[test]
    fn fns_parsed_and_hot_marked() {
        let src = "
fn cold() {}
// lint: hot-path
#[inline]
fn hot() {}
fn also_cold() {}
";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let names: Vec<&str> = f.fns.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["cold", "hot", "also_cold"]);
        assert_eq!(f.hot_marked, vec![false, true, false]);
    }

    #[test]
    fn cfg_test_fns_carry_the_test_flag() {
        let src = "
fn lib_fn() {}
#[cfg(test)]
mod tests {
    fn test_helper() {}
}
";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let by = |n: &str| f.fns.iter().find(|s| s.name == n).unwrap();
        assert!(!by("lib_fn").is_test);
        assert!(by("test_helper").is_test);
    }

    #[test]
    fn cfg_test_use_item_does_not_swallow_rest_of_file() {
        let src = "
#[cfg(test)]
use std::collections::HashMap;
fn lib_code() {}
";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let idx = f.toks.iter().position(|t| t.text == "lib_code").unwrap();
        assert!(!f.in_test_code(idx));
    }
}
