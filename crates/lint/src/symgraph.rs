//! Workspace symbol graph: every parsed `fn` across every linted file,
//! plus an over-approximate call graph, queryable by workspace rules
//! and persistable as JSONL (`--graph-out`).
//!
//! Resolution follows the precision tiers documented in
//! [`crate::parser`]: bare calls link to free fns, `Type::fn` links
//! within `impl Type` when `Type` is a workspace type (and produces
//! *no* edge for foreign qualifiers like `Vec`), `self.fn()` resolves
//! precisely to the enclosing impl when it defines `fn`, and plain
//! method calls over-approximate to every workspace method of that
//! name. The graph therefore never misses a real workspace edge but
//! may invent ones — sound for reachability *denials* (what the rules
//! assert) and honest about the rest.

use std::collections::{BTreeMap, BTreeSet};

use crate::parser::{FnSym, Receiver};
use crate::source::{FileKind, SourceFile};

/// Sentinel for "no parent / unreached" in [`Reach`].
pub const NO_NODE: u32 = u32::MAX;

/// One fn in the workspace, with its file context.
#[derive(Debug)]
pub struct SymNode {
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// Build role of the defining file.
    pub kind: FileKind,
    /// The parsed fn (name, visibility, call/panic/alloc sites).
    pub sym: FnSym,
    /// True when a `// lint: hot-path` directive marks this fn (its
    /// body is patrolled file-locally; reachability rules treat it as
    /// a root and skip its body to avoid double-reporting).
    pub hot_marked: bool,
}

/// The workspace symbol + call graph.
#[derive(Debug, Default)]
pub struct SymbolGraph {
    /// All fns, in (file, declaration) order — deterministic because
    /// the runner sorts files by path before building.
    pub nodes: Vec<SymNode>,
    /// `edges[i]` = callee node ids of node `i`, sorted and deduped.
    pub edges: Vec<Vec<u32>>,
    edge_count: usize,
}

/// BFS result: shortest-hop parent forest over the filtered graph.
#[derive(Debug)]
pub struct Reach {
    /// `parent[i]` = predecessor on a shortest chain from some root
    /// (`i` itself for roots, [`NO_NODE`] when unreached).
    pub parent: Vec<u32>,
}

impl Reach {
    /// Is node `i` reachable from any root?
    pub fn reached(&self, i: u32) -> bool {
        self.parent[i as usize] != NO_NODE
    }

    /// Shortest chain `root → … → to` as node ids (empty if unreached).
    pub fn chain(&self, to: u32) -> Vec<u32> {
        if !self.reached(to) {
            return Vec::new();
        }
        let mut chain = vec![to];
        let mut cur = to;
        while self.parent[cur as usize] != cur {
            cur = self.parent[cur as usize];
            chain.push(cur);
        }
        chain.reverse();
        chain
    }
}

impl SymbolGraph {
    /// Build the graph from analyzed files (caller supplies them in
    /// deterministic order; node ids follow that order).
    pub fn build<'a, I>(files: I) -> SymbolGraph
    where
        I: IntoIterator<Item = &'a SourceFile>,
    {
        let mut g = SymbolGraph::default();
        for f in files {
            for (sym, hot) in f.fns.iter().zip(&f.hot_marked) {
                g.nodes.push(SymNode {
                    path: f.path.clone(),
                    kind: f.kind,
                    sym: sym.clone(),
                    hot_marked: *hot,
                });
            }
        }

        // Name indexes (BTreeMap: iteration order never leaks into
        // output, but determinism-by-construction is this tool's creed).
        let mut free: BTreeMap<&str, Vec<u32>> = BTreeMap::new();
        let mut methods: BTreeMap<&str, Vec<u32>> = BTreeMap::new();
        let mut typed: BTreeMap<(&str, &str), Vec<u32>> = BTreeMap::new();
        let mut known_types: BTreeSet<&str> = BTreeSet::new();
        for (i, n) in g.nodes.iter().enumerate() {
            let i = i as u32;
            match &n.sym.impl_type {
                Some(t) => {
                    methods.entry(&n.sym.name).or_default().push(i);
                    typed.entry((t, &n.sym.name)).or_default().push(i);
                    known_types.insert(t);
                }
                None => free.entry(&n.sym.name).or_default().push(i),
            }
        }

        let empty: Vec<u32> = Vec::new();
        let mut edges: Vec<Vec<u32>> = Vec::with_capacity(g.nodes.len());
        let mut edge_count = 0usize;
        for n in &g.nodes {
            let mut out: Vec<u32> = Vec::new();
            for call in &n.sym.calls {
                let name = call.name.as_str();
                let targets: &Vec<u32> = match &call.receiver {
                    Receiver::Bare => free.get(name).unwrap_or(&empty),
                    Receiver::Method => methods.get(name).unwrap_or(&empty),
                    Receiver::SelfMethod => {
                        let own = n
                            .sym
                            .impl_type
                            .as_deref()
                            .and_then(|t| typed.get(&(t, name)));
                        match own {
                            Some(v) => v,
                            None => methods.get(name).unwrap_or(&empty),
                        }
                    }
                    Receiver::Qualified(seg) => {
                        if seg == "Self" {
                            n.sym
                                .impl_type
                                .as_deref()
                                .and_then(|t| typed.get(&(t, name)))
                                .unwrap_or(&empty)
                        } else if known_types.contains(seg.as_str()) {
                            typed.get(&(seg.as_str(), name)).unwrap_or(&empty)
                        } else {
                            // Foreign type or module path — only free
                            // fns can plausibly be the callee.
                            free.get(name).unwrap_or(&empty)
                        }
                    }
                };
                out.extend_from_slice(targets);
            }
            out.sort_unstable();
            out.dedup();
            edge_count += out.len();
            edges.push(out);
        }
        g.edges = edges;
        g.edge_count = edge_count;
        g
    }

    /// Total directed edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Node ids whose fn matches `pattern`: `Type::name` (exact
    /// qualified), `Type::*` (every method of `Type`), or `name`
    /// (free fn of that name).
    pub fn match_pattern(&self, pattern: &str) -> Vec<u32> {
        let mut out = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            let hit = match pattern.split_once("::") {
                Some((ty, "*")) => n.sym.impl_type.as_deref() == Some(ty),
                Some(_) => n.sym.qualified() == pattern,
                None => n.sym.impl_type.is_none() && n.sym.name == pattern,
            };
            if hit {
                out.push(i as u32);
            }
        }
        out
    }

    /// Multi-root BFS over nodes passing `allowed(id, node)`, returning
    /// the shortest-hop parent forest. Roots are seeded in the order
    /// given and adjacency lists are sorted, so ties break
    /// deterministically toward lower node ids.
    pub fn reach(&self, roots: &[u32], allowed: &dyn Fn(u32, &SymNode) -> bool) -> Reach {
        let mut parent = vec![NO_NODE; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        for &r in roots {
            let ri = r as usize;
            if parent[ri] == NO_NODE && allowed(r, &self.nodes[ri]) {
                parent[ri] = r;
                queue.push_back(r);
            }
        }
        while let Some(u) = queue.pop_front() {
            for &v in &self.edges[u as usize] {
                let vi = v as usize;
                if parent[vi] == NO_NODE && allowed(v, &self.nodes[vi]) {
                    parent[vi] = u;
                    queue.push_back(v);
                }
            }
        }
        Reach { parent }
    }

    /// Render a node chain as `a::b → c → d::e` for diagnostics.
    pub fn chain_display(&self, chain: &[u32]) -> String {
        let parts: Vec<String> = chain
            .iter()
            .map(|&i| self.nodes[i as usize].sym.qualified())
            .collect();
        parts.join(" → ")
    }

    /// Persist the graph as JSONL: one `lint_symbol` line per node,
    /// one `lint_edge` line per edge, and a closing
    /// `lint_graph_summary` — same escaping rules as `RUN_*.jsonl`.
    pub fn to_jsonl(&self) -> String {
        use leo_util::telemetry::json_string;
        let mut out = String::new();
        for (i, n) in self.nodes.iter().enumerate() {
            let vis = match n.sym.vis {
                crate::parser::Visibility::Public => "pub",
                crate::parser::Visibility::Restricted => "crate",
                crate::parser::Visibility::Private => "priv",
            };
            out.push_str(&format!(
                "{{\"type\":\"lint_symbol\",\"id\":{},\"fn\":{},\"path\":{},\"line\":{},\
                 \"vis\":\"{}\",\"test\":{},\"hot\":{},\"panics\":{},\"allocs\":{}}}\n",
                i,
                json_string(&n.sym.qualified()),
                json_string(&n.path),
                n.sym.line,
                vis,
                n.sym.is_test,
                n.hot_marked,
                n.sym.panics.len(),
                n.sym.allocs.len(),
            ));
        }
        for (i, outs) in self.edges.iter().enumerate() {
            for &j in outs {
                out.push_str(&format!(
                    "{{\"type\":\"lint_edge\",\"from\":{i},\"to\":{j}}}\n"
                ));
            }
        }
        out.push_str(&format!(
            "{{\"type\":\"lint_graph_summary\",\"symbols\":{},\"edges\":{}}}\n",
            self.nodes.len(),
            self.edge_count
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(files: &[(&str, &str)]) -> SymbolGraph {
        let parsed: Vec<SourceFile> = files.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
        SymbolGraph::build(&parsed)
    }

    fn id(g: &SymbolGraph, name: &str) -> u32 {
        g.nodes
            .iter()
            .position(|n| n.sym.name == name)
            .unwrap_or_else(|| panic!("no fn {name}")) as u32
    }

    #[test]
    fn cross_file_free_fn_edges() {
        let g = graph(&[
            ("crates/a/src/lib.rs", "pub fn entry() { helper(); }"),
            ("crates/b/src/lib.rs", "pub fn helper() {}"),
        ]);
        let (e, h) = (id(&g, "entry"), id(&g, "helper"));
        assert_eq!(g.edges[e as usize], vec![h]);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn foreign_qualifiers_produce_no_edges() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "struct W; impl W { pub fn new() -> W { W } }\n\
             pub fn go() { let _ = Vec::new(); let w = W::new(); }",
        )]);
        let go = id(&g, "go") as usize;
        // Only the W::new edge — Vec::new does not alias workspace `new`s.
        assert_eq!(g.edges[go], vec![id(&g, "new")]);
    }

    #[test]
    fn self_method_resolves_to_own_impl_first() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "struct A; struct B;\n\
             impl A { pub fn run(&self) { self.step(); } fn step(&self) {} }\n\
             impl B { fn step(&self) {} }",
        )]);
        let run = id(&g, "run") as usize;
        let a_step = g
            .nodes
            .iter()
            .position(|n| n.sym.name == "step" && n.sym.impl_type.as_deref() == Some("A"))
            .unwrap() as u32;
        assert_eq!(g.edges[run], vec![a_step]);
    }

    #[test]
    fn plain_method_calls_over_approximate() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "struct A; struct B;\n\
             impl A { fn step(&self) {} }\n\
             impl B { fn step(&self) {} }\n\
             pub fn go(x: &A) { x.step(); }",
        )]);
        let go = id(&g, "go") as usize;
        assert_eq!(g.edges[go].len(), 2, "both `step` impls are candidates");
    }

    #[test]
    fn reach_chains_are_shortest_and_deterministic() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "pub fn root() { mid(); deep1(); }\n\
             fn mid() { leaf(); }\n\
             fn deep1() { deep2(); }\n\
             fn deep2() { leaf(); }\n\
             fn leaf() {}",
        )]);
        let r = g.reach(&[id(&g, "root")], &|_, _| true);
        let chain = r.chain(id(&g, "leaf"));
        // root → mid → leaf (2 hops) beats root → deep1 → deep2 → leaf.
        assert_eq!(g.chain_display(&chain), "root → mid → leaf");
    }

    #[test]
    fn reach_filter_blocks_traversal() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "pub fn root() { bridge(); }\nfn bridge() { leaf(); }\nfn leaf() {}",
        )]);
        let bridge = id(&g, "bridge");
        let r = g.reach(&[id(&g, "root")], &|_, n| n.sym.name != "bridge");
        assert!(!r.reached(bridge));
        assert!(!r.reached(id(&g, "leaf")));
    }

    #[test]
    fn match_pattern_forms() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "struct W; impl W { pub fn apply(&self) {} pub fn rebuild(&self) {} }\n\
             pub fn apply() {}",
        )]);
        assert_eq!(g.match_pattern("W::apply").len(), 1);
        assert_eq!(g.match_pattern("W::*").len(), 2);
        let free = g.match_pattern("apply");
        assert_eq!(free.len(), 1);
        assert!(g.nodes[free[0] as usize].sym.impl_type.is_none());
    }

    #[test]
    fn jsonl_round_trips_through_shared_parser() {
        let g = graph(&[("crates/a/src/lib.rs", "pub fn a() { b(); }\nfn b() {}")]);
        let text = g.to_jsonl();
        let mut symbols = 0;
        let mut edges = 0;
        for line in text.lines() {
            let v = leo_util::telemetry::Json::parse(line).unwrap();
            match v.get("type").and_then(|t| t.as_str()).unwrap() {
                "lint_symbol" => symbols += 1,
                "lint_edge" => edges += 1,
                "lint_graph_summary" => {
                    assert_eq!(v.get("symbols").and_then(|n| n.as_num()), Some(2.0));
                    assert_eq!(v.get("edges").and_then(|n| n.as_num()), Some(1.0));
                }
                other => panic!("unknown line type {other}"),
            }
        }
        assert_eq!((symbols, edges), (2, 1));
    }
}
