//! Property-based tests: the allocator must produce feasible, max-min fair
//! allocations on random instances.

use leo_flow::FlowSim;
use proptest::prelude::*;

/// Random instance: link capacities plus flows over random link subsets.
fn arb_instance() -> impl Strategy<Value = (Vec<f64>, Vec<Vec<u32>>)> {
    (1usize..20).prop_flat_map(|nl| {
        let caps = proptest::collection::vec(0.1f64..100.0, nl);
        let flows = proptest::collection::vec(
            proptest::collection::vec(0u32..nl as u32, 1..6),
            1..30,
        );
        (caps, flows)
    })
}

fn build(caps: &[f64], flows: &[Vec<u32>]) -> FlowSim {
    let mut sim = FlowSim::new();
    for &c in caps {
        sim.add_link(c);
    }
    for path in flows {
        // Dedupe links within a path: random paths may repeat a link, and
        // the fairness check below assumes simple paths.
        let mut p = path.clone();
        p.sort_unstable();
        p.dedup();
        sim.add_flow(p);
    }
    sim
}

proptest! {
    /// Feasibility: no link carries more than its capacity.
    #[test]
    fn allocation_is_feasible((caps, flows) in arb_instance()) {
        let sim = build(&caps, &flows);
        let a = sim.solve();
        for (l, u) in a.link_utilization.iter().enumerate() {
            prop_assert!(*u <= caps[l] + 1e-6, "link {l}: {u} > {}", caps[l]);
        }
        prop_assert!(a.rates.iter().all(|r| *r >= 0.0));
        prop_assert!((a.aggregate - a.rates.iter().sum::<f64>()).abs() < 1e-9);
    }

    /// Max-min fairness (bottleneck condition): every flow has at least
    /// one saturated link on its path on which its rate is maximal among
    /// crossing flows. This characterizes max-min fair allocations.
    #[test]
    fn allocation_is_maxmin_fair((caps, flows) in arb_instance()) {
        let sim = build(&caps, &flows);
        let a = sim.solve();
        // Reconstruct the deduped paths the same way `build` did.
        let paths: Vec<Vec<u32>> = flows
            .iter()
            .map(|p| {
                let mut q = p.clone();
                q.sort_unstable();
                q.dedup();
                q
            })
            .collect();
        for (f, path) in paths.iter().enumerate() {
            let has_bottleneck = path.iter().any(|&l| {
                let saturated = a.link_utilization[l as usize] >= caps[l as usize] - 1e-6;
                let is_max = paths
                    .iter()
                    .enumerate()
                    .filter(|(_, q)| q.contains(&l))
                    .all(|(g, _)| a.rates[g] <= a.rates[f] + 1e-6);
                saturated && is_max
            });
            prop_assert!(
                has_bottleneck,
                "flow {f} (rate {}) has no bottleneck link",
                a.rates[f]
            );
        }
    }

    /// Adding a flow never increases any existing flow's rate... is NOT a
    /// max-min invariant in general; instead we check monotonicity of the
    /// minimum: the smallest rate can only shrink or stay when a flow is
    /// added to the same instance.
    #[test]
    fn min_rate_monotone_under_added_flow((caps, flows) in arb_instance()) {
        prop_assume!(flows.len() >= 2);
        let sim_all = build(&caps, &flows);
        let sim_fewer = build(&caps, &flows[..flows.len() - 1]);
        let a_all = sim_all.solve();
        let a_fewer = sim_fewer.solve();
        prop_assert!(a_all.min_rate() <= a_fewer.min_rate() + 1e-6);
    }

    /// Scaling all capacities scales the allocation.
    #[test]
    fn allocation_scales_with_capacity((caps, flows) in arb_instance(), scale in 0.5f64..4.0) {
        let a1 = build(&caps, &flows).solve();
        let scaled: Vec<f64> = caps.iter().map(|c| c * scale).collect();
        let a2 = build(&scaled, &flows).solve();
        for (r1, r2) in a1.rates.iter().zip(&a2.rates) {
            prop_assert!((r1 * scale - r2).abs() < 1e-6, "{} * {scale} != {}", r1, r2);
        }
    }
}
