//! Property-based tests: the allocator must produce feasible, max-min fair
//! allocations on random instances (on `leo_util::check`; 256 cases per
//! property, ≥ the proptest originals).

use leo_flow::FlowSim;
use leo_util::check::{check, Gen};
use leo_util::{check_assert, check_assume};

/// Random instance: link capacities plus flows over random link subsets.
fn arb_instance(g: &mut Gen) -> (Vec<f64>, Vec<Vec<u32>>) {
    let nl = g.usize(1..20);
    let caps = g.vec(nl..nl + 1, |g| g.f64(0.1..100.0));
    let flows = g.vec(1..30, |g| g.vec(1..6, |g| g.u32(0..nl as u32)));
    (caps, flows)
}

fn build(caps: &[f64], flows: &[Vec<u32>]) -> FlowSim {
    let mut sim = FlowSim::new();
    for &c in caps {
        sim.add_link(c);
    }
    for path in flows {
        // Dedupe links within a path: random paths may repeat a link, and
        // the fairness check below assumes simple paths.
        let mut p = path.clone();
        p.sort_unstable();
        p.dedup();
        sim.add_flow(p);
    }
    sim
}

/// Feasibility: no link carries more than its capacity.
#[test]
fn allocation_is_feasible() {
    check("allocation_is_feasible", |g| {
        let (caps, flows) = arb_instance(g);
        let sim = build(&caps, &flows);
        let a = sim.solve();
        for (l, u) in a.link_utilization.iter().enumerate() {
            check_assert!(*u <= caps[l] + 1e-6, "link {l}: {u} > {}", caps[l]);
        }
        check_assert!(a.rates.iter().all(|r| *r >= 0.0));
        check_assert!((a.aggregate - a.rates.iter().sum::<f64>()).abs() < 1e-9);
        Ok(())
    });
}

/// Max-min fairness (bottleneck condition): every flow has at least
/// one saturated link on its path on which its rate is maximal among
/// crossing flows. This characterizes max-min fair allocations.
#[test]
fn allocation_is_maxmin_fair() {
    check("allocation_is_maxmin_fair", |g| {
        let (caps, flows) = arb_instance(g);
        let sim = build(&caps, &flows);
        let a = sim.solve();
        // Reconstruct the deduped paths the same way `build` did.
        let paths: Vec<Vec<u32>> = flows
            .iter()
            .map(|p| {
                let mut q = p.clone();
                q.sort_unstable();
                q.dedup();
                q
            })
            .collect();
        for (f, path) in paths.iter().enumerate() {
            let has_bottleneck = path.iter().any(|&l| {
                let saturated = a.link_utilization[l as usize] >= caps[l as usize] - 1e-6;
                let is_max = paths
                    .iter()
                    .enumerate()
                    .filter(|(_, q)| q.contains(&l))
                    .all(|(other, _)| a.rates[other] <= a.rates[f] + 1e-6);
                saturated && is_max
            });
            check_assert!(
                has_bottleneck,
                "flow {f} (rate {}) has no bottleneck link",
                a.rates[f]
            );
        }
        Ok(())
    });
}

/// Adding a flow never increases any existing flow's rate... is NOT a
/// max-min invariant in general; instead we check monotonicity of the
/// minimum: the smallest rate can only shrink or stay when a flow is
/// added to the same instance.
#[test]
fn min_rate_monotone_under_added_flow() {
    check("min_rate_monotone_under_added_flow", |g| {
        let (caps, flows) = arb_instance(g);
        check_assume!(flows.len() >= 2);
        let sim_all = build(&caps, &flows);
        let sim_fewer = build(&caps, &flows[..flows.len() - 1]);
        let a_all = sim_all.solve();
        let a_fewer = sim_fewer.solve();
        check_assert!(a_all.min_rate() <= a_fewer.min_rate() + 1e-6);
        Ok(())
    });
}

/// Progressive filling freezes flows in non-decreasing rate order: a flow
/// frozen in an earlier round never has a higher rate than one frozen
/// later. (The per-round fair share is the minimum over active links and
/// can only grow as saturated links leave the active set.)
#[test]
fn rates_monotone_across_freeze_rounds() {
    check("rates_monotone_across_freeze_rounds", |g| {
        let (caps, flows) = arb_instance(g);
        let sim = build(&caps, &flows);
        let a = sim.solve();
        check_assert!(a.freeze_round.len() == a.rates.len());
        // Every flow freezes in some round, and rounds are 1-based.
        for (f, &r) in a.freeze_round.iter().enumerate() {
            check_assert!(
                r >= 1 && r as usize <= a.rounds,
                "flow {f} froze in round {r} of {}",
                a.rounds
            );
        }
        let mut order: Vec<usize> = (0..a.rates.len()).collect();
        order.sort_by_key(|&f| a.freeze_round[f]);
        for w in order.windows(2) {
            let (early, late) = (w[0], w[1]);
            check_assert!(
                a.rates[early] <= a.rates[late] + 1e-9,
                "flow {early} (round {}, rate {}) outranks flow {late} (round {}, rate {})",
                a.freeze_round[early],
                a.rates[early],
                a.freeze_round[late],
                a.rates[late]
            );
        }
        Ok(())
    });
}

/// Scaling all capacities scales the allocation.
#[test]
fn allocation_scales_with_capacity() {
    check("allocation_scales_with_capacity", |g| {
        let (caps, flows) = arb_instance(g);
        let scale = g.f64(0.5..4.0);
        let a1 = build(&caps, &flows).solve();
        let scaled: Vec<f64> = caps.iter().map(|c| c * scale).collect();
        let a2 = build(&scaled, &flows).solve();
        for (r1, r2) in a1.rates.iter().zip(&a2.rates) {
            check_assert!((r1 * scale - r2).abs() < 1e-6, "{} * {scale} != {}", r1, r2);
        }
        Ok(())
    });
}
