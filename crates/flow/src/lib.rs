//! # leo-flow — max-min fair allocation of routed flows
//!
//! A Rust equivalent of the routed-flow core of
//! [floodns](https://github.com/snkas/floodns), which the paper uses for
//! its throughput experiments (§5): every flow follows a **fixed path**,
//! and link capacities are divided among competing flows by **max-min
//! fairness** via the classic progressive-filling ("water-filling")
//! algorithm of Nace et al.:
//!
//! 1. find the most-congested link — the one whose remaining capacity per
//!    unfrozen flow is smallest;
//! 2. freeze every unfrozen flow crossing it at that fair share;
//! 3. subtract the frozen rates from all links on those flows' paths;
//! 4. repeat until every flow is frozen.
//!
//! Sub-flows of one city-pair are independent flows here; because the
//! paper routes them over edge-disjoint paths they never compete with each
//! other, which this crate does not need to know about.
//!
//! ```
//! use leo_flow::FlowSim;
//!
//! let mut sim = FlowSim::new();
//! let l = sim.add_link(10.0);
//! sim.add_flow(vec![l]);
//! sim.add_flow(vec![l]);
//! let alloc = sim.solve();
//! assert_eq!(alloc.rates, vec![5.0, 5.0]); // fair split of the bottleneck
//! ```

mod maxmin;

pub use maxmin::{Allocation, FlowId, FlowSim, FlowWorkspace, LinkId};
