//! Progressive-filling max-min fair allocation.

use leo_util::telemetry::{Counter, Histogram};

/// Telemetry: number of [`FlowSim::solve`] invocations.
static MAXMIN_SOLVES: Counter = Counter::new("maxmin_solves");
/// Telemetry: total progressive-filling rounds across solves.
static MAXMIN_ROUNDS: Counter = Counter::new("maxmin_rounds");
/// Telemetry: flows frozen at a saturated bottleneck with a positive
/// rate (flows frozen at rate 0 crossed an already-exhausted link).
static MAXMIN_SATURATED_FLOWS: Counter = Counter::new("maxmin_saturated_flows");
/// Telemetry: flows that ended with rate 0 (zero-capacity bottleneck).
static MAXMIN_STARVED_FLOWS: Counter = Counter::new("maxmin_starved_flows");
/// Telemetry: rounds-per-solve distribution.
static MAXMIN_ROUNDS_HIST: Histogram = Histogram::new("maxmin_rounds_per_solve");

/// Identifier of a capacitated link.
pub type LinkId = u32;

/// Identifier of a flow (index in insertion order).
pub type FlowId = u32;

/// A max-min fair allocation produced by [`FlowSim::solve`].
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Rate assigned to each flow, indexed by [`FlowId`]. Flows with an
    /// empty path (which cannot exist via `add_flow`) would get 0.
    pub rates: Vec<f64>,
    /// Total allocated rate across flows.
    pub aggregate: f64,
    /// Per-link utilized capacity (sum of rates crossing the link).
    pub link_utilization: Vec<f64>,
    /// Number of progressive-filling rounds performed.
    pub rounds: usize,
    /// The 1-based round at which each flow froze at its bottleneck.
    /// Progressive filling freezes flows in non-decreasing rate order, so
    /// `freeze_round[a] < freeze_round[b]` implies `rates[a] <= rates[b]`
    /// (up to fp error) — a testable invariant of the algorithm.
    pub freeze_round: Vec<u32>,
}

impl Allocation {
    /// The minimum rate across flows (the "max-min" objective value), or
    /// 0.0 if there are no flows.
    pub fn min_rate(&self) -> f64 {
        if self.rates.is_empty() {
            0.0
        } else {
            self.rates.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }
}

/// Reusable buffers for [`FlowSim::solve_with`]: the per-link and
/// per-flow working state of progressive filling, kept warm across
/// solves so repeated allocations (capacity sweeps, per-snapshot
/// throughput series) do not reallocate.
#[derive(Debug, Clone, Default)]
pub struct FlowWorkspace {
    remaining: Vec<f64>,
    occurrences: Vec<u32>,
    link_flows: Vec<Vec<FlowId>>,
    active: Vec<LinkId>,
    frozen: Vec<bool>,
    scratch: Vec<FlowId>,
}

impl FlowWorkspace {
    /// Create an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A routed-flow network: capacitated links plus flows over fixed paths.
#[derive(Debug, Clone, Default)]
pub struct FlowSim {
    capacity: Vec<f64>,
    /// Flow paths as link-id lists.
    paths: Vec<Vec<LinkId>>,
}

impl FlowSim {
    /// Create an empty simulation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a link with the given capacity (must be non-negative, finite).
    pub fn add_link(&mut self, capacity: f64) -> LinkId {
        // lint: allow(panic-reachable) caller contract: a negative or NaN capacity would silently corrupt the max-min water-fill
        assert!(capacity.is_finite() && capacity >= 0.0);
        self.capacity.push(capacity);
        (self.capacity.len() - 1) as LinkId
    }

    /// Add a flow along a non-empty sequence of links.
    ///
    /// Duplicate links in one path are allowed (a zig-zag BP path can reuse
    /// a GT's up and down capacity when these are modelled as one link);
    /// each occurrence consumes capacity independently.
    pub fn add_flow(&mut self, path: Vec<LinkId>) -> FlowId {
        // lint: allow(panic-reachable) caller contract on flow paths; a dangling link id would corrupt the fair-share computation
        assert!(!path.is_empty(), "flow path must contain at least one link");
        for &l in &path {
            // lint: allow(panic-reachable) caller contract on flow paths; a dangling link id would corrupt the fair-share computation
            assert!((l as usize) < self.capacity.len(), "link {l} out of range");
        }
        self.paths.push(path);
        (self.paths.len() - 1) as FlowId
    }

    /// Replace the capacity of an existing link — lets a caller build the
    /// link/flow structure once and re-solve under different capacity
    /// assumptions (ISL capacity sweeps, weather-degraded links).
    pub fn set_link_capacity(&mut self, l: LinkId, capacity: f64) {
        // lint: allow(panic-reachable) caller contract: a negative or NaN capacity would silently corrupt the max-min water-fill
        assert!(capacity.is_finite() && capacity >= 0.0);
        self.capacity[l as usize] = capacity;
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.capacity.len()
    }

    /// Number of flows.
    pub fn num_flows(&self) -> usize {
        self.paths.len()
    }

    /// Compute the max-min fair allocation by progressive filling.
    ///
    /// Runs in `O(rounds × active_links + Σ path lengths)`; each round
    /// freezes at least one flow, so `rounds ≤ num_flows`. Allocates its
    /// working buffers fresh; use [`FlowSim::solve_with`] to reuse a
    /// [`FlowWorkspace`] across solves.
    pub fn solve(&self) -> Allocation {
        self.solve_with(&mut FlowWorkspace::new())
    }

    /// [`FlowSim::solve`] on a caller-provided workspace: all per-link
    /// and per-flow working state lives in `ws`, so a warm workspace
    /// makes repeated solves allocation-free apart from the returned
    /// [`Allocation`]. The result is identical to [`FlowSim::solve`].
    pub fn solve_with(&self, ws: &mut FlowWorkspace) -> Allocation {
        let nl = self.capacity.len();
        let nf = self.paths.len();
        ws.remaining.clear();
        ws.remaining.extend_from_slice(&self.capacity);
        let mut rates = vec![0.0f64; nf];
        ws.frozen.clear();
        ws.frozen.resize(nf, false);
        let mut freeze_round = vec![0u32; nf];

        // Per-link: how many path-occurrences of unfrozen flows cross it,
        // and which flows those are (built once; entries of frozen flows
        // are skipped lazily).
        ws.occurrences.clear();
        ws.occurrences.resize(nl, 0);
        for v in ws.link_flows.iter_mut() {
            v.clear();
        }
        if ws.link_flows.len() < nl {
            ws.link_flows.resize_with(nl, Vec::new);
        }
        for (f, path) in self.paths.iter().enumerate() {
            for &l in path {
                ws.occurrences[l as usize] += 1;
                ws.link_flows[l as usize].push(f as FlowId);
            }
        }
        // A flow crossing a link twice gets two shares of it, matching the
        // "each occurrence consumes capacity" model; dedupe is the caller's
        // choice by constructing paths without repeats.

        ws.active.clear();
        ws.active
            .extend((0..nl as u32).filter(|&l| ws.occurrences[l as usize] > 0));
        let rounds = progressive_fill(
            &self.paths,
            &mut ws.remaining,
            &mut ws.occurrences,
            &mut ws.link_flows[..nl],
            &mut ws.active,
            &mut ws.frozen,
            &mut freeze_round,
            &mut rates,
            nf,
            &mut ws.scratch,
        );

        MAXMIN_SOLVES.add(1);
        MAXMIN_ROUNDS.add(rounds as u64);
        MAXMIN_ROUNDS_HIST.record(rounds as u64);
        let starved = rates.iter().filter(|&&r| r <= 0.0).count() as u64;
        MAXMIN_STARVED_FLOWS.add(starved);
        MAXMIN_SATURATED_FLOWS.add(nf as u64 - starved);

        let mut link_utilization = vec![0.0f64; nl];
        for (f, path) in self.paths.iter().enumerate() {
            for &l in path {
                link_utilization[l as usize] += rates[f];
            }
        }
        Allocation {
            aggregate: rates.iter().sum(),
            rates,
            link_utilization,
            rounds,
            freeze_round,
        }
    }
}

/// Progressive-filling inner loop: each round finds the most-congested
/// link (minimal fair share) and freezes every unfrozen flow crossing
/// it at that share. Runs once per [`FlowSim::solve_with`] but over
/// every link × round, so it works entirely in the buffers the caller
/// set up. Returns the number of rounds.
// lint: hot-path
#[allow(clippy::too_many_arguments)]
fn progressive_fill(
    paths: &[Vec<LinkId>],
    remaining: &mut [f64],
    occurrences: &mut [u32],
    link_flows: &mut [Vec<FlowId>],
    active: &mut Vec<LinkId>,
    frozen: &mut [bool],
    freeze_round: &mut [u32],
    rates: &mut [f64],
    mut unfrozen_left: usize,
    scratch: &mut Vec<FlowId>,
) -> usize {
    let mut rounds = 0usize;
    scratch.clear();
    while unfrozen_left > 0 && !active.is_empty() {
        rounds += 1;
        // Find the most-congested link: minimal remaining / occurrences.
        let mut best_link = active[0];
        let mut best_share = f64::INFINITY;
        for &l in active.iter() {
            let share = remaining[l as usize] / occurrences[l as usize] as f64;
            if share < best_share {
                best_share = share;
                best_link = l;
            }
        }
        let share = best_share.max(0.0);
        // Freeze every unfrozen flow crossing the bottleneck. Swapping
        // through `scratch` (empty, capacity retained) instead of
        // `mem::take` keeps the bucket's allocation alive for the next
        // solve on this workspace; the bucket itself is never read again
        // — the link saturates and leaves the active set below.
        std::mem::swap(scratch, &mut link_flows[best_link as usize]);
        for &f in scratch.iter() {
            let fi = f as usize;
            if frozen[fi] {
                continue;
            }
            frozen[fi] = true;
            freeze_round[fi] = rounds as u32;
            unfrozen_left -= 1;
            // A flow crossing the bottleneck k times gets k shares? No:
            // the flow's rate is the fair share; each crossing consumes
            // it. Rate = share (the binding constraint).
            rates[fi] = share;
            for &l in &paths[fi] {
                remaining[l as usize] = (remaining[l as usize] - share).max(0.0);
                occurrences[l as usize] -= 1;
            }
        }
        scratch.clear();
        // Compact the active set.
        active.retain(|&l| occurrences[l as usize] > 0);
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_flows_share_one_link() {
        let mut sim = FlowSim::new();
        let l = sim.add_link(10.0);
        sim.add_flow(vec![l]);
        sim.add_flow(vec![l]);
        let a = sim.solve();
        assert_eq!(a.rates, vec![5.0, 5.0]);
        assert_eq!(a.aggregate, 10.0);
        assert!((a.link_utilization[0] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn classic_maxmin_example() {
        // Textbook: flows A (l1), B (l1,l2), C (l2). cap(l1)=1, cap(l2)=2.
        // Max-min: bottleneck l1 gives A=B=0.5; then C gets 1.5 on l2.
        let mut sim = FlowSim::new();
        let l1 = sim.add_link(1.0);
        let l2 = sim.add_link(2.0);
        let a = sim.add_flow(vec![l1]);
        let b = sim.add_flow(vec![l1, l2]);
        let c = sim.add_flow(vec![l2]);
        let alloc = sim.solve();
        assert!((alloc.rates[a as usize] - 0.5).abs() < 1e-12);
        assert!((alloc.rates[b as usize] - 0.5).abs() < 1e-12);
        assert!((alloc.rates[c as usize] - 1.5).abs() < 1e-12);
        assert!((alloc.aggregate - 2.5).abs() < 1e-12);
    }

    #[test]
    fn independent_flows_get_full_capacity() {
        let mut sim = FlowSim::new();
        let l1 = sim.add_link(3.0);
        let l2 = sim.add_link(7.0);
        sim.add_flow(vec![l1]);
        sim.add_flow(vec![l2]);
        let a = sim.solve();
        assert_eq!(a.rates, vec![3.0, 7.0]);
    }

    #[test]
    fn zero_capacity_link_gives_zero_rate() {
        let mut sim = FlowSim::new();
        let l = sim.add_link(0.0);
        sim.add_flow(vec![l]);
        let a = sim.solve();
        assert_eq!(a.rates, vec![0.0]);
        assert_eq!(a.aggregate, 0.0);
    }

    #[test]
    fn no_flows() {
        let mut sim = FlowSim::new();
        sim.add_link(5.0);
        let a = sim.solve();
        assert!(a.rates.is_empty());
        assert_eq!(a.aggregate, 0.0);
        assert_eq!(a.rounds, 0);
    }

    #[test]
    fn long_path_constrained_by_weakest_link() {
        let mut sim = FlowSim::new();
        let links: Vec<_> = [5.0, 1.0, 3.0].iter().map(|&c| sim.add_link(c)).collect();
        sim.add_flow(links.clone());
        let a = sim.solve();
        assert_eq!(a.rates, vec![1.0]);
    }

    #[test]
    fn utilization_never_exceeds_capacity() {
        let mut sim = FlowSim::new();
        let l1 = sim.add_link(2.0);
        let l2 = sim.add_link(1.0);
        let l3 = sim.add_link(4.0);
        sim.add_flow(vec![l1, l2]);
        sim.add_flow(vec![l2, l3]);
        sim.add_flow(vec![l1, l3]);
        sim.add_flow(vec![l3]);
        let a = sim.solve();
        for (l, u) in a.link_utilization.iter().enumerate() {
            assert!(
                *u <= sim.capacity[l] + 1e-9,
                "link {l} over capacity: {u} > {}",
                sim.capacity[l]
            );
        }
    }

    #[test]
    fn flow_crossing_link_twice_counts_twice() {
        // A zig-zag path that reuses one link: the fair share must account
        // for both occurrences (2 shares on a 10-capacity link → rate 5
        // consumed twice = full).
        let mut sim = FlowSim::new();
        let l = sim.add_link(10.0);
        sim.add_flow(vec![l, l]);
        let a = sim.solve();
        assert_eq!(a.rates, vec![5.0]);
        assert!((a.link_utilization[0] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn rounds_bounded_by_flows() {
        let mut sim = FlowSim::new();
        let links: Vec<_> = (0..10).map(|i| sim.add_link(1.0 + i as f64)).collect();
        for chunk in links.chunks(2) {
            sim.add_flow(chunk.to_vec());
        }
        let a = sim.solve();
        assert!(a.rounds <= sim.num_flows());
    }

    #[test]
    #[should_panic(expected = "at least one link")]
    fn rejects_empty_path() {
        let mut sim = FlowSim::new();
        sim.add_flow(vec![]);
    }

    #[test]
    fn solve_with_matches_solve_across_reuses() {
        // A warm workspace must give results identical to fresh buffers,
        // including when reused across sims of different shapes.
        let mut ws = FlowWorkspace::new();
        for caps in [[1.0, 2.0, 4.0], [5.0, 0.5, 0.0], [3.0, 3.0, 3.0]] {
            let mut sim = FlowSim::new();
            let ls: Vec<_> = caps.iter().map(|&c| sim.add_link(c)).collect();
            sim.add_flow(vec![ls[0]]);
            sim.add_flow(vec![ls[0], ls[1]]);
            sim.add_flow(vec![ls[1], ls[2]]);
            sim.add_flow(vec![ls[2], ls[2]]);
            let fresh = sim.solve();
            let warm = sim.solve_with(&mut ws);
            assert_eq!(fresh.rates, warm.rates, "caps {caps:?}");
            assert_eq!(fresh.rounds, warm.rounds);
            assert_eq!(fresh.freeze_round, warm.freeze_round);
            assert_eq!(fresh.link_utilization, warm.link_utilization);
        }
    }

    #[test]
    fn set_link_capacity_resolves_same_flows() {
        let mut sim = FlowSim::new();
        let l = sim.add_link(10.0);
        sim.add_flow(vec![l]);
        sim.add_flow(vec![l]);
        let mut ws = FlowWorkspace::new();
        assert_eq!(sim.solve_with(&mut ws).rates, vec![5.0, 5.0]);
        sim.set_link_capacity(l, 4.0);
        assert_eq!(sim.solve_with(&mut ws).rates, vec![2.0, 2.0]);
        sim.set_link_capacity(l, 0.0);
        assert_eq!(sim.solve_with(&mut ws).aggregate, 0.0);
    }

    #[test]
    #[should_panic]
    fn set_link_capacity_rejects_negative() {
        let mut sim = FlowSim::new();
        let l = sim.add_link(1.0);
        sim.set_link_capacity(l, -1.0);
    }
}
