//! Property-based tests for the dataset substrate (on
//! `leo_util::check`; 256 cases per property, ≥ the proptest originals).

use leo_data::*;
use leo_geo::{great_circle_distance_m, GeoPoint};
use leo_util::check::check;
use leo_util::{check_assert, check_assert_eq};

/// load_cities returns exactly n cities, population-sorted, with
/// finite coordinates, for any n and seed.
#[test]
fn cities_always_well_formed() {
    check("cities_always_well_formed", |g| {
        let n = g.usize(1..1200);
        let seed = g.u64(0..100);
        let cities = load_cities(n, seed);
        check_assert_eq!(cities.len(), n);
        for w in cities.windows(2) {
            check_assert!(w[0].population >= w[1].population);
        }
        for c in &cities {
            check_assert!(c.pos.lat_deg().abs() <= 90.0);
            check_assert!(c.population > 0.0);
        }
        Ok(())
    });
}

/// Pair sampling respects the distance floor and canonical ordering
/// for arbitrary seeds and floors.
#[test]
fn pairs_respect_floor() {
    let cities = load_cities(200, 1);
    check("pairs_respect_floor", |g| {
        let seed = g.u64(0..50);
        let floor_km = g.f64(500.0..8000.0);
        let pairs = sample_city_pairs(&cities, 150, floor_km * 1000.0, seed);
        for p in &pairs {
            check_assert!(p.src < p.dst);
            let d = great_circle_distance_m(cities[p.src as usize].pos, cities[p.dst as usize].pos);
            check_assert!(d > floor_km * 1000.0);
        }
        Ok(())
    });
}

/// Aircraft fly their great circle: at any instant, an aircraft's
/// position is a finite point on Earth.
#[test]
fn aircraft_between_endpoints() {
    let sched = flights::FlightSchedule::new(0.5);
    check("aircraft_between_endpoints", |g| {
        let t = g.f64(0.0..86_400.0);
        for a in sched.aircraft_at(t).iter().take(40) {
            // Every aircraft is somewhere on Earth with finite coords.
            check_assert!(a.pos.lat_deg().abs() <= 90.0);
        }
        Ok(())
    });
}

/// Land-mask dilation: every raw-land point stays land after
/// dilation (dilation only adds).
#[test]
fn dilation_only_adds() {
    check("dilation_only_adds", |g| {
        let p = GeoPoint::from_degrees(g.f64(-85.0..85.0), g.f64(-180.0..180.0));
        // is_land is the dilated test; a point that is land must remain
        // land for slightly perturbed queries within the dilation radius.
        if is_land(p) {
            // No assertion on neighbours (coast edges legitimately flip);
            // but determinism must hold.
            check_assert_eq!(is_land(p), is_land(p));
        }
        Ok(())
    });
}

/// Flight schedule repeats daily for any query time.
#[test]
fn schedule_is_periodic() {
    let sched = flights::FlightSchedule::new(0.5);
    check("schedule_is_periodic", |g| {
        let t = g.f64(0.0..86_400.0);
        check_assert_eq!(
            sched.aircraft_at(t).len(),
            sched.aircraft_at(t + 86_400.0).len()
        );
        Ok(())
    });
}
