//! Property-based tests for the dataset substrate.

use leo_data::*;
use leo_geo::{great_circle_distance_m, GeoPoint};
use proptest::prelude::*;

proptest! {
    /// load_cities returns exactly n cities, population-sorted, with
    /// finite coordinates, for any n and seed.
    #[test]
    fn cities_always_well_formed(n in 1usize..1200, seed in 0u64..100) {
        let cities = load_cities(n, seed);
        prop_assert_eq!(cities.len(), n);
        for w in cities.windows(2) {
            prop_assert!(w[0].population >= w[1].population);
        }
        for c in &cities {
            prop_assert!(c.pos.lat_deg().abs() <= 90.0);
            prop_assert!(c.population > 0.0);
        }
    }

    /// Pair sampling respects the distance floor and canonical ordering
    /// for arbitrary seeds and floors.
    #[test]
    fn pairs_respect_floor(seed in 0u64..50, floor_km in 500.0f64..8000.0) {
        let cities = load_cities(200, 1);
        let pairs = sample_city_pairs(&cities, 150, floor_km * 1000.0, seed);
        for p in &pairs {
            prop_assert!(p.src < p.dst);
            let d = great_circle_distance_m(
                cities[p.src as usize].pos,
                cities[p.dst as usize].pos,
            );
            prop_assert!(d > floor_km * 1000.0);
        }
    }

    /// Aircraft fly their great circle: at any instant, an aircraft's
    /// distance from both route endpoints sums to ≈ the route length
    /// (within the generator's interpolation tolerance).
    #[test]
    fn aircraft_between_endpoints(t in 0.0f64..86_400.0) {
        let sched = flights::FlightSchedule::new(0.5);
        for a in sched.aircraft_at(t).iter().take(40) {
            // Every aircraft is somewhere on Earth with finite coords.
            prop_assert!(a.pos.lat_deg().abs() <= 90.0);
        }
    }

    /// Land-mask dilation: every raw-land point stays land after
    /// dilation (dilation only adds).
    #[test]
    fn dilation_only_adds(lat in -85.0f64..85.0, lon in -180.0f64..180.0) {
        let p = GeoPoint::from_degrees(lat, lon);
        // is_land is the dilated test; a point that is land must remain
        // land for slightly perturbed queries within the dilation radius.
        if is_land(p) {
            // No assertion on neighbours (coast edges legitimately flip);
            // but determinism must hold.
            prop_assert_eq!(is_land(p), is_land(p));
        }
    }

    /// Flight schedule repeats daily for any query time.
    #[test]
    fn schedule_is_periodic(t in 0.0f64..86_400.0) {
        let sched = flights::FlightSchedule::new(0.5);
        prop_assert_eq!(
            sched.aircraft_at(t).len(),
            sched.aircraft_at(t + 86_400.0).len()
        );
    }
}
