//! World cities: traffic sources and sinks.
//!
//! The paper places source/sink ground terminals at the 1,000 most
//! populous cities (GLA dataset). We embed a curated list of real major
//! cities — every metro area that plausibly appears in a global top-300,
//! with approximate coordinates and metro populations — and synthesize the
//! remaining tail deterministically near real population centres (see
//! DESIGN.md substitution 2). What the experiments consume is the
//! *geographic distribution* of endpoints, which this preserves.

use crate::landmask::is_land;
use leo_geo::GeoPoint;
use leo_util::Rng64;

/// A city: a named ground-terminal site with a population weight.
#[derive(Debug, Clone, PartialEq)]
pub struct City {
    /// City name (synthetic-tail cities are named `"synth-<k>"`).
    pub name: String,
    /// Location.
    pub pos: GeoPoint,
    /// Metro population (used for ordering and synthesis anchoring).
    pub population: f64,
}

/// (name, lat, lon, population-in-millions) for real major cities.
/// Coordinates are city-centre approximations (±0.1° is irrelevant at
/// constellation scale).
#[rustfmt::skip]
// Kuala Lumpur's latitude happens to read like π truncated; this is
// geographic data, not a math constant.
#[allow(clippy::approx_constant)]
const REAL_CITIES: &[(&str, f64, f64, f64)] = &[
    ("Tokyo", 35.68, 139.69, 37.4), ("Delhi", 28.61, 77.21, 29.4),
    ("Shanghai", 31.23, 121.47, 26.3), ("São Paulo", -23.55, -46.63, 21.8),
    ("Mexico City", 19.43, -99.13, 21.6), ("Cairo", 30.04, 31.24, 20.5),
    ("Mumbai", 19.08, 72.88, 20.0), ("Beijing", 39.90, 116.41, 19.6),
    ("Dhaka", 23.81, 90.41, 19.6), ("Osaka", 34.69, 135.50, 19.3),
    ("New York", 40.71, -74.01, 18.8), ("Karachi", 24.86, 67.01, 15.7),
    ("Buenos Aires", -34.60, -58.38, 15.0), ("Chongqing", 29.56, 106.55, 14.8),
    ("Istanbul", 41.01, 28.98, 14.7), ("Kolkata", 22.57, 88.36, 14.7),
    ("Manila", 14.60, 120.98, 13.5), ("Lagos", 6.52, 3.38, 13.4),
    ("Rio de Janeiro", -22.91, -43.17, 13.3), ("Tianjin", 39.34, 117.36, 13.2),
    ("Kinshasa", -4.44, 15.27, 13.2), ("Guangzhou", 23.13, 113.26, 12.6),
    ("Los Angeles", 34.05, -118.24, 12.4), ("Moscow", 55.76, 37.62, 12.4),
    ("Shenzhen", 22.54, 114.06, 12.1), ("Lahore", 31.55, 74.34, 11.7),
    ("Bangalore", 12.97, 77.59, 11.4), ("Paris", 48.86, 2.35, 10.9),
    ("Bogotá", 4.71, -74.07, 10.6), ("Jakarta", -6.21, 106.85, 10.5),
    ("Chennai", 13.08, 80.27, 10.5), ("Lima", -12.05, -77.04, 10.4),
    ("Bangkok", 13.76, 100.50, 10.2), ("Seoul", 37.57, 126.98, 9.8),
    ("Nagoya", 35.18, 136.91, 9.5), ("Hyderabad", 17.39, 78.49, 9.5),
    ("London", 51.51, -0.13, 9.3), ("Tehran", 35.69, 51.39, 9.1),
    ("Chicago", 41.88, -87.63, 8.9), ("Chengdu", 30.57, 104.07, 8.8),
    ("Nanjing", 32.06, 118.80, 8.5), ("Wuhan", 30.59, 114.31, 8.4),
    ("Ho Chi Minh City", 10.82, 106.63, 8.3), ("Luanda", -8.84, 13.23, 8.0),
    ("Ahmedabad", 23.02, 72.57, 7.7), ("Kuala Lumpur", 3.14, 101.69, 7.6),
    ("Xi'an", 34.34, 108.94, 7.4), ("Hong Kong", 22.32, 114.17, 7.4),
    ("Dongguan", 23.02, 113.75, 7.4), ("Hangzhou", 30.27, 120.16, 7.2),
    ("Foshan", 23.02, 113.12, 7.2), ("Shenyang", 41.81, 123.43, 6.9),
    ("Riyadh", 24.71, 46.68, 6.9), ("Baghdad", 33.31, 44.37, 6.8),
    ("Santiago", -33.45, -70.67, 6.7), ("Surat", 21.17, 72.83, 6.6),
    ("Madrid", 40.42, -3.70, 6.5), ("Suzhou", 31.30, 120.58, 6.3),
    ("Pune", 18.52, 73.86, 6.3), ("Harbin", 45.80, 126.53, 6.1),
    ("Houston", 29.76, -95.37, 6.1), ("Dallas", 32.78, -96.80, 6.1),
    ("Toronto", 43.65, -79.38, 6.0), ("Dar es Salaam", -6.79, 39.21, 6.0),
    ("Miami", 25.76, -80.19, 6.0), ("Belo Horizonte", -19.92, -43.94, 5.9),
    ("Singapore", 1.35, 103.82, 5.9), ("Philadelphia", 39.95, -75.17, 5.7),
    ("Atlanta", 33.75, -84.39, 5.6), ("Fukuoka", 33.59, 130.40, 5.5),
    ("Khartoum", 15.50, 32.56, 5.5), ("Barcelona", 41.39, 2.17, 5.5),
    ("Johannesburg", -26.20, 28.04, 5.5), ("Saint Petersburg", 59.93, 30.34, 5.4),
    ("Qingdao", 36.07, 120.38, 5.4), ("Dalian", 38.91, 121.61, 5.3),
    ("Washington", 38.91, -77.04, 5.3), ("Yangon", 16.87, 96.20, 5.2),
    ("Alexandria", 31.20, 29.92, 5.2), ("Jinan", 36.65, 117.12, 5.2),
    ("Guadalajara", 20.66, -103.35, 5.2), ("Monterrey", 25.69, -100.32, 4.9),
    ("Ankara", 39.93, 32.86, 4.9), ("Melbourne", -37.81, 144.96, 4.9),
    ("Abidjan", 5.36, -4.01, 4.9), ("Sydney", -33.87, 151.21, 4.8),
    ("Nairobi", -1.29, 36.82, 4.7), ("Zhengzhou", 34.75, 113.63, 4.7),
    ("Boston", 42.36, -71.06, 4.7), ("Casablanca", 33.57, -7.59, 4.6),
    ("Phoenix", 33.45, -112.07, 4.6), ("Cape Town", -33.92, 18.42, 4.6),
    ("Jeddah", 21.49, 39.19, 4.6), ("Changsha", 28.23, 112.94, 4.5),
    ("Kunming", 24.88, 102.83, 4.4), ("Addis Ababa", 9.02, 38.75, 4.4),
    ("Hanoi", 21.03, 105.85, 4.4), ("San Francisco", 37.77, -122.42, 4.3),
    ("Kabul", 34.56, 69.21, 4.3), ("Amman", 31.96, 35.95, 4.3),
    ("Porto Alegre", -30.03, -51.23, 4.1), ("Recife", -8.05, -34.88, 4.1),
    ("Montreal", 45.50, -73.57, 4.1), ("Fortaleza", -3.73, -38.53, 4.1),
    ("Detroit", 42.33, -83.05, 4.0), ("Hefei", 31.82, 117.23, 4.0),
    ("Medellín", 6.25, -75.56, 4.0), ("Athens", 37.98, 23.73, 3.8),
    ("Kano", 12.00, 8.52, 3.8), ("Berlin", 52.52, 13.41, 3.8),
    ("Seattle", 47.61, -122.33, 3.8), ("Jaipur", 26.91, 75.79, 3.8),
    ("Guayaquil", -2.19, -79.89, 3.7), ("Rome", 41.90, 12.50, 3.7),
    ("Salvador", -12.97, -38.50, 3.7), ("Caracas", 10.48, -66.90, 3.6),
    ("Shijiazhuang", 38.04, 114.51, 3.6), ("Lucknow", 26.85, 80.95, 3.5),
    ("San Diego", 32.72, -117.16, 3.3), ("Izmir", 38.42, 27.14, 3.3),
    ("Busan", 35.18, 129.08, 3.3), ("Kuwait City", 29.38, 47.98, 3.2),
    ("Algiers", 36.74, 3.09, 3.2), ("Milan", 45.46, 9.19, 3.2),
    ("Taiyuan", 37.87, 112.55, 3.2), ("Pyongyang", 39.04, 125.76, 3.1),
    ("Durban", -29.86, 31.02, 3.1), ("Curitiba", -25.43, -49.27, 3.1),
    ("Kanpur", 26.45, 80.33, 3.1), ("Minneapolis", 44.98, -93.27, 3.1),
    ("Dubai", 25.20, 55.27, 3.1), ("Kyiv", 50.45, 30.52, 3.0),
    ("Campinas", -22.91, -47.06, 3.0), ("Tampa", 27.95, -82.46, 3.0),
    ("Sapporo", 43.06, 141.35, 2.9), ("Nagpur", 21.15, 79.09, 2.9),
    ("Denver", 39.74, -104.99, 2.9), ("Cali", 3.45, -76.53, 2.8),
    ("Tashkent", 41.30, 69.24, 2.8), ("Santo Domingo", 18.49, -69.93, 2.8),
    ("Birmingham", 52.48, -1.90, 2.8), ("Accra", 5.60, -0.19, 2.7),
    ("Havana", 23.11, -82.37, 2.7), ("Port-au-Prince", 18.54, -72.34, 2.6),
    ("Faisalabad", 31.42, 73.08, 2.6), ("Brasília", -15.79, -47.88, 2.6),
    ("Vancouver", 49.28, -123.12, 2.6), ("Baku", 40.41, 49.87, 2.5),
    ("Brooklyn-Queens", 40.68, -73.94, 2.5), ("Brisbane", -27.47, 153.03, 2.5),
    ("Quito", -0.18, -78.47, 2.5), ("Mashhad", 36.26, 59.62, 2.5),
    ("Damascus", 33.51, 36.29, 2.5), ("Ouagadougou", 12.37, -1.52, 2.5),
    ("Indore", 22.72, 75.86, 2.5), ("Minsk", 53.90, 27.57, 2.5),
    ("Vienna", 48.21, 16.37, 2.4), ("Maracaibo", 10.65, -71.65, 2.4),
    ("Bamako", 12.64, -8.00, 2.4), ("Lusaka", -15.39, 28.32, 2.4),
    ("St. Louis", 38.63, -90.20, 2.4), ("Baltimore", 39.29, -76.61, 2.3),
    ("Hamburg", 53.55, 9.99, 2.3), ("Warsaw", 52.23, 21.01, 2.3),
    ("Mecca", 21.39, 39.86, 2.3), ("Bucharest", 44.43, 26.10, 2.3),
    ("Yaoundé", 3.87, 11.52, 2.3), ("Douala", 4.05, 9.70, 2.3),
    ("Kumasi", 6.69, -1.62, 2.2), ("Almaty", 43.22, 76.85, 2.0),
    ("Budapest", 47.50, 19.04, 2.0), ("Mogadishu", 2.05, 45.32, 2.0),
    ("Harare", -17.83, 31.05, 2.0), ("Las Vegas", 36.17, -115.14, 2.0),
    ("Portland", 45.52, -122.68, 2.0), ("Auckland", -36.85, 174.76, 1.7),
    ("Phnom Penh", 11.56, 104.92, 2.0), ("Rabat", 34.02, -6.84, 1.9),
    ("Stockholm", 59.33, 18.07, 1.9), ("Antananarivo", -18.88, 47.51, 1.9),
    ("Asunción", -25.26, -57.58, 1.9), ("La Paz", -16.50, -68.15, 1.8),
    ("Maputo", -25.97, 32.58, 1.8), ("Tunis", 36.81, 10.18, 1.8),
    ("Tripoli", 32.89, 13.19, 1.8), ("Novosibirsk", 55.01, 82.94, 1.6),
    ("Prague", 50.08, 14.44, 1.3), ("Sacramento", 38.58, -121.49, 1.6),
    ("Perth", -31.95, 115.86, 2.1), ("Adelaide", -34.93, 138.60, 1.4),
    ("Copenhagen", 55.68, 12.57, 1.4), ("Tbilisi", 41.72, 44.79, 1.5),
    ("Yerevan", 40.18, 44.51, 1.1), ("Belgrade", 44.79, 20.45, 1.4),
    ("Sofia", 42.70, 23.32, 1.3), ("Montevideo", -34.90, -56.16, 1.4),
    ("Dakar", 14.72, -17.47, 3.1), ("Conakry", 9.64, -13.58, 1.9),
    ("Monrovia", 6.30, -10.80, 1.5), ("Freetown", 8.47, -13.23, 1.2),
    ("Maceió", -9.67, -35.74, 1.0), ("Natal", -5.79, -35.21, 1.4),
    ("Belém", -1.46, -48.50, 2.2), ("Manaus", -3.12, -60.02, 2.2),
    ("San Juan", 18.47, -66.11, 2.4), ("Kingston", 18.02, -76.80, 1.2),
    ("Panama City", 8.98, -79.52, 1.9), ("San José", 9.93, -84.08, 1.4),
    ("Guatemala City", 14.63, -90.51, 3.0), ("Tegucigalpa", 14.07, -87.19, 1.4),
    ("Managua", 12.11, -86.24, 1.1), ("San Salvador", 13.69, -89.22, 1.1),
    ("Honolulu", 21.31, -157.86, 1.0), ("Anchorage", 61.22, -149.90, 0.4),
    ("Reykjavik", 64.15, -21.94, 0.2), ("Oslo", 59.91, 10.75, 1.0),
    ("Helsinki", 60.17, 24.94, 1.3), ("Dublin", 53.35, -6.26, 1.4),
    ("Lisbon", 38.72, -9.14, 2.9), ("Amsterdam", 52.37, 4.90, 2.5),
    ("Brussels", 50.85, 4.35, 2.1), ("Munich", 48.14, 11.58, 1.6),
    ("Zurich", 47.38, 8.54, 1.4), ("Frankfurt", 50.11, 8.68, 2.3),
    ("Manchester", 53.48, -2.24, 2.7), ("Glasgow", 55.86, -4.25, 1.7),
    ("Marseille", 43.30, 5.37, 1.6), ("Naples", 40.85, 14.27, 2.2),
    ("Valencia", 39.47, -0.38, 1.6), ("Seville", 37.39, -5.98, 1.5),
    ("Porto", 41.15, -8.61, 1.7), ("Turin", 45.07, 7.69, 1.7),
    ("Colombo", 6.93, 79.85, 2.3), ("Kathmandu", 27.72, 85.32, 1.4),
    ("Karaj", 35.84, 50.94, 1.9), ("Isfahan", 32.65, 51.67, 2.2),
    ("Basra", 30.51, 47.78, 1.4), ("Aleppo", 36.20, 37.13, 1.8),
    ("Beirut", 33.89, 35.50, 2.4), ("Tel Aviv", 32.09, 34.78, 4.2),
    ("Doha", 25.29, 51.53, 2.4), ("Muscat", 23.59, 58.38, 1.6),
    ("Sana'a", 15.35, 44.21, 3.0), ("Aden", 12.79, 45.03, 1.0),
    ("Islamabad", 33.68, 73.05, 1.2), ("Peshawar", 34.01, 71.58, 2.3),
    ("Multan", 30.16, 71.52, 2.1), ("Rawalpindi", 33.60, 73.04, 2.2),
    ("Chittagong", 22.36, 91.78, 5.2), ("Patna", 25.59, 85.14, 2.4),
    ("Varanasi", 25.32, 82.99, 1.7), ("Bhopal", 23.26, 77.41, 2.4),
    ("Visakhapatnam", 17.69, 83.22, 2.3), ("Coimbatore", 11.02, 76.96, 2.9),
    ("Kochi", 9.93, 76.27, 2.9), ("Mandalay", 21.96, 96.08, 1.5),
    ("Vientiane", 17.98, 102.63, 1.0), ("Da Nang", 16.05, 108.21, 1.2),
    ("Surabaya", -7.26, 112.75, 3.0), ("Bandung", -6.92, 107.61, 2.6),
    ("Medan", 3.59, 98.67, 2.5), ("Makassar", -5.15, 119.43, 1.6),
    ("Cebu", 10.32, 123.89, 3.0), ("Davao", 7.07, 125.61, 1.8),
    ("Taipei", 25.03, 121.57, 7.0), ("Kaohsiung", 22.62, 120.31, 2.8),
    ("Kyoto", 35.01, 135.77, 2.6), ("Hiroshima", 34.39, 132.46, 2.1),
    ("Sendai", 38.27, 140.87, 2.3), ("Incheon", 37.46, 126.71, 2.9),
    ("Daegu", 35.87, 128.60, 2.5), ("Ulaanbaatar", 47.89, 106.91, 1.5),
    ("Vladivostok", 43.12, 131.89, 0.6), ("Yekaterinburg", 56.84, 60.61, 1.5),
    ("Omsk", 54.99, 73.37, 1.2), ("Kazan", 55.80, 49.11, 1.3),
    ("Samara", 53.24, 50.22, 1.2), ("Rostov-on-Don", 47.24, 39.71, 1.1),
    ("Volgograd", 48.71, 44.51, 1.0), ("Krasnoyarsk", 56.01, 92.87, 1.1),
    ("Irkutsk", 52.29, 104.30, 0.6), ("Khabarovsk", 48.48, 135.08, 0.6),
    ("Perm", 58.01, 56.23, 1.0), ("Ufa", 54.74, 55.97, 1.1),
    ("Chelyabinsk", 55.16, 61.40, 1.2), ("Nizhny Novgorod", 56.33, 44.00, 1.3),
    ("Wellington", -41.29, 174.78, 0.4), ("Christchurch", -43.53, 172.64, 0.4),
    ("Suva", -18.14, 178.44, 0.2), ("Port Moresby", -9.44, 147.18, 0.4),
    ("Darwin", -12.46, 130.84, 0.15), ("Cairns", -16.92, 145.77, 0.15),
    ("Hobart", -42.88, 147.33, 0.25), ("Canberra", -35.28, 149.13, 0.46),
    ("Windhoek", -22.56, 17.07, 0.43), ("Gaborone", -24.63, 25.92, 0.27),
    ("Lilongwe", -13.96, 33.79, 1.1), ("Kampala", 0.35, 32.58, 1.7),
    ("Kigali", -1.94, 30.06, 1.2), ("Bujumbura", -3.38, 29.36, 1.0),
    ("Niamey", 13.51, 2.11, 1.3), ("N'Djamena", 12.13, 15.06, 1.4),
    ("Bangui", 4.39, 18.56, 0.9), ("Libreville", 0.39, 9.45, 0.8),
    ("Brazzaville", -4.26, 15.24, 2.4), ("Lomé", 6.13, 1.22, 1.8),
    ("Cotonou", 6.37, 2.39, 0.7), ("Nouakchott", 18.07, -15.96, 1.3),
    ("Asmara", 15.32, 38.93, 0.9), ("Djibouti", 11.59, 43.15, 0.6),
    ("Port Louis", -20.16, 57.50, 0.15), ("Victoria-Mahe", -4.62, 55.45, 0.03),
    ("Malé", 4.18, 73.51, 0.25), ("Thimphu", 27.47, 89.64, 0.1),
    ("Edmonton", 53.55, -113.49, 1.4), ("Calgary", 51.05, -114.07, 1.5),
    ("Winnipeg", 49.90, -97.14, 0.8), ("Ottawa", 45.42, -75.70, 1.4),
    ("Quebec City", 46.81, -71.21, 0.8), ("Halifax", 44.65, -63.58, 0.45),
    ("San Antonio", 29.42, -98.49, 2.6), ("Austin", 30.27, -97.74, 2.3),
    ("Charlotte", 35.23, -80.84, 2.7), ("Orlando", 28.54, -81.38, 2.6),
    ("Cleveland", 41.50, -81.69, 2.1), ("Pittsburgh", 40.44, -80.00, 2.3),
    ("Cincinnati", 39.10, -84.51, 2.2), ("Kansas City", 39.10, -94.58, 2.2),
    ("Indianapolis", 39.77, -86.16, 2.1), ("Columbus", 39.96, -83.00, 2.1),
    ("Nashville", 36.16, -86.78, 2.0), ("Salt Lake City", 40.76, -111.89, 1.2),
    ("Tijuana", 32.51, -117.04, 2.2), ("Puebla", 19.04, -98.21, 3.2),
    ("León", 21.12, -101.68, 1.9), ("Ciudad Juárez", 31.69, -106.42, 1.5),
    ("Toluca", 19.29, -99.66, 2.4), ("Querétaro", 20.59, -100.39, 1.4),
    ("Mérida", 20.97, -89.62, 1.2), ("Cancún", 21.16, -86.85, 0.9),
    ("Barranquilla", 10.97, -74.80, 2.3), ("Cartagena", 10.39, -75.51, 1.0),
    ("Valparaíso", -33.05, -71.61, 1.0), ("Concepción", -36.83, -73.05, 1.0),
    ("Córdoba", -31.42, -64.18, 1.6), ("Rosario", -32.94, -60.64, 1.3),
    ("Mendoza", -32.89, -68.83, 1.0), ("Goiânia", -16.69, -49.26, 2.6),
    ("Cuiabá", -15.60, -56.10, 0.9), ("Porto Velho", -8.76, -63.90, 0.5),
    ("Georgetown", 6.80, -58.16, 0.2), ("Paramaribo", 5.87, -55.17, 0.25),
];

/// Load `n` cities (sorted by population, descending).
///
/// The first `min(n, REAL)` are the embedded real cities; the remainder is
/// a deterministic synthetic tail: each synthetic city is placed near a
/// population-weighted random real anchor (offset up to ~4°, rejected and
/// resampled until it lands on land) with populations continuing the
/// Zipf-like tail of the real list.
///
/// # Panics
/// Panics if `n == 0`.
pub fn load_cities(n: usize, seed: u64) -> Vec<City> {
    // lint: allow(panic-reachable) dataset contract: an empty city list cannot seed any study
    assert!(n > 0, "need at least one city");
    let mut cities: Vec<City> = REAL_CITIES
        .iter()
        .map(|&(name, lat, lon, pop_m)| City {
            name: name.to_string(),
            pos: GeoPoint::from_degrees(lat, lon),
            population: pop_m * 1e6,
        })
        .collect();
    cities.sort_by(|a, b| b.population.total_cmp(&a.population));
    if n <= cities.len() {
        cities.truncate(n);
        return cities;
    }
    // Stream note: this moved from `rand::StdRng` (ChaCha12) to the
    // in-tree xoshiro256++ in the hermetic refactor, so the synthetic
    // tail for a given seed legitimately differs from pre-refactor runs.
    // The new streams are pinned in `tests/determinism.rs` and documented
    // in `leo_util::rng`; they must never change again.
    let mut rng = Rng64::seed_from_u64(seed ^ 0xC1717E5);
    let total_pop: f64 = cities.iter().map(|c| c.population).sum();
    let real = cities.clone();
    let min_real_pop = real.last().map(|c| c.population).unwrap_or(1e5);
    let mut k = 0usize;
    while cities.len() < n {
        // Population-weighted anchor choice.
        let mut pick = rng.random_range(0.0..total_pop);
        let mut anchor = &real[0];
        for c in &real {
            if pick < c.population {
                anchor = c;
                break;
            }
            pick -= c.population;
        }
        // Offset up to ~4° in each axis; must land on land and away from
        // the poles.
        let lat = anchor.pos.lat_deg() + rng.random_range(-4.0..4.0);
        let lon = anchor.pos.lon_deg() + rng.random_range(-4.0..4.0);
        let pos = GeoPoint::from_degrees(lat.clamp(-56.0, 70.0), lon);
        if !is_land(pos) {
            continue;
        }
        // Zipf-ish tail below the smallest real city.
        let population = min_real_pop * (real.len() as f64) / (real.len() + k) as f64;
        k += 1;
        cities.push(City {
            name: format!("synth-{k}"),
            pos,
            population,
        });
    }
    cities
}

/// Find a (real) city by exact name in a loaded list.
pub fn city_by_name<'a>(cities: &'a [City], name: &str) -> Option<&'a City> {
    cities.iter().find(|c| c.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_list_is_large_and_sane() {
        assert!(REAL_CITIES.len() >= 250, "got {}", REAL_CITIES.len());
        for &(name, lat, lon, pop) in REAL_CITIES {
            assert!(!name.is_empty());
            assert!((-90.0..=90.0).contains(&lat), "{name}");
            assert!((-180.0..=180.0).contains(&lon), "{name}");
            assert!(pop > 0.0 && pop < 45.0, "{name}: {pop}M");
        }
    }

    #[test]
    fn no_duplicate_names() {
        let mut names: Vec<_> = REAL_CITIES.iter().map(|c| c.0).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate city names");
    }

    #[test]
    fn sorted_by_population() {
        let cities = load_cities(100, 1);
        for w in cities.windows(2) {
            assert!(w[0].population >= w[1].population);
        }
        assert_eq!(cities[0].name, "Tokyo");
    }

    #[test]
    fn synthesizes_tail_to_1000() {
        let cities = load_cities(1000, 42);
        assert_eq!(cities.len(), 1000);
        let synth = cities
            .iter()
            .filter(|c| c.name.starts_with("synth-"))
            .count();
        assert!(synth > 500, "most of the tail is synthetic: {synth}");
        // All synthetic cities are on land.
        for c in &cities {
            if c.name.starts_with("synth-") {
                assert!(is_land(c.pos), "{} off land at {}", c.name, c.pos);
            }
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let a = load_cities(500, 7);
        let b = load_cities(500, 7);
        assert_eq!(a, b);
        let c = load_cities(500, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn lookup_by_name() {
        let cities = load_cities(1000, 42);
        assert!(city_by_name(&cities, "Maceió").is_some());
        assert!(city_by_name(&cities, "Durban").is_some());
        assert!(city_by_name(&cities, "Delhi").is_some());
        assert!(city_by_name(&cities, "Sydney").is_some());
        assert!(city_by_name(&cities, "Brisbane").is_some());
        assert!(city_by_name(&cities, "Tokyo").is_some());
        assert!(city_by_name(&cities, "Paris").is_some());
        assert!(city_by_name(&cities, "Atlantis").is_none());
    }

    #[test]
    #[should_panic(expected = "at least one city")]
    fn rejects_zero() {
        load_cities(0, 1);
    }
}
