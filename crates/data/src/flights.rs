//! Synthetic global air traffic (the FlightAware substitution).
//!
//! The paper uses one day of real in-flight aircraft positions as
//! potential BP relays over water. We synthesize an equivalent: the
//! world's intercontinental corridors as great-circle routes between hub
//! airports, each with a daily departure count **calibrated to the
//! real-world asymmetry that drives the paper's results** — hundreds of
//! daily North Atlantic crossings versus a handful over the South
//! Atlantic. Departures are staggered around the clock in both directions,
//! aircraft fly at 900 km/h along the great circle, and only aircraft
//! over water (per the land mask) are offered as relays.

use crate::airports::airport;
use crate::landmask::is_land;
use leo_geo::{great_circle_distance_m, GeoPoint, GreatCircle};

/// Cruise ground speed of a long-haul aircraft, m/s (~900 km/h).
pub const CRUISE_SPEED_M_S: f64 = 250.0;

/// One corridor: an airport pair plus departures per day per direction.
#[derive(Debug, Clone, Copy)]
struct Route {
    from: &'static str,
    to: &'static str,
    per_day: u32,
}

/// The corridor table. Counts are per direction per day; they are not a
/// flight schedule but a density model of the world's over-water traffic.
#[rustfmt::skip]
const ROUTES: &[Route] = &[
    // --- North Atlantic (dense: the paper's Fig. 3 contrast) ---
    Route { from: "JFK", to: "LHR", per_day: 18 }, Route { from: "JFK", to: "CDG", per_day: 10 },
    Route { from: "JFK", to: "FRA", per_day: 8 },  Route { from: "JFK", to: "AMS", per_day: 7 },
    Route { from: "JFK", to: "MAD", per_day: 5 },  Route { from: "JFK", to: "DUB", per_day: 5 },
    Route { from: "BOS", to: "LHR", per_day: 8 },  Route { from: "BOS", to: "CDG", per_day: 4 },
    Route { from: "YYZ", to: "LHR", per_day: 8 },  Route { from: "YYZ", to: "FRA", per_day: 5 },
    Route { from: "ORD", to: "LHR", per_day: 8 },  Route { from: "ORD", to: "FRA", per_day: 5 },
    Route { from: "IAD", to: "LHR", per_day: 6 },  Route { from: "IAD", to: "CDG", per_day: 4 },
    Route { from: "ATL", to: "LHR", per_day: 5 },  Route { from: "ATL", to: "AMS", per_day: 4 },
    Route { from: "MIA", to: "LHR", per_day: 5 },  Route { from: "MIA", to: "MAD", per_day: 5 },
    Route { from: "JFK", to: "LIS", per_day: 4 },  Route { from: "JFK", to: "ZRH", per_day: 4 },
    Route { from: "JFK", to: "IST", per_day: 4 },  Route { from: "BOS", to: "KEF", per_day: 4 },
    Route { from: "JFK", to: "KEF", per_day: 4 },  Route { from: "YYZ", to: "KEF", per_day: 3 },
    // --- North Pacific ---
    Route { from: "LAX", to: "NRT", per_day: 8 },  Route { from: "LAX", to: "HND", per_day: 6 },
    Route { from: "LAX", to: "ICN", per_day: 6 },  Route { from: "LAX", to: "PVG", per_day: 5 },
    Route { from: "SFO", to: "NRT", per_day: 6 },  Route { from: "SFO", to: "HKG", per_day: 5 },
    Route { from: "SFO", to: "ICN", per_day: 4 },  Route { from: "SEA", to: "NRT", per_day: 4 },
    Route { from: "YVR", to: "NRT", per_day: 4 },  Route { from: "YVR", to: "HKG", per_day: 4 },
    Route { from: "LAX", to: "TPE", per_day: 4 },  Route { from: "SFO", to: "PEK", per_day: 3 },
    Route { from: "HNL", to: "NRT", per_day: 6 },  Route { from: "LAX", to: "HNL", per_day: 10 },
    Route { from: "SFO", to: "HNL", per_day: 8 },  Route { from: "SEA", to: "HNL", per_day: 4 },
    // --- South Pacific (sparse) ---
    Route { from: "SYD", to: "LAX", per_day: 4 },  Route { from: "SYD", to: "SFO", per_day: 2 },
    Route { from: "AKL", to: "LAX", per_day: 2 },  Route { from: "SYD", to: "HNL", per_day: 2 },
    Route { from: "AKL", to: "SFO", per_day: 1 },  Route { from: "SYD", to: "SCL", per_day: 1 },
    Route { from: "AKL", to: "EZE", per_day: 1 },
    // --- South Atlantic (very sparse: Maceió–Durban pain) ---
    Route { from: "GRU", to: "JNB", per_day: 2 },  Route { from: "GRU", to: "LOS", per_day: 1 },
    Route { from: "GRU", to: "CPT", per_day: 1 },  Route { from: "EZE", to: "JNB", per_day: 1 },
    // --- Equatorial Atlantic narrows (Europe/Africa ↔ South America) ---
    Route { from: "MAD", to: "GRU", per_day: 4 },  Route { from: "LIS", to: "GRU", per_day: 4 },
    Route { from: "CDG", to: "GRU", per_day: 3 },  Route { from: "FRA", to: "GRU", per_day: 2 },
    Route { from: "LIS", to: "GIG", per_day: 3 },  Route { from: "MAD", to: "EZE", per_day: 3 },
    Route { from: "CDG", to: "EZE", per_day: 2 },  Route { from: "LHR", to: "GRU", per_day: 2 },
    Route { from: "DKR", to: "GRU", per_day: 1 },  Route { from: "CMN", to: "GRU", per_day: 1 },
    // --- Indian Ocean ---
    Route { from: "DXB", to: "SYD", per_day: 3 },  Route { from: "DXB", to: "PER", per_day: 2 },
    Route { from: "DOH", to: "SYD", per_day: 2 },  Route { from: "DXB", to: "SIN", per_day: 6 },
    Route { from: "DXB", to: "BOM", per_day: 6 },  Route { from: "SIN", to: "PER", per_day: 4 },
    Route { from: "SIN", to: "SYD", per_day: 5 },  Route { from: "SIN", to: "MEL", per_day: 4 },
    Route { from: "KUL", to: "SYD", per_day: 2 },  Route { from: "BKK", to: "SYD", per_day: 2 },
    Route { from: "HKG", to: "SYD", per_day: 4 },  Route { from: "HKG", to: "MEL", per_day: 3 },
    Route { from: "NRT", to: "SYD", per_day: 3 },  Route { from: "JNB", to: "PER", per_day: 1 },
    Route { from: "MRU", to: "PER", per_day: 1 },  Route { from: "JNB", to: "SYD", per_day: 1 },
    Route { from: "DEL", to: "SIN", per_day: 4 },  Route { from: "BOM", to: "SIN", per_day: 4 },
    Route { from: "NBO", to: "BOM", per_day: 2 },  Route { from: "ADD", to: "DEL", per_day: 2 },
    Route { from: "DXB", to: "MRU", per_day: 2 },  Route { from: "NBO", to: "MRU", per_day: 1 },
    // --- Caribbean / Latin connectors ---
    Route { from: "MIA", to: "GRU", per_day: 4 },  Route { from: "MIA", to: "EZE", per_day: 3 },
    Route { from: "MIA", to: "BOG", per_day: 5 },  Route { from: "MIA", to: "LIM", per_day: 3 },
    Route { from: "JFK", to: "GRU", per_day: 3 },  Route { from: "PTY", to: "GRU", per_day: 2 },
    Route { from: "MEX", to: "GRU", per_day: 1 },  Route { from: "LAX", to: "MEX", per_day: 5 },
    // --- Polar / northern ---
    Route { from: "ANC", to: "NRT", per_day: 2 },  Route { from: "SVO", to: "JFK", per_day: 2 },
];

/// An in-flight aircraft at one instant.
#[derive(Debug, Clone, Copy)]
pub struct Aircraft {
    /// Stable id across the day (route index and departure slot).
    pub id: u64,
    /// Current position.
    pub pos: GeoPoint,
    /// True if the aircraft is currently over water (usable as a relay).
    pub over_water: bool,
}

/// The day's synthetic flight schedule.
#[derive(Debug, Clone)]
pub struct FlightSchedule {
    /// Expanded (origin, destination, departure-time-s, duration-s, id).
    legs: Vec<Leg>,
}

#[derive(Debug, Clone, Copy)]
struct Leg {
    id: u64,
    /// Route geometry, precomputed once per leg —
    /// [`GreatCircle::point_at`] is bitwise equal to
    /// [`leo_geo::intermediate_point`] over the same endpoints.
    route: GreatCircle,
    depart_s: f64,
    duration_s: f64,
}

impl FlightSchedule {
    /// Build the schedule with a traffic-density multiplier (1.0 = the
    /// baseline corridor table; 2.0 doubles every corridor's departures).
    pub fn new(density: f64) -> Self {
        // lint: allow(panic-reachable) dataset validation at load time: a non-positive route density has no flight count
        assert!(density > 0.0);
        let day = 86_400.0;
        let mut legs = Vec::new();
        let mut id = 0u64;
        for (ri, r) in ROUTES.iter().enumerate() {
            // lint: allow(panic-reachable) dataset validation at load time; a bad route table must fail loudly, not silently drop flights
            let a = airport(r.from).unwrap_or_else(|| panic!("unknown airport {}", r.from));
            // lint: allow(panic-reachable) dataset validation at load time; a bad route table must fail loudly, not silently drop flights
            let b = airport(r.to).unwrap_or_else(|| panic!("unknown airport {}", r.to));
            let dist = great_circle_distance_m(a.pos(), b.pos());
            let duration = dist / CRUISE_SPEED_M_S;
            let n = ((r.per_day as f64 * density).round() as u32).max(1);
            for dir in 0..2 {
                let (from, to) = if dir == 0 {
                    (a.pos(), b.pos())
                } else {
                    (b.pos(), a.pos())
                };
                for k in 0..n {
                    // Stagger departures around the clock, offset per route
                    // and direction so corridors don't pulse in sync.
                    let phase = ((ri * 7919 + dir * 104_729) % 997) as f64 / 997.0;
                    let depart = day * ((k as f64 + phase) / n as f64);
                    legs.push(Leg {
                        id,
                        route: GreatCircle::new(from, to),
                        depart_s: depart,
                        duration_s: duration,
                    });
                    id += 1;
                }
            }
        }
        Self { legs }
    }

    /// Total flight legs over the day.
    pub fn num_legs(&self) -> usize {
        self.legs.len()
    }

    /// All aircraft in the air at time `t_s` (seconds into the day;
    /// wrapped modulo 24 h so the schedule repeats).
    pub fn aircraft_at(&self, t_s: f64) -> Vec<Aircraft> {
        let mut out = Vec::new();
        self.aircraft_into(t_s, false, &mut out);
        out
    }

    /// Aircraft currently over water (the relay-eligible subset).
    pub fn relays_at(&self, t_s: f64) -> Vec<Aircraft> {
        let mut out = Vec::new();
        self.aircraft_into(t_s, true, &mut out);
        out
    }

    /// Fill `out` (cleared first) with the aircraft airborne at `t_s`, in
    /// leg order — the allocation-free core of
    /// [`FlightSchedule::aircraft_at`] / [`FlightSchedule::relays_at`].
    /// With `over_water_only`, land overflights are filtered out (the
    /// relay-eligible subset).
    // lint: hot-path
    pub fn aircraft_into(&self, t_s: f64, over_water_only: bool, out: &mut Vec<Aircraft>) {
        let day = 86_400.0;
        let t = t_s.rem_euclid(day);
        out.clear();
        for leg in &self.legs {
            // A leg departing late yesterday may still be airborne.
            for offset in [0.0, -day] {
                let elapsed = t - (leg.depart_s + offset);
                if elapsed >= 0.0 && elapsed <= leg.duration_s {
                    let frac = elapsed / leg.duration_s;
                    let pos = leg.route.point_at(frac);
                    let over_water = !is_land(pos);
                    if over_water || !over_water_only {
                        out.push(Aircraft {
                            id: leg.id,
                            pos,
                            over_water,
                        });
                    }
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_nonempty_and_deterministic() {
        let s = FlightSchedule::new(1.0);
        assert!(s.num_legs() > 400, "got {}", s.num_legs());
        let a = s.aircraft_at(43_200.0);
        let b = s.aircraft_at(43_200.0);
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty());
    }

    #[test]
    fn density_scales_traffic() {
        let lo = FlightSchedule::new(0.5);
        let hi = FlightSchedule::new(2.0);
        assert!(hi.num_legs() > lo.num_legs());
    }

    #[test]
    fn aircraft_positions_move() {
        let s = FlightSchedule::new(1.0);
        let t0 = s.aircraft_at(30_000.0);
        let t1 = s.aircraft_at(30_900.0);
        // Find a common aircraft and check it moved ~225 km in 15 min.
        let mut checked = false;
        for a in &t0 {
            if let Some(b) = t1.iter().find(|b| b.id == a.id) {
                let d = great_circle_distance_m(a.pos, b.pos);
                assert!(d > 150_000.0 && d < 300_000.0, "moved {d} m");
                checked = true;
                break;
            }
        }
        assert!(checked, "no aircraft airborne across both snapshots");
    }

    #[test]
    fn north_atlantic_much_denser_than_south() {
        // Count over-water aircraft in the two basins across the day —
        // this asymmetry produces the paper's Fig. 3.
        let s = FlightSchedule::new(1.0);
        let mut north = 0usize;
        let mut south = 0usize;
        for hour in 0..24 {
            for a in s.relays_at(hour as f64 * 3600.0) {
                let (lat, lon) = (a.pos.lat_deg(), a.pos.lon_deg());
                if (-70.0..=-10.0).contains(&lon) {
                    if (35.0..=65.0).contains(&lat) {
                        north += 1;
                    } else if (-45.0..=-5.0).contains(&lat) {
                        south += 1;
                    }
                }
            }
        }
        assert!(
            north > 8 * south.max(1),
            "North Atlantic ({north}) must dwarf South Atlantic ({south})"
        );
        assert!(north > 200, "North Atlantic should be busy: {north}");
        assert!(south > 0, "South Atlantic is sparse but not empty");
    }

    #[test]
    fn relays_are_over_water_only() {
        let s = FlightSchedule::new(1.0);
        for a in s.relays_at(50_000.0) {
            assert!(a.over_water);
            assert!(!crate::landmask::is_land(a.pos));
        }
    }

    #[test]
    fn time_wraps_across_midnight() {
        let s = FlightSchedule::new(1.0);
        let a = s.aircraft_at(100.0);
        let b = s.aircraft_at(100.0 + 86_400.0);
        assert_eq!(a.len(), b.len(), "schedule must repeat daily");
    }

    #[test]
    fn airborne_count_reasonable() {
        // A few hundred long-haul aircraft airborne at once at baseline
        // density (the over-water oceanic fleet, not all world traffic).
        let s = FlightSchedule::new(1.0);
        let n = s.aircraft_at(40_000.0).len();
        assert!(n > 80 && n < 2_000, "got {n}");
    }
}
