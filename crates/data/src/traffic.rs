//! The traffic matrix: seeded sampling of far-apart city pairs.

use crate::cities::City;
use leo_geo::great_circle_distance_m;
use leo_util::Rng64;

/// A source/destination pair, as indices into the city list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CityPair {
    /// Index of the source city.
    pub src: u32,
    /// Index of the destination city.
    pub dst: u32,
}

/// Sample `n_pairs` distinct unordered city pairs, uniformly at random
/// among pairs separated by more than `min_distance_m` along the geodesic
/// (the paper uses 2,000 km: closer pairs are better served terrestrially).
///
/// Deterministic in `seed`. Pairs are canonicalized `src < dst` and
/// deduplicated; if fewer than `n_pairs` qualifying pairs exist, all of
/// them are returned.
pub fn sample_city_pairs(
    cities: &[City],
    n_pairs: usize,
    min_distance_m: f64,
    seed: u64,
) -> Vec<CityPair> {
    let n = cities.len();
    // lint: allow(panic-reachable) dataset contract: traffic pairs need at least two cities
    assert!(n >= 2, "need at least two cities");
    // Stream note: moved from `rand::StdRng` to the in-tree xoshiro256++
    // (see `leo_util::rng`); pair sets for a given seed differ from
    // pre-refactor runs, and the new streams are pinned in
    // `tests/determinism.rs`.
    let mut rng = Rng64::seed_from_u64(seed ^ 0x7AFF1C);
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(n_pairs);
    // Rejection sampling with a deterministic cap to avoid spinning when
    // the qualifying-pair population is small.
    let max_attempts = n_pairs.saturating_mul(200).max(100_000);
    let mut attempts = 0usize;
    while out.len() < n_pairs && attempts < max_attempts {
        attempts += 1;
        let a = rng.random_range(0..n as u32);
        let b = rng.random_range(0..n as u32);
        if a == b {
            continue;
        }
        let (src, dst) = if a < b { (a, b) } else { (b, a) };
        if seen.contains(&(src, dst)) {
            continue;
        }
        let d = great_circle_distance_m(cities[src as usize].pos, cities[dst as usize].pos);
        if d <= min_distance_m {
            continue;
        }
        seen.insert((src, dst));
        out.push(CityPair { src, dst });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cities::load_cities;

    #[test]
    fn pairs_respect_min_distance() {
        let cities = load_cities(300, 1);
        let pairs = sample_city_pairs(&cities, 500, 2_000_000.0, 9);
        assert_eq!(pairs.len(), 500);
        for p in &pairs {
            let d = great_circle_distance_m(cities[p.src as usize].pos, cities[p.dst as usize].pos);
            assert!(d > 2_000_000.0, "pair too close: {d}");
        }
    }

    #[test]
    fn pairs_distinct_and_canonical() {
        let cities = load_cities(300, 1);
        let pairs = sample_city_pairs(&cities, 1000, 2_000_000.0, 9);
        let set: std::collections::HashSet<_> = pairs.iter().collect();
        assert_eq!(set.len(), pairs.len());
        for p in &pairs {
            assert!(p.src < p.dst);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let cities = load_cities(300, 1);
        let a = sample_city_pairs(&cities, 200, 2_000_000.0, 5);
        let b = sample_city_pairs(&cities, 200, 2_000_000.0, 5);
        assert_eq!(a, b);
        let c = sample_city_pairs(&cities, 200, 2_000_000.0, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn small_population_returns_all_qualifying() {
        let cities = load_cities(5, 1);
        // Ask for more pairs than exist (max C(5,2)=10).
        let pairs = sample_city_pairs(&cities, 50, 1.0, 3);
        assert!(pairs.len() <= 10);
        assert!(!pairs.is_empty());
    }

    #[test]
    fn huge_min_distance_yields_nothing_close() {
        let cities = load_cities(50, 1);
        // Half the Earth's circumference: almost nothing qualifies.
        let pairs = sample_city_pairs(&cities, 100, 19_000_000.0, 3);
        for p in &pairs {
            let d = great_circle_distance_m(cities[p.src as usize].pos, cities[p.dst as usize].pos);
            assert!(d > 19_000_000.0);
        }
    }
}
