//! # leo-data — datasets for the ISL study
//!
//! Self-contained replacements for the paper's external data sources
//! (DESIGN.md §1 lists the substitutions):
//!
//! * [`cities`] — the "1,000 most populous cities" traffic endpoints: a
//!   curated embedded list of real major cities extended with a
//!   deterministic synthetic tail.
//! * [`landmask`] — a coarse continental land/water mask (the
//!   `global-land-mask` stand-in) used to keep grid relays on land and
//!   aircraft relays over water.
//! * [`airports`] + [`flights`] — a synthetic global air-traffic
//!   generator (the FlightAware stand-in) whose corridor densities
//!   reproduce the asymmetry the paper's Fig. 3 hinges on: the North
//!   Atlantic is busy, the South Atlantic is nearly empty.
//! * [`traffic`] — the seeded 5,000-city-pair traffic matrix with the
//!   2,000 km minimum geodesic separation.

pub mod airports;
pub mod cities;
pub mod flights;
pub mod landmask;
pub mod traffic;

pub use cities::{city_by_name, load_cities, City};
pub use flights::{Aircraft, FlightSchedule};
pub use landmask::is_land;
pub use traffic::{sample_city_pairs, CityPair};
