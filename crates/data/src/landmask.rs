//! Coarse global land/water mask.
//!
//! Stand-in for the `global-land-mask` package the paper uses to keep
//! aircraft relays over water. Continents and major islands are encoded as
//! coarse polygons (tens of vertices each); [`is_land`] additionally
//! dilates the test by ±0.7° so that coastal cities always classify as
//! land. The mask's job in the experiments is binary and forgiving: keep
//! grid relays off the open ocean, and admit only mid-ocean aircraft as
//! relays — a few tens of km of coastal fuzz changes nothing.

use leo_geo::GeoPoint;

/// A polygon in (lat, lon) degrees. None of the polygons crosses the
/// antimeridian (shapes that would are truncated at ±180°).
type Poly = &'static [(f64, f64)];

#[rustfmt::skip]
const NORTH_AMERICA: Poly = &[
    (71.0,-168.0),(71.0,-140.0),(69.0,-110.0),(73.0,-85.0),(60.0,-64.0),(52.0,-55.0),
    (45.0,-60.0),(44.0,-66.0),(40.0,-74.0),(35.0,-76.0),(30.0,-81.0),(25.0,-80.0),
    (29.0,-84.0),(30.0,-90.0),(28.0,-96.0),(22.0,-97.0),(21.0,-87.0),(15.0,-83.0),
    (8.0,-77.0),(7.0,-80.0),(15.0,-93.0),(19.0,-105.0),(23.0,-110.0),(28.0,-114.0),
    (32.0,-117.0),(38.0,-123.0),(46.0,-124.0),(55.0,-132.0),(59.0,-140.0),(55.0,-163.0),
    (65.0,-168.0),
];

#[rustfmt::skip]
const SOUTH_AMERICA: Poly = &[
    (12.0,-72.0),(10.0,-62.0),(5.0,-52.0),(-2.0,-44.0),(-5.0,-35.0),(-8.0,-34.0),
    (-15.0,-39.0),(-23.0,-41.0),(-25.0,-48.0),(-34.0,-53.0),(-39.0,-62.0),(-47.0,-66.0),
    (-54.0,-68.0),(-53.0,-71.0),(-46.0,-74.0),(-37.0,-73.0),(-30.0,-71.0),(-18.0,-70.0),
    (-14.0,-76.0),(-6.0,-81.0),(-1.0,-80.0),(2.0,-78.0),(7.0,-77.0),(9.0,-76.0),(11.0,-74.0),
];

#[rustfmt::skip]
const AFRICA: Poly = &[
    (35.0,-6.0),(37.0,10.0),(33.0,13.0),(30.0,19.0),(31.0,25.0),(31.0,32.0),(30.0,32.5),
    (27.0,34.0),(22.0,37.0),(15.0,40.0),(12.0,43.0),(11.0,51.0),(2.0,46.0),(-4.0,40.0),
    (-10.0,40.0),(-15.0,41.0),(-20.0,35.0),(-26.0,33.5),(-30.0,31.5),(-34.0,26.0),(-35.0,20.0),
    (-34.0,18.0),(-29.0,16.0),(-22.0,14.0),(-15.0,12.0),(-8.0,13.0),(-1.0,9.0),
    (4.0,9.0),(6.0,4.0),(6.0,-2.0),(4.0,-8.0),(7.0,-13.0),(12.0,-17.0),(15.0,-17.5),
    (21.0,-17.0),(28.0,-13.0),(33.0,-9.0),
];

/// Europe + Asia as one blob. Inland seas (Black, Caspian) count as land;
/// the Mediterranean's northern bays are partly swallowed — harmless for
/// this mask's purpose.
#[rustfmt::skip]
const EURASIA: Poly = &[
    (36.0,-9.0),(43.0,-9.0),(46.0,-2.0),(49.0,-5.0),(51.0,1.0),(53.0,5.0),(55.0,8.0),
    (58.0,7.0),(60.0,5.0),(65.0,12.0),(71.0,25.0),(69.0,35.0),(67.0,45.0),(69.0,60.0),
    (73.0,80.0),(76.0,105.0),(72.0,130.0),(69.0,160.0),(66.0,179.5),(62.0,179.5),
    (58.0,160.0),(51.0,156.5),(60.0,152.0),(57.0,140.0),(52.0,141.0),(46.0,138.0),
    (42.0,131.0),(38.0,126.0),(37.0,124.0),(40.0,121.0),(37.0,118.5),(32.0,121.5),
    (27.0,120.5),(22.0,114.0),(21.0,108.0),(16.0,108.0),(9.0,106.5),(13.0,100.0),
    (6.0,100.5),(1.1,104.3),(3.5,101.0),(9.0,98.0),(15.0,95.0),(22.0,91.0),(20.0,87.0),
    (15.0,80.0),(8.0,77.0),(12.0,74.0),(20.0,71.0),(24.0,66.0),(25.0,60.0),(26.0,57.0),
    (30.0,49.0),(29.0,48.0),(26.0,50.5),(24.0,52.0),(26.0,56.5),(22.0,60.0),(17.0,55.0),
    (12.0,45.0),(13.0,43.0),(17.0,42.0),(21.0,39.0),(28.0,35.0),(30.0,32.5),(31.0,34.0),
    (33.0,35.0),(36.0,36.0),(37.0,31.0),(36.0,28.0),(39.0,26.0),(41.0,26.0),(41.0,29.0),
    (40.0,23.0),(37.0,22.0),(38.0,20.0),(41.0,19.0),(43.0,14.0),(45.0,13.0),(44.0,9.0),
    (43.0,7.0),(42.0,3.0),(39.0,0.0),(37.0,-2.0),(36.0,-6.0),(37.0,-9.0),
];

#[rustfmt::skip]
const AUSTRALIA: Poly = &[
    (-10.7,142.5),(-12.0,143.0),(-16.0,145.5),(-20.0,148.5),(-25.0,153.0),(-28.0,153.5),
    (-33.0,151.5),(-37.5,150.0),(-39.0,146.0),(-38.0,140.0),(-35.0,136.0),(-32.0,132.0),
    (-33.0,124.0),(-35.0,117.5),(-32.0,115.5),(-26.0,113.5),(-22.0,114.0),(-20.0,119.0),
    (-17.0,122.0),(-14.0,126.0),(-12.0,130.5),(-11.0,136.0),(-11.0,142.5),
];

#[rustfmt::skip]
const GREENLAND: Poly = &[
    (60.0,-43.0),(70.0,-22.0),(83.0,-32.0),(82.0,-60.0),(76.0,-70.0),(66.0,-54.0),
];

#[rustfmt::skip]
const JAPAN: Poly = &[
    (30.0,129.5),(32.5,134.0),(33.5,138.0),(34.8,140.5),(39.5,143.0),(42.5,146.5),
    (44.5,146.0),(45.8,142.0),(43.0,139.5),(37.0,135.5),(33.5,130.5),(31.0,128.8),
];

#[rustfmt::skip]
const BRITISH_ISLES: Poly = &[
    (50.0,-11.0),(50.0,1.5),(53.0,2.0),(59.0,-1.0),(59.5,-7.0),(54.0,-11.0),
];

#[rustfmt::skip]
const NEW_ZEALAND: Poly = &[
    (-34.0,172.0),(-37.5,179.0),(-47.0,168.0),(-44.0,166.5),(-40.0,172.0),
];

#[rustfmt::skip]
const MADAGASCAR: Poly = &[
    (-12.0,49.0),(-16.0,50.5),(-25.5,47.0),(-25.0,43.5),(-16.0,43.5),
];

#[rustfmt::skip]
const BORNEO: Poly = &[
    (7.0,117.0),(1.0,119.0),(-4.0,116.0),(-3.0,110.0),(1.0,109.0),(5.0,113.0),
];

#[rustfmt::skip]
const SUMATRA: Poly = &[
    (6.0,95.0),(-6.0,102.0),(-6.0,106.5),(0.0,104.0),(5.0,98.0),
];

#[rustfmt::skip]
const JAVA: Poly = &[
    (-5.8,105.0),(-7.0,114.5),(-9.0,115.0),(-8.0,105.5),
];

#[rustfmt::skip]
const SULAWESI: Poly = &[
    (-6.0,118.5),(2.0,120.0),(2.0,125.0),(-6.0,124.0),
];

#[rustfmt::skip]
const NEW_GUINEA: Poly = &[
    (-1.0,131.0),(-9.0,141.0),(-10.5,150.0),(-8.0,148.0),(-4.0,144.0),(-1.0,137.0),(-2.0,130.0),
];

#[rustfmt::skip]
const PHILIPPINES: Poly = &[
    (5.0,119.0),(7.0,122.0),(6.0,126.5),(10.0,127.0),(14.0,124.5),(19.0,122.5),
    (18.5,120.0),(13.0,119.5),(9.0,117.0),(5.0,117.0),
];

#[rustfmt::skip]
const CUBA: Poly = &[
    (23.4,-84.9),(23.3,-80.0),(20.2,-74.0),(19.8,-77.5),(22.0,-84.5),
];

/// Axis-aligned boxes for small islands: (lat_min, lat_max, lon_min,
/// lon_max).
#[rustfmt::skip]
const BOXES: &[(f64, f64, f64, f64)] = &[
    (17.5, 20.0, -74.5, -68.2),   // Hispaniola
    (17.6, 18.6, -78.5, -76.0),   // Jamaica
    (17.8, 18.6, -67.4, -65.5),   // Puerto Rico
    (18.8, 22.3, -160.0, -154.7), // Hawaii
    (63.2, 66.6, -24.6, -13.4),   // Iceland
    (21.8, 25.4, 120.0, 122.1),   // Taiwan
    (5.8, 9.9, 79.6, 82.0),       // Sri Lanka
    (-43.8, -40.5, 144.5, 148.5), // Tasmania
    (-19.2, -16.0, 177.0, 180.0), // Fiji
    (-20.6, -19.9, 57.2, 57.9),   // Mauritius
    (-4.9, -4.4, 55.2, 55.8),     // Seychelles (Mahé)
    (3.8, 4.4, 73.3, 73.7),       // Maldives (Malé)
    (0.8, 2.2, 102.8, 104.4),     // Singapore / Johor tip
];

const POLYGONS: &[Poly] = &[
    NORTH_AMERICA,
    SOUTH_AMERICA,
    AFRICA,
    EURASIA,
    AUSTRALIA,
    GREENLAND,
    JAPAN,
    BRITISH_ISLES,
    NEW_ZEALAND,
    MADAGASCAR,
    BORNEO,
    SUMATRA,
    JAVA,
    SULAWESI,
    NEW_GUINEA,
    PHILIPPINES,
    CUBA,
];

/// Even-odd ray casting in (lat, lon) degrees.
fn point_in_poly(lat: f64, lon: f64, poly: Poly) -> bool {
    let mut inside = false;
    let n = poly.len();
    let mut j = n - 1;
    for i in 0..n {
        let (lat_i, lon_i) = poly[i];
        let (lat_j, lon_j) = poly[j];
        if ((lat_i > lat) != (lat_j > lat))
            && lon < (lon_j - lon_i) * (lat - lat_i) / (lat_j - lat_i) + lon_i
        {
            inside = !inside;
        }
        j = i;
    }
    inside
}

/// Per-polygon bounding boxes `(lat_min, lat_max, lon_min, lon_max)`,
/// computed once from the vertex tables.
///
/// The precheck in [`raw_is_land`] is **exact**, not approximate: for a
/// point outside a polygon's bbox, even-odd ray casting provably returns
/// `false`. Latitude outside the range means no edge straddles the
/// point's parallel, so the crossing parity stays even; longitude east of
/// the range means every straddling edge's intersection (a convex
/// combination of two vertex longitudes) lies west of the point; and
/// longitude west of the range means *every* straddling edge crosses the
/// eastward ray — an even count for any closed ring.
fn poly_bboxes() -> &'static [(f64, f64, f64, f64)] {
    static CACHE: std::sync::OnceLock<Vec<(f64, f64, f64, f64)>> = std::sync::OnceLock::new();
    CACHE.get_or_init(|| {
        POLYGONS
            .iter()
            .map(|poly| {
                let mut bb = (
                    f64::INFINITY,
                    f64::NEG_INFINITY,
                    f64::INFINITY,
                    f64::NEG_INFINITY,
                );
                for &(lat, lon) in *poly {
                    bb.0 = bb.0.min(lat);
                    bb.1 = bb.1.max(lat);
                    bb.2 = bb.2.min(lon);
                    bb.3 = bb.3.max(lon);
                }
                bb
            })
            .collect()
    })
}

// lint: hot-path
fn raw_is_land(lat: f64, lon: f64) -> bool {
    // Antarctica: everything south of 60°S counts as land.
    if lat <= -60.0 {
        return true;
    }
    for &(lat_lo, lat_hi, lon_lo, lon_hi) in BOXES {
        if lat >= lat_lo && lat <= lat_hi && lon >= lon_lo && lon <= lon_hi {
            return true;
        }
    }
    POLYGONS.iter().zip(poly_bboxes()).any(|(p, bb)| {
        lat >= bb.0 && lat <= bb.1 && lon >= bb.2 && lon <= bb.3 && point_in_poly(lat, lon, p)
    })
}

/// True iff the point is on (or within ~0.7° of) land.
///
/// The dilation keeps coastal cities on land; mid-ocean points — the only
/// places where the aircraft-relay logic needs "water" — are unaffected.
pub fn is_land(p: GeoPoint) -> bool {
    let (lat, lon) = (p.lat_deg(), p.lon_deg());
    const D: f64 = 0.7;
    raw_is_land(lat, lon)
        || raw_is_land(lat + D, lon)
        || raw_is_land(lat - D, lon)
        || raw_is_land(lat, lon + D)
        || raw_is_land(lat, lon - D)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::from_degrees(lat, lon)
    }

    #[test]
    fn continental_interiors_are_land() {
        for (lat, lon) in [
            (40.0, -100.0), // Kansas
            (-10.0, -55.0), // Brazil
            (10.0, 20.0),   // Chad
            (55.0, 40.0),   // Russia
            (30.0, 110.0),  // China
            (-25.0, 135.0), // Australia
            (75.0, -40.0),  // Greenland
        ] {
            assert!(is_land(p(lat, lon)), "({lat},{lon}) should be land");
        }
    }

    #[test]
    fn open_oceans_are_water() {
        for (lat, lon) in [
            (35.0, -40.0),   // North Atlantic
            (-25.0, -20.0),  // South Atlantic
            (0.0, -30.0),    // Equatorial Atlantic
            (30.0, -150.0),  // North Pacific
            (-30.0, -120.0), // South Pacific
            (-10.0, 80.0),   // Indian Ocean
            (-45.0, 100.0),  // Southern Indian Ocean
            (55.0, -35.0),   // between Greenland and Scotland... open sea
        ] {
            assert!(!is_land(p(lat, lon)), "({lat},{lon}) should be water");
        }
    }

    #[test]
    fn experiment_critical_cities_on_land() {
        for (name, lat, lon) in [
            ("Maceió", -9.67, -35.74),
            ("Durban", -29.86, 31.02),
            ("Delhi", 28.61, 77.21),
            ("Sydney", -33.87, 151.21),
            ("Brisbane", -27.47, 153.03),
            ("Tokyo", 35.68, 139.69),
            ("Paris", 48.86, 2.35),
            ("London", 51.51, -0.13),
            ("New York", 40.71, -74.01),
            ("Singapore", 1.35, 103.82),
            ("Auckland", -36.85, 174.76),
            ("Honolulu", 21.31, -157.86),
        ] {
            assert!(is_land(p(lat, lon)), "{name} must be on land");
        }
    }

    #[test]
    fn most_real_cities_on_land() {
        let cities = crate::cities::load_cities(250, 1);
        let off: Vec<_> = cities.iter().filter(|c| !is_land(c.pos)).collect();
        assert!(
            off.len() * 20 <= cities.len(),
            "more than 5% of real cities off land: {:?}",
            off.iter().map(|c| c.name.as_str()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn antarctica_is_land() {
        assert!(is_land(p(-75.0, 0.0)));
        assert!(is_land(p(-89.0, 120.0)));
    }

    #[test]
    fn north_pole_is_water() {
        assert!(!is_land(p(89.0, 0.0)));
    }
}
