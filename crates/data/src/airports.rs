//! Major international airports used as endpoints of synthetic flights.

use leo_geo::GeoPoint;

/// An airport: IATA code and position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Airport {
    /// IATA code, e.g. `"JFK"`.
    pub code: &'static str,
    /// Latitude, degrees.
    pub lat: f64,
    /// Longitude, degrees.
    pub lon: f64,
}

impl Airport {
    /// Position as a [`GeoPoint`].
    pub fn pos(&self) -> GeoPoint {
        GeoPoint::from_degrees(self.lat, self.lon)
    }
}

/// The hub airports anchoring the synthetic air-traffic corridors.
#[rustfmt::skip]
pub const AIRPORTS: &[Airport] = &[
    Airport { code: "JFK", lat: 40.64, lon: -73.78 },
    Airport { code: "BOS", lat: 42.36, lon: -71.01 },
    Airport { code: "YYZ", lat: 43.68, lon: -79.63 },
    Airport { code: "ORD", lat: 41.97, lon: -87.91 },
    Airport { code: "IAD", lat: 38.95, lon: -77.46 },
    Airport { code: "ATL", lat: 33.64, lon: -84.43 },
    Airport { code: "MIA", lat: 25.80, lon: -80.29 },
    Airport { code: "LAX", lat: 33.94, lon: -118.41 },
    Airport { code: "SFO", lat: 37.62, lon: -122.38 },
    Airport { code: "SEA", lat: 47.45, lon: -122.31 },
    Airport { code: "YVR", lat: 49.19, lon: -123.18 },
    Airport { code: "DFW", lat: 32.90, lon: -97.04 },
    Airport { code: "IAH", lat: 29.99, lon: -95.34 },
    Airport { code: "LHR", lat: 51.47, lon: -0.45 },
    Airport { code: "CDG", lat: 49.01, lon: 2.55 },
    Airport { code: "FRA", lat: 50.04, lon: 8.56 },
    Airport { code: "AMS", lat: 52.31, lon: 4.76 },
    Airport { code: "MAD", lat: 40.47, lon: -3.57 },
    Airport { code: "LIS", lat: 38.77, lon: -9.13 },
    Airport { code: "DUB", lat: 53.42, lon: -6.27 },
    Airport { code: "ZRH", lat: 47.46, lon: 8.55 },
    Airport { code: "IST", lat: 41.26, lon: 28.74 },
    Airport { code: "DXB", lat: 25.25, lon: 55.36 },
    Airport { code: "DOH", lat: 25.27, lon: 51.61 },
    Airport { code: "BOM", lat: 19.09, lon: 72.87 },
    Airport { code: "DEL", lat: 28.57, lon: 77.10 },
    Airport { code: "SIN", lat: 1.36, lon: 103.99 },
    Airport { code: "KUL", lat: 2.75, lon: 101.71 },
    Airport { code: "BKK", lat: 13.69, lon: 100.75 },
    Airport { code: "HKG", lat: 22.31, lon: 113.91 },
    Airport { code: "PVG", lat: 31.14, lon: 121.81 },
    Airport { code: "PEK", lat: 40.08, lon: 116.58 },
    Airport { code: "NRT", lat: 35.77, lon: 140.39 },
    Airport { code: "HND", lat: 35.55, lon: 139.78 },
    Airport { code: "ICN", lat: 37.46, lon: 126.44 },
    Airport { code: "TPE", lat: 25.08, lon: 121.23 },
    Airport { code: "MNL", lat: 14.51, lon: 121.02 },
    Airport { code: "CGK", lat: -6.13, lon: 106.66 },
    Airport { code: "SYD", lat: -33.95, lon: 151.18 },
    Airport { code: "MEL", lat: -37.67, lon: 144.84 },
    Airport { code: "BNE", lat: -27.38, lon: 153.12 },
    Airport { code: "PER", lat: -31.94, lon: 115.97 },
    Airport { code: "AKL", lat: -37.01, lon: 174.79 },
    Airport { code: "HNL", lat: 21.32, lon: -157.92 },
    Airport { code: "GRU", lat: -23.44, lon: -46.47 },
    Airport { code: "GIG", lat: -22.81, lon: -43.25 },
    Airport { code: "EZE", lat: -34.82, lon: -58.54 },
    Airport { code: "SCL", lat: -33.39, lon: -70.79 },
    Airport { code: "BOG", lat: 4.70, lon: -74.15 },
    Airport { code: "LIM", lat: -12.02, lon: -77.11 },
    Airport { code: "MEX", lat: 19.44, lon: -99.07 },
    Airport { code: "PTY", lat: 9.07, lon: -79.38 },
    Airport { code: "JNB", lat: -26.14, lon: 28.25 },
    Airport { code: "CPT", lat: -33.96, lon: 18.60 },
    Airport { code: "NBO", lat: -1.32, lon: 36.93 },
    Airport { code: "ADD", lat: 8.98, lon: 38.80 },
    Airport { code: "LOS", lat: 6.58, lon: 3.32 },
    Airport { code: "ACC", lat: 5.61, lon: -0.17 },
    Airport { code: "DKR", lat: 14.67, lon: -17.07 },
    Airport { code: "CAI", lat: 30.12, lon: 31.41 },
    Airport { code: "CMN", lat: 33.37, lon: -7.59 },
    Airport { code: "KEF", lat: 63.99, lon: -22.61 },
    Airport { code: "ANC", lat: 61.17, lon: -150.00 },
    Airport { code: "SVO", lat: 55.97, lon: 37.41 },
    Airport { code: "MRU", lat: -20.43, lon: 57.68 },
];

/// Look up an airport by IATA code.
pub fn airport(code: &str) -> Option<&'static Airport> {
    AIRPORTS.iter().find(|a| a.code == code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_unique() {
        let mut codes: Vec<_> = AIRPORTS.iter().map(|a| a.code).collect();
        codes.sort_unstable();
        let n = codes.len();
        codes.dedup();
        assert_eq!(n, codes.len());
    }

    #[test]
    fn lookup_works() {
        assert!(airport("JFK").is_some());
        assert!(airport("XXX").is_none());
        let jfk = airport("JFK").unwrap();
        assert!((jfk.pos().lat_deg() - 40.64).abs() < 1e-9);
    }

    #[test]
    fn coordinates_in_range() {
        for a in AIRPORTS {
            assert!((-90.0..=90.0).contains(&a.lat), "{}", a.code);
            assert!((-180.0..=180.0).contains(&a.lon), "{}", a.code);
        }
    }
}
