//! GSO-arc avoidance geometry (paper §7, Fig. 9).
//!
//! Geostationary satellites occupy the equatorial arc at ~35,786 km and use
//! the same Ku/Ka bands sought by LEO operators. Regulators therefore
//! require LEO up/down-links to keep a minimum angular separation from the
//! bore-sight towards the GSO arc as seen from the ground terminal
//! (22° for Starlink; 12°–18° for Kuiper). Near the Equator this carves
//! away a large band of the sky around the arc, leaving only small usable
//! elevation regions — which hits BP connectivity (which must relay through
//! low-latitude GTs for cross-Equatorial traffic) much harder than ISL
//! connectivity.

use leo_geo::{deg_to_rad, Ecef, GeoPoint, GSO_ALTITUDE_M};

/// Number of sample points along the GSO arc used when minimizing the
/// separation angle. 1° spacing keeps the worst-case discretization error
/// far below the 12°–22° thresholds of interest.
const GSO_ARC_SAMPLES: usize = 360;

/// Minimum angular separation (radians) between the direction GT→`sat` and
/// the direction from the GT to any point of the (visible) GSO arc.
///
/// Only GSO points above the GT's horizon are considered — a GSO satellite
/// below the horizon cannot receive interference from the GT's beam.
/// Returns `None` when no part of the GSO arc is visible from `gt` (at
/// extreme latitudes), in which case there is no constraint.
pub fn gso_separation_rad(gt: GeoPoint, sat: &Ecef) -> Option<f64> {
    let g = Ecef::from_geo(gt, 0.0);
    let to_sat = g.to_vector(sat);
    let sat_norm = to_sat.norm();
    if sat_norm == 0.0 {
        return None;
    }
    let mut best: Option<f64> = None;
    for k in 0..GSO_ARC_SAMPLES {
        let lon =
            std::f64::consts::TAU * (k as f64) / (GSO_ARC_SAMPLES as f64) - std::f64::consts::PI;
        let gso = Ecef::from_geo(GeoPoint::new(0.0, lon), GSO_ALTITUDE_M);
        let to_gso = g.to_vector(&gso);
        // Horizon test: elevation of the GSO point must be ≥ 0.
        if g.dot(&to_gso) < 0.0 {
            continue;
        }
        let cosang = (to_sat.dot(&to_gso) / (sat_norm * to_gso.norm())).clamp(-1.0, 1.0);
        let ang = cosang.acos();
        best = Some(match best {
            Some(b) if b <= ang => b,
            _ => ang,
        });
    }
    best
}

/// True iff a GT→satellite link complies with the GSO-arc avoidance rule:
/// separation of at least `min_separation_rad` from every visible point of
/// the arc.
pub fn gso_compliant(gt: GeoPoint, sat: &Ecef, min_separation_rad: f64) -> bool {
    match gso_separation_rad(gt, sat) {
        Some(sep) => sep >= min_separation_rad,
        None => true,
    }
}

/// Fraction of the sky (elevation ≥ `min_elevation_rad`) that remains
/// usable under GSO-arc avoidance, for a GT at latitude `lat_rad`.
///
/// The sky is sampled on an azimuth × elevation grid weighted by solid
/// angle (`cos ε` per elevation ring). This regenerates the data behind
/// Fig. 9: at the Equator only small shaded regions of elevation remain.
pub fn usable_sky_fraction(
    lat_rad: f64,
    min_elevation_rad: f64,
    min_separation_rad: f64,
    sat_altitude_m: f64,
) -> f64 {
    let gt = GeoPoint::new(lat_rad, 0.0);
    let mut usable = 0.0;
    let mut total = 0.0;
    let n_el = 45;
    let n_az = 72;
    for ei in 0..n_el {
        let frac = (ei as f64 + 0.5) / n_el as f64;
        let elev = min_elevation_rad + frac * (std::f64::consts::FRAC_PI_2 - min_elevation_rad);
        let weight = elev.cos();
        for ai in 0..n_az {
            let az = std::f64::consts::TAU * (ai as f64) / (n_az as f64);
            let sat = sky_direction_to_sat(gt, az, elev, sat_altitude_m);
            total += weight;
            if gso_compliant(gt, &sat, min_separation_rad) {
                usable += weight;
            }
        }
    }
    if total == 0.0 {
        0.0
    } else {
        usable / total
    }
}

/// The ECEF position of a satellite at `alt_m` seen from `gt` at the given
/// azimuth (clockwise from North) and elevation.
///
/// Solves the slant-range quadratic for a point at radius `Re + alt` along
/// the line of sight.
pub fn sky_direction_to_sat(gt: GeoPoint, az_rad: f64, elev_rad: f64, alt_m: f64) -> Ecef {
    let g = Ecef::from_geo(gt, 0.0);
    // Local ENU basis at gt.
    let (slat, clat) = gt.lat().sin_cos();
    let (slon, clon) = gt.lon().sin_cos();
    let east = Ecef::new(-slon, clon, 0.0);
    let north = Ecef::new(-slat * clon, -slat * slon, clat);
    let up = Ecef::new(clat * clon, clat * slon, slat);
    let (se, ce) = elev_rad.sin_cos();
    let (sa, ca) = az_rad.sin_cos();
    // Unit line-of-sight in ECEF.
    let d = Ecef::new(
        ce * (sa * east.x + ca * north.x) + se * up.x,
        ce * (sa * east.y + ca * north.y) + se * up.y,
        ce * (sa * east.z + ca * north.z) + se * up.z,
    );
    // |g + t·d| = Re + alt  ⇒  t² + 2t(g·d) + |g|² − r² = 0.
    let r = leo_geo::EARTH_RADIUS_M + alt_m;
    let b = g.dot(&d);
    let c = g.dot(&g) - r * r;
    let t = -b + (b * b - c).max(0.0).sqrt();
    Ecef::new(g.x + t * d.x, g.y + t * d.y, g.z + t * d.z)
}

/// Starlink's planned GSO separation angle (22°), radians.
pub fn starlink_separation_rad() -> f64 {
    deg_to_rad(22.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn satellite_on_gso_arc_has_zero_separation() {
        let gt = GeoPoint::from_degrees(0.0, 0.0);
        let gso_sat = Ecef::from_geo(GeoPoint::from_degrees(0.0, 0.0), GSO_ALTITUDE_M);
        let sep = gso_separation_rad(gt, &gso_sat).unwrap();
        assert!(
            sep < deg_to_rad(1.5),
            "sep = {} deg",
            leo_geo::rad_to_deg(sep)
        );
    }

    #[test]
    fn zenith_at_equator_is_far_from_arc() {
        // From the Equator, straight up points away from the arc by ~81.3°
        // (the GSO elevation at the sub-satellite point is ~90°, so the
        // nearest arc point is overhead... at the same longitude the GSO
        // satellite IS at zenith). A satellite overhead at LEO altitude is
        // therefore aligned with the arc.
        let gt = GeoPoint::from_degrees(0.0, 0.0);
        let leo_overhead = Ecef::from_geo(gt, 550_000.0);
        let sep = gso_separation_rad(gt, &leo_overhead).unwrap();
        assert!(
            sep < deg_to_rad(2.0),
            "overhead LEO aligns with GSO at equator"
        );
    }

    #[test]
    fn mid_latitude_zenith_is_compliant() {
        // From 47°N, the GSO arc sits well south and low; zenith is far away.
        let gt = GeoPoint::from_degrees(47.0, 8.0);
        let leo_overhead = Ecef::from_geo(gt, 550_000.0);
        assert!(gso_compliant(gt, &leo_overhead, starlink_separation_rad()));
    }

    #[test]
    fn equator_loses_more_sky_than_mid_latitudes() {
        let e = deg_to_rad(40.0); // full-deployment Starlink elevation (Fig. 9)
        let sep = starlink_separation_rad();
        let f_eq = usable_sky_fraction(0.0, e, sep, 550_000.0);
        let f_mid = usable_sky_fraction(deg_to_rad(45.0), e, sep, 550_000.0);
        assert!(
            f_eq < f_mid,
            "equator {f_eq} should be more constrained than 45N {f_mid}"
        );
        assert!(
            f_eq < 0.7,
            "equator must lose a sizable sky fraction: {f_eq}"
        );
        // At 45°N the arc still reaches ~38° elevation in the southern sky,
        // so some loss remains — but far less than at the Equator.
        assert!(f_mid > 0.75, "mid latitudes mostly unconstrained: {f_mid}");
        let f_high = usable_sky_fraction(deg_to_rad(65.0), e, sep, 550_000.0);
        assert!(
            f_high > 0.95,
            "high latitudes nearly unconstrained: {f_high}"
        );
    }

    #[test]
    fn sky_direction_produces_requested_elevation() {
        let gt = GeoPoint::from_degrees(10.0, 20.0);
        for az_deg in [0.0, 90.0, 180.0, 270.0] {
            for el_deg in [25.0, 40.0, 60.0, 89.0] {
                let sat =
                    sky_direction_to_sat(gt, deg_to_rad(az_deg), deg_to_rad(el_deg), 550_000.0);
                let e = leo_geo::elevation_angle_rad(gt, &sat);
                assert!(
                    (e - deg_to_rad(el_deg)).abs() < 1e-6,
                    "az {az_deg} el {el_deg}: got {}",
                    leo_geo::rad_to_deg(e)
                );
                let (_, alt) = sat.to_geo();
                assert!((alt - 550_000.0).abs() < 1.0);
            }
        }
    }

    #[test]
    fn high_latitude_unconstrained() {
        // From very high latitude the GSO arc is below the horizon; the
        // separation constraint disappears.
        let gt = GeoPoint::from_degrees(85.0, 0.0);
        let sat = sky_direction_to_sat(gt, 0.0, deg_to_rad(45.0), 550_000.0);
        assert!(gso_compliant(gt, &sat, starlink_separation_rad()));
    }
}
