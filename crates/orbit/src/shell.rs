//! Constellation shell specifications (Walker-delta geometry).

use crate::kepler::OrbitalElements;
use leo_geo::deg_to_rad;

/// Identifier of a satellite within a [`crate::Constellation`]: a dense
/// index assigned shell-by-shell, plane-by-plane.
pub type SatelliteId = u32;

/// A single orbital shell: a set of "parallel" orbital planes sharing one
/// altitude and inclination, with satellites evenly spaced in each plane
/// (a Walker-delta pattern).
#[derive(Debug, Clone, PartialEq)]
pub struct Shell {
    /// Human-readable name, e.g. `"starlink-p1"`.
    pub name: String,
    /// Number of orbital planes, evenly spaced in RAAN over 360°.
    pub num_planes: u32,
    /// Satellites per plane, evenly spaced in argument of latitude.
    pub sats_per_plane: u32,
    /// Altitude above the surface, meters.
    pub altitude_m: f64,
    /// Inclination, degrees.
    pub inclination_deg: f64,
    /// Walker phasing factor `F ∈ [0, num_planes)`: satellites in adjacent
    /// planes are offset in argument of latitude by
    /// `F · 360° / (num_planes · sats_per_plane)`.
    pub phase_factor: u32,
}

impl Shell {
    /// Starlink phase-1 shell per the paper (FCC filing SAT-MOD-20190830):
    /// 72 planes × 22 satellites, 550 km, 53°.
    pub fn starlink_phase1() -> Self {
        Self {
            name: "starlink-p1".into(),
            num_planes: 72,
            sats_per_plane: 22,
            altitude_m: 550_000.0,
            inclination_deg: 53.0,
            phase_factor: 39, // common choice in the Starlink-simulation literature
        }
    }

    /// Kuiper first-deployment shell per the paper: 34 planes × 34
    /// satellites, 630 km, 51.9°.
    pub fn kuiper_phase1() -> Self {
        Self {
            name: "kuiper-p1".into(),
            num_planes: 34,
            sats_per_plane: 34,
            altitude_m: 630_000.0,
            inclination_deg: 51.9,
            phase_factor: 17,
        }
    }

    /// A polar shell used for the cross-shell BP-transition study
    /// (paper §8, Fig. 10): 90° inclination at 560 km. Plane/satellite
    /// counts follow Starlink's planned polar shell order of magnitude.
    pub fn polar_shell() -> Self {
        Self {
            name: "polar".into(),
            num_planes: 36,
            sats_per_plane: 20,
            altitude_m: 560_000.0,
            inclination_deg: 90.0,
            phase_factor: 11,
        }
    }

    /// Total number of satellites in the shell.
    pub fn num_satellites(&self) -> u32 {
        self.num_planes * self.sats_per_plane
    }

    /// Expand the shell into per-satellite orbital elements, ordered
    /// plane-major: index `p * sats_per_plane + s`.
    pub fn elements(&self) -> Vec<OrbitalElements> {
        let total = self.num_satellites();
        let mut out = Vec::with_capacity(total as usize);
        let tau = std::f64::consts::TAU;
        let incl = deg_to_rad(self.inclination_deg);
        for p in 0..self.num_planes {
            let raan = tau * (p as f64) / (self.num_planes as f64);
            // Walker phasing: offset within the plane proportional to the
            // plane index.
            let phase = tau * (self.phase_factor as f64) * (p as f64) / (total as f64);
            for s in 0..self.sats_per_plane {
                let u = tau * (s as f64) / (self.sats_per_plane as f64) + phase;
                out.push(OrbitalElements {
                    altitude_m: self.altitude_m,
                    inclination_rad: incl,
                    raan_rad: raan,
                    arg_latitude_rad: u,
                });
            }
        }
        out
    }

    /// Plane index and in-plane slot of a satellite index within this
    /// shell.
    #[inline]
    pub fn plane_slot(&self, idx_in_shell: u32) -> (u32, u32) {
        (
            idx_in_shell / self.sats_per_plane,
            idx_in_shell % self.sats_per_plane,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starlink_counts_match_paper() {
        let s = Shell::starlink_phase1();
        assert_eq!(s.num_satellites(), 1584);
        assert_eq!(s.elements().len(), 1584);
    }

    #[test]
    fn kuiper_counts_match_paper() {
        let s = Shell::kuiper_phase1();
        assert_eq!(s.num_satellites(), 34 * 34);
    }

    #[test]
    fn raans_evenly_spaced() {
        let s = Shell::starlink_phase1();
        let els = s.elements();
        let spp = s.sats_per_plane as usize;
        let expected = std::f64::consts::TAU / s.num_planes as f64;
        for p in 1..s.num_planes as usize {
            let d = els[p * spp].raan_rad - els[(p - 1) * spp].raan_rad;
            assert!((d - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn in_plane_spacing_even() {
        let s = Shell::starlink_phase1();
        let els = s.elements();
        let expected = std::f64::consts::TAU / s.sats_per_plane as f64;
        for i in 1..s.sats_per_plane as usize {
            let d = els[i].arg_latitude_rad - els[i - 1].arg_latitude_rad;
            assert!((d - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn plane_slot_roundtrip() {
        let s = Shell::starlink_phase1();
        for idx in [0u32, 21, 22, 1000, 1583] {
            let (p, slot) = s.plane_slot(idx);
            assert_eq!(p * s.sats_per_plane + slot, idx);
            assert!(slot < s.sats_per_plane);
            assert!(p < s.num_planes);
        }
    }

    #[test]
    fn all_satellites_at_shell_altitude() {
        let s = Shell::kuiper_phase1();
        for e in s.elements() {
            assert_eq!(e.altitude_m, 630_000.0);
        }
    }
}
