//! Circular-orbit Kepler propagation with optional J2 secular drift.

use leo_geo::{Ecef, EARTH_RADIUS_M};

/// Earth's gravitational parameter μ = GM, m³/s².
pub const EARTH_MU: f64 = 3.986_004_418e14;

/// Earth's second zonal harmonic (oblateness), dimensionless.
pub const EARTH_J2: f64 = 1.082_626_68e-3;

/// Earth's sidereal rotation rate, rad/s.
pub const EARTH_ROTATION_RAD_S: f64 = 7.292_115_0e-5;

/// Orbital period of a circular orbit at altitude `alt_m`, seconds.
///
/// Starlink's 550 km shell has a period of ≈ 95.6 minutes, matching the
/// paper's "orbital period of ~100 minutes".
pub fn orbital_period_s(alt_m: f64) -> f64 {
    let a = EARTH_RADIUS_M + alt_m;
    2.0 * std::f64::consts::PI * (a * a * a / EARTH_MU).sqrt()
}

/// Orbital elements of one satellite on a circular orbit.
///
/// The element set is reduced to what a circular orbit needs: semi-major
/// axis (via altitude), inclination, right ascension of the ascending node
/// (RAAN), and the argument of latitude at epoch (angle from the ascending
/// node along the orbit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrbitalElements {
    /// Altitude above the spherical Earth surface, meters.
    pub altitude_m: f64,
    /// Inclination, radians.
    pub inclination_rad: f64,
    /// RAAN at epoch, radians.
    pub raan_rad: f64,
    /// Argument of latitude at epoch, radians.
    pub arg_latitude_rad: f64,
}

impl OrbitalElements {
    /// Semi-major axis, meters.
    #[inline]
    pub fn semi_major_axis_m(&self) -> f64 {
        EARTH_RADIUS_M + self.altitude_m
    }

    /// Mean motion n = √(μ/a³), rad/s.
    #[inline]
    pub fn mean_motion_rad_s(&self) -> f64 {
        (EARTH_MU / self.semi_major_axis_m().powi(3)).sqrt()
    }

    /// Secular RAAN drift rate due to J2, rad/s (negative for prograde
    /// orbits — nodes regress westward).
    pub fn j2_raan_rate_rad_s(&self) -> f64 {
        let a = self.semi_major_axis_m();
        let n = self.mean_motion_rad_s();
        -1.5 * n * EARTH_J2 * (EARTH_RADIUS_M / a).powi(2) * self.inclination_rad.cos()
    }

    /// Position at simulation time `t_s` (seconds since epoch), in the
    /// Earth-fixed (ECEF) frame.
    ///
    /// The satellite moves on a circle in the orbital plane (ECI), which is
    /// then rotated into ECEF by the Earth rotation angle `ω⊕·t`. If
    /// `apply_j2` is set, the RAAN additionally drifts at the J2 secular
    /// rate. Epoch Greenwich sidereal angle is taken as zero, which is an
    /// arbitrary but consistent phase choice for a synthetic epoch.
    pub fn position_at(&self, t_s: f64, apply_j2: bool) -> Ecef {
        let a = self.semi_major_axis_m();
        let n = self.mean_motion_rad_s();
        let u = self.arg_latitude_rad + n * t_s;
        let raan = if apply_j2 {
            self.raan_rad + self.j2_raan_rate_rad_s() * t_s
        } else {
            self.raan_rad
        };
        // Position in the orbital plane.
        let (su, cu) = u.sin_cos();
        let (si, ci) = self.inclination_rad.sin_cos();
        // ECI: rotate in-plane position by inclination then RAAN.
        let x_eci = cu * raan.cos() - su * ci * raan.sin();
        let y_eci = cu * raan.sin() + su * ci * raan.cos();
        let z_eci = su * si;
        // ECI -> ECEF: rotate by -GMST; GMST(t) = ω⊕·t with zero epoch phase.
        let theta = EARTH_ROTATION_RAD_S * t_s;
        let (st, ct) = theta.sin_cos();
        Ecef::new(
            a * (x_eci * ct + y_eci * st),
            a * (-x_eci * st + y_eci * ct),
            a * z_eci,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_geo::deg_to_rad;

    fn starlink_elem(raan_deg: f64, u_deg: f64) -> OrbitalElements {
        OrbitalElements {
            altitude_m: 550_000.0,
            inclination_rad: deg_to_rad(53.0),
            raan_rad: deg_to_rad(raan_deg),
            arg_latitude_rad: deg_to_rad(u_deg),
        }
    }

    #[test]
    fn starlink_period_about_96_minutes() {
        let p = orbital_period_s(550_000.0) / 60.0;
        assert!((p - 95.6).abs() < 0.5, "got {p} minutes");
    }

    #[test]
    fn altitude_constant_over_time() {
        let e = starlink_elem(10.0, 20.0);
        for t in [0.0, 100.0, 1000.0, 40_000.0, 86_400.0] {
            let pos = e.position_at(t, true);
            assert!(
                (pos.norm() - e.semi_major_axis_m()).abs() < 1e-3,
                "circular orbit must keep constant radius"
            );
        }
    }

    #[test]
    fn latitude_bounded_by_inclination() {
        let e = starlink_elem(0.0, 0.0);
        let mut max_lat: f64 = 0.0;
        let period = orbital_period_s(550_000.0);
        for i in 0..1000 {
            let t = period * (i as f64) / 1000.0;
            let (p, _) = e.position_at(t, false).to_geo();
            max_lat = max_lat.max(p.lat().abs());
        }
        let incl = deg_to_rad(53.0);
        assert!(max_lat <= incl + 1e-9);
        assert!(max_lat > incl - 0.01, "orbit should reach its inclination");
    }

    #[test]
    fn period_returns_to_start_in_eci() {
        let e = starlink_elem(45.0, 80.0);
        let p = orbital_period_s(550_000.0);
        // In ECEF, after one orbital period the Earth has rotated; compare
        // in a non-rotating check by undoing the rotation analytically: the
        // argument of latitude advances exactly 2π.
        let pos0 = e.position_at(0.0, false);
        let shifted = OrbitalElements {
            arg_latitude_rad: e.arg_latitude_rad + 2.0 * std::f64::consts::PI,
            ..e
        };
        // Same in-plane position at t=0.
        let pos1 = shifted.position_at(0.0, false);
        assert!(pos0.distance(&pos1) < 1e-3);
        // And position_at(p) equals the rotated-by-Earth version of t=0.
        let after = e.position_at(p, false);
        assert!((after.norm() - pos0.norm()).abs() < 1e-3);
    }

    #[test]
    fn j2_regresses_nodes_for_prograde() {
        let e = starlink_elem(0.0, 0.0);
        assert!(e.j2_raan_rate_rad_s() < 0.0);
        // Magnitude for Starlink-like orbit is ~5 degrees/day.
        let deg_per_day = e.j2_raan_rate_rad_s().abs() * 86_400.0 * 180.0 / std::f64::consts::PI;
        assert!(deg_per_day > 3.0 && deg_per_day < 7.0, "got {deg_per_day}");
    }

    #[test]
    fn polar_orbit_has_no_j2_drift() {
        let e = OrbitalElements {
            inclination_rad: deg_to_rad(90.0),
            ..starlink_elem(0.0, 0.0)
        };
        assert!(e.j2_raan_rate_rad_s().abs() < 1e-12);
    }

    #[test]
    fn ground_track_moves_west_between_orbits() {
        // Because Earth rotates east under the orbit, successive equator
        // crossings shift west.
        let e = starlink_elem(0.0, 0.0);
        let p = orbital_period_s(550_000.0);
        let (g0, _) = e.position_at(0.0, false).to_geo();
        let (g1, _) = e.position_at(p, false).to_geo();
        let dlon = leo_geo::normalize_lon(g1.lon() - g0.lon());
        assert!(dlon < 0.0, "ground track must shift west, got {dlon}");
    }
}
