//! # leo-orbit — orbital mechanics for LEO mega-constellations
//!
//! This crate builds and propagates the satellite constellations studied in
//! the paper. The planned Starlink and Kuiper shells are described in FCC
//! filings only by their shell parameters (planes, satellites per plane,
//! altitude, inclination), so — as in the simulation literature — they are
//! modelled as **Walker-delta constellations on circular orbits**, with an
//! optional J2 secular drift term. There are no real TLEs for these planned
//! shells, so SGP4 propagation of published elements is not applicable;
//! circular Kepler + J2 is the faithful model.
//!
//! The main entry points are:
//!
//! * [`Shell`] — a constellation shell specification (e.g.
//!   [`Shell::starlink_phase1`]), which expands into per-satellite orbital
//!   elements.
//! * [`Constellation`] — one or more shells plus the minimum-elevation
//!   constraint; [`Constellation::positions_at`] propagates every satellite
//!   to a given simulation time, returning ECEF positions and sub-satellite
//!   points.
//! * [`plus_grid_isls`] — the +Grid inter-satellite link topology (2
//!   intra-plane + 2 inter-plane neighbours per satellite).
//! * [`isl_line_of_sight`] — whether a satellite-to-satellite laser link
//!   stays above the weather-affected lower atmosphere.
//! * [`gso`] — GSO-arc avoidance geometry (paper §7, Fig. 9).
//!
//! ```
//! use leo_orbit::{Constellation, Shell};
//!
//! let c = Constellation::single_shell(Shell::starlink_phase1(), 25.0);
//! assert_eq!(c.num_satellites(), 72 * 22);
//! let snap = c.positions_at(0.0);
//! assert_eq!(snap.len(), 1584);
//! ```

mod constellation;
pub mod gso;
mod isl;
mod kepler;
pub mod passes;
mod shell;
pub mod visibility;

pub use constellation::{CellTransition, Constellation, ConstellationSnapshot};
pub use isl::{plus_grid_isls, IslLink};
pub use kepler::{orbital_period_s, OrbitalElements, EARTH_J2, EARTH_MU, EARTH_ROTATION_RAD_S};
pub use passes::{find_passes, pass_stats, Pass, PassStats};
pub use shell::{SatelliteId, Shell};
pub use visibility::{
    isl_line_of_sight, subpoint_index, visible_satellites, VisibilityParams, SUBPOINT_BIN_DEG,
};
