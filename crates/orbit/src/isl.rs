//! The +Grid inter-satellite link topology.
//!
//! Per the paper (§2) and the constellation-design literature it cites,
//! each satellite forms 4 laser ISLs: two to its neighbours in the same
//! orbital plane, and two to the satellites holding the same slot in the
//! adjacent planes. These links connect satellites that travel with small
//! relative velocity and can stay up continuously, so the topology is
//! static (as a set of satellite-id pairs) even though link lengths vary.

use crate::shell::Shell;

/// An undirected ISL between two satellites (ids are constellation-wide;
/// `a < b` canonical order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IslLink {
    /// Lower satellite id.
    pub a: u32,
    /// Higher satellite id.
    pub b: u32,
}

impl IslLink {
    fn new(x: u32, y: u32) -> Self {
        if x < y {
            Self { a: x, b: y }
        } else {
            Self { a: y, b: x }
        }
    }
}

/// Build the +Grid ISL set for one shell whose satellites start at
/// constellation-wide id `offset`.
///
/// Each satellite links to the next satellite in its plane (wrapping) and
/// to the same slot in the next plane (wrapping), which produces exactly
/// `2 · planes · sats_per_plane` undirected links — i.e. 4 ISLs per
/// satellite. Cross-shell ISLs are deliberately absent (paper §8): only
/// intra-shell lasers are considered feasible.
pub fn plus_grid_isls(shell: &Shell, offset: u32) -> Vec<IslLink> {
    let p = shell.num_planes;
    let s = shell.sats_per_plane;
    let mut links = Vec::with_capacity((2 * p * s) as usize);
    for plane in 0..p {
        for slot in 0..s {
            let id = offset + plane * s + slot;
            // Intra-plane: next satellite in the same plane.
            let next_in_plane = offset + plane * s + (slot + 1) % s;
            links.push(IslLink::new(id, next_in_plane));
            // Inter-plane: same slot in the next plane.
            let next_plane = offset + ((plane + 1) % p) * s + slot;
            links.push(IslLink::new(id, next_plane));
        }
    }
    links
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn each_satellite_has_four_isls() {
        let shell = Shell::starlink_phase1();
        let links = plus_grid_isls(&shell, 0);
        assert_eq!(links.len(), 2 * 1584);
        let mut degree: HashMap<u32, u32> = HashMap::new();
        for l in &links {
            *degree.entry(l.a).or_default() += 1;
            *degree.entry(l.b).or_default() += 1;
        }
        assert_eq!(degree.len(), 1584);
        assert!(degree.values().all(|&d| d == 4));
    }

    #[test]
    fn no_duplicate_links() {
        let shell = Shell::kuiper_phase1();
        let links = plus_grid_isls(&shell, 0);
        let set: std::collections::HashSet<_> = links.iter().collect();
        assert_eq!(set.len(), links.len());
    }

    #[test]
    fn no_self_links() {
        let shell = Shell::starlink_phase1();
        for l in plus_grid_isls(&shell, 0) {
            assert_ne!(l.a, l.b);
        }
    }

    #[test]
    fn offset_shifts_ids() {
        let shell = Shell::polar_shell();
        let links = plus_grid_isls(&shell, 1000);
        let n = shell.num_satellites();
        for l in &links {
            assert!(l.a >= 1000 && l.b < 1000 + n);
        }
    }

    #[test]
    fn grid_is_connected() {
        // BFS over the +Grid must reach every satellite.
        let shell = Shell::starlink_phase1();
        let n = shell.num_satellites() as usize;
        let links = plus_grid_isls(&shell, 0);
        let mut adj = vec![Vec::new(); n];
        for l in &links {
            adj[l.a as usize].push(l.b as usize);
            adj[l.b as usize].push(l.a as usize);
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        assert_eq!(count, n);
    }
}
