//! Visibility computations: GT↔satellite and satellite↔satellite.

use crate::constellation::ConstellationSnapshot;
use leo_geo::{
    coverage_radius_m, visible_at_elevation, Ecef, GeoPoint, SphereGrid, EARTH_RADIUS_M,
};

/// Parameters controlling GT–satellite visibility.
#[derive(Debug, Clone, Copy)]
pub struct VisibilityParams {
    /// Minimum elevation angle for a usable GT link, radians.
    pub min_elevation_rad: f64,
    /// Satellite altitude (used only to size the spatial-index query
    /// window), meters. For multi-shell constellations pass the highest
    /// shell's altitude.
    pub max_altitude_m: f64,
}

impl VisibilityParams {
    /// Conservative surface-radius bound for the spatial-index query: no
    /// satellite whose sub-point lies farther than this can be visible.
    pub fn query_radius_m(&self) -> f64 {
        // 2% slack over the analytic coverage radius guards against float
        // edge effects; the exact elevation test rejects false positives.
        coverage_radius_m(self.max_altitude_m, self.min_elevation_rad) * 1.02
    }
}

/// Sub-point spatial-index bin size, degrees.
///
/// 3° keeps buckets small for 1,000–4,000-satellite shells while the
/// ~8–10° query windows still touch only a handful of bins. Shared by
/// [`subpoint_index`] and the incremental [`leo_geo::CellGrid`] kept by
/// [`ConstellationSnapshot::advance_to`]-based sweeps, so both indexes
/// have identical cell geometry.
pub const SUBPOINT_BIN_DEG: f64 = 3.0;

/// Build a spatial index over a snapshot's sub-satellite points.
pub fn subpoint_index(snapshot: &ConstellationSnapshot) -> SphereGrid {
    let mut grid = SphereGrid::new(SUBPOINT_BIN_DEG);
    for (i, sp) in snapshot.subpoints().enumerate() {
        grid.insert(i as u32, sp);
    }
    grid
}

/// Ids of all satellites visible from ground point `gt` (elevation ≥
/// the minimum), using a pre-built sub-point index.
///
/// `scratch` is a reusable buffer for the index query to avoid per-call
/// allocation in hot snapshot-construction loops.
pub fn visible_satellites(
    gt: GeoPoint,
    snapshot: &ConstellationSnapshot,
    index: &SphereGrid,
    params: &VisibilityParams,
    scratch: &mut Vec<u32>,
    out: &mut Vec<u32>,
) {
    out.clear();
    index.query_radius(gt, params.query_radius_m(), scratch);
    for &id in scratch.iter() {
        if visible_at_elevation(
            gt,
            &snapshot.position(id as usize),
            params.min_elevation_rad,
        ) {
            out.push(id);
        }
    }
}

/// True iff the straight line between two satellites stays above
/// `min_clearance_m` over the Earth's surface.
///
/// Laser ISLs must not graze the weather-affected lower atmosphere; the
/// paper uses ~80 km as the safe lower bound. The closest approach of the
/// segment to the Earth's centre is computed analytically.
// lint: hot-path
pub fn isl_line_of_sight(a: &Ecef, b: &Ecef, min_clearance_m: f64) -> bool {
    let ab = a.to_vector(b);
    let len2 = ab.dot(&ab);
    if len2 == 0.0 {
        return a.norm() >= EARTH_RADIUS_M + min_clearance_m;
    }
    // Parameter of the closest point to the origin on the segment.
    let origin_to_a = Ecef::new(-a.x, -a.y, -a.z);
    let t = (origin_to_a.dot(&ab) / len2).clamp(0.0, 1.0);
    let closest = Ecef::new(a.x + t * ab.x, a.y + t * ab.y, a.z + t * ab.z);
    let limit = EARTH_RADIUS_M + min_clearance_m;
    // Square-compare fast path: `closest.norm()` is the correctly-rounded
    // (hence monotonic) sqrt of exactly this sum of squares, so outside a
    // ±1e-12 relative band around `limit²` the comparison is already
    // decided — the band dwarfs the sub-ulp rounding of the sqrt and of
    // `limit²` by three orders of magnitude. Only near-grazing geometry
    // (clearance within millimetres of the threshold) pays the sqrt.
    let d2 = closest.x * closest.x + closest.y * closest.y + closest.z * closest.z;
    let lim2 = limit * limit;
    if d2 >= lim2 * (1.0 + 1e-12) {
        return true;
    }
    if d2 <= lim2 * (1.0 - 1e-12) {
        return false;
    }
    closest.norm() >= limit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Constellation, Shell};
    use leo_geo::deg_to_rad;

    #[test]
    fn some_satellite_visible_from_mid_latitude() {
        let c = Constellation::starlink();
        let snap = c.positions_at(0.0);
        let index = subpoint_index(&snap);
        let params = VisibilityParams {
            min_elevation_rad: c.min_elevation_rad(),
            max_altitude_m: 550_000.0,
        };
        let gt = GeoPoint::from_degrees(40.7, -74.0); // New York
        let (mut scratch, mut out) = (Vec::new(), Vec::new());
        visible_satellites(gt, &snap, &index, &params, &mut scratch, &mut out);
        assert!(
            !out.is_empty(),
            "NYC must see at least one Starlink satellite"
        );
        assert!(out.len() < 60, "but not an absurd number: {}", out.len());
    }

    #[test]
    fn nothing_visible_from_pole_for_53_degree_shell() {
        // A 53°-inclined shell never flies over the poles; with a 25°
        // minimum elevation the pole sees nothing.
        let c = Constellation::starlink();
        let snap = c.positions_at(0.0);
        let index = subpoint_index(&snap);
        let params = VisibilityParams {
            min_elevation_rad: c.min_elevation_rad(),
            max_altitude_m: 550_000.0,
        };
        let pole = GeoPoint::from_degrees(89.9, 0.0);
        let (mut scratch, mut out) = (Vec::new(), Vec::new());
        visible_satellites(pole, &snap, &index, &params, &mut scratch, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn visible_set_matches_brute_force() {
        let c = Constellation::kuiper();
        let snap = c.positions_at(7200.0);
        let index = subpoint_index(&snap);
        let params = VisibilityParams {
            min_elevation_rad: c.min_elevation_rad(),
            max_altitude_m: 630_000.0,
        };
        let gt = GeoPoint::from_degrees(-23.55, -46.63); // São Paulo
        let (mut scratch, mut out) = (Vec::new(), Vec::new());
        visible_satellites(gt, &snap, &index, &params, &mut scratch, &mut out);
        out.sort_unstable();
        let mut brute: Vec<u32> = (0..snap.len() as u32)
            .filter(|&i| {
                leo_geo::visible_at_elevation(
                    gt,
                    &snap.position(i as usize),
                    params.min_elevation_rad,
                )
            })
            .collect();
        brute.sort_unstable();
        assert_eq!(out, brute);
    }

    #[test]
    fn adjacent_isl_has_line_of_sight() {
        let c = Constellation::starlink();
        let snap = c.positions_at(0.0);
        let links = crate::plus_grid_isls(&Shell::starlink_phase1(), 0);
        for l in links.iter().take(200) {
            assert!(isl_line_of_sight(
                &snap.position(l.a as usize),
                &snap.position(l.b as usize),
                80_000.0,
            ));
        }
    }

    #[test]
    fn antipodal_satellites_blocked_by_earth() {
        let a = Ecef::from_geo(GeoPoint::from_degrees(0.0, 0.0), 550_000.0);
        let b = Ecef::from_geo(GeoPoint::from_degrees(0.0, 180.0), 550_000.0);
        assert!(!isl_line_of_sight(&a, &b, 80_000.0));
    }

    #[test]
    fn clearance_threshold_matters() {
        // Two satellites whose chord just grazes 100 km altitude.
        let a = Ecef::from_geo(GeoPoint::from_degrees(0.0, -20.0), 550_000.0);
        let b = Ecef::from_geo(GeoPoint::from_degrees(0.0, 20.0), 550_000.0);
        // Chord midpoint altitude: R' = (Re+h)·cos(20°) − Re ≈ 128 km.
        assert!(isl_line_of_sight(&a, &b, 80_000.0));
        assert!(!isl_line_of_sight(&a, &b, 200_000.0));
    }

    #[test]
    fn query_radius_has_slack() {
        let p = VisibilityParams {
            min_elevation_rad: deg_to_rad(25.0),
            max_altitude_m: 550_000.0,
        };
        let exact = coverage_radius_m(550_000.0, deg_to_rad(25.0));
        assert!(p.query_radius_m() > exact);
    }
}
