//! Pass prediction: contact windows between a ground point and the
//! satellites of a constellation.
//!
//! The paper's §2 observes that "each satellite is reachable from a GT
//! for a few minutes, after which the GT must connect to a different
//! satellite" — the root cause of BP's latency churn. This module makes
//! that statement measurable: it scans a time range and extracts, per
//! satellite, the intervals during which it stays above the minimum
//! elevation.

use crate::constellation::Constellation;
use crate::shell::SatelliteId;
use leo_geo::{visible_at_elevation, GeoPoint};

/// One contact window between a GT and a satellite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pass {
    /// The satellite.
    pub satellite: SatelliteId,
    /// Window start (first sampled instant above the elevation mask), s.
    pub rise_s: f64,
    /// Window end (last sampled instant above the mask), s.
    pub set_s: f64,
}

impl Pass {
    /// Duration of the pass, seconds.
    pub fn duration_s(&self) -> f64 {
        self.set_s - self.rise_s
    }
}

/// Find all passes of all satellites over `gt` in `[t_start, t_end)`,
/// sampling visibility every `step_s` seconds.
///
/// Resolution: rise/set times are quantized to `step_s` (10–30 s is
/// plenty for multi-minute LEO passes). Passes clipped by the scan
/// boundaries are reported with the boundary as rise/set.
pub fn find_passes(
    constellation: &Constellation,
    gt: GeoPoint,
    t_start: f64,
    t_end: f64,
    step_s: f64,
) -> Vec<Pass> {
    // lint: allow(panic-reachable) caller contract: a non-positive step or inverted window would loop forever
    assert!(step_s > 0.0 && t_end > t_start);
    let min_elev = constellation.min_elevation_rad();
    let n = constellation.num_satellites();
    // open_since[sat] = rise time of the in-progress pass.
    let mut open_since: Vec<Option<f64>> = vec![None; n];
    let mut passes = Vec::new();
    let steps = ((t_end - t_start) / step_s).ceil() as usize;
    for i in 0..=steps {
        let t = (t_start + i as f64 * step_s).min(t_end);
        let snap = constellation.positions_at(t);
        for (sat, open) in open_since.iter_mut().enumerate() {
            let vis = visible_at_elevation(gt, &snap.position(sat), min_elev);
            match (vis, *open) {
                (true, None) => *open = Some(t),
                (false, Some(rise)) => {
                    passes.push(Pass {
                        satellite: sat as SatelliteId,
                        rise_s: rise,
                        set_s: t - step_s,
                    });
                    *open = None;
                }
                _ => {}
            }
        }
        if t >= t_end {
            break;
        }
    }
    // Close passes still open at the scan end.
    for (sat, open) in open_since.iter().enumerate() {
        if let Some(rise) = open {
            passes.push(Pass {
                satellite: sat as SatelliteId,
                rise_s: *rise,
                set_s: t_end,
            });
        }
    }
    passes.sort_by(|a, b| a.rise_s.total_cmp(&b.rise_s));
    passes
}

/// Summary statistics over a set of passes.
#[derive(Debug, Clone, Copy)]
pub struct PassStats {
    /// Number of passes.
    pub count: usize,
    /// Mean duration, seconds.
    pub mean_duration_s: f64,
    /// Longest pass, seconds.
    pub max_duration_s: f64,
}

/// Aggregate pass statistics (interior passes only — windows clipped at
/// the scan boundaries would bias durations down).
pub fn pass_stats(passes: &[Pass], t_start: f64, t_end: f64) -> PassStats {
    let interior: Vec<&Pass> = passes
        .iter()
        .filter(|p| p.rise_s > t_start && p.set_s < t_end)
        .collect();
    let count = interior.len();
    let (sum, max) = interior.iter().fold((0.0f64, 0.0f64), |(s, m), p| {
        (s + p.duration_s(), m.max(p.duration_s()))
    });
    PassStats {
        count,
        mean_duration_s: if count == 0 { 0.0 } else { sum / count as f64 },
        max_duration_s: max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_last_a_few_minutes() {
        // Paper §2: a satellite is reachable "for a few minutes".
        let c = Constellation::starlink();
        let gt = GeoPoint::from_degrees(40.7, -74.0);
        let passes = find_passes(&c, gt, 0.0, 3.0 * 3600.0, 15.0);
        let stats = pass_stats(&passes, 0.0, 3.0 * 3600.0);
        assert!(
            stats.count > 20,
            "NYC sees many Starlink passes: {}",
            stats.count
        );
        assert!(
            stats.mean_duration_s > 60.0 && stats.mean_duration_s < 600.0,
            "mean pass {} s should be a few minutes",
            stats.mean_duration_s
        );
        assert!(stats.max_duration_s < 900.0, "no pass lasts a quarter hour");
    }

    #[test]
    fn windows_are_well_formed_and_disjoint_per_satellite() {
        let c = Constellation::starlink();
        let gt = GeoPoint::from_degrees(-33.87, 151.21);
        let passes = find_passes(&c, gt, 0.0, 7200.0, 20.0);
        let mut last_set: std::collections::HashMap<SatelliteId, f64> = Default::default();
        for p in &passes {
            assert!(p.set_s >= p.rise_s);
            if let Some(prev) = last_set.get(&p.satellite) {
                assert!(p.rise_s > *prev, "satellite passes must not overlap");
            }
            last_set.insert(p.satellite, p.set_s);
        }
    }

    #[test]
    fn polar_gt_sees_nothing_from_inclined_shell() {
        let c = Constellation::starlink();
        let gt = GeoPoint::from_degrees(88.0, 0.0);
        let passes = find_passes(&c, gt, 0.0, 3600.0, 30.0);
        assert!(passes.is_empty());
    }

    #[test]
    fn pass_visible_at_midpoint() {
        let c = Constellation::starlink();
        let gt = GeoPoint::from_degrees(51.5, -0.13);
        let passes = find_passes(&c, gt, 0.0, 3600.0, 15.0);
        let stats = pass_stats(&passes, 0.0, 3600.0);
        assert!(stats.count > 0);
        for p in passes.iter().take(5) {
            let mid = 0.5 * (p.rise_s + p.set_s);
            let snap = c.positions_at(mid);
            assert!(leo_geo::visible_at_elevation(
                gt,
                &snap.position(p.satellite as usize),
                c.min_elevation_rad()
            ));
        }
    }

    #[test]
    fn stats_exclude_clipped_windows() {
        let passes = vec![
            Pass {
                satellite: 0,
                rise_s: 0.0,
                set_s: 100.0,
            }, // clipped at start
            Pass {
                satellite: 1,
                rise_s: 50.0,
                set_s: 150.0,
            }, // interior
            Pass {
                satellite: 2,
                rise_s: 900.0,
                set_s: 1000.0,
            }, // clipped at end
        ];
        let s = pass_stats(&passes, 0.0, 1000.0);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean_duration_s, 100.0);
    }
}
