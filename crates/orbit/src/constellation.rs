//! Multi-shell constellations and their time-indexed snapshots.

use crate::kepler::OrbitalElements;
use crate::shell::{SatelliteId, Shell};
use leo_geo::{deg_to_rad, CellGrid, Ecef, GeoPoint};

/// A constellation: one or more shells plus the operational
/// minimum-elevation constraint for ground-terminal links.
#[derive(Debug, Clone)]
pub struct Constellation {
    shells: Vec<Shell>,
    /// Per-satellite elements, concatenated shell-by-shell.
    elements: Vec<OrbitalElements>,
    /// Per-satellite propagation constants (same order as `elements`).
    prop: Vec<PropConst>,
    /// First satellite id of each shell (same order as `shells`), plus a
    /// final sentinel equal to the total count.
    shell_offsets: Vec<u32>,
    /// Minimum elevation angle for GT–satellite links, radians.
    min_elevation_rad: f64,
    /// Whether propagation applies J2 secular RAAN drift.
    pub apply_j2: bool,
}

/// Per-satellite constants hoisted out of the bulk propagation loops:
/// everything in [`OrbitalElements::position_at`] that does not depend on
/// `t`, computed by the **same expressions** so bulk propagation stays
/// bitwise identical to the scalar path.
#[derive(Debug, Clone, Copy)]
struct PropConst {
    /// Semi-major axis, m.
    a: f64,
    /// Mean motion, rad/s.
    n: f64,
    /// Argument of latitude at epoch, rad.
    u0: f64,
    /// RAAN at epoch, rad (needed when J2 drift applies).
    raan0: f64,
    /// `raan0.sin()` / `raan0.cos()` (valid only without J2 drift).
    sin_raan: f64,
    cos_raan: f64,
    /// `inclination.sin_cos()`.
    sin_inc: f64,
    cos_inc: f64,
    /// J2 secular RAAN rate, rad/s.
    j2_rate: f64,
}

impl PropConst {
    fn new(e: &OrbitalElements) -> Self {
        let (sin_inc, cos_inc) = e.inclination_rad.sin_cos();
        Self {
            a: e.semi_major_axis_m(),
            n: e.mean_motion_rad_s(),
            u0: e.arg_latitude_rad,
            raan0: e.raan_rad,
            sin_raan: e.raan_rad.sin(),
            cos_raan: e.raan_rad.cos(),
            sin_inc,
            cos_inc,
            j2_rate: e.j2_raan_rate_rad_s(),
        }
    }

    /// [`OrbitalElements::position_at`] with the per-satellite constants
    /// and the Earth-rotation trig `(st, ct) = (ω⊕·t).sin_cos()` factored
    /// out. Operation-for-operation identical to the scalar version.
    #[inline]
    fn position_at(&self, t_s: f64, apply_j2: bool, st: f64, ct: f64) -> Ecef {
        let u = self.u0 + self.n * t_s;
        let (su, cu) = u.sin_cos();
        let (sin_raan, cos_raan) = if apply_j2 {
            let raan = self.raan0 + self.j2_rate * t_s;
            (raan.sin(), raan.cos())
        } else {
            (self.sin_raan, self.cos_raan)
        };
        let x_eci = cu * cos_raan - su * self.cos_inc * sin_raan;
        let y_eci = cu * sin_raan + su * self.cos_inc * cos_raan;
        let z_eci = su * self.sin_inc;
        Ecef::new(
            self.a * (x_eci * ct + y_eci * st),
            self.a * (-x_eci * st + y_eci * ct),
            self.a * z_eci,
        )
    }
}

/// All satellite positions at one instant, in struct-of-arrays layout.
///
/// ECEF components live in three parallel `f64` arrays indexed by
/// [`SatelliteId`], so batched kernels (visibility sweeps, per-axis math)
/// stream contiguous memory instead of hopping across an array of
/// structs. Use [`ConstellationSnapshot::position`] /
/// [`ConstellationSnapshot::subpoint`] for scalar access; sub-points are
/// computed on demand from the stored ECEF components (a deterministic
/// function, so repeated calls are bitwise identical).
///
/// A snapshot can be *advanced in place* to a later instant with
/// [`ConstellationSnapshot::advance`] / [`advance_to`], which also keeps an
/// id-sorted [`CellGrid`] current and reports which satellites crossed a
/// cell boundary — the primitive the TimeSweep engine builds on.
/// Propagation is closed-form (circular orbits), so advancing recomputes
/// each position analytically at the target time: there is no integration
/// drift, and advancing to `t` is bitwise identical to building a fresh
/// snapshot at `t`.
///
/// [`advance_to`]: ConstellationSnapshot::advance_to
#[derive(Debug, Clone, Default)]
pub struct ConstellationSnapshot {
    /// Simulation time of this snapshot, seconds since epoch.
    pub t_s: f64,
    /// ECEF X components, meters, indexed by [`SatelliteId`].
    x: Vec<f64>,
    /// ECEF Y components, meters.
    y: Vec<f64>,
    /// ECEF Z components, meters.
    z: Vec<f64>,
}

/// One satellite crossing between spatial-index cells during an
/// [`ConstellationSnapshot::advance_to`] step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellTransition {
    /// The satellite that moved.
    pub sat: SatelliteId,
    /// Cell it left.
    pub from: u32,
    /// Cell it entered.
    pub to: u32,
}

impl ConstellationSnapshot {
    /// Number of satellites in the snapshot.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True if the snapshot holds no satellites.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// ECEF position of satellite `i`.
    #[inline]
    pub fn position(&self, i: usize) -> Ecef {
        Ecef::new(self.x[i], self.y[i], self.z[i])
    }

    /// Sub-satellite (ground-track) point of satellite `i`.
    ///
    /// Computed on demand from the stored ECEF components via
    /// [`Ecef::to_geo`] — the same deterministic expressions every
    /// producer of this snapshot used, so the result is bitwise identical
    /// no matter how the snapshot reached its current time.
    #[inline]
    pub fn subpoint(&self, i: usize) -> GeoPoint {
        let (g, _) = self.position(i).to_geo();
        g
    }

    /// The parallel ECEF component arrays `(x, y, z)`, meters.
    #[inline]
    pub fn xyz(&self) -> (&[f64], &[f64], &[f64]) {
        (&self.x, &self.y, &self.z)
    }

    /// Iterator over all ECEF positions in satellite-id order.
    pub fn positions(&self) -> impl Iterator<Item = Ecef> + '_ {
        (0..self.len()).map(|i| self.position(i))
    }

    /// Iterator over all sub-points in satellite-id order.
    pub fn subpoints(&self) -> impl Iterator<Item = GeoPoint> + '_ {
        (0..self.len()).map(|i| self.subpoint(i))
    }

    /// Build the id-sorted cell index of this snapshot's sub-points, for
    /// incremental maintenance across [`ConstellationSnapshot::advance_to`]
    /// steps.
    pub fn cell_grid(&self, bin_deg: f64) -> CellGrid {
        let mut grid = CellGrid::new(bin_deg);
        for i in 0..self.len() {
            let p = self.subpoint(i);
            let cell = grid.cell_of(&p);
            grid.insert(i as u32, cell);
        }
        grid
    }

    /// Re-propagate every satellite **in place** to absolute time `t_s`,
    /// keeping `grid` (built by [`ConstellationSnapshot::cell_grid`])
    /// current and recording every satellite that crossed a cell boundary
    /// into `transitions` (cleared first).
    ///
    /// Allocation-free in steady state: positions are overwritten in the
    /// existing arrays and cell moves use sorted insert/remove, so after
    /// this call the grid is element-for-element identical to one freshly
    /// built from the new sub-points.
    ///
    /// Cell membership is decided by [`CellGrid::contains_quick`] — an
    /// exact conservative test on the raw ECEF components — so the ~97%
    /// of satellites that stay inside their current 3° cell per step skip
    /// the `asin`/`atan2` sub-point conversion entirely. Satellites near a
    /// boundary fall back to the exact [`Ecef::to_geo`] → `cell_of` path,
    /// keeping the grid bitwise identical to a fresh build.
    // lint: hot-path
    pub fn advance_to(
        &mut self,
        constellation: &Constellation,
        t_s: f64,
        grid: &mut CellGrid,
        transitions: &mut Vec<CellTransition>,
    ) {
        transitions.clear();
        debug_assert_eq!(self.len(), constellation.num_satellites());
        let theta = crate::kepler::EARTH_ROTATION_RAD_S * t_s;
        let (st, ct) = theta.sin_cos();
        for (i, pc) in constellation.prop.iter().enumerate() {
            let p = pc.position_at(t_s, constellation.apply_j2, st, ct);
            let from = grid.cell_of_id(i as u32);
            // Same expression as `Ecef::norm`, so the fallback path below
            // sees exactly the radius `to_geo` would.
            let r = (p.x * p.x + p.y * p.y + p.z * p.z).sqrt();
            let to = if grid.contains_quick(from, p.x, p.y, p.z, r) {
                from
            } else {
                let (g, _) = p.to_geo();
                grid.cell_of(&g)
            };
            if from != to {
                grid.relocate(i as u32, from, to);
                transitions.push(CellTransition {
                    sat: i as SatelliteId,
                    from,
                    to,
                });
            }
            self.x[i] = p.x;
            self.y[i] = p.y;
            self.z[i] = p.z;
        }
        self.t_s = t_s;
    }

    /// Advance the snapshot by `dt_s` seconds (see
    /// [`ConstellationSnapshot::advance_to`]).
    ///
    /// Note for uniform sweeps: repeated `advance(dt)` accumulates
    /// `t += dt` floating-point rounding; drivers that need instants
    /// bitwise equal to an externally computed time list should call
    /// `advance_to` with the exact target times instead.
    pub fn advance(
        &mut self,
        constellation: &Constellation,
        dt_s: f64,
        grid: &mut CellGrid,
        transitions: &mut Vec<CellTransition>,
    ) {
        self.advance_to(constellation, self.t_s + dt_s, grid, transitions);
    }
}

impl Constellation {
    /// Build a constellation from shells and a minimum elevation (degrees).
    pub fn new(shells: Vec<Shell>, min_elevation_deg: f64) -> Self {
        let mut elements = Vec::new();
        let mut shell_offsets = Vec::with_capacity(shells.len() + 1);
        for s in &shells {
            shell_offsets.push(elements.len() as u32);
            elements.extend(s.elements());
        }
        shell_offsets.push(elements.len() as u32);
        let prop = elements.iter().map(PropConst::new).collect();
        Self {
            shells,
            elements,
            prop,
            shell_offsets,
            min_elevation_rad: deg_to_rad(min_elevation_deg),
            apply_j2: false,
        }
    }

    /// Convenience constructor for a single shell.
    pub fn single_shell(shell: Shell, min_elevation_deg: f64) -> Self {
        Self::new(vec![shell], min_elevation_deg)
    }

    /// The paper's Starlink configuration: phase-1 shell, e = 25°.
    pub fn starlink() -> Self {
        Self::single_shell(Shell::starlink_phase1(), 25.0)
    }

    /// The paper's Kuiper configuration: first shell, e = 30°.
    pub fn kuiper() -> Self {
        Self::single_shell(Shell::kuiper_phase1(), 30.0)
    }

    /// Total number of satellites.
    pub fn num_satellites(&self) -> usize {
        self.elements.len()
    }

    /// The shells making up this constellation.
    pub fn shells(&self) -> &[Shell] {
        &self.shells
    }

    /// Minimum GT-link elevation, radians.
    pub fn min_elevation_rad(&self) -> f64 {
        self.min_elevation_rad
    }

    /// Per-satellite orbital elements (indexed by [`SatelliteId`]).
    pub fn elements(&self) -> &[OrbitalElements] {
        &self.elements
    }

    /// Shell index that satellite `id` belongs to, and its index within
    /// that shell.
    pub fn shell_of(&self, id: SatelliteId) -> (usize, u32) {
        debug_assert!((id as usize) < self.elements.len());
        // shell_offsets is sorted; linear scan is fine for ≤ a few shells.
        for (i, w) in self.shell_offsets.windows(2).enumerate() {
            if id >= w[0] && id < w[1] {
                return (i, id - w[0]);
            }
        }
        // lint: allow(panic-reachable) shell_offsets partitions the id space, so the loop always returns for in-range ids; the debug_assert above catches the rest
        unreachable!("satellite id out of range")
    }

    /// First satellite id of shell `i`.
    pub fn shell_offset(&self, i: usize) -> u32 {
        self.shell_offsets[i]
    }

    /// Propagate every satellite to time `t_s` (seconds since epoch).
    pub fn positions_at(&self, t_s: f64) -> ConstellationSnapshot {
        let n = self.elements.len();
        let mut snap = ConstellationSnapshot {
            t_s,
            x: Vec::with_capacity(n),
            y: Vec::with_capacity(n),
            z: Vec::with_capacity(n),
        };
        let theta = crate::kepler::EARTH_ROTATION_RAD_S * t_s;
        let (st, ct) = theta.sin_cos();
        for pc in &self.prop {
            let p = pc.position_at(t_s, self.apply_j2, st, ct);
            snap.x.push(p.x);
            snap.y.push(p.y);
            snap.z.push(p.z);
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starlink_has_1584_sats() {
        let c = Constellation::starlink();
        assert_eq!(c.num_satellites(), 1584);
    }

    #[test]
    fn multi_shell_offsets() {
        let c = Constellation::new(vec![Shell::starlink_phase1(), Shell::polar_shell()], 25.0);
        assert_eq!(c.num_satellites(), 1584 + 720);
        assert_eq!(c.shell_of(0), (0, 0));
        assert_eq!(c.shell_of(1583), (0, 1583));
        assert_eq!(c.shell_of(1584), (1, 0));
        assert_eq!(c.shell_of(1584 + 719), (1, 719));
        assert_eq!(c.shell_offset(1), 1584);
    }

    #[test]
    fn snapshot_positions_on_shell_radius() {
        let c = Constellation::starlink();
        let snap = c.positions_at(1234.0);
        let expected = leo_geo::EARTH_RADIUS_M + 550_000.0;
        for p in snap.positions() {
            assert!((p.norm() - expected).abs() < 1e-3);
        }
    }

    #[test]
    fn subpoints_match_positions() {
        let c = Constellation::kuiper();
        let snap = c.positions_at(500.0);
        for (p, sp) in snap.positions().zip(snap.subpoints()) {
            let (g, alt) = p.to_geo();
            assert!(g.central_angle(&sp) < 1e-12);
            assert!((alt - 630_000.0).abs() < 1e-3);
        }
    }

    #[test]
    fn satellites_move_between_snapshots() {
        let c = Constellation::starlink();
        let a = c.positions_at(0.0);
        let b = c.positions_at(60.0);
        // LEO orbital speed ~7.6 km/s; in 60 s a satellite moves ~450 km.
        let moved = a.position(0).distance(&b.position(0));
        assert!(moved > 400_000.0 && moved < 500_000.0, "moved {moved} m");
    }

    #[test]
    fn j2_changes_long_horizon_positions() {
        let mut c = Constellation::starlink();
        let without = c.positions_at(86_400.0);
        c.apply_j2 = true;
        let with = c.positions_at(86_400.0);
        let d = without.position(0).distance(&with.position(0));
        assert!(d > 1_000.0, "J2 drift should be visible after a day: {d} m");
    }

    #[test]
    fn cached_propagation_matches_scalar_position_at_bitwise() {
        let mut c = Constellation::new(vec![Shell::starlink_phase1(), Shell::polar_shell()], 25.0);
        for j2 in [false, true] {
            c.apply_j2 = j2;
            for t in [0.0, 947.3, 86_399.0] {
                let snap = c.positions_at(t);
                for (i, e) in c.elements().iter().enumerate() {
                    let (a, b) = (snap.position(i), e.position_at(t, j2));
                    assert_eq!(a.x.to_bits(), b.x.to_bits(), "sat {i} x at t={t} j2={j2}");
                    assert_eq!(a.y.to_bits(), b.y.to_bits(), "sat {i} y at t={t} j2={j2}");
                    assert_eq!(a.z.to_bits(), b.z.to_bits(), "sat {i} z at t={t} j2={j2}");
                }
            }
        }
    }

    #[test]
    fn advance_to_is_bitwise_identical_to_fresh_propagation() {
        let c = Constellation::starlink();
        let mut snap = c.positions_at(0.0);
        let mut grid = snap.cell_grid(3.0);
        let mut moves = Vec::new();
        for t in [180.0, 947.3, 5_400.0, 86_399.0] {
            snap.advance_to(&c, t, &mut grid, &mut moves);
            let fresh = c.positions_at(t);
            assert_eq!(snap.len(), fresh.len());
            for i in 0..snap.len() {
                let (a, b) = (snap.position(i), fresh.position(i));
                assert_eq!(a.x.to_bits(), b.x.to_bits(), "sat {i} x at t={t}");
                assert_eq!(a.y.to_bits(), b.y.to_bits(), "sat {i} y at t={t}");
                assert_eq!(a.z.to_bits(), b.z.to_bits(), "sat {i} z at t={t}");
                let (sa, sb) = (snap.subpoint(i), fresh.subpoint(i));
                assert_eq!(sa.lat().to_bits(), sb.lat().to_bits());
                assert_eq!(sa.lon().to_bits(), sb.lon().to_bits());
            }
        }
    }

    #[test]
    fn advance_keeps_grid_identical_to_fresh_build() {
        let c = Constellation::kuiper();
        let mut snap = c.positions_at(0.0);
        let mut grid = snap.cell_grid(3.0);
        let mut moves = Vec::new();
        // Large and small steps, including one that moves most satellites
        // across many cells.
        for t in [60.0, 75.5, 900.0, 4_000.0] {
            snap.advance_to(&c, t, &mut grid, &mut moves);
            let fresh = snap.cell_grid(3.0);
            assert_eq!(grid.len(), fresh.len());
            for cell in 0..grid.num_cells() as u32 {
                assert_eq!(grid.ids(cell), fresh.ids(cell), "cell {cell} at t={t}");
            }
        }
    }

    #[test]
    fn advance_reports_cell_transitions() {
        let c = Constellation::starlink();
        let mut snap = c.positions_at(0.0);
        let mut grid = snap.cell_grid(3.0);
        let mut moves = Vec::new();
        // ~7.6 km/s for 120 s ≈ 900 km ≫ a 3° cell, so many sats move.
        snap.advance(&c, 120.0, &mut grid, &mut moves);
        assert!(!moves.is_empty(), "2-minute step must cross cells");
        for m in &moves {
            assert_ne!(m.from, m.to);
            let p = snap.subpoint(m.sat as usize);
            assert_eq!(grid.cell_of(&p), m.to);
        }
        // Zero-length step: nothing moves.
        let t = snap.t_s;
        snap.advance_to(&c, t, &mut grid, &mut moves);
        assert!(moves.is_empty());
    }
}
