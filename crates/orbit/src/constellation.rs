//! Multi-shell constellations and their time-indexed snapshots.

use crate::kepler::OrbitalElements;
use crate::shell::{SatelliteId, Shell};
use leo_geo::{deg_to_rad, Ecef, GeoPoint};

/// A constellation: one or more shells plus the operational
/// minimum-elevation constraint for ground-terminal links.
#[derive(Debug, Clone)]
pub struct Constellation {
    shells: Vec<Shell>,
    /// Per-satellite elements, concatenated shell-by-shell.
    elements: Vec<OrbitalElements>,
    /// First satellite id of each shell (same order as `shells`), plus a
    /// final sentinel equal to the total count.
    shell_offsets: Vec<u32>,
    /// Minimum elevation angle for GT–satellite links, radians.
    min_elevation_rad: f64,
    /// Whether propagation applies J2 secular RAAN drift.
    pub apply_j2: bool,
}

/// All satellite positions at one instant.
#[derive(Debug, Clone)]
pub struct ConstellationSnapshot {
    /// Simulation time of this snapshot, seconds since epoch.
    pub t_s: f64,
    /// ECEF positions, indexed by [`SatelliteId`].
    pub positions: Vec<Ecef>,
    /// Sub-satellite (ground-track) points, same indexing.
    pub subpoints: Vec<GeoPoint>,
}

impl Constellation {
    /// Build a constellation from shells and a minimum elevation (degrees).
    pub fn new(shells: Vec<Shell>, min_elevation_deg: f64) -> Self {
        let mut elements = Vec::new();
        let mut shell_offsets = Vec::with_capacity(shells.len() + 1);
        for s in &shells {
            shell_offsets.push(elements.len() as u32);
            elements.extend(s.elements());
        }
        shell_offsets.push(elements.len() as u32);
        Self {
            shells,
            elements,
            shell_offsets,
            min_elevation_rad: deg_to_rad(min_elevation_deg),
            apply_j2: false,
        }
    }

    /// Convenience constructor for a single shell.
    pub fn single_shell(shell: Shell, min_elevation_deg: f64) -> Self {
        Self::new(vec![shell], min_elevation_deg)
    }

    /// The paper's Starlink configuration: phase-1 shell, e = 25°.
    pub fn starlink() -> Self {
        Self::single_shell(Shell::starlink_phase1(), 25.0)
    }

    /// The paper's Kuiper configuration: first shell, e = 30°.
    pub fn kuiper() -> Self {
        Self::single_shell(Shell::kuiper_phase1(), 30.0)
    }

    /// Total number of satellites.
    pub fn num_satellites(&self) -> usize {
        self.elements.len()
    }

    /// The shells making up this constellation.
    pub fn shells(&self) -> &[Shell] {
        &self.shells
    }

    /// Minimum GT-link elevation, radians.
    pub fn min_elevation_rad(&self) -> f64 {
        self.min_elevation_rad
    }

    /// Per-satellite orbital elements (indexed by [`SatelliteId`]).
    pub fn elements(&self) -> &[OrbitalElements] {
        &self.elements
    }

    /// Shell index that satellite `id` belongs to, and its index within
    /// that shell.
    pub fn shell_of(&self, id: SatelliteId) -> (usize, u32) {
        debug_assert!((id as usize) < self.elements.len());
        // shell_offsets is sorted; linear scan is fine for ≤ a few shells.
        for (i, w) in self.shell_offsets.windows(2).enumerate() {
            if id >= w[0] && id < w[1] {
                return (i, id - w[0]);
            }
        }
        unreachable!("satellite id out of range")
    }

    /// First satellite id of shell `i`.
    pub fn shell_offset(&self, i: usize) -> u32 {
        self.shell_offsets[i]
    }

    /// Propagate every satellite to time `t_s` (seconds since epoch).
    pub fn positions_at(&self, t_s: f64) -> ConstellationSnapshot {
        let mut positions = Vec::with_capacity(self.elements.len());
        let mut subpoints = Vec::with_capacity(self.elements.len());
        for e in &self.elements {
            let p = e.position_at(t_s, self.apply_j2);
            subpoints.push(p.to_geo().0);
            positions.push(p);
        }
        ConstellationSnapshot {
            t_s,
            positions,
            subpoints,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starlink_has_1584_sats() {
        let c = Constellation::starlink();
        assert_eq!(c.num_satellites(), 1584);
    }

    #[test]
    fn multi_shell_offsets() {
        let c = Constellation::new(vec![Shell::starlink_phase1(), Shell::polar_shell()], 25.0);
        assert_eq!(c.num_satellites(), 1584 + 720);
        assert_eq!(c.shell_of(0), (0, 0));
        assert_eq!(c.shell_of(1583), (0, 1583));
        assert_eq!(c.shell_of(1584), (1, 0));
        assert_eq!(c.shell_of(1584 + 719), (1, 719));
        assert_eq!(c.shell_offset(1), 1584);
    }

    #[test]
    fn snapshot_positions_on_shell_radius() {
        let c = Constellation::starlink();
        let snap = c.positions_at(1234.0);
        let expected = leo_geo::EARTH_RADIUS_M + 550_000.0;
        for p in &snap.positions {
            assert!((p.norm() - expected).abs() < 1e-3);
        }
    }

    #[test]
    fn subpoints_match_positions() {
        let c = Constellation::kuiper();
        let snap = c.positions_at(500.0);
        for (p, sp) in snap.positions.iter().zip(&snap.subpoints) {
            let (g, alt) = p.to_geo();
            assert!(g.central_angle(sp) < 1e-12);
            assert!((alt - 630_000.0).abs() < 1e-3);
        }
    }

    #[test]
    fn satellites_move_between_snapshots() {
        let c = Constellation::starlink();
        let a = c.positions_at(0.0);
        let b = c.positions_at(60.0);
        // LEO orbital speed ~7.6 km/s; in 60 s a satellite moves ~450 km.
        let moved = a.positions[0].distance(&b.positions[0]);
        assert!(moved > 400_000.0 && moved < 500_000.0, "moved {moved} m");
    }

    #[test]
    fn j2_changes_long_horizon_positions() {
        let mut c = Constellation::starlink();
        let without = c.positions_at(86_400.0);
        c.apply_j2 = true;
        let with = c.positions_at(86_400.0);
        let d = without.positions[0].distance(&with.positions[0]);
        assert!(d > 1_000.0, "J2 drift should be visible after a day: {d} m");
    }
}
