//! Property-based tests for the orbital substrate.

use leo_geo::{deg_to_rad, EARTH_RADIUS_M};
use leo_orbit::*;
use proptest::prelude::*;

fn arb_elements() -> impl Strategy<Value = OrbitalElements> {
    (
        400_000.0f64..1_500_000.0,
        20.0f64..98.0,
        0.0f64..360.0,
        0.0f64..360.0,
    )
        .prop_map(|(alt, incl, raan, u)| OrbitalElements {
            altitude_m: alt,
            inclination_rad: deg_to_rad(incl),
            raan_rad: deg_to_rad(raan),
            arg_latitude_rad: deg_to_rad(u),
        })
}

proptest! {
    /// Circular orbits keep a constant radius at every time, with or
    /// without J2.
    #[test]
    fn radius_constant(e in arb_elements(), t in 0.0f64..172_800.0, j2 in any::<bool>()) {
        let p = e.position_at(t, j2);
        prop_assert!((p.norm() - e.semi_major_axis_m()).abs() < 1e-3);
    }

    /// Sub-satellite latitude never exceeds the inclination (for
    /// inclinations ≤ 90°).
    #[test]
    fn latitude_bounded(e in arb_elements(), t in 0.0f64..86_400.0) {
        prop_assume!(e.inclination_rad <= std::f64::consts::FRAC_PI_2);
        let (g, _) = e.position_at(t, false).to_geo();
        prop_assert!(g.lat().abs() <= e.inclination_rad + 1e-9);
    }

    /// Orbital speed matches √(μ/a) to first order: positions Δt apart
    /// differ by ≈ v·Δt for small Δt.
    #[test]
    fn speed_matches_vis_viva(e in arb_elements(), t in 0.0f64..86_400.0) {
        let dt = 1.0;
        let p0 = e.position_at(t, false);
        let p1 = e.position_at(t + dt, false);
        let moved = p0.distance(&p1);
        let v_orbit = (EARTH_MU / e.semi_major_axis_m()).sqrt();
        // ECEF motion adds Earth-rotation at most ω⊕·r ≈ 0.5 km/s.
        let slack = EARTH_ROTATION_RAD_S * e.semi_major_axis_m() * dt + 1.0;
        prop_assert!((moved - v_orbit * dt).abs() < slack,
            "moved {moved} vs v {v_orbit}");
    }

    /// Walker shells place every satellite at the shell altitude and
    /// assign unique (plane, slot) pairs.
    #[test]
    fn walker_well_formed(planes in 2u32..20, spp in 2u32..20, incl in 30.0f64..90.0) {
        let shell = Shell {
            name: "t".into(),
            num_planes: planes,
            sats_per_plane: spp,
            altitude_m: 550_000.0,
            inclination_deg: incl,
            phase_factor: 1,
        };
        let els = shell.elements();
        prop_assert_eq!(els.len(), (planes * spp) as usize);
        for idx in 0..(planes * spp) {
            let (p, s) = shell.plane_slot(idx);
            prop_assert!(p < planes && s < spp);
            let e = &els[idx as usize];
            prop_assert!((e.altitude_m - 550_000.0).abs() < 1e-9);
        }
    }

    /// ISL line-of-sight is symmetric and monotone in clearance.
    #[test]
    fn isl_los_symmetric_monotone(
        lat1 in -60.0f64..60.0, lon1 in -180.0f64..180.0,
        lat2 in -60.0f64..60.0, lon2 in -180.0f64..180.0,
        clearance in 0.0f64..400_000.0,
    ) {
        let a = leo_geo::Ecef::from_geo(leo_geo::GeoPoint::from_degrees(lat1, lon1), 550_000.0);
        let b = leo_geo::Ecef::from_geo(leo_geo::GeoPoint::from_degrees(lat2, lon2), 550_000.0);
        prop_assert_eq!(
            isl_line_of_sight(&a, &b, clearance),
            isl_line_of_sight(&b, &a, clearance)
        );
        if isl_line_of_sight(&a, &b, clearance) {
            prop_assert!(isl_line_of_sight(&a, &b, clearance * 0.5));
        }
    }

    /// Every satellite visible from a ground point is within the
    /// analytic coverage radius of it (sub-point distance).
    #[test]
    fn visibility_inside_coverage(lat in -55.0f64..55.0, lon in -180.0f64..180.0, t in 0.0f64..6000.0) {
        let c = Constellation::starlink();
        let snap = c.positions_at(t);
        let index = leo_orbit::visibility::subpoint_index(&snap);
        let params = VisibilityParams {
            min_elevation_rad: c.min_elevation_rad(),
            max_altitude_m: 550_000.0,
        };
        let gt = leo_geo::GeoPoint::from_degrees(lat, lon);
        let (mut scratch, mut vis) = (Vec::new(), Vec::new());
        visible_satellites(gt, &snap, &index, &params, &mut scratch, &mut vis);
        let cov = leo_geo::coverage_radius_m(550_000.0, c.min_elevation_rad());
        for &s in &vis {
            let d = gt.central_angle(&snap.subpoints[s as usize]) * EARTH_RADIUS_M;
            prop_assert!(d <= cov + 1_000.0, "visible sat {s} at {d} m > {cov} m");
        }
    }
}
