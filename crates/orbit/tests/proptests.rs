//! Property-based tests for the orbital substrate (on
//! `leo_util::check`; 256 cases per property, ≥ the proptest originals).

use leo_geo::{deg_to_rad, EARTH_RADIUS_M};
use leo_orbit::*;
use leo_util::check::{check, check_with, Gen};
use leo_util::{check_assert, check_assert_eq, check_assume};

fn arb_elements(g: &mut Gen) -> OrbitalElements {
    OrbitalElements {
        altitude_m: g.f64(400_000.0..1_500_000.0),
        inclination_rad: deg_to_rad(g.f64(20.0..98.0)),
        raan_rad: deg_to_rad(g.f64(0.0..360.0)),
        arg_latitude_rad: deg_to_rad(g.f64(0.0..360.0)),
    }
}

/// Circular orbits keep a constant radius at every time, with or
/// without J2.
#[test]
fn radius_constant() {
    check("radius_constant", |g| {
        let e = arb_elements(g);
        let t = g.f64(0.0..172_800.0);
        let j2 = g.bool();
        let p = e.position_at(t, j2);
        check_assert!((p.norm() - e.semi_major_axis_m()).abs() < 1e-3);
        Ok(())
    });
}

/// Sub-satellite latitude never exceeds the inclination (for
/// inclinations ≤ 90°).
#[test]
fn latitude_bounded() {
    check("latitude_bounded", |g| {
        let e = arb_elements(g);
        let t = g.f64(0.0..86_400.0);
        check_assume!(e.inclination_rad <= std::f64::consts::FRAC_PI_2);
        let (geo, _) = e.position_at(t, false).to_geo();
        check_assert!(geo.lat().abs() <= e.inclination_rad + 1e-9);
        Ok(())
    });
}

/// Orbital speed matches √(μ/a) to first order: positions Δt apart
/// differ by ≈ v·Δt for small Δt.
#[test]
fn speed_matches_vis_viva() {
    check("speed_matches_vis_viva", |g| {
        let e = arb_elements(g);
        let t = g.f64(0.0..86_400.0);
        let dt = 1.0;
        let p0 = e.position_at(t, false);
        let p1 = e.position_at(t + dt, false);
        let moved = p0.distance(&p1);
        let v_orbit = (EARTH_MU / e.semi_major_axis_m()).sqrt();
        // ECEF motion adds Earth-rotation at most ω⊕·r ≈ 0.5 km/s.
        let slack = EARTH_ROTATION_RAD_S * e.semi_major_axis_m() * dt + 1.0;
        check_assert!(
            (moved - v_orbit * dt).abs() < slack,
            "moved {moved} vs v {v_orbit}"
        );
        Ok(())
    });
}

/// Walker shells place every satellite at the shell altitude and
/// assign unique (plane, slot) pairs.
#[test]
fn walker_well_formed() {
    check("walker_well_formed", |g| {
        let planes = g.u32(2..20);
        let spp = g.u32(2..20);
        let incl = g.f64(30.0..90.0);
        let shell = Shell {
            name: "t".into(),
            num_planes: planes,
            sats_per_plane: spp,
            altitude_m: 550_000.0,
            inclination_deg: incl,
            phase_factor: 1,
        };
        let els = shell.elements();
        check_assert_eq!(els.len(), (planes * spp) as usize);
        for idx in 0..(planes * spp) {
            let (p, s) = shell.plane_slot(idx);
            check_assert!(p < planes && s < spp);
            let e = &els[idx as usize];
            check_assert!((e.altitude_m - 550_000.0).abs() < 1e-9);
        }
        Ok(())
    });
}

/// ISL line-of-sight is symmetric and monotone in clearance.
#[test]
fn isl_los_symmetric_monotone() {
    check("isl_los_symmetric_monotone", |g| {
        let a = leo_geo::Ecef::from_geo(
            leo_geo::GeoPoint::from_degrees(g.f64(-60.0..60.0), g.f64(-180.0..180.0)),
            550_000.0,
        );
        let b = leo_geo::Ecef::from_geo(
            leo_geo::GeoPoint::from_degrees(g.f64(-60.0..60.0), g.f64(-180.0..180.0)),
            550_000.0,
        );
        let clearance = g.f64(0.0..400_000.0);
        check_assert_eq!(
            isl_line_of_sight(&a, &b, clearance),
            isl_line_of_sight(&b, &a, clearance)
        );
        if isl_line_of_sight(&a, &b, clearance) {
            check_assert!(isl_line_of_sight(&a, &b, clearance * 0.5));
        }
        Ok(())
    });
}

/// Every satellite visible from a ground point is within the
/// analytic coverage radius of it (sub-point distance). The
/// constellation is built once and shared across cases (the original
/// rebuilt it per case; propagation per case is the meaningful part).
#[test]
fn visibility_inside_coverage() {
    let c = Constellation::starlink();
    check_with("visibility_inside_coverage", 256, |g| {
        let lat = g.f64(-55.0..55.0);
        let lon = g.f64(-180.0..180.0);
        let t = g.f64(0.0..6000.0);
        let snap = c.positions_at(t);
        let index = leo_orbit::visibility::subpoint_index(&snap);
        let params = VisibilityParams {
            min_elevation_rad: c.min_elevation_rad(),
            max_altitude_m: 550_000.0,
        };
        let gt = leo_geo::GeoPoint::from_degrees(lat, lon);
        let (mut scratch, mut vis) = (Vec::new(), Vec::new());
        visible_satellites(gt, &snap, &index, &params, &mut scratch, &mut vis);
        let cov = leo_geo::coverage_radius_m(550_000.0, c.min_elevation_rad());
        for &s in &vis {
            let d = gt.central_angle(&snap.subpoint(s as usize)) * EARTH_RADIUS_M;
            check_assert!(d <= cov + 1_000.0, "visible sat {s} at {d} m > {cov} m");
        }
        Ok(())
    });
}
