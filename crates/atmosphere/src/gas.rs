//! Gaseous (oxygen + water vapour) attenuation, P.676 approximate style.

/// Specific attenuation of dry air (oxygen), dB/km, for `f` ≤ 57 GHz.
///
/// The classic P.676 approximate line-shape fit for sea-level pressure and
/// 15 °C. LEO user links sit at 10–30 GHz where this is a fraction of a
/// dB/km.
fn oxygen_specific_db_km(f: f64) -> f64 {
    (7.2e-3 + 6.09 / (f * f + 0.227) + 4.81 / ((f - 57.0).powi(2) + 1.50)) * f * f * 1e-3
}

/// Specific attenuation of water vapour, dB/km, for vapour density `rho`
/// (g/m³), `f` ≤ 350 GHz.
fn water_vapour_specific_db_km(f: f64, rho: f64) -> f64 {
    (0.050
        + 0.0021 * rho
        + 3.6 / ((f - 22.2).powi(2) + 8.5)
        + 10.6 / ((f - 183.3).powi(2) + 9.0)
        + 8.9 / ((f - 325.4).powi(2) + 26.3))
        * f
        * f
        * rho
        * 1e-4
}

/// Total gaseous attenuation (dB) on a slant path at elevation
/// `elevation_rad`, for surface water-vapour density
/// `vapour_density_g_m3` (from the climatology; ~7.5 g/m³ mid-latitude,
/// up to ~25 g/m³ humid tropics).
///
/// Zenith attenuations use equivalent heights of 6 km (oxygen) and
/// ~1.6–2.1 km (vapour, density-dependent), divided by `sin θ` (the
/// cosecant law, accurate for θ ≥ 10° and acceptable at 5°).
pub fn gaseous_attenuation_db(
    frequency_ghz: f64,
    elevation_rad: f64,
    vapour_density_g_m3: f64,
) -> f64 {
    // lint: allow(panic-reachable) ITU model validity-domain check on caller input; out-of-domain values would yield plausible-looking nonsense attenuation
    assert!(
        (1.0..=57.0).contains(&frequency_ghz),
        "gas model valid 1-57 GHz, got {frequency_ghz}"
    );
    // lint: allow(panic-reachable) ITU model validity-domain check on caller input; out-of-domain values would yield plausible-looking nonsense attenuation
    assert!(vapour_density_g_m3 >= 0.0);
    let theta = elevation_rad.max(leo_geo::deg_to_rad(5.0));
    let h_o = 6.0; // km, oxygen equivalent height
                   // Vapour equivalent height grows mildly near the 22 GHz line.
    let f = frequency_ghz;
    let h_w = 1.6 * (1.0 + 3.0 / ((f - 22.2).powi(2) + 5.0));
    let zenith =
        oxygen_specific_db_km(f) * h_o + water_vapour_specific_db_km(f, vapour_density_g_m3) * h_w;
    zenith / theta.sin()
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_geo::deg_to_rad;

    #[test]
    fn ku_band_zenith_is_fraction_of_db() {
        let a = gaseous_attenuation_db(12.0, deg_to_rad(90.0), 7.5);
        assert!(a > 0.01 && a < 0.5, "got {a} dB");
    }

    #[test]
    fn water_line_peak_near_22ghz() {
        let a20 = gaseous_attenuation_db(20.0, deg_to_rad(90.0), 7.5);
        let a22 = gaseous_attenuation_db(22.2, deg_to_rad(90.0), 7.5);
        let a26 = gaseous_attenuation_db(26.0, deg_to_rad(90.0), 7.5);
        assert!(a22 > a20 && a22 > a26, "22.2 GHz must be a local peak");
    }

    #[test]
    fn humid_air_attenuates_more() {
        let dry = gaseous_attenuation_db(14.25, deg_to_rad(40.0), 2.0);
        let wet = gaseous_attenuation_db(14.25, deg_to_rad(40.0), 20.0);
        assert!(wet > dry);
    }

    #[test]
    fn cosecant_law() {
        let zenith = gaseous_attenuation_db(14.25, deg_to_rad(90.0), 7.5);
        let slant = gaseous_attenuation_db(14.25, deg_to_rad(30.0), 7.5);
        assert!((slant - zenith / deg_to_rad(30.0).sin()).abs() < 1e-9);
    }

    #[test]
    fn oxygen_only_when_dry() {
        let a = gaseous_attenuation_db(14.25, deg_to_rad(90.0), 0.0);
        assert!(a > 0.0, "oxygen absorbs even with zero vapour");
    }
}
