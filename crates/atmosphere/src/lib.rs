//! # leo-atmo — atmospheric attenuation for slant radio paths
//!
//! A self-contained Rust implementation of the ITU-R recommendation family
//! the paper applies through ITU-Rpy (§6): attenuation of
//! ground↔satellite radio links due to
//!
//! * **rain** — specific attenuation `γ_R = k·R^α` with the P.838-style
//!   frequency-dependent coefficients, slant-path effective length and
//!   exceedance-probability scaling in the style of P.618;
//! * **atmospheric gases** — oxygen and water-vapour absorption in the
//!   style of the P.676 approximate method;
//! * **clouds** — Rayleigh absorption by suspended liquid water with a
//!   double-Debye water permittivity (P.840 style);
//! * **tropospheric scintillation** — the P.618 §2.4 statistical model.
//!
//! The components combine per the P.618 total-attenuation rule
//! `A(p) = A_gas + sqrt((A_rain(p) + A_cloud(p))² + A_scint(p)²)`.
//!
//! Free-space path loss is deliberately **not** modelled, matching the
//! paper: link budgets are assumed to handle geometry; the question is how
//! much *weather* bites on top.
//!
//! ## Climatology substitution
//!
//! The real ITU digital climate maps are replaced by a synthetic
//! climatology ([`Climatology`]) with the structure the experiments need:
//! an ITCZ-peaked rain-rate field with monsoon/tropical hot-spots and dry
//! subtropical belts, plus matching water-vapour and wet-refractivity
//! fields. See DESIGN.md for the substitution rationale.
//!
//! ```
//! use leo_atmo::{AttenuationModel, Climatology, SlantPath};
//! use leo_geo::{deg_to_rad, GeoPoint};
//!
//! let model = AttenuationModel::new(Climatology::synthetic());
//! let path = SlantPath {
//!     site: GeoPoint::from_degrees(28.6, 77.2), // Delhi
//!     elevation_rad: deg_to_rad(40.0),
//!     frequency_ghz: 14.25,
//! };
//! let a_light = model.total_attenuation_db(&path, 1.0);   // exceeded 1% of time
//! let a_heavy = model.total_attenuation_db(&path, 0.01);  // exceeded 0.01%
//! assert!(a_heavy > a_light);
//! ```

mod climatology;
mod cloud;
mod gas;
pub mod linkbudget;
mod model;
mod rain;
mod scintillation;
mod stochastic;

pub use climatology::Climatology;
pub use cloud::{cloud_attenuation_db, liquid_water_specific_coefficient};
pub use gas::gaseous_attenuation_db;
pub use linkbudget::{free_space_path_loss_db, modcod_ladder, LinkBudget, ModCod};
pub use model::{AttenuationModel, SlantPath};
pub use rain::{rain_attenuation_db, rain_coefficients, RainCoefficients};
pub use scintillation::scintillation_db;
pub use stochastic::WeatherProcess;
