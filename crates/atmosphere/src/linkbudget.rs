//! Radio link budgets: from attenuation (dB) to achievable capacity.
//!
//! The paper treats link capacities as constants (20 Gbps GT links) and
//! notes that weather "has to be dealt with by appropriate design for
//! modulation and error correction schemes (MODCOD), and trades off
//! bandwidth for reliability" (§6). This module makes that tradeoff
//! computable: free-space path loss, C/N from an EIRP/G-over-T budget,
//! and a DVB-S2-style MODCOD ladder that converts SNR (after weather
//! attenuation) into spectral efficiency — enabling the
//! weather-adjusted-throughput extension experiment.

use crate::model::{AttenuationModel, SlantPath};

/// Free-space path loss in dB at `frequency_ghz` over `distance_m`.
///
/// `FSPL = 20 log10(d_km) + 20 log10(f_GHz) + 92.45`.
pub fn free_space_path_loss_db(frequency_ghz: f64, distance_m: f64) -> f64 {
    // lint: allow(panic-reachable) physics-domain check on caller input; zero frequency or distance has no defined path loss
    assert!(frequency_ghz > 0.0 && distance_m > 0.0);
    20.0 * (distance_m / 1000.0).log10() + 20.0 * frequency_ghz.log10() + 92.45
}

/// A GT↔satellite radio link budget.
#[derive(Debug, Clone, Copy)]
pub struct LinkBudget {
    /// Effective isotropic radiated power, dBW.
    pub eirp_dbw: f64,
    /// Receive figure of merit G/T, dB/K.
    pub g_over_t_db_k: f64,
    /// Occupied bandwidth, Hz.
    pub bandwidth_hz: f64,
    /// Carrier frequency, GHz.
    pub frequency_ghz: f64,
}

impl LinkBudget {
    /// A Starlink-user-terminal-like Ku downlink budget: enough margin
    /// for ~20 Gbps-class aggregate service in clear sky over 240 MHz
    /// channels.
    pub fn ku_user_terminal() -> Self {
        Self {
            eirp_dbw: 36.0,
            g_over_t_db_k: 9.0,
            bandwidth_hz: 240e6,
            frequency_ghz: 11.7,
        }
    }

    /// Carrier-to-noise ratio (dB) over `distance_m` with `extra_loss_db`
    /// of atmospheric attenuation.
    ///
    /// `C/N = EIRP + G/T − FSPL − A − 10 log10(k·B)` with Boltzmann's
    /// `10 log10 k = −228.6 dBW/K/Hz`.
    pub fn carrier_to_noise_db(&self, distance_m: f64, extra_loss_db: f64) -> f64 {
        self.eirp_dbw + self.g_over_t_db_k
            - free_space_path_loss_db(self.frequency_ghz, distance_m)
            - extra_loss_db
            + 228.6
            - 10.0 * self.bandwidth_hz.log10()
    }

    /// Shannon-bound capacity (bit/s) at the given C/N.
    pub fn shannon_capacity_bps(&self, cn_db: f64) -> f64 {
        self.bandwidth_hz * (1.0 + 10f64.powf(cn_db / 10.0)).log2()
    }

    /// Achievable spectral efficiency (bit/s/Hz) through the DVB-S2
    /// MODCOD ladder at the given C/N — 0.0 means outage.
    pub fn modcod_efficiency(&self, cn_db: f64) -> f64 {
        modcod_ladder()
            .iter()
            .rev()
            .find(|m| cn_db >= m.min_cn_db)
            .map_or(0.0, |m| m.bits_per_hz)
    }

    /// Link capacity (bit/s) after weather: the MODCOD the realized
    /// attenuation still supports, times bandwidth.
    pub fn weathered_capacity_bps(
        &self,
        model: &AttenuationModel,
        path: &SlantPath,
        distance_m: f64,
        p_exceed_percent: f64,
    ) -> f64 {
        let a = model.total_attenuation_db(path, p_exceed_percent);
        let cn = self.carrier_to_noise_db(distance_m, a);
        self.modcod_efficiency(cn) * self.bandwidth_hz
    }
}

/// One rung of the DVB-S2 MODCOD ladder.
#[derive(Debug, Clone, Copy)]
pub struct ModCod {
    /// Human-readable name.
    pub name: &'static str,
    /// Ideal spectral efficiency, bit/s/Hz.
    pub bits_per_hz: f64,
    /// Minimum C/N for quasi-error-free operation, dB.
    pub min_cn_db: f64,
}

/// The DVB-S2 ladder (ETSI EN 302 307 ideal Es/N0 thresholds), sorted by
/// ascending robustness requirement.
pub fn modcod_ladder() -> &'static [ModCod] {
    &[
        ModCod {
            name: "QPSK 1/4",
            bits_per_hz: 0.49,
            min_cn_db: -2.35,
        },
        ModCod {
            name: "QPSK 1/2",
            bits_per_hz: 0.99,
            min_cn_db: 1.00,
        },
        ModCod {
            name: "QPSK 3/4",
            bits_per_hz: 1.49,
            min_cn_db: 4.03,
        },
        ModCod {
            name: "8PSK 3/5",
            bits_per_hz: 1.78,
            min_cn_db: 5.50,
        },
        ModCod {
            name: "8PSK 3/4",
            bits_per_hz: 2.23,
            min_cn_db: 7.91,
        },
        ModCod {
            name: "16APSK 3/4",
            bits_per_hz: 2.97,
            min_cn_db: 10.21,
        },
        ModCod {
            name: "16APSK 8/9",
            bits_per_hz: 3.52,
            min_cn_db: 12.89,
        },
        ModCod {
            name: "32APSK 4/5",
            bits_per_hz: 3.95,
            min_cn_db: 14.28,
        },
        ModCod {
            name: "32APSK 9/10",
            bits_per_hz: 4.45,
            min_cn_db: 16.05,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Climatology;
    use leo_geo::{deg_to_rad, GeoPoint};

    #[test]
    fn fspl_reference_value() {
        // Textbook: 12 GHz over 1,000 km ≈ 174 dB.
        let f = free_space_path_loss_db(12.0, 1_000_000.0);
        assert!((f - 174.0).abs() < 0.5, "got {f}");
    }

    #[test]
    fn fspl_inverse_square() {
        let a = free_space_path_loss_db(12.0, 500_000.0);
        let b = free_space_path_loss_db(12.0, 1_000_000.0);
        assert!((b - a - 6.02).abs() < 0.01, "doubling distance adds ~6 dB");
    }

    #[test]
    fn clear_sky_link_closes_at_high_modcod() {
        let lb = LinkBudget::ku_user_terminal();
        let cn = lb.carrier_to_noise_db(600_000.0, 0.5);
        assert!(cn > 10.0, "clear-sky C/N {cn} dB");
        assert!(lb.modcod_efficiency(cn) >= 2.9);
    }

    #[test]
    fn heavy_rain_degrades_modcod_then_outage() {
        let lb = LinkBudget::ku_user_terminal();
        let clear = lb.modcod_efficiency(lb.carrier_to_noise_db(600_000.0, 0.0));
        let rain = lb.modcod_efficiency(lb.carrier_to_noise_db(600_000.0, 8.0));
        let storm = lb.modcod_efficiency(lb.carrier_to_noise_db(600_000.0, 30.0));
        assert!(clear > rain, "rain must cost efficiency");
        assert!(rain > 0.0, "moderate rain should not be an outage");
        assert_eq!(storm, 0.0, "30 dB fade is an outage");
    }

    #[test]
    fn shannon_bounds_modcod() {
        let lb = LinkBudget::ku_user_terminal();
        for cn in [-2.0, 1.0, 5.0, 10.0, 16.0] {
            let ladder = lb.modcod_efficiency(cn) * lb.bandwidth_hz;
            let shannon = lb.shannon_capacity_bps(cn);
            assert!(
                ladder <= shannon,
                "MODCOD ({ladder}) cannot beat Shannon ({shannon}) at C/N {cn}"
            );
        }
    }

    #[test]
    fn ladder_is_monotone() {
        let l = modcod_ladder();
        for w in l.windows(2) {
            assert!(w[1].bits_per_hz > w[0].bits_per_hz);
            assert!(w[1].min_cn_db > w[0].min_cn_db);
        }
    }

    #[test]
    fn weathered_capacity_tracks_climate() {
        let lb = LinkBudget::ku_user_terminal();
        let model = AttenuationModel::new(Climatology::synthetic());
        let mk = |lat: f64, lon: f64| SlantPath {
            site: GeoPoint::from_degrees(lat, lon),
            elevation_rad: deg_to_rad(40.0),
            frequency_ghz: 11.7,
        };
        let singapore = lb.weathered_capacity_bps(&model, &mk(1.35, 103.8), 700_000.0, 0.1);
        let zurich = lb.weathered_capacity_bps(&model, &mk(47.4, 8.5), 700_000.0, 0.1);
        assert!(
            singapore <= zurich,
            "tropical site capacity ({singapore}) cannot exceed temperate ({zurich}) at the same percentile"
        );
    }
}
