//! Cloud attenuation (P.840 style, Rayleigh absorption by liquid water).

/// Specific attenuation coefficient `K_l` in (dB/km)/(g/m³) for suspended
/// liquid water droplets at temperature `temp_k`, using the Rayleigh
/// approximation with a double-Debye model of the complex permittivity of
/// water.
///
/// Valid below ~200 GHz where cloud droplets are much smaller than the
/// wavelength.
pub fn liquid_water_specific_coefficient(frequency_ghz: f64, temp_k: f64) -> f64 {
    let f = frequency_ghz;
    let theta = 300.0 / temp_k;
    // Double-Debye parameters (P.840 formulation).
    let e0 = 77.66 + 103.3 * (theta - 1.0);
    let e1 = 0.0671 * e0;
    let e2 = 3.52;
    let fp = 20.20 - 146.0 * (theta - 1.0) + 316.0 * (theta - 1.0) * (theta - 1.0); // GHz
    let fs = 39.8 * fp; // GHz
    let e_im = f * (e0 - e1) / (fp * (1.0 + (f / fp).powi(2)))
        + f * (e1 - e2) / (fs * (1.0 + (f / fs).powi(2)));
    let e_re = (e0 - e1) / (1.0 + (f / fp).powi(2)) + (e1 - e2) / (1.0 + (f / fs).powi(2)) + e2;
    let eta = (2.0 + e_re) / e_im;
    0.819 * f / (e_im * (1.0 + eta * eta))
}

/// Cloud attenuation (dB) on a slant path for columnar liquid-water
/// content `columnar_water_kg_m2` (≈ mm of liquid; 0.2–0.5 typical,
/// up to >1 in deep tropical convection), at 0 °C cloud temperature per
/// the P.840 statistical convention.
pub fn cloud_attenuation_db(
    frequency_ghz: f64,
    elevation_rad: f64,
    columnar_water_kg_m2: f64,
) -> f64 {
    // lint: allow(panic-reachable) ITU model validity-domain check on caller input; out-of-domain values would yield plausible-looking nonsense attenuation
    assert!(columnar_water_kg_m2 >= 0.0);
    let theta = elevation_rad.max(leo_geo::deg_to_rad(5.0));
    let kl = liquid_water_specific_coefficient(frequency_ghz, 273.15);
    kl * columnar_water_kg_m2 / theta.sin()
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_geo::deg_to_rad;

    #[test]
    fn coefficient_order_of_magnitude_ku_band() {
        // P.840 reference: K_l ≈ 0.1 (dB/km)/(g/m³) near 12 GHz at 0°C.
        let kl = liquid_water_specific_coefficient(12.0, 273.15);
        assert!(kl > 0.05 && kl < 0.2, "got {kl}");
    }

    #[test]
    fn coefficient_grows_with_frequency() {
        let k10 = liquid_water_specific_coefficient(10.0, 273.15);
        let k30 = liquid_water_specific_coefficient(30.0, 273.15);
        let k50 = liquid_water_specific_coefficient(50.0, 273.15);
        assert!(k10 < k30 && k30 < k50);
    }

    #[test]
    fn ku_band_cloud_is_sub_db_for_typical_clouds() {
        let a = cloud_attenuation_db(14.25, deg_to_rad(40.0), 0.3);
        assert!(a > 0.0 && a < 1.0, "got {a} dB");
    }

    #[test]
    fn deep_convection_noticeable_at_ka() {
        let a = cloud_attenuation_db(30.0, deg_to_rad(25.0), 1.5);
        assert!(a > 1.0, "got {a} dB");
    }

    #[test]
    fn zero_water_zero_attenuation() {
        assert_eq!(cloud_attenuation_db(14.25, deg_to_rad(40.0), 0.0), 0.0);
    }

    #[test]
    fn warmer_water_absorbs_less_at_ku() {
        let cold = liquid_water_specific_coefficient(14.0, 273.15);
        let warm = liquid_water_specific_coefficient(14.0, 293.15);
        assert!(warm < cold);
    }
}
