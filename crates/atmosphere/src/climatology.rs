//! Synthetic global climatology.
//!
//! Stand-in for the ITU digital climate maps (see DESIGN.md §1,
//! substitution 3). The fields are smooth analytic functions of latitude
//! and longitude with the planetary structure that drives the paper's
//! weather results:
//!
//! * an **ITCZ rain belt** peaking a few degrees north of the Equator,
//! * **monsoon / deep-convection hot-spots** (South & Southeast Asia, the
//!   Maritime Continent, Congo, Amazon, Caribbean),
//! * **dry subtropical belts** (Sahara/Arabia, Atacama, Australian
//!   interior, Kalahari),
//! * mid-latitude storm tracks, and dry poles.
//!
//! Water-vapour density, wet refractivity, and columnar cloud water track
//! the same humidity structure.

use leo_geo::GeoPoint;

/// A regional Gaussian modifier on the rain field: centred at
/// `(lat, lon)` degrees, with axis scales in degrees and an additive
/// amplitude in mm/h.
struct Region {
    lat: f64,
    lon: f64,
    s_lat: f64,
    s_lon: f64,
    amp: f64,
}

/// Wet (rainier than the zonal mean) and dry anomaly regions.
const REGIONS: &[Region] = &[
    // Monsoon Asia.
    Region {
        lat: 22.0,
        lon: 80.0,
        s_lat: 9.0,
        s_lon: 16.0,
        amp: 45.0,
    },
    // Bay of Bengal / Indochina.
    Region {
        lat: 15.0,
        lon: 98.0,
        s_lat: 8.0,
        s_lon: 12.0,
        amp: 35.0,
    },
    // Maritime Continent (Indonesia/Malaysia/PNG).
    Region {
        lat: -2.0,
        lon: 115.0,
        s_lat: 10.0,
        s_lon: 25.0,
        amp: 45.0,
    },
    // Congo basin.
    Region {
        lat: 0.0,
        lon: 22.0,
        s_lat: 8.0,
        s_lon: 12.0,
        amp: 35.0,
    },
    // Amazon basin.
    Region {
        lat: -4.0,
        lon: -62.0,
        s_lat: 9.0,
        s_lon: 14.0,
        amp: 35.0,
    },
    // Caribbean / Gulf.
    Region {
        lat: 15.0,
        lon: -75.0,
        s_lat: 8.0,
        s_lon: 14.0,
        amp: 22.0,
    },
    // SE US / Florida convection.
    Region {
        lat: 29.0,
        lon: -84.0,
        s_lat: 6.0,
        s_lon: 10.0,
        amp: 18.0,
    },
    // West Pacific warm pool.
    Region {
        lat: 8.0,
        lon: 150.0,
        s_lat: 10.0,
        s_lon: 25.0,
        amp: 28.0,
    },
    // East Brazil coast.
    Region {
        lat: -8.0,
        lon: -35.0,
        s_lat: 6.0,
        s_lon: 8.0,
        amp: 15.0,
    },
    // Dry: Sahara & Arabia.
    Region {
        lat: 23.0,
        lon: 10.0,
        s_lat: 10.0,
        s_lon: 25.0,
        amp: -28.0,
    },
    Region {
        lat: 24.0,
        lon: 45.0,
        s_lat: 9.0,
        s_lon: 14.0,
        amp: -25.0,
    },
    // Dry: Atacama / Peru coast.
    Region {
        lat: -22.0,
        lon: -70.0,
        s_lat: 8.0,
        s_lon: 7.0,
        amp: -22.0,
    },
    // Dry: Australian interior.
    Region {
        lat: -25.0,
        lon: 134.0,
        s_lat: 9.0,
        s_lon: 14.0,
        amp: -22.0,
    },
    // Dry: Kalahari / Namib.
    Region {
        lat: -24.0,
        lon: 18.0,
        s_lat: 7.0,
        s_lon: 10.0,
        amp: -18.0,
    },
    // Dry: central Asia.
    Region {
        lat: 42.0,
        lon: 65.0,
        s_lat: 9.0,
        s_lon: 20.0,
        amp: -15.0,
    },
    // Dry: US southwest / Mexico interior.
    Region {
        lat: 32.0,
        lon: -110.0,
        s_lat: 7.0,
        s_lon: 12.0,
        amp: -15.0,
    },
];

fn gauss(x: f64, mu: f64, sigma: f64) -> f64 {
    let t = (x - mu) / sigma;
    (-t * t).exp()
}

/// Shortest longitude difference in degrees, in [-180, 180].
fn dlon_deg(a: f64, b: f64) -> f64 {
    let mut d = a - b;
    while d > 180.0 {
        d -= 360.0;
    }
    while d < -180.0 {
        d += 360.0;
    }
    d
}

/// The synthetic climatology. Cheap to copy; all methods are pure.
#[derive(Debug, Clone, Copy, Default)]
pub struct Climatology {
    _priv: (),
}

impl Climatology {
    /// The standard synthetic climatology used across the workspace.
    pub fn synthetic() -> Self {
        Self { _priv: () }
    }

    /// Rain rate (mm/h) exceeded 0.01 % of an average year at the site —
    /// the `R₀.₀₁` input of the P.618 rain model. Ranges ~5 (poles,
    /// deserts) to ~130 (deep tropics).
    pub fn rain_rate_001(&self, site: GeoPoint) -> f64 {
        let lat = site.lat_deg();
        let lon = site.lon_deg();
        // Zonal structure: ITCZ peak at 6°N, secondary SH tropics peak,
        // mid-latitude storm tracks, dry subtropics in between.
        let mut r = 12.0
            + 75.0 * gauss(lat, 6.0, 11.0)
            + 35.0 * gauss(lat, -10.0, 12.0)
            + 18.0 * gauss(lat, 45.0, 13.0)
            + 16.0 * gauss(lat, -45.0, 13.0)
            - 6.0 * gauss(lat, 25.0, 8.0)
            - 6.0 * gauss(lat, -25.0, 8.0)
            - 8.0 * gauss(lat.abs(), 90.0, 25.0);
        for reg in REGIONS {
            r += reg.amp
                * gauss(lat, reg.lat, reg.s_lat)
                * gauss(dlon_deg(lon, reg.lon), 0.0, reg.s_lon);
        }
        r.clamp(4.0, 140.0)
    }

    /// Surface water-vapour density, g/m³ (P.676 input).
    pub fn vapour_density(&self, site: GeoPoint) -> f64 {
        let lat = site.lat_deg();
        // Humidity loosely tracks the rain field's zonal structure.
        let base = 4.0 + 18.0 * gauss(lat, 2.0, 24.0);
        // More vapour where it rains more (weak coupling).
        let rain = self.rain_rate_001(site);
        (base + 0.04 * rain).clamp(1.0, 30.0)
    }

    /// Wet term of the surface refractivity, ppm (scintillation input).
    pub fn n_wet(&self, site: GeoPoint) -> f64 {
        // N_wet is roughly proportional to vapour pressure; reuse the
        // vapour field with the conventional ~5.4 ppm per g/m³ slope.
        (self.vapour_density(site) * 5.4).clamp(10.0, 160.0)
    }

    /// Columnar liquid cloud water exceeded ~0.5 % of the time, kg/m²
    /// (P.840 input).
    pub fn cloud_water(&self, site: GeoPoint) -> f64 {
        let lat = site.lat_deg();
        let base = 0.12 + 0.5 * gauss(lat, 4.0, 18.0) + 0.15 * gauss(lat.abs(), 48.0, 12.0);
        let rain = self.rain_rate_001(site);
        (base + 0.004 * rain).clamp(0.05, 1.6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::from_degrees(lat, lon)
    }

    #[test]
    fn tropics_much_wetter_than_mid_latitudes() {
        let singapore = Climatology::synthetic().rain_rate_001(p(1.35, 103.8));
        let zurich = Climatology::synthetic().rain_rate_001(p(47.4, 8.5));
        assert!(
            singapore > 2.0 * zurich,
            "Singapore {singapore} vs Zurich {zurich}"
        );
        assert!(singapore > 80.0, "deep tropics R001: {singapore}");
        assert!(zurich > 15.0 && zurich < 50.0, "Zurich R001: {zurich}");
    }

    #[test]
    fn deserts_are_dry() {
        let c = Climatology::synthetic();
        let sahara = c.rain_rate_001(p(23.0, 10.0));
        let delhi = c.rain_rate_001(p(28.6, 77.2));
        assert!(sahara < 20.0, "Sahara: {sahara}");
        assert!(delhi > sahara, "monsoon Delhi ({delhi}) wetter than Sahara");
    }

    #[test]
    fn poles_are_dry() {
        let c = Climatology::synthetic();
        assert!(c.rain_rate_001(p(85.0, 0.0)) < 15.0);
        assert!(c.rain_rate_001(p(-85.0, 120.0)) < 15.0);
    }

    #[test]
    fn fields_in_physical_ranges() {
        let c = Climatology::synthetic();
        for lat in (-90..=90).step_by(10) {
            for lon in (-180..180).step_by(20) {
                let site = p(lat as f64, lon as f64);
                let r = c.rain_rate_001(site);
                assert!((4.0..=140.0).contains(&r));
                let v = c.vapour_density(site);
                assert!((1.0..=30.0).contains(&v));
                let n = c.n_wet(site);
                assert!((10.0..=160.0).contains(&n));
                let w = c.cloud_water(site);
                assert!((0.05..=1.6).contains(&w));
            }
        }
    }

    #[test]
    fn humidity_tracks_latitude() {
        let c = Climatology::synthetic();
        assert!(c.vapour_density(p(0.0, -60.0)) > c.vapour_density(p(60.0, -60.0)));
        assert!(c.n_wet(p(5.0, 100.0)) > c.n_wet(p(55.0, 10.0)));
    }

    #[test]
    fn longitude_wrap_is_smooth() {
        let c = Climatology::synthetic();
        let a = c.rain_rate_001(p(0.0, 179.9));
        let b = c.rain_rate_001(p(0.0, -179.9));
        assert!(
            (a - b).abs() < 1.0,
            "discontinuity at date line: {a} vs {b}"
        );
    }
}
