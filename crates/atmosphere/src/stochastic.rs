//! Deterministic stochastic weather: attenuation time series whose
//! marginal distribution matches the analytic exceedance curve.
//!
//! The ITU model is statistical — it answers "what attenuation is exceeded
//! p% of the time", not "what is the attenuation *now*". For experiments
//! that need a concrete weather realization over a simulated day (failure
//! injection, animated path studies), [`WeatherProcess`] synthesizes one:
//!
//! * each site gets an hour-scale correlated standard-Gaussian process
//!   `x(t)` built from seeded counter-based hashing (stateless, so any
//!   `(site, t)` can be evaluated independently and reproducibly);
//! * `x(t)` maps through the Gaussian CDF to an exceedance percentile
//!   `p(t)`, and the attenuation *now* is the analytic `A(p(t))`.
//!
//! By construction the fraction of time `A(t) ≥ A(p)` is `p` — the
//! realized series honors the climatological exceedance curve.

use crate::model::{AttenuationModel, SlantPath};
use leo_geo::GeoPoint;
use leo_util::rng::mix64;

/// A deterministic, seeded weather realization.
#[derive(Debug, Clone, Copy)]
pub struct WeatherProcess {
    seed: u64,
    /// Temporal correlation scale, seconds (weather decorrelates over a
    /// few hours).
    pub correlation_s: f64,
}

impl WeatherProcess {
    /// Create a process with the given seed and a 3-hour correlation time.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            correlation_s: 3.0 * 3600.0,
        }
    }

    /// Standard Gaussian from a hash key (Box-Muller on two mixed
    /// uniforms). The mixer is `leo_util::rng::mix64` — the same
    /// SplitMix64 finalizer this module carried privately before the
    /// hermetic refactor, so seeded weather streams are unchanged.
    fn gaussian(&self, key: u64) -> f64 {
        let a = mix64(self.seed ^ key);
        let b = mix64(a ^ 0xD6E8_FEB8_6659_FD93);
        let u1 = ((a >> 11) as f64 + 1.0) / (1u64 << 53) as f64; // (0, 1]
        let u2 = (b >> 11) as f64 / (1u64 << 53) as f64;
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Site key: quantized to ~0.01° so nearby queries share weather.
    fn site_key(site: GeoPoint) -> u64 {
        let lat = (site.lat_deg() * 100.0).round() as i64 as u64;
        let lon = (site.lon_deg() * 100.0).round() as i64 as u64;
        mix64(lat.wrapping_mul(0x9E37_79B9).wrapping_add(lon))
    }

    /// The correlated standard-Gaussian weather state of `site` at time
    /// `t_s`. Unit marginal variance is preserved across the
    /// interpolation by normalizing the blend weights.
    pub fn state(&self, site: GeoPoint, t_s: f64) -> f64 {
        let sk = Self::site_key(site);
        let u = t_s / self.correlation_s;
        let k = u.floor();
        let frac = u - k;
        let g0 = self.gaussian(sk ^ (k as i64 as u64).wrapping_mul(0xA24B_AED4_963E_E407));
        let g1 = self.gaussian(sk ^ ((k as i64 + 1) as u64).wrapping_mul(0xA24B_AED4_963E_E407));
        let (w0, w1) = (1.0 - frac, frac);
        let norm = (w0 * w0 + w1 * w1).sqrt();
        (w0 * g0 + w1 * g1) / norm
    }

    /// Exceedance percentile of the current weather at `site`: the
    /// fraction of time (in percent) with weather at least this bad.
    /// Uniform on (0, 100) by construction.
    pub fn exceedance_percent(&self, site: GeoPoint, t_s: f64) -> f64 {
        let x = self.state(site, t_s);
        // p = 100 · (1 − Φ(x)): large x = rare bad weather = small p.
        100.0 * 0.5 * erfc(x / std::f64::consts::SQRT_2)
    }

    /// Realized attenuation (dB) on a slant path at time `t_s`.
    ///
    /// For the 5 % of time with "bad" weather the analytic curve
    /// `A(p ∈ [0.001, 5])` is evaluated at the current exceedance
    /// percentile. For the remaining mild weather (p > 5 %) the non-gas
    /// part decays smoothly towards the gaseous clear-sky floor, keeping
    /// the series continuous and monotone in weather severity.
    pub fn attenuation_db(&self, model: &AttenuationModel, path: &SlantPath, t_s: f64) -> f64 {
        let p = self.exceedance_percent(path.site, t_s);
        if p <= 5.0 {
            model.total_attenuation_db(path, p.max(0.001))
        } else {
            let gas = model.clear_sky_db(path);
            let a5 = model.total_attenuation_db(path, 5.0);
            gas + (a5 - gas).max(0.0) * (5.0 / p).powf(1.5)
        }
    }
}

/// Complementary error function (Abramowitz & Stegun 7.1.26 rational
/// approximation, |error| ≤ 1.5e-7 — ample for percentile mapping).
fn erfc(x: f64) -> f64 {
    let ax = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * ax);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let e = poly * (-ax * ax).exp();
    if x >= 0.0 {
        e
    } else {
        2.0 - e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Climatology;
    use leo_geo::deg_to_rad;

    fn path() -> SlantPath {
        SlantPath {
            site: GeoPoint::from_degrees(1.35, 103.8),
            elevation_rad: deg_to_rad(40.0),
            frequency_ghz: 14.25,
        }
    }

    #[test]
    fn deterministic() {
        let w = WeatherProcess::new(42);
        let a = w.state(path().site, 1234.5);
        let b = w.state(path().site, 1234.5);
        assert_eq!(a, b);
        let w2 = WeatherProcess::new(43);
        assert_ne!(a, w2.state(path().site, 1234.5));
    }

    #[test]
    fn marginal_is_roughly_standard_gaussian() {
        let w = WeatherProcess::new(7);
        let site = GeoPoint::from_degrees(40.0, -74.0);
        let n = 20_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for i in 0..n {
            // Sample at decorrelated times.
            let x = w.state(site, i as f64 * w.correlation_s * 1.37);
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn exceedance_is_uniform() {
        let w = WeatherProcess::new(11);
        let site = GeoPoint::from_degrees(-23.0, -46.0);
        let n = 10_000;
        let mut below_10 = 0;
        let mut below_50 = 0;
        for i in 0..n {
            let p = w.exceedance_percent(site, i as f64 * w.correlation_s * 2.11);
            assert!(p > 0.0 && p < 100.0);
            if p < 10.0 {
                below_10 += 1;
            }
            if p < 50.0 {
                below_50 += 1;
            }
        }
        assert!((below_10 as f64 / n as f64 - 0.10).abs() < 0.02);
        assert!((below_50 as f64 / n as f64 - 0.50).abs() < 0.03);
    }

    #[test]
    fn realized_series_honors_exceedance_curve() {
        let model = AttenuationModel::new(Climatology::synthetic());
        let w = WeatherProcess::new(3);
        let p = path();
        let threshold = model.total_attenuation_db(&p, 1.0); // exceeded 1% of time
        let n = 30_000;
        let mut exceed = 0;
        for i in 0..n {
            let a = w.attenuation_db(&model, &p, i as f64 * w.correlation_s * 1.93);
            if a >= threshold - 1e-9 {
                exceed += 1;
            }
        }
        let frac = exceed as f64 / n as f64 * 100.0;
        assert!(
            (frac - 1.0).abs() < 0.4,
            "A(1%) should be exceeded ~1% of the time, got {frac}%"
        );
    }

    #[test]
    fn temporally_correlated() {
        let w = WeatherProcess::new(5);
        let site = GeoPoint::from_degrees(10.0, 10.0);
        // Samples 1 minute apart are nearly identical; samples 10 τ apart
        // are not.
        let a = w.state(site, 0.0);
        let b = w.state(site, 60.0);
        assert!((a - b).abs() < 0.3, "1-minute delta too large: {a} vs {b}");
    }

    #[test]
    fn nearby_sites_share_weather_distant_do_not() {
        let w = WeatherProcess::new(5);
        let a = w.state(GeoPoint::from_degrees(10.0, 10.0), 500.0);
        let same = w.state(GeoPoint::from_degrees(10.001, 10.001), 500.0);
        assert_eq!(a, same, "sub-0.01° sites quantize together");
    }

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157299).abs() < 1e-5);
        assert!((erfc(-1.0) - 1.842701).abs() < 1e-5);
        assert!(erfc(5.0) < 1e-10);
    }
}
