//! The combined P.618-style total attenuation model.

use crate::climatology::Climatology;
use crate::cloud::cloud_attenuation_db;
use crate::gas::gaseous_attenuation_db;
use crate::rain::rain_attenuation_db;
use crate::scintillation::scintillation_db;
use leo_geo::GeoPoint;

/// One ground↔satellite slant path for attenuation purposes.
#[derive(Debug, Clone, Copy)]
pub struct SlantPath {
    /// Ground site (the weather happens at the ground end).
    pub site: GeoPoint,
    /// Elevation angle of the link, radians.
    pub elevation_rad: f64,
    /// Carrier frequency, GHz.
    pub frequency_ghz: f64,
}

/// Total-attenuation model: climatology + the four P.618 components.
#[derive(Debug, Clone, Copy)]
pub struct AttenuationModel {
    climatology: Climatology,
    /// User-terminal antenna diameter for scintillation averaging, meters.
    pub antenna_m: f64,
}

impl AttenuationModel {
    /// Build a model over a climatology with the default 0.6 m user
    /// terminal.
    pub fn new(climatology: Climatology) -> Self {
        Self {
            climatology,
            antenna_m: 0.6,
        }
    }

    /// The climatology in use.
    pub fn climatology(&self) -> &Climatology {
        &self.climatology
    }

    /// Rain-only attenuation exceeded `p_percent` of the time, dB.
    pub fn rain_db(&self, path: &SlantPath, p_percent: f64) -> f64 {
        rain_attenuation_db(
            path.frequency_ghz,
            path.elevation_rad,
            path.site.lat(),
            self.climatology.rain_rate_001(path.site),
            p_percent,
        )
    }

    /// Clear-sky attenuation (dB): the gaseous term only, which is always
    /// present regardless of weather.
    pub fn clear_sky_db(&self, path: &SlantPath) -> f64 {
        gaseous_attenuation_db(
            path.frequency_ghz,
            path.elevation_rad,
            self.climatology.vapour_density(path.site),
        )
    }

    /// Total attenuation (dB) exceeded for `p_percent` ∈ [0.001, 5] of an
    /// average year: `A_gas + √((A_rain + A_cloud)² + A_scint²)`.
    pub fn total_attenuation_db(&self, path: &SlantPath, p_percent: f64) -> f64 {
        let a_r = self.rain_db(path, p_percent);
        let a_c = cloud_attenuation_db(
            path.frequency_ghz,
            path.elevation_rad,
            self.climatology.cloud_water(path.site),
        );
        let a_g = gaseous_attenuation_db(
            path.frequency_ghz,
            path.elevation_rad,
            self.climatology.vapour_density(path.site),
        );
        let a_s = scintillation_db(
            path.frequency_ghz,
            path.elevation_rad,
            self.climatology.n_wet(path.site),
            self.antenna_m,
            p_percent.max(0.01),
        );
        a_g + ((a_r + a_c).powi(2) + a_s * a_s).sqrt()
    }

    /// Fraction of transmitted power surviving attenuation `a_db`
    /// (`10^(−A/10)`); the paper quotes e.g. "5 dB = 44 % received power
    /// reduction" i.e. 56 % surviving... (10^(−0.5) ≈ 0.316 — the paper's
    /// 44 %/56 % figures refer to the affected-link margin; we expose the
    /// plain conversion).
    pub fn received_power_fraction(a_db: f64) -> f64 {
        10f64.powf(-a_db / 10.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_geo::deg_to_rad;

    fn model() -> AttenuationModel {
        AttenuationModel::new(Climatology::synthetic())
    }

    fn path(lat: f64, lon: f64, elev_deg: f64, f: f64) -> SlantPath {
        SlantPath {
            site: GeoPoint::from_degrees(lat, lon),
            elevation_rad: deg_to_rad(elev_deg),
            frequency_ghz: f,
        }
    }

    #[test]
    fn total_monotone_in_exceedance() {
        let m = model();
        let p = path(1.35, 103.8, 40.0, 14.25);
        let mut prev = f64::INFINITY;
        for pe in [0.01, 0.1, 0.5, 1.0, 3.0] {
            let a = m.total_attenuation_db(&p, pe);
            assert!(a < prev, "A({pe}) = {a}");
            prev = a;
        }
    }

    #[test]
    fn tropics_worse_than_mid_latitude() {
        let m = model();
        let sg = m.total_attenuation_db(&path(1.35, 103.8, 40.0, 14.25), 0.5);
        let zh = m.total_attenuation_db(&path(47.4, 8.5, 40.0, 14.25), 0.5);
        assert!(sg > 1.5 * zh, "Singapore {sg} dB vs Zurich {zh} dB");
    }

    #[test]
    fn paper_order_of_magnitude_at_ku() {
        // Fig. 6: medians of the 99.5th-percentile (p=0.5%) attenuation
        // are a few dB at Ku band.
        let m = model();
        let a = m.total_attenuation_db(&path(28.6, 77.2, 40.0, 14.25), 0.5);
        assert!(a > 0.3 && a < 10.0, "Delhi p=0.5%: {a} dB");
    }

    #[test]
    fn uplink_frequency_attenuates_more_than_downlink() {
        // Starlink: 14.25 GHz up vs 11.7 GHz down (paper §6).
        let m = model();
        let up = m.total_attenuation_db(&path(10.0, 100.0, 40.0, 14.25), 0.5);
        let down = m.total_attenuation_db(&path(10.0, 100.0, 40.0, 11.7), 0.5);
        assert!(up > down);
    }

    #[test]
    fn ka_band_much_worse_than_ku() {
        let m = model();
        let ku = m.total_attenuation_db(&path(10.0, 100.0, 40.0, 14.25), 0.5);
        let ka = m.total_attenuation_db(&path(10.0, 100.0, 40.0, 30.0), 0.5);
        assert!(ka > 2.0 * ku, "Ka {ka} dB vs Ku {ku} dB");
    }

    #[test]
    fn received_power_conversion() {
        assert!((AttenuationModel::received_power_fraction(0.0) - 1.0).abs() < 1e-12);
        assert!((AttenuationModel::received_power_fraction(3.0) - 0.501).abs() < 0.01);
        assert!((AttenuationModel::received_power_fraction(10.0) - 0.1).abs() < 1e-9);
        // The paper: 1 dB lower attenuation ⇒ 11% more received power...
        // 10^(0.1) = 1.259; "more than 1 dB lower" median translating to
        // ~11% likely uses ~0.45 dB; we just check the formula shape.
        let r1 = AttenuationModel::received_power_fraction(1.0);
        assert!((r1 - 0.794).abs() < 0.01);
    }

    #[test]
    fn total_dominated_by_rain_in_heavy_weather() {
        let m = model();
        let p = path(1.35, 103.8, 30.0, 14.25);
        let rain = m.rain_db(&p, 0.01);
        let total = m.total_attenuation_db(&p, 0.01);
        assert!(total >= rain, "total must include rain");
        assert!(total < rain + 3.0, "non-rain terms are small at Ku");
    }
}
