//! Rain attenuation on slant paths (ITU-R P.838 / P.618 style).

use leo_geo::rad_to_deg;

/// Power-law coefficients of the specific rain attenuation
/// `γ_R = k · R^α` (dB/km for rain rate `R` in mm/h).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RainCoefficients {
    /// Multiplicative coefficient `k`.
    pub k: f64,
    /// Exponent `α`.
    pub alpha: f64,
}

/// P.838-3 coefficient regression: a sum of log-frequency Gaussians plus a
/// linear term, `log10 k = Σ a_j exp(−((log10 f − b_j)/c_j)²) + m·log10 f + c`.
fn gaussian_fit(log_f: f64, a: &[f64], b: &[f64], c: &[f64], m: f64, cc: f64) -> f64 {
    let mut s = m * log_f + cc;
    for j in 0..a.len() {
        let t = (log_f - b[j]) / c[j];
        s += a[j] * (-t * t).exp();
    }
    s
}

/// Frequency-dependent `k` and `α` for **circular polarization**
/// (the τ = 45° combination of the horizontal and vertical P.838-3
/// coefficient sets), valid for 1–100 GHz.
///
/// LEO user links (and the paper's Ku-band analysis) see constantly
/// rotating geometry, so the polarization-averaged circular coefficients
/// are the appropriate choice.
pub fn rain_coefficients(frequency_ghz: f64) -> RainCoefficients {
    // lint: allow(panic-reachable) ITU model validity-domain check on caller input; out-of-domain values would yield plausible-looking nonsense attenuation
    assert!(
        (1.0..=100.0).contains(&frequency_ghz),
        "rain model valid for 1-100 GHz, got {frequency_ghz}"
    );
    let lf = frequency_ghz.log10();
    // kH
    let k_h = 10f64.powf(gaussian_fit(
        lf,
        &[-5.33980, -0.35351, -0.23789, -0.94158],
        &[-0.10008, 1.26970, 0.86036, 0.64552],
        &[1.13098, 0.45400, 0.15354, 0.16817],
        -0.18961,
        0.71147,
    ));
    // kV
    let k_v = 10f64.powf(gaussian_fit(
        lf,
        &[-3.80595, -3.44965, -0.39902, 0.50167],
        &[0.56934, -0.22911, 0.73042, 1.07319],
        &[0.81061, 0.51059, 0.11899, 0.27195],
        -0.16398,
        0.63297,
    ));
    // αH
    let a_h = gaussian_fit(
        lf,
        &[-0.14318, 0.29591, 0.32177, -5.37610, 16.1721],
        &[1.82442, 0.77564, 0.63773, -0.96230, -3.29980],
        &[-0.55187, 0.19822, 0.13164, 1.47828, 3.43990],
        0.67849,
        -1.95537,
    );
    // αV
    let a_v = gaussian_fit(
        lf,
        &[-0.07771, 0.56727, -0.20238, -48.2991, 48.5833],
        &[2.33840, 0.95545, 1.14520, 0.791669, 0.791459],
        &[-0.76284, 0.54039, 0.26809, 0.116226, 0.116479],
        -0.053739,
        0.83433,
    );
    // Circular polarization: k = (kH + kV)/2, α = (kH·αH + kV·αV)/(2k).
    let k = 0.5 * (k_h + k_v);
    let alpha = (k_h * a_h + k_v * a_v) / (2.0 * k);
    RainCoefficients { k, alpha }
}

/// Mean annual rain height above mean sea level, km, as a function of
/// latitude (P.839-style approximation: ~5 km in the tropics, falling off
/// poleward of 23°).
pub fn rain_height_km(lat_rad: f64) -> f64 {
    let phi = rad_to_deg(lat_rad).abs();
    let h0 = if phi <= 23.0 {
        5.0
    } else {
        (5.0 - 0.075 * (phi - 23.0)).max(0.5)
    };
    h0 + 0.36
}

/// Rain attenuation (dB) exceeded for `p` percent of an average year on a
/// slant path, following the P.618 method:
///
/// 1. slant length through rain `L_s = (h_R − h_s)/sin θ`;
/// 2. specific attenuation at the local `R₀.₀₁`;
/// 3. horizontal reduction and vertical adjustment factors at 0.01 %;
/// 4. probability scaling from 0.01 % to `p ∈ [0.001, 5]`.
///
/// `rain_rate_001` is the rain rate exceeded 0.01 % of the time at the
/// site (from the climatology). Elevations below 5° use the 5° geometry
/// (the spherical-path refinement is irrelevant at LEO constellation
/// minimum elevations of 25–40°).
pub fn rain_attenuation_db(
    frequency_ghz: f64,
    elevation_rad: f64,
    lat_rad: f64,
    rain_rate_001_mm_h: f64,
    p_percent: f64,
) -> f64 {
    // lint: allow(panic-reachable) ITU model validity-domain check on caller input; out-of-domain values would yield plausible-looking nonsense attenuation
    assert!(
        (0.001..=5.0).contains(&p_percent),
        "P.618 scaling valid for p in [0.001, 5] percent, got {p_percent}"
    );
    if rain_rate_001_mm_h <= 0.0 {
        return 0.0;
    }
    let theta = elevation_rad.max(leo_geo::deg_to_rad(5.0));
    let sin_t = theta.sin();
    let hs_km: f64 = 0.0; // station at sea level — cities' altitude spread is noise here
    let hr = rain_height_km(lat_rad);
    let ls = (hr - hs_km) / sin_t; // slant length, km
    if ls <= 0.0 {
        return 0.0;
    }
    let lg = ls * theta.cos(); // horizontal projection, km
    let RainCoefficients { k, alpha } = rain_coefficients(frequency_ghz);
    let gamma_r = k * rain_rate_001_mm_h.powf(alpha); // dB/km

    // Horizontal reduction factor at 0.01%.
    let r001 = 1.0
        / (1.0 + 0.78 * (lg * gamma_r / frequency_ghz).sqrt() - 0.38 * (1.0 - (-2.0 * lg).exp()));

    // Vertical adjustment factor at 0.01%.
    let zeta = (hr - hs_km).atan2(lg * r001); // radians
    let lr = if zeta > theta {
        lg * r001 / theta.cos()
    } else {
        (hr - hs_km) / sin_t
    };
    let phi_deg = rad_to_deg(lat_rad).abs();
    let chi = if phi_deg < 36.0 { 36.0 - phi_deg } else { 0.0 };
    let theta_deg = rad_to_deg(theta);
    let v001 = 1.0
        / (1.0
            + sin_t.sqrt()
                * (31.0 * (1.0 - (-(theta_deg / (1.0 + chi))).exp()) * (lr * gamma_r).sqrt()
                    / (frequency_ghz * frequency_ghz)
                    - 0.45));
    let le = lr * v001;
    let a001 = gamma_r * le; // attenuation exceeded 0.01% of the year, dB
    if a001 <= 0.0 {
        return 0.0;
    }

    // Scale from 0.01% to p.
    let p = p_percent;
    let beta = if p >= 1.0 || phi_deg >= 36.0 {
        0.0
    } else if theta_deg >= 25.0 {
        -0.005 * (phi_deg - 36.0)
    } else {
        -0.005 * (phi_deg - 36.0) + 1.8 - 4.25 * sin_t
    };
    let exponent = -(0.655 + 0.033 * p.ln() - 0.045 * a001.ln() - beta * (1.0 - p) * sin_t);
    (a001 * (p / 0.01).powf(exponent)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_geo::deg_to_rad;

    #[test]
    fn coefficients_near_itu_table_at_12ghz() {
        // ITU-R P.838-3 table at 12 GHz: kH=0.0188, kV=0.0168,
        // αH=1.217, αV=1.200 → circular k≈0.0178, α≈1.209. Our regression
        // constants are an approximation of the published fit; hold the
        // value to within ~50% on k (absolute dB accuracy is not needed for
        // the paper's relative BP-vs-ISL comparisons) and 0.15 on α.
        let c = rain_coefficients(12.0);
        assert!(c.k > 0.009 && c.k < 0.027, "k = {}", c.k);
        assert!((c.alpha - 1.21).abs() < 0.15, "alpha = {}", c.alpha);
    }

    #[test]
    fn coefficients_near_itu_table_at_30ghz() {
        // 30 GHz: kH=0.2403, kV=0.2291, αH=0.9485, αV=0.9129.
        let c = rain_coefficients(30.0);
        assert!((c.k - 0.235).abs() < 0.05, "k = {}", c.k);
        assert!((c.alpha - 0.93).abs() < 0.08, "alpha = {}", c.alpha);
    }

    #[test]
    fn specific_attenuation_increases_with_frequency() {
        let r: f64 = 30.0;
        let mut prev = 0.0;
        for f in [4.0, 8.0, 12.0, 20.0, 30.0, 50.0] {
            let c = rain_coefficients(f);
            let g = c.k * r.powf(c.alpha);
            assert!(g > prev, "γ must grow with f (f={f}, γ={g})");
            prev = g;
        }
    }

    #[test]
    fn rain_height_profile() {
        assert!((rain_height_km(0.0) - 5.36).abs() < 1e-9);
        assert!(rain_height_km(deg_to_rad(60.0)) < rain_height_km(deg_to_rad(10.0)));
        assert!(rain_height_km(deg_to_rad(89.0)) >= 0.86);
    }

    #[test]
    fn attenuation_monotone_in_rain_rate() {
        let mut prev = -1.0;
        for r in [5.0, 20.0, 60.0, 100.0] {
            let a = rain_attenuation_db(14.25, deg_to_rad(40.0), deg_to_rad(10.0), r, 0.5);
            assert!(a > prev, "A(R={r}) = {a} must grow");
            prev = a;
        }
    }

    #[test]
    fn attenuation_monotone_in_exceedance() {
        // Smaller p (rarer events) → larger attenuation.
        let mut prev = f64::INFINITY;
        for p in [0.01, 0.1, 0.5, 1.0, 3.0] {
            let a = rain_attenuation_db(14.25, deg_to_rad(40.0), deg_to_rad(10.0), 60.0, p);
            assert!(a < prev, "A(p={p}) = {a} must shrink as p grows");
            prev = a;
        }
    }

    #[test]
    fn low_elevation_suffers_more() {
        let hi = rain_attenuation_db(14.25, deg_to_rad(80.0), deg_to_rad(10.0), 60.0, 0.5);
        let lo = rain_attenuation_db(14.25, deg_to_rad(25.0), deg_to_rad(10.0), 60.0, 0.5);
        assert!(lo > hi, "low elevation ({lo}) must exceed high ({hi})");
    }

    #[test]
    fn ku_band_tropics_order_of_magnitude() {
        // Tropical site (R001 ~ 80 mm/h), Ku band, 40° elevation, p=0.5%:
        // expect single-digit dB (the paper's Fig. 6/8 range).
        let a = rain_attenuation_db(14.25, deg_to_rad(40.0), deg_to_rad(5.0), 80.0, 0.5);
        assert!(a > 0.5 && a < 15.0, "got {a} dB");
    }

    #[test]
    fn zero_rain_gives_zero() {
        assert_eq!(
            rain_attenuation_db(14.25, deg_to_rad(40.0), 0.0, 0.0, 0.1),
            0.0
        );
    }

    #[test]
    #[should_panic(expected = "valid for p")]
    fn rejects_out_of_range_probability() {
        rain_attenuation_db(14.25, deg_to_rad(40.0), 0.0, 60.0, 10.0);
    }
}
