//! Tropospheric scintillation (P.618 §2.4 statistical model).

/// Scintillation fade depth (dB) not exceeded... exceeded for `p_percent`
/// of the time (`0.01 ≤ p ≤ 50`), for a site with wet term of surface
/// refractivity `n_wet` (ppm; ~20 dry / cold, up to ~130 humid tropics),
/// antenna diameter `antenna_m` and efficiency ~0.5.
///
/// Scintillation matters at low elevations and high frequencies; for the
/// paper's Ku-band, 25–40° links it contributes tenths of a dB, combined
/// root-sum-square with rain+cloud in the P.618 total.
pub fn scintillation_db(
    frequency_ghz: f64,
    elevation_rad: f64,
    n_wet: f64,
    antenna_m: f64,
    p_percent: f64,
) -> f64 {
    // lint: allow(panic-reachable) ITU model validity-domain check on caller input; out-of-domain values would yield plausible-looking nonsense attenuation
    assert!(
        (0.01..=50.0).contains(&p_percent),
        "scintillation percentile valid in [0.01, 50], got {p_percent}"
    );
    // lint: allow(panic-reachable) ITU model validity-domain check on caller input; out-of-domain values would yield plausible-looking nonsense attenuation
    assert!((4.0..=55.0).contains(&frequency_ghz));
    let theta = elevation_rad.max(leo_geo::deg_to_rad(5.0));
    // Reference standard deviation.
    let sigma_ref = 3.6e-3 + 1.0e-4 * n_wet; // dB
                                             // Effective path length through the turbulent layer (h_L = 1000 m).
    let l = 2.0 * 1000.0 / ((theta.sin().powi(2) + 2.35e-4).sqrt() + theta.sin()); // m
                                                                                   // Antenna averaging.
    let d_eff = 0.55f64.sqrt() * antenna_m;
    let x = 1.22 * d_eff * d_eff * frequency_ghz / l;
    if x >= 7.0 {
        // Averaging wipes out scintillation for very large apertures.
        return 0.0;
    }
    let g = (3.86 * (x * x + 1.0).powf(11.0 / 12.0) * ((11.0 / 6.0) * (1.0 / x).atan()).sin()
        - 7.08 * x.powf(5.0 / 6.0))
    .max(0.0)
    .sqrt();
    let sigma = sigma_ref * frequency_ghz.powf(7.0 / 12.0) * g / theta.sin().powf(1.2);
    // Time-percentage factor.
    let lp = p_percent.log10();
    let a_p = -0.061 * lp * lp * lp + 0.072 * lp * lp - 1.71 * lp + 3.0;
    (a_p * sigma).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_geo::deg_to_rad;

    #[test]
    fn typical_ku_scintillation_is_sub_db() {
        let a = scintillation_db(14.25, deg_to_rad(40.0), 60.0, 0.6, 0.5);
        assert!(a > 0.0 && a < 1.0, "got {a} dB");
    }

    #[test]
    fn worse_at_low_elevation() {
        let hi = scintillation_db(14.25, deg_to_rad(60.0), 60.0, 0.6, 0.5);
        let lo = scintillation_db(14.25, deg_to_rad(10.0), 60.0, 0.6, 0.5);
        assert!(lo > hi);
    }

    #[test]
    fn worse_in_humid_climate() {
        let dry = scintillation_db(14.25, deg_to_rad(30.0), 20.0, 0.6, 0.5);
        let wet = scintillation_db(14.25, deg_to_rad(30.0), 120.0, 0.6, 0.5);
        assert!(wet > dry);
    }

    #[test]
    fn rarer_percentile_is_deeper() {
        let common = scintillation_db(14.25, deg_to_rad(30.0), 60.0, 0.6, 10.0);
        let rare = scintillation_db(14.25, deg_to_rad(30.0), 60.0, 0.6, 0.01);
        assert!(rare > common);
    }

    #[test]
    fn big_dish_averages_out() {
        let small = scintillation_db(14.25, deg_to_rad(30.0), 60.0, 0.3, 0.5);
        let large = scintillation_db(14.25, deg_to_rad(30.0), 60.0, 3.0, 0.5);
        assert!(large < small);
    }
}
