//! Property-based tests for the attenuation model: physical
//! monotonicities that must hold over the whole input space (on
//! `leo_util::check`; 256 cases per property, ≥ the proptest originals).

use leo_atmo::*;
use leo_geo::{deg_to_rad, GeoPoint};
use leo_util::check::{check, Gen};
use leo_util::check_assert;

fn arb_site(g: &mut Gen) -> GeoPoint {
    GeoPoint::from_degrees(g.f64(-70.0..70.0), g.f64(-180.0..180.0))
}

fn arb_path(g: &mut Gen) -> SlantPath {
    SlantPath {
        site: arb_site(g),
        elevation_rad: deg_to_rad(g.f64(10.0..85.0)),
        frequency_ghz: g.f64(10.0..30.0),
    }
}

/// Attenuation is positive, finite, and monotone in the exceedance
/// probability everywhere on Earth.
#[test]
fn total_attenuation_monotone() {
    let model = AttenuationModel::new(Climatology::synthetic());
    check("total_attenuation_monotone", |g| {
        let path = arb_path(g);
        let mut prev = f64::INFINITY;
        for p in [0.01, 0.1, 0.5, 1.0, 5.0] {
            let a = model.total_attenuation_db(&path, p);
            check_assert!(a.is_finite() && a > 0.0, "A({p}) = {a}");
            check_assert!(a <= prev + 1e-9, "A must fall as p grows");
            prev = a;
        }
        Ok(())
    });
}

/// Lower elevation never reduces attenuation (longer path through
/// the troposphere).
#[test]
fn elevation_monotone() {
    let model = AttenuationModel::new(Climatology::synthetic());
    check("elevation_monotone", |g| {
        let site = arb_site(g);
        let f = g.f64(10.0..30.0);
        let p = g.f64(0.05..5.0);
        let hi = SlantPath {
            site,
            elevation_rad: deg_to_rad(70.0),
            frequency_ghz: f,
        };
        let lo = SlantPath {
            site,
            elevation_rad: deg_to_rad(15.0),
            frequency_ghz: f,
        };
        check_assert!(
            model.total_attenuation_db(&lo, p) >= model.total_attenuation_db(&hi, p) - 1e-9
        );
        Ok(())
    });
}

/// Rain coefficients stay physical across the valid band.
#[test]
fn rain_coefficients_physical() {
    check("rain_coefficients_physical", |g| {
        let f = g.f64(1.0..100.0);
        let c = rain_coefficients(f);
        check_assert!(c.k > 0.0 && c.k < 3.0, "k = {}", c.k);
        check_assert!(c.alpha > 0.4 && c.alpha < 2.0, "alpha = {}", c.alpha);
        Ok(())
    });
}

/// The stochastic process honors the analytic exceedance curve at
/// an arbitrary threshold percentile (coarse check, 4000 samples).
#[test]
fn stochastic_matches_exceedance() {
    let model = AttenuationModel::new(Climatology::synthetic());
    check("stochastic_matches_exceedance", |g| {
        let seed = g.u64(0..50);
        let p_check = g.f64(0.5..4.0);
        let w = WeatherProcess::new(seed);
        let path = SlantPath {
            site: GeoPoint::from_degrees(5.0, 100.0),
            elevation_rad: deg_to_rad(40.0),
            frequency_ghz: 14.25,
        };
        let threshold = model.total_attenuation_db(&path, p_check);
        let n = 4000;
        let mut exceed = 0;
        for i in 0..n {
            let a = w.attenuation_db(&model, &path, i as f64 * w.correlation_s * 1.61);
            if a >= threshold - 1e-9 {
                exceed += 1;
            }
        }
        let frac = exceed as f64 / n as f64 * 100.0;
        check_assert!(
            (frac - p_check).abs() < 1.5,
            "target {p_check}%, got {frac}%"
        );
        Ok(())
    });
}

/// MODCOD efficiency is monotone in C/N and bounded by Shannon.
#[test]
fn modcod_monotone_and_shannon_bounded() {
    check("modcod_monotone_and_shannon_bounded", |g| {
        let cn = g.f64(-5.0..25.0);
        let lb = LinkBudget::ku_user_terminal();
        let e1 = lb.modcod_efficiency(cn);
        let e2 = lb.modcod_efficiency(cn + 1.0);
        check_assert!(e2 >= e1);
        check_assert!(e1 * lb.bandwidth_hz <= lb.shannon_capacity_bps(cn) + 1.0);
        Ok(())
    });
}

/// FSPL grows with both distance and frequency.
#[test]
fn fspl_monotone() {
    check("fspl_monotone", |g| {
        let f = g.f64(1.0..50.0);
        let d = g.f64(100_000.0..3_000_000.0);
        let base = free_space_path_loss_db(f, d);
        check_assert!(free_space_path_loss_db(f * 1.5, d) > base);
        check_assert!(free_space_path_loss_db(f, d * 1.5) > base);
        Ok(())
    });
}
