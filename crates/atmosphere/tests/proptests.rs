//! Property-based tests for the attenuation model: physical
//! monotonicities that must hold over the whole input space.

use leo_atmo::*;
use leo_geo::{deg_to_rad, GeoPoint};
use proptest::prelude::*;

fn arb_site() -> impl Strategy<Value = GeoPoint> {
    (-70.0f64..70.0, -180.0f64..180.0).prop_map(|(lat, lon)| GeoPoint::from_degrees(lat, lon))
}

fn arb_path() -> impl Strategy<Value = SlantPath> {
    (arb_site(), 10.0f64..85.0, 10.0f64..30.0).prop_map(|(site, elev, f)| SlantPath {
        site,
        elevation_rad: deg_to_rad(elev),
        frequency_ghz: f,
    })
}

proptest! {
    /// Attenuation is positive, finite, and monotone in the exceedance
    /// probability everywhere on Earth.
    #[test]
    fn total_attenuation_monotone(path in arb_path()) {
        let model = AttenuationModel::new(Climatology::synthetic());
        let mut prev = f64::INFINITY;
        for p in [0.01, 0.1, 0.5, 1.0, 5.0] {
            let a = model.total_attenuation_db(&path, p);
            prop_assert!(a.is_finite() && a > 0.0, "A({p}) = {a}");
            prop_assert!(a <= prev + 1e-9, "A must fall as p grows");
            prev = a;
        }
    }

    /// Lower elevation never reduces attenuation (longer path through
    /// the troposphere).
    #[test]
    fn elevation_monotone(site in arb_site(), f in 10.0f64..30.0, p in 0.05f64..5.0) {
        let model = AttenuationModel::new(Climatology::synthetic());
        let hi = SlantPath { site, elevation_rad: deg_to_rad(70.0), frequency_ghz: f };
        let lo = SlantPath { site, elevation_rad: deg_to_rad(15.0), frequency_ghz: f };
        prop_assert!(
            model.total_attenuation_db(&lo, p) >= model.total_attenuation_db(&hi, p) - 1e-9
        );
    }

    /// Rain coefficients stay physical across the valid band.
    #[test]
    fn rain_coefficients_physical(f in 1.0f64..100.0) {
        let c = rain_coefficients(f);
        prop_assert!(c.k > 0.0 && c.k < 3.0, "k = {}", c.k);
        prop_assert!(c.alpha > 0.4 && c.alpha < 2.0, "alpha = {}", c.alpha);
    }

    /// The stochastic process honors the analytic exceedance curve at
    /// an arbitrary threshold percentile (coarse check, 4000 samples).
    #[test]
    fn stochastic_matches_exceedance(seed in 0u64..50, p_check in 0.5f64..4.0) {
        let model = AttenuationModel::new(Climatology::synthetic());
        let w = WeatherProcess::new(seed);
        let path = SlantPath {
            site: GeoPoint::from_degrees(5.0, 100.0),
            elevation_rad: deg_to_rad(40.0),
            frequency_ghz: 14.25,
        };
        let threshold = model.total_attenuation_db(&path, p_check);
        let n = 4000;
        let mut exceed = 0;
        for i in 0..n {
            let a = w.attenuation_db(&model, &path, i as f64 * w.correlation_s * 1.61);
            if a >= threshold - 1e-9 {
                exceed += 1;
            }
        }
        let frac = exceed as f64 / n as f64 * 100.0;
        prop_assert!((frac - p_check).abs() < 1.5, "target {p_check}%, got {frac}%");
    }

    /// MODCOD efficiency is monotone in C/N and bounded by Shannon.
    #[test]
    fn modcod_monotone_and_shannon_bounded(cn in -5.0f64..25.0) {
        let lb = LinkBudget::ku_user_terminal();
        let e1 = lb.modcod_efficiency(cn);
        let e2 = lb.modcod_efficiency(cn + 1.0);
        prop_assert!(e2 >= e1);
        prop_assert!(e1 * lb.bandwidth_hz <= lb.shannon_capacity_bps(cn) + 1.0);
    }

    /// FSPL grows with both distance and frequency.
    #[test]
    fn fspl_monotone(f in 1.0f64..50.0, d in 100_000.0f64..3_000_000.0) {
        let base = free_space_path_loss_db(f, d);
        prop_assert!(free_space_path_loss_db(f * 1.5, d) > base);
        prop_assert!(free_space_path_loss_db(f, d * 1.5) > base);
    }
}
