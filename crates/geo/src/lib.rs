//! # leo-geo — geodesy primitives for LEO constellation simulation
//!
//! This crate provides the geometric substrate used by every other crate in
//! the workspace: geographic and Earth-centred coordinates, great-circle
//! (geodesic) math on a spherical Earth, slant-range / elevation geometry
//! between ground points and satellites, and a spherical grid spatial index
//! used to make ground-terminal ↔ satellite visibility queries cheap.
//!
//! ## Conventions
//!
//! * Internally everything is **radians** and **meters**. API entry points
//!   that take degrees or kilometres say so in their name (`_deg`, `_km`).
//! * The Earth model is a sphere of radius [`EARTH_RADIUS_M`]. The paper's
//!   analysis (and the LEO-simulation literature it builds on) uses a
//!   spherical Earth; the error relative to WGS84 is well below the
//!   modelling noise of the constellations themselves.
//! * Latitudes are in `[-π/2, π/2]`, longitudes in `(-π, π]`.
//!
//! ## Quick example
//!
//! ```
//! use leo_geo::{GeoPoint, great_circle_distance_m};
//!
//! let zurich = GeoPoint::from_degrees(47.3769, 8.5417);
//! let sydney = GeoPoint::from_degrees(-33.8688, 151.2093);
//! let d = great_circle_distance_m(zurich, sydney);
//! assert!((d / 1000.0 - 16_560.0).abs() < 150.0); // ~16,560 km
//! ```

mod constants;
mod ecef;
mod geodesic;
mod point;
mod slant;
mod spatial;

pub use constants::{EARTH_RADIUS_M, GSO_ALTITUDE_M, SPEED_OF_LIGHT_M_S};
pub use ecef::Ecef;
pub use geodesic::{
    destination_point, great_circle_distance_m, initial_bearing_rad, intermediate_point,
    GreatCircle,
};
pub use point::GeoPoint;
pub use slant::{
    batch_visible_from, coverage_radius_m, elevation_angle_rad, max_slant_range_m, slant_range_m,
    visible_at_elevation, VisibilityScan,
};
pub use spatial::{CellGrid, SphereGrid};

/// Convert degrees to radians.
#[inline]
pub fn deg_to_rad(deg: f64) -> f64 {
    deg * std::f64::consts::PI / 180.0
}

/// Convert radians to degrees.
#[inline]
pub fn rad_to_deg(rad: f64) -> f64 {
    rad * 180.0 / std::f64::consts::PI
}

/// Normalize a longitude (radians) into `(-π, π]`.
#[inline]
pub fn normalize_lon(lon: f64) -> f64 {
    let two_pi = 2.0 * std::f64::consts::PI;
    let mut l = lon % two_pi;
    if l <= -std::f64::consts::PI {
        l += two_pi;
    } else if l > std::f64::consts::PI {
        l -= two_pi;
    }
    l
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deg_rad_roundtrip() {
        for d in [-180.0, -90.0, 0.0, 45.0, 90.0, 180.0] {
            assert!((rad_to_deg(deg_to_rad(d)) - d).abs() < 1e-12);
        }
    }

    #[test]
    fn normalize_lon_wraps() {
        use std::f64::consts::PI;
        assert!((normalize_lon(3.0 * PI) - PI).abs() < 1e-12);
        assert!((normalize_lon(-3.0 * PI) - PI).abs() < 1e-12);
        assert!((normalize_lon(0.5) - 0.5).abs() < 1e-12);
        // Exactly -π maps to +π (half-open convention).
        assert!((normalize_lon(-PI) - PI).abs() < 1e-12);
    }
}
