//! Earth-centred, Earth-fixed (ECEF) Cartesian coordinates.

use crate::{GeoPoint, EARTH_RADIUS_M};

/// A point in Earth-centred Earth-fixed Cartesian coordinates, in meters.
///
/// The +X axis pierces (0°N, 0°E), +Y pierces (0°N, 90°E), and +Z pierces
/// the North Pole. Satellites are represented in ECEF after propagation so
/// that slant ranges to (rotating-frame) ground points are plain Euclidean
/// distances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ecef {
    /// X component, meters.
    pub x: f64,
    /// Y component, meters.
    pub y: f64,
    /// Z component, meters.
    pub z: f64,
}

impl Ecef {
    /// Construct from raw components (meters).
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// ECEF position of a geographic point at `alt_m` meters above the
    /// (spherical) Earth's surface.
    pub fn from_geo(p: GeoPoint, alt_m: f64) -> Self {
        let r = EARTH_RADIUS_M + alt_m;
        let (slat, clat) = p.lat().sin_cos();
        let (slon, clon) = p.lon().sin_cos();
        Self {
            x: r * clat * clon,
            y: r * clat * slon,
            z: r * slat,
        }
    }

    /// Geographic point directly beneath this position (the sub-point),
    /// plus the altitude above the spherical surface.
    pub fn to_geo(&self) -> (GeoPoint, f64) {
        let r = self.norm();
        let lat = (self.z / r).clamp(-1.0, 1.0).asin();
        let lon = self.y.atan2(self.x);
        (GeoPoint::new(lat, lon), r - EARTH_RADIUS_M)
    }

    /// Euclidean norm (distance from Earth's centre), meters.
    #[inline]
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Euclidean distance to another ECEF point, meters.
    #[inline]
    pub fn distance(&self, other: &Ecef) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    /// Dot product with another vector.
    #[inline]
    pub fn dot(&self, other: &Ecef) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Vector from `self` to `other`.
    #[inline]
    pub fn to_vector(&self, other: &Ecef) -> Ecef {
        Ecef::new(other.x - self.x, other.y - self.y, other.z - self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surface_point_on_equator() {
        let e = Ecef::from_geo(GeoPoint::from_degrees(0.0, 0.0), 0.0);
        assert!((e.x - EARTH_RADIUS_M).abs() < 1e-6);
        assert!(e.y.abs() < 1e-6 && e.z.abs() < 1e-6);
    }

    #[test]
    fn north_pole_is_on_z_axis() {
        let e = Ecef::from_geo(GeoPoint::from_degrees(90.0, 0.0), 0.0);
        assert!(e.x.abs() < 1e-6 && e.y.abs() < 1e-6);
        assert!((e.z - EARTH_RADIUS_M).abs() < 1e-6);
    }

    #[test]
    fn geo_roundtrip() {
        let p = GeoPoint::from_degrees(47.3769, 8.5417);
        let (q, alt) = Ecef::from_geo(p, 550_000.0).to_geo();
        assert!((q.lat() - p.lat()).abs() < 1e-12);
        assert!((q.lon() - p.lon()).abs() < 1e-12);
        assert!((alt - 550_000.0).abs() < 1e-4);
    }

    #[test]
    fn distance_across_diameter() {
        let a = Ecef::from_geo(GeoPoint::from_degrees(0.0, 0.0), 0.0);
        let b = Ecef::from_geo(GeoPoint::from_degrees(0.0, 180.0), 0.0);
        assert!((a.distance(&b) - 2.0 * EARTH_RADIUS_M).abs() < 1e-4);
    }
}
