//! A latitude/longitude bucket index for radius queries on the sphere.
//!
//! Snapshot construction must answer "which satellites can this ground
//! terminal see?" for tens of thousands of terminals against ~1,600
//! satellites, 96 times per simulated day. A satellite at 550 km with a 25°
//! minimum elevation covers a ground disc of radius ≈ 941 km (≈ 8.5° of
//! arc), so instead of testing every satellite we bucket sub-satellite
//! points into a fixed lat/lon grid and scan only the bins within the
//! angular window — including longitude wrap-around and the widening of the
//! window near the poles.
//!
//! Two indexes share the same grid geometry ([`GridShape`] internally):
//!
//! * [`SphereGrid`] — the classic build-once-per-snapshot index storing
//!   `(id, GeoPoint)` pairs, answering exact radius queries.
//! * [`CellGrid`] — an id-only index maintained *incrementally* across a
//!   time sweep: satellites are [`CellGrid::relocate`]d between cells as
//!   they move, buckets stay sorted by id, and candidate enumeration via
//!   [`CellGrid::window_cells`] + [`CellGrid::ids`] visits satellites in
//!   exactly the order a freshly built [`SphereGrid::query_radius`] scan
//!   would — the property the TimeSweep engine's byte-identity rests on.

use crate::{GeoPoint, EARTH_RADIUS_M};

/// Shared lat/lon bucket geometry: bin size and row/column layout.
#[derive(Debug, Clone, Copy)]
struct GridShape {
    /// Bin size in radians.
    bin_rad: f64,
    /// Number of latitude rows.
    rows: usize,
    /// Number of longitude columns.
    cols: usize,
}

impl GridShape {
    /// Grid with bins of `bin_deg` degrees.
    ///
    /// # Panics
    /// Panics if `bin_deg` is not in `(0, 90]`.
    fn new(bin_deg: f64) -> Self {
        // lint: allow(panic-reachable) documented `# Panics` contract: a bin size outside (0, 90] has no valid grid shape
        assert!(
            bin_deg > 0.0 && bin_deg <= 90.0,
            "bin size must be in (0, 90] degrees"
        );
        let bin_rad = crate::deg_to_rad(bin_deg);
        let rows = (std::f64::consts::PI / bin_rad).ceil() as usize;
        let cols = (2.0 * std::f64::consts::PI / bin_rad).ceil() as usize;
        Self {
            bin_rad,
            rows,
            cols,
        }
    }

    fn num_cells(&self) -> usize {
        self.rows * self.cols
    }

    fn row_of(&self, lat: f64) -> usize {
        let r = ((lat + std::f64::consts::FRAC_PI_2) / self.bin_rad) as usize;
        r.min(self.rows - 1)
    }

    fn col_of(&self, lon: f64) -> usize {
        let c = ((lon + std::f64::consts::PI) / self.bin_rad) as usize;
        c.min(self.cols - 1)
    }

    fn cell_of(&self, p: &GeoPoint) -> usize {
        self.row_of(p.lat()) * self.cols + self.col_of(p.lon())
    }

    /// Visit every cell whose bucket may intersect the disc of angular
    /// radius `ang` around `center`, in the canonical scan order: rows
    /// ascending; within a row, columns ascending, with a date-line wrap
    /// split into `lo..cols` followed by `0..=hi`.
    ///
    /// This is the *only* cell-enumeration order in the crate — both
    /// [`SphereGrid::query_radius`] and [`CellGrid::window_cells`] are built
    /// on it, so candidate order is identical between the two indexes.
    fn for_each_window_cell(&self, center: GeoPoint, ang: f64, mut f: impl FnMut(usize)) {
        if ang >= std::f64::consts::PI {
            // Whole sphere.
            for idx in 0..self.num_cells() {
                f(idx);
            }
            return;
        }
        let lat_lo = center.lat() - ang;
        let lat_hi = center.lat() + ang;
        let row_lo = self.row_of(lat_lo.max(-std::f64::consts::FRAC_PI_2));
        let row_hi = self.row_of(lat_hi.min(std::f64::consts::FRAC_PI_2));
        // If the window reaches a pole, longitude is unconstrained.
        let pole_touch = lat_lo <= -std::f64::consts::FRAC_PI_2 + 1e-12
            || lat_hi >= std::f64::consts::FRAC_PI_2 - 1e-12;

        for row in row_lo..=row_hi {
            let (col_range, wrap): (std::ops::RangeInclusive<usize>, bool) = if pole_touch {
                (0..=self.cols - 1, false)
            } else {
                // Longitude half-width widens by 1/cos(lat) at this row; use
                // the row edge closest to the pole for a conservative bound.
                let row_lat_lo = row as f64 * self.bin_rad - std::f64::consts::FRAC_PI_2;
                let row_lat_hi = row_lat_lo + self.bin_rad;
                let worst = row_lat_lo.abs().max(row_lat_hi.abs());
                let cosw = worst.cos();
                if cosw <= ang.sin() {
                    (0..=self.cols - 1, false)
                } else {
                    // Exact spherical bound: sin(dlon_max) = sin(ang)/cos(lat).
                    let dlon = (ang.sin() / cosw).clamp(-1.0, 1.0).asin() + self.bin_rad;
                    let c_lo = center.lon() - dlon;
                    let c_hi = center.lon() + dlon;
                    if c_hi - c_lo >= 2.0 * std::f64::consts::PI {
                        (0..=self.cols - 1, false)
                    } else {
                        let lo = self.col_of(crate::normalize_lon(c_lo));
                        let hi = self.col_of(crate::normalize_lon(c_hi));
                        if lo <= hi {
                            (lo..=hi, false)
                        } else {
                            (lo..=hi, true) // wraps past the date line
                        }
                    }
                }
            };
            if wrap {
                let (lo, hi) = (*col_range.start(), *col_range.end());
                for col in lo..self.cols {
                    f(row * self.cols + col);
                }
                for col in 0..=hi {
                    f(row * self.cols + col);
                }
            } else {
                for col in col_range {
                    f(row * self.cols + col);
                }
            }
        }
    }
}

/// A spatial index mapping items (by `u32` id) to lat/lon buckets.
///
/// Build once per snapshot with the current sub-satellite points, then run
/// [`SphereGrid::query_radius`] per ground terminal.
#[derive(Debug, Clone)]
pub struct SphereGrid {
    shape: GridShape,
    /// Bucket contents: `buckets[row * cols + col]` → items.
    buckets: Vec<Vec<(u32, GeoPoint)>>,
    len: usize,
}

impl SphereGrid {
    /// Create an empty grid with bins of `bin_deg` degrees.
    ///
    /// # Panics
    /// Panics if `bin_deg` is not in `(0, 90]`.
    pub fn new(bin_deg: f64) -> Self {
        let shape = GridShape::new(bin_deg);
        Self {
            buckets: vec![Vec::new(); shape.num_cells()],
            shape,
            len: 0,
        }
    }

    /// Number of items in the index.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the index holds no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert an item at a position.
    pub fn insert(&mut self, id: u32, pos: GeoPoint) {
        let idx = self.shape.cell_of(&pos);
        self.buckets[idx].push((id, pos));
        self.len += 1;
    }

    /// Collect the ids of all items within `radius_m` (surface great-circle
    /// distance) of `center` into `out`. `out` is cleared first.
    ///
    /// The scan visits every bucket intersecting the bounding lat/lon window
    /// of the query disc and then applies the exact central-angle test, so
    /// results are exact (no false positives or negatives).
    pub fn query_radius(&self, center: GeoPoint, radius_m: f64, out: &mut Vec<u32>) {
        out.clear();
        let ang = radius_m / EARTH_RADIUS_M;
        self.shape.for_each_window_cell(center, ang, |idx| {
            for (id, p) in &self.buckets[idx] {
                if center.central_angle(p) <= ang {
                    out.push(*id);
                }
            }
        });
    }
}

/// An id-only bucket index maintained incrementally across a time sweep.
///
/// Unlike [`SphereGrid`] (rebuilt from scratch per instant), a `CellGrid`
/// is built once and then kept current by [`CellGrid::relocate`]-ing only
/// the items that crossed a cell boundary. Buckets are kept **sorted by
/// id**, which makes incremental maintenance produce the same enumeration
/// order as a from-scratch build inserting ids `0..n` in order.
///
/// The grid stores no positions: callers resolve candidate ids against
/// their own (struct-of-arrays) position store and apply the exact
/// visibility test there.
#[derive(Debug, Clone)]
pub struct CellGrid {
    shape: GridShape,
    /// `buckets[cell]` → item ids, ascending.
    buckets: Vec<Vec<u32>>,
    /// Reverse index: `cell_index[id]` → cell currently holding `id`
    /// (`u32::MAX` for ids never inserted). Lets sweeps ask "where was
    /// this satellite?" without re-deriving its old sub-point.
    cell_index: Vec<u32>,
    /// Sine of each row boundary latitude (`rows + 1` entries) — the
    /// row-band half of [`CellGrid::contains_quick`].
    row_sin: Vec<f64>,
    /// Unit direction of each column boundary meridian in the equatorial
    /// plane (`cols + 1` entries of `(cos, sin)`) — the wedge half of
    /// [`CellGrid::contains_quick`].
    col_dir: Vec<(f64, f64)>,
    len: usize,
}

impl CellGrid {
    /// Create an empty grid with bins of `bin_deg` degrees.
    ///
    /// # Panics
    /// Panics if `bin_deg` is not in `(0, 90]`.
    pub fn new(bin_deg: f64) -> Self {
        let shape = GridShape::new(bin_deg);
        // The last row/column absorbs any remainder when the bin size
        // does not divide 180°/360° evenly (`rows`/`cols` are ceils), so
        // the final boundary angle must be clamped to the pole/
        // antimeridian — matching `row_of`/`col_of`'s index clamps.
        // Without the row clamp, sin() past π/2 *decreases* and the
        // whole polar cap above the mirrored latitude is falsely
        // rejected; without the column clamp the last wedge wraps past
        // +π and wrongly *accepts* directions that `cell_of` assigns to
        // column 0.
        let row_sin: Vec<f64> = (0..=shape.rows)
            .map(|r| {
                (r as f64 * shape.bin_rad - std::f64::consts::FRAC_PI_2)
                    .min(std::f64::consts::FRAC_PI_2)
                    .sin()
            })
            .collect();
        let col_dir: Vec<(f64, f64)> = (0..=shape.cols)
            .map(|c| {
                let (s, cos) = (c as f64 * shape.bin_rad - std::f64::consts::PI)
                    .min(std::f64::consts::PI)
                    .sin_cos();
                (cos, s)
            })
            .collect();
        Self {
            buckets: vec![Vec::new(); shape.num_cells()],
            cell_index: Vec::new(),
            row_sin,
            col_dir,
            shape,
            len: 0,
        }
    }

    /// Number of items in the index.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the index holds no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of grid cells.
    pub fn num_cells(&self) -> usize {
        self.shape.num_cells()
    }

    /// Cell index of a position.
    pub fn cell_of(&self, p: &GeoPoint) -> u32 {
        self.shape.cell_of(p) as u32
    }

    /// Conservative test: does the ECEF direction `(x, y, z)` (with
    /// `r == (x² + y² + z²).sqrt()`) **provably** map to `cell` under
    /// [`CellGrid::cell_of`] of its sub-point?
    ///
    /// Works directly on the Cartesian components — no `asin`/`atan2` —
    /// by comparing `z/r` against the precomputed row-boundary sines and
    /// the equatorial direction `(x, y)` against the column-boundary
    /// meridians, each with a `1e-9` safety margin (radians / sine units;
    /// both monotonic maps, so the margin dwarfs the few-ulp rounding of
    /// the exact `to_geo` → `cell_of` path by six orders of magnitude).
    ///
    /// `false` only means "too close to a boundary to decide cheaply":
    /// callers fall back to the exact sub-point computation. Sweeps use
    /// this to relocate only the satellites that actually changed cell,
    /// skipping the inverse trigonometry for everything mid-cell.
    // lint: hot-path
    pub fn contains_quick(&self, cell: u32, x: f64, y: f64, z: f64, r: f64) -> bool {
        const MARGIN: f64 = 1e-9;
        let cell = cell as usize;
        if r <= 0.0 || cell >= self.shape.num_cells() {
            return false;
        }
        let (row, col) = (cell / self.shape.cols, cell % self.shape.cols);
        // Row band: lat ∈ [b_row, b_row+1)  ⟺  sin(lat) in the sine band
        // (sin is monotonic on [-π/2, π/2]).
        let s = z / r;
        if s < self.row_sin[row] + MARGIN || s > self.row_sin[row + 1] - MARGIN {
            return false;
        }
        // Column wedge: the (x, y) direction must sit strictly inside the
        // boundary meridians. cross(u, v) = |v|·sin(Δ) and |x| + |y| ≥ |v|,
        // so requiring cross > MARGIN·(|x| + |y|) keeps ≥ 1e-9 rad of
        // true angular clearance from both boundaries.
        let scale = MARGIN * (x.abs() + y.abs());
        let (lo_c, lo_s) = self.col_dir[col];
        let (hi_c, hi_s) = self.col_dir[col + 1];
        lo_c * y - lo_s * x > scale && x * hi_s - y * hi_c > scale
    }

    /// Insert `id` into `cell`, keeping the bucket id-sorted.
    pub fn insert(&mut self, id: u32, cell: u32) {
        let bucket = &mut self.buckets[cell as usize];
        let pos = bucket.partition_point(|&x| x < id);
        bucket.insert(pos, id);
        if self.cell_index.len() <= id as usize {
            // lint: allow(hot-path-alloc) grows once per new peak id, then the guard above makes it a no-op
            self.cell_index.resize(id as usize + 1, u32::MAX);
        }
        self.cell_index[id as usize] = cell;
        self.len += 1;
    }

    /// Remove `id` from `cell`. A no-op if the id is not present.
    pub fn remove(&mut self, id: u32, cell: u32) {
        let bucket = &mut self.buckets[cell as usize];
        if let Ok(pos) = bucket.binary_search(&id) {
            bucket.remove(pos);
            self.cell_index[id as usize] = u32::MAX;
            self.len -= 1;
        }
    }

    /// The cell currently holding `id`, or `u32::MAX` if `id` was never
    /// inserted (or was removed).
    #[inline]
    pub fn cell_of_id(&self, id: u32) -> u32 {
        self.cell_index
            .get(id as usize)
            .copied()
            .unwrap_or(u32::MAX)
    }

    /// Move `id` from cell `from` to cell `to` (sorted-insert at the new
    /// position, so enumeration order stays id-ascending per bucket).
    pub fn relocate(&mut self, id: u32, from: u32, to: u32) {
        self.remove(id, from);
        self.insert(id, to);
    }

    /// Ids currently in `cell`, ascending.
    pub fn ids(&self, cell: u32) -> &[u32] {
        &self.buckets[cell as usize]
    }

    /// Flatten the buckets into CSR form: after the call,
    /// `ids[off[c] as usize..off[c + 1] as usize]` holds the (ascending)
    /// ids of cell `c`. Both vectors are cleared first and keep their
    /// capacity, so a sweep that re-flattens every step stops allocating
    /// once warm.
    ///
    /// Scanning many cell windows against the CSR arrays streams two
    /// contiguous slices instead of pointer-chasing one heap bucket per
    /// cell, which is what makes the per-step visibility refresh cheap.
    pub fn flatten_into(&self, off: &mut Vec<u32>, ids: &mut Vec<u32>) {
        off.clear();
        ids.clear();
        // lint: allow(hot-path-alloc) reserve into recycled buffers; a no-op once capacity reaches steady state
        off.reserve(self.buckets.len() + 1);
        // lint: allow(hot-path-alloc) reserve into recycled buffers; a no-op once capacity reaches steady state
        ids.reserve(self.len);
        off.push(0);
        for bucket in &self.buckets {
            ids.extend_from_slice(bucket);
            off.push(ids.len() as u32);
        }
    }

    /// Collect the cells whose buckets may intersect the disc of radius
    /// `radius_m` around `center` into `out` (cleared first), in the same
    /// canonical scan order [`SphereGrid::query_radius`] uses.
    ///
    /// The window is conservative: scanning these cells and applying an
    /// exact per-item test visits a superset of any exact radius query.
    pub fn window_cells(&self, center: GeoPoint, radius_m: f64, out: &mut Vec<u32>) {
        out.clear();
        let ang = radius_m / EARTH_RADIUS_M;
        self.shape
            .for_each_window_cell(center, ang, |idx| out.push(idx as u32));
    }

    /// [`CellGrid::window_cells`], but compressed into maximal runs of
    /// consecutive cell indices, as half-open `(start, end)` pairs.
    ///
    /// Because the canonical scan order emits each row's columns as one
    /// ascending run (two when the window wraps the date line), a window
    /// of `R` rows compresses to at most `2R` segments — and against a
    /// CSR flattening ([`CellGrid::flatten_into`]) each segment resolves
    /// to **one** contiguous id slice, `ids[off[start]..off[end]]`.
    /// Concatenating the segment slices visits exactly the ids of
    /// `window_cells` in the same canonical order.
    pub fn window_segments(&self, center: GeoPoint, radius_m: f64, out: &mut Vec<(u32, u32)>) {
        out.clear();
        let ang = radius_m / EARTH_RADIUS_M;
        self.shape.for_each_window_cell(center, ang, |idx| {
            let idx = idx as u32;
            match out.last_mut() {
                Some(seg) if seg.1 == idx => seg.1 = idx + 1,
                _ => out.push((idx, idx + 1)),
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::destination_point;

    fn brute_force(items: &[(u32, GeoPoint)], center: GeoPoint, radius_m: f64) -> Vec<u32> {
        let ang = radius_m / EARTH_RADIUS_M;
        let mut v: Vec<u32> = items
            .iter()
            .filter(|(_, p)| center.central_angle(p) <= ang)
            .map(|(id, _)| *id)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn finds_nearby_item() {
        let mut g = SphereGrid::new(5.0);
        g.insert(1, GeoPoint::from_degrees(47.0, 8.0));
        g.insert(2, GeoPoint::from_degrees(-33.0, 151.0));
        let mut out = Vec::new();
        g.query_radius(GeoPoint::from_degrees(47.5, 8.5), 200_000.0, &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn wraps_across_date_line() {
        let mut g = SphereGrid::new(5.0);
        g.insert(7, GeoPoint::from_degrees(0.0, 179.5));
        let mut out = Vec::new();
        g.query_radius(GeoPoint::from_degrees(0.0, -179.5), 500_000.0, &mut out);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn handles_poles() {
        let mut g = SphereGrid::new(5.0);
        g.insert(3, GeoPoint::from_degrees(89.0, 10.0));
        g.insert(4, GeoPoint::from_degrees(89.0, -170.0));
        let mut out = Vec::new();
        g.query_radius(GeoPoint::from_degrees(88.0, 100.0), 600_000.0, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![3, 4]);
    }

    #[test]
    fn matches_brute_force_on_ring() {
        let mut g = SphereGrid::new(4.0);
        let center = GeoPoint::from_degrees(10.0, 20.0);
        let mut items = Vec::new();
        for i in 0..72 {
            let bearing = crate::deg_to_rad(i as f64 * 5.0);
            for (j, d) in [500_000.0, 900_000.0, 1_500_000.0].iter().enumerate() {
                let id = (i * 3 + j) as u32;
                let p = destination_point(center, bearing, *d);
                items.push((id, p));
                g.insert(id, p);
            }
        }
        let mut out = Vec::new();
        g.query_radius(center, 941_000.0, &mut out);
        out.sort_unstable();
        assert_eq!(out, brute_force(&items, center, 941_000.0));
    }

    #[test]
    fn whole_sphere_query_returns_everything() {
        let mut g = SphereGrid::new(10.0);
        for i in 0..50u32 {
            g.insert(
                i,
                GeoPoint::from_degrees(-80.0 + (i as f64) * 3.0, (i as f64) * 7.0 - 180.0),
            );
        }
        let mut out = Vec::new();
        g.query_radius(
            GeoPoint::from_degrees(0.0, 0.0),
            std::f64::consts::PI * EARTH_RADIUS_M,
            &mut out,
        );
        assert_eq!(out.len(), 50);
    }

    #[test]
    fn empty_grid_returns_nothing() {
        let g = SphereGrid::new(5.0);
        assert!(g.is_empty());
        let mut out = vec![99];
        g.query_radius(GeoPoint::from_degrees(0.0, 0.0), 1e7, &mut out);
        assert!(out.is_empty(), "out must be cleared");
    }

    #[test]
    fn cell_grid_buckets_stay_sorted_under_relocation() {
        let mut g = CellGrid::new(5.0);
        let a = g.cell_of(&GeoPoint::from_degrees(10.0, 10.0));
        let b = g.cell_of(&GeoPoint::from_degrees(-40.0, 120.0));
        assert_ne!(a, b);
        for id in [5u32, 1, 9, 3, 7] {
            g.insert(id, a);
        }
        assert_eq!(g.ids(a), &[1, 3, 5, 7, 9]);
        g.relocate(5, a, b);
        g.relocate(1, a, b);
        g.relocate(9, a, b);
        assert_eq!(g.ids(a), &[3, 7]);
        assert_eq!(g.ids(b), &[1, 5, 9]);
        assert_eq!(g.len(), 5);
        // Moving one back lands at the sorted position, not the end.
        g.relocate(9, b, a);
        assert_eq!(g.ids(a), &[3, 7, 9]);
    }

    #[test]
    fn cell_grid_window_matches_sphere_grid_scan_order() {
        // Same items in both indexes: the CellGrid window scan (cells in
        // order, ids per bucket in order, exact test applied by the caller)
        // must reproduce query_radius output *in order*, not just as a set.
        let mut sphere = SphereGrid::new(4.0);
        let mut cells = CellGrid::new(4.0);
        let mut points = Vec::new();
        let center = GeoPoint::from_degrees(48.0, 175.0); // near the date line
        for i in 0..200u32 {
            let bearing = crate::deg_to_rad(i as f64 * 23.0);
            let dist = 100_000.0 + (i as f64) * 9_000.0;
            let p = destination_point(center, bearing, dist);
            sphere.insert(i, p);
            cells.insert(i, cells.cell_of(&p));
            points.push(p);
        }
        for radius in [300_000.0, 941_000.0, 2_500_000.0] {
            let mut expect = Vec::new();
            sphere.query_radius(center, radius, &mut expect);
            let ang = radius / EARTH_RADIUS_M;
            let mut window = Vec::new();
            cells.window_cells(center, radius, &mut window);
            let mut got = Vec::new();
            for &cell in &window {
                for &id in cells.ids(cell) {
                    if center.central_angle(&points[id as usize]) <= ang {
                        got.push(id);
                    }
                }
            }
            assert_eq!(got, expect, "radius {radius}");
        }
    }

    #[test]
    fn cell_grid_window_near_pole_is_conservative() {
        let cells = CellGrid::new(5.0);
        let center = GeoPoint::from_degrees(88.5, 30.0);
        let mut window = Vec::new();
        cells.window_cells(center, 900_000.0, &mut window);
        // Pole-touching windows must cover every column of the top rows.
        let covered = window.len();
        assert!(covered >= 72, "only {covered} cells near the pole");
    }

    #[test]
    fn cell_index_tracks_insert_remove_relocate() {
        let mut g = CellGrid::new(5.0);
        assert_eq!(g.cell_of_id(3), u32::MAX);
        g.insert(3, 10);
        assert_eq!(g.cell_of_id(3), 10);
        g.relocate(3, 10, 11);
        assert_eq!(g.cell_of_id(3), 11);
        g.remove(3, 11);
        assert_eq!(g.cell_of_id(3), u32::MAX);
    }

    #[test]
    fn contains_quick_never_contradicts_cell_of() {
        // contains_quick(cell, …) == true must imply cell_of(subpoint) ==
        // cell, for points scattered across the sphere including many
        // near cell boundaries (where the quick test must decline rather
        // than guess).
        let g = CellGrid::new(3.0);
        let mut accepted = 0usize;
        let mut declined_same_cell = 0usize;
        for i in 0..120 {
            for j in 0..240 {
                // Offset pattern places points mid-cell, near-boundary,
                // and effectively on boundaries.
                let lat = -89.9 + i as f64 * 1.5 + (j % 3) as f64 * 1e-7;
                let lon = -179.9 + j as f64 * 1.5 + (i % 3) as f64 * 1e-7;
                let p = GeoPoint::from_degrees(lat, lon);
                let e = crate::Ecef::from_geo(p, 550_000.0);
                let r = e.norm();
                let (sub, _) = e.to_geo();
                let exact = g.cell_of(&sub);
                for probe in [
                    exact,
                    exact.saturating_sub(1),
                    exact + 1,
                    exact.saturating_sub(g.shape.cols as u32),
                ] {
                    let quick = g.contains_quick(probe, e.x, e.y, e.z, r);
                    if quick {
                        assert_eq!(probe, exact, "quick test accepted the wrong cell");
                        accepted += 1;
                    } else if probe == exact {
                        declined_same_cell += 1;
                    }
                }
            }
        }
        // The quick path must actually fire for the overwhelming majority
        // of mid-cell points (it is the sweep's fast path), while being
        // allowed to decline near boundaries.
        assert!(accepted > 25_000, "quick path fired only {accepted} times");
        assert!(
            declined_same_cell < accepted / 10,
            "quick path declined too often: {declined_same_cell} vs {accepted}"
        );
    }

    #[test]
    fn contains_quick_accepts_polar_caps_with_ragged_rows() {
        // Regression: with a bin size that does not divide 180° (here 7°
        // → 26 rows spanning 182°), the top row's boundary angle used to
        // run 2° past the pole, where sin() *decreases* — so every GT
        // above the mirrored latitude (|lat| ≳ 89°) was falsely rejected
        // and fell back to the exact path forever. The clamped boundary
        // must accept well-inside polar points (|lat| > 85°) like any
        // other mid-cell point.
        let g = CellGrid::new(7.0);
        let mut accepted_polar = 0usize;
        for &lat in &[85.5, 87.0, 88.5, 89.0, 89.4, -89.4, -89.0, -86.0] {
            for lon in [-176.5, -90.0, -3.5, 0.0, 3.5, 90.0, 176.5] {
                let p = GeoPoint::from_degrees(lat, lon);
                let e = crate::Ecef::from_geo(p, 550_000.0);
                let r = e.norm();
                let (sub, _) = e.to_geo();
                let exact = g.cell_of(&sub);
                if g.contains_quick(exact, e.x, e.y, e.z, r) {
                    accepted_polar += 1;
                }
                // And never accept a neighboring cell.
                for probe in [exact.saturating_sub(1), exact + 1] {
                    if probe != exact && (probe as usize) < g.num_cells() {
                        assert!(
                            !g.contains_quick(probe, e.x, e.y, e.z, r),
                            "accepted wrong cell {probe} for lat {lat} lon {lon}"
                        );
                    }
                }
            }
        }
        // 89.4° sits ~0.6° inside the 26th row band ([89°, 90°] after
        // clamping); everything sampled is safely off every boundary, so
        // the quick path must fire for all of them.
        assert_eq!(accepted_polar, 56, "polar caps must use the quick path");
    }

    #[test]
    fn contains_quick_stays_sound_at_antimeridian_with_ragged_cols() {
        // Regression (soundness): with a bin that does not divide 360°
        // (7° → 52 columns spanning 364°), the last column's upper
        // boundary meridian used to wrap 4° past +180°, so its wedge
        // wrongly *accepted* directions just east of the antimeridian
        // that `cell_of` assigns to column 0 — which would silently
        // corrupt an incrementally-maintained grid. The clamp pins the
        // wedge at +180°.
        let g = CellGrid::new(7.0);
        let last_col = (g.shape.cols - 1) as u32;
        for &lat in &[-60.0, -11.0, 0.0, 33.0, 71.0] {
            let row = g.shape.row_of(crate::deg_to_rad(lat)) as u32;
            let wrong_cell = row * g.shape.cols as u32 + last_col;
            // Points at lon ∈ (−180°, −176°]: inside the old wrapped
            // wedge, but column 0 by the exact path.
            for lon in [-179.9, -178.0, -176.5] {
                let p = GeoPoint::from_degrees(lat, lon);
                let e = crate::Ecef::from_geo(p, 550_000.0);
                let r = e.norm();
                let (sub, _) = e.to_geo();
                assert_eq!(g.cell_of(&sub) % g.shape.cols as u32, 0, "lon {lon}");
                assert!(
                    !g.contains_quick(wrong_cell, e.x, e.y, e.z, r),
                    "wrapped wedge accepted lon {lon} at lat {lat}"
                );
            }
        }
        // Conservativeness both ways along the seam, at the production
        // 3° bin as well: whatever the quick test accepts must agree
        // with the exact path.
        for &bin in &[3.0, 7.0] {
            let g = CellGrid::new(bin);
            for i in 0..360 {
                let lat = -89.9 + i as f64 * 0.5;
                if lat >= 90.0 {
                    break;
                }
                for lon in [-180.0, -179.999, 179.999, 180.0] {
                    let p = GeoPoint::from_degrees(lat, lon);
                    let e = crate::Ecef::from_geo(p, 550_000.0);
                    let r = e.norm();
                    let (sub, _) = e.to_geo();
                    let exact = g.cell_of(&sub);
                    for cell in 0..g.num_cells() as u32 {
                        if g.contains_quick(cell, e.x, e.y, e.z, r) {
                            assert_eq!(cell, exact, "lat {lat} lon {lon} bin {bin}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn cell_grid_remove_missing_id_is_noop() {
        let mut g = CellGrid::new(10.0);
        g.insert(4, 0);
        g.remove(9, 0);
        assert_eq!(g.len(), 1);
        assert_eq!(g.ids(0), &[4]);
    }
}
