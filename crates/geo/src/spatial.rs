//! A latitude/longitude bucket index for radius queries on the sphere.
//!
//! Snapshot construction must answer "which satellites can this ground
//! terminal see?" for tens of thousands of terminals against ~1,600
//! satellites, 96 times per simulated day. A satellite at 550 km with a 25°
//! minimum elevation covers a ground disc of radius ≈ 941 km (≈ 8.5° of
//! arc), so instead of testing every satellite we bucket sub-satellite
//! points into a fixed lat/lon grid and scan only the bins within the
//! angular window — including longitude wrap-around and the widening of the
//! window near the poles.

use crate::{GeoPoint, EARTH_RADIUS_M};

/// A spatial index mapping items (by `u32` id) to lat/lon buckets.
///
/// Build once per snapshot with the current sub-satellite points, then run
/// [`SphereGrid::query_radius`] per ground terminal.
#[derive(Debug, Clone)]
pub struct SphereGrid {
    /// Bin size in radians.
    bin_rad: f64,
    /// Number of latitude rows.
    rows: usize,
    /// Number of longitude columns.
    cols: usize,
    /// Bucket contents: `buckets[row * cols + col]` → items.
    buckets: Vec<Vec<(u32, GeoPoint)>>,
    len: usize,
}

impl SphereGrid {
    /// Create an empty grid with bins of `bin_deg` degrees.
    ///
    /// # Panics
    /// Panics if `bin_deg` is not in `(0, 90]`.
    pub fn new(bin_deg: f64) -> Self {
        assert!(
            bin_deg > 0.0 && bin_deg <= 90.0,
            "bin size must be in (0, 90] degrees"
        );
        let bin_rad = crate::deg_to_rad(bin_deg);
        let rows = (std::f64::consts::PI / bin_rad).ceil() as usize;
        let cols = (2.0 * std::f64::consts::PI / bin_rad).ceil() as usize;
        Self {
            bin_rad,
            rows,
            cols,
            buckets: vec![Vec::new(); rows * cols],
            len: 0,
        }
    }

    /// Number of items in the index.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the index holds no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn row_of(&self, lat: f64) -> usize {
        let r = ((lat + std::f64::consts::FRAC_PI_2) / self.bin_rad) as usize;
        r.min(self.rows - 1)
    }

    fn col_of(&self, lon: f64) -> usize {
        let c = ((lon + std::f64::consts::PI) / self.bin_rad) as usize;
        c.min(self.cols - 1)
    }

    /// Insert an item at a position.
    pub fn insert(&mut self, id: u32, pos: GeoPoint) {
        let idx = self.row_of(pos.lat()) * self.cols + self.col_of(pos.lon());
        self.buckets[idx].push((id, pos));
        self.len += 1;
    }

    /// Collect the ids of all items within `radius_m` (surface great-circle
    /// distance) of `center` into `out`. `out` is cleared first.
    ///
    /// The scan visits every bucket intersecting the bounding lat/lon window
    /// of the query disc and then applies the exact central-angle test, so
    /// results are exact (no false positives or negatives).
    pub fn query_radius(&self, center: GeoPoint, radius_m: f64, out: &mut Vec<u32>) {
        out.clear();
        let ang = radius_m / EARTH_RADIUS_M;
        if ang >= std::f64::consts::PI {
            // Whole sphere.
            for b in &self.buckets {
                out.extend(b.iter().map(|(id, _)| *id));
            }
            return;
        }
        let lat_lo = center.lat() - ang;
        let lat_hi = center.lat() + ang;
        let row_lo = self.row_of(lat_lo.max(-std::f64::consts::FRAC_PI_2));
        let row_hi = self.row_of(lat_hi.min(std::f64::consts::FRAC_PI_2));
        // If the window reaches a pole, longitude is unconstrained.
        let pole_touch = lat_lo <= -std::f64::consts::FRAC_PI_2 + 1e-12
            || lat_hi >= std::f64::consts::FRAC_PI_2 - 1e-12;

        for row in row_lo..=row_hi {
            let (col_range, wrap): (std::ops::RangeInclusive<usize>, bool) = if pole_touch {
                (0..=self.cols - 1, false)
            } else {
                // Longitude half-width widens by 1/cos(lat) at this row; use
                // the row edge closest to the pole for a conservative bound.
                let row_lat_lo = row as f64 * self.bin_rad - std::f64::consts::FRAC_PI_2;
                let row_lat_hi = row_lat_lo + self.bin_rad;
                let worst = row_lat_lo.abs().max(row_lat_hi.abs());
                let cosw = worst.cos();
                if cosw <= ang.sin() {
                    (0..=self.cols - 1, false)
                } else {
                    // Exact spherical bound: sin(dlon_max) = sin(ang)/cos(lat).
                    let dlon = (ang.sin() / cosw).clamp(-1.0, 1.0).asin() + self.bin_rad;
                    let c_lo = center.lon() - dlon;
                    let c_hi = center.lon() + dlon;
                    if c_hi - c_lo >= 2.0 * std::f64::consts::PI {
                        (0..=self.cols - 1, false)
                    } else {
                        let lo = self.col_of(crate::normalize_lon(c_lo));
                        let hi = self.col_of(crate::normalize_lon(c_hi));
                        if lo <= hi {
                            (lo..=hi, false)
                        } else {
                            (lo..=hi, true) // wraps past the date line
                        }
                    }
                }
            };
            let mut scan = |col: usize| {
                for (id, p) in &self.buckets[row * self.cols + col] {
                    if center.central_angle(p) <= ang {
                        out.push(*id);
                    }
                }
            };
            if wrap {
                let (lo, hi) = (*col_range.start(), *col_range.end());
                for col in lo..self.cols {
                    scan(col);
                }
                for col in 0..=hi {
                    scan(col);
                }
            } else {
                for col in col_range {
                    scan(col);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::destination_point;

    fn brute_force(items: &[(u32, GeoPoint)], center: GeoPoint, radius_m: f64) -> Vec<u32> {
        let ang = radius_m / EARTH_RADIUS_M;
        let mut v: Vec<u32> = items
            .iter()
            .filter(|(_, p)| center.central_angle(p) <= ang)
            .map(|(id, _)| *id)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn finds_nearby_item() {
        let mut g = SphereGrid::new(5.0);
        g.insert(1, GeoPoint::from_degrees(47.0, 8.0));
        g.insert(2, GeoPoint::from_degrees(-33.0, 151.0));
        let mut out = Vec::new();
        g.query_radius(GeoPoint::from_degrees(47.5, 8.5), 200_000.0, &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn wraps_across_date_line() {
        let mut g = SphereGrid::new(5.0);
        g.insert(7, GeoPoint::from_degrees(0.0, 179.5));
        let mut out = Vec::new();
        g.query_radius(GeoPoint::from_degrees(0.0, -179.5), 500_000.0, &mut out);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn handles_poles() {
        let mut g = SphereGrid::new(5.0);
        g.insert(3, GeoPoint::from_degrees(89.0, 10.0));
        g.insert(4, GeoPoint::from_degrees(89.0, -170.0));
        let mut out = Vec::new();
        g.query_radius(GeoPoint::from_degrees(88.0, 100.0), 600_000.0, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![3, 4]);
    }

    #[test]
    fn matches_brute_force_on_ring() {
        let mut g = SphereGrid::new(4.0);
        let center = GeoPoint::from_degrees(10.0, 20.0);
        let mut items = Vec::new();
        for i in 0..72 {
            let bearing = crate::deg_to_rad(i as f64 * 5.0);
            for (j, d) in [500_000.0, 900_000.0, 1_500_000.0].iter().enumerate() {
                let id = (i * 3 + j) as u32;
                let p = destination_point(center, bearing, *d);
                items.push((id, p));
                g.insert(id, p);
            }
        }
        let mut out = Vec::new();
        g.query_radius(center, 941_000.0, &mut out);
        out.sort_unstable();
        assert_eq!(out, brute_force(&items, center, 941_000.0));
    }

    #[test]
    fn whole_sphere_query_returns_everything() {
        let mut g = SphereGrid::new(10.0);
        for i in 0..50u32 {
            g.insert(
                i,
                GeoPoint::from_degrees(-80.0 + (i as f64) * 3.0, (i as f64) * 7.0 - 180.0),
            );
        }
        let mut out = Vec::new();
        g.query_radius(
            GeoPoint::from_degrees(0.0, 0.0),
            std::f64::consts::PI * EARTH_RADIUS_M,
            &mut out,
        );
        assert_eq!(out.len(), 50);
    }

    #[test]
    fn empty_grid_returns_nothing() {
        let g = SphereGrid::new(5.0);
        assert!(g.is_empty());
        let mut out = vec![99];
        g.query_radius(GeoPoint::from_degrees(0.0, 0.0), 1e7, &mut out);
        assert!(out.is_empty(), "out must be cleared");
    }
}
