//! Geographic point type (latitude / longitude on the sphere).

use crate::{deg_to_rad, normalize_lon, rad_to_deg};

/// A point on the Earth's surface, stored as latitude/longitude in radians.
///
/// Construction clamps latitude into `[-π/2, π/2]` and normalizes longitude
/// into `(-π, π]`, so a `GeoPoint` is always in canonical form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    lat: f64,
    lon: f64,
}

impl GeoPoint {
    /// Create from latitude/longitude in **radians**.
    #[inline]
    pub fn new(lat_rad: f64, lon_rad: f64) -> Self {
        let lat = lat_rad.clamp(-std::f64::consts::FRAC_PI_2, std::f64::consts::FRAC_PI_2);
        Self {
            lat,
            lon: normalize_lon(lon_rad),
        }
    }

    /// Create from latitude/longitude in **degrees**.
    #[inline]
    pub fn from_degrees(lat_deg: f64, lon_deg: f64) -> Self {
        Self::new(deg_to_rad(lat_deg), deg_to_rad(lon_deg))
    }

    /// Latitude in radians, in `[-π/2, π/2]`.
    #[inline]
    pub fn lat(&self) -> f64 {
        self.lat
    }

    /// Longitude in radians, in `(-π, π]`.
    #[inline]
    pub fn lon(&self) -> f64 {
        self.lon
    }

    /// Latitude in degrees.
    #[inline]
    pub fn lat_deg(&self) -> f64 {
        rad_to_deg(self.lat)
    }

    /// Longitude in degrees.
    #[inline]
    pub fn lon_deg(&self) -> f64 {
        rad_to_deg(self.lon)
    }

    /// The antipodal point.
    pub fn antipode(&self) -> Self {
        Self::new(-self.lat, self.lon + std::f64::consts::PI)
    }

    /// Central angle (radians) between two points along the great circle.
    ///
    /// Uses the haversine formulation, which is numerically stable for both
    /// nearby and antipodal points.
    pub fn central_angle(&self, other: &GeoPoint) -> f64 {
        let dlat = other.lat - self.lat;
        let dlon = other.lon - self.lon;
        let a = (dlat / 2.0).sin().powi(2)
            + self.lat.cos() * other.lat.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * a.sqrt().clamp(0.0, 1.0).asin()
    }
}

impl std::fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.4}°, {:.4}°)", self.lat_deg(), self.lon_deg())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_form() {
        let p = GeoPoint::from_degrees(95.0, 270.0);
        assert!((p.lat_deg() - 90.0).abs() < 1e-9, "lat clamped");
        assert!((p.lon_deg() + 90.0).abs() < 1e-9, "lon wrapped to -90");
    }

    #[test]
    fn central_angle_symmetry() {
        let a = GeoPoint::from_degrees(47.0, 8.0);
        let b = GeoPoint::from_degrees(-33.0, 151.0);
        assert!((a.central_angle(&b) - b.central_angle(&a)).abs() < 1e-14);
    }

    #[test]
    fn central_angle_zero_for_same_point() {
        let a = GeoPoint::from_degrees(10.0, 20.0);
        assert_eq!(a.central_angle(&a), 0.0);
    }

    #[test]
    fn central_angle_antipodal_is_pi() {
        let a = GeoPoint::from_degrees(0.0, 0.0);
        let b = a.antipode();
        assert!((a.central_angle(&b) - std::f64::consts::PI).abs() < 1e-9);
    }

    #[test]
    fn antipode_of_pole() {
        let north = GeoPoint::from_degrees(90.0, 0.0);
        let south = north.antipode();
        assert!((south.lat_deg() + 90.0).abs() < 1e-9);
    }
}
