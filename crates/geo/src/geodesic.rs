//! Great-circle (geodesic) computations on a spherical Earth.

use crate::{GeoPoint, EARTH_RADIUS_M};

/// Great-circle distance between two points along the Earth's surface,
/// in meters.
///
/// This is the "geodesic" distance the paper uses for the 2,000 km minimum
/// city-pair separation constraint.
pub fn great_circle_distance_m(a: GeoPoint, b: GeoPoint) -> f64 {
    EARTH_RADIUS_M * a.central_angle(&b)
}

/// Initial bearing (forward azimuth) from `a` towards `b`, radians
/// clockwise from North, in `[0, 2π)`.
pub fn initial_bearing_rad(a: GeoPoint, b: GeoPoint) -> f64 {
    let dlon = b.lon() - a.lon();
    let y = dlon.sin() * b.lat().cos();
    let x = a.lat().cos() * b.lat().sin() - a.lat().sin() * b.lat().cos() * dlon.cos();
    let theta = y.atan2(x);
    (theta + 2.0 * std::f64::consts::PI) % (2.0 * std::f64::consts::PI)
}

/// Point at fraction `f ∈ [0, 1]` of the great circle from `a` to `b`
/// (spherical linear interpolation).
///
/// Used to fly synthetic aircraft along great-circle routes. For
/// (near-)antipodal endpoints the great circle is ill-defined; we fall back
/// to interpolating through the midpoint at `a`'s longitude, which is
/// deterministic and adequate for synthetic route generation.
pub fn intermediate_point(a: GeoPoint, b: GeoPoint, f: f64) -> GeoPoint {
    let f = f.clamp(0.0, 1.0);
    let delta = a.central_angle(&b);
    if delta < 1e-12 {
        return a;
    }
    if (std::f64::consts::PI - delta).abs() < 1e-9 {
        // Antipodal: route over the pole on a's meridian.
        let via = GeoPoint::new(std::f64::consts::FRAC_PI_2, a.lon());
        return if f < 0.5 {
            intermediate_point(a, via, f * 2.0)
        } else {
            intermediate_point(via, b, (f - 0.5) * 2.0)
        };
    }
    let sin_delta = delta.sin();
    let c1 = ((1.0 - f) * delta).sin() / sin_delta;
    let c2 = (f * delta).sin() / sin_delta;
    let x = c1 * a.lat().cos() * a.lon().cos() + c2 * b.lat().cos() * b.lon().cos();
    let y = c1 * a.lat().cos() * a.lon().sin() + c2 * b.lat().cos() * b.lon().sin();
    let z = c1 * a.lat().sin() + c2 * b.lat().sin();
    GeoPoint::new(z.atan2((x * x + y * y).sqrt()), y.atan2(x))
}

/// Destination point reached by travelling `distance_m` meters from `start`
/// along initial bearing `bearing_rad` (clockwise from North).
pub fn destination_point(start: GeoPoint, bearing_rad: f64, distance_m: f64) -> GeoPoint {
    let delta = distance_m / EARTH_RADIUS_M;
    let lat2 = (start.lat().sin() * delta.cos()
        + start.lat().cos() * delta.sin() * bearing_rad.cos())
    .clamp(-1.0, 1.0)
    .asin();
    let lon2 = start.lon()
        + (bearing_rad.sin() * delta.sin() * start.lat().cos())
            .atan2(delta.cos() - start.lat().sin() * lat2.sin());
    GeoPoint::new(lat2, lon2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quarter_circumference() {
        let a = GeoPoint::from_degrees(0.0, 0.0);
        let b = GeoPoint::from_degrees(90.0, 0.0);
        let quarter = std::f64::consts::FRAC_PI_2 * EARTH_RADIUS_M;
        assert!((great_circle_distance_m(a, b) - quarter).abs() < 1.0);
    }

    #[test]
    fn known_city_distance() {
        // New York -> London is ~5,570 km.
        let nyc = GeoPoint::from_degrees(40.7128, -74.0060);
        let lon = GeoPoint::from_degrees(51.5074, -0.1278);
        let d = great_circle_distance_m(nyc, lon) / 1000.0;
        assert!((d - 5570.0).abs() < 30.0, "got {d}");
    }

    #[test]
    fn bearing_due_north() {
        let a = GeoPoint::from_degrees(0.0, 0.0);
        let b = GeoPoint::from_degrees(10.0, 0.0);
        assert!(initial_bearing_rad(a, b).abs() < 1e-9);
    }

    #[test]
    fn bearing_due_east_at_equator() {
        let a = GeoPoint::from_degrees(0.0, 0.0);
        let b = GeoPoint::from_degrees(0.0, 10.0);
        assert!((initial_bearing_rad(a, b) - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
    }

    #[test]
    fn intermediate_endpoints() {
        let a = GeoPoint::from_degrees(47.0, 8.0);
        let b = GeoPoint::from_degrees(-33.0, 151.0);
        let p0 = intermediate_point(a, b, 0.0);
        let p1 = intermediate_point(a, b, 1.0);
        assert!(a.central_angle(&p0) < 1e-9);
        assert!(b.central_angle(&p1) < 1e-9);
    }

    #[test]
    fn intermediate_midpoint_equidistant() {
        let a = GeoPoint::from_degrees(40.7, -74.0);
        let b = GeoPoint::from_degrees(51.5, -0.1);
        let m = intermediate_point(a, b, 0.5);
        let da = great_circle_distance_m(a, m);
        let db = great_circle_distance_m(m, b);
        assert!(
            (da - db).abs() < 1.0,
            "midpoint not equidistant: {da} vs {db}"
        );
    }

    #[test]
    fn destination_roundtrip() {
        let a = GeoPoint::from_degrees(47.0, 8.0);
        let bearing = initial_bearing_rad(a, GeoPoint::from_degrees(30.0, 60.0));
        let d = 3_000_000.0;
        let dest = destination_point(a, bearing, d);
        assert!((great_circle_distance_m(a, dest) - d).abs() < 1.0);
    }

    #[test]
    fn antipodal_interpolation_stays_on_sphere() {
        let a = GeoPoint::from_degrees(0.0, 0.0);
        let b = a.antipode();
        let m = intermediate_point(a, b, 0.5);
        // Midpoint of the pole-routed path is the North Pole.
        assert!((m.lat_deg() - 90.0).abs() < 1e-6);
    }
}
