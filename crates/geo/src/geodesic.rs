//! Great-circle (geodesic) computations on a spherical Earth.

use crate::{GeoPoint, EARTH_RADIUS_M};

/// Great-circle distance between two points along the Earth's surface,
/// in meters.
///
/// This is the "geodesic" distance the paper uses for the 2,000 km minimum
/// city-pair separation constraint.
pub fn great_circle_distance_m(a: GeoPoint, b: GeoPoint) -> f64 {
    EARTH_RADIUS_M * a.central_angle(&b)
}

/// Initial bearing (forward azimuth) from `a` towards `b`, radians
/// clockwise from North, in `[0, 2π)`.
pub fn initial_bearing_rad(a: GeoPoint, b: GeoPoint) -> f64 {
    let dlon = b.lon() - a.lon();
    let y = dlon.sin() * b.lat().cos();
    let x = a.lat().cos() * b.lat().sin() - a.lat().sin() * b.lat().cos() * dlon.cos();
    let theta = y.atan2(x);
    (theta + 2.0 * std::f64::consts::PI) % (2.0 * std::f64::consts::PI)
}

/// Point at fraction `f ∈ [0, 1]` of the great circle from `a` to `b`
/// (spherical linear interpolation).
///
/// Used to fly synthetic aircraft along great-circle routes. For
/// (near-)antipodal endpoints the great circle is ill-defined; we fall back
/// to interpolating through the midpoint at `a`'s longitude, which is
/// deterministic and adequate for synthetic route generation.
pub fn intermediate_point(a: GeoPoint, b: GeoPoint, f: f64) -> GeoPoint {
    let f = f.clamp(0.0, 1.0);
    let delta = a.central_angle(&b);
    if delta < 1e-12 {
        return a;
    }
    if (std::f64::consts::PI - delta).abs() < 1e-9 {
        // Antipodal: route over the pole on a's meridian.
        let via = GeoPoint::new(std::f64::consts::FRAC_PI_2, a.lon());
        return if f < 0.5 {
            intermediate_point(a, via, f * 2.0)
        } else {
            intermediate_point(via, b, (f - 0.5) * 2.0)
        };
    }
    let sin_delta = delta.sin();
    let c1 = ((1.0 - f) * delta).sin() / sin_delta;
    let c2 = (f * delta).sin() / sin_delta;
    let x = c1 * a.lat().cos() * a.lon().cos() + c2 * b.lat().cos() * b.lon().cos();
    let y = c1 * a.lat().cos() * a.lon().sin() + c2 * b.lat().cos() * b.lon().sin();
    let z = c1 * a.lat().sin() + c2 * b.lat().sin();
    GeoPoint::new(z.atan2((x * x + y * y).sqrt()), y.atan2(x))
}

/// Precomputed great-circle interpolation state for one fixed endpoint
/// pair.
///
/// [`GreatCircle::point_at`] replays [`intermediate_point`] bit-for-bit
/// while hoisting every endpoint-only term out of the per-call path: the
/// central angle and the endpoints' sines/cosines are computed once, by
/// the same expressions `intermediate_point` evaluates, so the per-call
/// arithmetic sees identical values in an identical order. Used to fly
/// synthetic aircraft along fixed routes without re-deriving the route
/// geometry every snapshot.
#[derive(Debug, Clone, Copy)]
pub struct GreatCircle {
    a: GeoPoint,
    b: GeoPoint,
    delta: f64,
    sin_delta: f64,
    cos_lat_a: f64,
    sin_lat_a: f64,
    cos_lon_a: f64,
    sin_lon_a: f64,
    cos_lat_b: f64,
    sin_lat_b: f64,
    cos_lon_b: f64,
    sin_lon_b: f64,
    /// Coincident or near-antipodal endpoints: delegate to the scalar
    /// fallback branches of [`intermediate_point`] verbatim.
    degenerate: bool,
}

impl GreatCircle {
    /// Precompute the route geometry from `a` to `b`.
    pub fn new(a: GeoPoint, b: GeoPoint) -> Self {
        let delta = a.central_angle(&b);
        let degenerate = delta < 1e-12 || (std::f64::consts::PI - delta).abs() < 1e-9;
        Self {
            a,
            b,
            delta,
            sin_delta: delta.sin(),
            cos_lat_a: a.lat().cos(),
            sin_lat_a: a.lat().sin(),
            cos_lon_a: a.lon().cos(),
            sin_lon_a: a.lon().sin(),
            cos_lat_b: b.lat().cos(),
            sin_lat_b: b.lat().sin(),
            cos_lon_b: b.lon().cos(),
            sin_lon_b: b.lon().sin(),
            degenerate,
        }
    }

    /// The route's endpoints `(a, b)`.
    pub fn endpoints(&self) -> (GeoPoint, GeoPoint) {
        (self.a, self.b)
    }

    /// Point at fraction `f ∈ [0, 1]` along the route — bitwise equal to
    /// `intermediate_point(a, b, f)`.
    // lint: hot-path
    pub fn point_at(&self, f: f64) -> GeoPoint {
        if self.degenerate {
            return intermediate_point(self.a, self.b, f);
        }
        let f = f.clamp(0.0, 1.0);
        let c1 = ((1.0 - f) * self.delta).sin() / self.sin_delta;
        let c2 = (f * self.delta).sin() / self.sin_delta;
        let x = c1 * self.cos_lat_a * self.cos_lon_a + c2 * self.cos_lat_b * self.cos_lon_b;
        let y = c1 * self.cos_lat_a * self.sin_lon_a + c2 * self.cos_lat_b * self.sin_lon_b;
        let z = c1 * self.sin_lat_a + c2 * self.sin_lat_b;
        GeoPoint::new(z.atan2((x * x + y * y).sqrt()), y.atan2(x))
    }
}

/// Destination point reached by travelling `distance_m` meters from `start`
/// along initial bearing `bearing_rad` (clockwise from North).
pub fn destination_point(start: GeoPoint, bearing_rad: f64, distance_m: f64) -> GeoPoint {
    let delta = distance_m / EARTH_RADIUS_M;
    let lat2 = (start.lat().sin() * delta.cos()
        + start.lat().cos() * delta.sin() * bearing_rad.cos())
    .clamp(-1.0, 1.0)
    .asin();
    let lon2 = start.lon()
        + (bearing_rad.sin() * delta.sin() * start.lat().cos())
            .atan2(delta.cos() - start.lat().sin() * lat2.sin());
    GeoPoint::new(lat2, lon2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quarter_circumference() {
        let a = GeoPoint::from_degrees(0.0, 0.0);
        let b = GeoPoint::from_degrees(90.0, 0.0);
        let quarter = std::f64::consts::FRAC_PI_2 * EARTH_RADIUS_M;
        assert!((great_circle_distance_m(a, b) - quarter).abs() < 1.0);
    }

    #[test]
    fn known_city_distance() {
        // New York -> London is ~5,570 km.
        let nyc = GeoPoint::from_degrees(40.7128, -74.0060);
        let lon = GeoPoint::from_degrees(51.5074, -0.1278);
        let d = great_circle_distance_m(nyc, lon) / 1000.0;
        assert!((d - 5570.0).abs() < 30.0, "got {d}");
    }

    #[test]
    fn bearing_due_north() {
        let a = GeoPoint::from_degrees(0.0, 0.0);
        let b = GeoPoint::from_degrees(10.0, 0.0);
        assert!(initial_bearing_rad(a, b).abs() < 1e-9);
    }

    #[test]
    fn bearing_due_east_at_equator() {
        let a = GeoPoint::from_degrees(0.0, 0.0);
        let b = GeoPoint::from_degrees(0.0, 10.0);
        assert!((initial_bearing_rad(a, b) - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
    }

    #[test]
    fn intermediate_endpoints() {
        let a = GeoPoint::from_degrees(47.0, 8.0);
        let b = GeoPoint::from_degrees(-33.0, 151.0);
        let p0 = intermediate_point(a, b, 0.0);
        let p1 = intermediate_point(a, b, 1.0);
        assert!(a.central_angle(&p0) < 1e-9);
        assert!(b.central_angle(&p1) < 1e-9);
    }

    #[test]
    fn intermediate_midpoint_equidistant() {
        let a = GeoPoint::from_degrees(40.7, -74.0);
        let b = GeoPoint::from_degrees(51.5, -0.1);
        let m = intermediate_point(a, b, 0.5);
        let da = great_circle_distance_m(a, m);
        let db = great_circle_distance_m(m, b);
        assert!(
            (da - db).abs() < 1.0,
            "midpoint not equidistant: {da} vs {db}"
        );
    }

    #[test]
    fn destination_roundtrip() {
        let a = GeoPoint::from_degrees(47.0, 8.0);
        let bearing = initial_bearing_rad(a, GeoPoint::from_degrees(30.0, 60.0));
        let d = 3_000_000.0;
        let dest = destination_point(a, bearing, d);
        assert!((great_circle_distance_m(a, dest) - d).abs() < 1.0);
    }

    #[test]
    fn great_circle_matches_intermediate_point_bitwise() {
        let pairs = [
            (
                GeoPoint::from_degrees(40.7, -74.0),
                GeoPoint::from_degrees(51.5, -0.1),
            ),
            (
                GeoPoint::from_degrees(-33.9, 151.2),
                GeoPoint::from_degrees(34.0, -118.2),
            ),
            (
                GeoPoint::from_degrees(1.35, 103.99),
                GeoPoint::from_degrees(-31.94, 115.97),
            ),
            // Degenerate: coincident and antipodal.
            (
                GeoPoint::from_degrees(10.0, 20.0),
                GeoPoint::from_degrees(10.0, 20.0),
            ),
            (
                GeoPoint::from_degrees(0.0, 0.0),
                GeoPoint::from_degrees(0.0, 0.0).antipode(),
            ),
        ];
        for (a, b) in pairs {
            let gc = GreatCircle::new(a, b);
            for k in 0..=20 {
                let f = k as f64 / 20.0;
                let fast = gc.point_at(f);
                let slow = intermediate_point(a, b, f);
                assert_eq!(
                    fast.lat().to_bits(),
                    slow.lat().to_bits(),
                    "lat bits at f={f}"
                );
                assert_eq!(
                    fast.lon().to_bits(),
                    slow.lon().to_bits(),
                    "lon bits at f={f}"
                );
            }
        }
    }

    #[test]
    fn antipodal_interpolation_stays_on_sphere() {
        let a = GeoPoint::from_degrees(0.0, 0.0);
        let b = a.antipode();
        let m = intermediate_point(a, b, 0.5);
        // Midpoint of the pole-routed path is the North Pole.
        assert!((m.lat_deg() - 90.0).abs() < 1e-6);
    }
}
