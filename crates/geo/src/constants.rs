//! Physical constants shared across the workspace.

/// Mean Earth radius in meters (spherical Earth model).
///
/// The IUGG mean radius. All geodesic and orbital computations in this
/// workspace use a spherical Earth with this radius, matching the modelling
/// level of the paper and of the LEO-simulation literature (Hypatia,
/// StarPerf) it builds on.
pub const EARTH_RADIUS_M: f64 = 6_371_000.0;

/// Speed of light in vacuum, meters per second.
///
/// Both radio ground–satellite links and laser inter-satellite links
/// propagate at `c`; terrestrial fiber is modelled at `2/3 · c` where used.
pub const SPEED_OF_LIGHT_M_S: f64 = 299_792_458.0;

/// Altitude of the geostationary orbit above Earth's surface, meters.
///
/// Used for the GSO-arc avoidance analysis (paper §7, Fig. 9): LEO
/// up/down-links near the Equator must maintain a minimum angular separation
/// from the bore-sight of GSO ground stations.
pub const GSO_ALTITUDE_M: f64 = 35_786_000.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    // A typo-guard on literal constants is intentionally a constant
    // assertion.
    #[allow(clippy::assertions_on_constants)]
    fn constants_sane() {
        assert!(EARTH_RADIUS_M > 6.3e6 && EARTH_RADIUS_M < 6.4e6);
        assert!(SPEED_OF_LIGHT_M_S > 2.99e8 && SPEED_OF_LIGHT_M_S < 3.0e8);
        assert!(GSO_ALTITUDE_M > 3.5e7 && GSO_ALTITUDE_M < 3.6e7);
    }
}
