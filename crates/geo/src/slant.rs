//! Ground-terminal ↔ satellite slant-path geometry.
//!
//! A ground terminal (GT) can use a satellite only if the satellite appears
//! sufficiently above the local horizon: the **elevation angle** must be at
//! least the constellation's minimum elevation `e` (25° for Starlink, 30°
//! for Kuiper in the paper). These helpers convert between elevation
//! constraints, ground coverage radii, and slant ranges.

use crate::{Ecef, GeoPoint, EARTH_RADIUS_M};

/// Elevation angle (radians) of a satellite at ECEF position `sat` as seen
/// from ground point `gt` (on the surface).
///
/// Returns a value in `[-π/2, π/2]`; negative values mean the satellite is
/// below the horizon.
pub fn elevation_angle_rad(gt: GeoPoint, sat: &Ecef) -> f64 {
    let g = Ecef::from_geo(gt, 0.0);
    let to_sat = g.to_vector(sat);
    let range = to_sat.norm();
    if range == 0.0 {
        return std::f64::consts::FRAC_PI_2;
    }
    // Angle between the local vertical (direction of g) and the line of
    // sight; elevation is its complement.
    let cos_zenith = g.dot(&to_sat) / (g.norm() * range);
    std::f64::consts::FRAC_PI_2 - cos_zenith.clamp(-1.0, 1.0).acos()
}

/// True iff the satellite is visible from `gt` with elevation at least
/// `min_elev_rad`.
#[inline]
pub fn visible_at_elevation(gt: GeoPoint, sat: &Ecef, min_elev_rad: f64) -> bool {
    elevation_angle_rad(gt, sat) >= min_elev_rad
}

/// Slant range (meters) from a surface point to a satellite.
#[inline]
pub fn slant_range_m(gt: GeoPoint, sat: &Ecef) -> f64 {
    Ecef::from_geo(gt, 0.0).distance(sat)
}

/// Ground coverage radius (meters along the surface) of a satellite at
/// altitude `alt_m`, for minimum elevation `min_elev_rad`.
///
/// From the spherical triangle Earth-centre / GT / satellite: the Earth
/// central angle between the sub-satellite point and the farthest usable GT
/// is `ψ = acos(Re/(Re+h)·cos e) − e`, and the coverage radius is `Re·ψ`.
///
/// For Starlink (h = 550 km, e = 25°) this yields ≈ 941 km, matching the
/// paper. (The paper quotes 1,091 km for Kuiper, which corresponds to the
/// flat-Earth approximation `h/tan e`; the spherical value for h = 630 km,
/// e = 30° is ≈ 890 km. We use the physically correct elevation-angle test
/// everywhere, so this constant is informational.)
pub fn coverage_radius_m(alt_m: f64, min_elev_rad: f64) -> f64 {
    let ratio = EARTH_RADIUS_M / (EARTH_RADIUS_M + alt_m);
    let psi = (ratio * min_elev_rad.cos()).clamp(-1.0, 1.0).acos() - min_elev_rad;
    EARTH_RADIUS_M * psi
}

/// Maximum slant range (meters) from a GT to a satellite at altitude
/// `alt_m` seen at exactly the minimum elevation `min_elev_rad`.
///
/// Law of cosines in the same spherical triangle. This bounds the radio
/// path length of the longest usable GT–satellite hop.
pub fn max_slant_range_m(alt_m: f64, min_elev_rad: f64) -> f64 {
    let re = EARTH_RADIUS_M;
    let rs = re + alt_m;
    let ratio = re / rs;
    let psi = (ratio * min_elev_rad.cos()).clamp(-1.0, 1.0).acos() - min_elev_rad;
    (re * re + rs * rs - 2.0 * re * rs * psi.cos()).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deg_to_rad;

    #[test]
    fn overhead_satellite_at_90_degrees() {
        let gt = GeoPoint::from_degrees(10.0, 20.0);
        let sat = Ecef::from_geo(gt, 550_000.0);
        let e = elevation_angle_rad(gt, &sat);
        assert!((e - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
    }

    #[test]
    fn opposite_side_below_horizon() {
        let gt = GeoPoint::from_degrees(0.0, 0.0);
        let sat = Ecef::from_geo(GeoPoint::from_degrees(0.0, 180.0), 550_000.0);
        assert!(elevation_angle_rad(gt, &sat) < 0.0);
    }

    #[test]
    fn starlink_coverage_radius_matches_paper() {
        let r_km = coverage_radius_m(550_000.0, deg_to_rad(25.0)) / 1000.0;
        assert!(
            (r_km - 941.0).abs() < 5.0,
            "got {r_km} km, paper says 941 km"
        );
    }

    #[test]
    fn coverage_shrinks_with_elevation() {
        let lo = coverage_radius_m(550_000.0, deg_to_rad(25.0));
        let hi = coverage_radius_m(550_000.0, deg_to_rad(40.0));
        assert!(hi < lo);
    }

    #[test]
    fn coverage_grows_with_altitude() {
        let low = coverage_radius_m(550_000.0, deg_to_rad(25.0));
        let high = coverage_radius_m(1_200_000.0, deg_to_rad(25.0));
        assert!(high > low);
    }

    #[test]
    fn slant_range_bounds() {
        // Satellite straight overhead: slant range = altitude.
        let gt = GeoPoint::from_degrees(0.0, 0.0);
        let sat = Ecef::from_geo(gt, 550_000.0);
        assert!((slant_range_m(gt, &sat) - 550_000.0).abs() < 1.0);
        // Max slant range exceeds altitude but is below altitude + coverage.
        let max = max_slant_range_m(550_000.0, deg_to_rad(25.0));
        assert!(max > 550_000.0);
        assert!(max < 550_000.0 + coverage_radius_m(550_000.0, deg_to_rad(25.0)) * 1.5);
    }

    #[test]
    fn visibility_consistent_with_coverage_radius() {
        // A satellite whose sub-point is just inside the coverage radius is
        // visible; just outside is not.
        let gt = GeoPoint::from_degrees(0.0, 0.0);
        let e = deg_to_rad(25.0);
        let r = coverage_radius_m(550_000.0, e);
        let inside = crate::destination_point(gt, 0.0, r * 0.99);
        let outside = crate::destination_point(gt, 0.0, r * 1.01);
        let sat_in = Ecef::from_geo(inside, 550_000.0);
        let sat_out = Ecef::from_geo(outside, 550_000.0);
        assert!(visible_at_elevation(gt, &sat_in, e));
        assert!(!visible_at_elevation(gt, &sat_out, e));
    }
}
