//! Ground-terminal ↔ satellite slant-path geometry.
//!
//! A ground terminal (GT) can use a satellite only if the satellite appears
//! sufficiently above the local horizon: the **elevation angle** must be at
//! least the constellation's minimum elevation `e` (25° for Starlink, 30°
//! for Kuiper in the paper). These helpers convert between elevation
//! constraints, ground coverage radii, and slant ranges.

use crate::{Ecef, GeoPoint, EARTH_RADIUS_M};

/// Elevation angle (radians) of a satellite at ECEF position `sat` as seen
/// from ground point `gt` (on the surface).
///
/// Returns a value in `[-π/2, π/2]`; negative values mean the satellite is
/// below the horizon.
pub fn elevation_angle_rad(gt: GeoPoint, sat: &Ecef) -> f64 {
    let g = Ecef::from_geo(gt, 0.0);
    let to_sat = g.to_vector(sat);
    let range = to_sat.norm();
    if range == 0.0 {
        return std::f64::consts::FRAC_PI_2;
    }
    // Angle between the local vertical (direction of g) and the line of
    // sight; elevation is its complement.
    let cos_zenith = g.dot(&to_sat) / (g.norm() * range);
    std::f64::consts::FRAC_PI_2 - cos_zenith.clamp(-1.0, 1.0).acos()
}

/// True iff the satellite is visible from `gt` with elevation at least
/// `min_elev_rad`.
#[inline]
pub fn visible_at_elevation(gt: GeoPoint, sat: &Ecef, min_elev_rad: f64) -> bool {
    elevation_angle_rad(gt, sat) >= min_elev_rad
}

/// Slant range (meters) from a surface point to a satellite.
#[inline]
pub fn slant_range_m(gt: GeoPoint, sat: &Ecef) -> f64 {
    Ecef::from_geo(gt, 0.0).distance(sat)
}

/// Batched visibility test over struct-of-arrays satellite positions.
///
/// For each candidate id, computes the elevation angle and slant range of
/// the satellite at `(xs[id], ys[id], zs[id])` as seen from the ground
/// point whose surface ECEF position is `g` (with `g_norm == g.norm()`
/// precomputed), and calls `emit(id, range_m, elev_rad)` for every
/// candidate at or above `min_elev_rad`.
///
/// The arithmetic replays [`elevation_angle_rad`] and [`slant_range_m`]
/// operation-for-operation (the slant range *is* the line-of-sight vector
/// norm both functions share), so membership, ranges, and elevations are
/// bitwise identical to the scalar helpers — only the per-candidate
/// `Ecef::from_geo` reconstruction of the ground point is hoisted out of
/// the loop. Snapshot construction relies on this equivalence.
///
/// Internally, candidates whose cosine-of-zenith is below
/// `sin(min_elev_rad)` by more than a safety margin are rejected with a
/// square-compare only (no `sqrt`/`acos`). The margin (`1e-9` in cosine
/// space) exceeds the few-ulp rounding of both tests by seven orders of
/// magnitude, so the shortcut can only drop candidates the exact test
/// would also reject; everything near the boundary falls through to the
/// exact test above.
// lint: hot-path
pub fn batch_visible_from(
    g: &Ecef,
    g_norm: f64,
    sats: (&[f64], &[f64], &[f64]),
    candidates: &[u32],
    min_elev_rad: f64,
    emit: &mut impl FnMut(u32, f64, f64),
) {
    VisibilityScan::new(min_elev_rad).scan(g, g_norm, sats, candidates, emit)
}

/// Precomputed state for repeated [`batch_visible_from`]-style scans at a
/// fixed minimum elevation.
///
/// Snapshot construction tests hundreds of ground points (each over
/// several candidate slices) against the same elevation threshold every
/// timestep; this hoists the threshold's `sin` out of all of them. A
/// scan emits exactly what `batch_visible_from` emits — same membership,
/// same bits, in candidate order — so callers may split one candidate
/// set across any number of `scan` calls (e.g. one per spatial-index
/// row segment) without affecting the result.
#[derive(Debug, Clone, Copy)]
pub struct VisibilityScan {
    min_elev_rad: f64,
    /// `sin(min_elev_rad)` minus the quick-reject safety margin.
    quick: f64,
}

impl VisibilityScan {
    /// Precompute the quick-reject threshold for `min_elev_rad`.
    pub fn new(min_elev_rad: f64) -> Self {
        // elev ≥ e  ⟺  cos(zenith) ≥ sin(e); quick-reject below the margin.
        Self {
            min_elev_rad,
            quick: min_elev_rad.sin() - 1e-9,
        }
    }

    /// Run the batched visibility test over one candidate slice (see
    /// [`batch_visible_from`] for the contract). `(xs, ys, zs)` are the
    /// parallel satellite ECEF component arrays (e.g. a constellation
    /// snapshot's `xyz()`).
    // lint: hot-path
    pub fn scan(
        &self,
        g: &Ecef,
        g_norm: f64,
        (xs, ys, zs): (&[f64], &[f64], &[f64]),
        candidates: &[u32],
        emit: &mut impl FnMut(u32, f64, f64),
    ) {
        let quick = self.quick;
        let quick_sq = (quick * g_norm) * (quick * g_norm);
        for &id in candidates {
            let i = id as usize;
            let dx = xs[i] - g.x;
            let dy = ys[i] - g.y;
            let dz = zs[i] - g.z;
            let range_sq = dx * dx + dy * dy + dz * dz;
            let dot = g.x * dx + g.y * dy + g.z * dz;
            if quick > 0.0 && range_sq > 0.0 && (dot <= 0.0 || dot * dot < quick_sq * range_sq) {
                continue;
            }
            let range = range_sq.sqrt();
            let elev = if range == 0.0 {
                std::f64::consts::FRAC_PI_2
            } else {
                let cos_zenith = dot / (g_norm * range);
                std::f64::consts::FRAC_PI_2 - cos_zenith.clamp(-1.0, 1.0).acos()
            };
            if elev >= self.min_elev_rad {
                emit(id, range, elev);
            }
        }
    }
}

/// Ground coverage radius (meters along the surface) of a satellite at
/// altitude `alt_m`, for minimum elevation `min_elev_rad`.
///
/// From the spherical triangle Earth-centre / GT / satellite: the Earth
/// central angle between the sub-satellite point and the farthest usable GT
/// is `ψ = acos(Re/(Re+h)·cos e) − e`, and the coverage radius is `Re·ψ`.
///
/// For Starlink (h = 550 km, e = 25°) this yields ≈ 941 km, matching the
/// paper. (The paper quotes 1,091 km for Kuiper, which corresponds to the
/// flat-Earth approximation `h/tan e`; the spherical value for h = 630 km,
/// e = 30° is ≈ 890 km. We use the physically correct elevation-angle test
/// everywhere, so this constant is informational.)
pub fn coverage_radius_m(alt_m: f64, min_elev_rad: f64) -> f64 {
    let ratio = EARTH_RADIUS_M / (EARTH_RADIUS_M + alt_m);
    let psi = (ratio * min_elev_rad.cos()).clamp(-1.0, 1.0).acos() - min_elev_rad;
    EARTH_RADIUS_M * psi
}

/// Maximum slant range (meters) from a GT to a satellite at altitude
/// `alt_m` seen at exactly the minimum elevation `min_elev_rad`.
///
/// Law of cosines in the same spherical triangle. This bounds the radio
/// path length of the longest usable GT–satellite hop.
pub fn max_slant_range_m(alt_m: f64, min_elev_rad: f64) -> f64 {
    let re = EARTH_RADIUS_M;
    let rs = re + alt_m;
    let ratio = re / rs;
    let psi = (ratio * min_elev_rad.cos()).clamp(-1.0, 1.0).acos() - min_elev_rad;
    (re * re + rs * rs - 2.0 * re * rs * psi.cos()).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deg_to_rad;

    #[test]
    fn overhead_satellite_at_90_degrees() {
        let gt = GeoPoint::from_degrees(10.0, 20.0);
        let sat = Ecef::from_geo(gt, 550_000.0);
        let e = elevation_angle_rad(gt, &sat);
        assert!((e - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
    }

    #[test]
    fn opposite_side_below_horizon() {
        let gt = GeoPoint::from_degrees(0.0, 0.0);
        let sat = Ecef::from_geo(GeoPoint::from_degrees(0.0, 180.0), 550_000.0);
        assert!(elevation_angle_rad(gt, &sat) < 0.0);
    }

    #[test]
    fn starlink_coverage_radius_matches_paper() {
        let r_km = coverage_radius_m(550_000.0, deg_to_rad(25.0)) / 1000.0;
        assert!(
            (r_km - 941.0).abs() < 5.0,
            "got {r_km} km, paper says 941 km"
        );
    }

    #[test]
    fn coverage_shrinks_with_elevation() {
        let lo = coverage_radius_m(550_000.0, deg_to_rad(25.0));
        let hi = coverage_radius_m(550_000.0, deg_to_rad(40.0));
        assert!(hi < lo);
    }

    #[test]
    fn coverage_grows_with_altitude() {
        let low = coverage_radius_m(550_000.0, deg_to_rad(25.0));
        let high = coverage_radius_m(1_200_000.0, deg_to_rad(25.0));
        assert!(high > low);
    }

    #[test]
    fn slant_range_bounds() {
        // Satellite straight overhead: slant range = altitude.
        let gt = GeoPoint::from_degrees(0.0, 0.0);
        let sat = Ecef::from_geo(gt, 550_000.0);
        assert!((slant_range_m(gt, &sat) - 550_000.0).abs() < 1.0);
        // Max slant range exceeds altitude but is below altitude + coverage.
        let max = max_slant_range_m(550_000.0, deg_to_rad(25.0));
        assert!(max > 550_000.0);
        assert!(max < 550_000.0 + coverage_radius_m(550_000.0, deg_to_rad(25.0)) * 1.5);
    }

    #[test]
    fn batch_visible_matches_scalar_helpers_bitwise() {
        let gt = GeoPoint::from_degrees(40.7, -74.0);
        let g = Ecef::from_geo(gt, 0.0);
        let g_norm = g.norm();
        let min_elev = deg_to_rad(25.0);
        let (mut xs, mut ys, mut zs) = (Vec::new(), Vec::new(), Vec::new());
        let mut sats = Vec::new();
        for i in 0..120 {
            let p = GeoPoint::from_degrees(
                40.7 + (i as f64 - 60.0) * 0.4,
                -74.0 + (i as f64 % 17.0) * 2.5,
            );
            let s = Ecef::from_geo(p, 550_000.0 + (i as f64) * 100.0);
            xs.push(s.x);
            ys.push(s.y);
            zs.push(s.z);
            sats.push(s);
        }
        let candidates: Vec<u32> = (0..sats.len() as u32).collect();
        let mut got = Vec::new();
        batch_visible_from(
            &g,
            g_norm,
            (&xs, &ys, &zs),
            &candidates,
            min_elev,
            &mut |id, r, e| {
                got.push((id, r, e));
            },
        );
        let expect: Vec<(u32, f64, f64)> = candidates
            .iter()
            .filter(|&&id| visible_at_elevation(gt, &sats[id as usize], min_elev))
            .map(|&id| {
                (
                    id,
                    slant_range_m(gt, &sats[id as usize]),
                    elevation_angle_rad(gt, &sats[id as usize]),
                )
            })
            .collect();
        assert!(!expect.is_empty(), "test must exercise visible satellites");
        assert!(expect.len() < candidates.len(), "and invisible ones");
        assert_eq!(got.len(), expect.len());
        for ((gi, gr, ge), (ei, er, ee)) in got.iter().zip(&expect) {
            assert_eq!(gi, ei);
            assert_eq!(gr.to_bits(), er.to_bits(), "range bits for sat {gi}");
            assert_eq!(ge.to_bits(), ee.to_bits(), "elev bits for sat {gi}");
        }
    }

    #[test]
    fn visibility_consistent_with_coverage_radius() {
        // A satellite whose sub-point is just inside the coverage radius is
        // visible; just outside is not.
        let gt = GeoPoint::from_degrees(0.0, 0.0);
        let e = deg_to_rad(25.0);
        let r = coverage_radius_m(550_000.0, e);
        let inside = crate::destination_point(gt, 0.0, r * 0.99);
        let outside = crate::destination_point(gt, 0.0, r * 1.01);
        let sat_in = Ecef::from_geo(inside, 550_000.0);
        let sat_out = Ecef::from_geo(outside, 550_000.0);
        assert!(visible_at_elevation(gt, &sat_in, e));
        assert!(!visible_at_elevation(gt, &sat_out, e));
    }
}
