//! Property-based tests for the geodesy substrate (on
//! `leo_util::check`; 256 cases per property, ≥ the proptest originals).

use leo_geo::*;
use leo_util::check::{check, Gen};
use leo_util::{check_assert, check_assert_eq, check_assume};

fn arb_point(g: &mut Gen) -> GeoPoint {
    GeoPoint::from_degrees(g.f64(-89.9..89.9), g.f64(-179.9..179.9))
}

/// Great-circle distance is symmetric and bounded by half the
/// circumference.
#[test]
fn distance_symmetric_and_bounded() {
    check("distance_symmetric_and_bounded", |g| {
        let (a, b) = (arb_point(g), arb_point(g));
        let d1 = great_circle_distance_m(a, b);
        let d2 = great_circle_distance_m(b, a);
        check_assert!((d1 - d2).abs() < 1e-6);
        check_assert!(d1 >= 0.0);
        check_assert!(d1 <= std::f64::consts::PI * EARTH_RADIUS_M + 1e-6);
        Ok(())
    });
}

/// Triangle inequality on the sphere.
#[test]
fn triangle_inequality() {
    check("triangle_inequality", |g| {
        let (a, b, c) = (arb_point(g), arb_point(g), arb_point(g));
        let ab = great_circle_distance_m(a, b);
        let bc = great_circle_distance_m(b, c);
        let ac = great_circle_distance_m(a, c);
        check_assert!(ac <= ab + bc + 1e-6);
        Ok(())
    });
}

/// ECEF round-trips preserve position and altitude.
#[test]
fn ecef_roundtrip() {
    check("ecef_roundtrip", |g| {
        let p = arb_point(g);
        let alt = g.f64(0.0..2_000_000.0);
        let (q, a) = Ecef::from_geo(p, alt).to_geo();
        check_assert!(p.central_angle(&q) * EARTH_RADIUS_M < 1e-3);
        check_assert!((a - alt).abs() < 1e-3);
        Ok(())
    });
}

/// Points along a great circle divide the distance proportionally.
#[test]
fn interpolation_is_proportional() {
    check("interpolation_is_proportional", |g| {
        let (a, b) = (arb_point(g), arb_point(g));
        let f = g.f64(0.0..1.0);
        let total = great_circle_distance_m(a, b);
        // Skip near-antipodal pairs, where the great circle is degenerate.
        check_assume!(total < 0.98 * std::f64::consts::PI * EARTH_RADIUS_M);
        check_assume!(total > 1.0);
        let m = intermediate_point(a, b, f);
        let da = great_circle_distance_m(a, m);
        check_assert!(
            (da - f * total).abs() < 1.0,
            "da={da}, expected {}",
            f * total
        );
        Ok(())
    });
}

/// destination_point travels exactly the requested distance.
#[test]
fn destination_distance_exact() {
    check("destination_distance_exact", |g| {
        let a = arb_point(g);
        let bearing = g.f64(0.0..std::f64::consts::TAU);
        let d = g.f64(1.0..10_000_000.0);
        let dest = destination_point(a, bearing, d);
        check_assert!((great_circle_distance_m(a, dest) - d).abs() < 1.0);
        Ok(())
    });
}

/// The elevation-angle visibility test agrees with the analytic
/// coverage radius for satellites at the same altitude.
#[test]
fn visibility_matches_coverage_radius() {
    check("visibility_matches_coverage_radius", |g| {
        let gt = arb_point(g);
        let bearing = g.f64(0.0..std::f64::consts::TAU);
        let frac = g.f64(0.0..2.0);
        let elev_deg = g.f64(10.0..60.0);
        let alt = 550_000.0;
        let e = deg_to_rad(elev_deg);
        let r = coverage_radius_m(alt, e);
        // Stay away from the boundary where float noise flips the result.
        check_assume!((frac - 1.0).abs() > 0.01);
        let sub = destination_point(gt, bearing, r * frac);
        let sat = Ecef::from_geo(sub, alt);
        let visible = visible_at_elevation(gt, &sat, e);
        check_assert_eq!(visible, frac < 1.0);
        Ok(())
    });
}

/// SphereGrid query matches a brute-force scan.
#[test]
fn grid_matches_brute_force() {
    check("grid_matches_brute_force", |g| {
        let pts = g.vec(1..120, arb_point);
        let center = arb_point(g);
        let radius_km = g.f64(10.0..5000.0);
        let mut grid = SphereGrid::new(5.0);
        for (i, p) in pts.iter().enumerate() {
            grid.insert(i as u32, *p);
        }
        let radius = radius_km * 1000.0;
        let mut got = Vec::new();
        grid.query_radius(center, radius, &mut got);
        got.sort_unstable();
        let ang = radius / EARTH_RADIUS_M;
        let mut want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| center.central_angle(p) <= ang)
            .map(|(i, _)| i as u32)
            .collect();
        want.sort_unstable();
        check_assert_eq!(got, want);
        Ok(())
    });
}
