//! Property-based tests for the geodesy substrate.

use leo_geo::*;
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = GeoPoint> {
    (-89.9f64..89.9, -179.9f64..179.9).prop_map(|(lat, lon)| GeoPoint::from_degrees(lat, lon))
}

proptest! {
    /// Great-circle distance is symmetric and bounded by half the
    /// circumference.
    #[test]
    fn distance_symmetric_and_bounded(a in arb_point(), b in arb_point()) {
        let d1 = great_circle_distance_m(a, b);
        let d2 = great_circle_distance_m(b, a);
        prop_assert!((d1 - d2).abs() < 1e-6);
        prop_assert!(d1 >= 0.0);
        prop_assert!(d1 <= std::f64::consts::PI * EARTH_RADIUS_M + 1e-6);
    }

    /// Triangle inequality on the sphere.
    #[test]
    fn triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
        let ab = great_circle_distance_m(a, b);
        let bc = great_circle_distance_m(b, c);
        let ac = great_circle_distance_m(a, c);
        prop_assert!(ac <= ab + bc + 1e-6);
    }

    /// ECEF round-trips preserve position and altitude.
    #[test]
    fn ecef_roundtrip(p in arb_point(), alt in 0.0f64..2_000_000.0) {
        let (q, a) = Ecef::from_geo(p, alt).to_geo();
        prop_assert!(p.central_angle(&q) * EARTH_RADIUS_M < 1e-3);
        prop_assert!((a - alt).abs() < 1e-3);
    }

    /// Points along a great circle divide the distance proportionally.
    #[test]
    fn interpolation_is_proportional(a in arb_point(), b in arb_point(), f in 0.0f64..1.0) {
        let total = great_circle_distance_m(a, b);
        // Skip near-antipodal pairs, where the great circle is degenerate.
        prop_assume!(total < 0.98 * std::f64::consts::PI * EARTH_RADIUS_M);
        prop_assume!(total > 1.0);
        let m = intermediate_point(a, b, f);
        let da = great_circle_distance_m(a, m);
        prop_assert!((da - f * total).abs() < 1.0, "da={da}, expected {}", f * total);
    }

    /// destination_point travels exactly the requested distance.
    #[test]
    fn destination_distance_exact(
        a in arb_point(),
        bearing in 0.0f64..std::f64::consts::TAU,
        d in 1.0f64..10_000_000.0,
    ) {
        let dest = destination_point(a, bearing, d);
        prop_assert!((great_circle_distance_m(a, dest) - d).abs() < 1.0);
    }

    /// The elevation-angle visibility test agrees with the analytic
    /// coverage radius for satellites at the same altitude.
    #[test]
    fn visibility_matches_coverage_radius(
        gt in arb_point(),
        bearing in 0.0f64..std::f64::consts::TAU,
        frac in 0.0f64..2.0,
        elev_deg in 10.0f64..60.0,
    ) {
        let alt = 550_000.0;
        let e = deg_to_rad(elev_deg);
        let r = coverage_radius_m(alt, e);
        // Stay away from the boundary where float noise flips the result.
        prop_assume!((frac - 1.0).abs() > 0.01);
        let sub = destination_point(gt, bearing, r * frac);
        let sat = Ecef::from_geo(sub, alt);
        let visible = visible_at_elevation(gt, &sat, e);
        prop_assert_eq!(visible, frac < 1.0);
    }

    /// SphereGrid query matches a brute-force scan.
    #[test]
    fn grid_matches_brute_force(
        pts in proptest::collection::vec(arb_point(), 1..120),
        center in arb_point(),
        radius_km in 10.0f64..5000.0,
    ) {
        let mut grid = SphereGrid::new(5.0);
        for (i, p) in pts.iter().enumerate() {
            grid.insert(i as u32, *p);
        }
        let radius = radius_km * 1000.0;
        let mut got = Vec::new();
        grid.query_radius(center, radius, &mut got);
        got.sort_unstable();
        let ang = radius / EARTH_RADIUS_M;
        let mut want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| center.central_angle(p) <= ang)
            .map(|(i, _)| i as u32)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
