//! Resilience to weather (paper §6, Figs. 6–8).
//!
//! Per the paper's model: attenuation applies only to the radio
//! GT↔satellite hops (lasers fly above the weather); BP paths suffer the
//! **worst** attenuation across every up/down hop of the zig-zag, while
//! ISL paths suffer only the worse of their first and last hops. Signal
//! regeneration at each GT is assumed (so attenuations don't multiply
//! along the path), and free-space path loss is excluded by design.

use crate::metrics::{Distribution, TailQuantile};
use crate::snapshot::{EdgeKind, Mode, NetworkSnapshot, StudyContext};
use leo_atmo::{AttenuationModel, Climatology, SlantPath, WeatherProcess};
use leo_graph::{with_thread_workspace, Path};
use leo_util::span;
use leo_util::telemetry::{Heartbeat, MetricSeries};

/// Attenuation of one link of a path at a point in time / exceedance.
fn link_attenuation_db(
    snap: &NetworkSnapshot,
    path: &Path,
    hop: usize,
    model: &AttenuationModel,
    mode: AttenMode,
    uplink_ghz: f64,
    downlink_ghz: f64,
) -> Option<f64> {
    let e = path.edges[hop];
    let EdgeKind::UpDown {
        ground,
        sat: _,
        elevation_rad,
    } = snap.edges[e as usize]
    else {
        return None; // laser ISLs are weather-immune
    };
    // Direction: if the path enters the edge at the ground node, this hop
    // transmits up; otherwise down.
    let from = path.nodes[hop];
    let freq = if from == ground {
        uplink_ghz
    } else {
        downlink_ghz
    };
    let site = snap
        .ground_position(ground)
        // lint: allow(unwrap-in-lib) UpDown edges reference a ground node with a position by snapshot construction
        .expect("ground node has position");
    let slant = SlantPath {
        site,
        elevation_rad,
        frequency_ghz: freq,
    };
    Some(match mode {
        AttenMode::Exceedance(p) => model.total_attenuation_db(&slant, p),
        AttenMode::Realized(w, t) => w.attenuation_db(model, &slant, t),
    })
}

/// How to evaluate attenuation.
#[derive(Debug, Clone, Copy)]
enum AttenMode {
    /// Analytic value exceeded `p` percent of the time.
    Exceedance(f64),
    /// Realized stochastic weather at time `t`.
    Realized(WeatherProcess, f64),
}

fn worst_link_db(
    snap: &NetworkSnapshot,
    path: &Path,
    model: &AttenuationModel,
    mode: AttenMode,
    up: f64,
    down: f64,
) -> f64 {
    let mut worst = 0.0f64;
    for hop in 0..path.edges.len() {
        if let Some(a) = link_attenuation_db(snap, path, hop, model, mode, up, down) {
            worst = worst.max(a);
        }
    }
    worst
}

/// Fig. 6 output: per-pair 99.5th-percentile worst-link attenuation for
/// BP and ISL connectivity.
#[derive(Debug, Clone)]
pub struct WeatherStudy {
    /// Per-pair values, BP paths, dB (NaN where never reachable).
    pub bp_db: Vec<f64>,
    /// Per-pair values, ISL paths, dB.
    pub isl_db: Vec<f64>,
}

impl WeatherStudy {
    /// Median of the BP distribution, dB.
    pub fn bp_median(&self) -> f64 {
        Distribution::from_samples(&self.bp_db).median()
    }

    /// Median of the ISL distribution, dB.
    pub fn isl_median(&self) -> f64 {
        Distribution::from_samples(&self.isl_db).median()
    }
}

/// Run the Fig. 6 study: for every pair and snapshot, route under BP and
/// ISL-only connectivity, evaluate realized worst-link attenuation under
/// the stochastic weather process, then take the 99.5th percentile across
/// time per pair.
///
/// **Streaming**: rather than materialising a `snapshots × pairs` matrix
/// and sorting each pair's column at the end, the sweep folds every
/// sample into a per-pair [`TailQuantile`] (exact upper-tail keeper whose
/// `value()` reproduces [`Distribution::percentile`] bit-for-bit and
/// whose merge is split-invariant, so chunked parallel sweeps give the
/// same answer as a sequential pass). Memory is O(pairs), not
/// O(snapshots × pairs). Each snapshot also emits `atten_db_bp` /
/// `atten_db_isl` `series` telemetry events and ticks a `weather_study`
/// [`Heartbeat`].
pub fn weather_study(ctx: &StudyContext, weather_seed: u64, threads: usize) -> WeatherStudy {
    let _span = span!(
        "weather_study",
        weather_seed = weather_seed,
        snapshots = ctx.config.snapshot_times_s.len(),
        pairs = ctx.pairs.len(),
    );
    let model = AttenuationModel::new(Climatology::synthetic());
    let weather = WeatherProcess::new(weather_seed);
    let up = ctx.config.network.uplink_ghz;
    let down = ctx.config.network.downlink_ghz;
    let times = ctx.config.snapshot_times_s.clone();
    let num_pairs = ctx.pairs.len();
    let num_times = times.len();
    let hb = Heartbeat::new("weather_study", num_times as u64);

    let modes = [Mode::BpOnly, Mode::IslOnly];
    const SERIES_NAMES: [&str; 2] = ["atten_db_bp", "atten_db_isl"];

    /// Per-pair tail trackers and telemetry series for one mode.
    struct ModeAgg {
        tails: Vec<TailQuantile>,
        series: MetricSeries,
    }
    struct Acc {
        modes: Vec<ModeAgg>,
    }

    let acc = ctx.sweep_fold(
        &times,
        &modes,
        threads,
        || Acc {
            modes: SERIES_NAMES
                .iter()
                .map(|&name| ModeAgg {
                    tails: (0..num_pairs)
                        .map(|_| TailQuantile::new(99.5, num_times))
                        .collect(),
                    series: MetricSeries::new(name),
                })
                .collect(),
        },
        |acc, ti, snaps| {
            let t = times[ti];
            let mut targets = Vec::new();
            with_thread_workspace(|ws| {
                for (agg, snap) in acc.modes.iter_mut().zip(snaps.iter()) {
                    // One early-exit Dijkstra per unique source city, on warm
                    // buffers.
                    for (src, idxs) in ctx.pairs_by_src() {
                        targets.clear();
                        targets.extend(
                            idxs.iter()
                                .map(|&i| snap.city_node(ctx.pairs[i].dst as usize)),
                        );
                        let view = ws.run_multi(
                            &snap.graph,
                            snap.city_node(*src as usize),
                            None,
                            &targets,
                        );
                        for &i in idxs {
                            let dst = snap.city_node(ctx.pairs[i].dst as usize);
                            if let Some(path) = view.extract_path(dst) {
                                let db = worst_link_db(
                                    snap,
                                    &path,
                                    &model,
                                    AttenMode::Realized(weather, t),
                                    up,
                                    down,
                                );
                                agg.tails[i].record(db);
                                agg.series.record(db);
                            }
                        }
                    }
                    agg.series.snapshot_done(ti, snap.t_s);
                }
            });
            hb.tick(1);
        },
        |a, b| {
            for (am, bm) in a.modes.iter_mut().zip(&b.modes) {
                for (at, bt) in am.tails.iter_mut().zip(&bm.tails) {
                    at.merge(bt);
                }
                am.series.merge(&bm.series);
            }
        },
    );

    let bp_db = acc.modes[0].tails.iter().map(|t| t.value()).collect();
    let isl_db = acc.modes[1].tails.iter().map(|t| t.value()).collect();
    WeatherStudy { bp_db, isl_db }
}

/// Fig. 8 output: attenuation vs exceedance probability for one pair's BP
/// and ISL paths at a fixed snapshot.
#[derive(Debug, Clone)]
pub struct ExceedanceCurve {
    /// Exceedance percentages sampled.
    pub p_percent: Vec<f64>,
    /// Worst-link BP attenuation at each `p`, dB.
    pub bp_db: Vec<f64>,
    /// Worst-link ISL attenuation at each `p`, dB.
    pub isl_db: Vec<f64>,
}

/// Compute the Fig. 8 exceedance curves for a named pair (the paper uses
/// Delhi–Sydney) at snapshot time `t_s`.
///
/// Returns `None` if either mode has no path at that time.
pub fn exceedance_curve(
    ctx: &StudyContext,
    src_name: &str,
    dst_name: &str,
    t_s: f64,
) -> Option<ExceedanceCurve> {
    let _span = span!(
        "exceedance_curve",
        src = src_name,
        dst = dst_name,
        t_s = t_s
    );
    let model = AttenuationModel::new(Climatology::synthetic());
    let up = ctx.config.network.uplink_ghz;
    let down = ctx.config.network.downlink_ghz;
    let src = ctx.ground.city_index(src_name)?;
    let dst = ctx.ground.city_index(dst_name)?;
    let ps: Vec<f64> = vec![0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 3.0, 5.0];
    let mut curves: Vec<Vec<f64>> = Vec::new();
    for snap in ctx.snapshot_bundle(t_s, &[Mode::BpOnly, Mode::IslOnly]) {
        let path = with_thread_workspace(|ws| {
            ws.run(
                &snap.graph,
                snap.city_node(src),
                None,
                Some(snap.city_node(dst)),
            )
            .extract_path(snap.city_node(dst))
        })?;
        let vals: Vec<f64> = ps
            .iter()
            .map(|&p| worst_link_db(&snap, &path, &model, AttenMode::Exceedance(p), up, down))
            .collect();
        curves.push(vals);
    }
    let isl = curves.pop()?;
    let bp = curves.pop()?;
    Some(ExceedanceCurve {
        p_percent: ps,
        bp_db: bp,
        isl_db: isl,
    })
}

/// Fig. 7 support: a regional raster of the `p`-percent-exceeded total
/// attenuation (uplink frequency) for heat-map rendering. Returns rows of
/// `(lat, lon, attenuation_db)` on a `step`-degree grid.
pub fn attenuation_raster(
    ctx: &StudyContext,
    lat_range: (f64, f64),
    lon_range: (f64, f64),
    step_deg: f64,
    p_percent: f64,
) -> Vec<(f64, f64, f64)> {
    // lint: allow(panic-reachable) raster validation: a non-positive step would loop forever
    assert!(step_deg > 0.0);
    let _span = span!(
        "attenuation_raster",
        step_deg = step_deg,
        p_percent = p_percent
    );
    let model = AttenuationModel::new(Climatology::synthetic());
    let mut out = Vec::new();
    let mut lat = lat_range.0;
    while lat <= lat_range.1 {
        let mut lon = lon_range.0;
        while lon <= lon_range.1 {
            let slant = SlantPath {
                site: leo_geo::GeoPoint::from_degrees(lat, lon),
                elevation_rad: ctx
                    .constellation
                    .min_elevation_rad()
                    .max(leo_geo::deg_to_rad(40.0)),
                frequency_ghz: ctx.config.network.uplink_ghz,
            };
            out.push((lat, lon, model.total_attenuation_db(&slant, p_percent)));
            lon += step_deg;
        }
        lat += step_deg;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentScale;
    use crate::snapshot::StudyContext;

    fn ctx() -> StudyContext {
        StudyContext::build(ExperimentScale::Tiny.config())
    }

    #[test]
    fn weather_study_shapes() {
        let c = ctx();
        let w = weather_study(&c, 7, 2);
        assert_eq!(w.bp_db.len(), c.pairs.len());
        assert_eq!(w.isl_db.len(), c.pairs.len());
        // The paper's Fig. 6 claim: BP attenuation is higher in
        // distribution (median gap > 0 when both defined).
        let (bm, im) = (w.bp_median(), w.isl_median());
        if bm.is_finite() && im.is_finite() {
            assert!(bm >= im, "BP median {bm} dB vs ISL median {im} dB");
        }
    }

    #[test]
    fn exceedance_curve_monotone_and_ordered() {
        let mut cfg = ExperimentScale::Tiny.config();
        cfg.num_cities = 300; // ensure Delhi & Sydney present
        let c = StudyContext::build(cfg);
        let curve = exceedance_curve(&c, "Delhi", "Sydney", 0.0).expect("path exists");
        for w in curve.bp_db.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "BP curve must fall with p");
        }
        for w in curve.isl_db.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "ISL curve must fall with p");
        }
        // At every exceedance level, the BP worst link is at least as bad:
        // the BP path adds tropical intermediate hops (Fig. 7's story).
        let idx_1pct = curve
            .p_percent
            .iter()
            .position(|&p| p.to_bits() == 1.0f64.to_bits())
            .unwrap();
        assert!(
            curve.bp_db[idx_1pct] >= curve.isl_db[idx_1pct] - 1e-9,
            "BP {} dB vs ISL {} dB at 1%",
            curve.bp_db[idx_1pct],
            curve.isl_db[idx_1pct]
        );
    }

    #[test]
    fn raster_covers_grid() {
        let c = ctx();
        let r = attenuation_raster(&c, (0.0, 10.0), (60.0, 70.0), 5.0, 0.5);
        assert_eq!(r.len(), 9); // 3 lats × 3 lons
        for (_, _, a) in &r {
            assert!(*a > 0.0 && *a < 30.0);
        }
    }

    #[test]
    fn tropical_raster_hotter_than_temperate() {
        let c = ctx();
        let tropics = attenuation_raster(&c, (0.0, 10.0), (95.0, 115.0), 5.0, 0.5);
        let temperate = attenuation_raster(&c, (45.0, 55.0), (0.0, 20.0), 5.0, 0.5);
        let avg = |r: &[(f64, f64, f64)]| r.iter().map(|x| x.2).sum::<f64>() / r.len() as f64;
        assert!(avg(&tropics) > avg(&temperate));
    }
}
