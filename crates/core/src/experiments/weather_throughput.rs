//! Weather-adjusted throughput: connecting §5 and §6.
//!
//! The paper evaluates throughput with fixed link capacities and weather
//! as a separate attenuation study. This extension closes the loop: each
//! GT–satellite link's capacity is degraded to what its realized
//! attenuation still supports through the DVB-S2 MODCOD ladder (ISLs are
//! weather-immune), and the max-min-fair throughput is recomputed. BP —
//! whose every hop is a radio link — should lose a larger share of its
//! throughput on a stormy day than the hybrid network, which only gets
//! wet at the first and last hop.

use crate::snapshot::{EdgeKind, Mode, StudyContext};
use leo_atmo::{AttenuationModel, Climatology, LinkBudget, SlantPath, WeatherProcess};
use leo_flow::{FlowSim, FlowWorkspace};
use leo_graph::k_edge_disjoint_paths;
use leo_util::span;
use leo_util::telemetry::MetricSeries;

/// Throughput under one weather realization.
#[derive(Debug, Clone, Copy)]
pub struct WeatheredThroughput {
    /// Aggregate max-min rate with clear-sky capacities, Gbps.
    pub clear_gbps: f64,
    /// Aggregate with weather-degraded GT-link capacities, Gbps.
    pub weathered_gbps: f64,
}

impl WeatheredThroughput {
    /// Fraction of clear-sky throughput surviving the weather.
    pub fn retention(&self) -> f64 {
        if self.clear_gbps <= 0.0 {
            0.0
        } else {
            self.weathered_gbps / self.clear_gbps
        }
    }
}

/// Evaluate clear-sky vs weather-degraded throughput at `t_s` with `k`
/// sub-flows per pair, under the given stochastic weather seed.
pub fn weathered_throughput(
    ctx: &StudyContext,
    t_s: f64,
    mode: Mode,
    k: usize,
    weather_seed: u64,
) -> WeatheredThroughput {
    let _span = span!(
        "weathered_throughput",
        t_s = t_s,
        mode = format!("{mode:?}"),
        k = k,
        weather_seed = weather_seed,
    );
    let snap = ctx.snapshot(t_s, mode);
    let model = AttenuationModel::new(Climatology::synthetic());
    let weather = WeatherProcess::new(weather_seed);
    let budget = LinkBudget::ku_user_terminal();
    // Reference efficiency: the best MODCOD rung — the clear-sky design
    // point of the 20 Gbps links.
    // lint: allow(unwrap-in-lib) modcod_ladder is a non-empty static table
    let best_eff = leo_atmo::modcod_ladder().last().unwrap().bits_per_hz;

    // Per-edge capacities for both scenarios. The per-GT-link MODCOD
    // retention (wet/clear capacity ratio) streams into a `series`
    // telemetry event so its distribution is visible in `leo-report`
    // without storing per-edge samples.
    let mut retention_series = MetricSeries::new("gt_link_weather_retention");
    let mut clear_caps = Vec::with_capacity(snap.edges.len());
    let mut wet_caps = Vec::with_capacity(snap.edges.len());
    for (e, kind) in snap.edges.iter().enumerate() {
        let nominal = snap.edge_capacity_gbps(&ctx.config.network, e as u32);
        match kind {
            EdgeKind::Isl => {
                clear_caps.push(nominal);
                wet_caps.push(nominal); // lasers fly above the weather
            }
            EdgeKind::UpDown {
                ground,
                sat: _,
                elevation_rad,
            } => {
                // lint: allow(unwrap-in-lib) UpDown edges reference a ground node with a position by snapshot construction
                let site = snap.ground_position(*ground).expect("ground position");
                let slant = SlantPath {
                    site,
                    elevation_rad: *elevation_rad,
                    frequency_ghz: ctx.config.network.downlink_ghz,
                };
                let a_db = weather.attenuation_db(&model, &slant, t_s);
                let (u, v, _) = snap.graph.edge(e as u32);
                let distance = {
                    // Slant range from the stored delay weight.
                    let (_, _, w) = snap.graph.edge(e as u32);
                    let _ = (u, v);
                    w * leo_geo::SPEED_OF_LIGHT_M_S
                };
                let cn = budget.carrier_to_noise_db(distance, a_db);
                let eff = budget.modcod_efficiency(cn);
                let retention = (eff / best_eff).min(1.0);
                retention_series.record(retention);
                clear_caps.push(nominal);
                wet_caps.push(nominal * retention);
            }
        }
    }
    retention_series.snapshot_done(0, t_s);

    // Route once (paths don't react to weather — the conservative model),
    // build the flow structure once, then re-solve the same flows under
    // both capacity sets on one warm workspace.
    let mut sim = FlowSim::new();
    for &c in &clear_caps {
        sim.add_link(c);
    }
    for pair in &ctx.pairs {
        let s = snap.city_node(pair.src as usize);
        let d = snap.city_node(pair.dst as usize);
        for p in k_edge_disjoint_paths(&snap.graph, s, d, k, None) {
            sim.add_flow(p.edges);
        }
    }
    let mut ws = FlowWorkspace::new();
    let clear_gbps = sim.solve_with(&mut ws).aggregate;
    for (l, &c) in wet_caps.iter().enumerate() {
        sim.set_link_capacity(l as u32, c);
    }
    WeatheredThroughput {
        clear_gbps,
        weathered_gbps: sim.solve_with(&mut ws).aggregate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentScale;

    fn ctx() -> StudyContext {
        StudyContext::build(ExperimentScale::Tiny.config())
    }

    #[test]
    fn weather_never_helps() {
        let c = ctx();
        for mode in [Mode::BpOnly, Mode::Hybrid] {
            let r = weathered_throughput(&c, 0.0, mode, 2, 11);
            assert!(
                r.weathered_gbps <= r.clear_gbps + 1e-6,
                "{mode:?}: wet {} > clear {}",
                r.weathered_gbps,
                r.clear_gbps
            );
            assert!(r.retention() > 0.0 && r.retention() <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn bp_loses_more_than_hybrid() {
        // The extension's headline: BP's all-radio paths are more exposed
        // to weather than hybrid's two radio hops per path.
        let c = ctx();
        let bp = weathered_throughput(&c, 0.0, Mode::BpOnly, 2, 11);
        let hy = weathered_throughput(&c, 0.0, Mode::Hybrid, 2, 11);
        assert!(
            bp.retention() <= hy.retention() + 0.02,
            "BP retention {} should not beat hybrid {}",
            bp.retention(),
            hy.retention()
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let c = ctx();
        let a = weathered_throughput(&c, 0.0, Mode::Hybrid, 2, 5);
        let b = weathered_throughput(&c, 0.0, Mode::Hybrid, 2, 5);
        assert_eq!(a.weathered_gbps, b.weathered_gbps);
    }
}
