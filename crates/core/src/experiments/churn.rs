//! Path churn: how often end-to-end paths change between snapshots.
//!
//! The paper's latency-variability result (Fig. 2b) is a symptom of path
//! churn — BP paths depend on relay and aircraft geometry that shifts
//! continuously. This extension quantifies the churn itself: the
//! fraction of consecutive-snapshot transitions at which a pair's
//! shortest path changes its node sequence, and how much the RTT jumps
//! when it does.

use crate::snapshot::{Mode, StudyContext};
use leo_graph::with_thread_workspace;
use leo_util::span;

/// Churn statistics for one connectivity mode.
#[derive(Debug, Clone)]
pub struct ChurnStats {
    /// Fraction of (pair, transition) events where the path's node
    /// sequence changed.
    pub path_change_fraction: f64,
    /// Mean |ΔRTT| over transitions where the path changed, ms.
    pub mean_jump_ms: f64,
    /// Largest |ΔRTT| observed at a path change, ms.
    pub max_jump_ms: f64,
    /// Transitions evaluated (pairs × (snapshots − 1), minus
    /// unreachable endpoints).
    pub transitions: usize,
}

/// Measure path churn across the configured snapshots.
pub fn churn_study(ctx: &StudyContext, mode: Mode, threads: usize) -> ChurnStats {
    let _span = span!(
        "churn_study",
        mode = format!("{mode:?}"),
        snapshots = ctx.config.snapshot_times_s.len(),
    );
    let times = ctx.config.snapshot_times_s.clone();
    // Per snapshot, per pair: (node-sequence hash, rtt).
    let per_snap: Vec<Vec<Option<(u64, f64)>>> =
        ctx.sweep_map(&times, &[mode], threads, |_, snaps| {
            let snap = &snaps[0];
            let mut out = vec![None; ctx.pairs.len()];
            let mut targets = Vec::new();
            with_thread_workspace(|ws| {
                for (src, idxs) in ctx.pairs_by_src() {
                    targets.clear();
                    targets.extend(
                        idxs.iter()
                            .map(|&i| snap.city_node(ctx.pairs[i].dst as usize)),
                    );
                    let view =
                        ws.run_multi(&snap.graph, snap.city_node(*src as usize), None, &targets);
                    for &i in idxs {
                        let d = snap.city_node(ctx.pairs[i].dst as usize);
                        if let Some(path) = view.extract_path(d) {
                            out[i] =
                                Some((hash_nodes(&path.nodes), crate::rtt_ms(path.total_weight)));
                        }
                    }
                }
            });
            out
        });

    let mut transitions = 0usize;
    let mut changes = 0usize;
    let mut jump_sum = 0.0f64;
    let mut jump_max = 0.0f64;
    for i in 0..ctx.pairs.len() {
        for w in per_snap.windows(2) {
            if let (Some((h0, r0)), Some((h1, r1))) = (w[0][i], w[1][i]) {
                transitions += 1;
                if h0 != h1 {
                    changes += 1;
                    let jump = (r1 - r0).abs();
                    jump_sum += jump;
                    jump_max = jump_max.max(jump);
                }
            }
        }
    }
    ChurnStats {
        path_change_fraction: if transitions == 0 {
            0.0
        } else {
            changes as f64 / transitions as f64
        },
        mean_jump_ms: if changes == 0 {
            0.0
        } else {
            jump_sum / changes as f64
        },
        max_jump_ms: jump_max,
        transitions,
    }
}

/// FNV-1a over the node sequence — collisions are irrelevant at this
/// scale and determinism is what matters.
fn hash_nodes(nodes: &[u32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for n in nodes {
        h ^= *n as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentScale;

    #[test]
    fn churn_is_measured_and_bounded() {
        let ctx = StudyContext::build(ExperimentScale::Tiny.config());
        for mode in [Mode::BpOnly, Mode::Hybrid] {
            let s = churn_study(&ctx, mode, 2);
            assert!(s.transitions > 0);
            assert!((0.0..=1.0).contains(&s.path_change_fraction));
            assert!(s.mean_jump_ms >= 0.0 && s.max_jump_ms >= s.mean_jump_ms * 0.99);
        }
    }

    #[test]
    fn bp_jumps_are_larger() {
        // The paper's core claim, restated as churn: when BP paths change
        // they move the RTT more than hybrid path changes do.
        let ctx = StudyContext::build(ExperimentScale::Tiny.config());
        let bp = churn_study(&ctx, Mode::BpOnly, 2);
        let hy = churn_study(&ctx, Mode::Hybrid, 2);
        assert!(
            bp.max_jump_ms >= hy.max_jump_ms,
            "BP max jump {} < hybrid {}",
            bp.max_jump_ms,
            hy.max_jump_ms
        );
    }

    #[test]
    fn fifteen_minute_snapshots_churn_heavily() {
        // LEO satellites cross a GT's sky in minutes, so at 15-minute
        // granularity nearly every path changes — churn near 1.0 is the
        // expected physical answer for both modes.
        let ctx = StudyContext::build(ExperimentScale::Tiny.config());
        let hy = churn_study(&ctx, Mode::Hybrid, 2);
        assert!(hy.path_change_fraction > 0.5);
    }
}
