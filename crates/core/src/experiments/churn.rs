//! Path churn: how often end-to-end paths change between snapshots.
//!
//! The paper's latency-variability result (Fig. 2b) is a symptom of path
//! churn — BP paths depend on relay and aircraft geometry that shifts
//! continuously. This extension quantifies the churn itself: the
//! fraction of consecutive-snapshot transitions at which a pair's
//! shortest path changes its node sequence, and how much the RTT jumps
//! when it does.

use crate::experiments::spt::SourceSptPool;
use crate::snapshot::{Mode, StudyContext};
use leo_graph::with_thread_workspace;
use leo_util::sketch::FixedSum;
use leo_util::span;
use leo_util::telemetry::{Heartbeat, MetricSeries};

/// Churn statistics for one connectivity mode.
#[derive(Debug, Clone)]
pub struct ChurnStats {
    /// Fraction of (pair, transition) events where the path's node
    /// sequence changed.
    pub path_change_fraction: f64,
    /// Mean |ΔRTT| over transitions where the path changed, ms.
    pub mean_jump_ms: f64,
    /// Largest |ΔRTT| observed at a path change, ms.
    pub max_jump_ms: f64,
    /// Transitions evaluated (pairs × (snapshots − 1), minus
    /// unreachable endpoints).
    pub transitions: usize,
}

/// Per-pair streaming churn state inside one sweep chunk: the
/// observation at the chunk's first snapshot (for stitching with the
/// preceding chunk at merge time) and at its latest snapshot.
#[derive(Clone, Copy)]
struct PairChurn {
    first: Option<(u64, f64)>,
    prev: Option<(u64, f64)>,
}

/// Streaming accumulator for [`churn_study`].
struct ChurnAcc {
    /// Whether this chunk has processed at least one snapshot (an empty
    /// chunk must not contribute a phantom all-`None` boundary).
    started: bool,
    pairs: Vec<PairChurn>,
    transitions: u64,
    changes: u64,
    /// Fixed-point so the sum is exact and independent of both
    /// iteration order and chunk boundaries.
    jump_sum: FixedSum,
    jump_max: f64,
    series: MetricSeries,
    /// Incremental trees, one per source city (budget permitting).
    spt: Option<SourceSptPool>,
}

/// Count one consecutive-snapshot transition for a pair.
#[inline]
fn count_transition(
    prev: Option<(u64, f64)>,
    next: Option<(u64, f64)>,
    transitions: &mut u64,
    changes: &mut u64,
    jump_sum: &mut FixedSum,
    jump_max: &mut f64,
) -> Option<f64> {
    let ((h0, r0), (h1, r1)) = (prev?, next?);
    *transitions += 1;
    if h0 == h1 {
        return None;
    }
    *changes += 1;
    let jump = (r1 - r0).abs();
    jump_sum.add(jump);
    *jump_max = jump_max.max(jump);
    Some(jump)
}

/// Measure path churn across the configured snapshots.
///
/// **Streaming**: the sweep folds each snapshot into per-pair
/// `{first, prev}` path observations plus running transition counters,
/// so memory is O(pairs) instead of O(snapshots × pairs). Transitions
/// that straddle a chunk boundary are stitched at merge time (chunks
/// merge in time order), and `|ΔRTT|` jumps accumulate into a
/// [`FixedSum`] so the totals are exact and identical for every thread
/// count. Each snapshot emits a `churn_jump_ms` `series` telemetry
/// event (boundary-stitched jumps are counted in the stats but not in
/// the series — they surface only at merge time, after the snapshot's
/// event has been emitted) and ticks a `churn_study` [`Heartbeat`].
///
/// **Delta path**: when the pair set fits [`SourceSptPool`]'s budget,
/// per-source shortest-path trees are repaired from the sweep's edge
/// deltas instead of re-running Dijkstra per snapshot; path hashes and
/// RTTs are bit-identical either way.
pub fn churn_study(ctx: &StudyContext, mode: Mode, threads: usize) -> ChurnStats {
    let _span = span!(
        "churn_study",
        mode = format!("{mode:?}"),
        snapshots = ctx.config.snapshot_times_s.len(),
    );
    let times = ctx.config.snapshot_times_s.clone();
    let num_pairs = ctx.pairs.len();
    let pooled = SourceSptPool::fits(ctx, 1);
    let hb = Heartbeat::new("churn_study", times.len() as u64);

    let acc = ctx.sweep_fold_deltas(
        &times,
        &[mode],
        threads,
        || ChurnAcc {
            started: false,
            pairs: vec![
                PairChurn {
                    first: None,
                    prev: None,
                };
                num_pairs
            ],
            transitions: 0,
            changes: 0,
            jump_sum: FixedSum::new(),
            jump_max: 0.0,
            series: MetricSeries::new("churn_jump_ms"),
            spt: pooled.then(|| SourceSptPool::new(ctx)),
        },
        |acc, ti, snaps, deltas| {
            let snap = &snaps[0];
            // Per snapshot, per pair: (node-sequence hash, rtt).
            let mut obs: Vec<Option<(u64, f64)>> = vec![None; num_pairs];
            if let Some(pool) = acc.spt.as_mut() {
                // Delta path: repair each source's tree and read paths
                // off its canonical parents — bit-identical to the
                // `run_multi` fallback below (equivalence contract).
                for (si, (src, idxs)) in ctx.pairs_by_src().iter().enumerate() {
                    let spt = pool.tree(si, snap.city_node(*src as usize), snap, &deltas[0]);
                    for &i in idxs {
                        let d = snap.city_node(ctx.pairs[i].dst as usize);
                        if let Some(path) = spt.extract_path(d) {
                            obs[i] =
                                Some((hash_nodes(&path.nodes), crate::rtt_ms(path.total_weight)));
                        }
                    }
                }
            } else {
                let mut targets = Vec::new();
                with_thread_workspace(|ws| {
                    for (src, idxs) in ctx.pairs_by_src() {
                        targets.clear();
                        targets.extend(
                            idxs.iter()
                                .map(|&i| snap.city_node(ctx.pairs[i].dst as usize)),
                        );
                        let view = ws.run_multi(
                            &snap.graph,
                            snap.city_node(*src as usize),
                            None,
                            &targets,
                        );
                        for &i in idxs {
                            let d = snap.city_node(ctx.pairs[i].dst as usize);
                            if let Some(path) = view.extract_path(d) {
                                obs[i] = Some((
                                    hash_nodes(&path.nodes),
                                    crate::rtt_ms(path.total_weight),
                                ));
                            }
                        }
                    }
                });
            }
            let ChurnAcc {
                started,
                pairs,
                transitions,
                changes,
                jump_sum,
                jump_max,
                series,
                spt: _,
            } = acc;
            if *started {
                for (p, o) in pairs.iter_mut().zip(&obs) {
                    if let Some(jump) =
                        count_transition(p.prev, *o, transitions, changes, jump_sum, jump_max)
                    {
                        series.record(jump);
                    }
                    p.prev = *o;
                }
            } else {
                *started = true;
                for (p, o) in pairs.iter_mut().zip(&obs) {
                    p.first = *o;
                    p.prev = *o;
                }
            }
            series.snapshot_done(ti, snap.t_s);
            hb.tick(1);
        },
        |a, b| {
            if !b.started {
                return;
            }
            if !a.started {
                *a = b;
                return;
            }
            let ChurnAcc {
                started: _,
                pairs,
                transitions,
                changes,
                jump_sum,
                jump_max,
                series,
                spt: _,
            } = a;
            *transitions += b.transitions;
            *changes += b.changes;
            jump_sum.merge(&b.jump_sum);
            *jump_max = jump_max.max(b.jump_max);
            for (pa, pb) in pairs.iter_mut().zip(&b.pairs) {
                count_transition(pa.prev, pb.first, transitions, changes, jump_sum, jump_max);
                pa.prev = pb.prev;
            }
            series.merge(&b.series);
        },
    );

    let (transitions, changes) = (acc.transitions as usize, acc.changes as usize);
    ChurnStats {
        path_change_fraction: if transitions == 0 {
            0.0
        } else {
            changes as f64 / transitions as f64
        },
        mean_jump_ms: if changes == 0 {
            0.0
        } else {
            acc.jump_sum.value() / changes as f64
        },
        max_jump_ms: acc.jump_max,
        transitions,
    }
}

/// FNV-1a over the node sequence — collisions are irrelevant at this
/// scale and determinism is what matters.
fn hash_nodes(nodes: &[u32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for n in nodes {
        h ^= *n as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentScale;

    #[test]
    fn churn_is_measured_and_bounded() {
        let ctx = StudyContext::build(ExperimentScale::Tiny.config());
        for mode in [Mode::BpOnly, Mode::Hybrid] {
            let s = churn_study(&ctx, mode, 2);
            assert!(s.transitions > 0);
            assert!((0.0..=1.0).contains(&s.path_change_fraction));
            assert!(s.mean_jump_ms >= 0.0 && s.max_jump_ms >= s.mean_jump_ms * 0.99);
        }
    }

    #[test]
    fn bp_jumps_are_larger() {
        // The paper's core claim, restated as churn: when BP paths change
        // they move the RTT more than hybrid path changes do.
        let ctx = StudyContext::build(ExperimentScale::Tiny.config());
        let bp = churn_study(&ctx, Mode::BpOnly, 2);
        let hy = churn_study(&ctx, Mode::Hybrid, 2);
        assert!(
            bp.max_jump_ms >= hy.max_jump_ms,
            "BP max jump {} < hybrid {}",
            bp.max_jump_ms,
            hy.max_jump_ms
        );
    }

    #[test]
    fn churn_is_thread_count_invariant() {
        // Chunk-boundary stitching + FixedSum must make the streamed
        // stats bit-identical regardless of how the sweep is split.
        let ctx = StudyContext::build(ExperimentScale::Tiny.config());
        let a = churn_study(&ctx, Mode::BpOnly, 1);
        for threads in [2, 3, 5] {
            let b = churn_study(&ctx, Mode::BpOnly, threads);
            assert_eq!(a.transitions, b.transitions);
            assert_eq!(
                a.path_change_fraction.to_bits(),
                b.path_change_fraction.to_bits()
            );
            assert_eq!(a.mean_jump_ms.to_bits(), b.mean_jump_ms.to_bits());
            assert_eq!(a.max_jump_ms.to_bits(), b.max_jump_ms.to_bits());
        }
    }

    #[test]
    fn fifteen_minute_snapshots_churn_heavily() {
        // LEO satellites cross a GT's sky in minutes, so at 15-minute
        // granularity nearly every path changes — churn near 1.0 is the
        // expected physical answer for both modes.
        let ctx = StudyContext::build(ExperimentScale::Tiny.config());
        let hy = churn_study(&ctx, Mode::Hybrid, 2);
        assert!(hy.path_change_fraction > 0.5);
    }
}
