//! Routing-scheme ablation (the paper's §5 future work).
//!
//! The paper routes over plain (greedy) k edge-disjoint *shortest* paths
//! and notes that "a routing scheme that minimizes the maximum
//! utilization, for example, can offer higher throughput, albeit at the
//! cost of increased latency". This module implements that alternative —
//! sequential congestion-aware path selection with loads feeding back
//! into link costs — plus Suurballe-optimal disjoint pairs, so the three
//! schemes can be compared on the same snapshot.

use crate::snapshot::{Mode, StudyContext};
use leo_graph::{
    k_edge_disjoint_paths_with, suurballe_with, with_thread_workspace, DijkstraWorkspace, Path,
};
use leo_util::span;

/// Which path-selection scheme to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingScheme {
    /// The paper's scheme: greedy k edge-disjoint shortest paths.
    ShortestDisjoint,
    /// Suurballe's optimal 2-edge-disjoint pair (k is capped at 2).
    SuurballePair,
    /// Sequential congestion-aware routing: link cost is delay inflated
    /// by the squared utilization of already-routed flows.
    CongestionAware,
}

/// Outcome of routing all pairs with unit demand per sub-flow.
#[derive(Debug, Clone)]
pub struct RoutingOutcome {
    /// The scheme evaluated.
    pub scheme: RoutingScheme,
    /// Maximum link utilization (unit-demand load / capacity).
    pub max_utilization: f64,
    /// Mean propagation delay over all selected paths, ms (the latency
    /// price of congestion awareness).
    pub mean_path_delay_ms: f64,
    /// Total sub-flows routed.
    pub flows: usize,
}

/// Route every pair under `scheme` with `k` sub-flows of unit demand and
/// measure link utilizations and path delays.
pub fn route_all(
    ctx: &StudyContext,
    t_s: f64,
    mode: Mode,
    k: usize,
    scheme: RoutingScheme,
) -> RoutingOutcome {
    let _span = span!(
        "route_all",
        t_s = t_s,
        mode = format!("{mode:?}"),
        k = k,
        scheme = format!("{scheme:?}"),
    );
    let snap = ctx.snapshot(t_s, mode);
    let ne = snap.graph.num_edges();
    let mut load = vec![0.0f64; ne];
    let cap: Vec<f64> = (0..ne as u32)
        .map(|e| snap.edge_capacity_gbps(&ctx.config.network, e))
        .collect();
    let mut delays_ms = Vec::new();
    let mut flows = 0usize;

    with_thread_workspace(|ws| {
        for pair in &ctx.pairs {
            let s = snap.city_node(pair.src as usize);
            let d = snap.city_node(pair.dst as usize);
            let paths: Vec<Path> = match scheme {
                RoutingScheme::ShortestDisjoint => {
                    k_edge_disjoint_paths_with(&snap.graph, s, d, k, None, ws)
                }
                RoutingScheme::SuurballePair => {
                    let mut p = suurballe_with(&snap.graph, s, d, ws);
                    p.truncate(k.min(2));
                    p
                }
                RoutingScheme::CongestionAware => {
                    congestion_aware_paths(&snap.graph, s, d, k, &load, &cap, ws)
                }
            };
            for p in &paths {
                for &e in &p.edges {
                    load[e as usize] += 1.0;
                }
                delays_ms.push(crate::rtt_ms(p.total_weight) / 2.0);
                flows += 1;
            }
        }
    });
    let max_utilization = load
        .iter()
        .zip(&cap)
        .map(|(l, c)| if *c > 0.0 { l / c } else { 0.0 })
        .fold(0.0f64, f64::max);
    RoutingOutcome {
        scheme,
        max_utilization,
        mean_path_delay_ms: if delays_ms.is_empty() {
            0.0
        } else {
            delays_ms.iter().sum::<f64>() / delays_ms.len() as f64
        },
        flows,
    }
}

/// k edge-disjoint paths chosen under congestion-inflated costs:
/// `cost(e) = delay(e) · (1 + 4·(load/cap)²)`.
///
/// Because Dijkstra needs static weights, we approximate by scaling the
/// disabled-mask trick: paths are found one at a time on a cost-adjusted
/// copy of the graph.
fn congestion_aware_paths(
    g: &leo_graph::Graph,
    s: leo_graph::NodeId,
    d: leo_graph::NodeId,
    k: usize,
    load: &[f64],
    cap: &[f64],
    ws: &mut DijkstraWorkspace,
) -> Vec<Path> {
    // Build an adjusted graph once per pair.
    let mut b = leo_graph::GraphBuilder::new(g.num_nodes());
    for e in 0..g.num_edges() as u32 {
        let (u, v, w) = g.edge(e);
        let util = if cap[e as usize] > 0.0 {
            load[e as usize] / cap[e as usize]
        } else {
            0.0
        };
        b.add_edge(u, v, w * (1.0 + 4.0 * util * util));
    }
    let adjusted = b.build();
    let mut mask = ws.take_mask(g.num_edges());
    let mut out = Vec::with_capacity(k);
    for _ in 0..k {
        let found = ws.run(&adjusted, s, Some(&mask), Some(d)).extract_path(d);
        match found {
            Some(p) => {
                for &e in &p.edges {
                    mask[e as usize] = true;
                }
                // Report the path with its *true* delay, not the inflated
                // cost.
                let true_weight: f64 = p.edges.iter().map(|&e| g.edge(e).2).sum();
                out.push(Path {
                    total_weight: true_weight,
                    ..p
                });
            }
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentScale;

    fn ctx() -> StudyContext {
        StudyContext::build(ExperimentScale::Tiny.config())
    }

    #[test]
    fn congestion_awareness_reduces_max_utilization() {
        let c = ctx();
        let sp = route_all(&c, 0.0, Mode::Hybrid, 2, RoutingScheme::ShortestDisjoint);
        let ca = route_all(&c, 0.0, Mode::Hybrid, 2, RoutingScheme::CongestionAware);
        assert!(
            ca.max_utilization <= sp.max_utilization + 1e-9,
            "congestion-aware {} vs shortest {}",
            ca.max_utilization,
            sp.max_utilization
        );
    }

    #[test]
    fn congestion_awareness_costs_latency() {
        let c = ctx();
        let sp = route_all(&c, 0.0, Mode::Hybrid, 2, RoutingScheme::ShortestDisjoint);
        let ca = route_all(&c, 0.0, Mode::Hybrid, 2, RoutingScheme::CongestionAware);
        // The paper's stated tradeoff: detours for load balance.
        //
        // Re-pinned for the leo-util PRNG (xoshiro256++ replaced StdRng, so
        // the Tiny-scale pair sample changed): strict `ca >= sp` is not an
        // invariant of the scheme — congestion-aware cost inflation can pick
        // a *different first path* whose disjoint complement is marginally
        // shorter in true delay. On the new streams ca trails sp by ~0.004%,
        // so assert the tradeoff up to a small relative slack instead.
        assert!(
            ca.mean_path_delay_ms >= sp.mean_path_delay_ms * (1.0 - 1e-4),
            "congestion-aware delay {} far below shortest {}",
            ca.mean_path_delay_ms,
            sp.mean_path_delay_ms
        );
    }

    #[test]
    fn suurballe_routes_pairs() {
        let c = ctx();
        let su = route_all(&c, 0.0, Mode::Hybrid, 2, RoutingScheme::SuurballePair);
        assert!(su.flows > 0);
        assert!(su.max_utilization > 0.0);
    }

    #[test]
    fn flows_bounded_by_pairs_times_k() {
        let c = ctx();
        for scheme in [
            RoutingScheme::ShortestDisjoint,
            RoutingScheme::SuurballePair,
            RoutingScheme::CongestionAware,
        ] {
            let r = route_all(&c, 0.0, Mode::Hybrid, 2, scheme);
            assert!(
                r.flows <= c.pairs.len() * 2,
                "{scheme:?}: {} flows",
                r.flows
            );
        }
    }
}
