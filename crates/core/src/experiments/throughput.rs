//! Network-wide max-min-fair throughput (paper §5, Figs. 4–5).
//!
//! Each city pair routes over `k` edge-disjoint shortest paths; all
//! sub-flows are allocated rates by the progressive-filling max-min
//! algorithm of `leo-flow` (the floodns model). The module also computes
//! the §5 side statistic — the fraction of satellites entirely
//! disconnected under BP — and the "lax" one-big-sink max-flow baseline
//! of prior work that the paper §3 criticizes.

use crate::par::parallel_map;
use crate::snapshot::{EdgeKind, Mode, NetworkSnapshot, StudyContext};
use leo_flow::{FlowSim, FlowWorkspace};
use leo_graph::{
    component_sizes, connected_components, k_edge_disjoint_paths_with, max_flow,
    with_thread_workspace, EdgeId, FlowNetwork, Path,
};
use leo_util::span;
use leo_util::telemetry::{Heartbeat, MetricSeries};

/// Outcome of one throughput evaluation.
#[derive(Debug, Clone)]
pub struct ThroughputResult {
    /// Aggregate allocated rate across all sub-flows, Gbps.
    pub aggregate_gbps: f64,
    /// Pairs with at least one path.
    pub routed_pairs: usize,
    /// Total sub-flows (≤ pairs × k).
    pub flows: usize,
}

/// Max-min-fair aggregate throughput at snapshot time `t_s` under `mode`,
/// with `k` edge-disjoint shortest paths per pair.
pub fn throughput(ctx: &StudyContext, t_s: f64, mode: Mode, k: usize) -> ThroughputResult {
    throughput_with_isl_capacity(ctx, t_s, mode, k, ctx.config.network.isl_gbps)
}

/// Like [`throughput`] but overriding the ISL capacity (Fig. 5's sweep).
pub fn throughput_with_isl_capacity(
    ctx: &StudyContext,
    t_s: f64,
    mode: Mode,
    k: usize,
    isl_gbps: f64,
) -> ThroughputResult {
    // lint: allow(panic-reachable) caller contract: k-shortest-paths with k = 0 is a meaningless request
    assert!(k >= 1);
    let _span = span!(
        "throughput",
        t_s = t_s,
        mode = format!("{mode:?}"),
        k = k,
        isl_gbps = isl_gbps,
    );
    let snap = ctx.snapshot(t_s, mode);
    let routed = route_flows(ctx, &snap, k, isl_gbps);
    routed.result(&mut FlowWorkspace::new())
}

/// Routed flows over one snapshot: a [`FlowSim`] whose link ids are the
/// snapshot's edge ids. Paths depend only on the delay graph, never on
/// capacities, so one routing pass supports any number of re-solves
/// under different capacity assumptions.
struct RoutedFlows {
    sim: FlowSim,
    routed_pairs: usize,
    flows: usize,
}

impl RoutedFlows {
    fn result(&self, ws: &mut FlowWorkspace) -> ThroughputResult {
        ThroughputResult {
            aggregate_gbps: self.sim.solve_with(ws).aggregate,
            routed_pairs: self.routed_pairs,
            flows: self.flows,
        }
    }
}

/// Route `k` edge-disjoint delay-shortest paths for every pair of
/// `ctx`'s (possibly [range-restricted]) traffic matrix, in pair order.
///
/// This is the per-pair-independent half of the throughput pipeline —
/// the stage pair-sharded runs execute per shard. Paths depend only on
/// the snapshot's delay graph (never on capacities or on *other* pairs),
/// so routing pairs `lo..hi` in a restricted context yields exactly the
/// `lo..hi` slice of the full run's result, and concatenating shard
/// slices in global pair order feeds [`throughput_from_path_edges`]
/// bit-identically to the single-process path.
///
/// [range-restricted]: StudyContext::restrict_pair_range
pub fn route_pair_paths(ctx: &StudyContext, snap: &NetworkSnapshot, k: usize) -> Vec<Vec<Path>> {
    // Path-finding per pair is read-only on the snapshot: parallelize.
    parallel_map(&ctx.pairs, 0, |pair| {
        with_thread_workspace(|ws| {
            k_edge_disjoint_paths_with(
                &snap.graph,
                snap.city_node(pair.src as usize),
                snap.city_node(pair.dst as usize),
                k,
                None,
                ws,
            )
        })
    })
}

/// Load per-pair path edge lists (snapshot edge ids, as produced by
/// [`route_pair_paths`]) into a flow simulation with per-edge
/// capacities (ISL capacity overridable).
fn routed_from_path_edges(
    ctx: &StudyContext,
    snap: &NetworkSnapshot,
    paths_per_pair: &[Vec<Vec<EdgeId>>],
    isl_gbps: f64,
) -> RoutedFlows {
    let mut net_cfg = ctx.config.network;
    net_cfg.isl_gbps = isl_gbps;
    let mut sim = FlowSim::new();
    // One flow-sim link per graph edge, same ids.
    for e in 0..snap.graph.num_edges() as u32 {
        sim.add_link(snap.edge_capacity_gbps(&net_cfg, e));
    }
    let mut routed_pairs = 0;
    let mut flows = 0;
    for paths in paths_per_pair {
        if !paths.is_empty() {
            routed_pairs += 1;
        }
        for edges in paths {
            sim.add_flow(edges.clone());
            flows += 1;
        }
    }
    RoutedFlows {
        sim,
        routed_pairs,
        flows,
    }
}

/// Max-min-fair throughput from pre-routed per-pair path edge lists —
/// the merge half of the pair-sharded throughput pipeline. `paths`
/// must list every pair of the *full* traffic matrix in global pair
/// order (each entry up to `k` paths of snapshot edge ids); the result
/// is bit-identical to [`throughput_with_isl_capacity`] routing the
/// same snapshot itself, because the global max-min solve sees the
/// identical link table and flow order.
pub fn throughput_from_path_edges(
    ctx: &StudyContext,
    snap: &NetworkSnapshot,
    paths: &[Vec<Vec<EdgeId>>],
    isl_gbps: f64,
    ws: &mut FlowWorkspace,
) -> ThroughputResult {
    routed_from_path_edges(ctx, snap, paths, isl_gbps).result(ws)
}

/// Route `k` edge-disjoint shortest paths per pair and load them into a
/// flow simulation with per-edge capacities (ISL capacity overridable).
fn route_flows(ctx: &StudyContext, snap: &NetworkSnapshot, k: usize, isl_gbps: f64) -> RoutedFlows {
    let paths = route_pair_paths(ctx, snap, k);
    let edge_lists: Vec<Vec<Vec<EdgeId>>> = paths
        .into_iter()
        .map(|ps| ps.into_iter().map(|p| p.edges).collect())
        .collect();
    routed_from_path_edges(ctx, snap, &edge_lists, isl_gbps)
}

/// Fig. 5: Starlink aggregate throughput as ISL capacity sweeps over
/// multiples of the GT-link capacity. Returns `(ratio, gbps)` rows, plus
/// the BP-only reference as ratio 0.
///
/// Both snapshots come from one shared visibility pass; the hybrid flows
/// are routed **once** and re-solved per ratio by re-setting only the
/// ISL link capacities, on one warm [`FlowWorkspace`] — paths are
/// delay-shortest and never depend on capacity, so the results are
/// identical to re-routing from scratch.
pub fn isl_capacity_sweep(
    ctx: &StudyContext,
    t_s: f64,
    k: usize,
    ratios: &[f64],
) -> Vec<(f64, f64)> {
    let _span = span!(
        "isl_capacity_sweep",
        t_s = t_s,
        k = k,
        ratios = ratios.len()
    );
    let gt = ctx.config.network.gt_link_gbps;
    let mut ws = FlowWorkspace::new();
    let mut out = Vec::with_capacity(ratios.len() + 1);
    let snaps = ctx.snapshot_bundle(t_s, &[Mode::BpOnly, Mode::Hybrid]);
    let bp = route_flows(ctx, &snaps[0], k, ctx.config.network.isl_gbps);
    out.push((0.0, bp.result(&mut ws).aggregate_gbps));
    if ratios.is_empty() {
        return out;
    }
    let mut hybrid = route_flows(ctx, &snaps[1], k, gt * ratios[0]);
    for &r in ratios {
        for e in 0..snaps[1].edges.len() as u32 {
            if matches!(snaps[1].edges[e as usize], EdgeKind::Isl) {
                hybrid.sim.set_link_capacity(e, gt * r);
            }
        }
        out.push((r, hybrid.result(&mut ws).aggregate_gbps));
    }
    out
}

/// §5 statistic: fraction of satellites entirely disconnected from the
/// network (no GT in view) at each snapshot time, under BP.
///
/// The paper reports 25.1 %–31.5 % for Starlink across a day.
///
/// Streams through [`StudyContext::sweep_fold`]: each snapshot appends
/// its fraction (chunks merge in time order, so the returned vector is
/// time-ordered exactly like the old collect-then-concatenate path),
/// emits a `disconnected_fraction` `series` telemetry event, and ticks a
/// `disconnected_satellite_fraction` [`Heartbeat`].
pub fn disconnected_satellite_fraction(ctx: &StudyContext, mode: Mode, threads: usize) -> Vec<f64> {
    let _span = span!(
        "disconnected_satellite_fraction",
        mode = format!("{mode:?}"),
        snapshots = ctx.config.snapshot_times_s.len(),
    );
    let times = ctx.config.snapshot_times_s.clone();
    let hb = Heartbeat::new("disconnected_satellite_fraction", times.len() as u64);
    struct Acc {
        vals: Vec<f64>,
        series: MetricSeries,
    }
    let acc = ctx.sweep_fold(
        &times,
        &[mode],
        threads,
        || Acc {
            vals: Vec::new(),
            series: MetricSeries::new("disconnected_fraction"),
        },
        |acc, ti, snaps| {
            let f = disconnected_fraction_of(&snaps[0]);
            acc.vals.push(f);
            acc.series.record(f);
            acc.series.snapshot_done(ti, snaps[0].t_s);
            hb.tick(1);
        },
        |a, b| {
            a.vals.extend_from_slice(&b.vals);
            a.series.merge(&b.series);
        },
    );
    acc.vals
}

/// Fraction of satellites in components containing no ground node.
pub fn disconnected_fraction_of(snap: &NetworkSnapshot) -> f64 {
    let labels = connected_components(&snap.graph, None);
    let n_comp = component_sizes(&labels).len();
    let mut has_ground = vec![false; n_comp];
    for (node, kind) in snap.nodes.iter().enumerate() {
        if kind.is_ground() {
            has_ground[labels[node] as usize] = true;
        }
    }
    let disconnected = (0..snap.num_satellites)
        .filter(|&s| !has_ground[labels[s] as usize])
        .count();
    disconnected as f64 / snap.num_satellites as f64
}

/// The "lax" throughput model of del Portillo et al. that the paper
/// criticizes: one max-flow instance where traffic entering at the source
/// cities may exit at **any** city — no per-pair demands. Returns Gbps.
///
/// Comparing this against [`throughput`] shows how much the lax model
/// overstates network capacity.
pub fn lax_maxflow_gbps(ctx: &StudyContext, t_s: f64, mode: Mode) -> f64 {
    let _span = span!("lax_maxflow", t_s = t_s, mode = format!("{mode:?}"));
    let snap = ctx.snapshot(t_s, mode);
    let n = snap.graph.num_nodes();
    let s = n as u32; // super source
    let t = n as u32 + 1; // super sink
    let mut net = FlowNetwork::new(n + 2);
    for e in 0..snap.graph.num_edges() as u32 {
        let (u, v, _) = snap.graph.edge(e);
        let cap = snap.edge_capacity_gbps(&ctx.config.network, e);
        net.add_undirected(u, v, cap);
    }
    // A city's injection/absorption is bounded by its real aggregate
    // GT-link capacity (sum over its visible satellites); the model's
    // laxness is in *where* traffic may exit, not in per-city radio
    // capacity.
    let city_capacity = |city: usize| -> f64 {
        let node = snap.city_node(city);
        snap.graph
            .neighbors(node)
            .iter()
            .map(|h| snap.edge_capacity_gbps(&ctx.config.network, h.edge))
            .sum()
    };
    // Sources: the cities appearing as pair sources; sink side: every
    // city may absorb traffic (the model's laxness).
    let mut sources: Vec<u32> = ctx.pairs.iter().map(|p| p.src).collect();
    sources.sort_unstable();
    sources.dedup();
    for src in sources {
        net.add_directed(s, snap.city_node(src as usize), city_capacity(src as usize));
    }
    for city in 0..ctx.ground.cities.len() {
        net.add_directed(snap.city_node(city), t, city_capacity(city));
    }
    max_flow(&mut net, s, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentScale;

    fn ctx() -> StudyContext {
        StudyContext::build(ExperimentScale::Tiny.config())
    }

    #[test]
    fn hybrid_beats_bp() {
        let c = ctx();
        let bp = throughput(&c, 0.0, Mode::BpOnly, 1);
        let hy = throughput(&c, 0.0, Mode::Hybrid, 1);
        assert!(
            hy.aggregate_gbps > bp.aggregate_gbps,
            "hybrid {} vs BP {}",
            hy.aggregate_gbps,
            bp.aggregate_gbps
        );
        assert!(hy.routed_pairs >= bp.routed_pairs);
    }

    #[test]
    fn more_paths_dont_hurt() {
        let c = ctx();
        let k1 = throughput(&c, 0.0, Mode::Hybrid, 1);
        let k4 = throughput(&c, 0.0, Mode::Hybrid, 4);
        assert!(k4.flows >= k1.flows);
        assert!(
            k4.aggregate_gbps >= k1.aggregate_gbps * 0.99,
            "k=4 ({}) should not collapse vs k=1 ({})",
            k4.aggregate_gbps,
            k1.aggregate_gbps
        );
    }

    #[test]
    fn throughput_positive_and_bounded() {
        let c = ctx();
        let r = throughput(&c, 0.0, Mode::Hybrid, 2);
        assert!(r.aggregate_gbps > 0.0);
        // Bounded by total source up-link capacity: pairs × k × 20 Gbps.
        let bound = (c.pairs.len() * 2) as f64 * 20.0;
        assert!(r.aggregate_gbps <= bound);
    }

    #[test]
    fn sweep_monotone_in_isl_capacity() {
        let c = ctx();
        let rows = isl_capacity_sweep(&c, 0.0, 2, &[0.5, 1.0, 3.0]);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].0, 0.0);
        for w in rows.windows(2).skip(1) {
            assert!(
                w[1].1 >= w[0].1 - 1e-6,
                "throughput should not fall as ISL capacity grows: {:?}",
                rows
            );
        }
        // At full scale even 0.5× ISL capacity beats BP by 2.2× (paper);
        // at Tiny scale we only require positive throughput at 0.5× and
        // that generous ISLs (3×) beat BP.
        assert!(rows[1].1 > 0.0);
        assert!(
            rows[3].1 > rows[0].1,
            "3x ISL ({}) should beat BP ({})",
            rows[3].1,
            rows[0].1
        );
    }

    #[test]
    fn bp_disconnects_many_satellites() {
        let c = ctx();
        let fr = disconnected_satellite_fraction(&c, Mode::BpOnly, 2);
        assert_eq!(fr.len(), c.config.snapshot_times_s.len());
        for f in &fr {
            // Tiny scale has sparser relays than the paper's 0.5° grid, so
            // accept a broad band around the paper's 25–31.5%.
            assert!(*f > 0.05 && *f < 0.8, "disconnected fraction {f}");
        }
    }

    #[test]
    fn hybrid_connects_everything() {
        let c = ctx();
        let fr = disconnected_satellite_fraction(&c, Mode::Hybrid, 2);
        for f in &fr {
            assert_eq!(*f, 0.0, "+Grid keeps the constellation connected");
        }
    }

    #[test]
    fn lax_model_overstates() {
        let c = ctx();
        let strict = throughput(&c, 0.0, Mode::Hybrid, 4);
        let lax = lax_maxflow_gbps(&c, 0.0, Mode::Hybrid);
        assert!(
            lax >= strict.aggregate_gbps,
            "lax ({lax}) must be an upper bound on per-pair ({})",
            strict.aggregate_gbps
        );
    }
}
