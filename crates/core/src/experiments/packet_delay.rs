//! Packet-level delay and jitter on BP vs hybrid paths (extension).
//!
//! The paper's QoE discussion (§4) notes that latency-critical
//! applications suffer from delay *variation*, citing gaming studies.
//! The fluid throughput model cannot see queueing; this experiment plays
//! an actual packet flow over a pair's BP and hybrid paths — every hop a
//! store-and-forward link at its configured capacity, with cross-traffic
//! at a target utilization — and measures end-to-end delay, p99, jitter
//! and loss with `leo-packetsim`.

use crate::snapshot::{Mode, StudyContext};
use leo_graph::with_thread_workspace;
use leo_packetsim::{FlowSpec, PacketSim};
use leo_util::span;

/// Packet-level results for one mode at one load level.
#[derive(Debug, Clone, Copy)]
pub struct PacketDelayResult {
    /// Mode evaluated.
    pub mode: Mode,
    /// Cross-traffic load as a fraction of each link's capacity.
    pub load: f64,
    /// Hops on the path.
    pub hops: usize,
    /// Mean end-to-end one-way delay, ms.
    pub mean_delay_ms: f64,
    /// 99th-percentile delay, ms.
    pub p99_delay_ms: f64,
    /// Smoothed jitter, ms.
    pub jitter_ms: f64,
    /// Foreground delivery ratio.
    pub delivery_ratio: f64,
}

/// Simulate a foreground flow between two named cities under `mode`,
/// with cross traffic at `load` × capacity on every path link.
///
/// The foreground flow runs at 10 Mbit/s with 1250-byte packets for
/// `duration_s` of simulated time; each link carries an independent
/// single-hop cross flow sized to bring it to the target utilization.
/// Returns `None` if the pair is unreachable at `t_s`.
pub fn packet_delay_study(
    ctx: &StudyContext,
    src_name: &str,
    dst_name: &str,
    t_s: f64,
    mode: Mode,
    load: f64,
    duration_s: f64,
) -> Option<PacketDelayResult> {
    // lint: allow(panic-reachable) model validity: the queueing delay curve diverges at load >= 1
    assert!((0.0..1.0).contains(&load));
    let _span = span!(
        "packet_delay_study",
        src = src_name,
        dst = dst_name,
        mode = format!("{mode:?}"),
        load = load,
    );
    let src = ctx.ground.city_index(src_name)?;
    let dst = ctx.ground.city_index(dst_name)?;
    let snap = ctx.snapshot(t_s, mode);
    let path = with_thread_workspace(|ws| {
        ws.run(
            &snap.graph,
            snap.city_node(src),
            None,
            Some(snap.city_node(dst)),
        )
        .extract_path(snap.city_node(dst))
    })?;

    let mut sim = PacketSim::new();
    // A user flow rides one beam/channel of each link, not the whole
    // 20/100 Gbps aggregate; simulating the full aggregate would only
    // multiply packet counts without changing per-beam queueing. Model
    // each hop as a 200 Mbit/s beam share (scaled by the link's relative
    // capacity so ISLs stay 5x wider than GT links).
    const BEAM_BPS: f64 = 200e6;
    const FG_RATE: f64 = 10e6; // 10 Mbit/s foreground
    const PKT: u32 = 1250;
    let gt_gbps = ctx.config.network.gt_link_gbps;
    let mut links = Vec::with_capacity(path.edges.len());
    for &e in &path.edges {
        let cap_bps = BEAM_BPS * snap.edge_capacity_gbps(&ctx.config.network, e) / gt_gbps;
        let (_, _, delay_s) = snap.graph.edge(e);
        // 2 ms worth of buffering at link rate — a shallow LEO-ish buffer.
        let queue_bytes = (cap_bps * 0.002 / 8.0) as u64;
        let l = sim.add_link(cap_bps, delay_s, queue_bytes.max(16 * PKT as u64));
        links.push((l, cap_bps));
    }
    for (i, &(l, cap_bps)) in links.iter().enumerate() {
        let cross = (cap_bps * load - FG_RATE).max(0.0);
        if cross > 0.0 {
            sim.add_flow(FlowSpec {
                path: vec![l],
                rate_bps: cross,
                packet_bytes: PKT,
                // Desynchronize cross flows so queues beat against each
                // other rather than in lockstep.
                start_s: i as f64 * 1.7e-4,
                stop_s: duration_s,
                // Bursty cross traffic: 10 ms bursts at 30% duty.
                burst: Some((0.010, 0.3)),
            });
        }
    }
    let fg = sim.add_flow(FlowSpec::cbr(
        links.iter().map(|&(l, _)| l).collect(),
        FG_RATE,
        PKT,
        0.0,
        duration_s,
    ));
    let report = sim.run(duration_s + 1.0);
    let f = &report.flows[fg as usize];
    Some(PacketDelayResult {
        mode,
        load,
        hops: path.num_hops(),
        mean_delay_ms: f.mean_delay_s * 1000.0,
        p99_delay_ms: f.p99_delay_s * 1000.0,
        jitter_ms: f.jitter_s * 1000.0,
        delivery_ratio: f.delivery_ratio(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentScale;

    fn ctx() -> StudyContext {
        StudyContext::build(ExperimentScale::Tiny.config())
    }

    #[test]
    fn delay_close_to_propagation_at_light_load() {
        let c = ctx();
        let r = packet_delay_study(&c, "New York", "London", 0.0, Mode::Hybrid, 0.1, 0.2)
            .expect("reachable");
        assert!(r.delivery_ratio > 0.999);
        // One-way hybrid NY-London ≈ 21 ms propagation; queueing adds
        // little at 10% load.
        assert!(
            r.mean_delay_ms > 15.0 && r.mean_delay_ms < 35.0,
            "{}",
            r.mean_delay_ms
        );
    }

    #[test]
    fn load_inflates_tail_delay_and_jitter() {
        let c = ctx();
        let light =
            packet_delay_study(&c, "New York", "London", 0.0, Mode::Hybrid, 0.1, 0.2).unwrap();
        let heavy =
            packet_delay_study(&c, "New York", "London", 0.0, Mode::Hybrid, 0.9, 0.2).unwrap();
        assert!(heavy.p99_delay_ms >= light.p99_delay_ms);
        assert!(heavy.jitter_ms >= light.jitter_ms);
    }

    #[test]
    fn bp_path_has_more_hops_and_no_less_delay() {
        let c = ctx();
        let bp = packet_delay_study(&c, "New York", "London", 0.0, Mode::BpOnly, 0.8, 0.2);
        let hy = packet_delay_study(&c, "New York", "London", 0.0, Mode::Hybrid, 0.8, 0.2);
        if let (Some(bp), Some(hy)) = (bp, hy) {
            assert!(bp.hops >= hy.hops);
            assert!(bp.mean_delay_ms >= hy.mean_delay_ms * 0.95);
        }
    }

    #[test]
    fn rejects_unknown_city_gracefully() {
        let c = ctx();
        assert!(packet_delay_study(&c, "Gotham", "London", 0.0, Mode::Hybrid, 0.5, 0.1).is_none());
    }
}
