//! Cross-shell BP transitions (paper §8, Fig. 10).
//!
//! Multi-shell constellations cannot easily run ISLs *between* shells
//! (different trajectories make such lasers short-lived, and the filings
//! budget only 4 ISLs per satellite, all intra-shell). A sparing use of
//! bent-pipe hops as "transition points" lets a path switch shells —
//! e.g. Brisbane→Tokyo jumping from the 53° shell to a polar shell via
//! one ground bounce, cutting latency.

use crate::config::{ConstellationKind, StudyConfig};
use crate::snapshot::{Mode, NodeKind, StudyContext};
use leo_graph::with_thread_workspace;
use leo_util::span;

/// One snapshot of the cross-shell comparison.
#[derive(Debug, Clone, Copy)]
pub struct CrossShellRow {
    /// Snapshot time, s.
    pub t_s: f64,
    /// RTT restricted to ISL connectivity (no shell switching), ms.
    pub isl_only_rtt_ms: Option<f64>,
    /// RTT with hybrid connectivity (BP transitions allowed), ms.
    pub hybrid_rtt_ms: Option<f64>,
    /// Number of distinct shells traversed on the hybrid path.
    pub hybrid_shells_used: usize,
    /// Ground bounces (intermediate ground hops) on the hybrid path.
    pub hybrid_ground_bounces: usize,
}

/// Build a two-shell (53° + polar) study context from a base config.
pub fn two_shell_context(mut cfg: StudyConfig) -> StudyContext {
    cfg.constellation = ConstellationKind::StarlinkPlusPolar;
    StudyContext::build(cfg)
}

/// Compare ISL-only vs hybrid routing for one named pair across all
/// snapshots (the paper illustrates Brisbane→Tokyo).
pub fn cross_shell_study(
    ctx: &StudyContext,
    src_name: &str,
    dst_name: &str,
    threads: usize,
) -> Vec<CrossShellRow> {
    let _span = span!("cross_shell_study", src = src_name, dst = dst_name);
    let src = ctx
        .ground
        .city_index(src_name)
        // lint: allow(panic-reachable) config-time lookup of a caller-named city; a typo must fail loudly, not chart a wrong pair
        .unwrap_or_else(|| panic!("unknown city {src_name}"));
    let dst = ctx
        .ground
        .city_index(dst_name)
        // lint: allow(panic-reachable) config-time lookup of a caller-named city; a typo must fail loudly, not chart a wrong pair
        .unwrap_or_else(|| panic!("unknown city {dst_name}"));
    let times = ctx.config.snapshot_times_s.clone();
    let modes = [Mode::IslOnly, Mode::Hybrid];
    ctx.sweep_map(&times, &modes, threads, |ti, snaps| {
        let t = times[ti];
        let (isl_snap, hy_snap) = (&snaps[0], &snaps[1]);
        let (isl_rtt, hybrid_path) = with_thread_workspace(|ws| {
            let isl_rtt = ws
                .run(
                    &isl_snap.graph,
                    isl_snap.city_node(src),
                    None,
                    Some(isl_snap.city_node(dst)),
                )
                .dist(isl_snap.city_node(dst));
            let hybrid_path = ws
                .run(
                    &hy_snap.graph,
                    hy_snap.city_node(src),
                    None,
                    Some(hy_snap.city_node(dst)),
                )
                .extract_path(hy_snap.city_node(dst));
            (isl_rtt, hybrid_path)
        });
        let (hybrid_rtt, shells, bounces) = match &hybrid_path {
            Some(p) => {
                let mut shell_set = std::collections::HashSet::new();
                let mut bounces = 0;
                for &n in &p.nodes[1..p.nodes.len() - 1] {
                    match hy_snap.nodes[n as usize] {
                        NodeKind::Satellite(id) => {
                            shell_set.insert(ctx.constellation.shell_of(id).0);
                        }
                        _ => bounces += 1,
                    }
                }
                (
                    Some(crate::rtt_ms(p.total_weight)),
                    shell_set.len(),
                    bounces,
                )
            }
            None => (None, 0, 0),
        };
        CrossShellRow {
            t_s: t,
            isl_only_rtt_ms: isl_rtt.is_finite().then(|| crate::rtt_ms(isl_rtt)),
            hybrid_rtt_ms: hybrid_rtt,
            hybrid_shells_used: shells,
            hybrid_ground_bounces: bounces,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentScale;

    fn ctx() -> StudyContext {
        let mut cfg = ExperimentScale::Tiny.config();
        cfg.num_cities = 300; // include Brisbane & Tokyo
        two_shell_context(cfg)
    }

    #[test]
    fn two_shells_built() {
        let c = ctx();
        assert_eq!(c.constellation.shells().len(), 2);
        assert_eq!(c.num_satellites(), 1584 + 720);
    }

    #[test]
    fn hybrid_never_slower_than_isl_only() {
        let c = ctx();
        let rows = cross_shell_study(&c, "Brisbane", "Tokyo", 2);
        assert_eq!(rows.len(), c.config.snapshot_times_s.len());
        for r in &rows {
            if let (Some(h), Some(i)) = (r.hybrid_rtt_ms, r.isl_only_rtt_ms) {
                assert!(h <= i + 1e-9, "hybrid {h} ms > isl-only {i} ms");
            }
        }
    }

    #[test]
    fn paths_have_plausible_rtts() {
        let c = ctx();
        let rows = cross_shell_study(&c, "Brisbane", "Tokyo", 2);
        for r in rows.iter().filter(|r| r.hybrid_rtt_ms.is_some()) {
            let rtt = r.hybrid_rtt_ms.unwrap();
            // Brisbane-Tokyo geodesic ≈ 7,150 km → ≥ ~48 ms RTT at c.
            assert!(rtt > 45.0 && rtt < 250.0, "RTT {rtt} ms");
        }
    }
}
