//! GSO-arc avoidance (paper §7, Fig. 9).
//!
//! Near the Equator, LEO up/down-links must keep an angular separation
//! from the geostationary arc (22° for Starlink), which shrinks the
//! usable sky. This hits BP connectivity hardest: cross-Equatorial BP
//! traffic must transit low-latitude GTs, all of which suffer the
//! shrunken field of view, while ISL paths only care at the endpoints.

use crate::snapshot::StudyContext;
use leo_geo::{batch_visible_from, deg_to_rad, Ecef, GeoPoint};
use leo_orbit::gso::{gso_compliant, usable_sky_fraction};
use leo_orbit::{VisibilityParams, SUBPOINT_BIN_DEG};
use leo_util::span;
use leo_util::telemetry::{Heartbeat, MetricSeries};

/// One row of the Fig. 9 sweep.
#[derive(Debug, Clone, Copy)]
pub struct GsoRow {
    /// GT latitude, degrees.
    pub lat_deg: f64,
    /// Fraction of the (elevation-constrained) sky that remains usable.
    pub usable_sky_fraction: f64,
    /// Fraction of actually-visible satellites that are GSO-compliant at
    /// the sampled snapshot.
    pub usable_satellite_fraction: f64,
}

/// Sweep GT latitude and measure how much sky / how many satellites
/// survive the GSO separation rule.
///
/// `min_elevation_deg` is the operational elevation (the paper's Fig. 9
/// uses Starlink's full-deployment 40°); `separation_deg` the arc
/// avoidance angle (22° for Starlink). The satellite fraction is averaged
/// over several snapshots starting at `t_s` — at 40° elevation only a
/// handful of satellites are in view at once, so a single instant is too
/// noisy.
pub fn gso_sweep(
    ctx: &StudyContext,
    latitudes_deg: &[f64],
    min_elevation_deg: f64,
    separation_deg: f64,
    t_s: f64,
) -> Vec<GsoRow> {
    let _span = span!("gso_sweep", latitudes = latitudes_deg.len(), t_s = t_s);
    let e = deg_to_rad(min_elevation_deg);
    let sep = deg_to_rad(separation_deg);
    let params = VisibilityParams {
        min_elevation_rad: e,
        max_altitude_m: ctx.config.constellation.max_altitude_m(),
    };
    // Spread samples over ~one orbital period so different constellation
    // phases are seen. One satellite state + cell index is advanced in
    // place across the samples instead of rebuilding per instant.
    let sample_times: Vec<f64> = (0..12).map(|i| t_s + i as f64 * 480.0).collect();
    let radius_m = params.query_radius_m();
    let hb = Heartbeat::new("gso_sweep", sample_times.len() as u64);
    let mut series = MetricSeries::new("gso_usable_satellite_fraction");
    let mut totals = vec![0usize; latitudes_deg.len()];
    let mut compliant = vec![0usize; latitudes_deg.len()];
    let mut sats = ctx.constellation.positions_at(t_s);
    let mut grid = sats.cell_grid(SUBPOINT_BIN_DEG);
    let mut transitions = Vec::new();
    let mut cells = Vec::new();
    for (si, &t) in sample_times.iter().enumerate() {
        if si > 0 {
            sats.advance_to(&ctx.constellation, t, &mut grid, &mut transitions);
        }
        let (sample_totals_before, sample_compliant_before) = (
            totals.iter().sum::<usize>(),
            compliant.iter().sum::<usize>(),
        );
        let (xs, ys, zs) = sats.xyz();
        for (li, &lat) in latitudes_deg.iter().enumerate() {
            // Count compliant vs visible satellites from a GT at (lat, 0°)
            // — longitude is immaterial for the (zonally symmetric) arc.
            let gt = GeoPoint::from_degrees(lat, 0.0);
            let g = Ecef::from_geo(gt, 0.0);
            let g_norm = g.norm();
            grid.window_cells(gt, radius_m, &mut cells);
            for &cell in &cells {
                batch_visible_from(
                    &g,
                    g_norm,
                    (xs, ys, zs),
                    grid.ids(cell),
                    e,
                    &mut |s, _, _| {
                        totals[li] += 1;
                        if gso_compliant(gt, &sats.position(s as usize), sep) {
                            compliant[li] += 1;
                        }
                    },
                );
            }
        }
        // Per-sample compliance fraction across all swept latitudes.
        let dt = totals.iter().sum::<usize>() - sample_totals_before;
        let dc = compliant.iter().sum::<usize>() - sample_compliant_before;
        if dt > 0 {
            series.record(dc as f64 / dt as f64);
        }
        series.snapshot_done(si, t);
        hb.tick(1);
    }
    latitudes_deg
        .iter()
        .enumerate()
        .map(|(li, &lat)| {
            let sky = usable_sky_fraction(
                deg_to_rad(lat),
                e,
                sep,
                ctx.config.constellation.max_altitude_m(),
            );
            GsoRow {
                lat_deg: lat,
                usable_sky_fraction: sky,
                usable_satellite_fraction: if totals[li] == 0 {
                    f64::NAN
                } else {
                    compliant[li] as f64 / totals[li] as f64
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentScale;
    use crate::snapshot::StudyContext;

    #[test]
    fn equator_most_constrained() {
        let ctx = StudyContext::build(ExperimentScale::Tiny.config());
        let rows = gso_sweep(&ctx, &[0.0, 20.0, 45.0], 40.0, 22.0, 0.0);
        assert_eq!(rows.len(), 3);
        assert!(rows[0].usable_sky_fraction < rows[2].usable_sky_fraction);
        // At the Equator a visible chunk of the constellation is masked.
        if rows[0].usable_satellite_fraction.is_finite() {
            assert!(rows[0].usable_satellite_fraction < 1.0);
        }
    }

    #[test]
    fn looser_separation_frees_sky() {
        let ctx = StudyContext::build(ExperimentScale::Tiny.config());
        let strict = gso_sweep(&ctx, &[0.0], 40.0, 22.0, 0.0);
        let loose = gso_sweep(&ctx, &[0.0], 40.0, 12.0, 0.0);
        assert!(loose[0].usable_sky_fraction > strict[0].usable_sky_fraction);
    }
}
