//! Fiber augmentation of metro GT capacity (paper §8, Fig. 11).
//!
//! A congested metro (the paper draws Paris) can borrow the
//! ground–satellite connectivity of nearby smaller cities over existing
//! terrestrial fiber: traffic rides fiber to a "distributed GT" and
//! uplinks from there, multiplying the number of reachable satellites and
//! the aggregate up/down capacity at the cost of a small fiber detour.

use crate::snapshot::StudyContext;
use leo_geo::{great_circle_distance_m, GeoPoint, SPEED_OF_LIGHT_M_S};
use leo_orbit::visibility::subpoint_index;
use leo_orbit::{visible_satellites, VisibilityParams};
use leo_util::span;
use std::collections::HashSet;

/// Speed of light in fiber ≈ 2/3 c.
pub const FIBER_SPEED_M_S: f64 = SPEED_OF_LIGHT_M_S * 2.0 / 3.0;

/// A satellite-diversity measurement for a metro with fiber-attached
/// satellite sites.
#[derive(Debug, Clone)]
pub struct FiberAugmentation {
    /// Satellites visible from the metro itself.
    pub metro_visible: usize,
    /// Distinct satellites visible from the metro plus all distributed
    /// GTs.
    pub augmented_visible: usize,
    /// Aggregate GT–satellite link capacity without augmentation, Gbps
    /// (visible satellites × per-link capacity).
    pub metro_capacity_gbps: f64,
    /// Aggregate capacity with distributed GTs, Gbps.
    pub augmented_capacity_gbps: f64,
    /// Worst one-way fiber detour to a distributed GT, ms.
    pub max_fiber_detour_ms: f64,
}

/// The paper's Fig. 11 example: Paris plus 5 nearby fiber-connected
/// cities.
pub fn paris_satellite_sites() -> (GeoPoint, Vec<(&'static str, GeoPoint)>) {
    (
        GeoPoint::from_degrees(48.86, 2.35),
        vec![
            ("Rouen", GeoPoint::from_degrees(49.44, 1.10)),
            ("Orléans", GeoPoint::from_degrees(47.90, 1.90)),
            ("Reims", GeoPoint::from_degrees(49.26, 4.03)),
            ("Amiens", GeoPoint::from_degrees(49.89, 2.30)),
            ("Le Mans", GeoPoint::from_degrees(48.00, 0.20)),
        ],
    )
}

/// Measure satellite diversity for a metro and its distributed GTs at
/// snapshot time `t_s`.
pub fn fiber_augmentation(
    ctx: &StudyContext,
    metro: GeoPoint,
    satellites_sites: &[(&str, GeoPoint)],
    t_s: f64,
) -> FiberAugmentation {
    let _span = span!(
        "fiber_augmentation",
        sites = satellites_sites.len(),
        t_s = t_s
    );
    let snap = ctx.constellation.positions_at(t_s);
    let index = subpoint_index(&snap);
    let params = VisibilityParams {
        min_elevation_rad: ctx.constellation.min_elevation_rad(),
        max_altitude_m: ctx.config.constellation.max_altitude_m(),
    };
    let (mut scratch, mut visible) = (Vec::new(), Vec::new());

    visible_satellites(metro, &snap, &index, &params, &mut scratch, &mut visible);
    let metro_set: HashSet<u32> = visible.iter().copied().collect();
    let mut union = metro_set.clone();
    let mut total_links = metro_set.len();
    let mut max_detour: f64 = 0.0;
    for (_, site) in satellites_sites {
        visible_satellites(*site, &snap, &index, &params, &mut scratch, &mut visible);
        total_links += visible.len();
        union.extend(visible.iter().copied());
        let detour_ms = great_circle_distance_m(metro, *site) / FIBER_SPEED_M_S * 1000.0;
        max_detour = max_detour.max(detour_ms);
    }
    let cap = ctx.config.network.gt_link_gbps;
    FiberAugmentation {
        metro_visible: metro_set.len(),
        augmented_visible: union.len(),
        metro_capacity_gbps: metro_set.len() as f64 * cap,
        augmented_capacity_gbps: total_links as f64 * cap,
        max_fiber_detour_ms: max_detour,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentScale;
    use crate::snapshot::StudyContext;

    fn ctx() -> StudyContext {
        StudyContext::build(ExperimentScale::Tiny.config())
    }

    #[test]
    fn augmentation_never_reduces_diversity() {
        let c = ctx();
        let (paris, sites) = paris_satellite_sites();
        for &t in &[0.0, 1800.0, 3600.0, 7200.0] {
            let f = fiber_augmentation(&c, paris, &sites, t);
            assert!(f.augmented_visible >= f.metro_visible);
            assert!(f.augmented_capacity_gbps >= f.metro_capacity_gbps);
        }
    }

    #[test]
    fn augmentation_adds_capacity() {
        let c = ctx();
        let (paris, sites) = paris_satellite_sites();
        let f = fiber_augmentation(&c, paris, &sites, 0.0);
        // 6 sites with mostly-overlapping views still multiply link count.
        assert!(
            f.augmented_capacity_gbps >= 3.0 * f.metro_capacity_gbps,
            "links: metro {} Gbps vs augmented {} Gbps",
            f.metro_capacity_gbps,
            f.augmented_capacity_gbps
        );
    }

    #[test]
    fn fiber_detours_are_small() {
        let c = ctx();
        let (paris, sites) = paris_satellite_sites();
        let f = fiber_augmentation(&c, paris, &sites, 0.0);
        // All sites are within ~200 km: ≤ ~1.1 ms one-way in fiber.
        assert!(f.max_fiber_detour_ms > 0.0 && f.max_fiber_detour_ms < 1.5);
    }
}
