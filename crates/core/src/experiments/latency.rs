//! Latency and its temporal variability (paper §4, Figs. 2–3).
//!
//! For every snapshot, shortest (minimum-delay) paths are computed for all
//! city pairs; per pair we track the minimum RTT across snapshots
//! (Fig. 2a) and the max-minus-min RTT range (Fig. 2b). The per-source
//! grouping means one Dijkstra per unique source city per snapshot.

use crate::experiments::spt::SourceSptPool;
use crate::metrics::Distribution;
use crate::snapshot::{EdgeDelta, Mode, NetworkSnapshot, NodeKind, StudyContext};
use leo_data::traffic::CityPair;
use leo_graph::with_thread_workspace;
use leo_util::span;
use leo_util::telemetry::{Heartbeat, MetricSeries};

/// Per-pair latency statistics across the simulated day.
#[derive(Debug, Clone)]
pub struct PairStats {
    /// The city pair.
    pub pair: CityPair,
    /// Minimum RTT across snapshots, ms (`None` if never reachable).
    pub min_rtt_ms: Option<f64>,
    /// Maximum RTT across snapshots where reachable, ms.
    pub max_rtt_ms: Option<f64>,
    /// Number of snapshots where a path existed.
    pub reachable: usize,
    /// Number of snapshots evaluated.
    pub total: usize,
}

impl PairStats {
    /// RTT variation (max − min), ms; `None` unless reachable at least
    /// twice.
    pub fn variation_ms(&self) -> Option<f64> {
        if self.reachable >= 2 {
            Some(self.max_rtt_ms? - self.min_rtt_ms?)
        } else {
            None
        }
    }
}

/// Run the latency study for one connectivity mode over all configured
/// snapshots. `threads = 0` uses all cores.
pub fn latency_study(ctx: &StudyContext, mode: Mode, threads: usize) -> Vec<PairStats> {
    latency_studies(ctx, &[mode], threads)
        .pop()
        // lint: allow(unwrap-in-lib) latency_studies returns one entry per requested mode, and one mode was passed
        .expect("one mode requested")
}

/// Run the latency study for several modes at once, sharing the
/// per-timestep orbit/visibility pass across them and the incremental
/// sweep state across consecutive timesteps, reusing one warm
/// [`DijkstraWorkspace`] per worker. Returns one `Vec<PairStats>` per
/// entry of `modes`, in order.
///
/// **Streaming**: the sweep folds into per-pair running
/// `{min, max, reachable}` accumulators (exact — min/max folds and
/// counts are order-independent, so the result is bit-identical to
/// collecting every snapshot first), holds O(pairs) state instead of
/// O(snapshots × pairs), emits one `series` telemetry event per
/// snapshot per mode (`rtt_ms_*`), and ticks a `latency_study`
/// [`Heartbeat`] per snapshot.
///
/// **Delta path**: when the study fits [`SourceSptPool`]'s budget, each
/// (mode, source) keeps an incremental shortest-path tree repaired from
/// the sweep's [`EdgeDelta`]s instead of re-running Dijkstra per
/// snapshot — bit-identical RTTs by the `SptWorkspace` equivalence
/// contract, so results are indistinguishable from the fallback.
///
/// [`DijkstraWorkspace`]: leo_graph::DijkstraWorkspace
pub fn latency_studies(ctx: &StudyContext, modes: &[Mode], threads: usize) -> Vec<Vec<PairStats>> {
    let _span = span!(
        "latency_study",
        modes = format!("{modes:?}"),
        snapshots = ctx.config.snapshot_times_s.len(),
        pairs = ctx.pairs.len(),
    );
    let times = ctx.config.snapshot_times_s.clone();
    let num_pairs = ctx.pairs.len();
    let pooled = SourceSptPool::fits(ctx, modes.len());
    let hb = Heartbeat::new("latency_study", times.len() as u64);

    /// Per-mode streaming state: per-pair running aggregates plus the
    /// telemetry series and (budget permitting) the resident trees.
    struct ModeAgg {
        min: Vec<f64>,
        max: Vec<f64>,
        reachable: Vec<u32>,
        series: MetricSeries,
        spt: Option<SourceSptPool>,
    }
    struct Acc {
        total: usize,
        modes: Vec<ModeAgg>,
    }

    let acc = ctx.sweep_fold_deltas(
        &times,
        modes,
        threads,
        || Acc {
            total: 0,
            modes: modes
                .iter()
                .map(|&m| ModeAgg {
                    min: vec![f64::INFINITY; num_pairs],
                    max: vec![f64::NEG_INFINITY; num_pairs],
                    reachable: vec![0; num_pairs],
                    series: MetricSeries::new(rtt_series_name(m)),
                    spt: pooled.then(|| SourceSptPool::new(ctx)),
                })
                .collect(),
        },
        |acc, i, snaps, deltas| {
            for (mi, snap) in snaps.iter().enumerate() {
                let agg = &mut acc.modes[mi];
                let rtts = match agg.spt.as_mut() {
                    Some(pool) => snapshot_rtts_spt(ctx, snap, &deltas[mi], pool),
                    None => snapshot_rtts_on(ctx, snap),
                };
                for (pi, r) in rtts.iter().enumerate() {
                    if let Some(rtt) = *r {
                        agg.min[pi] = agg.min[pi].min(rtt);
                        agg.max[pi] = agg.max[pi].max(rtt);
                        agg.reachable[pi] += 1;
                        agg.series.record(rtt);
                    }
                }
                agg.series.snapshot_done(i, snap.t_s);
            }
            acc.total += 1;
            hb.tick(1);
        },
        |a, b| {
            a.total += b.total;
            for (am, bm) in a.modes.iter_mut().zip(&b.modes) {
                for pi in 0..num_pairs {
                    am.min[pi] = am.min[pi].min(bm.min[pi]);
                    am.max[pi] = am.max[pi].max(bm.max[pi]);
                    am.reachable[pi] += bm.reachable[pi];
                }
                am.series.merge(&bm.series);
            }
        },
    );

    acc.modes
        .iter()
        .map(|agg| {
            ctx.pairs
                .iter()
                .enumerate()
                .map(|(pi, &pair)| {
                    let reachable = agg.reachable[pi] as usize;
                    PairStats {
                        pair,
                        min_rtt_ms: (reachable > 0).then_some(agg.min[pi]),
                        max_rtt_ms: (reachable > 0).then_some(agg.max[pi]),
                        reachable,
                        total: acc.total,
                    }
                })
                .collect()
        })
        .collect()
}

/// Telemetry series name for per-snapshot RTT samples under `mode`.
fn rtt_series_name(mode: Mode) -> &'static str {
    match mode {
        Mode::BpOnly => "rtt_ms_bp",
        Mode::Hybrid => "rtt_ms_hybrid",
        Mode::IslOnly => "rtt_ms_isl",
    }
}

/// RTTs (ms) for all pairs at one snapshot.
pub fn snapshot_rtts(ctx: &StudyContext, t_s: f64, mode: Mode) -> Vec<Option<f64>> {
    snapshot_rtts_on(ctx, &ctx.snapshot(t_s, mode))
}

/// RTTs (ms) for all pairs on an already-built snapshot: one Dijkstra
/// per unique source city, on this thread's warm workspace.
pub fn snapshot_rtts_on(ctx: &StudyContext, snap: &NetworkSnapshot) -> Vec<Option<f64>> {
    let mut out = vec![None; ctx.pairs.len()];
    let mut targets = Vec::new();
    with_thread_workspace(|ws| {
        for (src, pair_idxs) in ctx.pairs_by_src() {
            targets.clear();
            targets.extend(
                pair_idxs
                    .iter()
                    .map(|&i| snap.city_node(ctx.pairs[i].dst as usize)),
            );
            // Early exit once this source's destinations are settled —
            // the far side of the constellation never needs visiting.
            let view = ws.run_multi(&snap.graph, snap.city_node(*src as usize), None, &targets);
            for &i in pair_idxs {
                let d = view.dist(snap.city_node(ctx.pairs[i].dst as usize));
                if d.is_finite() {
                    out[i] = Some(crate::rtt_ms(d));
                }
            }
        }
    });
    out
}

/// RTTs (ms) for all pairs on a snapshot via pooled incremental
/// shortest-path trees: each source pays a delta repair instead of a
/// fresh Dijkstra, and the repair's relaxation drain stops as soon as
/// this source's destinations have settled
/// ([`SourceSptPool::tree_for_targets`]). Bit-identical to
/// [`snapshot_rtts_on`] — repaired distances for queried targets match
/// fresh runs exactly (the `SptWorkspace` early-exit contract), and
/// `run_multi`'s early exit settles every queried target at its true
/// distance.
pub fn snapshot_rtts_spt(
    ctx: &StudyContext,
    snap: &NetworkSnapshot,
    delta: &EdgeDelta,
    pool: &mut SourceSptPool,
) -> Vec<Option<f64>> {
    let mut out = vec![None; ctx.pairs.len()];
    let mut targets = Vec::new();
    for (si, (src, pair_idxs)) in ctx.pairs_by_src().iter().enumerate() {
        targets.clear();
        targets.extend(
            pair_idxs
                .iter()
                .map(|&i| snap.city_node(ctx.pairs[i].dst as usize)),
        );
        let spt = pool.tree_for_targets(si, snap.city_node(*src as usize), snap, delta, &targets);
        for &i in pair_idxs {
            let d = spt.dist(snap.city_node(ctx.pairs[i].dst as usize));
            if d.is_finite() {
                out[i] = Some(crate::rtt_ms(d));
            }
        }
    }
    out
}

/// The headline comparison numbers of §1/§4.
#[derive(Debug, Clone)]
pub struct LatencySummary {
    /// Median RTT variation, BP, ms.
    pub bp_median_variation_ms: f64,
    /// Median RTT variation, hybrid, ms.
    pub hybrid_median_variation_ms: f64,
    /// 95th-percentile RTT variation, BP, ms.
    pub bp_p95_variation_ms: f64,
    /// 95th-percentile RTT variation, hybrid, ms.
    pub hybrid_p95_variation_ms: f64,
    /// Largest min-RTT advantage of hybrid over BP across pairs, ms
    /// (the paper reports 57 ms).
    pub max_min_rtt_gap_ms: f64,
    /// Maximum RTT variation across pairs, BP, ms (paper: ~100 ms).
    pub bp_max_variation_ms: f64,
    /// Maximum RTT variation across pairs, hybrid, ms (paper: < 20 ms).
    pub hybrid_max_variation_ms: f64,
}

/// Compare BP and hybrid pair statistics (same pair ordering).
pub fn summarize(bp: &[PairStats], hybrid: &[PairStats]) -> LatencySummary {
    // lint: allow(panic-reachable) caller contract: the two series are parallel per-pair arrays; a length mismatch means the study wiring is broken
    assert_eq!(bp.len(), hybrid.len());
    let var = |stats: &[PairStats]| -> Distribution {
        Distribution::from_samples(
            &stats
                .iter()
                .filter_map(PairStats::variation_ms)
                .collect::<Vec<_>>(),
        )
    };
    let bp_var = var(bp);
    let hy_var = var(hybrid);
    let mut max_gap = 0.0f64;
    for (b, h) in bp.iter().zip(hybrid) {
        if let (Some(bm), Some(hm)) = (b.min_rtt_ms, h.min_rtt_ms) {
            max_gap = max_gap.max(bm - hm);
        }
    }
    LatencySummary {
        bp_median_variation_ms: bp_var.median(),
        hybrid_median_variation_ms: hy_var.median(),
        bp_p95_variation_ms: bp_var.percentile(95.0),
        hybrid_p95_variation_ms: hy_var.percentile(95.0),
        max_min_rtt_gap_ms: max_gap,
        bp_max_variation_ms: bp_var.max(),
        hybrid_max_variation_ms: hy_var.max(),
    }
}

/// One snapshot of a single pair's path (Fig. 3: Maceió–Durban).
#[derive(Debug, Clone)]
pub struct PathSnapshot {
    /// Snapshot time, s.
    pub t_s: f64,
    /// RTT, ms (`None` if unreachable).
    pub rtt_ms: Option<f64>,
    /// Total hops on the path.
    pub hops: usize,
    /// Aircraft used as intermediate hops.
    pub aircraft_hops: usize,
    /// Ground relays (grid GTs) used as intermediate hops.
    pub relay_hops: usize,
}

/// Trace one named city pair across all snapshots under `mode`.
///
/// # Panics
/// Panics if either city name is not in the loaded city list.
pub fn pair_timeseries(
    ctx: &StudyContext,
    src_name: &str,
    dst_name: &str,
    mode: Mode,
    threads: usize,
) -> Vec<PathSnapshot> {
    let _span = span!(
        "pair_timeseries",
        src = src_name,
        dst = dst_name,
        mode = format!("{mode:?}")
    );
    let src = ctx
        .ground
        .city_index(src_name)
        // lint: allow(panic-reachable) config-time lookup of a caller-named city; a typo must fail loudly, not chart a wrong pair
        .unwrap_or_else(|| panic!("unknown city {src_name}"));
    let dst = ctx
        .ground
        .city_index(dst_name)
        // lint: allow(panic-reachable) config-time lookup of a caller-named city; a typo must fail loudly, not chart a wrong pair
        .unwrap_or_else(|| panic!("unknown city {dst_name}"));
    let times = ctx.config.snapshot_times_s.clone();
    ctx.sweep_map(&times, &[mode], threads, |i, snaps| {
        let t = times[i];
        let snap = &snaps[0];
        let path = with_thread_workspace(|ws| {
            ws.run(
                &snap.graph,
                snap.city_node(src),
                None,
                Some(snap.city_node(dst)),
            )
            .extract_path(snap.city_node(dst))
        });
        match path {
            Some(p) => {
                let mut aircraft = 0;
                let mut relays = 0;
                for &n in &p.nodes[1..p.nodes.len() - 1] {
                    match snap.nodes[n as usize] {
                        NodeKind::Aircraft(_) => aircraft += 1,
                        NodeKind::Relay(_) => relays += 1,
                        _ => {}
                    }
                }
                PathSnapshot {
                    t_s: t,
                    rtt_ms: Some(crate::rtt_ms(p.total_weight)),
                    hops: p.num_hops(),
                    aircraft_hops: aircraft,
                    relay_hops: relays,
                }
            }
            None => PathSnapshot {
                t_s: t,
                rtt_ms: None,
                hops: 0,
                aircraft_hops: 0,
                relay_hops: 0,
            },
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentScale;

    fn ctx() -> StudyContext {
        StudyContext::build(ExperimentScale::Tiny.config())
    }

    #[test]
    fn hybrid_min_rtt_never_worse() {
        let c = ctx();
        let bp = latency_study(&c, Mode::BpOnly, 2);
        let hy = latency_study(&c, Mode::Hybrid, 2);
        for (b, h) in bp.iter().zip(&hy) {
            if let (Some(bm), Some(hm)) = (b.min_rtt_ms, h.min_rtt_ms) {
                // Hybrid's graph is a superset of BP's: its shortest path
                // can only be shorter or equal.
                assert!(hm <= bm + 1e-9, "pair {:?}: hybrid {hm} > bp {bm}", b.pair);
            }
        }
    }

    #[test]
    fn hybrid_reaches_at_least_as_often() {
        let c = ctx();
        let bp = latency_study(&c, Mode::BpOnly, 2);
        let hy = latency_study(&c, Mode::Hybrid, 2);
        for (b, h) in bp.iter().zip(&hy) {
            assert!(h.reachable >= b.reachable);
        }
    }

    #[test]
    fn rtts_physically_plausible() {
        let c = ctx();
        let hy = latency_study(&c, Mode::Hybrid, 2);
        for s in &hy {
            if let Some(m) = s.min_rtt_ms {
                // ≥ 2 radio hops up+down: > 7 ms; across the planet < 400.
                assert!(m > 7.0 && m < 400.0, "RTT {m} ms");
            }
        }
    }

    #[test]
    fn variation_requires_two_reachable() {
        let s = PairStats {
            pair: CityPair { src: 0, dst: 1 },
            min_rtt_ms: Some(10.0),
            max_rtt_ms: Some(10.0),
            reachable: 1,
            total: 4,
        };
        assert_eq!(s.variation_ms(), None);
    }

    #[test]
    fn summary_shapes() {
        let c = ctx();
        let bp = latency_study(&c, Mode::BpOnly, 2);
        let hy = latency_study(&c, Mode::Hybrid, 2);
        let s = summarize(&bp, &hy);
        assert!(s.max_min_rtt_gap_ms >= 0.0);
        // The paper's headline: BP varies more than hybrid.
        assert!(s.bp_median_variation_ms >= 0.0);
        assert!(s.hybrid_median_variation_ms >= 0.0);
    }

    #[test]
    fn timeseries_runs_for_known_pair() {
        let mut cfg = ExperimentScale::Tiny.config();
        cfg.num_cities = 340; // ensure Maceió & Durban are loaded
        let c = StudyContext::build(cfg);
        let ts = pair_timeseries(&c, "Maceió", "Durban", Mode::BpOnly, 2);
        assert_eq!(ts.len(), c.config.snapshot_times_s.len());
        for p in &ts {
            if p.rtt_ms.is_some() {
                assert!(p.hops >= 2);
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown city")]
    fn timeseries_rejects_unknown_city() {
        let c = ctx();
        pair_timeseries(&c, "Gotham", "Tokyo", Mode::BpOnly, 1);
    }
}
