//! Delta-driven incremental shortest-path trees for per-source sweeps.
//!
//! The fig2 latency and churn drivers run one SSSP per unique source
//! city per snapshot. With [`StudyContext::sweep_fold_deltas`] supplying
//! per-mode [`EdgeDelta`]s, each source can instead keep a
//! [`SptWorkspace`] alive across consecutive snapshots and repair it —
//! bit-identical distances and parents (the workspace's equivalence
//! contract), at a fraction of a fresh Dijkstra when membership churn
//! is small.
//!
//! Keeping every tree resident costs
//! `modes × sources × nodes` node-entries per chunk accumulator, so
//! pooling is budgeted: [`SourceSptPool::fits`] gates it on an estimate
//! against [`SourceSptPool::ENTRY_BUDGET`], and callers fall back to
//! the early-exit `run_multi` path (also output-identical) when the
//! study is too large — protecting the paper-scale memory envelope.
//!
//! [`StudyContext::sweep_fold_deltas`]: crate::snapshot::StudyContext::sweep_fold_deltas
//! [`EdgeDelta`]: crate::snapshot::EdgeDelta

use crate::snapshot::{EdgeDelta, NetworkSnapshot, StudyContext};
use leo_graph::{NodeId, SptWorkspace};

/// One mode's pool of incremental shortest-path trees: one
/// [`SptWorkspace`] per entry of [`StudyContext::pairs_by_src`], in
/// order.
///
/// Edge-delta ids are mode-scoped, so a pool must only ever see one
/// mode's snapshots and deltas — studies over several modes keep one
/// pool per mode.
pub struct SourceSptPool {
    spts: Vec<SptWorkspace>,
}

impl SourceSptPool {
    /// Node-entry budget per chunk accumulator (~17 bytes/entry of
    /// resident tree state, so ~25 MiB per sweep chunk). Tiny and Bench
    /// fig2 studies pool comfortably; Paper scale (≈1000 sources ×
    /// thousands of nodes × 2 modes) exceeds it and falls back.
    pub const ENTRY_BUDGET: usize = 1_500_000;

    /// Whether a `num_modes`-mode study over `ctx`'s pair set fits the
    /// pooling budget. The node count is estimated from satellites,
    /// cities, and relays (aircraft add a few percent — this is a
    /// sizing heuristic, not a correctness bound).
    pub fn fits(ctx: &StudyContext, num_modes: usize) -> bool {
        let approx_nodes = ctx.num_satellites() + ctx.config.num_cities + ctx.ground.relays.len();
        num_modes
            .saturating_mul(ctx.pairs_by_src().len())
            .saturating_mul(approx_nodes)
            <= Self::ENTRY_BUDGET
    }

    /// An empty pool with one cold tree per unique source city.
    pub fn new(ctx: &StudyContext) -> Self {
        Self {
            spts: (0..ctx.pairs_by_src().len())
                .map(|_| SptWorkspace::new())
                .collect(),
        }
    }

    /// The tree rooted at source-group `si`'s city node, brought up to
    /// date for `snap`: repaired from `delta` when the tree is warm and
    /// the delta is incremental, rebuilt from scratch otherwise (first
    /// step of a chunk, or a `full` delta).
    pub fn tree(
        &mut self,
        si: usize,
        source: NodeId,
        snap: &NetworkSnapshot,
        delta: &EdgeDelta,
    ) -> &SptWorkspace {
        let spt = &mut self.spts[si];
        if !delta.full && spt.is_ready() && spt.source() == source {
            spt.apply(&snap.graph, &delta.removed, &delta.reweighted);
        } else {
            spt.rebuild(&snap.graph, source);
        }
        spt
    }

    /// [`SourceSptPool::tree`] when only `targets` will be queried this
    /// snapshot: incremental repairs go through
    /// [`SptWorkspace::apply_for_targets`], which stops the relaxation
    /// drain as soon as every target settles. Distances and extracted
    /// paths for the targets are bitwise identical to [`Self::tree`]
    /// (the workspace's early-exit contract); other nodes may read as
    /// unreached, so callers must not query beyond `targets` until the
    /// next call. Full rebuilds are unaffected.
    pub fn tree_for_targets(
        &mut self,
        si: usize,
        source: NodeId,
        snap: &NetworkSnapshot,
        delta: &EdgeDelta,
        targets: &[NodeId],
    ) -> &SptWorkspace {
        let spt = &mut self.spts[si];
        if !delta.full && spt.is_ready() && spt.source() == source {
            spt.apply_for_targets(&snap.graph, &delta.removed, &delta.reweighted, targets);
        } else {
            spt.rebuild(&snap.graph, source);
        }
        spt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentScale;
    use crate::snapshot::{Mode, TimeSweep};

    #[test]
    fn tiny_fits_budget_and_paper_scale_does_not() {
        let ctx = StudyContext::build(ExperimentScale::Tiny.config());
        assert!(SourceSptPool::fits(&ctx, 2));
        // An absurd mode multiplicity blows any budget — the gate must
        // actually gate.
        assert!(!SourceSptPool::fits(&ctx, 100_000));
    }

    #[test]
    fn targeted_pool_matches_fresh_dijkstra_at_targets_across_sweep() {
        let ctx = StudyContext::build(ExperimentScale::Tiny.config());
        let modes = [Mode::Hybrid];
        let mut sweep = TimeSweep::new(&ctx, &modes);
        let mut pool = SourceSptPool::new(&ctx);
        for t in [0.0, 15.0, 90.0, 900.0] {
            let (snaps, deltas) = sweep.step_with_deltas(t);
            let snap = &snaps[0];
            for (si, (src, pair_idxs)) in ctx.pairs_by_src().iter().enumerate() {
                let source = snap.city_node(*src as usize);
                let targets: Vec<NodeId> = pair_idxs
                    .iter()
                    .map(|&i| snap.city_node(ctx.pairs[i].dst as usize))
                    .collect();
                let spt = pool.tree_for_targets(si, source, snap, &deltas[0], &targets);
                let fresh = leo_graph::dijkstra(&snap.graph, source);
                for &tgt in &targets {
                    assert_eq!(
                        spt.dist(tgt).to_bits(),
                        fresh.dist[tgt as usize].to_bits(),
                        "t={t} src={src} target {tgt}"
                    );
                }
            }
        }
    }

    #[test]
    fn pooled_trees_match_fresh_dijkstra_across_sweep() {
        let ctx = StudyContext::build(ExperimentScale::Tiny.config());
        let modes = [Mode::Hybrid];
        let mut sweep = TimeSweep::new(&ctx, &modes);
        let mut pool = SourceSptPool::new(&ctx);
        for t in [0.0, 15.0, 90.0, 900.0] {
            let (snaps, deltas) = sweep.step_with_deltas(t);
            let snap = &snaps[0];
            for (si, (src, _)) in ctx.pairs_by_src().iter().enumerate() {
                let source = snap.city_node(*src as usize);
                let spt = pool.tree(si, source, snap, &deltas[0]);
                let fresh = leo_graph::dijkstra(&snap.graph, source);
                for v in 0..snap.graph.num_nodes() {
                    assert_eq!(
                        spt.dist(v as NodeId).to_bits(),
                        fresh.dist[v].to_bits(),
                        "t={t} src={src} node {v}"
                    );
                }
            }
        }
    }
}
