//! The paper's experiments, one module per study.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`latency`] | Fig. 2(a), Fig. 2(b), Fig. 3, §4 summary numbers |
//! | [`throughput`] | Fig. 4, Fig. 5, the §5 disconnected-satellite stat, and the "lax max-flow" baseline ablation |
//! | [`weather`] | Fig. 6, Fig. 7, Fig. 8 |
//! | [`gso_arc`] | Fig. 9 |
//! | [`cross_shell`] | Fig. 10 |
//! | [`fiber`] | Fig. 11 |
//! | [`routing`] | §5 future work: congestion-aware / Suurballe routing ablation |
//! | [`churn`] | extension: path-churn statistics behind Fig. 2(b) |
//! | [`weather_throughput`] | extension: MODCOD-degraded capacities joining §5 and §6 |
//! | [`packet_delay`] | extension: packet-level queueing delay/jitter on BP vs hybrid paths |
//! | [`spt`] | shared: budgeted incremental shortest-path-tree pool for the delta-path drivers |

pub mod churn;
pub mod cross_shell;
pub mod fiber;
pub mod gso_arc;
pub mod latency;
pub mod packet_delay;
pub mod routing;
pub mod spt;
pub mod throughput;
pub mod weather;
pub mod weather_throughput;
