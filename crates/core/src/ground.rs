//! The ground segment: city GTs and the transit-relay grid.

use crate::config::StudyConfig;
use leo_data::cities::{load_cities, City};
use leo_data::landmask::is_land;
use leo_geo::{GeoPoint, SphereGrid};

/// The static part of the ground segment (aircraft are per-snapshot).
#[derive(Debug, Clone)]
pub struct GroundSegment {
    /// Traffic source/sink cities, population-descending.
    pub cities: Vec<City>,
    /// Transit-only relay GTs: grid points on land within the relay
    /// radius of at least one city (paper §3: every 0.5° within 2,000 km
    /// of the cities — "the highest density of GTs tested in prior work").
    pub relays: Vec<GeoPoint>,
}

impl GroundSegment {
    /// Build the ground segment for a configuration.
    pub fn build(cfg: &StudyConfig) -> Self {
        let cities = load_cities(cfg.num_cities, cfg.seed);
        let relays = match cfg.relay_grid_deg {
            Some(spacing) => build_relay_grid(&cities, spacing, cfg.relay_radius_m),
            None => Vec::new(),
        };
        Self { cities, relays }
    }

    /// Index of a (real) city by name.
    pub fn city_index(&self, name: &str) -> Option<usize> {
        self.cities.iter().position(|c| c.name == name)
    }
}

/// Lay a uniform lat/lon grid and keep points that are on land and within
/// `radius_m` of some city.
fn build_relay_grid(cities: &[City], spacing_deg: f64, radius_m: f64) -> Vec<GeoPoint> {
    // lint: allow(panic-reachable) grid validation: a non-positive spacing would loop forever
    assert!(spacing_deg > 0.0);
    // Spatial index over cities for the distance test.
    let mut city_index = SphereGrid::new(4.0);
    for (i, c) in cities.iter().enumerate() {
        city_index.insert(i as u32, c.pos);
    }
    let mut relays = Vec::new();
    let mut scratch = Vec::new();
    let lat_steps = (180.0 / spacing_deg) as i64;
    let lon_steps = (360.0 / spacing_deg) as i64;
    for i in 0..=lat_steps {
        let lat = -90.0 + i as f64 * spacing_deg;
        // Skip extreme latitudes: no cities within 2,000 km of ±80°+.
        if lat.abs() > 80.0 {
            continue;
        }
        for j in 0..lon_steps {
            let lon = -180.0 + j as f64 * spacing_deg;
            let p = GeoPoint::from_degrees(lat, lon);
            if !is_land(p) {
                continue;
            }
            city_index.query_radius(p, radius_m, &mut scratch);
            if !scratch.is_empty() {
                relays.push(p);
            }
        }
    }
    relays
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentScale;
    use leo_geo::great_circle_distance_m;

    fn tiny() -> GroundSegment {
        GroundSegment::build(&ExperimentScale::Tiny.config())
    }

    #[test]
    fn cities_loaded_in_order() {
        let g = tiny();
        assert_eq!(g.cities.len(), 60);
        assert_eq!(g.cities[0].name, "Tokyo");
    }

    #[test]
    fn relays_on_land_and_near_cities() {
        let g = tiny();
        assert!(!g.relays.is_empty());
        for r in &g.relays {
            assert!(is_land(*r));
            let nearest = g
                .cities
                .iter()
                .map(|c| great_circle_distance_m(c.pos, *r))
                .fold(f64::INFINITY, f64::min);
            assert!(
                nearest <= 2_000_000.0 + 1.0,
                "relay {r} too remote: {nearest}"
            );
        }
    }

    #[test]
    fn finer_grid_means_more_relays() {
        let mut cfg = ExperimentScale::Tiny.config();
        cfg.relay_grid_deg = Some(5.0);
        let coarse = GroundSegment::build(&cfg).relays.len();
        cfg.relay_grid_deg = Some(2.5);
        let fine = GroundSegment::build(&cfg).relays.len();
        assert!(fine > 2 * coarse, "2.5° ({fine}) vs 5° ({coarse})");
    }

    #[test]
    fn relays_can_be_disabled() {
        let mut cfg = ExperimentScale::Tiny.config();
        cfg.relay_grid_deg = None;
        let g = GroundSegment::build(&cfg);
        assert!(g.relays.is_empty());
    }

    #[test]
    fn city_index_lookup() {
        let g = tiny();
        assert_eq!(g.city_index("Tokyo"), Some(0));
        assert!(g.city_index("Nowhere").is_none());
    }

    #[test]
    fn deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.relays.len(), b.relays.len());
        assert_eq!(a.cities.len(), b.cities.len());
    }
}
