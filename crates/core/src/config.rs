//! Study configuration: constellation choice, capacities, frequencies,
//! and experiment scale presets.

use leo_orbit::{Constellation, Shell};
use leo_util::config::{KvDoc, KvError, KvWriter};

/// Which constellation to study (paper §2: one shell each, per the FCC
/// filings of the first deployment phases).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstellationKind {
    /// Starlink phase 1: 72×22 at 550 km, 53°, e = 25°.
    Starlink,
    /// Kuiper: 34×34 at 630 km, 51.9°, e = 30°.
    Kuiper,
    /// Starlink's 53° shell plus a 90° polar shell (for the cross-shell
    /// study of §8 / Fig. 10).
    StarlinkPlusPolar,
}

impl ConstellationKind {
    /// Instantiate the constellation.
    pub fn constellation(self) -> Constellation {
        match self {
            Self::Starlink => Constellation::starlink(),
            Self::Kuiper => Constellation::kuiper(),
            Self::StarlinkPlusPolar => {
                Constellation::new(vec![Shell::starlink_phase1(), Shell::polar_shell()], 25.0)
            }
        }
    }

    /// Shell altitude used for visibility query sizing (highest shell).
    pub fn max_altitude_m(self) -> f64 {
        match self {
            Self::Starlink => 550_000.0,
            Self::Kuiper => 630_000.0,
            Self::StarlinkPlusPolar => 560_000.0,
        }
    }

    /// Stable config-text name (see [`StudyConfig::to_kv_string`]).
    pub fn name(self) -> &'static str {
        match self {
            Self::Starlink => "starlink",
            Self::Kuiper => "kuiper",
            Self::StarlinkPlusPolar => "starlink_plus_polar",
        }
    }

    /// Parse a config-text name.
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "starlink" => Some(Self::Starlink),
            "kuiper" => Some(Self::Kuiper),
            "starlink_plus_polar" => Some(Self::StarlinkPlusPolar),
            _ => None,
        }
    }
}

/// Link-layer parameters (paper §2 and §5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// Capacity of each GT–satellite radio link, Gbps (paper: 20).
    pub gt_link_gbps: f64,
    /// Capacity of each laser ISL, Gbps (paper: 100).
    pub isl_gbps: f64,
    /// Uplink carrier frequency, GHz (paper: 14.25, Ku band).
    pub uplink_ghz: f64,
    /// Downlink carrier frequency, GHz (paper: 11.7).
    pub downlink_ghz: f64,
    /// Minimum clearance of an ISL chord above the surface, meters
    /// (paper §2: lasers must stay out of the lower ~80 km of atmosphere).
    pub isl_clearance_m: f64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self {
            gt_link_gbps: 20.0,
            isl_gbps: 100.0,
            uplink_ghz: 14.25,
            downlink_ghz: 11.7,
            isl_clearance_m: 80_000.0,
        }
    }
}

/// Full study configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyConfig {
    /// The constellation under study.
    pub constellation: ConstellationKind,
    /// Link parameters.
    pub network: NetworkConfig,
    /// How many cities serve as traffic endpoints (paper: 1,000).
    pub num_cities: usize,
    /// How many random city pairs form the traffic matrix (paper: 5,000).
    pub num_pairs: usize,
    /// Minimum geodesic separation of a pair, meters (paper: 2,000 km).
    pub min_pair_distance_m: f64,
    /// Spacing of the transit-relay grid, degrees (paper: 0.5°); `None`
    /// disables grid relays entirely.
    pub relay_grid_deg: Option<f64>,
    /// Maximum distance of a grid relay from the nearest city, meters
    /// (paper: 2,000 km).
    pub relay_radius_m: f64,
    /// Air-traffic density multiplier (1.0 = baseline corridor model).
    pub flight_density: f64,
    /// Snapshot times over the simulated day, seconds since epoch.
    pub snapshot_times_s: Vec<f64>,
    /// Master RNG seed (city tail, pair sampling).
    pub seed: u64,
}

impl StudyConfig {
    /// Evenly spaced snapshot times covering one day.
    pub fn day_snapshots(n: usize) -> Vec<f64> {
        // lint: allow(panic-reachable) config validation: zero snapshots would silently produce an empty study
        assert!(n > 0);
        (0..n).map(|i| 86_400.0 * i as f64 / n as f64).collect()
    }

    /// Serialize to the workspace's `key = value` config text
    /// (`leo_util::config` format). Round-trips exactly through
    /// [`StudyConfig::from_kv_str`]: every float is written with
    /// shortest-exact formatting.
    pub fn to_kv_string(&self) -> String {
        let mut w = KvWriter::new();
        w.section("study")
            .field("constellation", self.constellation.name())
            .field("num_cities", self.num_cities)
            .field("num_pairs", self.num_pairs)
            .field("min_pair_distance_m", self.min_pair_distance_m)
            .field_opt_f64("relay_grid_deg", self.relay_grid_deg)
            .field("relay_radius_m", self.relay_radius_m)
            .field("flight_density", self.flight_density)
            .field_f64_list("snapshot_times_s", &self.snapshot_times_s)
            .field("seed", self.seed);
        w.section("network")
            .field("gt_link_gbps", self.network.gt_link_gbps)
            .field("isl_gbps", self.network.isl_gbps)
            .field("uplink_ghz", self.network.uplink_ghz)
            .field("downlink_ghz", self.network.downlink_ghz)
            .field("isl_clearance_m", self.network.isl_clearance_m);
        w.finish()
    }

    /// Parse config text produced by [`StudyConfig::to_kv_string`] (or
    /// written by hand in the same format).
    pub fn from_kv_str(text: &str) -> Result<Self, KvError> {
        let doc = KvDoc::parse(text)?;
        let constellation_name = doc.require("study", "constellation")?;
        let constellation =
            ConstellationKind::from_name(constellation_name).ok_or_else(|| KvError::BadValue {
                section: "study".into(),
                key: "constellation".into(),
                value: constellation_name.to_string(),
            })?;
        Ok(StudyConfig {
            constellation,
            network: NetworkConfig {
                gt_link_gbps: doc.get_f64("network", "gt_link_gbps")?,
                isl_gbps: doc.get_f64("network", "isl_gbps")?,
                uplink_ghz: doc.get_f64("network", "uplink_ghz")?,
                downlink_ghz: doc.get_f64("network", "downlink_ghz")?,
                isl_clearance_m: doc.get_f64("network", "isl_clearance_m")?,
            },
            num_cities: doc.get_usize("study", "num_cities")?,
            num_pairs: doc.get_usize("study", "num_pairs")?,
            min_pair_distance_m: doc.get_f64("study", "min_pair_distance_m")?,
            relay_grid_deg: doc.get_opt_f64("study", "relay_grid_deg")?,
            relay_radius_m: doc.get_f64("study", "relay_radius_m")?,
            flight_density: doc.get_f64("study", "flight_density")?,
            snapshot_times_s: doc.get_f64_list("study", "snapshot_times_s")?,
            seed: doc.get_u64("study", "seed")?,
        })
    }
}

/// Canned configuration sizes, so tests, benches, and full paper runs
/// share one definition of "how big".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// Seconds-fast: unit/integration tests.
    Tiny,
    /// Tens of seconds: criterion benches and CI.
    Bench,
    /// The paper's full setup: 1,000 cities, 5,000 pairs, 96 snapshots,
    /// 0.5° relay grid. Minutes to hours depending on experiment.
    Paper,
}

impl ExperimentScale {
    /// Materialize the scale into a Starlink study config.
    pub fn config(self) -> StudyConfig {
        match self {
            Self::Tiny => StudyConfig {
                constellation: ConstellationKind::Starlink,
                network: NetworkConfig::default(),
                num_cities: 60,
                num_pairs: 40,
                min_pair_distance_m: 2_000_000.0,
                relay_grid_deg: Some(5.0),
                relay_radius_m: 2_000_000.0,
                flight_density: 0.5,
                snapshot_times_s: StudyConfig::day_snapshots(2),
                seed: 42,
            },
            Self::Bench => StudyConfig {
                constellation: ConstellationKind::Starlink,
                network: NetworkConfig::default(),
                num_cities: 250,
                num_pairs: 500,
                min_pair_distance_m: 2_000_000.0,
                relay_grid_deg: Some(2.0),
                relay_radius_m: 2_000_000.0,
                flight_density: 1.0,
                snapshot_times_s: StudyConfig::day_snapshots(8),
                seed: 42,
            },
            Self::Paper => StudyConfig {
                constellation: ConstellationKind::Starlink,
                network: NetworkConfig::default(),
                num_cities: 1000,
                num_pairs: 5000,
                min_pair_distance_m: 2_000_000.0,
                relay_grid_deg: Some(0.5),
                relay_radius_m: 2_000_000.0,
                flight_density: 1.0,
                snapshot_times_s: StudyConfig::day_snapshots(96),
                seed: 42,
            },
        }
    }

    /// Parse from a CLI-ish string.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Some(Self::Tiny),
            "bench" => Some(Self::Bench),
            "paper" => Some(Self::Paper),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let n = NetworkConfig::default();
        assert_eq!(n.gt_link_gbps, 20.0);
        assert_eq!(n.isl_gbps, 100.0);
        assert_eq!(n.uplink_ghz, 14.25);
        assert_eq!(n.downlink_ghz, 11.7);
    }

    #[test]
    fn paper_scale_matches_paper() {
        let c = ExperimentScale::Paper.config();
        assert_eq!(c.num_cities, 1000);
        assert_eq!(c.num_pairs, 5000);
        assert_eq!(c.snapshot_times_s.len(), 96);
        assert_eq!(c.relay_grid_deg, Some(0.5));
        // 15-minute snapshot spacing.
        assert!((c.snapshot_times_s[1] - c.snapshot_times_s[0] - 900.0).abs() < 1e-9);
    }

    #[test]
    fn scales_ordered_by_size() {
        let t = ExperimentScale::Tiny.config();
        let b = ExperimentScale::Bench.config();
        let p = ExperimentScale::Paper.config();
        assert!(t.num_cities < b.num_cities && b.num_cities < p.num_cities);
        assert!(t.num_pairs < b.num_pairs && b.num_pairs < p.num_pairs);
    }

    #[test]
    fn parse_scale() {
        assert_eq!(
            ExperimentScale::parse("paper"),
            Some(ExperimentScale::Paper)
        );
        assert_eq!(ExperimentScale::parse("TINY"), Some(ExperimentScale::Tiny));
        assert_eq!(ExperimentScale::parse("nope"), None);
    }

    #[test]
    fn kv_roundtrip_all_scales() {
        for scale in [
            ExperimentScale::Tiny,
            ExperimentScale::Bench,
            ExperimentScale::Paper,
        ] {
            let cfg = scale.config();
            let text = cfg.to_kv_string();
            let back = StudyConfig::from_kv_str(&text).expect("parse back");
            assert_eq!(back, cfg, "round-trip mismatch for {scale:?}:\n{text}");
        }
    }

    #[test]
    fn kv_roundtrip_none_grid_and_other_constellations() {
        let mut cfg = ExperimentScale::Tiny.config();
        cfg.relay_grid_deg = None;
        cfg.constellation = ConstellationKind::StarlinkPlusPolar;
        cfg.seed = u64::MAX;
        let back = StudyConfig::from_kv_str(&cfg.to_kv_string()).unwrap();
        assert_eq!(back, cfg);
        cfg.constellation = ConstellationKind::Kuiper;
        let back = StudyConfig::from_kv_str(&cfg.to_kv_string()).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn kv_parse_rejects_bad_constellation() {
        let text = ExperimentScale::Tiny
            .config()
            .to_kv_string()
            .replace("constellation = starlink", "constellation = oneweb");
        assert!(StudyConfig::from_kv_str(&text).is_err());
    }

    #[test]
    fn kv_parse_rejects_missing_key() {
        let text: String = ExperimentScale::Tiny
            .config()
            .to_kv_string()
            .lines()
            .filter(|l| !l.starts_with("seed"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(StudyConfig::from_kv_str(&text).is_err());
    }

    #[test]
    fn constellation_names_roundtrip() {
        for k in [
            ConstellationKind::Starlink,
            ConstellationKind::Kuiper,
            ConstellationKind::StarlinkPlusPolar,
        ] {
            assert_eq!(ConstellationKind::from_name(k.name()), Some(k));
        }
        assert_eq!(ConstellationKind::from_name("oneweb"), None);
    }

    #[test]
    fn constellation_kinds_instantiate() {
        assert_eq!(
            ConstellationKind::Starlink.constellation().num_satellites(),
            1584
        );
        assert_eq!(
            ConstellationKind::Kuiper.constellation().num_satellites(),
            1156
        );
        assert_eq!(
            ConstellationKind::StarlinkPlusPolar
                .constellation()
                .num_satellites(),
            1584 + 720
        );
    }
}
