//! # leo-core — the ISL-vs-bent-pipe study library
//!
//! This crate ties the substrates together into the system the paper
//! describes: LEO mega-constellations (Starlink/Kuiper phase-1 shells)
//! serving a city-to-city traffic matrix either over **bent-pipe (BP)**
//! connectivity — radio hops bouncing between satellites and ground
//! relays, including in-flight aircraft over oceans — or over **hybrid**
//! connectivity that adds laser inter-satellite links (ISLs) in a +Grid.
//!
//! The pipeline:
//!
//! 1. [`StudyContext::build`] assembles a constellation, the ground
//!    segment ([`GroundSegment`]: city GTs + a 0.5°-grid of land relays
//!    within 2,000 km of cities), and the synthetic flight schedule.
//! 2. [`StudyContext::snapshot`] freezes the network at a simulation time
//!    into a weighted graph ([`NetworkSnapshot`]) under a connectivity
//!    [`Mode`] — `BpOnly`, `Hybrid`, or `IslOnly`.
//! 3. The [`experiments`] modules run the paper's studies on those
//!    snapshots: latency & variability (Fig. 2–3), max-min-fair
//!    throughput (Fig. 4–5 + the disconnected-satellite statistic),
//!    weather resilience (Fig. 6–8), GSO-arc avoidance (Fig. 9),
//!    cross-shell BP transitions (Fig. 10), and fiber augmentation
//!    (Fig. 11).
//!
//! ```no_run
//! use leo_core::{ExperimentScale, Mode, StudyContext};
//!
//! let ctx = StudyContext::build(ExperimentScale::Tiny.config());
//! let snap = ctx.snapshot(0.0, Mode::Hybrid);
//! println!("{} nodes, {} edges", snap.graph.num_nodes(), snap.graph.num_edges());
//! ```

pub mod codec;
pub mod config;
pub mod experiments;
pub mod ground;
pub mod metrics;
pub mod output;
pub mod par;
pub mod snapshot;
pub mod viz;

pub use config::{ConstellationKind, ExperimentScale, NetworkConfig, StudyConfig};
pub use ground::GroundSegment;
pub use snapshot::{EdgeDelta, EdgeKind, Mode, NetworkSnapshot, NodeKind, StudyContext, TimeSweep};

/// Round-trip time (milliseconds) of a one-way propagation delay in
/// seconds — the unit the paper's figures use.
#[inline]
pub fn rtt_ms(one_way_delay_s: f64) -> f64 {
    2.0 * one_way_delay_s * 1000.0
}

#[cfg(test)]
mod tests {
    #[test]
    fn rtt_doubles_and_scales() {
        assert_eq!(super::rtt_ms(0.010), 20.0);
    }
}
