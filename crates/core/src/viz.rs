//! SVG map rendering: the visual counterpart of the paper's path figures.
//!
//! Figs. 1, 3, 7 and 10 of the paper are world-map illustrations of
//! paths, ground stations, and attenuation fields. This module renders
//! the same artifacts as self-contained SVG files: an equirectangular
//! world map with the land-mask coastlines, plus layers for paths
//! (color-coded by hop type), point markers, and raster heat-maps. No
//! external renderer is needed — the output opens in any browser.

use leo_geo::GeoPoint;
use std::fmt::Write as _;

/// An SVG world-map builder (equirectangular projection).
#[derive(Debug)]
pub struct MapCanvas {
    width: f64,
    height: f64,
    layers: String,
}

impl MapCanvas {
    /// A canvas of `width` pixels (height follows the 2:1 equirectangular
    /// aspect), with oceans, land polygons and a graticule pre-drawn.
    pub fn new(width: f64) -> Self {
        let height = width / 2.0;
        let mut c = Self {
            width,
            height,
            layers: String::new(),
        };
        // Ocean background.
        let _ = write!(
            c.layers,
            r##"<rect x="0" y="0" width="{width}" height="{height}" fill="#dcecf5"/>"##
        );
        c.draw_land();
        c.draw_graticule();
        c
    }

    /// Project (lat, lon) degrees to canvas x/y.
    fn project(&self, p: GeoPoint) -> (f64, f64) {
        let x = (p.lon_deg() + 180.0) / 360.0 * self.width;
        let y = (90.0 - p.lat_deg()) / 180.0 * self.height;
        (x, y)
    }

    fn draw_land(&mut self) {
        // Sample the land mask on a grid and draw filled cells — robust
        // against polygon orientation and cheap at figure resolution.
        let step = 1.0;
        let cell_w = self.width / 360.0 * step;
        let cell_h = self.height / 180.0 * step;
        let mut lat = -90.0 + step / 2.0;
        let mut rects = String::new();
        while lat < 90.0 {
            let mut lon = -180.0 + step / 2.0;
            while lon < 180.0 {
                if leo_data::is_land(GeoPoint::from_degrees(lat, lon)) {
                    let (x, y) =
                        self.project(GeoPoint::from_degrees(lat + step / 2.0, lon - step / 2.0));
                    let _ = write!(
                        rects,
                        r##"<rect x="{:.1}" y="{:.1}" width="{:.2}" height="{:.2}"/>"##,
                        x, y, cell_w, cell_h
                    );
                }
                lon += step;
            }
            lat += step;
        }
        let _ = write!(
            self.layers,
            r##"<g fill="#c8ddb8" stroke="none">{rects}</g>"##
        );
    }

    fn draw_graticule(&mut self) {
        let mut lines = String::new();
        for lon in (-180..=180).step_by(30) {
            let x = (lon as f64 + 180.0) / 360.0 * self.width;
            let _ = write!(
                lines,
                r##"<line x1="{x:.1}" y1="0" x2="{x:.1}" y2="{:.1}"/>"##,
                self.height
            );
        }
        for lat in (-90..=90).step_by(30) {
            let y = (90.0 - lat as f64) / 180.0 * self.height;
            let _ = write!(
                lines,
                r##"<line x1="0" y1="{y:.1}" x2="{:.1}" y2="{y:.1}"/>"##,
                self.width
            );
        }
        let _ = write!(
            self.layers,
            r##"<g stroke="#b0c4d4" stroke-width="0.4" opacity="0.6">{lines}</g>"##
        );
    }

    /// Draw a polyline through ground points (date-line crossings split
    /// the polyline rather than smearing across the map).
    pub fn polyline(&mut self, points: &[GeoPoint], color: &str, width_px: f64, dashed: bool) {
        if points.len() < 2 {
            return;
        }
        let dash = if dashed {
            r#" stroke-dasharray="6,4""#
        } else {
            ""
        };
        let mut segments: Vec<Vec<(f64, f64)>> = vec![Vec::new()];
        let mut prev_lon = points[0].lon_deg();
        for p in points {
            if (p.lon_deg() - prev_lon).abs() > 180.0 {
                segments.push(Vec::new());
            }
            prev_lon = p.lon_deg();
            // lint: allow(unwrap-in-lib) segments is initialized with one element and only ever grows
            segments.last_mut().unwrap().push(self.project(*p));
        }
        for seg in segments.iter().filter(|s| s.len() >= 2) {
            let pts: Vec<String> = seg.iter().map(|(x, y)| format!("{x:.1},{y:.1}")).collect();
            let _ = write!(
                self.layers,
                r##"<polyline points="{}" fill="none" stroke="{color}" stroke-width="{width_px}"{dash}/>"##,
                pts.join(" ")
            );
        }
    }

    /// Draw a circular marker with an optional label.
    pub fn marker(&mut self, p: GeoPoint, radius_px: f64, color: &str, label: Option<&str>) {
        let (x, y) = self.project(p);
        let _ = write!(
            self.layers,
            r##"<circle cx="{x:.1}" cy="{y:.1}" r="{radius_px}" fill="{color}" stroke="#333" stroke-width="0.5"/>"##
        );
        if let Some(text) = label {
            let _ = write!(
                self.layers,
                r##"<text x="{:.1}" y="{:.1}" font-size="11" font-family="sans-serif" fill="#222">{}</text>"##,
                x + radius_px + 2.0,
                y + 4.0,
                xml_escape(text)
            );
        }
    }

    /// Overlay semi-transparent heat cells: `(lat, lon, value)` triples
    /// on a `cell_deg` grid, colored from transparent (min) to deep red
    /// (max).
    pub fn heatmap(&mut self, cells: &[(f64, f64, f64)], cell_deg: f64) {
        if cells.is_empty() {
            return;
        }
        let max = cells.iter().map(|c| c.2).fold(f64::MIN, f64::max);
        let min = cells.iter().map(|c| c.2).fold(f64::MAX, f64::min);
        let span = (max - min).max(1e-12);
        let cw = self.width / 360.0 * cell_deg;
        let ch = self.height / 180.0 * cell_deg;
        let mut rects = String::new();
        for &(lat, lon, v) in cells {
            let t = (v - min) / span;
            let (x, y) = self.project(GeoPoint::from_degrees(
                lat + cell_deg / 2.0,
                lon - cell_deg / 2.0,
            ));
            let _ = write!(
                rects,
                r##"<rect x="{x:.1}" y="{y:.1}" width="{cw:.2}" height="{ch:.2}" fill="rgb(220,{:.0},40)" opacity="{:.2}"/>"##,
                180.0 * (1.0 - t),
                0.08 + 0.55 * t,
            );
        }
        let _ = write!(self.layers, "<g>{rects}</g>");
    }

    /// Add a title caption.
    pub fn title(&mut self, text: &str) {
        let _ = write!(
            self.layers,
            r##"<text x="10" y="20" font-size="16" font-family="sans-serif" font-weight="bold" fill="#111">{}</text>"##,
            xml_escape(text)
        );
    }

    /// Finish into a standalone SVG document.
    pub fn into_svg(self) -> String {
        format!(
            r##"<?xml version="1.0" encoding="UTF-8"?>
<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">{layers}</svg>
"##,
            w = self.width,
            h = self.height,
            layers = self.layers
        )
    }

    /// Write the SVG to a file, creating parent directories.
    pub fn save(self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.into_svg())
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Render a snapshot path (by node sequence) onto a canvas: ground hops
/// as markers, the route as a polyline through ground points and
/// sub-satellite points.
pub fn draw_snapshot_path(
    canvas: &mut MapCanvas,
    snap: &crate::snapshot::NetworkSnapshot,
    constellation_positions: &leo_orbit::ConstellationSnapshot,
    nodes: &[leo_graph::NodeId],
    color: &str,
    dashed: bool,
) {
    let mut route = Vec::with_capacity(nodes.len());
    for &n in nodes {
        match snap.nodes[n as usize] {
            crate::snapshot::NodeKind::Satellite(id) => {
                route.push(constellation_positions.subpoint(id as usize));
            }
            _ => {
                if let Some(g) = snap.ground_position(n) {
                    route.push(g);
                    canvas.marker(g, 2.5, color, None);
                }
            }
        }
    }
    canvas.polyline(&route, color, 1.8, dashed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn svg_is_well_formed() {
        let mut c = MapCanvas::new(400.0);
        c.title("test map");
        c.marker(
            GeoPoint::from_degrees(47.4, 8.5),
            3.0,
            "#cc0000",
            Some("Zurich"),
        );
        c.polyline(
            &[
                GeoPoint::from_degrees(40.7, -74.0),
                GeoPoint::from_degrees(51.5, -0.1),
            ],
            "#0044cc",
            2.0,
            false,
        );
        let svg = c.into_svg();
        assert!(svg.starts_with("<?xml"));
        assert!(svg.contains("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("Zurich"));
        // Every opened group closes.
        assert_eq!(svg.matches("<g").count(), svg.matches("</g>").count());
    }

    #[test]
    fn projection_corners() {
        let c = MapCanvas::new(360.0);
        // Note: GeoPoint canonicalizes longitude into (−180, 180], so
        // exactly −180° becomes +180° (right edge).
        let (x, y) = c.project(GeoPoint::from_degrees(90.0, -179.999));
        assert!(x < 0.01 && y.abs() < 1e-9, "x={x} y={y}");
        let (x, y) = c.project(GeoPoint::from_degrees(-90.0, 180.0));
        assert!((x - 360.0).abs() < 1e-9 && (y - 180.0).abs() < 1e-9);
        let (x, y) = c.project(GeoPoint::from_degrees(0.0, 0.0));
        assert!((x - 180.0).abs() < 1e-9 && (y - 90.0).abs() < 1e-9);
    }

    #[test]
    fn dateline_crossing_splits_polyline() {
        let mut c = MapCanvas::new(400.0);
        let before = c.layers.matches("<polyline").count();
        c.polyline(
            &[
                GeoPoint::from_degrees(35.0, 170.0),
                GeoPoint::from_degrees(36.0, -170.0),
                GeoPoint::from_degrees(37.0, -160.0),
            ],
            "#000",
            1.0,
            false,
        );
        let after = c.layers.matches("<polyline").count();
        // Single polyline across the seam would smear; the crossing
        // produces one segment on the East side being dropped (len 1)
        // and one on the West (len 2) → exactly one polyline added.
        assert_eq!(after - before, 1);
    }

    #[test]
    fn heatmap_scales_colors() {
        let mut c = MapCanvas::new(400.0);
        c.heatmap(&[(0.0, 0.0, 1.0), (10.0, 10.0, 5.0)], 5.0);
        let svg = c.into_svg();
        assert!(svg.contains("rgb(220,"));
    }

    #[test]
    fn save_writes_file() {
        let dir = std::env::temp_dir().join("leo_viz_test");
        let path = dir.join("map.svg");
        MapCanvas::new(200.0).save(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("<svg"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn escape_handles_special_chars() {
        assert_eq!(xml_escape("a<b&c>d"), "a&lt;b&amp;c&gt;d");
    }
}
