//! Time-frozen network snapshots: the dynamic graph the experiments run
//! on.

use crate::config::{NetworkConfig, StudyConfig};
use crate::ground::GroundSegment;
use leo_data::flights::FlightSchedule;
use leo_data::traffic::{sample_city_pairs, CityPair};
use leo_geo::{elevation_angle_rad, GeoPoint, SPEED_OF_LIGHT_M_S};
use leo_graph::{EdgeId, Graph, GraphBuilder, NodeId};
use leo_orbit::{
    isl_line_of_sight, plus_grid_isls, visible_satellites, Constellation, IslLink, VisibilityParams,
};
use leo_util::telemetry::Counter;
use leo_util::{debug_span, span};

/// Telemetry: snapshots frozen across all experiments (the unit of work
/// the pipeline fans out over).
static SNAPSHOTS_BUILT: Counter = Counter::new("snapshots_built");
/// Telemetry: snapshots materialized from a shared per-timestep
/// position/visibility pass beyond the first — every count here is one
/// `positions_at` + sub-point index + visibility sweep that
/// [`StudyContext::snapshot_bundle`] did *not* redo.
static VISIBILITY_SHARED_MODES: Counter = Counter::new("visibility_shared_modes");

/// Connectivity mode of a snapshot (paper §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Bent-pipe only: no ISLs; city GTs, grid relays, and over-water
    /// aircraft all participate as hops.
    BpOnly,
    /// BP plus ISLs — the paper's "hybrid" network.
    Hybrid,
    /// ISLs plus city GTs only (no relays or aircraft as intermediate
    /// hops) — used by the weather analysis to isolate ISL paths.
    IslOnly,
}

/// What a graph node represents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeKind {
    /// Satellite with its constellation-wide id.
    Satellite(u32),
    /// Source/sink city (index into [`GroundSegment::cities`]).
    City(u32),
    /// Transit-only grid relay (index into [`GroundSegment::relays`]).
    Relay(u32),
    /// In-flight aircraft relay (schedule id).
    Aircraft(u64),
}

impl NodeKind {
    /// True for any ground-side node (city, relay, or aircraft).
    pub fn is_ground(&self) -> bool {
        !matches!(self, NodeKind::Satellite(_))
    }
}

/// What a graph edge represents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EdgeKind {
    /// Laser inter-satellite link.
    Isl,
    /// Radio GT–satellite link, with the geometry the weather model
    /// needs.
    UpDown {
        /// Ground-side node.
        ground: NodeId,
        /// Satellite node.
        sat: NodeId,
        /// Elevation of the satellite as seen from the ground node,
        /// radians.
        elevation_rad: f64,
    },
}

/// Everything static about one study run.
#[derive(Debug, Clone)]
pub struct StudyContext {
    /// The configuration this context was built from.
    pub config: StudyConfig,
    /// The constellation under study.
    pub constellation: Constellation,
    /// Cities + relay grid.
    pub ground: GroundSegment,
    /// The day's synthetic air traffic.
    pub flights: FlightSchedule,
    /// The sampled traffic matrix.
    pub pairs: Vec<CityPair>,
    /// Static +Grid ISL topology (per shell, constellation-wide ids).
    isls: Vec<IslLink>,
    /// Node-table prefix shared by every snapshot: satellites, then
    /// cities (built once instead of per snapshot call).
    static_nodes: Vec<NodeKind>,
    /// Static relay node kinds (appended after cities in non-ISL-only
    /// snapshots).
    relay_nodes: Vec<NodeKind>,
    /// City positions — the ground-position prefix of every snapshot.
    city_positions: Vec<GeoPoint>,
    /// Pair indices grouped by source city, sorted by source id (the
    /// Dijkstra fan-out unit: one SSSP per entry per snapshot).
    pairs_by_src: Vec<(u32, Vec<usize>)>,
}

impl StudyContext {
    /// Assemble the full study context from a configuration.
    pub fn build(config: StudyConfig) -> Self {
        let _span = span!(
            "study_context_build",
            constellation = config.constellation.name()
        );
        let constellation = config.constellation.constellation();
        let ground = GroundSegment::build(&config);
        let flights = FlightSchedule::new(config.flight_density);
        let pairs = sample_city_pairs(
            &ground.cities,
            config.num_pairs,
            config.min_pair_distance_m,
            config.seed,
        );
        let mut isls = Vec::new();
        for (i, shell) in constellation.shells().iter().enumerate() {
            isls.extend(plus_grid_isls(shell, constellation.shell_offset(i)));
        }
        let s = constellation.num_satellites();
        let mut static_nodes = Vec::with_capacity(s + ground.cities.len());
        for sat in 0..s as u32 {
            static_nodes.push(NodeKind::Satellite(sat));
        }
        for i in 0..ground.cities.len() as u32 {
            static_nodes.push(NodeKind::City(i));
        }
        let relay_nodes: Vec<NodeKind> = (0..ground.relays.len() as u32)
            .map(NodeKind::Relay)
            .collect();
        let city_positions: Vec<GeoPoint> = ground.cities.iter().map(|c| c.pos).collect();
        // Group by source via a stable sort (keeps pair order within a
        // source) — no hash-order dependence anywhere near the routing
        // fan-out.
        let mut by_src: Vec<(u32, usize)> =
            pairs.iter().enumerate().map(|(i, p)| (p.src, i)).collect();
        by_src.sort_by_key(|&(src, _)| src);
        let mut pairs_by_src: Vec<(u32, Vec<usize>)> = Vec::new();
        for (src, i) in by_src {
            match pairs_by_src.last_mut() {
                Some((s, v)) if *s == src => v.push(i),
                _ => pairs_by_src.push((src, vec![i])),
            }
        }
        Self {
            config,
            constellation,
            ground,
            flights,
            pairs,
            isls,
            static_nodes,
            relay_nodes,
            city_positions,
            pairs_by_src,
        }
    }

    /// Pair indices grouped by source city, sorted by source id — the
    /// per-snapshot Dijkstra fan-out (one SSSP per entry), precomputed
    /// once instead of rebuilt per snapshot by every experiment.
    pub fn pairs_by_src(&self) -> &[(u32, Vec<usize>)] {
        &self.pairs_by_src
    }

    /// Number of satellites (node ids `0..S` in every snapshot).
    pub fn num_satellites(&self) -> usize {
        self.constellation.num_satellites()
    }

    /// Graph node id of city `i` (valid in every snapshot of this
    /// context).
    pub fn city_node(&self, city_idx: usize) -> NodeId {
        debug_assert!(city_idx < self.ground.cities.len());
        (self.num_satellites() + city_idx) as NodeId
    }

    /// Freeze the network at `t_s` under `mode`.
    ///
    /// Edge weights are one-way propagation delays in **seconds** (both
    /// radio and laser links propagate at `c`), so shortest paths are
    /// lowest-latency paths and `2 × weight` is RTT.
    ///
    /// Building several modes at the same `t_s`? Use
    /// [`StudyContext::snapshot_bundle`], which shares the expensive
    /// per-timestep work (orbit propagation, the sub-point spatial index,
    /// and every GT visibility query) across them.
    pub fn snapshot(&self, t_s: f64, mode: Mode) -> NetworkSnapshot {
        self.snapshot_bundle(t_s, &[mode])
            .pop()
            // lint: allow(unwrap-in-lib) snapshot_bundle returns one snapshot per requested mode, and one mode was passed
            .expect("one mode requested")
    }

    /// Freeze the network at `t_s` under each of `modes`, computing
    /// satellite positions, the sub-point [`SphereGrid`] index, ISL
    /// line-of-sight, and GT visibility **once** and materializing every
    /// requested mode from that shared pass. Returns one snapshot per
    /// entry of `modes`, in order (duplicates allowed).
    ///
    /// Byte-identical to building each mode via [`StudyContext::snapshot`]
    /// separately — the shared pass performs the same floating-point
    /// operations in the same order.
    ///
    /// [`SphereGrid`]: leo_geo::SphereGrid
    pub fn snapshot_bundle(&self, t_s: f64, modes: &[Mode]) -> Vec<NetworkSnapshot> {
        if modes.is_empty() {
            return Vec::new();
        }
        let _span = debug_span!("snapshot_bundle", t_s = t_s, modes = modes.len());
        SNAPSHOTS_BUILT.add(modes.len() as u64);
        VISIBILITY_SHARED_MODES.add(modes.len() as u64 - 1);
        let sat_positions = self.constellation.positions_at(t_s);
        let s = self.num_satellites();
        let num_cities = self.ground.cities.len();

        let needs_full_ground = modes.iter().any(|&m| m != Mode::IslOnly);
        let needs_isls = modes.iter().any(|&m| m != Mode::BpOnly);

        // --- Union ground-point set: cities, then relays + aircraft ---
        let mut ground_positions: Vec<GeoPoint> = self.city_positions.clone();
        let aircraft = if needs_full_ground {
            let aircraft = self.flights.relays_at(t_s);
            ground_positions.extend(self.ground.relays.iter().copied());
            ground_positions.extend(aircraft.iter().map(|a| a.pos));
            aircraft
        } else {
            Vec::new()
        };

        // --- Shared ISL materialization (identical for every non-BP mode) ---
        let isl_links: Vec<(NodeId, NodeId, f64)> = if needs_isls {
            self.isls
                .iter()
                .filter_map(|l| {
                    let pa = &sat_positions.positions[l.a as usize];
                    let pb = &sat_positions.positions[l.b as usize];
                    isl_line_of_sight(pa, pb, self.config.network.isl_clearance_m)
                        .then(|| (l.a, l.b, pa.distance(pb) / SPEED_OF_LIGHT_M_S))
                })
                .collect()
        } else {
            Vec::new()
        };

        // --- Shared GT visibility: one query per union ground point ---
        let index = leo_orbit::visibility::subpoint_index(&sat_positions);
        let params = VisibilityParams {
            min_elevation_rad: self.constellation.min_elevation_rad(),
            max_altitude_m: self.config.constellation.max_altitude_m(),
        };
        let mut scratch = Vec::new();
        let mut visible = Vec::new();
        // Per ground point: (satellite, one-way delay s, elevation rad).
        let gt_links: Vec<Vec<(u32, f64, f64)>> = ground_positions
            .iter()
            .map(|gpos| {
                visible_satellites(
                    *gpos,
                    &sat_positions,
                    &index,
                    &params,
                    &mut scratch,
                    &mut visible,
                );
                visible
                    .iter()
                    .map(|&sat| {
                        let spos = &sat_positions.positions[sat as usize];
                        let delay = leo_geo::slant_range_m(*gpos, spos) / SPEED_OF_LIGHT_M_S;
                        (sat, delay, elevation_angle_rad(*gpos, spos))
                    })
                    .collect()
            })
            .collect();

        // --- Materialize each requested mode from the shared pass ---
        modes
            .iter()
            .map(|&mode| {
                let num_ground = if mode == Mode::IslOnly {
                    num_cities
                } else {
                    ground_positions.len()
                };
                let mut nodes = Vec::with_capacity(s + num_ground);
                nodes.extend_from_slice(&self.static_nodes);
                if mode != Mode::IslOnly {
                    nodes.extend_from_slice(&self.relay_nodes);
                    nodes.extend(aircraft.iter().map(|a| NodeKind::Aircraft(a.id)));
                }
                debug_assert_eq!(nodes.len(), s + num_ground);

                let mut builder = GraphBuilder::new(nodes.len());
                let mut edges: Vec<EdgeKind> = Vec::new();
                if mode != Mode::BpOnly {
                    for &(a, b, delay) in &isl_links {
                        builder.add_edge(a, b, delay);
                        edges.push(EdgeKind::Isl);
                    }
                }
                for (gi, links) in gt_links.iter().take(num_ground).enumerate() {
                    let ground_node = (s + gi) as NodeId;
                    for &(sat, delay, elevation_rad) in links {
                        builder.add_edge(ground_node, sat, delay);
                        edges.push(EdgeKind::UpDown {
                            ground: ground_node,
                            sat,
                            elevation_rad,
                        });
                    }
                }

                let graph = builder.build();
                debug_assert_eq!(graph.num_edges(), edges.len());
                NetworkSnapshot {
                    t_s,
                    mode,
                    graph,
                    nodes,
                    edges,
                    ground_positions: ground_positions[..num_ground].to_vec(),
                    num_satellites: s,
                    num_aircraft: if mode == Mode::IslOnly {
                        0
                    } else {
                        aircraft.len()
                    },
                }
            })
            .collect()
    }
}

/// The network frozen at one instant: a weighted graph plus metadata.
#[derive(Debug, Clone)]
pub struct NetworkSnapshot {
    /// Snapshot time, seconds since epoch.
    pub t_s: f64,
    /// Connectivity mode the snapshot was built under.
    pub mode: Mode,
    /// Delay-weighted undirected graph.
    pub graph: Graph,
    /// Node metadata, indexed by [`NodeId`].
    pub nodes: Vec<NodeKind>,
    /// Edge metadata, indexed by [`EdgeId`].
    pub edges: Vec<EdgeKind>,
    /// Positions of ground-side nodes, indexed by `node_id −
    /// num_satellites`.
    pub ground_positions: Vec<GeoPoint>,
    /// Number of satellites (node ids `0..num_satellites`).
    pub num_satellites: usize,
    /// Number of aircraft relays included.
    pub num_aircraft: usize,
}

impl NetworkSnapshot {
    /// Node id of city `i`.
    pub fn city_node(&self, city_idx: usize) -> NodeId {
        (self.num_satellites + city_idx) as NodeId
    }

    /// Ground position of a ground-side node.
    pub fn ground_position(&self, node: NodeId) -> Option<GeoPoint> {
        let i = (node as usize).checked_sub(self.num_satellites)?;
        self.ground_positions.get(i).copied()
    }

    /// Capacity of an edge under the link configuration, Gbps.
    pub fn edge_capacity_gbps(&self, net: &NetworkConfig, e: EdgeId) -> f64 {
        match self.edges[e as usize] {
            EdgeKind::Isl => net.isl_gbps,
            EdgeKind::UpDown { .. } => net.gt_link_gbps,
        }
    }
}

/// Re-export for convenient pair iteration.
pub use leo_data::traffic::CityPair as Pair;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentScale;

    fn ctx() -> StudyContext {
        StudyContext::build(ExperimentScale::Tiny.config())
    }

    #[test]
    fn node_layout_is_stable() {
        let c = ctx();
        let snap = c.snapshot(0.0, Mode::Hybrid);
        let s = c.num_satellites();
        assert_eq!(snap.num_satellites, s);
        assert!(matches!(snap.nodes[0], NodeKind::Satellite(0)));
        assert!(matches!(snap.nodes[s], NodeKind::City(0)));
        assert_eq!(snap.city_node(3), (s + 3) as NodeId);
        assert_eq!(c.city_node(3), snap.city_node(3));
    }

    #[test]
    fn bp_mode_has_no_isls() {
        let c = ctx();
        let snap = c.snapshot(0.0, Mode::BpOnly);
        assert!(snap
            .edges
            .iter()
            .all(|e| matches!(e, EdgeKind::UpDown { .. })));
    }

    #[test]
    fn hybrid_has_both_kinds() {
        let c = ctx();
        let snap = c.snapshot(0.0, Mode::Hybrid);
        let isls = snap
            .edges
            .iter()
            .filter(|e| matches!(e, EdgeKind::Isl))
            .count();
        let radio = snap.edges.len() - isls;
        // +Grid: 2 links/satellite; a handful can be suppressed by the
        // 80 km clearance rule.
        assert!(isls > 2 * c.num_satellites() * 9 / 10, "isls = {isls}");
        assert!(radio > 0);
    }

    #[test]
    fn isl_only_excludes_relays_and_aircraft() {
        let c = ctx();
        let snap = c.snapshot(0.0, Mode::IslOnly);
        assert!(snap
            .nodes
            .iter()
            .all(|n| matches!(n, NodeKind::Satellite(_) | NodeKind::City(_))));
        assert_eq!(snap.num_aircraft, 0);
    }

    #[test]
    fn bp_includes_relays_and_aircraft() {
        let c = ctx();
        let snap = c.snapshot(30_000.0, Mode::BpOnly);
        let relays = snap
            .nodes
            .iter()
            .filter(|n| matches!(n, NodeKind::Relay(_)))
            .count();
        let aircraft = snap
            .nodes
            .iter()
            .filter(|n| matches!(n, NodeKind::Aircraft(_)))
            .count();
        assert_eq!(relays, c.ground.relays.len());
        assert_eq!(aircraft, snap.num_aircraft);
        assert!(aircraft > 0, "some aircraft should be over water mid-day");
    }

    #[test]
    fn edge_weights_are_plausible_delays() {
        let c = ctx();
        let snap = c.snapshot(0.0, Mode::Hybrid);
        for e in 0..snap.graph.num_edges() as EdgeId {
            let (_, _, w) = snap.graph.edge(e);
            // 550 km overhead ≈ 1.8 ms; longest slant/ISL a few ms.
            assert!(w > 0.0015 && w < 0.03, "edge {e} delay {w}s");
        }
    }

    #[test]
    fn updown_metadata_consistent() {
        let c = ctx();
        let snap = c.snapshot(0.0, Mode::Hybrid);
        for (e, kind) in snap.edges.iter().enumerate() {
            if let EdgeKind::UpDown {
                ground,
                sat,
                elevation_rad,
            } = kind
            {
                let (u, v, _) = snap.graph.edge(e as EdgeId);
                assert!(
                    (u == *ground && v == *sat) || (u == *sat && v == *ground),
                    "edge endpoints disagree with metadata"
                );
                assert!(*elevation_rad >= c.constellation.min_elevation_rad() - 1e-9);
                assert!((*sat as usize) < snap.num_satellites);
                assert!((*ground as usize) >= snap.num_satellites);
            }
        }
    }

    #[test]
    fn capacities_follow_kind() {
        let c = ctx();
        let snap = c.snapshot(0.0, Mode::Hybrid);
        let net = c.config.network;
        for e in 0..snap.edges.len() as EdgeId {
            let cap = snap.edge_capacity_gbps(&net, e);
            match snap.edges[e as usize] {
                EdgeKind::Isl => assert_eq!(cap, 100.0),
                EdgeKind::UpDown { .. } => assert_eq!(cap, 20.0),
            }
        }
    }

    #[test]
    fn pairs_sampled() {
        let c = ctx();
        assert_eq!(c.pairs.len(), c.config.num_pairs);
    }

    #[test]
    fn snapshots_differ_over_time() {
        let c = ctx();
        let a = c.snapshot(0.0, Mode::Hybrid);
        let b = c.snapshot(900.0, Mode::Hybrid);
        // Compare the edge *endpoint sets*, not raw edge counts — counts
        // can coincide by chance at other scales/seeds even though the
        // satellites moved. 15 minutes of orbital motion must change
        // which GT–satellite links exist.
        let endpoints = |s: &NetworkSnapshot| -> std::collections::HashSet<(NodeId, NodeId)> {
            (0..s.graph.num_edges() as EdgeId)
                .map(|e| {
                    let (u, v, _) = s.graph.edge(e);
                    (u.min(v), u.max(v))
                })
                .collect()
        };
        assert_ne!(endpoints(&a), endpoints(&b));
    }

    #[test]
    fn bundle_matches_individual_snapshots() {
        // The shared-pass bundle must be indistinguishable from building
        // each mode separately — same nodes, same edges in the same
        // order, bit-identical weights.
        let c = ctx();
        for t in [0.0, 30_000.0] {
            let modes = [Mode::BpOnly, Mode::Hybrid, Mode::IslOnly];
            let bundle = c.snapshot_bundle(t, &modes);
            assert_eq!(bundle.len(), modes.len());
            for (snap, &mode) in bundle.iter().zip(&modes) {
                let solo = c.snapshot(t, mode);
                assert_eq!(snap.mode, mode);
                assert_eq!(snap.nodes, solo.nodes, "{mode:?} node table");
                assert_eq!(snap.edges, solo.edges, "{mode:?} edge metadata");
                assert_eq!(snap.num_aircraft, solo.num_aircraft);
                assert_eq!(snap.ground_positions.len(), solo.ground_positions.len());
                assert_eq!(snap.graph.num_edges(), solo.graph.num_edges());
                for e in 0..snap.graph.num_edges() as EdgeId {
                    let (u1, v1, w1) = snap.graph.edge(e);
                    let (u2, v2, w2) = solo.graph.edge(e);
                    assert_eq!((u1, v1), (u2, v2));
                    assert_eq!(
                        w1.to_bits(),
                        w2.to_bits(),
                        "edge {e} weight must be bit-identical"
                    );
                }
            }
        }
    }

    #[test]
    fn bundle_empty_and_duplicate_modes() {
        let c = ctx();
        assert!(c.snapshot_bundle(0.0, &[]).is_empty());
        let twice = c.snapshot_bundle(0.0, &[Mode::Hybrid, Mode::Hybrid]);
        assert_eq!(twice.len(), 2);
        assert_eq!(twice[0].graph.num_edges(), twice[1].graph.num_edges());
    }

    #[test]
    fn pairs_by_src_covers_all_pairs_once() {
        let c = ctx();
        let mut seen = vec![false; c.pairs.len()];
        let mut prev_src = None;
        for (src, idxs) in c.pairs_by_src() {
            if let Some(p) = prev_src {
                assert!(*src > p, "sources must be strictly increasing");
            }
            prev_src = Some(*src);
            for &i in idxs {
                assert_eq!(c.pairs[i].src, *src);
                assert!(!seen[i], "pair {i} listed twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every pair must appear");
    }
}
