//! Time-frozen network snapshots: the dynamic graph the experiments run
//! on.

use crate::config::{NetworkConfig, StudyConfig};
use crate::ground::GroundSegment;
use leo_data::flights::FlightSchedule;
use leo_data::traffic::{sample_city_pairs, CityPair};
use leo_geo::{elevation_angle_rad, GeoPoint, SPEED_OF_LIGHT_M_S};
use leo_graph::{EdgeId, Graph, GraphBuilder, NodeId};
use leo_orbit::{
    isl_line_of_sight, plus_grid_isls, visible_satellites, Constellation, IslLink,
    VisibilityParams,
};
use leo_util::telemetry::Counter;
use leo_util::{debug_span, span};

/// Telemetry: snapshots frozen across all experiments (the unit of work
/// the pipeline fans out over).
static SNAPSHOTS_BUILT: Counter = Counter::new("snapshots_built");

/// Connectivity mode of a snapshot (paper §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Bent-pipe only: no ISLs; city GTs, grid relays, and over-water
    /// aircraft all participate as hops.
    BpOnly,
    /// BP plus ISLs — the paper's "hybrid" network.
    Hybrid,
    /// ISLs plus city GTs only (no relays or aircraft as intermediate
    /// hops) — used by the weather analysis to isolate ISL paths.
    IslOnly,
}

/// What a graph node represents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeKind {
    /// Satellite with its constellation-wide id.
    Satellite(u32),
    /// Source/sink city (index into [`GroundSegment::cities`]).
    City(u32),
    /// Transit-only grid relay (index into [`GroundSegment::relays`]).
    Relay(u32),
    /// In-flight aircraft relay (schedule id).
    Aircraft(u64),
}

impl NodeKind {
    /// True for any ground-side node (city, relay, or aircraft).
    pub fn is_ground(&self) -> bool {
        !matches!(self, NodeKind::Satellite(_))
    }
}

/// What a graph edge represents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EdgeKind {
    /// Laser inter-satellite link.
    Isl,
    /// Radio GT–satellite link, with the geometry the weather model
    /// needs.
    UpDown {
        /// Ground-side node.
        ground: NodeId,
        /// Satellite node.
        sat: NodeId,
        /// Elevation of the satellite as seen from the ground node,
        /// radians.
        elevation_rad: f64,
    },
}

/// Everything static about one study run.
#[derive(Debug, Clone)]
pub struct StudyContext {
    /// The configuration this context was built from.
    pub config: StudyConfig,
    /// The constellation under study.
    pub constellation: Constellation,
    /// Cities + relay grid.
    pub ground: GroundSegment,
    /// The day's synthetic air traffic.
    pub flights: FlightSchedule,
    /// The sampled traffic matrix.
    pub pairs: Vec<CityPair>,
    /// Static +Grid ISL topology (per shell, constellation-wide ids).
    isls: Vec<IslLink>,
}

impl StudyContext {
    /// Assemble the full study context from a configuration.
    pub fn build(config: StudyConfig) -> Self {
        let _span = span!("study_context_build", constellation = config.constellation.name());
        let constellation = config.constellation.constellation();
        let ground = GroundSegment::build(&config);
        let flights = FlightSchedule::new(config.flight_density);
        let pairs = sample_city_pairs(
            &ground.cities,
            config.num_pairs,
            config.min_pair_distance_m,
            config.seed,
        );
        let mut isls = Vec::new();
        for (i, shell) in constellation.shells().iter().enumerate() {
            isls.extend(plus_grid_isls(shell, constellation.shell_offset(i)));
        }
        Self {
            config,
            constellation,
            ground,
            flights,
            pairs,
            isls,
        }
    }

    /// Number of satellites (node ids `0..S` in every snapshot).
    pub fn num_satellites(&self) -> usize {
        self.constellation.num_satellites()
    }

    /// Graph node id of city `i` (valid in every snapshot of this
    /// context).
    pub fn city_node(&self, city_idx: usize) -> NodeId {
        debug_assert!(city_idx < self.ground.cities.len());
        (self.num_satellites() + city_idx) as NodeId
    }

    /// Freeze the network at `t_s` under `mode`.
    ///
    /// Edge weights are one-way propagation delays in **seconds** (both
    /// radio and laser links propagate at `c`), so shortest paths are
    /// lowest-latency paths and `2 × weight` is RTT.
    pub fn snapshot(&self, t_s: f64, mode: Mode) -> NetworkSnapshot {
        let _span = debug_span!("snapshot", t_s = t_s, mode = format!("{mode:?}"));
        SNAPSHOTS_BUILT.add(1);
        let sat_positions = self.constellation.positions_at(t_s);
        let s = self.num_satellites();

        // --- Node table ---
        let mut nodes: Vec<NodeKind> = Vec::with_capacity(s + self.ground.cities.len());
        let mut ground_positions: Vec<GeoPoint> = Vec::new();
        for sat in 0..s as u32 {
            nodes.push(NodeKind::Satellite(sat));
        }
        for (i, c) in self.ground.cities.iter().enumerate() {
            nodes.push(NodeKind::City(i as u32));
            ground_positions.push(c.pos);
        }
        let aircraft = if mode != Mode::IslOnly {
            for (i, r) in self.ground.relays.iter().enumerate() {
                nodes.push(NodeKind::Relay(i as u32));
                ground_positions.push(*r);
            }
            let aircraft = self.flights.relays_at(t_s);
            for a in &aircraft {
                nodes.push(NodeKind::Aircraft(a.id));
                ground_positions.push(a.pos);
            }
            aircraft.len()
        } else {
            0
        };

        let mut builder = GraphBuilder::new(nodes.len());
        let mut edges: Vec<EdgeKind> = Vec::new();

        // --- ISL edges ---
        if mode != Mode::BpOnly {
            for l in &self.isls {
                let pa = &sat_positions.positions[l.a as usize];
                let pb = &sat_positions.positions[l.b as usize];
                if isl_line_of_sight(pa, pb, self.config.network.isl_clearance_m) {
                    let delay = pa.distance(pb) / SPEED_OF_LIGHT_M_S;
                    builder.add_edge(l.a, l.b, delay);
                    edges.push(EdgeKind::Isl);
                }
            }
        }

        // --- GT–satellite edges ---
        let index = leo_orbit::visibility::subpoint_index(&sat_positions);
        let params = VisibilityParams {
            min_elevation_rad: self.constellation.min_elevation_rad(),
            max_altitude_m: self.config.constellation.max_altitude_m(),
        };
        let mut scratch = Vec::new();
        let mut visible = Vec::new();
        for (gi, gpos) in ground_positions.iter().enumerate() {
            let ground_node = (s + gi) as NodeId;
            visible_satellites(*gpos, &sat_positions, &index, &params, &mut scratch, &mut visible);
            for &sat in &visible {
                let spos = &sat_positions.positions[sat as usize];
                let slant = leo_geo::slant_range_m(*gpos, spos);
                let delay = slant / SPEED_OF_LIGHT_M_S;
                builder.add_edge(ground_node, sat, delay);
                edges.push(EdgeKind::UpDown {
                    ground: ground_node,
                    sat,
                    elevation_rad: elevation_angle_rad(*gpos, spos),
                });
            }
        }

        let graph = builder.build();
        debug_assert_eq!(graph.num_edges(), edges.len());
        NetworkSnapshot {
            t_s,
            mode,
            graph,
            nodes,
            edges,
            ground_positions,
            num_satellites: s,
            num_aircraft: aircraft,
        }
    }
}

/// The network frozen at one instant: a weighted graph plus metadata.
#[derive(Debug, Clone)]
pub struct NetworkSnapshot {
    /// Snapshot time, seconds since epoch.
    pub t_s: f64,
    /// Connectivity mode the snapshot was built under.
    pub mode: Mode,
    /// Delay-weighted undirected graph.
    pub graph: Graph,
    /// Node metadata, indexed by [`NodeId`].
    pub nodes: Vec<NodeKind>,
    /// Edge metadata, indexed by [`EdgeId`].
    pub edges: Vec<EdgeKind>,
    /// Positions of ground-side nodes, indexed by `node_id −
    /// num_satellites`.
    pub ground_positions: Vec<GeoPoint>,
    /// Number of satellites (node ids `0..num_satellites`).
    pub num_satellites: usize,
    /// Number of aircraft relays included.
    pub num_aircraft: usize,
}

impl NetworkSnapshot {
    /// Node id of city `i`.
    pub fn city_node(&self, city_idx: usize) -> NodeId {
        (self.num_satellites + city_idx) as NodeId
    }

    /// Ground position of a ground-side node.
    pub fn ground_position(&self, node: NodeId) -> Option<GeoPoint> {
        let i = (node as usize).checked_sub(self.num_satellites)?;
        self.ground_positions.get(i).copied()
    }

    /// Capacity of an edge under the link configuration, Gbps.
    pub fn edge_capacity_gbps(&self, net: &NetworkConfig, e: EdgeId) -> f64 {
        match self.edges[e as usize] {
            EdgeKind::Isl => net.isl_gbps,
            EdgeKind::UpDown { .. } => net.gt_link_gbps,
        }
    }
}

/// Re-export for convenient pair iteration.
pub use leo_data::traffic::CityPair as Pair;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentScale;

    fn ctx() -> StudyContext {
        StudyContext::build(ExperimentScale::Tiny.config())
    }

    #[test]
    fn node_layout_is_stable() {
        let c = ctx();
        let snap = c.snapshot(0.0, Mode::Hybrid);
        let s = c.num_satellites();
        assert_eq!(snap.num_satellites, s);
        assert!(matches!(snap.nodes[0], NodeKind::Satellite(0)));
        assert!(matches!(snap.nodes[s], NodeKind::City(0)));
        assert_eq!(snap.city_node(3), (s + 3) as NodeId);
        assert_eq!(c.city_node(3), snap.city_node(3));
    }

    #[test]
    fn bp_mode_has_no_isls() {
        let c = ctx();
        let snap = c.snapshot(0.0, Mode::BpOnly);
        assert!(snap.edges.iter().all(|e| matches!(e, EdgeKind::UpDown { .. })));
    }

    #[test]
    fn hybrid_has_both_kinds() {
        let c = ctx();
        let snap = c.snapshot(0.0, Mode::Hybrid);
        let isls = snap.edges.iter().filter(|e| matches!(e, EdgeKind::Isl)).count();
        let radio = snap.edges.len() - isls;
        // +Grid: 2 links/satellite; a handful can be suppressed by the
        // 80 km clearance rule.
        assert!(isls > 2 * c.num_satellites() * 9 / 10, "isls = {isls}");
        assert!(radio > 0);
    }

    #[test]
    fn isl_only_excludes_relays_and_aircraft() {
        let c = ctx();
        let snap = c.snapshot(0.0, Mode::IslOnly);
        assert!(snap
            .nodes
            .iter()
            .all(|n| matches!(n, NodeKind::Satellite(_) | NodeKind::City(_))));
        assert_eq!(snap.num_aircraft, 0);
    }

    #[test]
    fn bp_includes_relays_and_aircraft() {
        let c = ctx();
        let snap = c.snapshot(30_000.0, Mode::BpOnly);
        let relays = snap.nodes.iter().filter(|n| matches!(n, NodeKind::Relay(_))).count();
        let aircraft = snap.nodes.iter().filter(|n| matches!(n, NodeKind::Aircraft(_))).count();
        assert_eq!(relays, c.ground.relays.len());
        assert_eq!(aircraft, snap.num_aircraft);
        assert!(aircraft > 0, "some aircraft should be over water mid-day");
    }

    #[test]
    fn edge_weights_are_plausible_delays() {
        let c = ctx();
        let snap = c.snapshot(0.0, Mode::Hybrid);
        for e in 0..snap.graph.num_edges() as EdgeId {
            let (_, _, w) = snap.graph.edge(e);
            // 550 km overhead ≈ 1.8 ms; longest slant/ISL a few ms.
            assert!(w > 0.0015 && w < 0.03, "edge {e} delay {w}s");
        }
    }

    #[test]
    fn updown_metadata_consistent() {
        let c = ctx();
        let snap = c.snapshot(0.0, Mode::Hybrid);
        for (e, kind) in snap.edges.iter().enumerate() {
            if let EdgeKind::UpDown { ground, sat, elevation_rad } = kind {
                let (u, v, _) = snap.graph.edge(e as EdgeId);
                assert!(
                    (u == *ground && v == *sat) || (u == *sat && v == *ground),
                    "edge endpoints disagree with metadata"
                );
                assert!(*elevation_rad >= c.constellation.min_elevation_rad() - 1e-9);
                assert!((*sat as usize) < snap.num_satellites);
                assert!((*ground as usize) >= snap.num_satellites);
            }
        }
    }

    #[test]
    fn capacities_follow_kind() {
        let c = ctx();
        let snap = c.snapshot(0.0, Mode::Hybrid);
        let net = c.config.network;
        for e in 0..snap.edges.len() as EdgeId {
            let cap = snap.edge_capacity_gbps(&net, e);
            match snap.edges[e as usize] {
                EdgeKind::Isl => assert_eq!(cap, 100.0),
                EdgeKind::UpDown { .. } => assert_eq!(cap, 20.0),
            }
        }
    }

    #[test]
    fn pairs_sampled() {
        let c = ctx();
        assert_eq!(c.pairs.len(), c.config.num_pairs);
    }

    #[test]
    fn snapshots_differ_over_time() {
        let c = ctx();
        let a = c.snapshot(0.0, Mode::Hybrid);
        let b = c.snapshot(900.0, Mode::Hybrid);
        // Same node count (cities/relays static, aircraft counts may vary
        // slightly), but edge sets differ as satellites move.
        assert_ne!(a.graph.num_edges(), b.graph.num_edges());
    }
}
