//! Time-frozen network snapshots: the dynamic graph the experiments run
//! on.
//!
//! Two construction paths produce [`NetworkSnapshot`]s:
//!
//! * [`StudyContext::snapshot`] / [`StudyContext::snapshot_bundle`] —
//!   freeze one instant from scratch.
//! * [`TimeSweep`] (via [`StudyContext::sweep`],
//!   [`StudyContext::sweep_times`], or the parallel
//!   [`StudyContext::sweep_map`]) — walk a whole time series keeping the
//!   satellite state, the sub-point cell index, and every per-ground-point
//!   visibility set alive between instants, so consecutive snapshots cost
//!   an incremental update instead of a full rebuild.
//!
//! Both paths are **bit-identical**: a sweep step performs the same
//! floating-point operations in the same order as a fresh
//! `snapshot_bundle` at the same instant (`snapshot_bundle` is in fact a
//! one-step sweep). The equivalence is enforced by tests here and by the
//! cross-crate property tests in `tests/sweep.rs`.

use crate::config::{NetworkConfig, StudyConfig};
use crate::ground::GroundSegment;
use leo_data::flights::{Aircraft, FlightSchedule};
use leo_data::traffic::{sample_city_pairs, CityPair};
use leo_geo::{CellGrid, Ecef, GeoPoint, VisibilityScan, SPEED_OF_LIGHT_M_S};
use leo_graph::{EdgeId, Graph, GraphBuilder, NodeId};
use leo_orbit::{
    isl_line_of_sight, plus_grid_isls, CellTransition, Constellation, ConstellationSnapshot,
    IslLink, VisibilityParams, SUBPOINT_BIN_DEG,
};
use leo_util::telemetry::{enabled, Counter, Level};
use leo_util::{debug_span, span};

/// Telemetry: snapshots frozen across all experiments (the unit of work
/// the pipeline fans out over).
static SNAPSHOTS_BUILT: Counter = Counter::new("snapshots_built");
/// Telemetry: snapshots materialized from a shared per-timestep
/// position/visibility pass beyond the first — every count here is one
/// position propagation + sub-point index + visibility sweep that
/// [`StudyContext::snapshot_bundle`] did *not* redo.
static VISIBILITY_SHARED_MODES: Counter = Counter::new("visibility_shared_modes");
/// Telemetry: sweep steps that rebuilt satellite state from scratch (the
/// first step of every [`TimeSweep`], including each `sweep_map` chunk).
static SWEEP_FULL_REBUILDS: Counter = Counter::new("sweep_full_rebuilds");
/// Telemetry: satellites relocated between sub-point cells by incremental
/// sweep steps — the work a full index rebuild would redo for *every*
/// satellite.
static SWEEP_CELL_TRANSITIONS: Counter = Counter::new("sweep_cell_transitions");
/// Telemetry: GT–satellite links whose membership persisted from the
/// previous sweep step (only the delay/elevation weights were refreshed).
/// Counted for static ground points (cities + relays); aircraft links
/// are always recomputed because the aircraft themselves move.
static SWEEP_EDGES_REUSED: Counter = Counter::new("sweep_edges_reused");
/// Telemetry: GT–satellite links that newly appeared in a sweep step
/// (satellite rose above the minimum elevation for that ground point).
static SWEEP_EDGES_RECOMPUTED: Counter = Counter::new("sweep_edges_recomputed");

/// How one mode's edge set changed between two consecutive
/// [`TimeSweep`] steps.
///
/// Edge ids are **positional** (insertion order into the
/// [`GraphBuilder`]), so a persisted link generally changes id between
/// steps; the delta carries the mapping:
///
/// * `reweighted` — links whose endpoints persisted, as
///   `(old id, new id)` pairs. Their weight is always refreshed
///   (satellites move every step), so *every* surviving edge appears
///   here — sweep deltas have no "unchanged" class.
/// * `removed` — old ids whose link vanished (satellite set below the
///   minimum elevation, ISL lost line of sight, aircraft stepped).
/// * `added` — new ids that have no old counterpart.
/// * `full` — true when no previous step exists to diff against (the
///   first step of a sweep or chunk): the id vectors are empty and
///   consumers must rebuild their derived state from the snapshot.
///
/// Aircraft relays move themselves, but while the aircraft census is
/// unchanged between steps their node ids are stable and their links
/// pair by satellite id like any ground point. Only a census change
/// (takeoff / landing shifts the node-table tail) degrades aircraft
/// links to a wholesale `removed` + `added` diff (`num_nodes` carries
/// the new node count).
///
/// The exact shape [`leo_graph::SptWorkspace::apply`] consumes:
/// `apply(&snap.graph, &delta.removed, &delta.reweighted)` repairs a
/// shortest-path tree to bit-identity with a fresh Dijkstra run. The
/// replay invariant — old edge set transformed by the delta equals the
/// new snapshot's edge set exactly — is pinned by the property suite in
/// `tests/sweep.rs`.
#[derive(Debug, Clone, Default)]
pub struct EdgeDelta {
    /// No previous step to diff against; id vectors are empty.
    pub full: bool,
    /// Node count of the new snapshot's graph.
    pub num_nodes: usize,
    /// New-graph ids of edges with no old counterpart.
    pub added: Vec<EdgeId>,
    /// Old-graph ids of edges that vanished.
    pub removed: Vec<EdgeId>,
    /// `(old id, new id)` for links whose endpoints persisted.
    pub reweighted: Vec<(EdgeId, EdgeId)>,
}

/// Connectivity mode of a snapshot (paper §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Bent-pipe only: no ISLs; city GTs, grid relays, and over-water
    /// aircraft all participate as hops.
    BpOnly,
    /// BP plus ISLs — the paper's "hybrid" network.
    Hybrid,
    /// ISLs plus city GTs only (no relays or aircraft as intermediate
    /// hops) — used by the weather analysis to isolate ISL paths.
    IslOnly,
}

/// What a graph node represents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeKind {
    /// Satellite with its constellation-wide id.
    Satellite(u32),
    /// Source/sink city (index into [`GroundSegment::cities`]).
    City(u32),
    /// Transit-only grid relay (index into [`GroundSegment::relays`]).
    Relay(u32),
    /// In-flight aircraft relay (schedule id).
    Aircraft(u64),
}

impl NodeKind {
    /// True for any ground-side node (city, relay, or aircraft).
    pub fn is_ground(&self) -> bool {
        !matches!(self, NodeKind::Satellite(_))
    }
}

/// What a graph edge represents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EdgeKind {
    /// Laser inter-satellite link.
    Isl,
    /// Radio GT–satellite link, with the geometry the weather model
    /// needs.
    UpDown {
        /// Ground-side node.
        ground: NodeId,
        /// Satellite node.
        sat: NodeId,
        /// Elevation of the satellite as seen from the ground node,
        /// radians.
        elevation_rad: f64,
    },
}

/// Everything static about one study run.
#[derive(Debug, Clone)]
pub struct StudyContext {
    /// The configuration this context was built from.
    pub config: StudyConfig,
    /// The constellation under study.
    pub constellation: Constellation,
    /// Cities + relay grid.
    pub ground: GroundSegment,
    /// The day's synthetic air traffic.
    pub flights: FlightSchedule,
    /// The sampled traffic matrix.
    pub pairs: Vec<CityPair>,
    /// Static +Grid ISL topology (per shell, constellation-wide ids).
    isls: Vec<IslLink>,
    /// Node-table prefix shared by every snapshot: satellites, then
    /// cities (built once instead of per snapshot call).
    static_nodes: Vec<NodeKind>,
    /// Static relay node kinds (appended after cities in non-ISL-only
    /// snapshots).
    relay_nodes: Vec<NodeKind>,
    /// City positions — the ground-position prefix of every snapshot.
    city_positions: Vec<GeoPoint>,
    /// Pair indices grouped by source city, sorted by source id (the
    /// Dijkstra fan-out unit: one SSSP per entry per snapshot).
    pairs_by_src: Vec<(u32, Vec<usize>)>,
}

/// Group pair indices by source city via a stable sort (keeps pair
/// order within a source) — no hash-order dependence anywhere near the
/// routing fan-out.
fn group_pairs_by_src(pairs: &[CityPair]) -> Vec<(u32, Vec<usize>)> {
    let mut by_src: Vec<(u32, usize)> = pairs.iter().enumerate().map(|(i, p)| (p.src, i)).collect();
    by_src.sort_by_key(|&(src, _)| src);
    let mut grouped: Vec<(u32, Vec<usize>)> = Vec::new();
    for (src, i) in by_src {
        match grouped.last_mut() {
            Some((s, v)) if *s == src => v.push(i),
            _ => grouped.push((src, vec![i])),
        }
    }
    grouped
}

impl StudyContext {
    /// Assemble the full study context from a configuration.
    pub fn build(config: StudyConfig) -> Self {
        let _span = span!(
            "study_context_build",
            constellation = config.constellation.name()
        );
        let constellation = config.constellation.constellation();
        let ground = GroundSegment::build(&config);
        let flights = FlightSchedule::new(config.flight_density);
        let pairs = sample_city_pairs(
            &ground.cities,
            config.num_pairs,
            config.min_pair_distance_m,
            config.seed,
        );
        let mut isls = Vec::new();
        for (i, shell) in constellation.shells().iter().enumerate() {
            isls.extend(plus_grid_isls(shell, constellation.shell_offset(i)));
        }
        let s = constellation.num_satellites();
        let mut static_nodes = Vec::with_capacity(s + ground.cities.len());
        for sat in 0..s as u32 {
            static_nodes.push(NodeKind::Satellite(sat));
        }
        for i in 0..ground.cities.len() as u32 {
            static_nodes.push(NodeKind::City(i));
        }
        let relay_nodes: Vec<NodeKind> = (0..ground.relays.len() as u32)
            .map(NodeKind::Relay)
            .collect();
        let city_positions: Vec<GeoPoint> = ground.cities.iter().map(|c| c.pos).collect();
        let pairs_by_src = group_pairs_by_src(&pairs);
        Self {
            config,
            constellation,
            ground,
            flights,
            pairs,
            isls,
            static_nodes,
            relay_nodes,
            city_positions,
            pairs_by_src,
        }
    }

    /// Pair indices grouped by source city, sorted by source id — the
    /// per-snapshot Dijkstra fan-out (one SSSP per entry), precomputed
    /// once instead of rebuilt per snapshot by every experiment.
    pub fn pairs_by_src(&self) -> &[(u32, Vec<usize>)] {
        &self.pairs_by_src
    }

    /// Narrow the traffic matrix to the global pair-index range
    /// `lo..hi` — one shard of a pair-sharded run — rebuilding the
    /// per-source fan-out for the kept slice.
    ///
    /// Everything else is untouched: the configuration (and therefore
    /// the config hash), the constellation, the ground segment, and the
    /// pair *sampling* are those of the full run, so every shard shares
    /// provenance and shard workers see exactly the pairs a
    /// single-process run indexes as `lo..hi`, in the same order. Local
    /// pair index `j` in the restricted context is global pair `lo + j`
    /// — the offset shard files record so merges can reassemble global
    /// order.
    pub fn restrict_pair_range(&mut self, lo: usize, hi: usize) {
        // lint: allow(panic-reachable) API misuse trap: an out-of-range shard window would silently drop traffic
        assert!(
            lo <= hi && hi <= self.pairs.len(),
            "pair range {lo}..{hi} outside 0..{}",
            self.pairs.len()
        );
        self.pairs.truncate(hi);
        self.pairs.drain(..lo);
        self.pairs_by_src = group_pairs_by_src(&self.pairs);
    }

    /// Number of satellites (node ids `0..S` in every snapshot).
    pub fn num_satellites(&self) -> usize {
        self.constellation.num_satellites()
    }

    /// Graph node id of city `i` (valid in every snapshot of this
    /// context).
    pub fn city_node(&self, city_idx: usize) -> NodeId {
        debug_assert!(city_idx < self.ground.cities.len());
        (self.num_satellites() + city_idx) as NodeId
    }

    /// Freeze the network at `t_s` under `mode`.
    ///
    /// Edge weights are one-way propagation delays in **seconds** (both
    /// radio and laser links propagate at `c`), so shortest paths are
    /// lowest-latency paths and `2 × weight` is RTT.
    ///
    /// Building several modes at the same `t_s`? Use
    /// [`StudyContext::snapshot_bundle`]. Walking a time series? Use
    /// [`StudyContext::sweep_times`] or [`StudyContext::sweep_map`],
    /// which additionally keep state alive *between* instants.
    pub fn snapshot(&self, t_s: f64, mode: Mode) -> NetworkSnapshot {
        self.snapshot_bundle(t_s, &[mode])
            .pop()
            // lint: allow(unwrap-in-lib) snapshot_bundle returns one snapshot per requested mode, and one mode was passed
            .expect("one mode requested")
    }

    /// Freeze the network at `t_s` under each of `modes`, computing
    /// satellite positions, the sub-point cell index, ISL line-of-sight,
    /// and GT visibility **once** and materializing every requested mode
    /// from that shared pass. Returns one snapshot per entry of `modes`,
    /// in order (duplicates allowed).
    ///
    /// Byte-identical to building each mode via [`StudyContext::snapshot`]
    /// separately — the shared pass performs the same floating-point
    /// operations in the same order. Implemented as a single-step
    /// [`TimeSweep`].
    pub fn snapshot_bundle(&self, t_s: f64, modes: &[Mode]) -> Vec<NetworkSnapshot> {
        if modes.is_empty() {
            return Vec::new();
        }
        let mut sweep = TimeSweep::new(self, modes);
        sweep.step(t_s);
        sweep.into_snapshots()
    }

    /// Walk the time series `times`, calling `f(i, snapshots)` with the
    /// bundle for `times[i]` under `modes` (one snapshot per mode, in
    /// order). Consecutive instants share a [`TimeSweep`], so each step
    /// after the first is an incremental update, not a rebuild.
    ///
    /// The snapshot slice passed to `f` is reused between steps — clone
    /// out anything that must outlive the call.
    pub fn sweep_times(
        &self,
        times: &[f64],
        modes: &[Mode],
        mut f: impl FnMut(usize, &[NetworkSnapshot]),
    ) {
        let mut sweep = TimeSweep::new(self, modes);
        for (i, &t) in times.iter().enumerate() {
            f(i, sweep.step(t));
        }
    }

    /// [`StudyContext::sweep_times`] over the arithmetic grid
    /// `t0_s + i·dt_s` for `i in 0..n`.
    pub fn sweep(
        &self,
        t0_s: f64,
        dt_s: f64,
        n: usize,
        modes: &[Mode],
        mut f: impl FnMut(usize, &[NetworkSnapshot]),
    ) {
        let mut sweep = TimeSweep::new(self, modes);
        for i in 0..n {
            f(i, sweep.step(t0_s + i as f64 * dt_s));
        }
    }

    /// Parallel [`StudyContext::sweep_times`]: splits `times` into
    /// `threads` contiguous chunks, runs one [`TimeSweep`] per chunk, and
    /// returns `f(i, snapshots)` for every index in order.
    ///
    /// `threads == 0` means "use available parallelism", exactly like
    /// [`crate::par::parallel_map`]. Because sweep-built snapshots are
    /// bit-identical to fresh ones, the results do not depend on the
    /// thread count — only the first step of each chunk pays the full
    /// rebuild cost.
    pub fn sweep_map<R, F>(&self, times: &[f64], modes: &[Mode], threads: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &[NetworkSnapshot]) -> R + Sync,
    {
        let n = times.len();
        if n == 0 {
            return Vec::new();
        }
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(4, |p| p.get())
        } else {
            threads
        }
        .min(n);
        let chunk = n.div_ceil(threads);
        let ranges: Vec<(usize, usize)> = (0..n)
            .step_by(chunk)
            .map(|lo| (lo, (lo + chunk).min(n)))
            .collect();
        let per_chunk = crate::par::parallel_map(&ranges, threads, |&(lo, hi)| {
            let mut sweep = TimeSweep::new(self, modes);
            let mut out = Vec::with_capacity(hi - lo);
            for (i, &t) in times.iter().enumerate().take(hi).skip(lo) {
                out.push(f(i, sweep.step(t)));
            }
            out
        });
        per_chunk.into_iter().flatten().collect()
    }

    /// Streaming parallel sweep: like [`StudyContext::sweep_map`], but
    /// each chunk folds into an accumulator of type `A` instead of
    /// collecting one result per snapshot — memory stays O(threads ·
    /// |A|) no matter how long the time series is.
    ///
    /// `make` builds a fresh accumulator per chunk, `step(acc, i, snaps)`
    /// folds snapshot `i` in, and `merge(into, from)` combines chunk
    /// accumulators **in time order** (chunk 0 first). Snapshots are
    /// bit-identical regardless of chunking, so the whole fold is
    /// thread-count invariant exactly when `merge ∘ step` is associative
    /// over chunk boundaries — true for min/max folds, integer counts,
    /// `leo_util::sketch` types, and [`crate::metrics::TailQuantile`];
    /// see `tests/streaming.rs` for the cross-crate pin.
    pub fn sweep_fold<A, F, M>(
        &self,
        times: &[f64],
        modes: &[Mode],
        threads: usize,
        make: impl Fn() -> A + Sync,
        step: F,
        merge: M,
    ) -> A
    where
        A: Send,
        F: Fn(&mut A, usize, &[NetworkSnapshot]) + Sync,
        M: Fn(&mut A, A),
    {
        let n = times.len();
        if n == 0 {
            return make();
        }
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(4, |p| p.get())
        } else {
            threads
        }
        .min(n);
        let chunk = n.div_ceil(threads);
        let ranges: Vec<(usize, usize)> = (0..n)
            .step_by(chunk)
            .map(|lo| (lo, (lo + chunk).min(n)))
            .collect(); // lint: allow(hot-path-alloc) one tiny Vec of chunk bounds per sweep fan-out, not per step
        let per_chunk = crate::par::parallel_map(&ranges, threads, |&(lo, hi)| {
            let mut sweep = TimeSweep::new(self, modes);
            let mut acc = make();
            for (i, &t) in times.iter().enumerate().take(hi).skip(lo) {
                step(&mut acc, i, sweep.step(t));
            }
            acc
        });
        let mut iter = per_chunk.into_iter();
        // lint: allow(unwrap-in-lib) n > 0 guarantees at least one chunk accumulator
        let mut acc = iter.next().expect("at least one chunk");
        for part in iter {
            merge(&mut acc, part);
        }
        acc
    }

    /// [`StudyContext::sweep_times`] with per-mode [`EdgeDelta`]s:
    /// `f(i, snapshots, deltas)` receives, alongside each bundle, how
    /// every mode's edge set changed since the previous step (`full` on
    /// step 0). Both slices are reused between steps.
    pub fn sweep_deltas(
        &self,
        times: &[f64],
        modes: &[Mode],
        mut f: impl FnMut(usize, &[NetworkSnapshot], &[EdgeDelta]),
    ) {
        let mut sweep = TimeSweep::new(self, modes);
        for (i, &t) in times.iter().enumerate() {
            let (snaps, deltas) = sweep.step_with_deltas(t);
            f(i, snaps, deltas);
        }
    }

    /// [`StudyContext::sweep_fold`] with per-mode [`EdgeDelta`]s — the
    /// streaming parallel sweep for delta-consuming accumulators (e.g.
    /// per-source [`leo_graph::SptWorkspace`]s). Each chunk's first step
    /// carries `full = true` deltas, so accumulators rebuild derived
    /// state at chunk starts and repair incrementally inside the chunk;
    /// because repaired state is bit-identical to a fresh rebuild, the
    /// fold stays thread-count invariant under the same associativity
    /// condition as `sweep_fold`.
    pub fn sweep_fold_deltas<A, F, M>(
        &self,
        times: &[f64],
        modes: &[Mode],
        threads: usize,
        make: impl Fn() -> A + Sync,
        step: F,
        merge: M,
    ) -> A
    where
        A: Send,
        F: Fn(&mut A, usize, &[NetworkSnapshot], &[EdgeDelta]) + Sync,
        M: Fn(&mut A, A),
    {
        let n = times.len();
        if n == 0 {
            return make();
        }
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(4, |p| p.get())
        } else {
            threads
        }
        .min(n);
        let chunk = n.div_ceil(threads);
        let ranges: Vec<(usize, usize)> = (0..n)
            .step_by(chunk)
            .map(|lo| (lo, (lo + chunk).min(n)))
            .collect(); // lint: allow(hot-path-alloc) one tiny Vec of chunk bounds per sweep fan-out, not per step
        let per_chunk = crate::par::parallel_map(&ranges, threads, |&(lo, hi)| {
            let mut sweep = TimeSweep::new(self, modes);
            let mut acc = make();
            for (i, &t) in times.iter().enumerate().take(hi).skip(lo) {
                let (snaps, deltas) = sweep.step_with_deltas(t);
                step(&mut acc, i, snaps, deltas);
            }
            acc
        });
        let mut iter = per_chunk.into_iter();
        // lint: allow(unwrap-in-lib) n > 0 guarantees at least one chunk accumulator
        let mut acc = iter.next().expect("at least one chunk");
        for part in iter {
            merge(&mut acc, part);
        }
        acc
    }
}

/// Incremental snapshot engine: walks a time series keeping satellite
/// state, the sub-point [`CellGrid`], per-ground-point visibility sets,
/// and all output buffers alive between instants.
///
/// Created by [`TimeSweep::new`]; each [`TimeSweep::step`] produces one
/// [`NetworkSnapshot`] per requested mode. The first step propagates every
/// satellite and builds the cell index from scratch; every later step
/// advances the same state in place — satellites are *relocated* between
/// cells only when their sub-point crosses a cell boundary (reported by
/// [`ConstellationSnapshot::advance_to`]), ground-point cell windows are
/// precomputed once, and link/edge/node vectors are recycled.
///
/// **Delta invariant**: the snapshots returned by step `k` of a sweep are
/// node-for-node, edge-for-edge, and weight-bit identical to
/// [`StudyContext::snapshot_bundle`] called fresh at the same instant.
/// Membership of a GT–satellite link persists across steps whenever the
/// satellite stays above the minimum elevation; its delay/elevation
/// weights are always refreshed (satellites move every step). A full
/// rebuild happens only on the first step of a sweep — there is no other
/// fallback path, because the incremental update is exact.
#[derive(Debug)]
pub struct TimeSweep<'a> {
    ctx: &'a StudyContext,
    modes: Vec<Mode>,
    needs_full_ground: bool,
    needs_isls: bool,
    query_radius_m: f64,
    /// Satellite state advanced in place across steps.
    sats: ConstellationSnapshot,
    /// Sub-point cell index maintained incrementally alongside `sats`.
    grid: CellGrid,
    /// CSR copy of `grid` (`cell_ids[cell_off[c]..cell_off[c+1]]`),
    /// re-flattened each step so the visibility loops stream two
    /// contiguous arrays instead of one heap bucket per cell.
    cell_off: Vec<u32>,
    cell_ids: Vec<u32>,
    /// Batched elevation test with the threshold trig precomputed once
    /// per sweep.
    vis: VisibilityScan,
    transitions: Vec<CellTransition>,
    started: bool,
    /// Static ground points: cities, then relays (relays only when some
    /// mode uses them).
    static_ground: Vec<GeoPoint>,
    /// Surface ECEF position + norm per static ground point, hoisted out
    /// of the per-step visibility loops.
    static_ecef: Vec<(Ecef, f64)>,
    /// Cell window per static ground point as consecutive-cell segments
    /// (see [`CellGrid::window_segments`]), precomputed once — window
    /// geometry depends only on the grid shape, not its contents.
    static_cells: Vec<Vec<(u32, u32)>>,
    /// Per static ground point: (satellite, one-way delay s, elevation
    /// rad), persisted across steps.
    static_links: Vec<Vec<(u32, f64, f64)>>,
    aircraft: Vec<Aircraft>,
    air_links: Vec<Vec<(u32, f64, f64)>>,
    air_cells: Vec<(u32, u32)>,
    isl_links: Vec<(NodeId, NodeId, f64)>,
    /// Previous step's visible-satellite ids for one ground point
    /// (sorted), used for the reused/recomputed telemetry split.
    prev_ids: Vec<u32>,
    builder: GraphBuilder,
    snapshots: Vec<NetworkSnapshot>,
    /// Delta tracking (opt-in via [`TimeSweep::step_with_deltas`]).
    track_deltas: bool,
    /// True once one tracked step completed — i.e. the `prev_*`
    /// bookkeeping below describes a real previous step.
    delta_ready: bool,
    deltas: Vec<EdgeDelta>,
    /// Line-of-sight flag per [`StudyContext::isls`] entry, this step /
    /// previous step (swapped before each recompute).
    isl_present: Vec<bool>,
    prev_isl_present: Vec<bool>,
    /// Previous step's visible-satellite ids per static ground point, in
    /// emission order (the order `assemble_mode` assigned edge ids).
    prev_static_ids: Vec<Vec<u32>>,
    /// Previous step's total aircraft link count (the wholesale-diff
    /// fallback when the census changed).
    prev_air_total: usize,
    /// Previous step's aircraft census (schedule ids, census order) and
    /// per-aircraft visible-satellite ids in emission order. When the
    /// census survives a step unchanged, aircraft node ids are stable
    /// and links pair by satellite id exactly like static ground.
    prev_air_ids: Vec<u64>,
    prev_air_sat_ids: Vec<Vec<u32>>,
    /// Whether the census matched (same flights, same order) — gates
    /// per-link aircraft matching vs the wholesale fallback.
    air_census_stable: bool,
    /// Per-aircraft block-local matches, valid when the census is stable.
    air_matched: Vec<Vec<(u32, u32)>>,
    air_removed: Vec<Vec<u32>>,
    air_added: Vec<Vec<u32>>,
    /// Block-local (old, new) id pairs for ISLs with line of sight in
    /// both steps, plus old-only / new-only positions.
    isl_matched: Vec<(u32, u32)>,
    isl_removed: Vec<u32>,
    isl_added: Vec<u32>,
    prev_isl_count: u32,
    /// Per static ground point: (old position, new position) matches in
    /// new-emission order, plus old-only / new-only positions.
    gi_matched: Vec<Vec<(u32, u32)>>,
    gi_removed: Vec<Vec<u32>>,
    gi_added: Vec<Vec<u32>>,
    /// Matching scratch: (sat id, old position) sorted by sat id, and a
    /// consumed flag per entry.
    match_sorted: Vec<(u32, u32)>,
    match_consumed: Vec<bool>,
}

impl<'a> TimeSweep<'a> {
    /// Set up a sweep over `ctx` producing one snapshot per entry of
    /// `modes` at every step. No orbital work happens until the first
    /// [`TimeSweep::step`].
    pub fn new(ctx: &'a StudyContext, modes: &[Mode]) -> Self {
        let needs_full_ground = modes.iter().any(|&m| m != Mode::IslOnly);
        let needs_isls = modes.iter().any(|&m| m != Mode::BpOnly);
        let params = VisibilityParams {
            min_elevation_rad: ctx.constellation.min_elevation_rad(),
            max_altitude_m: ctx.config.constellation.max_altitude_m(),
        };
        let query_radius_m = params.query_radius_m();
        let mut static_ground = ctx.city_positions.clone();
        if needs_full_ground {
            static_ground.extend(ctx.ground.relays.iter().copied());
        }
        let grid = CellGrid::new(SUBPOINT_BIN_DEG);
        let static_ecef: Vec<(Ecef, f64)> = static_ground
            .iter()
            .map(|&g| {
                let e = Ecef::from_geo(g, 0.0);
                let norm = e.norm();
                (e, norm)
            })
            .collect();
        let static_cells: Vec<Vec<(u32, u32)>> = static_ground
            .iter()
            .map(|&g| {
                let mut segments = Vec::new();
                grid.window_segments(g, query_radius_m, &mut segments);
                segments
            })
            .collect();
        let static_links = vec![Vec::new(); static_ground.len()];
        let snapshots = modes
            .iter()
            .map(|&mode| NetworkSnapshot {
                t_s: 0.0,
                mode,
                graph: Graph::default(),
                nodes: Vec::new(),
                edges: Vec::new(),
                ground_positions: Vec::new(),
                num_satellites: ctx.num_satellites(),
                num_aircraft: 0,
            })
            .collect();
        Self {
            ctx,
            modes: modes.to_vec(),
            needs_full_ground,
            needs_isls,
            query_radius_m,
            sats: ConstellationSnapshot::default(),
            grid,
            cell_off: Vec::new(),
            cell_ids: Vec::new(),
            vis: VisibilityScan::new(params.min_elevation_rad),
            transitions: Vec::new(),
            started: false,
            static_ground,
            static_ecef,
            static_cells,
            static_links,
            aircraft: Vec::new(),
            air_links: Vec::new(),
            air_cells: Vec::new(),
            isl_links: Vec::new(),
            prev_ids: Vec::new(),
            builder: GraphBuilder::new(0),
            snapshots,
            track_deltas: false,
            delta_ready: false,
            deltas: Vec::new(),
            isl_present: Vec::new(),
            prev_isl_present: Vec::new(),
            prev_static_ids: Vec::new(),
            prev_air_total: 0,
            prev_air_ids: Vec::new(),
            prev_air_sat_ids: Vec::new(),
            air_census_stable: false,
            air_matched: Vec::new(),
            air_removed: Vec::new(),
            air_added: Vec::new(),
            isl_matched: Vec::new(),
            isl_removed: Vec::new(),
            isl_added: Vec::new(),
            prev_isl_count: 0,
            gi_matched: Vec::new(),
            gi_removed: Vec::new(),
            gi_added: Vec::new(),
            match_sorted: Vec::new(),
            match_consumed: Vec::new(),
        }
    }

    /// Advance to `t_s` and rebuild the per-mode snapshots, returning
    /// them in `modes` order. The slice borrows the sweep's internal
    /// buffers and is overwritten by the next step.
    ///
    /// Steps may be in any order and arbitrarily far apart — the
    /// incremental update is exact regardless of `dt` (a large jump just
    /// relocates more satellites between cells).
    pub fn step(&mut self, t_s: f64) -> &[NetworkSnapshot] {
        self.step_impl(t_s);
        &self.snapshots
    }

    /// Like [`TimeSweep::step`], additionally returning one [`EdgeDelta`]
    /// per mode describing how each edge set changed since the previous
    /// step. The first call (on this sweep, or after plain-`step`-only
    /// use since construction… tracking starts on first request and the
    /// first tracked-after-untracked step has no bookkeeping to diff
    /// against) yields `full = true` deltas.
    ///
    /// Both returned slices borrow the sweep and are overwritten by the
    /// next step.
    pub fn step_with_deltas(&mut self, t_s: f64) -> (&[NetworkSnapshot], &[EdgeDelta]) {
        if !self.track_deltas {
            self.start_delta_tracking();
        }
        self.step_impl(t_s);
        (&self.snapshots, &self.deltas)
    }

    /// One-time allocation of the delta-tracking bookkeeping, on the
    /// first [`TimeSweep::step_with_deltas`] call. Everything sized here
    /// is recycled on every subsequent step (declared cold in
    /// `lint.toml`, so `hot-path-alloc` reachability stops at this fn).
    fn start_delta_tracking(&mut self) {
        self.track_deltas = true;
        self.delta_ready = false;
        self.deltas = self.modes.iter().map(|_| EdgeDelta::default()).collect();
        self.isl_present = vec![false; self.ctx.isls.len()];
        self.prev_isl_present = vec![false; self.ctx.isls.len()];
        self.prev_static_ids = vec![Vec::new(); self.static_ground.len()];
        self.gi_matched = vec![Vec::new(); self.static_ground.len()];
        self.gi_removed = vec![Vec::new(); self.static_ground.len()];
        self.gi_added = vec![Vec::new(); self.static_ground.len()];
    }

    /// The deltas produced by the most recent step (empty unless
    /// [`TimeSweep::step_with_deltas`] has been used).
    pub fn deltas(&self) -> &[EdgeDelta] {
        &self.deltas
    }

    fn step_impl(&mut self, t_s: f64) {
        if self.modes.is_empty() {
            return;
        }
        let _span = debug_span!("sweep_step", t_s = t_s, modes = self.modes.len());
        SNAPSHOTS_BUILT.add(self.modes.len() as u64);
        VISIBILITY_SHARED_MODES.add(self.modes.len() as u64 - 1);
        if self.started {
            self.sats.advance_to(
                &self.ctx.constellation,
                t_s,
                &mut self.grid,
                &mut self.transitions,
            );
            SWEEP_CELL_TRANSITIONS.add(self.transitions.len() as u64);
        } else {
            self.sats = self.ctx.constellation.positions_at(t_s);
            self.grid = self.sats.cell_grid(SUBPOINT_BIN_DEG);
            SWEEP_FULL_REBUILDS.add(1);
            self.started = true;
        }
        if self.track_deltas {
            // Stash the outgoing step's bookkeeping before the recompute
            // passes overwrite it. Aircraft census and links are copied
            // here because `aircraft_into` below replaces the census.
            self.prev_air_total = (0..self.aircraft.len())
                .map(|ai| self.air_links[ai].len())
                .sum();
            self.prev_air_ids.clear();
            // lint: allow(hot-path-alloc) refills a recycled buffer after clear; allocates only on a new peak aircraft count
            self.prev_air_ids.extend(self.aircraft.iter().map(|a| a.id));
            if self.prev_air_sat_ids.len() < self.aircraft.len() {
                self.prev_air_sat_ids
                    // lint: allow(hot-path-alloc) grows once per new peak aircraft count, then the guard above makes it a no-op
                    .resize_with(self.aircraft.len(), Vec::new);
            }
            for ai in 0..self.aircraft.len() {
                let prev = &mut self.prev_air_sat_ids[ai];
                prev.clear();
                // lint: allow(hot-path-alloc) refills a recycled per-aircraft buffer after clear; steady state is a memcpy
                prev.extend(self.air_links[ai].iter().map(|l| l.0));
            }
            std::mem::swap(&mut self.prev_isl_present, &mut self.isl_present);
        }
        self.grid
            .flatten_into(&mut self.cell_off, &mut self.cell_ids);
        if self.needs_full_ground {
            self.ctx
                .flights
                .aircraft_into(t_s, true, &mut self.aircraft);
        } else {
            self.aircraft.clear();
        }
        self.recompute_isls();
        self.recompute_static_links();
        self.recompute_aircraft_links();
        if self.track_deltas && self.delta_ready {
            self.compute_link_matches();
        }
        for mi in 0..self.modes.len() {
            self.assemble_mode(mi, t_s);
            if self.track_deltas {
                self.assemble_delta(mi);
            }
        }
        if self.track_deltas {
            self.delta_ready = true;
        }
    }

    /// The snapshots produced by the most recent [`TimeSweep::step`]
    /// (placeholders with empty graphs before the first step).
    pub fn snapshots(&self) -> &[NetworkSnapshot] {
        &self.snapshots
    }

    /// Consume the sweep, keeping the final step's snapshots.
    pub fn into_snapshots(self) -> Vec<NetworkSnapshot> {
        self.snapshots
    }

    /// Refresh ISL line-of-sight and delays against the current
    /// satellite positions.
    // lint: hot-path
    fn recompute_isls(&mut self) {
        self.isl_links.clear();
        if !self.needs_isls {
            return;
        }
        let clearance = self.ctx.config.network.isl_clearance_m;
        for (i, l) in self.ctx.isls.iter().enumerate() {
            let pa = self.sats.position(l.a as usize);
            let pb = self.sats.position(l.b as usize);
            let visible = isl_line_of_sight(&pa, &pb, clearance);
            if self.track_deltas {
                self.isl_present[i] = visible;
            }
            if visible {
                self.isl_links
                    .push((l.a, l.b, pa.distance(&pb) / SPEED_OF_LIGHT_M_S));
            }
        }
    }

    /// Refresh the visibility set of every static ground point (cities +
    /// relays) via the batched SoA elevation test over its precomputed
    /// cell window.
    ///
    /// Enumerating window cells in canonical grid order with id-sorted
    /// buckets reproduces the satellite order of a fresh
    /// `SphereGrid::query_radius` pass exactly, and the elevation test
    /// alone decides membership: any satellite outside the query radius
    /// is below the minimum elevation by construction, so no great-circle
    /// prefilter is needed.
    // lint: hot-path
    fn recompute_static_links(&mut self) {
        let (xs, ys, zs) = self.sats.xyz();
        let count = enabled(Level::Info);
        let track = self.track_deltas;
        let (mut reused, mut recomputed) = (0u64, 0u64);
        let prev_ids = &mut self.prev_ids;
        let prev_static_ids = &mut self.prev_static_ids;
        for (gi, links) in self.static_links.iter_mut().enumerate() {
            if count {
                prev_ids.clear();
                prev_ids.extend(links.iter().map(|l| l.0));
                prev_ids.sort_unstable();
            }
            if track {
                // Delta bookkeeping: the outgoing visibility set in
                // emission order — exactly the positions `assemble_mode`
                // turned into edge ids last step.
                let prev = &mut prev_static_ids[gi];
                prev.clear();
                prev.extend(links.iter().map(|l| l.0));
            }
            links.clear();
            let (g, g_norm) = self.static_ecef[gi];
            let mut emit = |sat: u32, range_m: f64, elev: f64| {
                links.push((sat, range_m / SPEED_OF_LIGHT_M_S, elev));
            };
            for &(a, b) in &self.static_cells[gi] {
                let (lo, hi) = (
                    self.cell_off[a as usize] as usize,
                    self.cell_off[b as usize] as usize,
                );
                self.vis
                    .scan(&g, g_norm, (xs, ys, zs), &self.cell_ids[lo..hi], &mut emit);
            }
            if count {
                for l in links.iter() {
                    if prev_ids.binary_search(&l.0).is_ok() {
                        reused += 1;
                    } else {
                        recomputed += 1;
                    }
                }
            }
        }
        if count {
            SWEEP_EDGES_REUSED.add(reused);
            SWEEP_EDGES_RECOMPUTED.add(recomputed);
        }
    }

    /// Refresh aircraft visibility. Aircraft move between steps, so their
    /// cell windows are recomputed per step (against the current grid
    /// shape — contents-independent) and their links rebuilt wholesale.
    // lint: hot-path
    fn recompute_aircraft_links(&mut self) {
        if self.air_links.len() < self.aircraft.len() {
            self.air_links
                // lint: allow(hot-path-alloc) grows once per new peak aircraft count, then recycled
                .resize_with(self.aircraft.len(), Vec::new);
        }
        let (xs, ys, zs) = self.sats.xyz();
        for (ai, a) in self.aircraft.iter().enumerate() {
            let links = &mut self.air_links[ai];
            links.clear();
            let g = Ecef::from_geo(a.pos, 0.0);
            let g_norm = g.norm();
            self.grid
                .window_segments(a.pos, self.query_radius_m, &mut self.air_cells);
            let mut emit = |sat: u32, range_m: f64, elev: f64| {
                links.push((sat, range_m / SPEED_OF_LIGHT_M_S, elev));
            };
            for &(ca, cb) in &self.air_cells {
                let (lo, hi) = (
                    self.cell_off[ca as usize] as usize,
                    self.cell_off[cb as usize] as usize,
                );
                self.vis
                    .scan(&g, g_norm, (xs, ys, zs), &self.cell_ids[lo..hi], &mut emit);
            }
        }
    }

    /// Rebuild snapshot `mi` (graph, node/edge tables, ground positions)
    /// from the refreshed link sets, recycling all of its buffers.
    // lint: hot-path
    fn assemble_mode(&mut self, mi: usize, t_s: f64) {
        let mode = self.modes[mi];
        let s = self.ctx.num_satellites();
        let num_cities = self.ctx.city_positions.len();
        let num_static = self.static_ground.len();
        let num_ground = if mode == Mode::IslOnly {
            num_cities
        } else {
            num_static + self.aircraft.len()
        };
        let snap = &mut self.snapshots[mi];
        snap.nodes.clear();
        snap.nodes.extend_from_slice(&self.ctx.static_nodes);
        if mode != Mode::IslOnly {
            snap.nodes.extend_from_slice(&self.ctx.relay_nodes);
            snap.nodes
                .extend(self.aircraft.iter().map(|a| NodeKind::Aircraft(a.id)));
        }
        debug_assert_eq!(snap.nodes.len(), s + num_ground);

        self.builder.reset(snap.nodes.len());
        snap.edges.clear();
        if mode != Mode::BpOnly {
            for &(a, b, delay) in &self.isl_links {
                self.builder.add_edge(a, b, delay);
                snap.edges.push(EdgeKind::Isl);
            }
        }
        for gi in 0..num_ground {
            let ground_node = (s + gi) as NodeId;
            let links = if gi < num_static {
                &self.static_links[gi]
            } else {
                &self.air_links[gi - num_static]
            };
            for &(sat, delay, elevation_rad) in links {
                self.builder.add_edge(ground_node, sat, delay);
                snap.edges.push(EdgeKind::UpDown {
                    ground: ground_node,
                    sat,
                    elevation_rad,
                });
            }
        }
        self.builder.build_into(&mut snap.graph);
        debug_assert_eq!(snap.graph.num_edges(), snap.edges.len());

        snap.ground_positions.clear();
        snap.ground_positions
            .extend_from_slice(&self.static_ground[..num_ground.min(num_static)]);
        if mode != Mode::IslOnly {
            snap.ground_positions
                .extend(self.aircraft.iter().map(|a| a.pos));
        }
        snap.t_s = t_s;
        snap.mode = mode;
        snap.num_satellites = s;
        snap.num_aircraft = if mode == Mode::IslOnly {
            0
        } else {
            self.aircraft.len()
        };
    }

    /// Match the previous step's link sets against the refreshed ones,
    /// producing block-local (old position, new position) pairs that
    /// [`TimeSweep::assemble_delta`] offsets into per-mode edge ids.
    ///
    /// Static ground points pair links by satellite id (unique per
    /// ground point); ISLs pair by position in the fixed `ctx.isls`
    /// order via the presence flags. Aircraft pair by satellite id too
    /// whenever the census survived the step unchanged (stable node
    /// ids); a census change (takeoff / landing reorders the node tail)
    /// falls back to the wholesale removed + added diff.
    // lint: hot-path
    fn compute_link_matches(&mut self) {
        self.isl_matched.clear();
        self.isl_removed.clear();
        self.isl_added.clear();
        let (mut oc, mut nc) = (0u32, 0u32);
        if self.needs_isls {
            for i in 0..self.ctx.isls.len() {
                match (self.prev_isl_present[i], self.isl_present[i]) {
                    (true, true) => {
                        self.isl_matched.push((oc, nc));
                        oc += 1;
                        nc += 1;
                    }
                    (true, false) => {
                        self.isl_removed.push(oc);
                        oc += 1;
                    }
                    (false, true) => {
                        self.isl_added.push(nc);
                        nc += 1;
                    }
                    (false, false) => {}
                }
            }
        }
        self.prev_isl_count = oc;
        for gi in 0..self.static_ground.len() {
            match_link_block(
                &self.prev_static_ids[gi],
                &self.static_links[gi],
                &mut self.gi_matched[gi],
                &mut self.gi_removed[gi],
                &mut self.gi_added[gi],
                &mut self.match_sorted,
                &mut self.match_consumed,
            );
        }
        self.air_census_stable = self.prev_air_ids.len() == self.aircraft.len()
            && self
                .aircraft
                .iter()
                .zip(&self.prev_air_ids)
                .all(|(a, &id)| a.id == id);
        if self.air_census_stable {
            if self.air_matched.len() < self.aircraft.len() {
                // lint: allow(hot-path-alloc) grows once per new peak aircraft count, then recycled
                self.air_matched.resize_with(self.aircraft.len(), Vec::new);
                // lint: allow(hot-path-alloc) grows once per new peak aircraft count, then recycled
                self.air_removed.resize_with(self.aircraft.len(), Vec::new);
                // lint: allow(hot-path-alloc) grows once per new peak aircraft count, then recycled
                self.air_added.resize_with(self.aircraft.len(), Vec::new);
            }
            for ai in 0..self.aircraft.len() {
                match_link_block(
                    &self.prev_air_sat_ids[ai],
                    &self.air_links[ai],
                    &mut self.air_matched[ai],
                    &mut self.air_removed[ai],
                    &mut self.air_added[ai],
                    &mut self.match_sorted,
                    &mut self.match_consumed,
                );
            }
        }
    }

    /// Offset the block-local matches into mode `mi`'s edge-id space,
    /// mirroring [`TimeSweep::assemble_mode`]'s emission order exactly:
    /// the ISL block first (modes with ISLs), then each ground point's
    /// links in ground order, then aircraft links (modes with aircraft).
    // lint: hot-path
    fn assemble_delta(&mut self, mi: usize) {
        let mode = self.modes[mi];
        let num_nodes = self.snapshots[mi].nodes.len();
        let d = &mut self.deltas[mi];
        d.num_nodes = num_nodes;
        d.added.clear();
        d.removed.clear();
        d.reweighted.clear();
        d.full = !self.delta_ready;
        if d.full {
            return;
        }
        let (mut ob, mut nb) = (0u32, 0u32);
        if mode != Mode::BpOnly {
            for &(o, n) in &self.isl_matched {
                d.reweighted.push((o as EdgeId, n as EdgeId));
            }
            for &o in &self.isl_removed {
                d.removed.push(o as EdgeId);
            }
            for &n in &self.isl_added {
                d.added.push(n as EdgeId);
            }
            ob = self.prev_isl_count;
            nb = self.isl_links.len() as u32;
        }
        let num_ground_static = if mode == Mode::IslOnly {
            self.ctx.city_positions.len()
        } else {
            self.static_ground.len()
        };
        for gi in 0..num_ground_static {
            for &(op, np) in &self.gi_matched[gi] {
                d.reweighted
                    .push(((ob + op) as EdgeId, (nb + np) as EdgeId));
            }
            for &op in &self.gi_removed[gi] {
                d.removed.push((ob + op) as EdgeId);
            }
            for &np in &self.gi_added[gi] {
                d.added.push((nb + np) as EdgeId);
            }
            ob += self.prev_static_ids[gi].len() as u32;
            nb += self.static_links[gi].len() as u32;
        }
        if mode != Mode::IslOnly {
            if self.air_census_stable {
                for ai in 0..self.aircraft.len() {
                    for &(op, np) in &self.air_matched[ai] {
                        d.reweighted.push((ob + op, nb + np));
                    }
                    for &op in &self.air_removed[ai] {
                        d.removed.push(ob + op);
                    }
                    for &np in &self.air_added[ai] {
                        d.added.push(nb + np);
                    }
                    ob += self.prev_air_sat_ids[ai].len() as u32;
                    nb += self.air_links[ai].len() as u32;
                }
            } else {
                for k in 0..self.prev_air_total as u32 {
                    d.removed.push(ob + k);
                }
                let new_air_total: usize = (0..self.aircraft.len())
                    .map(|ai| self.air_links[ai].len())
                    .sum();
                for k in 0..new_air_total as u32 {
                    d.added.push(nb + k);
                }
            }
        }
    }
}

/// Pair one link block's previous visible-satellite ids against its
/// refreshed links by satellite id (unique within a block), producing
/// block-local (old position, new position) matches plus old-only /
/// new-only position lists. `sorted` / `consumed` are recycled scratch.
// lint: hot-path
fn match_link_block(
    old: &[u32],
    new_links: &[(u32, f64, f64)],
    matched: &mut Vec<(u32, u32)>,
    removed: &mut Vec<u32>,
    added: &mut Vec<u32>,
    sorted: &mut Vec<(u32, u32)>,
    consumed: &mut Vec<bool>,
) {
    matched.clear();
    removed.clear();
    added.clear();
    sorted.clear();
    sorted.extend(old.iter().enumerate().map(|(p, &sat)| (sat, p as u32)));
    sorted.sort_unstable();
    consumed.clear();
    consumed.resize(sorted.len(), false);
    for (np, l) in new_links.iter().enumerate() {
        match sorted.binary_search_by_key(&l.0, |&(s, _)| s) {
            Ok(k) => {
                consumed[k] = true;
                matched.push((sorted[k].1, np as u32));
            }
            Err(_) => added.push(np as u32),
        }
    }
    for (k, &(_, op)) in sorted.iter().enumerate() {
        if !consumed[k] {
            removed.push(op);
        }
    }
    removed.sort_unstable();
}

/// The network frozen at one instant: a weighted graph plus metadata.
#[derive(Debug, Clone)]
pub struct NetworkSnapshot {
    /// Snapshot time, seconds since epoch.
    pub t_s: f64,
    /// Connectivity mode the snapshot was built under.
    pub mode: Mode,
    /// Delay-weighted undirected graph.
    pub graph: Graph,
    /// Node metadata, indexed by [`NodeId`].
    pub nodes: Vec<NodeKind>,
    /// Edge metadata, indexed by [`EdgeId`].
    pub edges: Vec<EdgeKind>,
    /// Positions of ground-side nodes, indexed by `node_id −
    /// num_satellites`.
    pub ground_positions: Vec<GeoPoint>,
    /// Number of satellites (node ids `0..num_satellites`).
    pub num_satellites: usize,
    /// Number of aircraft relays included.
    pub num_aircraft: usize,
}

impl NetworkSnapshot {
    /// Node id of city `i`.
    pub fn city_node(&self, city_idx: usize) -> NodeId {
        (self.num_satellites + city_idx) as NodeId
    }

    /// Ground position of a ground-side node.
    pub fn ground_position(&self, node: NodeId) -> Option<GeoPoint> {
        let i = (node as usize).checked_sub(self.num_satellites)?;
        self.ground_positions.get(i).copied()
    }

    /// Capacity of an edge under the link configuration, Gbps.
    pub fn edge_capacity_gbps(&self, net: &NetworkConfig, e: EdgeId) -> f64 {
        match self.edges[e as usize] {
            EdgeKind::Isl => net.isl_gbps,
            EdgeKind::UpDown { .. } => net.gt_link_gbps,
        }
    }
}

/// Re-export for convenient pair iteration.
pub use leo_data::traffic::CityPair as Pair;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentScale;

    fn ctx() -> StudyContext {
        StudyContext::build(ExperimentScale::Tiny.config())
    }

    #[test]
    fn node_layout_is_stable() {
        let c = ctx();
        let snap = c.snapshot(0.0, Mode::Hybrid);
        let s = c.num_satellites();
        assert_eq!(snap.num_satellites, s);
        assert!(matches!(snap.nodes[0], NodeKind::Satellite(0)));
        assert!(matches!(snap.nodes[s], NodeKind::City(0)));
        assert_eq!(snap.city_node(3), (s + 3) as NodeId);
        assert_eq!(c.city_node(3), snap.city_node(3));
    }

    #[test]
    fn bp_mode_has_no_isls() {
        let c = ctx();
        let snap = c.snapshot(0.0, Mode::BpOnly);
        assert!(snap
            .edges
            .iter()
            .all(|e| matches!(e, EdgeKind::UpDown { .. })));
    }

    #[test]
    fn hybrid_has_both_kinds() {
        let c = ctx();
        let snap = c.snapshot(0.0, Mode::Hybrid);
        let isls = snap
            .edges
            .iter()
            .filter(|e| matches!(e, EdgeKind::Isl))
            .count();
        let radio = snap.edges.len() - isls;
        // +Grid: 2 links/satellite; a handful can be suppressed by the
        // 80 km clearance rule.
        assert!(isls > 2 * c.num_satellites() * 9 / 10, "isls = {isls}");
        assert!(radio > 0);
    }

    #[test]
    fn isl_only_excludes_relays_and_aircraft() {
        let c = ctx();
        let snap = c.snapshot(0.0, Mode::IslOnly);
        assert!(snap
            .nodes
            .iter()
            .all(|n| matches!(n, NodeKind::Satellite(_) | NodeKind::City(_))));
        assert_eq!(snap.num_aircraft, 0);
    }

    #[test]
    fn bp_includes_relays_and_aircraft() {
        let c = ctx();
        let snap = c.snapshot(30_000.0, Mode::BpOnly);
        let relays = snap
            .nodes
            .iter()
            .filter(|n| matches!(n, NodeKind::Relay(_)))
            .count();
        let aircraft = snap
            .nodes
            .iter()
            .filter(|n| matches!(n, NodeKind::Aircraft(_)))
            .count();
        assert_eq!(relays, c.ground.relays.len());
        assert_eq!(aircraft, snap.num_aircraft);
        assert!(aircraft > 0, "some aircraft should be over water mid-day");
    }

    #[test]
    fn edge_weights_are_plausible_delays() {
        let c = ctx();
        let snap = c.snapshot(0.0, Mode::Hybrid);
        for e in 0..snap.graph.num_edges() as EdgeId {
            let (_, _, w) = snap.graph.edge(e);
            // 550 km overhead ≈ 1.8 ms; longest slant/ISL a few ms.
            assert!(w > 0.0015 && w < 0.03, "edge {e} delay {w}s");
        }
    }

    #[test]
    fn updown_metadata_consistent() {
        let c = ctx();
        let snap = c.snapshot(0.0, Mode::Hybrid);
        for (e, kind) in snap.edges.iter().enumerate() {
            if let EdgeKind::UpDown {
                ground,
                sat,
                elevation_rad,
            } = kind
            {
                let (u, v, _) = snap.graph.edge(e as EdgeId);
                assert!(
                    (u == *ground && v == *sat) || (u == *sat && v == *ground),
                    "edge endpoints disagree with metadata"
                );
                assert!(*elevation_rad >= c.constellation.min_elevation_rad() - 1e-9);
                assert!((*sat as usize) < snap.num_satellites);
                assert!((*ground as usize) >= snap.num_satellites);
            }
        }
    }

    #[test]
    fn capacities_follow_kind() {
        let c = ctx();
        let snap = c.snapshot(0.0, Mode::Hybrid);
        let net = c.config.network;
        for e in 0..snap.edges.len() as EdgeId {
            let cap = snap.edge_capacity_gbps(&net, e);
            match snap.edges[e as usize] {
                EdgeKind::Isl => assert_eq!(cap, 100.0),
                EdgeKind::UpDown { .. } => assert_eq!(cap, 20.0),
            }
        }
    }

    #[test]
    fn pairs_sampled() {
        let c = ctx();
        assert_eq!(c.pairs.len(), c.config.num_pairs);
    }

    #[test]
    fn snapshots_differ_over_time() {
        let c = ctx();
        let a = c.snapshot(0.0, Mode::Hybrid);
        let b = c.snapshot(900.0, Mode::Hybrid);
        // Compare the edge *endpoint sets*, not raw edge counts — counts
        // can coincide by chance at other scales/seeds even though the
        // satellites moved. 15 minutes of orbital motion must change
        // which GT–satellite links exist.
        let endpoints = |s: &NetworkSnapshot| -> std::collections::HashSet<(NodeId, NodeId)> {
            (0..s.graph.num_edges() as EdgeId)
                .map(|e| {
                    let (u, v, _) = s.graph.edge(e);
                    (u.min(v), u.max(v))
                })
                .collect()
        };
        assert_ne!(endpoints(&a), endpoints(&b));
    }

    #[test]
    fn bundle_matches_individual_snapshots() {
        // The shared-pass bundle must be indistinguishable from building
        // each mode separately — same nodes, same edges in the same
        // order, bit-identical weights.
        let c = ctx();
        for t in [0.0, 30_000.0] {
            let modes = [Mode::BpOnly, Mode::Hybrid, Mode::IslOnly];
            let bundle = c.snapshot_bundle(t, &modes);
            assert_eq!(bundle.len(), modes.len());
            for (snap, &mode) in bundle.iter().zip(&modes) {
                let solo = c.snapshot(t, mode);
                assert_eq!(snap.mode, mode);
                assert_eq!(snap.nodes, solo.nodes, "{mode:?} node table");
                assert_eq!(snap.edges, solo.edges, "{mode:?} edge metadata");
                assert_eq!(snap.num_aircraft, solo.num_aircraft);
                assert_eq!(snap.ground_positions.len(), solo.ground_positions.len());
                assert_eq!(snap.graph.num_edges(), solo.graph.num_edges());
                for e in 0..snap.graph.num_edges() as EdgeId {
                    let (u1, v1, w1) = snap.graph.edge(e);
                    let (u2, v2, w2) = solo.graph.edge(e);
                    assert_eq!((u1, v1), (u2, v2));
                    assert_eq!(
                        w1.to_bits(),
                        w2.to_bits(),
                        "edge {e} weight must be bit-identical"
                    );
                }
            }
        }
    }

    #[test]
    fn bundle_empty_and_duplicate_modes() {
        let c = ctx();
        assert!(c.snapshot_bundle(0.0, &[]).is_empty());
        let twice = c.snapshot_bundle(0.0, &[Mode::Hybrid, Mode::Hybrid]);
        assert_eq!(twice.len(), 2);
        assert_eq!(twice[0].graph.num_edges(), twice[1].graph.num_edges());
    }

    #[test]
    fn pairs_by_src_covers_all_pairs_once() {
        let c = ctx();
        let mut seen = vec![false; c.pairs.len()];
        let mut prev_src = None;
        for (src, idxs) in c.pairs_by_src() {
            if let Some(p) = prev_src {
                assert!(*src > p, "sources must be strictly increasing");
            }
            prev_src = Some(*src);
            for &i in idxs {
                assert_eq!(c.pairs[i].src, *src);
                assert!(!seen[i], "pair {i} listed twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every pair must appear");
    }

    /// Assert two snapshots are indistinguishable: same metadata, same
    /// node/edge tables, bit-identical graph.
    fn assert_snapshots_identical(a: &NetworkSnapshot, b: &NetworkSnapshot, what: &str) {
        assert_eq!(a.t_s.to_bits(), b.t_s.to_bits(), "{what}: t_s");
        assert_eq!(a.mode, b.mode, "{what}: mode");
        assert_eq!(a.nodes, b.nodes, "{what}: node table");
        assert_eq!(a.edges, b.edges, "{what}: edge metadata");
        assert_eq!(a.num_satellites, b.num_satellites, "{what}: num_satellites");
        assert_eq!(a.num_aircraft, b.num_aircraft, "{what}: num_aircraft");
        assert_eq!(
            a.ground_positions.len(),
            b.ground_positions.len(),
            "{what}: ground positions"
        );
        for (pa, pb) in a.ground_positions.iter().zip(&b.ground_positions) {
            assert_eq!(pa.lat().to_bits(), pb.lat().to_bits(), "{what}: ground lat");
            assert_eq!(pa.lon().to_bits(), pb.lon().to_bits(), "{what}: ground lon");
        }
        assert_eq!(a.graph.num_edges(), b.graph.num_edges(), "{what}: edges");
        for e in 0..a.graph.num_edges() as EdgeId {
            let (u1, v1, w1) = a.graph.edge(e);
            let (u2, v2, w2) = b.graph.edge(e);
            assert_eq!((u1, v1), (u2, v2), "{what}: edge {e} endpoints");
            assert_eq!(w1.to_bits(), w2.to_bits(), "{what}: edge {e} weight bits");
        }
    }

    #[test]
    fn sweep_matches_fresh_bundles_step_by_step() {
        // The incremental path (advance_to + cell relocation + persisted
        // link sets) must be indistinguishable from a fresh rebuild at
        // every step — including irregular and large time jumps, which
        // cross many cell boundaries.
        let c = ctx();
        let modes = [Mode::BpOnly, Mode::Hybrid, Mode::IslOnly];
        let times = [0.0, 90.0, 900.0, 947.3, 30_000.0, 29_000.0];
        let mut sweep = TimeSweep::new(&c, &modes);
        for &t in &times {
            let inc = sweep.step(t);
            let fresh = c.snapshot_bundle(t, &modes);
            assert_eq!(inc.len(), fresh.len());
            for (i, (a, b)) in inc.iter().zip(&fresh).enumerate() {
                assert_snapshots_identical(a, b, &format!("t={t} mode #{i}"));
            }
        }
    }

    #[test]
    fn sweep_times_and_grid_sweep_agree() {
        let c = ctx();
        let modes = [Mode::Hybrid];
        let times = [100.0, 550.0, 1000.0];
        let mut from_times: Vec<usize> = Vec::new();
        let mut edges_times: Vec<usize> = Vec::new();
        c.sweep_times(&times, &modes, |i, snaps| {
            from_times.push(i);
            edges_times.push(snaps[0].graph.num_edges());
        });
        let mut from_grid: Vec<usize> = Vec::new();
        let mut edges_grid: Vec<usize> = Vec::new();
        c.sweep(100.0, 450.0, 3, &modes, |i, snaps| {
            from_grid.push(i);
            edges_grid.push(snaps[0].graph.num_edges());
        });
        assert_eq!(from_times, vec![0, 1, 2]);
        assert_eq!(from_times, from_grid);
        assert_eq!(edges_times, edges_grid);
    }

    #[test]
    fn sweep_deltas_replay_reconstructs_edge_sets() {
        // Core delta contract: per mode, the old edge ids partition into
        // `removed` ∪ {o | (o, n) ∈ reweighted}, the new edge ids into
        // `added` ∪ {n | (o, n) ∈ reweighted}, and every reweighted pair
        // refers to the *same physical link* — identical endpoint node
        // ids in old and new graph (stable because aircraft, the only
        // nodes whose ids shift, are always wholesale removed+added).
        let c = ctx();
        let modes = [Mode::BpOnly, Mode::Hybrid, Mode::IslOnly];
        let times = [0.0, 15.0, 90.0, 947.3, 1000.0, 30_000.0];
        let mut sweep = TimeSweep::new(&c, &modes);
        let mut prev: Vec<Vec<(NodeId, NodeId)>> = vec![Vec::new(); modes.len()];
        for (step, &t) in times.iter().enumerate() {
            let (snaps, deltas) = sweep.step_with_deltas(t);
            assert_eq!(deltas.len(), modes.len());
            for (mi, (snap, d)) in snaps.iter().zip(deltas).enumerate() {
                let fresh = c.snapshot(t, modes[mi]);
                assert_snapshots_identical(snap, &fresh, &format!("t={t} mode #{mi}"));
                assert_eq!(d.num_nodes, snap.nodes.len(), "t={t} mode #{mi} nodes");
                assert_eq!(d.full, step == 0, "t={t} mode #{mi} full flag");
                let ne = snap.graph.num_edges();
                if !d.full {
                    let no = prev[mi].len();
                    let mut old_seen = vec![false; no];
                    let mut new_seen = vec![false; ne];
                    for &o in &d.removed {
                        assert!(!old_seen[o as usize], "old id {o} twice");
                        old_seen[o as usize] = true;
                    }
                    for &n in &d.added {
                        assert!(!new_seen[n as usize], "new id {n} twice");
                        new_seen[n as usize] = true;
                    }
                    for &(o, n) in &d.reweighted {
                        assert!(!old_seen[o as usize], "old id {o} twice");
                        assert!(!new_seen[n as usize], "new id {n} twice");
                        old_seen[o as usize] = true;
                        new_seen[n as usize] = true;
                        let (u2, v2, _) = snap.graph.edge(n);
                        assert_eq!(
                            prev[mi][o as usize],
                            (u2, v2),
                            "t={t} mode #{mi}: pair ({o}, {n}) endpoints moved"
                        );
                    }
                    assert!(old_seen.iter().all(|&s| s), "old edge unaccounted");
                    assert!(new_seen.iter().all(|&s| s), "new edge unaccounted");
                    // Small steps must be dominated by reweights — the
                    // whole point of the delta path. Modes with aircraft
                    // churn those links wholesale (the aircraft move, so
                    // node ids shift), so only IslOnly pins dominance.
                    if t - times[step - 1] < 100.0 {
                        assert!(!d.reweighted.is_empty(), "t={t} mode #{mi}: no reweights");
                        if modes[mi] == Mode::IslOnly {
                            assert!(
                                d.reweighted.len() > d.added.len() + d.removed.len(),
                                "t={t} mode #{mi}: delta not incremental \
                                 ({} reweighted vs {} added + {} removed)",
                                d.reweighted.len(),
                                d.added.len(),
                                d.removed.len()
                            );
                        }
                    }
                }
                prev[mi].clear();
                prev[mi].extend((0..ne as EdgeId).map(|e| {
                    let (u, v, _) = snap.graph.edge(e);
                    (u, v)
                }));
            }
        }
    }

    #[test]
    fn sweep_fold_deltas_is_thread_count_invariant() {
        // Chunk boundaries reset delta tracking (each chunk's first step
        // is a `full` delta), but folding with a full-rebuild-aware step
        // function must still be chunking-invariant.
        let c = ctx();
        let modes = [Mode::Hybrid];
        let times: Vec<f64> = (0..7).map(|i| i as f64 * 137.0).collect();
        let fold = |threads: usize| -> (u64, usize) {
            c.sweep_fold_deltas(
                &times,
                &modes,
                threads,
                || (0u64, 0usize),
                |acc, i, snaps, deltas| {
                    assert_eq!(deltas.len(), 1);
                    acc.0 ^= (snaps[0].graph.num_edges() as u64).wrapping_mul(0x9e37 + i as u64);
                    acc.1 += 1;
                },
                |a, b| {
                    a.0 ^= b.0;
                    a.1 += b.1;
                },
            )
        };
        let one = fold(1);
        assert_eq!(one.1, times.len(), "every snapshot folded exactly once");
        assert_eq!(one, fold(3));
        assert_eq!(one, fold(7));
        assert_eq!(one, fold(0));
    }

    #[test]
    fn sweep_map_is_thread_count_invariant() {
        // Chunked parallel sweeps must produce the same results for any
        // thread count — each chunk's first step is a full rebuild and
        // sweep steps are bit-identical to fresh builds, so where the
        // chunk boundaries fall cannot matter.
        let c = ctx();
        let modes = [Mode::Hybrid, Mode::BpOnly];
        let times: Vec<f64> = (0..7).map(|i| i as f64 * 137.0).collect();
        let digest = |threads: usize| -> Vec<(usize, u64)> {
            c.sweep_map(&times, &modes, threads, |i, snaps| {
                let mut h = 0u64;
                for snap in snaps {
                    for e in 0..snap.graph.num_edges() as EdgeId {
                        let (u, v, w) = snap.graph.edge(e);
                        h = h
                            .wrapping_mul(1_099_511_628_211)
                            .wrapping_add(u as u64 ^ ((v as u64) << 20) ^ w.to_bits());
                    }
                }
                (i, h)
            })
        };
        let one = digest(1);
        assert_eq!(one.len(), times.len());
        assert_eq!(one, digest(3));
        assert_eq!(one, digest(7));
        assert_eq!(one, digest(0));
    }

    #[test]
    fn sweep_fold_is_thread_count_invariant_and_covers_all_snapshots() {
        let c = ctx();
        let modes = [Mode::Hybrid];
        let times: Vec<f64> = (0..7).map(|i| i as f64 * 137.0).collect();
        // Fold an (xor-hash, count) accumulator — xor is associative and
        // commutative, so any chunking must agree.
        let fold = |threads: usize| -> (u64, usize) {
            c.sweep_fold(
                &times,
                &modes,
                threads,
                || (0u64, 0usize),
                |acc, i, snaps| {
                    acc.0 ^= (snaps[0].graph.num_edges() as u64).wrapping_mul(0x9e37 + i as u64);
                    acc.1 += 1;
                },
                |a, b| {
                    a.0 ^= b.0;
                    a.1 += b.1;
                },
            )
        };
        let one = fold(1);
        assert_eq!(one.1, times.len(), "every snapshot folded exactly once");
        assert_eq!(one, fold(3));
        assert_eq!(one, fold(7));
        assert_eq!(one, fold(0));
        // Empty sweep returns the fresh accumulator.
        assert_eq!(
            c.sweep_fold(&[], &modes, 2, || 42u32, |_, _, _| {}, |_, _| {}),
            42
        );
    }
}
